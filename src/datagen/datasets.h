// Synthetic datasets reproducing the statistical shape of Section 5.1's
// experimental data:
//
//   CA  (60,344 California location points)  -> ClusteredPoints
//   LA  (131,461 street MBR rectangles)      -> StreetRects
//   Uniform / Zipf(0.8) synthetic points     -> distributions.h
//
// The rtreeportal.org originals are not available offline; DESIGN.md
// documents the substitution.  All datasets are normalized to the paper's
// [0, 10000]^2 workspace, data points are displaced out of obstacle
// interiors (the paper allows boundary contact but not containment), and
// every obstacle has extent >= kMinObstacleExtent so the interior-blocking
// predicate is meaningful.

#ifndef CONN_DATAGEN_DATASETS_H_
#define CONN_DATAGEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/box.h"
#include "rtree/entry.h"

namespace conn {
namespace datagen {

/// The paper's normalized workspace.
inline geom::Rect Workspace() {
  return geom::Rect({0.0, 0.0}, {10000.0, 10000.0});
}

/// Paper cardinalities (Section 5.1).
inline constexpr size_t kCaCardinality = 60344;
inline constexpr size_t kLaCardinality = 131461;

/// Minimum width/height of generated obstacles.
inline constexpr double kMinObstacleExtent = 1.0;

/// Point distribution selector for P.
enum class PointDistribution {
  kUniform,    ///< "Uniform" synthetic set
  kZipf,       ///< "Zipf" synthetic set (alpha = 0.8)
  kClustered,  ///< CA stand-in
};

/// Zipf skew used by the paper.
inline constexpr double kZipfAlpha = 0.8;

/// Generates n data points of the given distribution over the workspace.
std::vector<geom::Vec2> GeneratePoints(PointDistribution dist, size_t n,
                                       uint64_t seed);

/// Generates n thin axis-aligned street-MBR rectangles over the workspace —
/// the LA stand-in.  Streets form Manhattan-style runs of collinear
/// segments; lengths are log-normal; overlaps are allowed (real MBRs
/// overlap too).
std::vector<geom::Rect> StreetRects(size_t n, uint64_t seed);

/// Moves any point lying strictly inside an obstacle onto free space
/// (resampling uniformly nearby until clear).  Returns how many moved.
size_t DisplacePointsOutsideObstacles(std::vector<geom::Vec2>* points,
                                      const std::vector<geom::Rect>& obstacles,
                                      uint64_t seed);

/// Wraps points as R-tree objects (id = index).
std::vector<rtree::DataObject> ToPointObjects(
    const std::vector<geom::Vec2>& points);

/// Wraps obstacle rects as R-tree objects (id = index).
std::vector<rtree::DataObject> ToObstacleObjects(
    const std::vector<geom::Rect>& rects);

/// A ready-to-query dataset pair (P, O) like the paper's CL / UL / ZL.
struct DatasetPair {
  std::vector<geom::Vec2> points;
  std::vector<geom::Rect> obstacles;
};

/// Builds (P, O) with |O| = obstacle_count street rects and
/// |P| = point_count points of \p dist, points displaced out of obstacles.
DatasetPair MakeDatasetPair(PointDistribution dist, size_t point_count,
                            size_t obstacle_count, uint64_t seed);

}  // namespace datagen
}  // namespace conn

#endif  // CONN_DATAGEN_DATASETS_H_
