#include "datagen/fleet.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace conn {
namespace datagen {

namespace {

constexpr double kTwoPi = 6.283185307179586;

geom::Vec2 ClampInto(geom::Vec2 p, const geom::Rect& domain) {
  return {std::clamp(p.x, domain.lo.x, domain.hi.x),
          std::clamp(p.y, domain.lo.y, domain.hi.y)};
}

}  // namespace

std::vector<FleetRoute> MakeFleetRoutes(size_t n, const geom::Rect& domain,
                                        const FleetOptions& opts,
                                        uint64_t seed) {
  CONN_CHECK_MSG(opts.waypoints_per_route >= 1,
                 "a route needs at least one waypoint");
  CONN_CHECK_MSG(opts.speed > 0.0, "fleet speed must be > 0");
  Rng rng(seed);

  std::vector<geom::Vec2> depots;
  if (opts.pattern == FleetPattern::kClustered) {
    const size_t depot_count = std::max<size_t>(1, opts.depots);
    depots.reserve(depot_count);
    for (size_t d = 0; d < depot_count; ++d) {
      depots.push_back({rng.Uniform(domain.lo.x, domain.hi.x),
                        rng.Uniform(domain.lo.y, domain.hi.y)});
    }
  }

  std::vector<FleetRoute> routes;
  routes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    FleetRoute route;

    geom::Vec2 pos;
    if (opts.pattern == FleetPattern::kClustered) {
      const geom::Vec2 depot = depots[i % depots.size()];
      const double angle = rng.Uniform(0.0, kTwoPi);
      const double radius = opts.depot_radius * std::sqrt(rng.NextDouble());
      pos = ClampInto({depot.x + radius * std::cos(angle),
                       depot.y + radius * std::sin(angle)},
                      domain);
    } else {
      pos = {rng.Uniform(domain.lo.x, domain.hi.x),
             rng.Uniform(domain.lo.y, domain.hi.y)};
    }
    route.waypoints.push_back(pos);

    for (size_t w = 1; w < opts.waypoints_per_route; ++w) {
      const double angle = rng.Uniform(0.0, kTwoPi);
      const double len = opts.leg_length * rng.Uniform(0.5, 1.5);
      pos = ClampInto(
          {pos.x + len * std::cos(angle), pos.y + len * std::sin(angle)},
          domain);
      route.waypoints.push_back(pos);
    }

    if (opts.dyadic_speeds) {
      // Scale by 2^{-1, 0, +1}: per-route variety, still exactly dyadic
      // relative to the base speed.
      const int exp = static_cast<int>(rng.UniformU64(3)) - 1;
      route.speed = std::ldexp(opts.speed, exp);
    } else {
      route.speed = opts.speed * rng.Uniform(0.5, 1.5);
    }
    routes.push_back(std::move(route));
  }
  return routes;
}

}  // namespace datagen
}  // namespace conn
