// Random point distributions for the synthetic datasets of Section 5.1.

#ifndef CONN_DATAGEN_DISTRIBUTIONS_H_
#define CONN_DATAGEN_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geom/box.h"

namespace conn {
namespace datagen {

/// A fraction in (0, 1] skewed toward 0 with Zipf-like density
/// f(x) ~ x^(-alpha); sampled by inverse CDF, x = u^(1/(1-alpha)).
/// Requires 0 <= alpha < 1 (the paper uses alpha = 0.8).
double ZipfFraction(Rng* rng, double alpha);

/// n points uniform over \p domain.
std::vector<geom::Vec2> UniformPoints(size_t n, const geom::Rect& domain,
                                      Rng* rng);

/// n points with per-axis independent Zipf(alpha) coordinates (skewed
/// toward domain.lo), the paper's "Zipf" synthetic data set.
std::vector<geom::Vec2> ZipfPoints(size_t n, const geom::Rect& domain,
                                   double alpha, Rng* rng);

/// n points in Gaussian clusters around uniformly placed centers — the
/// stand-in for the CA real data set (population-style clustering).
std::vector<geom::Vec2> ClusteredPoints(size_t n, const geom::Rect& domain,
                                        size_t num_clusters, Rng* rng);

}  // namespace datagen
}  // namespace conn

#endif  // CONN_DATAGEN_DISTRIBUTIONS_H_
