// Fleet workloads for the moving-query subscription service: per-client
// routes (polyline + speed) instead of the static segments of workload.h.
//
// Two spatial patterns mirror the point distributions of Section 5.1:
// uniform traffic spread over the whole workspace, and clustered traffic
// where routes fan out from a few depots — the regime where the tick
// loop's shared workspaces and cross-shard obstacle store pay off.

#ifndef CONN_DATAGEN_FLEET_H_
#define CONN_DATAGEN_FLEET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/vec.h"

namespace conn {
namespace datagen {

/// One client's route: a polyline walked at constant speed (the exec
/// layer's RouteSpec shape, kept here without the exec dependency).
struct FleetRoute {
  std::vector<geom::Vec2> waypoints;
  double speed = 1.0;
};

/// Spatial pattern of the fleet.
enum class FleetPattern {
  kUniform,    ///< route starts uniform over the workspace
  kClustered,  ///< route starts packed around a few depots
};

/// Knobs for fleet generation.
struct FleetOptions {
  FleetPattern pattern = FleetPattern::kClustered;

  /// Clustered only: number of depots and the spread of route starts
  /// around each (workspace units).
  size_t depots = 4;
  double depot_radius = 400.0;

  /// Waypoints per route (>= 1; 1 yields a stationary client).
  size_t waypoints_per_route = 4;

  /// Mean leg length; actual legs are uniform in [0.5, 1.5] x this.
  double leg_length = 400.0;

  /// Base arc length advanced per tick.  With \p dyadic_speeds set (the
  /// default) per-route speeds are this value scaled by a power of two
  /// ({1/2, 1, 2}), keeping every tick boundary's absolute arc value
  /// exactly representable — so re-ticking a route at half step size
  /// visits bit-identical positions (the half-step metamorphic test).
  double speed = 64.0;
  bool dyadic_speeds = true;
};

/// Generates \p n routes inside \p domain, deterministically from \p seed.
std::vector<FleetRoute> MakeFleetRoutes(size_t n, const geom::Rect& domain,
                                        const FleetOptions& opts,
                                        uint64_t seed);

}  // namespace datagen
}  // namespace conn

#endif  // CONN_DATAGEN_FLEET_H_
