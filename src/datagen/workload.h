// Query workload generation (Section 5.1): "The starting point and the
// orientation (in [0, 2pi)) of the query line segment are randomly
// generated, while its length is controlled by the parameter ql."

#ifndef CONN_DATAGEN_WORKLOAD_H_
#define CONN_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/segment.h"

namespace conn {
namespace datagen {

/// Knobs for workload generation.
struct WorkloadOptions {
  /// Segment length in workspace units (ql% of the side => length =
  /// ql/100 * 10000).
  double query_length = 450.0;

  /// When true, resample until the segment crosses no obstacle interior
  /// (a trajectory a mover could actually follow).  When false (paper
  /// behavior), segments may cross obstacles; the engine reports those
  /// sub-intervals as unreachable.
  bool avoid_obstacle_crossings = false;

  /// Resampling budget for the two constraints above.
  int max_attempts = 200;
};

/// Converts a ql percentage (e.g. 4.5) to a segment length in the
/// [0,10000]^2 workspace.
double QueryLengthFromPercent(double ql_percent);

/// One random query segment fully inside \p domain.  If
/// opts.avoid_obstacle_crossings is set, \p obstacles (may be empty) are
/// avoided on a best-effort basis within opts.max_attempts.
geom::Segment RandomQuerySegment(const geom::Rect& domain,
                                 const WorkloadOptions& opts,
                                 const std::vector<geom::Rect>& obstacles,
                                 uint64_t seed);

/// A batch of \p n random query segments.
std::vector<geom::Segment> MakeWorkload(
    size_t n, const geom::Rect& domain, const WorkloadOptions& opts,
    const std::vector<geom::Rect>& obstacles, uint64_t seed);

}  // namespace datagen
}  // namespace conn

#endif  // CONN_DATAGEN_WORKLOAD_H_
