#include "datagen/workload.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"
#include "datagen/datasets.h"
#include "geom/predicates.h"
#include "vis/obstacle_set.h"

namespace conn {
namespace datagen {

double QueryLengthFromPercent(double ql_percent) {
  return ql_percent / 100.0 * Workspace().Width();
}

namespace {

geom::Segment SampleSegment(Rng* rng, const geom::Rect& domain,
                            double length) {
  for (int attempt = 0; attempt < 1024; ++attempt) {
    const geom::Vec2 start{rng->Uniform(domain.lo.x, domain.hi.x),
                           rng->Uniform(domain.lo.y, domain.hi.y)};
    const double theta = rng->Uniform(0.0, 2.0 * std::numbers::pi);
    const geom::Vec2 end{start.x + length * std::cos(theta),
                         start.y + length * std::sin(theta)};
    if (domain.Contains(end)) return geom::Segment(start, end);
  }
  // Extremely long queries relative to the domain: fall back to a diagonal
  // chord of the requested length anchored at the center.
  const geom::Vec2 c = domain.Center();
  const double half = length * 0.5 / std::numbers::sqrt2;
  return geom::Segment({c.x - half, c.y - half}, {c.x + half, c.y + half});
}

}  // namespace

geom::Segment RandomQuerySegment(const geom::Rect& domain,
                                 const WorkloadOptions& opts,
                                 const std::vector<geom::Rect>& obstacles,
                                 uint64_t seed) {
  Rng rng(seed);
  if (!opts.avoid_obstacle_crossings || obstacles.empty()) {
    return SampleSegment(&rng, domain, opts.query_length);
  }
  vis::ObstacleSet set(domain, /*grid_cells_per_side=*/128);
  for (size_t i = 0; i < obstacles.size(); ++i) set.Add(obstacles[i], i);
  geom::Segment best = SampleSegment(&rng, domain, opts.query_length);
  double best_blocked = set.BlockedIntervalsOnSegment(best).TotalLength();
  for (int attempt = 0; attempt < opts.max_attempts && best_blocked > 0.0;
       ++attempt) {
    const geom::Segment cand = SampleSegment(&rng, domain, opts.query_length);
    const double blocked =
        set.BlockedIntervalsOnSegment(cand).TotalLength();
    if (blocked < best_blocked) {
      best = cand;
      best_blocked = blocked;
    }
  }
  return best;
}

std::vector<geom::Segment> MakeWorkload(
    size_t n, const geom::Rect& domain, const WorkloadOptions& opts,
    const std::vector<geom::Rect>& obstacles, uint64_t seed) {
  std::vector<geom::Segment> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(
        RandomQuerySegment(domain, opts, obstacles, seed + 0x9E37 * (i + 1)));
  }
  return out;
}

}  // namespace datagen
}  // namespace conn
