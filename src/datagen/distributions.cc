#include "datagen/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace conn {
namespace datagen {

double ZipfFraction(Rng* rng, double alpha) {
  CONN_CHECK_MSG(alpha >= 0.0 && alpha < 1.0,
                 "ZipfFraction needs alpha in [0,1)");
  const double u = 1.0 - rng->NextDouble();  // (0, 1]
  return std::pow(u, 1.0 / (1.0 - alpha));
}

std::vector<geom::Vec2> UniformPoints(size_t n, const geom::Rect& domain,
                                      Rng* rng) {
  std::vector<geom::Vec2> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back({rng->Uniform(domain.lo.x, domain.hi.x),
                   rng->Uniform(domain.lo.y, domain.hi.y)});
  }
  return out;
}

std::vector<geom::Vec2> ZipfPoints(size_t n, const geom::Rect& domain,
                                   double alpha, Rng* rng) {
  std::vector<geom::Vec2> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Coordinates on both dimensions are mutually independent (Section 5.1).
    out.push_back(
        {domain.lo.x + domain.Width() * ZipfFraction(rng, alpha),
         domain.lo.y + domain.Height() * ZipfFraction(rng, alpha)});
  }
  return out;
}

std::vector<geom::Vec2> ClusteredPoints(size_t n, const geom::Rect& domain,
                                        size_t num_clusters, Rng* rng) {
  CONN_CHECK(num_clusters >= 1);
  // Cluster centers uniform; per-cluster spread log-normal so a few dense
  // metro-style blobs coexist with wide rural scatter (CA-like).
  std::vector<geom::Vec2> centers = UniformPoints(num_clusters, domain, rng);
  std::vector<double> spread(num_clusters);
  const double base = 0.02 * std::min(domain.Width(), domain.Height());
  for (double& s : spread) s = base * rng->LogNormal(0.0, 0.75);

  std::vector<geom::Vec2> out;
  out.reserve(n);
  while (out.size() < n) {
    const size_t c = static_cast<size_t>(rng->UniformU64(num_clusters));
    geom::Vec2 p{rng->Normal(centers[c].x, spread[c]),
                 rng->Normal(centers[c].y, spread[c])};
    p.x = std::clamp(p.x, domain.lo.x, domain.hi.x);
    p.y = std::clamp(p.y, domain.lo.y, domain.hi.y);
    out.push_back(p);
  }
  return out;
}

}  // namespace datagen
}  // namespace conn
