#include "datagen/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "datagen/distributions.h"
#include "vis/obstacle_set.h"

namespace conn {
namespace datagen {

std::vector<geom::Vec2> GeneratePoints(PointDistribution dist, size_t n,
                                       uint64_t seed) {
  Rng rng(seed);
  switch (dist) {
    case PointDistribution::kUniform:
      return UniformPoints(n, Workspace(), &rng);
    case PointDistribution::kZipf:
      return ZipfPoints(n, Workspace(), kZipfAlpha, &rng);
    case PointDistribution::kClustered: {
      // ~200 clusters at CA scale, proportionally fewer for small n.
      const size_t clusters =
          std::max<size_t>(4, std::min<size_t>(200, n / 300 + 4));
      return ClusteredPoints(n, Workspace(), clusters, &rng);
    }
  }
  CONN_CHECK_MSG(false, "unknown distribution");
  return {};
}

std::vector<geom::Rect> StreetRects(size_t n, uint64_t seed) {
  Rng rng(seed);
  const geom::Rect ws = Workspace();
  std::vector<geom::Rect> out;
  out.reserve(n);

  auto clamp_rect = [&](geom::Rect r) {
    r.lo.x = std::clamp(r.lo.x, ws.lo.x, ws.hi.x - kMinObstacleExtent);
    r.lo.y = std::clamp(r.lo.y, ws.lo.y, ws.hi.y - kMinObstacleExtent);
    r.hi.x = std::clamp(r.hi.x, r.lo.x + kMinObstacleExtent, ws.hi.x);
    r.hi.y = std::clamp(r.hi.y, r.lo.y + kMinObstacleExtent, ws.hi.y);
    return r;
  };

  while (out.size() < n) {
    // A "street run": several collinear thin segments sharing an axis,
    // mimicking consecutive street MBRs along one road.
    const bool horizontal = rng.Bernoulli(0.5);
    const size_t run_len = 1 + rng.UniformU64(8);
    geom::Vec2 anchor{rng.Uniform(ws.lo.x, ws.hi.x),
                      rng.Uniform(ws.lo.y, ws.hi.y)};
    const double thickness = rng.Uniform(2.0, 12.0);
    for (size_t i = 0; i < run_len && out.size() < n; ++i) {
      // Street-segment length: log-normal around ~55 workspace units.
      const double len =
          std::clamp(rng.LogNormal(4.0, 0.7), kMinObstacleExtent, 2000.0);
      geom::Rect r;
      if (horizontal) {
        r = geom::Rect({anchor.x, anchor.y - thickness * 0.5},
                       {anchor.x + len, anchor.y + thickness * 0.5});
        anchor.x += len + rng.Uniform(5.0, 60.0);  // gap to the next block
        anchor.y += rng.Uniform(-8.0, 8.0);        // slight drift
      } else {
        r = geom::Rect({anchor.x - thickness * 0.5, anchor.y},
                       {anchor.x + thickness * 0.5, anchor.y + len});
        anchor.y += len + rng.Uniform(5.0, 60.0);
        anchor.x += rng.Uniform(-8.0, 8.0);
      }
      out.push_back(clamp_rect(r));
    }
  }
  return out;
}

size_t DisplacePointsOutsideObstacles(std::vector<geom::Vec2>* points,
                                      const std::vector<geom::Rect>& obstacles,
                                      uint64_t seed) {
  Rng rng(seed);
  vis::ObstacleSet set(Workspace(), /*grid_cells_per_side=*/128);
  for (size_t i = 0; i < obstacles.size(); ++i) {
    set.Add(obstacles[i], i);
  }
  size_t moved = 0;
  for (geom::Vec2& p : *points) {
    if (!set.PointInAnyInterior(p)) continue;
    ++moved;
    // Resample near the original position with growing radius, keeping the
    // underlying distribution roughly intact.
    double radius = 20.0;
    for (int attempt = 0; attempt < 256; ++attempt) {
      geom::Vec2 cand{p.x + rng.Uniform(-radius, radius),
                      p.y + rng.Uniform(-radius, radius)};
      cand.x = std::clamp(cand.x, Workspace().lo.x, Workspace().hi.x);
      cand.y = std::clamp(cand.y, Workspace().lo.y, Workspace().hi.y);
      if (!set.PointInAnyInterior(cand)) {
        p = cand;
        break;
      }
      radius *= 1.25;
    }
    CONN_CHECK_MSG(!set.PointInAnyInterior(p),
                   "could not displace point out of obstacles");
  }
  return moved;
}

std::vector<rtree::DataObject> ToPointObjects(
    const std::vector<geom::Vec2>& points) {
  std::vector<rtree::DataObject> out;
  out.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    out.push_back(rtree::DataObject::Point(points[i], i));
  }
  return out;
}

std::vector<rtree::DataObject> ToObstacleObjects(
    const std::vector<geom::Rect>& rects) {
  std::vector<rtree::DataObject> out;
  out.reserve(rects.size());
  for (size_t i = 0; i < rects.size(); ++i) {
    out.push_back(rtree::DataObject::Obstacle(rects[i], i));
  }
  return out;
}

DatasetPair MakeDatasetPair(PointDistribution dist, size_t point_count,
                            size_t obstacle_count, uint64_t seed) {
  DatasetPair pair;
  pair.obstacles = StreetRects(obstacle_count, seed * 31 + 7);
  pair.points = GeneratePoints(dist, point_count, seed * 17 + 3);
  DisplacePointsOutsideObstacles(&pair.points, pair.obstacles, seed * 13 + 11);
  return pair;
}

}  // namespace datagen
}  // namespace conn
