#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace conn {
namespace exec {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  idle_.Wait(mu_, [this]() REQUIRES(mu_) {
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::WorkerLoop() {
  MutexLock lock(mu_);
  while (true) {
    work_available_.Wait(
        mu_, [this]() REQUIRES(mu_) { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.Unlock();
    task();
    lock.Lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_.NotifyAll();
  }
}

}  // namespace exec
}  // namespace conn
