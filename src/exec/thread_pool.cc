#include "exec/thread_pool.h"

#include <algorithm>

namespace conn {
namespace exec {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_available_.wait(lock,
                         [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_.notify_all();
  }
}

}  // namespace exec
}  // namespace conn
