// Batched multi-query execution of CONN / COkNN workloads.
//
// The paper's engine answers one query at a time; under the heavy
// multi-user traffic the system targets, that model rebuilds a local
// visibility graph per query and re-retrieves every obstacle that several
// nearby queries share.  BatchRunner amortizes that work the way the
// mesh-based successors amortize their precomputed structure: queries are
// sharded by spatial locality (exec/sharder.h), shards run on a worker
// pool (exec/thread_pool.h), and every shard's queries share one
// core::QueryWorkspace, so incremental obstacle retrieval accumulates
// across the shard instead of restarting per query.  The workspace also
// carries the shard's vis::ScanArena: every Dijkstra scan of every query
// in the shard runs on the same pooled epoch-stamped state, sized once
// for the shared graph (see vis/dijkstra.h).
//
// Correctness bar: results are identical to the single-query engine — the
// shared graph only ever holds a superset of each query's Theorem-2
// search-range obstacles (see core/workspace.h).  Per-query CPU/algorithm
// statistics stay per-query; per-query *I/O* counters are deltas on shared
// atomic pager counters and therefore only meaningful in aggregate when
// several shards run concurrently (BatchStats reports the batch-level
// deltas).

#ifndef CONN_EXEC_BATCH_H_
#define CONN_EXEC_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "core/coknn.h"
#include "core/conn.h"
#include "core/options.h"
#include "geom/segment.h"
#include "rtree/rstar_tree.h"

namespace conn {
namespace exec {

class ObstacleStore;  // exec/obstacle_store.h — cross-shard obstacle cache

/// One query of a batch.
struct BatchQuery {
  enum class Kind { kConn, kCoknn };

  Kind kind = Kind::kCoknn;
  geom::Segment segment;
  size_t k = 1;  ///< COkNN only

  /// Last tick's result for this query's client (tick-loop callers only;
  /// must outlive the run).  Enables the stationary-segment memo of
  /// core::CoknnQueryTick under ConnOptions::use_tick_warm_start.
  const core::CoknnResult* prior = nullptr;

  /// Stable client identity for the differential-repair path (-1 =
  /// anonymous): tags the coverage capsules this query publishes so
  /// QueryStats::frontier_shares can tell cross-client reuse apart.
  int64_t client_tag = -1;

  static BatchQuery Conn(const geom::Segment& q) {
    return BatchQuery{Kind::kConn, q, 1};
  }
  static BatchQuery Coknn(const geom::Segment& q, size_t k) {
    return BatchQuery{Kind::kCoknn, q, k};
  }
  static BatchQuery CoknnTick(const geom::Segment& q, size_t k,
                              const core::CoknnResult* prior,
                              int64_t client_tag = -1) {
    return BatchQuery{Kind::kCoknn, q, k, prior, client_tag};
  }
};

/// Execution knobs.
struct BatchOptions {
  /// Worker threads; 0 resolves to std::thread::hardware_concurrency().
  size_t num_threads = 0;

  /// Queries per spatial shard (the workspace-sharing granularity).
  size_t target_shard_size = 8;

  /// When false every query builds its own graph (degenerates to the
  /// single-query engine on a pool — the ablation baseline).
  bool share_workspace = true;

  /// Locality guard for adaptive sharing: a shard shares its workspace
  /// only when its cover rectangle is at most this factor times the
  /// largest query MBR extent in the shard (floored at a few typical
  /// obstacle spacings, so clustered point queries still share).  A
  /// dispersed shard (uniform traffic at low density) would union
  /// far-apart obstacle neighborhoods into one big graph and make every
  /// insertion and scan pay for it — such shards fall back to per-query
  /// graphs instead.  <= 0 disables the guard (always share).
  double share_locality_factor = 4.0;

  /// Explicit extent floor for the locality guard, in workspace units.
  /// <= 0 derives it from the indexed obstacle spacing; in 1-tree mode
  /// that derivation counts data points too and under-floors (sharing may
  /// be declined for tight degenerate-query clusters), so batches of
  /// point queries over a unified tree should set this to the expected
  /// obstacle-neighborhood radius.
  double locality_extent_floor = 0.0;

  /// Per-query engine options.
  core::ConnOptions query;
};

/// Result slot for one input query (exactly one member is set, matching
/// the query's kind).
struct QueryOutcome {
  std::optional<core::ConnResult> conn;
  std::optional<core::CoknnResult> coknn;
};

/// Aggregate accounting for one Run().
struct BatchStats {
  size_t query_count = 0;
  size_t shard_count = 0;
  size_t threads_used = 0;

  /// Obstacle insertions skipped because a shard sibling already retrieved
  /// the obstacle — the work saved by workspace sharing.
  uint64_t obstacle_reuse_hits = 0;

  /// Unique obstacles inserted across all shard workspaces (this run's
  /// growth only, for plans carrying workspaces across runs).
  uint64_t obstacles_inserted = 0;

  /// RunPlan only: shards that served this run on a workspace carried
  /// from a previous run (the tick loop's cross-tick warm path).
  size_t shards_carried = 0;

  /// RunPlan only: obstacles pre-seeded into fresh graphs from the
  /// cross-shard ObstacleStore (also in per_query_totals).
  uint64_t cross_shard_store_hits = 0;

  /// RunPlan only, differential repair: workspaces a Reshard moved onto
  /// the best-overlapping rebuilt shard instead of dropping — the repair
  /// loop's defense against the periodic reshard discarding its carried
  /// graphs (exact by the superset argument regardless of match quality).
  size_t workspaces_adopted = 0;

  /// Batch-level pager deltas (single-threaded snapshots around the run).
  uint64_t data_page_faults = 0;
  uint64_t obstacle_page_faults = 0;
  uint64_t buffer_hits = 0;

  /// Async miss pipeline only (BufferOptions::async_io): times a worker
  /// deferred a shard because its staged page fault was still in flight
  /// and other shard work was available (the shard ran later instead of
  /// blocking the worker).
  size_t shards_parked = 0;

  /// Async miss pipeline only: miss-queue depth percentiles across the
  /// trees' pagers (cumulative since the pagers' last ResetCounters; max
  /// over the trees).
  size_t miss_queue_depth_p50 = 0;
  size_t miss_queue_depth_p99 = 0;

  /// Element-wise sum of every query's own QueryStats.
  QueryStats per_query_totals;

  double wall_seconds = 0.0;

  double QueriesPerSecond() const {
    return wall_seconds > 0.0
               ? static_cast<double>(query_count) / wall_seconds
               : 0.0;
  }
};

/// Complete answer of a batch run; outcomes are in input order.
struct BatchResult {
  std::vector<QueryOutcome> outcomes;
  BatchStats stats;
};

/// Persistent sharding of a recurring batch — the tick loop's sticky
/// client→shard assignment.  A plan pins which query indices run
/// together and carries each shard's workspace (obstacle graph + scan
/// arena) from one RunPlan() to the next, so consecutive ticks of the
/// same and nearby clients reuse retrieval instead of rebuilding.
/// Create empty, then let BatchRunner::Reshard / RunPlan populate it; a
/// plan is bound to the query *positions* (index i of every run is the
/// same logical client), which the caller maintains.
class BatchPlan {
 public:
  BatchPlan();
  ~BatchPlan();
  BatchPlan(BatchPlan&&) noexcept;
  BatchPlan& operator=(BatchPlan&&) noexcept;
  BatchPlan(const BatchPlan&) = delete;
  BatchPlan& operator=(const BatchPlan&) = delete;

  /// Number of queries the current sharding was derived for (0 = empty).
  size_t query_count() const { return query_count_; }

  size_t shard_count() const { return states_.size(); }

 private:
  friend class BatchRunner;

  /// One sticky shard and its cross-run state.
  struct ShardState {
    std::vector<size_t> members;  ///< query indices, in shard order

    /// Carried workspace (null until the shard first shares, or after the
    /// locality guard declines).
    std::unique_ptr<core::QueryWorkspace> workspace;

    /// Cover rectangle the carried workspace last served (empty until the
    /// shard first shares).  Reshard's adoption pass matches rebuilt
    /// shards to old workspaces by overlap with this.
    geom::Rect last_cover = geom::Rect::Empty();

    // Watermarks making cross-run accounting and store harvesting
    // incremental: a carried workspace's counters accumulate for its
    // lifetime, but each run must report only its own growth.
    uint64_t reuse_hits_mark = 0;  ///< DuplicateObstacleSkips at last run end
    uint64_t obstacles_mark = 0;   ///< ObstacleCount at last run end
    size_t harvest_mark = 0;       ///< ObstacleStore::Harvest watermark
  };

  std::vector<ShardState> states_;
  size_t query_count_ = 0;

  /// Workspaces the last Reshard adopted onto rebuilt shards; folded into
  /// BatchStats::workspaces_adopted by the next RunPlan.
  size_t adopted_pending_ = 0;
};

/// Executes batches of CONN/COkNN queries against one tree configuration.
/// The trees must outlive the runner and must not be modified while a
/// batch runs.  Run() is const and reentrant; RunPlan() is reentrant for
/// distinct plans.
class BatchRunner {
 public:
  /// 2-tree configuration (the paper's default).
  BatchRunner(const rtree::RStarTree& data_tree,
              const rtree::RStarTree& obstacle_tree,
              const BatchOptions& opts = {});

  /// 1-tree configuration (Section 4.5).
  explicit BatchRunner(const rtree::RStarTree& unified_tree,
                       const BatchOptions& opts = {});

  BatchResult Run(const std::vector<BatchQuery>& queries) const;

  /// Re-derives \p plan's sticky sharding from the queries' current
  /// segments, dropping carried workspaces — which are first harvested
  /// into \p store (when non-null), so the rebuilt shards pre-seed from
  /// the store instead of re-retrieving.  Tick-loop callers invoke this
  /// when batch membership changes and periodically as routes drift away
  /// from the assignment they were sharded under.
  void Reshard(const std::vector<BatchQuery>& queries, BatchPlan* plan,
               ObstacleStore* store = nullptr) const;

  /// Runs \p queries under \p plan's sticky sharding, carrying per-shard
  /// workspaces across calls (gated by ConnOptions::use_tick_warm_start;
  /// when off every shard rebuilds, reproducing Run()'s fresh semantics).
  /// An empty or size-mismatched plan is reshard()ed first.  \p store,
  /// when non-null, pre-seeds fresh graphs — including per-query graphs
  /// of shards the locality guard declined to share — and is kept current
  /// by harvesting every workspace after its shard completes.  Results
  /// are bit-identical to Run() on the same queries.
  BatchResult RunPlan(const std::vector<BatchQuery>& queries, BatchPlan* plan,
                      ObstacleStore* store = nullptr) const;

  const BatchOptions& options() const { return opts_; }

 private:
  const rtree::RStarTree* data_;       // unified tree in 1-tree mode
  const rtree::RStarTree* obstacles_;  // nullptr in 1-tree mode
  BatchOptions opts_;
};

}  // namespace exec
}  // namespace conn

#endif  // CONN_EXEC_BATCH_H_
