#include "exec/sharder.h"

#include <algorithm>
#include <cmath>

#include "geom/box.h"

namespace conn {
namespace exec {

std::vector<std::vector<size_t>> ShardByLocality(
    const std::vector<geom::Segment>& queries, size_t target_shard_size) {
  const size_t n = queries.size();
  if (n == 0) return {};
  if (target_shard_size == 0) target_shard_size = 1;

  const size_t shard_count = (n + target_shard_size - 1) / target_shard_size;
  if (shard_count <= 1) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return {all};
  }

  struct Entry {
    geom::Vec2 center;
    size_t index;
  };
  std::vector<Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const geom::Rect mbr = queries[i].Bounds();
    entries.push_back({{0.5 * (mbr.lo.x + mbr.hi.x),
                        0.5 * (mbr.lo.y + mbr.hi.y)},
                       i});
  }

  // STR: ceil(sqrt(S)) vertical slices, each sliced into y-runs of the
  // target size.
  const size_t slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(shard_count))));
  const size_t slice_cap = (n + slices - 1) / slices;

  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.center.x != b.center.x) return a.center.x < b.center.x;
    return a.index < b.index;
  });

  std::vector<std::vector<size_t>> shards;
  for (size_t s = 0; s * slice_cap < n; ++s) {
    const size_t lo = s * slice_cap;
    const size_t hi = std::min(n, lo + slice_cap);
    std::sort(entries.begin() + lo, entries.begin() + hi,
              [](const Entry& a, const Entry& b) {
                if (a.center.y != b.center.y) return a.center.y < b.center.y;
                return a.index < b.index;
              });
    for (size_t run = lo; run < hi; run += target_shard_size) {
      const size_t run_hi = std::min(hi, run + target_shard_size);
      std::vector<size_t> shard;
      shard.reserve(run_hi - run);
      for (size_t i = run; i < run_hi; ++i) shard.push_back(entries[i].index);
      shards.push_back(std::move(shard));
    }
  }
  return shards;
}

geom::Rect ShardCover(const std::vector<geom::Segment>& queries,
                      const std::vector<size_t>& shard) {
  geom::Rect cover = queries[shard.front()].Bounds();
  for (size_t i = 1; i < shard.size(); ++i) {
    cover = cover.ExpandedToCover(queries[shard[i]].Bounds());
  }
  return cover;
}

}  // namespace exec
}  // namespace conn
