// Cross-shard obstacle cache with the lifetime of a recurring batch.
//
// Workspace sharing (core/workspace.h) amortizes obstacle retrieval across
// the queries of one shard, but nothing survives the shard: traffic the
// adaptive locality guard declines to share, and shards whose workspaces
// are dropped by a tick-loop reshard, re-retrieve obstacles the batch has
// already paid for.  The ObstacleStore keeps every obstacle any workspace
// ever retrieved as a plain (id, rect) record; new, rebuilt, and per-query
// workspaces pre-seed their graphs from it instead of going back to the
// R-tree.  Exactness is unaffected: stored entries are real dataset
// obstacles, and a graph holding extra real obstacles beyond a query's
// Theorem-2 search range yields bit-identical obstructed distances — the
// same superset argument that makes workspace sharing exact.

#ifndef CONN_EXEC_OBSTACLE_STORE_H_
#define CONN_EXEC_OBSTACLE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "geom/box.h"
#include "rtree/entry.h"
#include "vis/obstacle_set.h"
#include "vis/vis_graph.h"

namespace conn {
namespace exec {

/// Thread-safe append-only (id, rect) cache of retrieved obstacles.
class ObstacleStore {
 public:
  ObstacleStore() = default;
  ObstacleStore(const ObstacleStore&) = delete;
  ObstacleStore& operator=(const ObstacleStore&) = delete;

  /// Remembers obstacles [\p from, set.size()) of a workspace's obstacle
  /// set.  The set is append-only, so \p from — the value this call
  /// returned last time for the same set, 0 initially — makes repeated
  /// harvests of a long-lived workspace incremental.  Returns the new
  /// watermark, set.size().
  size_t Harvest(const vis::ObstacleSet& set, size_t from);

  /// Inserts every stored obstacle intersecting \p region into \p graph
  /// (AddObstacle deduplicates by id against the graph's own set).
  /// Returns the number of obstacles actually inserted — the retrieval
  /// work the pre-seeded graph will not repeat.
  uint64_t PreSeed(vis::VisGraph* graph, const geom::Rect& region) const;

  /// Unique obstacles remembered so far.
  size_t size() const;

 private:
  mutable Mutex mu_;
  std::vector<std::pair<rtree::ObjectId, geom::Rect>> entries_ GUARDED_BY(mu_);
  std::unordered_set<rtree::ObjectId> ids_ GUARDED_BY(mu_);
};

}  // namespace exec
}  // namespace conn

#endif  // CONN_EXEC_OBSTACLE_STORE_H_
