// Moving-query subscription service: an incremental tick loop over the
// batch executor.
//
// Clients register a route — a polyline walked at constant speed — and the
// service re-evaluates every client's COkNN once per Tick(), each tick
// covering the next arc slice of the route (the paper's continuous query,
// driven continuously).  Evaluating every tick from scratch would discard
// exactly the state consecutive ticks share: a client's tick-t segment
// abuts its tick-(t-1) segment, so their Theorem-2 obstacle neighborhoods
// overlap almost entirely, and nearby clients overlap each other's.  The
// service therefore runs ticks through a sticky BatchPlan whose per-shard
// workspaces (obstacle graph + epoch-stamped scan arena) persist across
// ticks, keeps a service-lifetime cross-shard ObstacleStore so even
// guard-declined and freshly resharded traffic reuses past retrieval, and
// threads each client's previous answer back in as the stationary-segment
// memo.  All of it is gated by ConnOptions::use_tick_warm_start; results
// are bit-identical to independently evaluating each tick (the superset
// argument of core/workspace.h, proven by the subscription equivalence
// suite).
//
// Failure isolation: a client whose tick fails (see
// SubscriptionOptions::failure_injector) is quarantined — reported once
// with its error, excluded from subsequent ticks, its carried result
// dropped — without perturbing sibling results, which stay bit-identical
// to a run in which the failure never happened.

#ifndef CONN_EXEC_SUBSCRIPTION_H_
#define CONN_EXEC_SUBSCRIPTION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/coknn.h"
#include "exec/batch.h"
#include "exec/obstacle_store.h"
#include "geom/segment.h"
#include "geom/vec.h"
#include "rtree/rstar_tree.h"

namespace conn {
namespace exec {

/// A client's route: a polyline walked at constant speed, one arc step per
/// tick.  A client subscribed at tick s covers arc [n·speed, (n+1)·speed]
/// of the polyline on tick s+n, clamped at the route's end — a client that
/// completed its route keeps re-asking from its final position, which the
/// stationary-segment memo answers without re-evaluation.
struct RouteSpec {
  std::vector<geom::Vec2> waypoints;  ///< >= 1 points; 1 = stationary client
  double speed = 1.0;                 ///< arc length advanced per tick, > 0
};

/// Tick-loop knobs on top of the underlying batch execution.
struct SubscriptionOptions {
  BatchOptions batch;

  /// Ticks between sticky-assignment refreshes.  The client→shard
  /// assignment (and with it the carried per-shard workspaces) persists
  /// between refreshes; routes drift apart over time, degrading the
  /// locality the assignment was derived for, so it is periodically
  /// re-derived from current positions.  Dropped workspaces are harvested
  /// into the cross-shard store first, so rebuilt shards pre-seed instead
  /// of re-retrieving.  0 disables periodic resharding (membership
  /// changes still reshard).
  uint64_t reshard_period = 8;

  /// Test seam: invoked for every live client on every tick before its
  /// query runs; a non-OK status quarantines the client exactly like an
  /// internal failure.  Null = never fails.
  std::function<Status(int64_t client_id, uint64_t tick)> failure_injector;
};

/// One live client's answer for one tick.
struct ClientUpdate {
  int64_t client = -1;
  geom::Segment segment;  ///< the arc slice evaluated this tick
  Status status;          ///< non-OK: the client was quarantined this tick
  std::optional<core::CoknnResult> result;  ///< set iff status.ok()
};

/// Aggregate answer of one Tick().
struct TickResult {
  uint64_t tick = 0;                  ///< 0-based index of this tick
  std::vector<ClientUpdate> updates;  ///< ascending client id; covers every
                                      ///< client live when the tick began
  BatchStats stats;                   ///< underlying batch accounting
  size_t quarantined_now = 0;         ///< clients quarantined by this tick
};

/// The service.  Not thread-safe: one driver thread calls Subscribe /
/// Unsubscribe / Tick (Tick itself fans out internally per
/// BatchOptions::num_threads).  The trees must outlive the service.
class SubscriptionService {
 public:
  /// 2-tree configuration (the paper's default).
  SubscriptionService(const rtree::RStarTree& data_tree,
                      const rtree::RStarTree& obstacle_tree,
                      const SubscriptionOptions& opts = {});

  /// 1-tree configuration (Section 4.5).
  explicit SubscriptionService(const rtree::RStarTree& unified_tree,
                               const SubscriptionOptions& opts = {});

  /// Registers a route, effective on the next Tick().  Returns the new
  /// client's id; rejects empty/non-finite routes, speed <= 0, or k < 1.
  StatusOr<int64_t> Subscribe(const RouteSpec& route, size_t k);

  /// Removes a live or quarantined client, effective immediately.
  Status Unsubscribe(int64_t client_id);

  /// Advances every live client one arc step and re-evaluates its COkNN.
  TickResult Tick();

  uint64_t ticks() const { return tick_; }
  size_t live_clients() const;
  size_t quarantined_clients() const;
  const ObstacleStore& store() const { return store_; }

 private:
  struct Client {
    RouteSpec route;
    std::vector<double> arc_at;  ///< cumulative arc length per waypoint
    size_t k = 1;
    uint64_t first_tick = 0;  ///< the tick covering the route's first slice
    bool quarantined = false;
    std::optional<core::CoknnResult> prior;  ///< last tick's answer
  };

  /// The arc slice client \p c covers on tick \p tick.
  geom::Segment SegmentAtTick(const Client& c, uint64_t tick) const;

  BatchRunner runner_;
  SubscriptionOptions opts_;
  std::map<int64_t, Client> clients_;  ///< ordered: deterministic batches
  int64_t next_id_ = 0;
  uint64_t tick_ = 0;
  uint64_t ticks_since_reshard_ = 0;
  std::vector<int64_t> last_batched_;  ///< client ids of the current plan
  BatchPlan plan_;
  ObstacleStore store_;
};

}  // namespace exec
}  // namespace conn

#endif  // CONN_EXEC_SUBSCRIPTION_H_
