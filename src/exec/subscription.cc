#include "exec/subscription.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "geom/vec.h"

namespace conn {
namespace exec {

namespace {

Status ValidateRoute(const RouteSpec& route, size_t k) {
  if (route.waypoints.empty()) {
    return Status::InvalidArgument("route has no waypoints");
  }
  for (const geom::Vec2& w : route.waypoints) {
    if (!std::isfinite(w.x) || !std::isfinite(w.y)) {
      return Status::InvalidArgument("route waypoint is not finite");
    }
  }
  if (!std::isfinite(route.speed) || route.speed <= 0.0) {
    return Status::InvalidArgument("route speed must be finite and > 0");
  }
  if (k < 1) return Status::InvalidArgument("COkNN requires k >= 1");
  return Status::OK();
}

/// Point at absolute arc length \p s along the route (clamped to its
/// ends).  Positions are derived from the absolute arc value, never
/// accumulated tick over tick — so two tick schedules that visit the same
/// arc value compute bit-identical positions (the half-step metamorphic
/// invariant relies on this).
geom::Vec2 PointAtArc(const RouteSpec& route, const std::vector<double>& cum,
                      double s) {
  if (s <= 0.0) return route.waypoints.front();
  if (s >= cum.back()) return route.waypoints.back();
  const size_t leg = static_cast<size_t>(
      std::upper_bound(cum.begin(), cum.end(), s) - cum.begin());
  const geom::Vec2 a = route.waypoints[leg - 1];
  const geom::Vec2 b = route.waypoints[leg];
  const double t = (s - cum[leg - 1]) / (cum[leg] - cum[leg - 1]);
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

}  // namespace

SubscriptionService::SubscriptionService(const rtree::RStarTree& data_tree,
                                         const rtree::RStarTree& obstacle_tree,
                                         const SubscriptionOptions& opts)
    : runner_(data_tree, obstacle_tree, opts.batch), opts_(opts) {}

SubscriptionService::SubscriptionService(const rtree::RStarTree& unified_tree,
                                         const SubscriptionOptions& opts)
    : runner_(unified_tree, opts.batch), opts_(opts) {}

StatusOr<int64_t> SubscriptionService::Subscribe(const RouteSpec& route,
                                                 size_t k) {
  Status st = ValidateRoute(route, k);
  if (!st.ok()) return st;
  Client c;
  c.route = route;
  c.k = k;
  c.first_tick = tick_;
  c.arc_at.reserve(route.waypoints.size());
  c.arc_at.push_back(0.0);
  for (size_t i = 1; i < route.waypoints.size(); ++i) {
    c.arc_at.push_back(c.arc_at.back() +
                       Dist(route.waypoints[i - 1], route.waypoints[i]));
  }
  const int64_t id = next_id_++;
  clients_.emplace(id, std::move(c));
  return id;
}

Status SubscriptionService::Unsubscribe(int64_t client_id) {
  if (clients_.erase(client_id) == 0) {
    return Status::NotFound("no such client");
  }
  return Status::OK();
}

size_t SubscriptionService::live_clients() const {
  size_t n = 0;
  for (const auto& [id, c] : clients_) {
    if (!c.quarantined) ++n;
  }
  return n;
}

size_t SubscriptionService::quarantined_clients() const {
  return clients_.size() - live_clients();
}

geom::Segment SubscriptionService::SegmentAtTick(const Client& c,
                                                 uint64_t tick) const {
  const double n = static_cast<double>(tick - c.first_tick);
  const double total = c.arc_at.back();
  const double s0 = std::min(n * c.route.speed, total);
  const double s1 = std::min(s0 + c.route.speed, total);
  return geom::Segment{PointAtArc(c.route, c.arc_at, s0),
                       PointAtArc(c.route, c.arc_at, s1)};
}

TickResult SubscriptionService::Tick() {
  const uint64_t now = tick_;
  TickResult result;
  result.tick = now;

  // Advance every live client, then admit it to this tick's batch —
  // failures quarantine the client here, *before* sharding, so a failing
  // client never touches (or poisons) any shared warm state.
  for (auto& [id, c] : clients_) {
    if (c.quarantined) continue;
    ClientUpdate update;
    update.client = id;
    update.segment = SegmentAtTick(c, now);
    result.updates.push_back(std::move(update));
  }
  std::vector<int64_t> batched_ids;
  std::vector<BatchQuery> queries;
  batched_ids.reserve(result.updates.size());
  queries.reserve(result.updates.size());
  for (ClientUpdate& u : result.updates) {
    Client& c = clients_.at(u.client);
    Status st = opts_.failure_injector != nullptr
                    ? opts_.failure_injector(u.client, now)
                    : Status::OK();
    if (!st.ok()) {
      // Report the error once; drop the carried result so nothing derived
      // from the failed client's state can ever be served again.
      u.status = std::move(st);
      c.prior.reset();
      c.quarantined = true;
      ++result.quarantined_now;
      continue;
    }
    batched_ids.push_back(u.client);
    queries.push_back(BatchQuery::CoknnTick(
        u.segment, c.k, c.prior.has_value() ? &*c.prior : nullptr, u.client));
  }

  // Sticky-assignment maintenance: reshard when membership changed (a
  // subscribe / unsubscribe / quarantine) or when routes have drifted for
  // a full period under the old assignment.  The warm-start gate also
  // decides whether the cross-shard store participates at all — with it
  // off, every tick runs the fresh reference path.
  ObstacleStore* store =
      opts_.batch.query.use_tick_warm_start ? &store_ : nullptr;
  const bool membership_changed = batched_ids != last_batched_;
  const bool period_hit = opts_.reshard_period != 0 &&
                          ticks_since_reshard_ >= opts_.reshard_period;
  if (membership_changed || period_hit) {
    runner_.Reshard(queries, &plan_, store);
    last_batched_ = std::move(batched_ids);
    ticks_since_reshard_ = 0;
  }

  if (!queries.empty()) {
    BatchResult batch = runner_.RunPlan(queries, &plan_, store);
    result.stats = std::move(batch.stats);
    size_t qi = 0;
    for (ClientUpdate& u : result.updates) {
      if (!u.status.ok()) continue;
      Client& c = clients_.at(u.client);
      core::CoknnResult& res = *batch.outcomes[qi++].coknn;
      c.prior = res;  // carried into the next tick's memo
      u.result = std::move(res);
    }
    CONN_CHECK(qi == queries.size());
  }

  ++tick_;
  ++ticks_since_reshard_;
  return result;
}

}  // namespace exec
}  // namespace conn
