// A small fixed-size worker pool for shard execution.
//
// Deliberately minimal: FIFO queue, no futures, no work stealing — shards
// are coarse-grained (several queries each), so a condition-variable queue
// is nowhere near the bottleneck.  WaitIdle() gives the batch runner its
// join point without destroying the pool between batches.

#ifndef CONN_EXEC_THREAD_POOL_H_
#define CONN_EXEC_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace conn {
namespace exec {

/// Fixed-size FIFO worker pool.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Tasks must not Submit() to the same pool and then
  /// WaitIdle() on it (trivial deadlock); plain nested Submit is fine.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and every worker is idle.
  void WaitIdle() EXCLUDES(mu_);

  size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_available_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace exec
}  // namespace conn

#endif  // CONN_EXEC_THREAD_POOL_H_
