// A small fixed-size worker pool for shard execution.
//
// Deliberately minimal: FIFO queue, no futures, no work stealing — shards
// are coarse-grained (several queries each), so a condition-variable queue
// is nowhere near the bottleneck.  WaitIdle() gives the batch runner its
// join point without destroying the pool between batches.

#ifndef CONN_EXEC_THREAD_POOL_H_
#define CONN_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace conn {
namespace exec {

/// Fixed-size FIFO worker pool.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Tasks must not Submit() to the same pool and then
  /// WaitIdle() on it (trivial deadlock); plain nested Submit is fine.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void WaitIdle();

  size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace exec
}  // namespace conn

#endif  // CONN_EXEC_THREAD_POOL_H_
