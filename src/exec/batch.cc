#include "exec/batch.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <span>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/timer.h"
#include "core/workspace.h"
#include "exec/obstacle_store.h"
#include "exec/sharder.h"
#include "exec/thread_pool.h"
#include "geom/box.h"
#include "storage/page_request.h"

namespace conn {
namespace exec {

namespace {

/// Typical spacing between neighboring obstacles in \p tree — the natural
/// length scale of a query's obstacle neighborhood.  Zero/short queries
/// (DegenerateConn point lookups) have no extent of their own, so the
/// locality guard measures their spread in units of this instead.  For the
/// unified tree (1-tree mode) size() also counts data points, so the value
/// underestimates the true spacing — the guard then errs toward *not*
/// sharing, which is the safe direction; callers needing exact control set
/// BatchOptions::locality_extent_floor.
double ObstacleSpacing(const rtree::RStarTree& tree) {
  if (tree.size() == 0) return 0.0;
  const geom::Rect b = tree.Bounds();
  return std::max(b.Width(), b.Height()) /
         std::sqrt(static_cast<double>(tree.size()));
}

/// The adaptive-sharing locality guard (see BatchOptions).  \p extent_floor
/// keeps the guard meaningful for (near-)degenerate query segments.
bool ShardIsLocal(const std::vector<BatchQuery>& queries,
                  const std::vector<size_t>& shard, const geom::Rect& cover,
                  double factor, double extent_floor) {
  if (factor <= 0.0) return true;
  double max_extent = extent_floor;
  for (size_t idx : shard) {
    const geom::Rect b = queries[idx].segment.Bounds();
    max_extent = std::max({max_extent, b.Width(), b.Height()});
  }
  return std::max(cover.Width(), cover.Height()) <= factor * max_extent;
}

/// Extent floor: a few obstacle spacings — queries that close together
/// overlap in the obstacles they retrieve even when the segments
/// themselves are points.
constexpr double kSpacingFloorFactor = 8.0;

/// \p r grown by margin \p m on every side — the pre-seeding relevance
/// window around a cover (obstacles just outside a query's MBR still fall
/// in its Theorem-2 search range).
geom::Rect ExpandedBy(const geom::Rect& r, double m) {
  return geom::Rect({r.lo.x - m, r.lo.y - m}, {r.hi.x + m, r.hi.y + m});
}

/// Subtree tops staged per shard before a worker picks it up (async miss
/// pipeline only): the root children overlapping the shard's cover.
constexpr size_t kStageFanout = 8;

/// A shard is re-queued at most this many times while its staged fault is
/// in flight, so a slow read can only defer a shard, never starve it.
constexpr uint8_t kMaxShardParks = 3;

/// Issues a shard's staging reads: hints for the subtree tops overlapping
/// its cover, with the first top kept as a demand request — the shard's
/// *park token*.  A worker that finds the token still in flight re-queues
/// the shard and runs another one instead of blocking on the fault.
storage::PageRequest StageShard(const rtree::RStarTree& tree,
                                const std::vector<geom::Segment>& segments,
                                const std::vector<size_t>& members) {
  std::vector<storage::PageId> tops;
  const geom::Rect cover = ShardCover(segments, members);
  const Status st =
      tree.CollectRootChildrenOverlapping(cover, kStageFanout, &tops);
  if (!st.ok() || tops.empty()) return storage::PageRequest();
  tree.PrefetchPages(std::span<const storage::PageId>(tops).subspan(1));
  return tree.pager().FetchAsync(tops[0]);
}

}  // namespace

BatchPlan::BatchPlan() = default;
BatchPlan::~BatchPlan() = default;
BatchPlan::BatchPlan(BatchPlan&&) noexcept = default;
BatchPlan& BatchPlan::operator=(BatchPlan&&) noexcept = default;

BatchRunner::BatchRunner(const rtree::RStarTree& data_tree,
                         const rtree::RStarTree& obstacle_tree,
                         const BatchOptions& opts)
    : data_(&data_tree), obstacles_(&obstacle_tree), opts_(opts) {}

BatchRunner::BatchRunner(const rtree::RStarTree& unified_tree,
                         const BatchOptions& opts)
    : data_(&unified_tree), obstacles_(nullptr), opts_(opts) {}

BatchResult BatchRunner::Run(const std::vector<BatchQuery>& queries) const {
  // A throwaway plan: every shard starts fresh, exactly the original
  // one-shot batch semantics.
  BatchPlan plan;
  return RunPlan(queries, &plan, /*store=*/nullptr);
}

void BatchRunner::Reshard(const std::vector<BatchQuery>& queries,
                          BatchPlan* plan, ObstacleStore* store) const {
  if (store != nullptr) {
    for (BatchPlan::ShardState& state : plan->states_) {
      if (state.workspace != nullptr) {
        state.harvest_mark = store->Harvest(
            state.workspace->graph()->obstacles(), state.harvest_mark);
      }
    }
  }
  std::vector<BatchPlan::ShardState> old_states = std::move(plan->states_);
  plan->states_.clear();
  plan->query_count_ = queries.size();

  std::vector<geom::Segment> segments;
  segments.reserve(queries.size());
  for (const BatchQuery& q : queries) segments.push_back(q.segment);
  for (std::vector<size_t>& shard :
       ShardByLocality(segments, opts_.target_shard_size)) {
    BatchPlan::ShardState state;
    state.members = std::move(shard);
    plan->states_.push_back(std::move(state));
  }

  // Differential repair carries workspaces *through* the reshard: each
  // rebuilt shard adopts the not-yet-taken old workspace whose last served
  // cover overlaps its new cover the most (greedy in shard order, lowest
  // old index on ties, no adoption without overlap).  Any match quality is
  // exact — the adopted graph is a superset of whatever the new members
  // need retrieved, and RunPlan's Covers() check still rebuilds when the
  // new cover escapes the adopted domain.  Without the repair gate old
  // workspaces are dropped as before (the PR 8 reshard semantics).
  if (opts_.query.use_tick_warm_start && opts_.query.use_differential_repair) {
    for (BatchPlan::ShardState& state : plan->states_) {
      const geom::Rect cover = ShardCover(segments, state.members);
      size_t best = old_states.size();
      double best_overlap = 0.0;
      for (size_t i = 0; i < old_states.size(); ++i) {
        if (old_states[i].workspace == nullptr) continue;
        const double overlap = cover.OverlapArea(old_states[i].last_cover);
        if (overlap > best_overlap) {
          best_overlap = overlap;
          best = i;
        }
      }
      if (best == old_states.size()) continue;
      state.workspace = std::move(old_states[best].workspace);
      state.last_cover = old_states[best].last_cover;
      state.reuse_hits_mark = old_states[best].reuse_hits_mark;
      state.obstacles_mark = old_states[best].obstacles_mark;
      state.harvest_mark = old_states[best].harvest_mark;
      ++plan->adopted_pending_;
    }
  }
}

BatchResult BatchRunner::RunPlan(const std::vector<BatchQuery>& queries,
                                 BatchPlan* plan, ObstacleStore* store) const {
  Timer timer;
  BatchResult result;
  result.outcomes.resize(queries.size());
  result.stats.query_count = queries.size();
  if (queries.empty()) return result;
  if (plan->query_count_ != queries.size() || plan->states_.empty()) {
    Reshard(queries, plan, store);
  }
  result.stats.shard_count = plan->states_.size();
  result.stats.workspaces_adopted = plan->adopted_pending_;
  plan->adopted_pending_ = 0;

  std::vector<geom::Segment> segments;
  segments.reserve(queries.size());
  for (const BatchQuery& q : queries) segments.push_back(q.segment);

  const uint64_t data_faults0 = data_->pager().faults();
  const uint64_t data_hits0 = data_->pager().hits();
  const uint64_t obs_faults0 =
      obstacles_ != nullptr ? obstacles_->pager().faults() : 0;
  const uint64_t obs_hits0 =
      obstacles_ != nullptr ? obstacles_->pager().hits() : 0;

  size_t threads = opts_.num_threads != 0
                       ? opts_.num_threads
                       : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, plan->states_.size());
  result.stats.threads_used = threads;

  const double extent_floor =
      opts_.locality_extent_floor > 0.0
          ? opts_.locality_extent_floor
          : kSpacingFloorFactor *
                ObstacleSpacing(obstacles_ != nullptr ? *obstacles_ : *data_);
  const bool warm_gate = opts_.query.use_tick_warm_start;
  // Shard workspaces built under the repair gate run deferred adjacency
  // (patch-only) and keep a live settlement log; per-query fallback graphs
  // stay eager — a short-lived fresh graph gains nothing from deferral.
  const bool repair_gate = warm_gate && opts_.query.use_differential_repair;

  Mutex stats_mu;
  auto run_shard = [&](BatchPlan::ShardState& state) {
    uint64_t store_hits = 0;
    size_t carried = 0;
    bool share = false;
    if (opts_.share_workspace) {
      const geom::Rect cover = ShardCover(segments, state.members);
      share = ShardIsLocal(queries, state.members, cover,
                           opts_.share_locality_factor, extent_floor);
      if (share) {
        if (warm_gate && state.workspace != nullptr &&
            state.workspace->Covers(cover)) {
          // Cross-run warm path: the carried workspace's domain still
          // covers the (moved) queries, so its graph — a superset of every
          // member's Theorem-2 obstacle set — and its scan arena serve
          // this run as-is.
          carried = 1;
        } else {
          if (state.workspace != nullptr && store != nullptr) {
            store->Harvest(state.workspace->graph()->obstacles(),
                           state.harvest_mark);
          }
          state.workspace = std::make_unique<core::QueryWorkspace>(
              data_, obstacles_, cover, repair_gate);
          state.reuse_hits_mark = 0;
          state.obstacles_mark = 0;
          state.harvest_mark = 0;
          if (store != nullptr) {
            store_hits += store->PreSeed(state.workspace->graph(),
                                         ExpandedBy(cover, extent_floor));
          }
        }
        state.last_cover = cover;
      }
    }
    if (!share && state.workspace != nullptr) {
      // The guard stopped sharing (the shard's queries drifted apart):
      // retire the carried workspace, banking its retrieval in the store.
      if (store != nullptr) {
        store->Harvest(state.workspace->graph()->obstacles(),
                       state.harvest_mark);
      }
      state.workspace.reset();
      state.reuse_hits_mark = 0;
      state.obstacles_mark = 0;
      state.harvest_mark = 0;
    }

    QueryStats shard_totals;
    for (size_t idx : state.members) {
      const BatchQuery& q = queries[idx];
      QueryOutcome& out = result.outcomes[idx];
      core::QueryWorkspace* ws = state.workspace.get();
      // Guard-declined traffic still reuses earlier retrieval: a
      // per-query graph pre-seeded from the cross-shard store.
      std::optional<core::QueryWorkspace> query_ws;
      if (ws == nullptr && store != nullptr && opts_.share_workspace) {
        query_ws.emplace(data_, obstacles_, q.segment.Bounds());
        store_hits += store->PreSeed(
            query_ws->graph(), ExpandedBy(q.segment.Bounds(), extent_floor));
        ws = &*query_ws;
      }
      QueryStats* out_stats = nullptr;
      if (q.kind == BatchQuery::Kind::kConn) {
        out.conn = obstacles_ != nullptr
                       ? core::ConnQuery(*data_, *obstacles_, q.segment,
                                         opts_.query, ws)
                       : core::ConnQuery1T(*data_, q.segment, opts_.query, ws);
        out_stats = &out.conn->stats;
      } else {
        const core::TickWarmStart warm{q.prior, q.client_tag};
        out.coknn = obstacles_ != nullptr
                        ? core::CoknnQueryTick(*data_, *obstacles_, q.segment,
                                               q.k, warm, opts_.query, ws)
                        : core::CoknnQueryTick1T(*data_, q.segment, q.k, warm,
                                                 opts_.query, ws);
        out_stats = &out.coknn->stats;
      }
      if (carried != 0) {
        // The query ran on cross-run state: mark it (unless the
        // stationary-segment memo already did) and credit its Dijkstra
        // scans to the carried arena.
        if (out_stats->tick_warm_starts == 0) out_stats->tick_warm_starts = 1;
        out_stats->tick_frontier_reuse += out_stats->dijkstra_runs;
      }
      shard_totals += *out_stats;
      if (query_ws && store != nullptr) {
        store->Harvest(query_ws->graph()->obstacles(), 0);
      }
    }
    shard_totals.cross_shard_store_hits += store_hits;
    if (state.workspace != nullptr && store != nullptr) {
      state.harvest_mark = store->Harvest(
          state.workspace->graph()->obstacles(), state.harvest_mark);
    }

    MutexLock lock(stats_mu);
    result.stats.per_query_totals += shard_totals;
    result.stats.cross_shard_store_hits += store_hits;
    result.stats.shards_carried += carried;
    if (state.workspace != nullptr) {
      result.stats.obstacle_reuse_hits +=
          state.workspace->ObstacleReuseHits() - state.reuse_hits_mark;
      result.stats.obstacles_inserted +=
          state.workspace->ObstacleCount() - state.obstacles_mark;
      state.reuse_hits_mark = state.workspace->ObstacleReuseHits();
      state.obstacles_mark = state.workspace->ObstacleCount();
    }
  };

  // With the async miss pipeline on, stage every shard's subtree tops up
  // front (hints + one demand request kept as the shard's park token), so
  // the I/O workers warm shard roots while the batch spins up.  The tree
  // the engines hit first drives the staging: the obstacle tree in 2-tree
  // mode (IOR descends it before any data access), the unified tree
  // otherwise.
  const rtree::RStarTree& stage_tree =
      obstacles_ != nullptr ? *obstacles_ : *data_;
  const bool async = stage_tree.PrefetchEnabled();
  std::vector<storage::PageRequest> stage(plan->states_.size());
  if (async) {
    for (size_t i = 0; i < plan->states_.size(); ++i) {
      stage[i] = StageShard(stage_tree, segments, plan->states_[i].members);
    }
  }

  // Work-parking scheduler: shards live in a runnable queue; a worker that
  // pops a shard whose staged fault is still in flight re-queues it
  // (bounded by kMaxShardParks) and picks up another shard's work instead
  // of blocking on the device.  With async off this degrades to the plain
  // FIFO the submit-per-shard loop used to be — same order, same
  // single-worker determinism.
  Mutex sched_mu;
  std::deque<size_t> runnable;
  for (size_t i = 0; i < plan->states_.size(); ++i) runnable.push_back(i);
  std::vector<uint8_t> parks(plan->states_.size(), 0);
  size_t parked_total = 0;

  auto worker = [&]() {
    while (true) {
      size_t idx = 0;
      {
        MutexLock lock(sched_mu);
        if (runnable.empty()) return;
        idx = runnable.front();
        runnable.pop_front();
        if (async && !runnable.empty() && parks[idx] < kMaxShardParks &&
            stage[idx].valid() && !stage[idx].Ready()) {
          ++parks[idx];
          ++parked_total;
          runnable.push_back(idx);
          continue;
        }
      }
      if (stage[idx].valid()) {
        // Consume the park token (usually already completed).  Advisory
        // only: the engines fetch what they need themselves, so a failed
        // staging read costs nothing.
        const StatusOr<storage::PinnedPage> staged = stage[idx].Wait();
        (void)staged;
      }
      run_shard(plan->states_[idx]);
    }
  };

  if (threads <= 1) {
    // Single worker: run inline, sparing the pool round-trip.
    worker();
  } else {
    ThreadPool pool(threads);
    for (size_t t = 0; t < threads; ++t) pool.Submit(worker);
    pool.WaitIdle();
  }
  result.stats.shards_parked = parked_total;

  result.stats.data_page_faults = data_->pager().faults() - data_faults0;
  result.stats.buffer_hits = data_->pager().hits() - data_hits0;
  if (obstacles_ != nullptr) {
    result.stats.obstacle_page_faults =
        obstacles_->pager().faults() - obs_faults0;
    result.stats.buffer_hits += obstacles_->pager().hits() - obs_hits0;
  }
  auto fold_depths = [&result](const rtree::RStarTree& tree) {
    if (!tree.PrefetchEnabled()) return;
    const storage::MissQueue::DepthStats d = tree.pager().MissQueueDepths();
    result.stats.miss_queue_depth_p50 =
        std::max(result.stats.miss_queue_depth_p50, d.p50);
    result.stats.miss_queue_depth_p99 =
        std::max(result.stats.miss_queue_depth_p99, d.p99);
  };
  fold_depths(*data_);
  if (obstacles_ != nullptr) fold_depths(*obstacles_);
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace exec
}  // namespace conn
