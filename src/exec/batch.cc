#include "exec/batch.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/check.h"
#include "common/mutex.h"
#include "common/timer.h"
#include "core/workspace.h"
#include "exec/sharder.h"
#include "exec/thread_pool.h"
#include "geom/box.h"

namespace conn {
namespace exec {

namespace {

/// Bounding rectangle of a shard's query segments (the workspace's extra
/// grid cover beyond the trees' own bounds).
geom::Rect ShardCover(const std::vector<BatchQuery>& queries,
                      const std::vector<size_t>& shard) {
  geom::Rect cover = queries[shard.front()].segment.Bounds();
  for (size_t i = 1; i < shard.size(); ++i) {
    cover = cover.ExpandedToCover(queries[shard[i]].segment.Bounds());
  }
  return cover;
}

/// Typical spacing between neighboring obstacles in \p tree — the natural
/// length scale of a query's obstacle neighborhood.  Zero/short queries
/// (DegenerateConn point lookups) have no extent of their own, so the
/// locality guard measures their spread in units of this instead.  For the
/// unified tree (1-tree mode) size() also counts data points, so the value
/// underestimates the true spacing — the guard then errs toward *not*
/// sharing, which is the safe direction; callers needing exact control set
/// BatchOptions::locality_extent_floor.
double ObstacleSpacing(const rtree::RStarTree& tree) {
  if (tree.size() == 0) return 0.0;
  const geom::Rect b = tree.Bounds();
  return std::max(b.Width(), b.Height()) /
         std::sqrt(static_cast<double>(tree.size()));
}

/// The adaptive-sharing locality guard (see BatchOptions).  \p extent_floor
/// keeps the guard meaningful for (near-)degenerate query segments.
bool ShardIsLocal(const std::vector<BatchQuery>& queries,
                  const std::vector<size_t>& shard, const geom::Rect& cover,
                  double factor, double extent_floor) {
  if (factor <= 0.0) return true;
  double max_extent = extent_floor;
  for (size_t idx : shard) {
    const geom::Rect b = queries[idx].segment.Bounds();
    max_extent = std::max({max_extent, b.Width(), b.Height()});
  }
  return std::max(cover.Width(), cover.Height()) <= factor * max_extent;
}

/// Extent floor: a few obstacle spacings — queries that close together
/// overlap in the obstacles they retrieve even when the segments
/// themselves are points.
constexpr double kSpacingFloorFactor = 8.0;

}  // namespace

BatchRunner::BatchRunner(const rtree::RStarTree& data_tree,
                         const rtree::RStarTree& obstacle_tree,
                         const BatchOptions& opts)
    : data_(&data_tree), obstacles_(&obstacle_tree), opts_(opts) {}

BatchRunner::BatchRunner(const rtree::RStarTree& unified_tree,
                         const BatchOptions& opts)
    : data_(&unified_tree), obstacles_(nullptr), opts_(opts) {}

BatchResult BatchRunner::Run(const std::vector<BatchQuery>& queries) const {
  Timer timer;
  BatchResult result;
  result.outcomes.resize(queries.size());
  result.stats.query_count = queries.size();
  if (queries.empty()) return result;

  std::vector<geom::Segment> segments;
  segments.reserve(queries.size());
  for (const BatchQuery& q : queries) segments.push_back(q.segment);
  const std::vector<std::vector<size_t>> shards =
      ShardByLocality(segments, opts_.target_shard_size);
  result.stats.shard_count = shards.size();

  const uint64_t data_faults0 = data_->pager().faults();
  const uint64_t data_hits0 = data_->pager().hits();
  const uint64_t obs_faults0 =
      obstacles_ != nullptr ? obstacles_->pager().faults() : 0;
  const uint64_t obs_hits0 =
      obstacles_ != nullptr ? obstacles_->pager().hits() : 0;

  size_t threads = opts_.num_threads != 0
                       ? opts_.num_threads
                       : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, shards.size());
  result.stats.threads_used = threads;

  const double extent_floor =
      opts_.locality_extent_floor > 0.0
          ? opts_.locality_extent_floor
          : kSpacingFloorFactor *
                ObstacleSpacing(obstacles_ != nullptr ? *obstacles_ : *data_);

  Mutex stats_mu;
  auto run_shard = [&](const std::vector<size_t>& shard) {
    std::optional<core::QueryWorkspace> workspace;
    if (opts_.share_workspace) {
      const geom::Rect cover = ShardCover(queries, shard);
      if (ShardIsLocal(queries, shard, cover, opts_.share_locality_factor,
                       extent_floor)) {
        workspace.emplace(data_, obstacles_, cover);
      }
    }
    core::QueryWorkspace* ws = workspace ? &*workspace : nullptr;
    QueryStats shard_totals;
    for (size_t idx : shard) {
      const BatchQuery& q = queries[idx];
      QueryOutcome& out = result.outcomes[idx];
      if (q.kind == BatchQuery::Kind::kConn) {
        out.conn = obstacles_ != nullptr
                       ? core::ConnQuery(*data_, *obstacles_, q.segment,
                                         opts_.query, ws)
                       : core::ConnQuery1T(*data_, q.segment, opts_.query, ws);
        shard_totals += out.conn->stats;
      } else {
        out.coknn =
            obstacles_ != nullptr
                ? core::CoknnQuery(*data_, *obstacles_, q.segment, q.k,
                                   opts_.query, ws)
                : core::CoknnQuery1T(*data_, q.segment, q.k, opts_.query, ws);
        shard_totals += out.coknn->stats;
      }
    }
    MutexLock lock(stats_mu);
    result.stats.per_query_totals += shard_totals;
    if (workspace) {
      result.stats.obstacle_reuse_hits += workspace->ObstacleReuseHits();
      result.stats.obstacles_inserted += workspace->ObstacleCount();
    }
  };

  if (threads <= 1) {
    // Single worker: run inline, sparing the pool round-trip (and keeping
    // single-core batch runs trivially deterministic to profile).
    for (const std::vector<size_t>& shard : shards) run_shard(shard);
  } else {
    ThreadPool pool(threads);
    for (const std::vector<size_t>& shard : shards) {
      pool.Submit([&run_shard, &shard] { run_shard(shard); });
    }
    pool.WaitIdle();
  }

  result.stats.data_page_faults = data_->pager().faults() - data_faults0;
  result.stats.buffer_hits = data_->pager().hits() - data_hits0;
  if (obstacles_ != nullptr) {
    result.stats.obstacle_page_faults =
        obstacles_->pager().faults() - obs_faults0;
    result.stats.buffer_hits += obstacles_->pager().hits() - obs_hits0;
  }
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace exec
}  // namespace conn
