// Spatial sharding of a query batch: STR-style tiling over the query
// segments' MBR centers.
//
// The batch executor's workspace reuse only pays off when the queries
// sharing a workspace overlap in the obstacles their incremental retrieval
// touches, i.e. when they are spatially close.  Sort-Tile-Recursive — the
// same space partitioning the R-tree bulk loader uses — gives compact,
// deterministic tiles in O(n log n): sort centers by x, cut into vertical
// slices of ~sqrt(S) tiles each, sort each slice by y, cut into runs of the
// target shard size.

#ifndef CONN_EXEC_SHARDER_H_
#define CONN_EXEC_SHARDER_H_

#include <cstddef>
#include <vector>

#include "geom/box.h"
#include "geom/segment.h"

namespace conn {
namespace exec {

/// Partitions query indices [0, queries.size()) into spatially compact
/// shards of roughly \p target_shard_size members each.  Every index
/// appears in exactly one shard; shards and their members are in a
/// deterministic order (ties broken by index).
std::vector<std::vector<size_t>> ShardByLocality(
    const std::vector<geom::Segment>& queries, size_t target_shard_size);

/// Bounding rectangle of one shard's query segments — the workspace's
/// extra grid cover beyond the trees' own bounds, and the rectangle the
/// tick loop re-checks against a carried workspace's domain.  \p shard
/// must be non-empty and index into \p queries.
geom::Rect ShardCover(const std::vector<geom::Segment>& queries,
                      const std::vector<size_t>& shard);

}  // namespace exec
}  // namespace conn

#endif  // CONN_EXEC_SHARDER_H_
