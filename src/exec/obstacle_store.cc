#include "exec/obstacle_store.h"

namespace conn {
namespace exec {

size_t ObstacleStore::Harvest(const vis::ObstacleSet& set, size_t from) {
  const size_t end = set.size();
  if (from >= end) return end;
  MutexLock lock(mu_);
  for (size_t i = from; i < end; ++i) {
    const rtree::ObjectId id = set.id(static_cast<uint32_t>(i));
    if (ids_.insert(id).second) {
      entries_.emplace_back(id, set.rect(static_cast<uint32_t>(i)));
    }
  }
  return end;
}

uint64_t ObstacleStore::PreSeed(vis::VisGraph* graph,
                                const geom::Rect& region) const {
  // Copy the relevant slice out under the latch; the graph insertions —
  // the expensive part — run on the caller's (shard-local) graph without
  // serializing sibling shards.
  std::vector<std::pair<rtree::ObjectId, geom::Rect>> relevant;
  {
    MutexLock lock(mu_);
    for (const auto& [id, rect] : entries_) {
      if (rect.Intersects(region)) relevant.emplace_back(id, rect);
    }
  }
  uint64_t inserted = 0;
  for (const auto& [id, rect] : relevant) {
    if (graph->AddObstacle(rect, id)) ++inserted;
  }
  return inserted;
}

size_t ObstacleStore::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace exec
}  // namespace conn
