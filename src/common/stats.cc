#include "common/stats.h"

#include <cstdio>

#include "common/check.h"

namespace conn {

QueryStats& QueryStats::operator+=(const QueryStats& other) {
  data_page_reads += other.data_page_reads;
  obstacle_page_reads += other.obstacle_page_reads;
  buffer_hits += other.buffer_hits;
  prefetch_issued += other.prefetch_issued;
  prefetch_hits += other.prefetch_hits;
  prefetch_wasted += other.prefetch_wasted;
  points_evaluated += other.points_evaluated;
  obstacles_evaluated += other.obstacles_evaluated;
  vis_graph_vertices += other.vis_graph_vertices;
  dijkstra_runs += other.dijkstra_runs;
  dijkstra_settled += other.dijkstra_settled;
  visibility_tests += other.visibility_tests;
  seed_tests += other.seed_tests;
  scan_warm_restarts += other.scan_warm_restarts;
  tick_warm_starts += other.tick_warm_starts;
  tick_frontier_reuse += other.tick_frontier_reuse;
  cross_shard_store_hits += other.cross_shard_store_hits;
  repairs_applied += other.repairs_applied;
  tuples_carried += other.tuples_carried;
  tuples_rescored += other.tuples_rescored;
  frontier_shares += other.frontier_shares;
  vr_cache_evictions += other.vr_cache_evictions;
  split_evaluations += other.split_evaluations;
  lemma1_prunes += other.lemma1_prunes;
  lemma7_terminations += other.lemma7_terminations;
  lemma2_terminations += other.lemma2_terminations;
  cpu_seconds += other.cpu_seconds;
  return *this;
}

QueryStats QueryStats::AveragedOver(uint64_t queries) const {
  CONN_CHECK_MSG(queries > 0, "cannot average over zero queries");
  QueryStats avg;
  avg.data_page_reads = data_page_reads / queries;
  avg.obstacle_page_reads = obstacle_page_reads / queries;
  avg.buffer_hits = buffer_hits / queries;
  avg.prefetch_issued = prefetch_issued / queries;
  avg.prefetch_hits = prefetch_hits / queries;
  avg.prefetch_wasted = prefetch_wasted / queries;
  avg.points_evaluated = points_evaluated / queries;
  avg.obstacles_evaluated = obstacles_evaluated / queries;
  avg.vis_graph_vertices = vis_graph_vertices / queries;
  avg.dijkstra_runs = dijkstra_runs / queries;
  avg.dijkstra_settled = dijkstra_settled / queries;
  avg.visibility_tests = visibility_tests / queries;
  avg.seed_tests = seed_tests / queries;
  avg.scan_warm_restarts = scan_warm_restarts / queries;
  avg.tick_warm_starts = tick_warm_starts / queries;
  avg.tick_frontier_reuse = tick_frontier_reuse / queries;
  avg.cross_shard_store_hits = cross_shard_store_hits / queries;
  avg.repairs_applied = repairs_applied / queries;
  avg.tuples_carried = tuples_carried / queries;
  avg.tuples_rescored = tuples_rescored / queries;
  avg.frontier_shares = frontier_shares / queries;
  avg.vr_cache_evictions = vr_cache_evictions / queries;
  avg.split_evaluations = split_evaluations / queries;
  avg.lemma1_prunes = lemma1_prunes / queries;
  avg.lemma7_terminations = lemma7_terminations / queries;
  avg.lemma2_terminations = lemma2_terminations / queries;
  avg.cpu_seconds = cpu_seconds / static_cast<double>(queries);
  return avg;
}

std::string QueryStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "QueryStats{io_pages=%llu (data=%llu, obstacle=%llu, hits=%llu), "
      "NPE=%llu, NOE=%llu, |SVG|=%llu, cpu=%.4fs, io=%.4fs, cost=%.4fs}",
      static_cast<unsigned long long>(TotalPageReads()),
      static_cast<unsigned long long>(data_page_reads),
      static_cast<unsigned long long>(obstacle_page_reads),
      static_cast<unsigned long long>(buffer_hits),
      static_cast<unsigned long long>(points_evaluated),
      static_cast<unsigned long long>(obstacles_evaluated),
      static_cast<unsigned long long>(vis_graph_vertices), cpu_seconds,
      IoSeconds(), QueryCostSeconds());
  return std::string(buf);
}

}  // namespace conn
