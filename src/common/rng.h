// Deterministic pseudo-random number generation for data generators, tests,
// and benchmarks.  A fixed algorithm (splitmix64 seeding + xoshiro256**)
// keeps datasets byte-identical across platforms and standard library
// versions, which std::mt19937 + std::uniform_real_distribution does not
// guarantee.

#ifndef CONN_COMMON_RNG_H_
#define CONN_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace conn {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via splitmix64.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    uint64_t x = seed;
    for (auto& word : s_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    CONN_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformU64(uint64_t n) {
    CONN_DCHECK(n > 0);
    // Lemire's nearly-divisionless bounded sampling (bias negligible here).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(NextU64()) * n) >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double Normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace conn

#endif  // CONN_COMMON_RNG_H_
