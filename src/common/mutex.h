// Capability-annotated mutex wrappers: the only lock primitives allowed in
// src/ (tools/lint_invariants.py enforces that raw std::mutex and friends
// never appear outside this header).
//
// The annotation macros drive Clang's thread-safety analysis
// (-Wthread-safety): each latch declares which fields it guards
// (GUARDED_BY) and each internal method declares which latch the caller
// must hold (REQUIRES), so a forgotten lock or a call to a
// latch-held-only helper without the latch is a *compile error* in the
// thread-safety CI configuration instead of a TSan roll of the dice.  Off
// Clang the macros expand to nothing and the wrappers cost exactly one
// std::mutex / std::condition_variable.
//
// Macro names follow Clang's official thread-safety documentation (the
// same set Abseil ships); see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef CONN_COMMON_MUTEX_H_
#define CONN_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define CONN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CONN_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define CAPABILITY(x) CONN_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY CONN_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) CONN_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) CONN_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
  CONN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) CONN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ACQUIRE(...) CONN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) CONN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  CONN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RETURN_CAPABILITY(x) CONN_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  CONN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace conn {

class CondVar;

/// A std::mutex carrying the "mutex" capability for Clang's analysis.
/// Prefer the RAII MutexLock; Lock()/Unlock() exist for the rare manual
/// protocol (and for the analysis to see the acquire/release points).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex (SCOPED_CAPABILITY).  Supports the
/// std::unique_lock-style temporary Unlock()/Lock() protocol around
/// long-running work — Clang tracks the relock through the annotations.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the latch (e.g. while running a task).
  void Unlock() RELEASE() {
    mu_.Unlock();
    held_ = false;
  }

  /// Reacquires after a temporary Unlock().
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to conn::Mutex.  Wait() atomically releases
/// and reacquires the caller's latch, so the capability set is unchanged
/// across the call — which is exactly what REQUIRES(mu) expresses.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified.  The caller must hold \p mu (typically via a
  /// MutexLock on it); spurious wakeups happen — use the predicate
  /// overload.
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then hand
    // ownership back so the caller's MutexLock stays the sole owner.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Blocks until \p pred() holds.  Body analysis is suppressed: \p pred
  /// carries its own REQUIRES annotation naming the *caller's* latch
  /// expression, which the analysis cannot unify with the parameter alias
  /// \p mu here; the REQUIRES contract on this declaration is still
  /// enforced at every call site.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace conn

#endif  // CONN_COMMON_MUTEX_H_
