#include "common/status.h"

namespace conn {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

Status::Status(StatusCode code, std::string msg)
    : code_(code), msg_(std::move(msg)) {
  CONN_CHECK_MSG(code != StatusCode::kOk,
                 "non-default Status must carry an error code");
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace conn
