// Invariant-checking macros.
//
// CONN_CHECK stays enabled in all build types: a spatial index that silently
// corrupts its structure is worse than one that aborts, and the checks guard
// structural invariants that are cheap relative to the I/O they sit next to.
// CONN_DCHECK compiles away under NDEBUG and is reserved for hot loops
// (geometry predicates, heap operations).

#ifndef CONN_COMMON_CHECK_H_
#define CONN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace conn {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "CONN_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace conn

#define CONN_CHECK(cond)                                     \
  do {                                                       \
    if (!(cond)) ::conn::CheckFailed(__FILE__, __LINE__, #cond, ""); \
  } while (0)

#define CONN_CHECK_MSG(cond, msg)                            \
  do {                                                       \
    if (!(cond)) ::conn::CheckFailed(__FILE__, __LINE__, #cond, msg); \
  } while (0)

#ifdef NDEBUG
#define CONN_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define CONN_DCHECK(cond) CONN_CHECK(cond)
#endif

#endif  // CONN_COMMON_CHECK_H_
