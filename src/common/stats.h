// Per-query performance counters matching the metrics of Section 5.1 of the
// paper: I/O cost (pages), CPU time, query cost (CPU + 10 ms per page
// fault), visibility graph size |SVG|, number of points evaluated (NPE), and
// number of obstacles evaluated (NOE).

#ifndef CONN_COMMON_STATS_H_
#define CONN_COMMON_STATS_H_

#include <cstdint>
#include <string>

namespace conn {

/// Cost charged per page fault by the paper's query cost model (Section 5.1:
/// "the I/O time is computed by charging 10ms for each page fault").
inline constexpr double kIoCostPerPageSeconds = 0.010;

/// Counters accumulated by a single CONN / COkNN / ONN query execution.
struct QueryStats {
  // --- I/O ---
  uint64_t data_page_reads = 0;      ///< page faults on the data R-tree Tp
  uint64_t obstacle_page_reads = 0;  ///< page faults on the obstacle R-tree To
  uint64_t buffer_hits = 0;          ///< LRU buffer hits (no fault charged)

  // --- asynchronous miss pipeline (BufferOptions::async_io) ---
  uint64_t prefetch_issued = 0;  ///< staging hints accepted into the queue
  uint64_t prefetch_hits = 0;    ///< demand touches served by a staged page
  uint64_t prefetch_wasted = 0;  ///< staged pages evicted before any demand

  // --- algorithmic work (paper metrics) ---
  uint64_t points_evaluated = 0;     ///< NPE: data points fully processed
  uint64_t obstacles_evaluated = 0;  ///< NOE: obstacles added to the local VG
  uint64_t vis_graph_vertices = 0;   ///< |SVG|: vertices in the local VG

  // --- finer-grained instrumentation ---
  uint64_t dijkstra_runs = 0;        ///< shortest-path invocations
  uint64_t dijkstra_settled = 0;     ///< total vertices settled across runs
  uint64_t visibility_tests = 0;     ///< segment-vs-obstacle interior tests
  uint64_t seed_tests = 0;           ///< source->vertex seed sight-line tests
  uint64_t scan_warm_restarts = 0;   ///< IOR waves absorbed by Revalidate()

  // --- tick-loop (subscription service) reuse ---
  /// Queries served via cross-tick state (carried workspace or memo).
  uint64_t tick_warm_starts = 0;
  /// Dijkstra scans run on a tick-carried (warm) arena.
  uint64_t tick_frontier_reuse = 0;
  /// Obstacles pre-seeded from the cross-shard store.
  uint64_t cross_shard_store_hits = 0;

  // --- differential tick repair (ConnOptions::use_differential_repair) ---
  /// Queries that ran as a repair against a carried workspace (the
  /// settlement log was live), rather than as a fresh evaluation.
  uint64_t repairs_applied = 0;
  /// Evaluated data points whose Theorem-2 search range was fully covered
  /// by the workspace's settlement log: their candidate contribution was
  /// carried without touching the obstacle stream.
  uint64_t tuples_carried = 0;
  /// Evaluated data points whose search range escaped the settlement log's
  /// coverage and had to stream (re-score) obstacles from the tree.
  uint64_t tuples_rescored = 0;
  /// Coverage waves served by a settlement-log capsule another client of
  /// the shard published — the cross-client frontier-sharing wins.
  uint64_t frontier_shares = 0;

  uint64_t vr_cache_evictions = 0;   ///< visible regions dropped on epoch bump
  uint64_t split_evaluations = 0;    ///< distance-curve crossing computations
  uint64_t lemma1_prunes = 0;        ///< RLU endpoint-dominance fast paths
  uint64_t lemma7_terminations = 0;  ///< CPLC early exits via CPLMAX
  uint64_t lemma2_terminations = 0;  ///< CONN early exits via RLMAX

  double cpu_seconds = 0.0;          ///< measured wall time of the query body

  /// Total page faults across both (or the unified) tree(s).
  uint64_t TotalPageReads() const {
    return data_page_reads + obstacle_page_reads;
  }

  /// I/O time under the 10 ms / fault cost model.
  double IoSeconds() const {
    return static_cast<double>(TotalPageReads()) * kIoCostPerPageSeconds;
  }

  /// Query cost = CPU time + modeled I/O time (the paper's "total time").
  double QueryCostSeconds() const { return cpu_seconds + IoSeconds(); }

  /// Element-wise accumulation (for averaging across a workload).
  QueryStats& operator+=(const QueryStats& other);

  /// Element-wise division by a positive query count.
  QueryStats AveragedOver(uint64_t queries) const;

  /// Multi-line human-readable dump used by examples and failure messages.
  std::string ToString() const;
};

}  // namespace conn

#endif  // CONN_COMMON_STATS_H_
