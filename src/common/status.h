// Status / StatusOr: exception-free error propagation across the public API,
// in the style used by RocksDB and Arrow.  Internal invariant violations use
// CONN_CHECK (fail fast); recoverable conditions (bad options, malformed
// input geometry, missing pages) travel as Status.

#ifndef CONN_COMMON_STATUS_H_
#define CONN_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace conn {

/// Error categories surfaced by the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< caller passed options/geometry the API rejects
  kNotFound,         ///< a referenced page / entry does not exist
  kCorruption,       ///< on-"disk" structure failed validation
  kUnsupported,      ///< feature combination not implemented
  kInternal,         ///< should-not-happen condition reported gracefully
};

/// Lightweight success-or-error result. Cheap to copy when OK (no allocation).
/// [[nodiscard]]: silently dropping an error Status is how storage bugs
/// hide — call sites must consume it, CONN_CHECK it, or cast to void with
/// a comment saying why the drop is sound.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with \p code and human-readable \p msg.
  Status(StatusCode code, std::string msg);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<category>: <message>", for logs and test failure output.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// A value or an error. `value()` CHECK-fails on error; test `ok()` first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT implicit
    CONN_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CONN_CHECK_MSG(ok(), status_.message().c_str());
    return value_;
  }
  T& value() & {
    CONN_CHECK_MSG(ok(), status_.message().c_str());
    return value_;
  }
  T&& value() && {
    CONN_CHECK_MSG(ok(), status_.message().c_str());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define CONN_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::conn::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace conn

#endif  // CONN_COMMON_STATUS_H_
