#include "storage/miss_queue.h"

#include <algorithm>
#include <utility>

#include "storage/pool_tuning.h"

namespace conn {
namespace storage {

MissQueue::MissQueue(size_t io_threads, size_t depth_cap, Servicer servicer)
    : depth_cap_(std::max<size_t>(1, depth_cap)),
      servicer_(std::move(servicer)),
      depth_hist_(depth_cap_ + 1, 0) {
  const size_t n = std::max<size_t>(1, io_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MissQueue::~MissQueue() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  // Workers only exit once both classes are empty, so everything queued at
  // shutdown (including demand entries with blocked waiters) is serviced
  // before the join returns.
  for (std::thread& w : workers_) w.join();
}

bool MissQueue::EnqueueDemand(Item item) {
  {
    MutexLock lock(mu_);
    if (shutdown_ || DepthLocked() >= depth_cap_) return false;
    demand_.push_back(std::move(item));
    SampleDepth();
  }
  work_available_.NotifyOne();
  return true;
}

bool MissQueue::EnqueueHint(Item item) {
  {
    MutexLock lock(mu_);
    if (shutdown_ || DepthLocked() >= depth_cap_) return false;
    if (!queued_hint_ids_.insert(item.id).second) return false;
    hints_.push_back(std::move(item));
    SampleDepth();
  }
  work_available_.NotifyOne();
  return true;
}

void MissQueue::SampleDepth() {
  // Depth is sampled after the push, so it is always >= 1 and always
  // within the histogram (the cap bounds it).
  ++depth_hist_[DepthLocked()];
  ++depth_samples_;
}

MissQueue::DepthStats MissQueue::Depths() {
  MutexLock lock(mu_);
  DepthStats out;
  out.samples = depth_samples_;
  if (depth_samples_ == 0) return out;
  // Nearest-rank percentiles over the recorded samples.
  const uint64_t p50_rank = (depth_samples_ + 1) / 2;
  const uint64_t p99_rank = depth_samples_ - depth_samples_ / 100;
  uint64_t cum = 0;
  bool got50 = false;
  bool got99 = false;
  for (size_t depth = 0; depth < depth_hist_.size(); ++depth) {
    if (depth_hist_[depth] == 0) continue;
    cum += depth_hist_[depth];
    if (!got50 && cum >= p50_rank) {
      out.p50 = depth;
      got50 = true;
    }
    if (!got99 && cum >= p99_rank) {
      out.p99 = depth;
      got99 = true;
    }
    out.max = depth;
  }
  return out;
}

void MissQueue::ResetDepthStats() {
  MutexLock lock(mu_);
  std::fill(depth_hist_.begin(), depth_hist_.end(), 0);
  depth_samples_ = 0;
}

void MissQueue::WorkerLoop() {
  while (true) {
    std::vector<Item> batch;
    {
      MutexLock lock(mu_);
      work_available_.Wait(mu_, [this]() REQUIRES(mu_) {
        return shutdown_ || !demand_.empty() || !hints_.empty();
      });
      if (demand_.empty() && hints_.empty()) {
        if (shutdown_) return;
        continue;
      }
      // Demand strictly first; a cycle claims from one class only, so a
      // hint can never ride ahead of (or inside) a demand batch.
      const bool from_hints = demand_.empty();
      std::deque<Item>& q = from_hints ? hints_ : demand_;
      while (!q.empty() && batch.size() < kIoBatchPages) {
        batch.push_back(std::move(q.front()));
        q.pop_front();
        if (from_hints) queued_hint_ids_.erase(batch.back().id);
      }
    }
    servicer_(std::move(batch));
  }
}

}  // namespace storage
}  // namespace conn
