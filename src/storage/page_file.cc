#include "storage/page_file.h"

namespace conn {
namespace storage {

PageId PageFile::Allocate() {
  pages_.push_back(std::make_unique<Page>());
  return static_cast<PageId>(pages_.size() - 1);
}

Status PageFile::View(PageId id, const Page** out) const {
  if (id >= pages_.size()) {
    return Status::NotFound("PageFile::View: page " + std::to_string(id) +
                            " not allocated");
  }
  device_reads_.fetch_add(1, std::memory_order_relaxed);
  *out = pages_[id].get();
  return Status::OK();
}

void PageFile::ViewBatch(const std::vector<PageId>& ids,
                         std::vector<const Page*>* views) const {
  views->assign(ids.size(), nullptr);
  if (ids.empty()) return;
  device_read_batches_.fetch_add(1, std::memory_order_relaxed);
  uint64_t resolved = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= pages_.size()) continue;
    (*views)[i] = pages_[ids[i]].get();
    ++resolved;
  }
  device_reads_.fetch_add(resolved, std::memory_order_relaxed);
}

Status PageFile::Read(PageId id, Page* out) const {
  const Page* view = nullptr;
  CONN_RETURN_IF_ERROR(View(id, &view));
  *out = *view;
  return Status::OK();
}

Status PageFile::Write(PageId id, const Page& page) {
  if (id >= pages_.size()) {
    return Status::NotFound("PageFile::Write: page " + std::to_string(id) +
                            " not allocated");
  }
  ++device_writes_;
  *pages_[id] = page;
  return Status::OK();
}

}  // namespace storage
}  // namespace conn
