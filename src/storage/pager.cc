#include "storage/pager.h"

namespace conn {
namespace storage {

Status Pager::Read(PageId id, Page* out) {
  if (buffer_.Get(id, out)) {
    ++hits_;
    return Status::OK();
  }
  CONN_RETURN_IF_ERROR(file_.Read(id, out));
  ++faults_;
  buffer_.Put(id, *out);
  return Status::OK();
}

Status Pager::Write(PageId id, const Page& page) {
  CONN_RETURN_IF_ERROR(file_.Write(id, page));
  buffer_.Put(id, page);
  return Status::OK();
}

}  // namespace storage
}  // namespace conn
