#include "storage/pager.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace conn {
namespace storage {

Pager::~Pager() {
  // Join the I/O workers (draining queued requests) while the pool and
  // file they write into are still alive.
  miss_queue_.reset();
}

void Pager::ConfigureBuffer(const BufferOptions& options) {
  // Quiesce in-flight servicing first: workers stage into the pool that is
  // about to be rebuilt.
  miss_queue_.reset();
  pool_.Configure(options);
  hint_depth_.store(kHintDepthCap, std::memory_order_relaxed);
  tune_issued_mark_.store(prefetch_issued_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  tune_wasted_mark_.store(pool_.prefetch_wasted(), std::memory_order_relaxed);
  if (options.async_io && options.capacity_pages > 0) {
    miss_queue_ = std::make_unique<MissQueue>(
        options.io_threads, options.miss_queue_depth,
        [this](std::vector<MissQueue::Item> batch) {
          ServiceBatch(std::move(batch));
        });
  }
}

void Pager::ResetCounters() {
  faults_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  prefetch_issued_.store(0, std::memory_order_relaxed);
  pool_.ResetPrefetchCounters();
  // The autotuner restarts from the widest window with fresh marks: a
  // measured phase should adapt to its own workload, not the warm-up's.
  hint_depth_.store(kHintDepthCap, std::memory_order_relaxed);
  tune_issued_mark_.store(0, std::memory_order_relaxed);
  tune_wasted_mark_.store(0, std::memory_order_relaxed);
  if (miss_queue_ != nullptr) miss_queue_->ResetDepthStats();
}

MissQueue::DepthStats Pager::MissQueueDepths() {
  if (miss_queue_ == nullptr) return MissQueue::DepthStats{};
  return miss_queue_->Depths();
}

StatusOr<PinnedPage> Pager::Fetch(PageId id) {
  if (miss_queue_ == nullptr) return SyncFetch(id);
  return FetchAsync(id).Wait();
}

StatusOr<PinnedPage> Pager::SyncFetch(PageId id) {
  if (pool_.capacity() == 0) {
    // Unbuffered (the paper's default configuration): every read faults and
    // the view aliases the file's stable page storage — no copy at all.
    const Page* view = nullptr;
    CONN_RETURN_IF_ERROR(file_.View(id, &view));
    faults_.fetch_add(1, std::memory_order_relaxed);
    return PinnedPage::Direct(id, view);
  }

  PinnedPage out;
  if (pool_.TryGet(id, &out)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  const Page* src = nullptr;
  CONN_RETURN_IF_ERROR(file_.View(id, &src));
  faults_.fetch_add(1, std::memory_order_relaxed);
  if (!pool_.Insert(id, *src, &out)) {
    // Every candidate frame is pinned: serve a handle-owned copy without
    // caching it (and skip readahead — further staging attempts would
    // burn device reads against the same pinned-full pool).  Rare — it
    // takes as many concurrently pinned pages as the pool has frames.
    return PinnedPage::Overflow(id, *src);
  }

  // Optional readahead: stage the immediately following ids (STR bulk
  // loading lays a level's siblings out contiguously).  Staged pages count
  // device reads, not faults; a later demand access counts a hit as the
  // page's *first* reference (no scan-resistance bypass).
  const size_t ra = pool_.options().readahead_pages;
  for (size_t i = 1; i <= ra; ++i) {
    const PageId next = id + static_cast<PageId>(i);
    if (next >= file_.PageCount()) break;
    if (pool_.Resident(next)) continue;
    const Page* ra_src = nullptr;
    if (!file_.View(next, &ra_src).ok()) break;
    if (!pool_.Insert(next, *ra_src, /*out=*/nullptr)) break;
    prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

PageRequest Pager::FetchAsync(PageId id) {
  if (miss_queue_ == nullptr) return PageRequest::Completed(SyncFetch(id));

  PinnedPage out;
  if (pool_.TryGet(id, &out)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return PageRequest::Completed(std::move(out));
  }

  // The fault is charged at issue time against the same residency check
  // the synchronous path uses, so with hints disabled the fault counts are
  // identical whether the read then happens off-worker or (queue full)
  // inline.
  faults_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<PageRequestState>();
  if (!miss_queue_->EnqueueDemand({id, state})) {
    // Bounded-queue backpressure: the caller services its own miss, which
    // is exactly the synchronous reference path (minus re-counting).
    return PageRequest::Completed(ServiceMiss(id));
  }
  PageRequest request(std::move(state));

  // STR readahead rides the hint class instead of running inline: it can
  // no longer extend this (or any) demand fetch's latency.
  const size_t ra = pool_.options().readahead_pages;
  for (size_t i = 1; i <= ra; ++i) {
    (void)TryStageHint(id + static_cast<PageId>(i));  // best effort
  }
  return request;
}

void Pager::Prefetch(std::span<const PageId> ids) {
  if (miss_queue_ == nullptr) return;
  for (const PageId id : ids) {
    // Best effort by design: a filtered hint (resident, duplicate, full
    // queue) is simply not staged.
    (void)TryStageHint(id);
  }
}

bool Pager::TryStageHint(PageId id) {
  if (miss_queue_ == nullptr) return false;
  if (id >= file_.PageCount()) return false;
  if (pool_.Resident(id)) return false;
  if (!miss_queue_->EnqueueHint({id, nullptr})) return false;
  prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
  MaybeAdaptHintDepth();
  return true;
}

void Pager::MaybeAdaptHintDepth() {
  const uint64_t issued = prefetch_issued_.load(std::memory_order_relaxed);
  uint64_t mark = tune_issued_mark_.load(std::memory_order_relaxed);
  if (issued - mark < kHintTuneWindow) return;
  // One adapter per window: whoever advances the mark owns the decision;
  // a losing racer's window was just closed by the winner.
  if (!tune_issued_mark_.compare_exchange_strong(mark, issued,
                                                 std::memory_order_relaxed)) {
    return;
  }
  const uint64_t wasted = pool_.prefetch_wasted();
  const uint64_t wasted_mark =
      tune_wasted_mark_.exchange(wasted, std::memory_order_relaxed);
  // Waste counters can lag hint acceptance (staging is asynchronous), so
  // the ratio is advisory — exactly right for an advisory depth.
  const double ratio = wasted > wasted_mark
                           ? static_cast<double>(wasted - wasted_mark) /
                                 static_cast<double>(issued - mark)
                           : 0.0;
  size_t depth = hint_depth_.load(std::memory_order_relaxed);
  if (ratio > kHintWastedRatioShrink) {
    depth = std::max(kHintDepthFloor, depth / 2);
  } else if (ratio < kHintWastedRatioRecover) {
    depth = std::min(kHintDepthCap, depth + 1);
  }
  hint_depth_.store(depth, std::memory_order_relaxed);
}

StatusOr<PinnedPage> Pager::ServiceMiss(PageId id) {
  const Page* src = nullptr;
  CONN_RETURN_IF_ERROR(file_.View(id, &src));
  PinnedPage out;
  if (!pool_.Insert(id, *src, &out)) {
    return PinnedPage::Overflow(id, *src);
  }
  return out;
}

void Pager::ServiceBatch(std::vector<MissQueue::Item> batch) {
  // Hints that became resident while queued need no device work; demand
  // items always proceed (their waiter needs a completion regardless).
  std::vector<MissQueue::Item> work;
  work.reserve(batch.size());
  for (MissQueue::Item& item : batch) {
    if (item.state == nullptr && pool_.Resident(item.id)) continue;
    work.push_back(std::move(item));
  }
  if (work.empty()) return;

  // One ascending sweep per service cycle — the batched-pread idiom.
  std::sort(work.begin(), work.end(),
            [](const MissQueue::Item& a, const MissQueue::Item& b) {
              return a.id < b.id;
            });
  std::vector<PageId> ids;
  ids.reserve(work.size());
  for (const MissQueue::Item& item : work) ids.push_back(item.id);
  std::vector<const Page*> views;
  file_.ViewBatch(ids, &views);

  for (size_t i = 0; i < work.size(); ++i) {
    MissQueue::Item& item = work[i];
    const Page* view = views[i];
    if (item.state == nullptr) {
      // Hint: stage and move on.  A false Insert (page raced in, or every
      // frame pinned) costs nothing further.
      if (view != nullptr) (void)pool_.Insert(item.id, *view, nullptr);
      continue;
    }
    if (view == nullptr) {
      CompletePageRequest(*item.state,
                          Status::NotFound("PageFile::View: page " +
                                           std::to_string(item.id) +
                                           " not allocated"),
                          PinnedPage());
      continue;
    }
    // Demand: pin into the completion.  No counter updates here — the
    // fault was charged at issue time, and Insert's raced-in reuse must
    // not double-count a hit.
    PinnedPage out;
    if (!pool_.Insert(item.id, *view, &out)) {
      out = PinnedPage::Overflow(item.id, *view);
    }
    CompletePageRequest(*item.state, Status::OK(), std::move(out));
  }
}

Status Pager::Write(PageId id, const Page& page) {
  CONN_RETURN_IF_ERROR(file_.Write(id, page));
  pool_.PutForWrite(id, page);
  return Status::OK();
}

}  // namespace storage
}  // namespace conn
