#include "storage/pager.h"

namespace conn {
namespace storage {

StatusOr<PinnedPage> Pager::Fetch(PageId id) {
  if (pool_.capacity() == 0) {
    // Unbuffered (the paper's default configuration): every read faults and
    // the view aliases the file's stable page storage — no copy at all.
    const Page* view = nullptr;
    CONN_RETURN_IF_ERROR(file_.View(id, &view));
    faults_.fetch_add(1, std::memory_order_relaxed);
    return PinnedPage::Direct(id, view);
  }

  PinnedPage out;
  if (pool_.TryGet(id, &out)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  const Page* src = nullptr;
  CONN_RETURN_IF_ERROR(file_.View(id, &src));
  faults_.fetch_add(1, std::memory_order_relaxed);
  if (!pool_.Insert(id, *src, &out)) {
    // Every candidate frame is pinned: serve a handle-owned copy without
    // caching it (and skip readahead — further staging attempts would
    // burn device reads against the same pinned-full pool).  Rare — it
    // takes as many concurrently pinned pages as the pool has frames.
    return PinnedPage::Overflow(id, *src);
  }

  // Optional readahead: stage the immediately following ids (STR bulk
  // loading lays a level's siblings out contiguously).  Staged pages count
  // device reads, not faults; a later demand access counts a hit as the
  // page's *first* reference (no scan-resistance bypass).
  const size_t ra = pool_.options().readahead_pages;
  for (size_t i = 1; i <= ra; ++i) {
    const PageId next = id + static_cast<PageId>(i);
    if (next >= file_.PageCount()) break;
    if (pool_.Resident(next)) continue;
    const Page* ra_src = nullptr;
    if (!file_.View(next, &ra_src).ok()) break;
    if (!pool_.Insert(next, *ra_src, /*out=*/nullptr)) break;
  }
  return out;
}

Status Pager::Write(PageId id, const Page& page) {
  CONN_RETURN_IF_ERROR(file_.Write(id, page));
  pool_.PutForWrite(id, page);
  return Status::OK();
}

}  // namespace storage
}  // namespace conn
