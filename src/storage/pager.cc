#include "storage/pager.h"

namespace conn {
namespace storage {

Status Pager::Read(PageId id, Page* out) {
  // Capacity is fixed while queries run, so reading it unlocked is safe;
  // the unbuffered configuration (the paper's default) takes no lock at
  // all — PageFile reads are immutable-state lookups.
  if (buffer_.capacity() > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (buffer_.Get(id, out)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
    }
    CONN_RETURN_IF_ERROR(file_.Read(id, out));
    faults_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    buffer_.Put(id, *out);
    return Status::OK();
  }
  CONN_RETURN_IF_ERROR(file_.Read(id, out));
  faults_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Pager::Write(PageId id, const Page& page) {
  CONN_RETURN_IF_ERROR(file_.Write(id, page));
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.Put(id, page);
  return Status::OK();
}

}  // namespace storage
}  // namespace conn
