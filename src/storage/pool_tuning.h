// Tuning constants shared by the buffer pool's frame-table sharding and by
// the harnesses that watch its behavior (bench/micro_storage.cc's
// pin-contention curve, tests/storage_race_test.cc's eviction churn).
//
// They live in one header so the regression watchpoints move together with
// the pool: the ROADMAP async-I/O item plans to lift the shard cap, and a
// bench or race test still sized against yesterday's constants would keep
// measuring a single latch while the pool had ten.

#ifndef CONN_STORAGE_POOL_TUNING_H_
#define CONN_STORAGE_POOL_TUNING_H_

#include <cstddef>

namespace conn {
namespace storage {

/// One latch shard per this many frames (2Q policy only — exact-LRU always
/// runs a single global list so it reproduces the seed LruBuffer's eviction
/// order bit-for-bit).
inline constexpr size_t kFramesPerShard = 32;

/// Hard cap on the number of latch shards a pool will create.  Lifted from
/// 8 once the miss path stopped serializing on the calling thread (the
/// async pipeline below): with kFramesPerShard frames per latch this caps
/// latch sharding at a 1024-frame pool, past which the id-interleaved
/// mapping already spreads contention thin.
inline constexpr size_t kMaxShards = 32;

/// The 2Q probationary FIFO (A1in) targets shard_capacity / this divisor
/// (minimum 1 frame).
inline constexpr size_t kA1inTargetDivisor = 4;

/// Default number of I/O worker threads draining the miss queue when
/// BufferOptions::async_io is on.
inline constexpr size_t kIoThreads = 2;

/// Default bound on queued miss-queue entries (demand + hints).  A full
/// queue degrades gracefully: demand requests fall back to inline
/// servicing (the synchronous reference path) and hints are dropped.
inline constexpr size_t kMissQueueDepth = 64;

/// Upper bound on the number of pages one miss-queue service cycle claims:
/// the worker sorts the claimed ids and resolves them as a single batched
/// device request (the batched-pread idiom) instead of one read per page.
inline constexpr size_t kIoBatchPages = 8;

/// Hint-depth autotuning.  The STR-sibling staging window (the leaf pages a
/// best-first descent or pair join hints per expanded level-1 node) starts
/// at kHintDepthCap; the pager watches prefetch_wasted / prefetch_issued
/// over rolling windows of kHintTuneWindow accepted hints and halves the
/// window (never below kHintDepthFloor) when the wasted ratio exceeds
/// kHintWastedRatioShrink — a workload whose staged siblings get evicted
/// untouched is telling us its descents terminate early (Lemma 2 / Lemma 3
/// bounds), so staging fewer of them wastes fewer device reads and frames.
/// When the ratio drops below kHintWastedRatioRecover the window creeps
/// back up one page per window toward the cap.

/// Widest STR-sibling staging window (pages per expanded level-1 node).
inline constexpr size_t kHintDepthCap = 8;

/// Narrowest the autotuner will shrink the staging window to; 2 keeps the
/// hint class alive so recovery can observe fresh hit/waste evidence.
inline constexpr size_t kHintDepthFloor = 2;

/// Accepted staging hints per adaptation decision.
inline constexpr size_t kHintTuneWindow = 64;

/// Halve the window when wasted/issued over a window exceeds this.
inline constexpr double kHintWastedRatioShrink = 0.5;

/// Grow the window by one when wasted/issued falls below this.
inline constexpr double kHintWastedRatioRecover = 0.25;

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_POOL_TUNING_H_
