// MissQueue: the bounded request queue between fetching threads and the
// pager's I/O workers (BufferOptions::async_io).
//
// Two priority classes share the bound: *demand* entries carry a
// PageRequestState a caller is (or will be) blocked on, *hint* entries are
// advisory prefetch staging with no waiter.  Workers drain demand strictly
// first, so staging can never extend a demand fetch's latency — the
// regression the old inline readahead on the miss path used to cause.
// Each service cycle claims up to kIoBatchPages entries from one class and
// hands them to the servicer callback as a single batch (the pager sorts
// the ids and resolves them with one batched device request).
//
// The queue is bounded: enqueues beyond the depth cap are refused and the
// caller degrades gracefully (demand falls back to inline servicing, the
// synchronous reference path; hints are simply dropped).  Hint ids are
// deduplicated while queued.  The destructor drains everything still
// queued before joining the workers, so no demand waiter is ever left
// hanging.
//
// Depth telemetry: every accepted enqueue samples the post-enqueue depth
// into a histogram; Depths() reports p50/p99/max over those samples (the
// miss-queue depth percentiles surfaced by the bench labels).

#ifndef CONN_STORAGE_MISS_QUEUE_H_
#define CONN_STORAGE_MISS_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "storage/page.h"
#include "storage/page_request.h"

namespace conn {
namespace storage {

/// Bounded two-class (demand / hint) request queue with I/O worker threads.
class MissQueue {
 public:
  /// One queued fetch.  A null state marks an advisory hint.
  struct Item {
    PageId id = kInvalidPageId;
    std::shared_ptr<PageRequestState> state;
  };

  /// Resolves a claimed batch (sorted and read by the owning Pager).  Runs
  /// on an I/O worker thread; must complete every demand item it is given.
  using Servicer = std::function<void(std::vector<Item>)>;

  /// Post-enqueue depth percentiles over all samples since construction /
  /// ResetDepthStats().  All zero while no enqueue has been sampled.
  struct DepthStats {
    uint64_t samples = 0;
    size_t p50 = 0;
    size_t p99 = 0;
    size_t max = 0;
  };

  MissQueue(size_t io_threads, size_t depth_cap, Servicer servicer);

  /// Drains both classes (workers service everything still queued, so
  /// every demand waiter completes), then joins the workers.
  ~MissQueue();

  MissQueue(const MissQueue&) = delete;
  MissQueue& operator=(const MissQueue&) = delete;

  /// Queues a demand fetch.  False when the queue is at capacity (or shut
  /// down): the caller must service the miss itself.
  bool EnqueueDemand(Item item) EXCLUDES(mu_);

  /// Queues an advisory staging hint.  False when at capacity, shut down,
  /// or the id is already queued as a hint.
  bool EnqueueHint(Item item) EXCLUDES(mu_);

  DepthStats Depths() EXCLUDES(mu_);
  void ResetDepthStats() EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);
  size_t DepthLocked() const REQUIRES(mu_) {
    return demand_.size() + hints_.size();
  }
  void SampleDepth() REQUIRES(mu_);

  const size_t depth_cap_;
  const Servicer servicer_;

  Mutex mu_;
  CondVar work_available_;
  std::deque<Item> demand_ GUARDED_BY(mu_);
  std::deque<Item> hints_ GUARDED_BY(mu_);
  std::unordered_set<PageId> queued_hint_ids_ GUARDED_BY(mu_);
  std::vector<uint64_t> depth_hist_ GUARDED_BY(mu_);  ///< index = depth
  uint64_t depth_samples_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;
};

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_MISS_QUEUE_H_
