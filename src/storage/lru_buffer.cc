#include "storage/lru_buffer.h"

namespace conn {
namespace storage {

void LruBuffer::SetCapacity(size_t capacity) {
  capacity_ = capacity;
  EvictIfNeeded();
}

bool LruBuffer::Get(PageId id, Page* out) {
  auto it = map_.find(id);
  if (it == map_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  *out = it->second->second;
  return true;
}

void LruBuffer::Put(PageId id, const Page& page) {
  if (capacity_ == 0) return;
  auto it = map_.find(id);
  if (it != map_.end()) {
    it->second->second = page;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(id, page);
  map_[id] = lru_.begin();
  EvictIfNeeded();
}

void LruBuffer::Clear() {
  lru_.clear();
  map_.clear();
}

void LruBuffer::EvictIfNeeded() {
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

}  // namespace storage
}  // namespace conn
