// PageRequest: the completion handle of the asynchronous miss pipeline.
//
// Pager::FetchAsync() returns one of these instead of blocking on the
// device: an immediate buffer hit arrives pre-completed, while a miss is
// parked in the pager's bounded MissQueue and fulfilled by an I/O worker
// thread.  The caller overlaps its own compute with the in-flight read and
// calls Wait() when it actually needs the bytes — Wait() blocks until the
// completion lands and hands back exactly the StatusOr<PinnedPage> the
// synchronous Pager::Fetch() would have produced.
//
// The handle is [[nodiscard]] and its destructor still synchronizes with
// the servicing worker (waiting the completion out and dropping the pin),
// so abandoning a request can never leak a pin or let a worker write into
// freed state — but silently dropping one forfeits the fetch you paid a
// fault for, which is why the compile_fail suite rejects it.

#ifndef CONN_STORAGE_PAGE_REQUEST_H_
#define CONN_STORAGE_PAGE_REQUEST_H_

#include <memory>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace conn {
namespace storage {

/// Shared completion slot between a PageRequest and the I/O worker that
/// fulfills it.  StatusOr has no default constructor, so the result rides
/// as a (status, page) pair assembled into a StatusOr by Wait().
struct PageRequestState {
  Mutex mu;
  CondVar cv;
  bool done GUARDED_BY(mu) = false;
  Status status GUARDED_BY(mu);
  PinnedPage page GUARDED_BY(mu);
};

/// Completes \p state and wakes its waiter.  Called exactly once per
/// request, from the servicing side (I/O worker or inline fallback).
inline void CompletePageRequest(PageRequestState& state, Status status,
                                PinnedPage page) {
  {
    MutexLock lock(state.mu);
    state.status = std::move(status);
    state.page = std::move(page);
    state.done = true;
  }
  state.cv.NotifyAll();
}

/// Move-only handle to an in-flight (or already completed) page fetch.
class [[nodiscard]] PageRequest {
 public:
  PageRequest() = default;
  explicit PageRequest(std::shared_ptr<PageRequestState> state)
      : state_(std::move(state)) {}

  /// An unconsumed request still synchronizes with its worker: the
  /// completion writes into this state, so wait it out and drop the pin.
  ~PageRequest() {
    if (state_ != nullptr) {
      // Sound to drop: the handle is being abandoned, so nobody can read
      // the fetched bytes anyway; waiting keeps the accounting intact.
      (void)Wait();
    }
  }

  PageRequest(PageRequest&& other) noexcept = default;
  PageRequest& operator=(PageRequest&& other) noexcept {
    if (this != &other) {
      if (state_ != nullptr) {
        (void)Wait();  // sound: see destructor
      }
      state_ = std::move(other.state_);
    }
    return *this;
  }

  PageRequest(const PageRequest&) = delete;
  PageRequest& operator=(const PageRequest&) = delete;

  /// True when this handle holds a pending or completed fetch (false for a
  /// default-constructed or already consumed handle).
  bool valid() const { return state_ != nullptr; }

  /// True once the completion has landed (Wait() would not block).  Also
  /// true for empty handles, which have nothing to wait for.
  bool Ready() const {
    if (state_ == nullptr) return true;
    MutexLock lock(state_->mu);
    return state_->done;
  }

  /// Blocks until the fetch completes and returns its result, consuming
  /// the handle.  Exactly the StatusOr the synchronous Fetch() returns.
  StatusOr<PinnedPage> Wait() {
    CONN_CHECK_MSG(state_ != nullptr, "PageRequest::Wait on empty request");
    std::shared_ptr<PageRequestState> s = std::move(state_);
    MutexLock lock(s->mu);
    s->cv.Wait(s->mu, [&s]() REQUIRES(s->mu) { return s->done; });
    if (!s->status.ok()) return std::move(s->status);
    return std::move(s->page);
  }

  /// Wraps an already materialized result (buffer hits, synchronous
  /// fallbacks) so every fetch path returns the same handle type.
  static PageRequest Completed(StatusOr<PinnedPage> result) {
    auto s = std::make_shared<PageRequestState>();
    {
      MutexLock lock(s->mu);
      if (result.ok()) {
        s->page = std::move(result).value();
      } else {
        s->status = result.status();
      }
      s->done = true;
    }
    return PageRequest(std::move(s));
  }

 private:
  std::shared_ptr<PageRequestState> state_;
};

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_PAGE_REQUEST_H_
