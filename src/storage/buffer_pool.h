// Frame-table buffer pool with pin counts — the zero-copy page cache behind
// the Pager.
//
// A fixed array of 4 KB frames is partitioned into shards; each shard owns a
// latch, a PageId -> frame hash table, and its eviction state.  Readers
// *borrow* frame memory through a PinnedPage RAII handle instead of copying
// pages out: a frame with a non-zero pin count is never evicted, so the
// borrowed bytes stay valid (and stable) for the lifetime of the handle.
//
// Each frame can additionally carry a *decoded object* — a type-erased
// shared_ptr installed by the first reader that parses the page (the R-tree
// layer caches deserialized nodes this way).  The decoded object lives and
// dies with the page's residency: eviction or a write drops the frame's
// reference, while readers that already hold the shared_ptr keep the object
// alive independently, so nothing ever dangles.
//
// Two eviction policies:
//   * kExactLru — a single strict LRU list over one shard.  Reproduces the
//     seed LruBuffer's eviction order (and therefore the committed Fig. 12
//     fault counts) bit-for-bit on any single-threaded trace.
//   * kTwoQueue — a 2Q-style segmented LRU (after Johnson & Shasha, VLDB
//     1994): a FIFO probationary queue (A1in) in front of a protected LRU
//     (Am), with a ghost FIFO of recently evicted ids (A1out).  A page is
//     promoted to Am on its second reference — while still probationary
//     (R-tree roots/internals are re-touched within one query) or on
//     re-load after a ghost hit — so the hot upper levels of an R-tree
//     survive leaf scans that would wash through a plain LRU.  Pages
//     referenced exactly once drain through the FIFO without disturbing
//     the protected set.  This is the default policy.
//
// Thread safety: concurrent Fetch/pin/unpin from many query threads is safe
// (the batch executor's workers share one pool per tree).  Configure() and
// Clear() are structural operations and require that no pins are live.

#ifndef CONN_STORAGE_BUFFER_POOL_H_
#define CONN_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "storage/page.h"
#include "storage/pool_tuning.h"

namespace conn {
namespace storage {

class BufferPool;

/// Page eviction policy of the buffer pool.
enum class EvictionPolicy : uint8_t {
  kTwoQueue = 0,  ///< scan-resistant 2Q (default)
  kExactLru = 1,  ///< strict LRU, bit-compatible with the seed LruBuffer
};

/// Buffer-pool configuration.
struct BufferOptions {
  /// Capacity in 4 KB frames.  0 disables buffering entirely (the paper's
  /// default configuration): reads become direct views of the page file.
  size_t capacity_pages = 0;

  EvictionPolicy policy = EvictionPolicy::kTwoQueue;

  /// On a demand miss, additionally stage up to this many immediately
  /// following page ids into the pool.  STR bulk loading allocates each
  /// level's nodes contiguously, so sibling leaves prefetch for free.
  /// Prefetched pages count device reads but not faults; a later demand
  /// access of a staged page counts a buffer hit.  0 disables readahead.
  size_t readahead_pages = 0;

  /// Service misses asynchronously: Pager::Fetch()/FetchAsync() charge the
  /// fault immediately but route the device read through a bounded miss
  /// queue drained by a small I/O worker pool, and Pager::Prefetch() hints
  /// stage pages off-worker instead of inline.  Off (the default) is the
  /// synchronous reference behavior the committed baselines were produced
  /// under.  Ignored while capacity_pages == 0 (unbuffered reads have no
  /// staging to overlap).
  bool async_io = false;

  /// I/O worker threads draining the miss queue (async_io only).
  size_t io_threads = kIoThreads;

  /// Bound on queued miss-queue entries, demand + hints (async_io only).
  /// Enqueues beyond it degrade gracefully: demand requests are serviced
  /// inline by the caller, hints are dropped.
  size_t miss_queue_depth = kMissQueueDepth;
};

/// RAII borrow of one page's memory.  Obtained from Pager::Fetch(); the
/// underlying frame cannot be evicted (and its bytes cannot change) while
/// the handle is alive.  Move-only; destroying it releases the pin.
class PinnedPage {
 public:
  PinnedPage() = default;
  ~PinnedPage() { Release(); }

  PinnedPage(PinnedPage&& other) noexcept { *this = std::move(other); }
  PinnedPage& operator=(PinnedPage&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      data_ = other.data_;
      id_ = other.id_;
      decoded_ = std::move(other.decoded_);
      owned_ = std::move(other.owned_);
      other.pool_ = nullptr;
      other.data_ = nullptr;
    }
    return *this;
  }

  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;

  bool valid() const { return data_ != nullptr; }
  PageId id() const { return id_; }

  /// The borrowed page bytes.  No copy is ever made on a buffer hit.
  const Page& page() const {
    CONN_DCHECK(data_ != nullptr);
    return *data_;
  }

  /// Decoded-object snapshot taken when the page was fetched (null if no
  /// reader has parsed this residency of the page yet).
  const std::shared_ptr<const void>& decoded() const { return decoded_; }

  /// Publishes a decoded object for this page so later fetches skip
  /// re-parsing.  A no-op (beyond updating this handle) when the page is
  /// not pool-resident (unbuffered reads, overflow fallbacks).
  void SetDecoded(std::shared_ptr<const void> obj);

  /// Explicitly releases the pin (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  friend class Pager;

  /// View straight into PageFile memory (unbuffered configuration).
  static PinnedPage Direct(PageId id, const Page* data) {
    PinnedPage p;
    p.id_ = id;
    p.data_ = data;
    return p;
  }

  /// Handle-owned copy, used when every frame is pinned (overflow).
  static PinnedPage Overflow(PageId id, const Page& src) {
    PinnedPage p;
    p.id_ = id;
    p.owned_ = std::make_unique<Page>(src);
    p.data_ = p.owned_.get();
    return p;
  }

  BufferPool* pool_ = nullptr;  ///< null for direct / overflow handles
  uint32_t frame_ = 0;
  const Page* data_ = nullptr;
  PageId id_ = kInvalidPageId;
  std::shared_ptr<const void> decoded_;
  std::unique_ptr<Page> owned_;
};

/// The frame table.  Owned by a Pager; see the file comment for semantics.
class BufferPool {
 public:
  BufferPool() = default;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// (Re)builds the frame table for \p options, dropping all cached pages
  /// and ghost history.  Requires that no pins are live.
  void Configure(const BufferOptions& options);

  /// Drops cached pages and ghost history, keeping the configuration.
  /// Requires that no pins are live.
  void Clear();

  const BufferOptions& options() const { return options_; }
  size_t capacity() const { return options_.capacity_pages; }

  /// Pins \p id if resident; true on hit.  Takes the decoded snapshot.
  bool TryGet(PageId id, PinnedPage* out);

  /// Stages \p src as page \p id, evicting per policy if needed.  If the
  /// page raced in concurrently the existing frame is used.  When \p out is
  /// non-null the frame is pinned into it; a null \p out marks the page as
  /// readahead-staged (its first demand hit is a first reference).
  /// Returns false (and caches nothing) when every candidate frame is
  /// pinned.
  bool Insert(PageId id, const Page& src, PinnedPage* out);

  /// Write-through hook: refreshes or inserts \p id's cached bytes and
  /// drops any decoded object (the page content changed).  Mirrors the
  /// seed LruBuffer::Put in exact-LRU mode (MRU touch on refresh).
  /// Requires the page to be unpinned (writes never overlap reads).
  void PutForWrite(PageId id, const Page& src);

  /// True if \p id currently occupies a frame (test/readahead helper).
  bool Resident(PageId id);

  /// Number of resident pages / currently pinned frames (test helpers).
  size_t ResidentPages();
  size_t PinnedFrames();

  /// Staging effectiveness counters.  A demand hit on a staged page whose
  /// first demand reference this is counts one prefetch hit; evicting a
  /// staged page that was never demand-referenced counts one wasted
  /// prefetch.  (Issued-hint counting lives on the Pager, which owns the
  /// staging entry points.)
  uint64_t prefetch_hits() const {
    return prefetch_hits_.load(std::memory_order_relaxed);
  }
  uint64_t prefetch_wasted() const {
    return prefetch_wasted_.load(std::memory_order_relaxed);
  }
  void ResetPrefetchCounters() {
    prefetch_hits_.store(0, std::memory_order_relaxed);
    prefetch_wasted_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class PinnedPage;

  static constexpr uint32_t kNullFrame = UINT32_MAX;

  /// Which intrusive list a frame currently sits on.
  enum class ListId : uint8_t { kFree, kA1in, kAm };

  // Every non-atomic Frame field is guarded by the latch of the shard the
  // frame currently belongs to (frames never migrate between shards).
  // That relationship is not expressible as a GUARDED_BY annotation —
  // frames live in one flat vector while the latches live per shard — so
  // the pin-count atomics carry the cross-shard synchronization and the
  // REQUIRES(sh.mu) annotations on every helper below keep the latch
  // discipline machine-checked at the access-path level instead.
  struct Frame {
    Page page;
    PageId page_id = kInvalidPageId;
    std::atomic<uint32_t> pins{0};
    std::shared_ptr<const void> decoded;
    uint32_t prev = kNullFrame;
    uint32_t next = kNullFrame;
    ListId list = ListId::kFree;
    // Staged by readahead and not demand-referenced yet: the first demand
    // hit counts as the page's *first* reference, not a promoting second
    // one (otherwise a readahead-assisted scan would flood Am).
    bool prefetched = false;
  };

  /// Intrusive doubly-linked list over frame indices (head = MRU / newest).
  struct List {
    uint32_t head = kNullFrame;
    uint32_t tail = kNullFrame;
    size_t size = 0;
  };

  struct Shard {
    Mutex mu;
    std::unordered_map<PageId, uint32_t> table GUARDED_BY(mu);
    List free_list GUARDED_BY(mu);
    List a1in GUARDED_BY(mu);  ///< probationary FIFO (2Q); unused exact-LRU
    List am GUARDED_BY(mu);    ///< protected LRU (2Q) / the only (exact-LRU)
    // Ghost FIFO of ids recently evicted from A1in (2Q's A1out).  The map
    // is authoritative and holds each id's newest entry sequence; stale
    // FIFO entries (consumed by a ghost hit, or superseded by a re-ghost)
    // are recognized by their mismatching sequence and skipped on trim.
    std::deque<std::pair<PageId, uint64_t>> ghost_fifo GUARDED_BY(mu);
    std::unordered_map<PageId, uint64_t> ghost_map GUARDED_BY(mu);
    uint64_t ghost_seq GUARDED_BY(mu) = 0;
    size_t capacity GUARDED_BY(mu) = 0;     ///< frames owned by this shard
    size_t a1in_target GUARDED_BY(mu) = 0;  ///< max probationary queue size
  };

  size_t ShardOf(PageId id) const { return id % shards_.size(); }
  List& ListFor(Shard& sh, ListId id) REQUIRES(sh.mu);

  void Unlink(Shard& sh, uint32_t frame) REQUIRES(sh.mu);
  void PushFront(Shard& sh, ListId list, uint32_t frame) REQUIRES(sh.mu);

  /// Selects and detaches an unpinned victim frame of \p sh (evicting its
  /// current page, if any, per policy).  kNullFrame if all frames pinned.
  uint32_t AcquireFrame(Shard& sh) REQUIRES(sh.mu);

  /// Walks \p list from the tail; detaches and returns the first unpinned
  /// frame, or kNullFrame.  \p to_ghost records the evicted id in A1out.
  uint32_t EvictFromTail(Shard& sh, ListId list, bool to_ghost)
      REQUIRES(sh.mu);

  /// Copies \p src into a freshly acquired frame of \p sh, registers it
  /// under \p id, and places it on the policy-appropriate list (exact-LRU:
  /// MRU; 2Q: Am on a ghost hit, A1in otherwise).  Shared by the demand
  /// miss, readahead, and write-through paths.  kNullFrame if every
  /// candidate frame is pinned.
  uint32_t StageFrame(Shard& sh, PageId id, const Page& src)
      REQUIRES(sh.mu);

  void GhostInsert(Shard& sh, PageId id) REQUIRES(sh.mu);

  /// Pins frame \p f of \p sh and seats it into \p out (shared by the hit
  /// and miss paths): the pin must appear before the shard latch is
  /// released, and the decoded snapshot must be taken atomically with the
  /// table lookup.
  void PinInto(Shard& sh, uint32_t f, PageId id, PinnedPage* out)
      REQUIRES(sh.mu);

  void Unpin(uint32_t frame);
  void InstallDecoded(uint32_t frame, std::shared_ptr<const void> obj);

  BufferOptions options_;
  std::vector<Frame> frames_;
  // unique_ptr: Shard holds a mutex and must stay address-stable.
  std::vector<std::unique_ptr<Shard>> shards_;
  // Counted under the owning shard's latch; atomic because readers
  // (ReportStats, engine deltas) aggregate across shards without latches.
  std::atomic<uint64_t> prefetch_hits_{0};
  std::atomic<uint64_t> prefetch_wasted_{0};
};

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_BUFFER_POOL_H_
