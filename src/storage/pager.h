// Pager: the access path every R-tree node read goes through.  Combines the
// simulated disk (PageFile) with the pin/unpin buffer pool (buffer_pool.h)
// and maintains the fault/hit counters that drive the paper's I/O metric
// (10 ms per fault).
//
// The read API is pin-based: Fetch() returns a PinnedPage view that borrows
// frame (or, unbuffered, file) memory — there is no page memcpy on a buffer
// hit, and the old copy-out Read(PageId, Page*) no longer exists.  Counter
// semantics are unchanged from the seed implementation: a Fetch that finds
// the page resident counts one hit, anything else counts one fault, and
// with buffering disabled (capacity 0, the paper's default configuration)
// every Fetch faults.
//
// Concurrent Fetch()es from several query threads (the batch executor's
// shards) are safe: counters are atomic and the pool takes per-shard
// latches.  Structural mutation (Allocate / Write / ConfigureBuffer) is a
// single-threaded operation: trees are built before queries run against
// them.  A Pager is pinned in place (non-copyable, non-movable) — owners
// hold it behind a stable handle (see RStarTree) so in-flight pins and
// counter readers never observe a relocation.

#ifndef CONN_STORAGE_PAGER_H_
#define CONN_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace conn {
namespace storage {

/// Buffered page accessor with fault accounting.
class Pager {
 public:
  Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;
  Pager(Pager&&) = delete;
  Pager& operator=(Pager&&) = delete;

  /// Allocates a fresh zeroed page on the underlying file.
  PageId Allocate() { return file_.Allocate(); }

  /// Number of pages in the underlying file (the "tree size" in pages).
  size_t PageCount() const { return file_.PageCount(); }

  /// Pins page \p id and returns a borrowed view of its bytes.  A resident
  /// page counts one hit (zero copies); a miss counts one fault and stages
  /// the page into the pool (plus optional readahead of the following STR
  /// sibling pages).  Thread-safe against concurrent Fetch()es.
  StatusOr<PinnedPage> Fetch(PageId id);

  /// Writes page \p id through to the file and refreshes the pool.
  Status Write(PageId id, const Page& page);

  /// Reconfigures the buffer pool (capacity, eviction policy, readahead),
  /// dropping all cached pages.  Not thread-safe against in-flight reads;
  /// requires that no pins are live.
  void ConfigureBuffer(const BufferOptions& options) {
    pool_.Configure(options);
  }

  /// Sets the buffer capacity in pages (0 disables buffering, the default
  /// configuration of the paper's experiments), keeping the current policy
  /// and readahead settings.  Drops cached pages; see ConfigureBuffer().
  void SetBufferCapacity(size_t pages) {
    BufferOptions opts = pool_.options();
    opts.capacity_pages = pages;
    pool_.Configure(opts);
  }

  /// Drops buffered pages (and 2Q ghost history) without changing the
  /// configuration.  Requires that no pins are live.
  void ClearBuffer() { pool_.Clear(); }

  /// Zeroes the fault/hit counters — warm-up phases call this so the
  /// measured half of a workload starts from a clean slate.  Device-level
  /// counters (PageFile) are not affected.
  void ResetCounters() {
    faults_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
  }

  /// Page faults (buffer misses) since construction / ResetCounters().
  uint64_t faults() const { return faults_.load(std::memory_order_relaxed); }

  /// Buffer hits since construction / ResetCounters().
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

  /// The pool, for configuration inspection and tests.
  BufferPool& buffer_pool() { return pool_; }

  /// The backing file, for device-level counters.
  const PageFile& file() const { return file_; }

 private:
  PageFile file_;
  BufferPool pool_;
  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> hits_{0};
};

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_PAGER_H_
