// Pager: the access path every R-tree node read goes through.  Combines the
// simulated disk (PageFile) with an optional LRU buffer and maintains the
// fault/hit counters that drive the paper's I/O metric (10 ms per fault).

#ifndef CONN_STORAGE_PAGER_H_
#define CONN_STORAGE_PAGER_H_

#include <cstdint>

#include "common/status.h"
#include "storage/lru_buffer.h"
#include "storage/page_file.h"

namespace conn {
namespace storage {

/// Buffered page accessor with fault accounting.
class Pager {
 public:
  Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;
  Pager(Pager&&) = default;
  Pager& operator=(Pager&&) = default;

  /// Allocates a fresh zeroed page on the underlying file.
  PageId Allocate() { return file_.Allocate(); }

  /// Number of pages in the underlying file (the "tree size" in pages).
  size_t PageCount() const { return file_.PageCount(); }

  /// Reads page \p id through the buffer.  A miss counts one fault.
  Status Read(PageId id, Page* out);

  /// Writes page \p id through to the file and refreshes the buffer.
  Status Write(PageId id, const Page& page);

  /// Sets the LRU buffer capacity in pages (0 disables buffering, the
  /// default configuration of the paper's experiments).
  void SetBufferCapacity(size_t pages) { buffer_.SetCapacity(pages); }

  /// Drops buffered pages without changing capacity.
  void ClearBuffer() { buffer_.Clear(); }

  /// Page faults (buffer misses) since construction.
  uint64_t faults() const { return faults_; }

  /// Buffer hits since construction.
  uint64_t hits() const { return hits_; }

 private:
  PageFile file_;
  LruBuffer buffer_;
  uint64_t faults_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_PAGER_H_
