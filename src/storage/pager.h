// Pager: the access path every R-tree node read goes through.  Combines the
// simulated disk (PageFile) with an optional LRU buffer and maintains the
// fault/hit counters that drive the paper's I/O metric (10 ms per fault).
//
// Concurrent Read()s from several query threads (the batch executor's
// shards) are safe: the counters are atomic and the shared LRU state is
// mutex-guarded.  With buffering disabled (capacity 0 — the paper's default
// configuration) reads bypass the lock entirely.  Structural mutation
// (Allocate / Write / SetBufferCapacity) and moves remain single-threaded
// operations: trees are built before queries run against them.

#ifndef CONN_STORAGE_PAGER_H_
#define CONN_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "storage/lru_buffer.h"
#include "storage/page_file.h"

namespace conn {
namespace storage {

/// Buffered page accessor with fault accounting.
class Pager {
 public:
  Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // Moves transfer the counters; they must not race concurrent access
  // (only tree construction moves pagers).
  Pager(Pager&& other) noexcept
      : file_(std::move(other.file_)),
        buffer_(std::move(other.buffer_)),
        faults_(other.faults_.load(std::memory_order_relaxed)),
        hits_(other.hits_.load(std::memory_order_relaxed)) {}
  Pager& operator=(Pager&& other) noexcept {
    if (this != &other) {
      file_ = std::move(other.file_);
      buffer_ = std::move(other.buffer_);
      faults_.store(other.faults_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      hits_.store(other.hits_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    }
    return *this;
  }

  /// Allocates a fresh zeroed page on the underlying file.
  PageId Allocate() { return file_.Allocate(); }

  /// Number of pages in the underlying file (the "tree size" in pages).
  size_t PageCount() const { return file_.PageCount(); }

  /// Reads page \p id through the buffer.  A miss counts one fault.
  /// Thread-safe against concurrent Read()s.
  Status Read(PageId id, Page* out);

  /// Writes page \p id through to the file and refreshes the buffer.
  Status Write(PageId id, const Page& page);

  /// Sets the LRU buffer capacity in pages (0 disables buffering, the
  /// default configuration of the paper's experiments).  Not thread-safe
  /// against in-flight reads.
  void SetBufferCapacity(size_t pages) { buffer_.SetCapacity(pages); }

  /// Drops buffered pages without changing capacity.
  void ClearBuffer() {
    std::lock_guard<std::mutex> lock(mu_);
    buffer_.Clear();
  }

  /// Page faults (buffer misses) since construction.
  uint64_t faults() const { return faults_.load(std::memory_order_relaxed); }

  /// Buffer hits since construction.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  PageFile file_;
  LruBuffer buffer_;
  std::mutex mu_;  // guards buffer_ contents (LRU order + map)
  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> hits_{0};
};

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_PAGER_H_
