// Pager: the access path every R-tree node read goes through.  Combines the
// simulated disk (PageFile) with the pin/unpin buffer pool (buffer_pool.h)
// and maintains the fault/hit counters that drive the paper's I/O metric
// (10 ms per fault).
//
// The read API is pin-based: Fetch() returns a PinnedPage view that borrows
// frame (or, unbuffered, file) memory — there is no page memcpy on a buffer
// hit, and the old copy-out Read(PageId, Page*) no longer exists.  Counter
// semantics are unchanged from the seed implementation: a Fetch that finds
// the page resident counts one hit, anything else counts one fault, and
// with buffering disabled (capacity 0, the paper's default configuration)
// every Fetch faults.
//
// With BufferOptions::async_io on, the miss path becomes a two-stage
// request/completion pipeline instead of a blocking call:
//
//   FetchAsync(id) ── hit ──────────────────────▶ completed PageRequest
//        │ miss (fault charged here)
//        ▼
//   bounded MissQueue ── demand class ──▶ I/O workers ── batched ViewBatch
//        ▲                                   │
//   Prefetch(ids) ── hint class (drained     └──▶ CompletePageRequest
//                    only when no demand          (caller's Wait unblocks)
//                    waits)
//
// Fetch() in async mode is FetchAsync().Wait() — same results, same
// accounting: the fault/hit decision is made at issue time against the
// same residency check the synchronous path uses, so fault counts with
// hints disabled are identical to the synchronous reference.  Prefetch()
// hints (and the STR readahead that used to run inline on the miss path)
// stage pages off-worker through the hint class, which workers only drain
// while no demand entry waits — staging can never extend a demand fetch's
// latency.
//
// Concurrent Fetch()es from several query threads (the batch executor's
// shards) are safe: counters are atomic and the pool takes per-shard
// latches.  Structural mutation (Allocate / Write / ConfigureBuffer) is a
// single-threaded operation: trees are built before queries run against
// them.  A Pager is pinned in place (non-copyable, non-movable) — owners
// hold it behind a stable handle (see RStarTree) so in-flight pins and
// counter readers never observe a relocation.

#ifndef CONN_STORAGE_PAGER_H_
#define CONN_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/miss_queue.h"
#include "storage/page_file.h"
#include "storage/page_request.h"
#include "storage/pool_tuning.h"

namespace conn {
namespace storage {

/// Buffered page accessor with fault accounting.
class Pager {
 public:
  Pager() = default;

  /// Joins the I/O workers (draining queued requests) before the pool and
  /// file they service into are torn down.
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;
  Pager(Pager&&) = delete;
  Pager& operator=(Pager&&) = delete;

  /// Allocates a fresh zeroed page on the underlying file.
  PageId Allocate() { return file_.Allocate(); }

  /// Number of pages in the underlying file (the "tree size" in pages).
  size_t PageCount() const { return file_.PageCount(); }

  /// Pins page \p id and returns a borrowed view of its bytes.  A resident
  /// page counts one hit (zero copies); a miss counts one fault and stages
  /// the page into the pool.  In async mode this is FetchAsync().Wait().
  /// Thread-safe against concurrent Fetch()es.
  StatusOr<PinnedPage> Fetch(PageId id);

  /// Issues the fetch without blocking on the device: an immediate hit (or
  /// any synchronous configuration) returns a pre-completed request, a
  /// miss charges the fault now and parks the read in the miss queue.
  /// Call Wait() on the handle when the bytes are actually needed and
  /// overlap compute with the in-flight I/O until then.
  PageRequest FetchAsync(PageId id);

  /// Advisory staging hints: queues device reads for the given ids so a
  /// later demand Fetch finds them resident.  Hints never fault, never
  /// block, are deduplicated and dropped when the queue is full, and are
  /// only serviced while no demand request waits.  A no-op unless
  /// async_io is on and the pool is buffered.
  void Prefetch(std::span<const PageId> ids);

  /// Writes page \p id through to the file and refreshes the pool.
  Status Write(PageId id, const Page& page);

  /// Reconfigures the buffer pool (capacity, eviction policy, readahead,
  /// async pipeline), dropping all cached pages and draining any in-flight
  /// miss-queue work.  Not thread-safe against in-flight reads; requires
  /// that no pins are live.
  void ConfigureBuffer(const BufferOptions& options);

  /// Sets the buffer capacity in pages (0 disables buffering, the default
  /// configuration of the paper's experiments), keeping the current policy
  /// and readahead/async settings.  Drops cached pages; see
  /// ConfigureBuffer().
  void SetBufferCapacity(size_t pages) {
    BufferOptions opts = pool_.options();
    opts.capacity_pages = pages;
    ConfigureBuffer(opts);
  }

  /// Drops buffered pages (and 2Q ghost history) without changing the
  /// configuration.  Requires that no pins are live and no requests are in
  /// flight.
  void ClearBuffer() { pool_.Clear(); }

  /// Zeroes the fault/hit/prefetch counters and the miss-queue depth
  /// telemetry — warm-up phases call this so the measured half of a
  /// workload starts from a clean slate.  Device-level counters (PageFile)
  /// are not affected.
  void ResetCounters();

  /// Page faults (buffer misses) since construction / ResetCounters().
  uint64_t faults() const { return faults_.load(std::memory_order_relaxed); }

  /// Buffer hits since construction / ResetCounters().
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

  /// Staging hints accepted into the pipeline (Prefetch/readahead pages
  /// actually queued or staged, after residency/dedup/bounds filtering).
  uint64_t prefetch_issued() const {
    return prefetch_issued_.load(std::memory_order_relaxed);
  }

  /// Demand hits whose page was resident only because staging brought it
  /// in (first demand touch of a prefetched frame).
  uint64_t prefetch_hits() const { return pool_.prefetch_hits(); }

  /// Staged pages evicted before any demand touch (useless prefetch).
  uint64_t prefetch_wasted() const { return pool_.prefetch_wasted(); }

  /// Current advisory width of the STR-sibling staging window, adapted
  /// from the windowed prefetch_wasted/prefetch_issued ratio (see
  /// pool_tuning.h): kHintDepthCap when staging is paying off, shrunk
  /// toward kHintDepthFloor when staged pages keep getting evicted
  /// untouched.  Readers (best-first descent, pair join) clamp their
  /// per-expansion hint batch by this.
  size_t effective_hint_depth() const {
    return hint_depth_.load(std::memory_order_relaxed);
  }

  /// Miss-queue depth percentiles (all zero in synchronous mode).
  MissQueue::DepthStats MissQueueDepths();

  /// The pool, for configuration inspection and tests.
  BufferPool& buffer_pool() { return pool_; }

  /// The backing file, for device-level counters.
  const PageFile& file() const { return file_; }

 private:
  /// The synchronous reference path (async_io off): identical behavior and
  /// accounting to the seed implementation, inline readahead included.
  StatusOr<PinnedPage> SyncFetch(PageId id);

  /// Reads + stages one missed page without touching fault/hit counters
  /// (the fault was charged at issue time).  Shared by the I/O workers and
  /// the queue-full inline fallback.
  StatusOr<PinnedPage> ServiceMiss(PageId id);

  /// I/O worker entry point: resolves a claimed batch with one batched
  /// device request and completes every demand item in it.
  void ServiceBatch(std::vector<MissQueue::Item> batch);

  /// Queues one staging hint; false if filtered (out of range, resident,
  /// duplicate, queue full, or synchronous mode).
  bool TryStageHint(PageId id);

  /// Closes an adaptation window when enough hints have been accepted
  /// since the last one, adjusting hint_depth_ from the window's wasted
  /// ratio.  Thread-safe: one CAS winner per window adapts, losers return.
  void MaybeAdaptHintDepth();

  PageFile file_;
  BufferPool pool_;
  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> prefetch_issued_{0};
  std::atomic<size_t> hint_depth_{kHintDepthCap};
  // prefetch_issued_ / prefetch_wasted values at the last window close.
  std::atomic<uint64_t> tune_issued_mark_{0};
  std::atomic<uint64_t> tune_wasted_mark_{0};
  // Declared after the file and pool it services: destroyed (and its
  // workers joined) first.
  std::unique_ptr<MissQueue> miss_queue_;
};

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_PAGER_H_
