// In-memory simulated disk: an append-allocated array of 4 KB pages.
//
// The experiments of Section 5 measure I/O as the number of page accesses
// under a cost model (10 ms per fault), not wall-clock disk latency, so the
// backing store can safely live in RAM while the Pager (pager.h) provides
// the fault accounting and the LRU buffer in front of it.

#ifndef CONN_STORAGE_PAGE_FILE_H_
#define CONN_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace conn {
namespace storage {

/// Append-allocated page store with read/write by PageId.
class PageFile {
 public:
  PageFile() = default;

  // Non-copyable (identity semantics, like a file handle).
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;
  PageFile(PageFile&&) = default;
  PageFile& operator=(PageFile&&) = default;

  /// Allocates a zeroed page and returns its id.
  PageId Allocate();

  /// Number of allocated pages.
  size_t PageCount() const { return pages_.size(); }

  /// Copies page \p id into \p out.  NotFound for unallocated ids.
  Status Read(PageId id, Page* out) const;

  /// Overwrites page \p id.  NotFound for unallocated ids.
  Status Write(PageId id, const Page& page);

  /// Raw device-level counters (all accesses, buffered or not).
  uint64_t device_reads() const { return device_reads_; }
  uint64_t device_writes() const { return device_writes_; }

 private:
  // unique_ptr keeps Page addresses stable and avoids 4 KB moves on growth.
  std::vector<std::unique_ptr<Page>> pages_;
  mutable uint64_t device_reads_ = 0;  // Read() is logically const
  uint64_t device_writes_ = 0;
};

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_PAGE_FILE_H_
