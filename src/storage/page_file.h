// In-memory simulated disk: an append-allocated array of 4 KB pages.
//
// The experiments of Section 5 measure I/O as the number of page accesses
// under a cost model (10 ms per fault), not wall-clock disk latency, so the
// backing store can safely live in RAM while the Pager (pager.h) provides
// the fault accounting and the buffer pool in front of it.  Page addresses
// are stable for the file's lifetime, which lets the unbuffered read path
// hand out direct views instead of copies.

#ifndef CONN_STORAGE_PAGE_FILE_H_
#define CONN_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace conn {
namespace storage {

/// Append-allocated page store with read/write by PageId.
class PageFile {
 public:
  PageFile() = default;

  // Identity semantics, like a file handle.  The owning Pager is itself
  // pinned behind a stable heap allocation, so moves are not needed.
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;
  PageFile(PageFile&&) = delete;
  PageFile& operator=(PageFile&&) = delete;

  /// Allocates a zeroed page and returns its id.
  PageId Allocate();

  /// Number of allocated pages.
  size_t PageCount() const { return pages_.size(); }

  /// Points \p out at page \p id's stable storage (no copy).  Counts one
  /// device read.  NotFound for unallocated ids.  The view stays valid for
  /// the file's lifetime; callers must not read it concurrently with a
  /// Write to the same page (reads and structural writes never overlap:
  /// trees are built before queries run against them).
  Status View(PageId id, const Page** out) const;

  /// Batched View(): resolves \p ids in one device request.  \p views is
  /// resized to match, holding a stable page pointer per id (nullptr for
  /// unallocated ids — the caller's per-id NotFound).  Counts one device
  /// read per resolved page plus one batch; the miss-queue I/O workers
  /// use this so a service cycle costs one "pread" per sorted run of ids
  /// instead of one per page.
  void ViewBatch(const std::vector<PageId>& ids,
                 std::vector<const Page*>* views) const;

  /// Copies page \p id into \p out.  NotFound for unallocated ids.
  Status Read(PageId id, Page* out) const;

  /// Overwrites page \p id.  NotFound for unallocated ids.
  Status Write(PageId id, const Page& page);

  /// Raw device-level counters (all accesses, buffered or not; readahead
  /// staging counts here but not as pager faults).
  uint64_t device_reads() const {
    return device_reads_.load(std::memory_order_relaxed);
  }
  /// Batched requests issued via ViewBatch() (each covers >= 1 pages).
  uint64_t device_read_batches() const {
    return device_read_batches_.load(std::memory_order_relaxed);
  }
  uint64_t device_writes() const { return device_writes_; }

 private:
  // unique_ptr keeps Page addresses stable and avoids 4 KB moves on growth.
  std::vector<std::unique_ptr<Page>> pages_;
  // Read()/View() are logically const and run concurrently from query
  // threads.
  mutable std::atomic<uint64_t> device_reads_{0};
  mutable std::atomic<uint64_t> device_read_batches_{0};
  uint64_t device_writes_ = 0;
};

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_PAGE_FILE_H_
