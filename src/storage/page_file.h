// In-memory simulated disk: an append-allocated array of 4 KB pages.
//
// The experiments of Section 5 measure I/O as the number of page accesses
// under a cost model (10 ms per fault), not wall-clock disk latency, so the
// backing store can safely live in RAM while the Pager (pager.h) provides
// the fault accounting and the LRU buffer in front of it.

#ifndef CONN_STORAGE_PAGE_FILE_H_
#define CONN_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace conn {
namespace storage {

/// Append-allocated page store with read/write by PageId.
class PageFile {
 public:
  PageFile() = default;

  // Non-copyable (identity semantics, like a file handle).  Moves must not
  // race concurrent access (only tree construction moves files).
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;
  PageFile(PageFile&& other) noexcept
      : pages_(std::move(other.pages_)),
        device_reads_(other.device_reads_.load(std::memory_order_relaxed)),
        device_writes_(other.device_writes_) {}
  PageFile& operator=(PageFile&& other) noexcept {
    if (this != &other) {
      pages_ = std::move(other.pages_);
      device_reads_.store(other.device_reads_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      device_writes_ = other.device_writes_;
    }
    return *this;
  }

  /// Allocates a zeroed page and returns its id.
  PageId Allocate();

  /// Number of allocated pages.
  size_t PageCount() const { return pages_.size(); }

  /// Copies page \p id into \p out.  NotFound for unallocated ids.
  Status Read(PageId id, Page* out) const;

  /// Overwrites page \p id.  NotFound for unallocated ids.
  Status Write(PageId id, const Page& page);

  /// Raw device-level counters (all accesses, buffered or not).
  uint64_t device_reads() const {
    return device_reads_.load(std::memory_order_relaxed);
  }
  uint64_t device_writes() const { return device_writes_; }

 private:
  // unique_ptr keeps Page addresses stable and avoids 4 KB moves on growth.
  std::vector<std::unique_ptr<Page>> pages_;
  // Read() is logically const and runs concurrently from query threads.
  mutable std::atomic<uint64_t> device_reads_{0};
  uint64_t device_writes_ = 0;
};

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_PAGE_FILE_H_
