// LRU page buffer — the seed buffer manager, kept as the *reference model*
// for the buffer pool's exact-LRU mode.  The production read path lives in
// buffer_pool.h / pager.h; this class is only used by property tests that
// replay randomized traces against both implementations and assert the
// hit/miss sequence and resident set match bit-for-bit (which is what makes
// the committed Fig. 12 fault counts reproducible).
//
// Capacity is configured in pages; the buffer-size experiment (Figure 12)
// expresses it as a percentage of the tree size.

#ifndef CONN_STORAGE_LRU_BUFFER_H_
#define CONN_STORAGE_LRU_BUFFER_H_

#include <list>
#include <unordered_map>
#include <utility>

#include "storage/page.h"

namespace conn {
namespace storage {

/// Fixed-capacity least-recently-used cache of pages.
class LruBuffer {
 public:
  /// Creates a buffer holding at most \p capacity pages (0 disables caching).
  explicit LruBuffer(size_t capacity = 0) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return map_.size(); }

  /// Changes the capacity, evicting LRU pages if shrinking.
  void SetCapacity(size_t capacity);

  /// Looks up \p id; on hit copies the page into \p out, promotes it to
  /// most-recently-used, and returns true.
  bool Get(PageId id, Page* out);

  /// Residency probe without an LRU touch (for trace-equivalence tests).
  bool Contains(PageId id) const { return map_.count(id) > 0; }

  /// Inserts or refreshes \p id as most-recently-used (no-op if capacity 0).
  void Put(PageId id, const Page& page);

  /// Drops all cached pages (e.g., between benchmark configurations).
  void Clear();

 private:
  void EvictIfNeeded();

  size_t capacity_;
  // MRU at front.  Page payloads live in the list nodes.
  std::list<std::pair<PageId, Page>> lru_;
  std::unordered_map<PageId, std::list<std::pair<PageId, Page>>::iterator>
      map_;
};

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_LRU_BUFFER_H_
