// Fixed-size page abstraction.  The paper fixes the R-tree page size at
// 4 KB (Section 5.1); I/O cost is measured in page faults against this unit.

#ifndef CONN_STORAGE_PAGE_H_
#define CONN_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace conn {
namespace storage {

/// Page size in bytes (paper: "page size fixed at 4KB").
inline constexpr size_t kPageSize = 4096;

/// Identifier of a page within a PageFile.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// A raw 4 KB page.
struct Page {
  std::array<uint8_t, kPageSize> bytes{};

  uint8_t* data() { return bytes.data(); }
  const uint8_t* data() const { return bytes.data(); }

  /// Typed read at byte offset; bounds-checked in debug builds.
  template <typename T>
  T ReadAt(size_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    std::memcpy(&value, bytes.data() + offset, sizeof(T));
    return value;
  }

  /// Typed write at byte offset; bounds-checked in debug builds.
  template <typename T>
  void WriteAt(size_t offset, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(bytes.data() + offset, &value, sizeof(T));
  }
};

static_assert(sizeof(Page) == kPageSize);

}  // namespace storage
}  // namespace conn

#endif  // CONN_STORAGE_PAGE_H_
