#include "storage/buffer_pool.h"

#include <algorithm>

#include "storage/pool_tuning.h"

namespace conn {
namespace storage {

void PinnedPage::SetDecoded(std::shared_ptr<const void> obj) {
  decoded_ = obj;
  if (pool_ != nullptr) pool_->InstallDecoded(frame_, std::move(obj));
}

void PinnedPage::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
  data_ = nullptr;
  id_ = kInvalidPageId;
  decoded_.reset();
  owned_.reset();
}

void BufferPool::Configure(const BufferOptions& options) {
  for (const Frame& f : frames_) {
    CONN_CHECK_MSG(f.pins.load(std::memory_order_acquire) == 0,
                   "BufferPool::Configure with live pins");
  }
  options_ = options;
  const size_t cap = options.capacity_pages;
  frames_ = std::vector<Frame>(cap);
  // Shard count: exact-LRU needs one global list to reproduce the seed
  // buffer's eviction order; 2Q shards once the pool is big enough for
  // latch contention to matter.  The mapping (id % shards) is
  // deterministic, so fault counts stay machine-independent.
  size_t num_shards = 1;
  if (cap > 0 && options.policy == EvictionPolicy::kTwoQueue) {
    num_shards = std::clamp<size_t>(cap / kFramesPerShard, 1, kMaxShards);
  }
  shards_.clear();
  shards_.reserve(std::max<size_t>(num_shards, 1));
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Configure is a single-threaded structural operation, but the list
  // helpers require the shard latch — take it (uncontended) per shard.
  // Frame i belongs to shard i % num_shards, seeded in ascending i order
  // (the same per-shard free-list order the interleaved seed loop built).
  for (size_t s = 0; s < num_shards; ++s) {
    Shard& sh = *shards_[s];
    MutexLock lock(sh.mu);
    for (size_t i = s; i < cap; i += num_shards) {
      ++sh.capacity;
      PushFront(sh, ListId::kFree, static_cast<uint32_t>(i));
    }
    sh.a1in_target = std::max<size_t>(1, sh.capacity / kA1inTargetDivisor);
  }
}

void BufferPool::Clear() {
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    MutexLock lock(sh.mu);
    for (const auto& [id, f] : sh.table) {
      CONN_CHECK_MSG(frames_[f].pins.load(std::memory_order_acquire) == 0,
                     "BufferPool::Clear with live pins");
    }
    for (const auto& [id, f] : sh.table) {
      Frame& frame = frames_[f];
      frame.page_id = kInvalidPageId;
      frame.decoded.reset();
      Unlink(sh, f);
      PushFront(sh, ListId::kFree, f);
    }
    sh.table.clear();
    sh.ghost_fifo.clear();
    sh.ghost_map.clear();
  }
}

BufferPool::List& BufferPool::ListFor(Shard& sh, ListId id) {
  switch (id) {
    case ListId::kFree:
      return sh.free_list;
    case ListId::kA1in:
      return sh.a1in;
    case ListId::kAm:
      return sh.am;
  }
  CONN_CHECK(false);
  return sh.free_list;  // unreachable
}

void BufferPool::Unlink(Shard& sh, uint32_t frame) {
  Frame& f = frames_[frame];
  List& list = ListFor(sh, f.list);
  if (f.prev != kNullFrame) {
    frames_[f.prev].next = f.next;
  } else {
    list.head = f.next;
  }
  if (f.next != kNullFrame) {
    frames_[f.next].prev = f.prev;
  } else {
    list.tail = f.prev;
  }
  f.prev = f.next = kNullFrame;
  --list.size;
}

void BufferPool::PushFront(Shard& sh, ListId list_id, uint32_t frame) {
  Frame& f = frames_[frame];
  List& list = ListFor(sh, list_id);
  f.list = list_id;
  f.prev = kNullFrame;
  f.next = list.head;
  if (list.head != kNullFrame) frames_[list.head].prev = frame;
  list.head = frame;
  if (list.tail == kNullFrame) list.tail = frame;
  ++list.size;
}

uint32_t BufferPool::EvictFromTail(Shard& sh, ListId list_id, bool to_ghost) {
  uint32_t f = ListFor(sh, list_id).tail;
  while (f != kNullFrame &&
         frames_[f].pins.load(std::memory_order_acquire) != 0) {
    f = frames_[f].prev;  // pinned frames are never evicted
  }
  if (f == kNullFrame) return kNullFrame;
  Frame& frame = frames_[f];
  // A readahead-staged page that was never demand-referenced has no reuse
  // history to remember: ghosting it would turn its first-ever demand
  // access into a bogus "second reference" straight into Am.
  if (frame.prefetched) {
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
  }
  if (to_ghost && !frame.prefetched) GhostInsert(sh, frame.page_id);
  sh.table.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  frame.decoded.reset();
  Unlink(sh, f);
  return f;
}

void BufferPool::GhostInsert(Shard& sh, PageId id) {
  const uint64_t seq = ++sh.ghost_seq;
  sh.ghost_map[id] = seq;  // refreshes the entry if one already exists
  sh.ghost_fifo.push_back({id, seq});
  // Ghost history length trades two failure modes: too short and a root
  // FIFO-evicted mid-query is forgotten before the query touches it again
  // (no promotion); too long and cyclically re-scanned cold pages all earn
  // ghost hits, flooding Am until it degenerates to plain LRU.  4x the
  // frame count covers one query's worth of evictions (the upper-level
  // reuse distance) while staying well below leaf re-scan distances.
  // The FIFO bound matters too: ghost hits erase map entries but leave
  // their FIFO entries behind, so trimming on the map size alone would let
  // the deque grow by one stale entry per eviction forever on a cycling
  // working set.
  const size_t ghost_cap = 4 * sh.capacity;
  while ((sh.ghost_map.size() > ghost_cap ||
          sh.ghost_fifo.size() > 2 * ghost_cap) &&
         !sh.ghost_fifo.empty()) {
    const auto [old_id, old_seq] = sh.ghost_fifo.front();
    sh.ghost_fifo.pop_front();
    // Only the id's newest entry is authoritative; stale entries (ghost
    // hits already consumed them, or a later re-ghost superseded them)
    // must not delete the live one.
    auto it = sh.ghost_map.find(old_id);
    if (it != sh.ghost_map.end() && it->second == old_seq) {
      sh.ghost_map.erase(it);
    }
  }
}

uint32_t BufferPool::AcquireFrame(Shard& sh) {
  if (sh.free_list.size > 0) {
    const uint32_t f = sh.free_list.head;
    Unlink(sh, f);
    return f;
  }
  if (options_.policy == EvictionPolicy::kExactLru) {
    return EvictFromTail(sh, ListId::kAm, /*to_ghost=*/false);
  }
  // 2Q: drain the probationary FIFO while it exceeds its share (or while
  // the protected side is empty); otherwise evict the protected LRU tail.
  uint32_t f = kNullFrame;
  if (sh.a1in.size > sh.a1in_target || sh.am.size == 0) {
    f = EvictFromTail(sh, ListId::kA1in, /*to_ghost=*/true);
  }
  if (f == kNullFrame) f = EvictFromTail(sh, ListId::kAm, /*to_ghost=*/false);
  if (f == kNullFrame) f = EvictFromTail(sh, ListId::kA1in, /*to_ghost=*/true);
  return f;
}

bool BufferPool::TryGet(PageId id, PinnedPage* out) {
  if (capacity() == 0) return false;
  Shard& sh = *shards_[ShardOf(id)];
  MutexLock lock(sh.mu);
  auto it = sh.table.find(id);
  if (it == sh.table.end()) return false;
  const uint32_t f = it->second;
  Frame& frame = frames_[f];
  // Reference touch.  In 2Q mode any second *demand* reference — whether
  // the page is still probationary or already protected — moves it to the
  // front of Am: R-tree roots and internal nodes are re-touched within a
  // single query, long before classic-2Q's eviction-then-ghost-hit cycle
  // would promote them.  Pages demand-referenced exactly once (leaf
  // scans) stay in the A1in FIFO and wash out without disturbing the
  // protected set; the first demand hit on a readahead-staged page is
  // such a first reference, not a promoting second one.
  if (frame.prefetched) {
    frame.prefetched = false;
    prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
    if (options_.policy == EvictionPolicy::kExactLru) {
      Unlink(sh, f);
      PushFront(sh, ListId::kAm, f);  // plain LRU touch
    }
  } else {
    Unlink(sh, f);
    PushFront(sh, ListId::kAm, f);
  }
  PinInto(sh, f, id, out);
  return true;
}

void BufferPool::PinInto(Shard& sh, uint32_t f, PageId id, PinnedPage* out) {
  // REQUIRES(sh.mu): the pin must appear before the latch is released
  // (eviction checks pins under the same latch), and the decoded snapshot
  // must be taken atomically with the lookup.
  (void)sh;  // only the capability is consumed
  Frame& frame = frames_[f];
  frame.pins.fetch_add(1, std::memory_order_acq_rel);
  out->Release();
  out->pool_ = this;
  out->frame_ = f;
  out->data_ = &frame.page;
  out->id_ = id;
  out->decoded_ = frame.decoded;
}

uint32_t BufferPool::StageFrame(Shard& sh, PageId id, const Page& src) {
  const uint32_t f = AcquireFrame(sh);
  if (f == kNullFrame) return kNullFrame;  // every candidate frame pinned
  Frame& frame = frames_[f];
  frame.page = src;  // the simulated disk-to-frame transfer
  frame.page_id = id;
  frame.prefetched = false;  // Insert overrides for readahead staging
  sh.table.emplace(id, f);
  if (options_.policy == EvictionPolicy::kExactLru) {
    PushFront(sh, ListId::kAm, f);
  } else if (sh.ghost_map.erase(id) > 0) {
    PushFront(sh, ListId::kAm, f);  // seen before: straight to protected
  } else {
    PushFront(sh, ListId::kA1in, f);  // first sighting: probationary
  }
  return f;
}

bool BufferPool::Insert(PageId id, const Page& src, PinnedPage* out) {
  if (capacity() == 0) return false;
  Shard& sh = *shards_[ShardOf(id)];
  MutexLock lock(sh.mu);
  uint32_t f = kNullFrame;
  auto it = sh.table.find(id);
  if (it != sh.table.end()) {
    // Another thread staged this page between our miss and now; reuse it
    // (the content is identical — pages are immutable during reads).
    f = it->second;
  } else {
    f = StageFrame(sh, id, src);
    if (f == kNullFrame) return false;
    frames_[f].prefetched = (out == nullptr);
  }
  if (out != nullptr) {
    frames_[f].prefetched = false;  // demand reference
    PinInto(sh, f, id, out);
  }
  return true;
}

void BufferPool::PutForWrite(PageId id, const Page& src) {
  if (capacity() == 0) return;
  Shard& sh = *shards_[ShardOf(id)];
  MutexLock lock(sh.mu);
  auto it = sh.table.find(id);
  if (it != sh.table.end()) {
    const uint32_t f = it->second;
    Frame& frame = frames_[f];
    CONN_DCHECK(frame.pins.load(std::memory_order_acquire) == 0);
    frame.page = src;
    frame.decoded.reset();  // the cached parse no longer matches the bytes
    if (options_.policy == EvictionPolicy::kExactLru ||
        frame.list == ListId::kAm) {
      Unlink(sh, f);
      PushFront(sh, ListId::kAm, f);
    }
    return;
  }
  StageFrame(sh, id, src);  // fully pinned => stays write-through only
}

bool BufferPool::Resident(PageId id) {
  if (capacity() == 0) return false;
  Shard& sh = *shards_[ShardOf(id)];
  MutexLock lock(sh.mu);
  return sh.table.count(id) > 0;
}

size_t BufferPool::ResidentPages() {
  size_t n = 0;
  for (auto& sh : shards_) {
    MutexLock lock(sh->mu);
    n += sh->table.size();
  }
  return n;
}

size_t BufferPool::PinnedFrames() {
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.pins.load(std::memory_order_acquire) != 0) ++n;
  }
  return n;
}

void BufferPool::Unpin(uint32_t frame) {
  // Release ordering publishes the reader's byte accesses to the next
  // evictor, whose acquire load of the zero pin count synchronizes here.
  frames_[frame].pins.fetch_sub(1, std::memory_order_release);
}

void BufferPool::InstallDecoded(uint32_t frame,
                                std::shared_ptr<const void> obj) {
  Frame& f = frames_[frame];
  // The caller holds a pin, so the frame cannot be evicted or recycled;
  // its page id (and thus its shard) is stable.
  Shard& sh = *shards_[ShardOf(f.page_id)];
  MutexLock lock(sh.mu);
  f.decoded = std::move(obj);
}

}  // namespace storage
}  // namespace conn
