// Line segment with arc-length parameterization.  The CONN query segment
// q = [S, E] is a Segment; positions along q are expressed as arc-length
// parameters t in [0, Length()], matching the paper's coordinate setup in
// Figure 4(a).

#ifndef CONN_GEOM_SEGMENT_H_
#define CONN_GEOM_SEGMENT_H_

#include <algorithm>

#include "common/check.h"
#include "geom/box.h"
#include "geom/vec.h"

namespace conn {
namespace geom {

/// Directed line segment from a to b.
struct Segment {
  Vec2 a;
  Vec2 b;

  constexpr Segment() = default;
  constexpr Segment(Vec2 start, Vec2 end) : a(start), b(end) {}

  constexpr bool operator==(const Segment&) const = default;

  double Length() const { return Dist(a, b); }
  constexpr Vec2 Delta() const { return b - a; }

  /// Point at arc-length parameter t in [0, Length()].  A zero-length
  /// segment returns its (unique) point for any t.
  Vec2 At(double t) const {
    const double len = Length();
    if (len == 0.0) return a;
    return a + Delta() * (t / len);
  }

  /// Arc-length parameter of the projection of \p p onto the segment's
  /// supporting line (may fall outside [0, Length()]).
  double ProjectParam(Vec2 p) const {
    const double len = Length();
    if (len == 0.0) return 0.0;
    return (p - a).Dot(Delta()) / len;
  }

  /// Unsigned distance from \p p to the supporting line.
  double LineDistance(Vec2 p) const {
    const double len = Length();
    if (len == 0.0) return Dist(p, a);
    return std::abs(Delta().Cross(p - a)) / len;
  }

  /// Tight bounding box.
  Rect Bounds() const { return Rect::FromCorners(a, b); }

  /// Segment with endpoints swapped.
  constexpr Segment Reversed() const { return Segment(b, a); }
};

}  // namespace geom
}  // namespace conn

#endif  // CONN_GEOM_SEGMENT_H_
