// Distance curves along a query segment.
//
// Once a control point cp for a data point p over an interval R of the query
// segment q is known (Definition 8), the obstructed distance from p to the
// point q(t) is
//
//     f(t) = ||p, cp|| + dist(cp, q(t)) = offset + sqrt((t - m)^2 + h^2)
//
// where (m, h) are cp's coordinates in q's arc-length frame (projection
// parameter m, unsigned perpendicular offset h) and offset = ||p, cp||.
// That is exactly the function family of Equation (2) of the paper; a split
// point (Definition 7) is a crossing of two such curves.  This header
// provides the frame, the curve type, and a robust crossing solver
// (quadratic + Newton polish + midpoint classification) that subsumes the
// paper's Cases 1-4 including all degenerate configurations (a = 0, b = c,
// b > c, h = 0).

#ifndef CONN_GEOM_CURVE_H_
#define CONN_GEOM_CURVE_H_

#include <vector>

#include "geom/interval.h"
#include "geom/segment.h"
#include "geom/vec.h"

namespace conn {
namespace geom {

/// Arc-length coordinate frame of a query segment: origin at q.a, abscissa
/// along q, ordinate perpendicular.  Maps 2-D points to (m, h) pairs.
class SegmentFrame {
 public:
  /// Builds the frame of \p q.  Zero-length segments are allowed (the frame
  /// maps every point to m = 0, h = dist(point, q.a)).
  explicit SegmentFrame(const Segment& q);

  const Segment& segment() const { return q_; }
  double length() const { return length_; }

  /// Projection parameter of \p p along the segment direction (unclamped).
  double ProjectM(Vec2 p) const;

  /// Unsigned perpendicular distance of \p p from the supporting line.
  double ProjectH(Vec2 p) const;

  /// Point at parameter t (clamped only by the caller).
  Vec2 PointAt(double t) const { return q_.At(t); }

 private:
  Segment q_;
  double length_;
  Vec2 dir_;  // unit direction (arbitrary for zero-length segments)
};

/// A curve f(t) = offset + sqrt((t - m)^2 + h^2) over a segment frame.
struct DistanceCurve {
  double offset = 0.0;  ///< accumulated obstructed distance ||p, cp||
  double m = 0.0;       ///< control point's projection parameter
  double h = 0.0;       ///< control point's perpendicular offset (>= 0)

  /// Builds the curve of control point \p cp with path prefix \p offset.
  static DistanceCurve FromControlPoint(const SegmentFrame& frame, Vec2 cp,
                                        double offset);

  /// f(t).
  double Eval(double t) const;

  /// f'(t) (undefined at the kink t == m when h == 0; returns 0 there).
  double Derivative(double t) const;

  /// True iff the two curves are the same function (within tolerance).
  bool SameFunction(const DistanceCurve& o) const;
};

/// All parameters t in \p domain where c1(t) == c2(t), in ascending order.
///
/// Identical curves return an empty vector (callers must treat ties via
/// midpoint comparison).  Tangential touches report the touch point.
std::vector<double> CurveCrossings(const DistanceCurve& c1,
                                   const DistanceCurve& c2,
                                   const Interval& domain);

}  // namespace geom
}  // namespace conn

#endif  // CONN_GEOM_CURVE_H_
