#include "geom/curve.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geom/quadratic.h"

namespace conn {
namespace geom {

SegmentFrame::SegmentFrame(const Segment& q) : q_(q), length_(q.Length()) {
  dir_ = (length_ > 0.0) ? q.Delta() / length_ : Vec2{1.0, 0.0};
}

double SegmentFrame::ProjectM(Vec2 p) const { return (p - q_.a).Dot(dir_); }

double SegmentFrame::ProjectH(Vec2 p) const {
  return std::abs(dir_.Cross(p - q_.a));
}

DistanceCurve DistanceCurve::FromControlPoint(const SegmentFrame& frame,
                                              Vec2 cp, double offset) {
  CONN_DCHECK(offset >= 0.0);
  DistanceCurve c;
  c.offset = offset;
  c.m = frame.ProjectM(cp);
  c.h = frame.ProjectH(cp);
  return c;
}

double DistanceCurve::Eval(double t) const {
  return offset + std::hypot(t - m, h);
}

double DistanceCurve::Derivative(double t) const {
  const double r = std::hypot(t - m, h);
  if (r == 0.0) return 0.0;
  return (t - m) / r;
}

bool DistanceCurve::SameFunction(const DistanceCurve& o) const {
  return std::abs(offset - o.offset) <= kEpsDist &&
         std::abs(m - o.m) <= kEpsParam && std::abs(h - o.h) <= kEpsDist;
}

namespace {

// g(t) = c1(t) - c2(t); crossings are the roots of g.
double EvalDiff(const DistanceCurve& c1, const DistanceCurve& c2, double t) {
  return c1.Eval(t) - c2.Eval(t);
}

// Polishes a root of g with Newton iterations, falling back to bisection on
// a sign-changing bracket around the candidate when Newton stalls (e.g. at
// near-tangential crossings where g' ~ 0).
double NewtonPolish(const DistanceCurve& c1, const DistanceCurve& c2,
                    double t0) {
  double t = t0;
  double best_t = t0;
  double best_g = std::abs(EvalDiff(c1, c2, t0));
  for (int iter = 0; iter < 30 && best_g > 1e-13; ++iter) {
    const double g = EvalDiff(c1, c2, t);
    const double dg = c1.Derivative(t) - c2.Derivative(t);
    if (std::abs(dg) < 1e-14) break;
    t -= g / dg;
    if (!std::isfinite(t)) break;
    const double ag = std::abs(EvalDiff(c1, c2, t));
    if (ag < best_g) {
      best_g = ag;
      best_t = t;
    } else {
      break;
    }
  }
  if (best_g <= 1e-10) return best_t;

  // Bisection fallback: search for a sign-changing bracket around t0 with
  // geometrically growing radius, then bisect to machine precision.
  const double g0 = EvalDiff(c1, c2, best_t);
  double radius = 1e-6 * (1.0 + std::abs(best_t));
  for (int grow = 0; grow < 40; ++grow, radius *= 2.0) {
    for (const double side : {-1.0, 1.0}) {
      const double tb = best_t + side * radius;
      const double gb = EvalDiff(c1, c2, tb);
      if (g0 * gb >= 0.0) continue;
      double lo = std::min(best_t, tb), hi = std::max(best_t, tb);
      double glo = EvalDiff(c1, c2, lo);
      for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double gm = EvalDiff(c1, c2, mid);
        if (glo * gm <= 0.0) {
          hi = mid;
        } else {
          lo = mid;
          glo = gm;
        }
      }
      return 0.5 * (lo + hi);
    }
  }
  return best_t;  // no bracket: tangential touch; best effort
}

}  // namespace

std::vector<double> CurveCrossings(const DistanceCurve& c1,
                                   const DistanceCurve& c2,
                                   const Interval& domain) {
  std::vector<double> out;
  if (domain.IsEmpty()) return out;
  if (c1.SameFunction(c2)) return out;  // identical: tie everywhere

  // Derivation (squaring Equation (1) twice; see curve.h):
  //   sqrt((t-m1)^2 + h1^2) - sqrt((t-m2)^2 + h2^2) = delta,
  //   delta = c2.offset - c1.offset.
  // Solved in coordinates centered between the two projections — the
  // coefficients involve m^2 terms that cancel catastrophically when the
  // projections are large, and centering keeps their magnitude at the
  // *separation* scale instead of the absolute-position scale.
  const double center = 0.5 * (c1.m + c2.m);
  const double m1 = c1.m - center, h1 = c1.h;
  const double m2 = c2.m - center, h2 = c2.h;
  const double delta = c2.offset - c1.offset;
  const double alpha = 2.0 * (m2 - m1);
  const double beta = m1 * m1 + h1 * h1 - m2 * m2 - h2 * h2;

  std::vector<double> candidates;
  if (std::abs(delta) <= 1e-12) {
    // Equal offsets: crossing where the radicands agree, alpha*t + beta = 0.
    if (std::abs(alpha) > 1e-14) candidates.push_back(center - beta / alpha);
  } else {
    // (alpha*t + beta - delta^2)^2 = 4*delta^2*((t-m2)^2 + h2^2)
    const double d2 = delta * delta;
    const double qa = alpha * alpha - 4.0 * d2;
    const double qb = 2.0 * alpha * (beta - d2) + 8.0 * d2 * m2;
    const double qc =
        (beta - d2) * (beta - d2) - 4.0 * d2 * (m2 * m2 + h2 * h2);
    double roots[2];
    const int n = SolveQuadratic(qa, qb, qc, roots);
    for (int i = 0; i < n; ++i) candidates.push_back(center + roots[i]);
  }

  // Polish and validate (squaring introduces spurious roots with the wrong
  // radical sign; the |g| check rejects them).
  const double tol =
      kEpsDist * (1.0 + std::abs(c1.offset) + std::abs(c2.offset));
  const double slack = std::max(kEpsParam, 1e-9 * (1.0 + domain.Length()));
  for (double cand : candidates) {
    const double t = NewtonPolish(c1, c2, cand);
    if (std::abs(EvalDiff(c1, c2, t)) > tol) continue;
    if (t < domain.lo - slack || t > domain.hi + slack) continue;
    out.push_back(std::clamp(t, domain.lo, domain.hi));
  }
  std::sort(out.begin(), out.end());
  // Deduplicate near-coincident crossings (tangential double roots).
  out.erase(std::unique(out.begin(), out.end(),
                        [](double a, double b) {
                          return std::abs(a - b) <= kEpsParam;
                        }),
            out.end());
  return out;
}

}  // namespace geom
}  // namespace conn
