// 2-D point/vector type and elementary operations.
//
// Coordinates are doubles; the library's workspace is [0, 10000]^2 (the
// paper's normalized search space), so absolute epsilons in predicates.h are
// calibrated against that scale.

#ifndef CONN_GEOM_VEC_H_
#define CONN_GEOM_VEC_H_

#include <cmath>

namespace conn {
namespace geom {

/// A 2-D point or vector.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double px, double py) : x(px), y(py) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  /// Dot product.
  constexpr double Dot(Vec2 o) const { return x * o.x + y * o.y; }

  /// 2-D cross product (z-component of the 3-D cross product).
  constexpr double Cross(Vec2 o) const { return x * o.y - y * o.x; }

  /// Squared Euclidean norm.
  constexpr double Norm2() const { return x * x + y * y; }

  /// Euclidean norm.
  double Norm() const { return std::sqrt(Norm2()); }

  /// Unit vector in this direction; requires a nonzero norm.
  Vec2 Normalized() const {
    const double n = Norm();
    return {x / n, y / n};
  }

  /// Counter-clockwise perpendicular.
  constexpr Vec2 Perp() const { return {-y, x}; }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Euclidean distance between two points (the paper's dist(p, p')).
inline double Dist(Vec2 a, Vec2 b) { return (a - b).Norm(); }

/// Squared Euclidean distance.
constexpr double Dist2(Vec2 a, Vec2 b) { return (a - b).Norm2(); }

}  // namespace geom
}  // namespace conn

#endif  // CONN_GEOM_VEC_H_
