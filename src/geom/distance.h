// Euclidean distance metrics between points, segments, and rectangles.
//
// MinDist(rect, segment) is the R-tree pruning metric of the paper: for an
// R-tree node N and query segment q, mindist(N, q) lower-bounds the
// (Euclidean, hence also obstructed) distance from any object in N to q.

#ifndef CONN_GEOM_DISTANCE_H_
#define CONN_GEOM_DISTANCE_H_

#include "geom/box.h"
#include "geom/segment.h"
#include "geom/vec.h"

namespace conn {
namespace geom {

/// Distance from point \p p to the closed segment \p s.
double DistPointSegment(Vec2 p, const Segment& s);

/// Arc-length parameter in [0, s.Length()] of the point of \p s closest to
/// \p p (the clamped projection).
double ClosestParamOnSegment(Vec2 p, const Segment& s);

/// Minimum distance between two closed segments (0 when they intersect).
double DistSegmentSegment(const Segment& s1, const Segment& s2);

/// Minimum distance from the closed rectangle \p r to point \p p
/// (0 when the rectangle contains the point).
double MinDistRectPoint(const Rect& r, Vec2 p);

/// Minimum distance from the closed rectangle \p r to segment \p s
/// (0 when they intersect).  This is mindist(N, q) for R-tree traversal.
double MinDistRectSegment(const Rect& r, const Segment& s);

/// Minimum distance between two closed rectangles (0 when they intersect).
double MinDistRectRect(const Rect& a, const Rect& b);

/// Maximum distance from point \p p to any point of rectangle \p r.
double MaxDistRectPoint(const Rect& r, Vec2 p);

}  // namespace geom
}  // namespace conn

#endif  // CONN_GEOM_DISTANCE_H_
