#include "geom/predicates.h"

#include <algorithm>
#include <cmath>

namespace conn {
namespace geom {

int Orientation(Vec2 a, Vec2 b, Vec2 c, double eps) {
  const double cross = (b - a).Cross(c - a);
  if (cross > eps) return 1;
  if (cross < -eps) return -1;
  return 0;
}

namespace {

// True iff p lies in the bounding box of [a, b] (used for the collinear
// branch of the segment intersection test).
bool OnBox(Vec2 p, Vec2 a, Vec2 b) {
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

}  // namespace

bool SegmentsIntersect(const Segment& s1, const Segment& s2) {
  const Vec2 a = s1.a, b = s1.b, c = s2.a, d = s2.b;
  const int o1 = Orientation(a, b, c);
  const int o2 = Orientation(a, b, d);
  const int o3 = Orientation(c, d, a);
  const int o4 = Orientation(c, d, b);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && OnBox(c, a, b)) return true;
  if (o2 == 0 && OnBox(d, a, b)) return true;
  if (o3 == 0 && OnBox(a, c, d)) return true;
  if (o4 == 0 && OnBox(b, c, d)) return true;
  return false;
}

bool ClipSegmentToRect(const Segment& s, const Rect& r, double* t0,
                       double* t1) {
  // Liang-Barsky parametric clipping of s.a + t * (s.b - s.a), t in [0,1].
  double tmin = 0.0, tmax = 1.0;
  const Vec2 d = s.Delta();
  const double p[4] = {-d.x, d.x, -d.y, d.y};
  const double q[4] = {s.a.x - r.lo.x, r.hi.x - s.a.x, s.a.y - r.lo.y,
                       r.hi.y - s.a.y};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0.0) {
      if (q[i] < 0.0) return false;  // parallel and outside this slab
      continue;
    }
    const double t = q[i] / p[i];
    if (p[i] < 0.0) {
      tmin = std::max(tmin, t);
    } else {
      tmax = std::min(tmax, t);
    }
    if (tmin > tmax) return false;
  }
  *t0 = tmin;
  *t1 = tmax;
  return true;
}

bool SegmentIntersectsRect(const Segment& s, const Rect& r) {
  double t0, t1;
  return ClipSegmentToRect(s, r, &t0, &t1);
}

bool SegmentCrossesInterior(const Segment& s, const Rect& r, double eps) {
  // Shrink the rectangle so boundary-grazing segments do not count.  A
  // rectangle thinner than 2*eps has no interior under this policy.
  const Rect inner{{r.lo.x + eps, r.lo.y + eps}, {r.hi.x - eps, r.hi.y - eps}};
  if (!inner.IsValid()) return false;
  double t0, t1;
  if (!ClipSegmentToRect(s, inner, &t0, &t1)) return false;
  // A single touching point (t0 == t1) can only happen at the shrunk box's
  // corner; treat a degenerate overlap as non-blocking.
  return t1 - t0 > 0.0;
}

bool PointInTriangle(Vec2 a, Vec2 b, Vec2 c, Vec2 p, double eps) {
  const int o1 = Orientation(a, b, p, eps);
  const int o2 = Orientation(b, c, p, eps);
  const int o3 = Orientation(c, a, p, eps);
  const bool has_pos = o1 > 0 || o2 > 0 || o3 > 0;
  const bool has_neg = o1 < 0 || o2 < 0 || o3 < 0;
  return !(has_pos && has_neg);
}

bool PointInInterior(Vec2 p, const Rect& r, double eps) {
  return r.lo.x + eps < p.x && p.x < r.hi.x - eps && r.lo.y + eps < p.y &&
         p.y < r.hi.y - eps;
}

bool TriangleIntersectsRect(Vec2 a, Vec2 b, Vec2 c, const Rect& r) {
  // Separating-axis test.  Axis candidates: the rectangle's two axes and
  // the three triangle edge normals.
  const Vec2 tri[3] = {a, b, c};

  // Rectangle axes: compare the triangle's bbox with r.
  double tminx = a.x, tmaxx = a.x, tminy = a.y, tmaxy = a.y;
  for (int i = 1; i < 3; ++i) {
    tminx = std::min(tminx, tri[i].x);
    tmaxx = std::max(tmaxx, tri[i].x);
    tminy = std::min(tminy, tri[i].y);
    tmaxy = std::max(tmaxy, tri[i].y);
  }
  if (tmaxx < r.lo.x || tminx > r.hi.x || tmaxy < r.lo.y || tminy > r.hi.y) {
    return false;
  }

  // Triangle edge normals.
  const auto corners = r.Corners();
  for (int i = 0; i < 3; ++i) {
    const Vec2 edge = tri[(i + 1) % 3] - tri[i];
    const Vec2 normal = edge.Perp();
    double tmin = 1e300, tmax = -1e300;
    for (const Vec2& v : tri) {
      const double d = normal.Dot(v);
      tmin = std::min(tmin, d);
      tmax = std::max(tmax, d);
    }
    double rmin = 1e300, rmax = -1e300;
    for (const Vec2& v : corners) {
      const double d = normal.Dot(v);
      rmin = std::min(rmin, d);
      rmax = std::max(rmax, d);
    }
    if (tmax < rmin || tmin > rmax) return false;
  }
  return true;
}

}  // namespace geom
}  // namespace conn
