#include "geom/interval_set.h"

#include <algorithm>

#include "common/check.h"

namespace conn {
namespace geom {

IntervalSet::IntervalSet(const Interval& iv) {
  if (!iv.IsEmpty()) intervals_.push_back(iv);
  Normalize();
}

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  Normalize();
}

void IntervalSet::Normalize() {
  std::erase_if(intervals_, [](const Interval& iv) {
    return iv.IsEmpty() || iv.Length() <= kEpsParam;
  });
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  for (const Interval& iv : intervals_) {
    if (!merged.empty() && iv.lo <= merged.back().hi + kEpsParam) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  intervals_ = std::move(merged);
}

double IntervalSet::TotalLength() const {
  double sum = 0.0;
  for (const Interval& iv : intervals_) sum += iv.Length();
  return sum;
}

bool IntervalSet::Contains(double t, double eps) const {
  // Binary search over sorted disjoint intervals.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](double v, const Interval& iv) { return v < iv.lo; });
  if (it != intervals_.begin() && std::prev(it)->ContainsApprox(t, eps)) {
    return true;
  }
  return it != intervals_.end() && it->ContainsApprox(t, eps);
}

IntervalSet IntervalSet::Union(const IntervalSet& o) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), o.intervals_.begin(), o.intervals_.end());
  return IntervalSet(std::move(all));
}

IntervalSet IntervalSet::Intersect(const IntervalSet& o) const {
  std::vector<Interval> out;
  // Linear merge over the two sorted lists.
  size_t i = 0, j = 0;
  while (i < intervals_.size() && j < o.intervals_.size()) {
    const Interval inter = intervals_[i].Intersect(o.intervals_[j]);
    if (!inter.IsEmpty()) out.push_back(inter);
    if (intervals_[i].hi < o.intervals_[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return IntervalSet(std::move(out));
}

IntervalSet IntervalSet::Intersect(const Interval& iv) const {
  return Intersect(IntervalSet(iv));
}

IntervalSet IntervalSet::Subtract(const IntervalSet& o) const {
  std::vector<Interval> out;
  for (const Interval& base : intervals_) {
    double cursor = base.lo;
    for (const Interval& cut : o.intervals_) {
      if (cut.hi < cursor) continue;
      if (cut.lo > base.hi) break;
      if (cut.lo > cursor) out.push_back(Interval(cursor, cut.lo));
      cursor = std::max(cursor, cut.hi);
      if (cursor >= base.hi) break;
    }
    if (cursor < base.hi) out.push_back(Interval(cursor, base.hi));
  }
  return IntervalSet(std::move(out));
}

IntervalSet IntervalSet::Subtract(const Interval& iv) const {
  return Subtract(IntervalSet(iv));
}

IntervalSet IntervalSet::ComplementWithin(const Interval& domain) const {
  return IntervalSet(domain).Subtract(*this);
}

std::string IntervalSet::ToString() const {
  if (intervals_.empty()) return "{}";
  std::string out = "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += ", ";
    out += intervals_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace geom
}  // namespace conn
