#include "geom/quadratic.h"

#include <algorithm>
#include <cmath>

namespace conn {
namespace geom {

int SolveQuadratic(double a, double b, double c, double roots[2]) {
  const double scale = std::max({std::abs(a), std::abs(b), std::abs(c)});
  if (scale == 0.0) return 0;  // 0 == 0: identically zero, handled by caller

  // Degenerate to linear when the quadratic term is negligible relative to
  // the other coefficients.
  if (std::abs(a) <= 1e-14 * scale) {
    if (std::abs(b) <= 1e-14 * scale) return 0;  // constant, no roots
    roots[0] = -c / b;
    return 1;
  }

  double disc = b * b - 4.0 * a * c;
  const double disc_scale = std::max(b * b, std::abs(4.0 * a * c));
  if (disc < 0.0) {
    // Treat a barely-negative discriminant as a tangential double root.
    if (disc >= -1e-12 * disc_scale) disc = 0.0;
    else return 0;
  }

  const double sqrt_disc = std::sqrt(disc);
  // Citardauq: compute the root that does not suffer cancellation first.
  const double q = -0.5 * (b + (b >= 0.0 ? sqrt_disc : -sqrt_disc));
  double r0, r1;
  if (q != 0.0) {
    r0 = q / a;
    r1 = c / q;
  } else {
    // b == 0 and disc == 0  =>  both roots are 0.
    r0 = r1 = 0.0;
  }
  if (r0 > r1) std::swap(r0, r1);
  roots[0] = r0;
  roots[1] = r1;
  return (disc == 0.0) ? 1 : 2;
}

}  // namespace geom
}  // namespace conn
