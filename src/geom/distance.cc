#include "geom/distance.h"

#include <algorithm>
#include <cmath>

#include "geom/predicates.h"

namespace conn {
namespace geom {

double ClosestParamOnSegment(Vec2 p, const Segment& s) {
  const double len = s.Length();
  if (len == 0.0) return 0.0;
  const double t = (p - s.a).Dot(s.Delta()) / len;
  return std::clamp(t, 0.0, len);
}

double DistPointSegment(Vec2 p, const Segment& s) {
  return Dist(p, s.At(ClosestParamOnSegment(p, s)));
}

double DistSegmentSegment(const Segment& s1, const Segment& s2) {
  if (SegmentsIntersect(s1, s2)) return 0.0;
  return std::min(
      std::min(DistPointSegment(s1.a, s2), DistPointSegment(s1.b, s2)),
      std::min(DistPointSegment(s2.a, s1), DistPointSegment(s2.b, s1)));
}

double MinDistRectPoint(const Rect& r, Vec2 p) {
  const double dx = std::max({r.lo.x - p.x, 0.0, p.x - r.hi.x});
  const double dy = std::max({r.lo.y - p.y, 0.0, p.y - r.hi.y});
  return std::hypot(dx, dy);
}

double MinDistRectSegment(const Rect& r, const Segment& s) {
  if (SegmentIntersectsRect(s, r)) return 0.0;
  // Disjoint: the minimum is attained between the segment and one of the
  // rectangle's edges (or corners, covered by edge endpoints).
  const auto c = r.Corners();
  double best = DistPointSegment(s.a, Segment(c[0], c[1]));
  for (int i = 0; i < 4; ++i) {
    const Segment edge(c[i], c[(i + 1) % 4]);
    best = std::min(best, DistSegmentSegment(edge, s));
  }
  return best;
}

double MinDistRectRect(const Rect& a, const Rect& b) {
  const double dx = std::max({a.lo.x - b.hi.x, 0.0, b.lo.x - a.hi.x});
  const double dy = std::max({a.lo.y - b.hi.y, 0.0, b.lo.y - a.hi.y});
  return std::hypot(dx, dy);
}

double MaxDistRectPoint(const Rect& r, Vec2 p) {
  const double dx = std::max(std::abs(p.x - r.lo.x), std::abs(p.x - r.hi.x));
  const double dy = std::max(std::abs(p.y - r.lo.y), std::abs(p.y - r.hi.y));
  return std::hypot(dx, dy);
}

}  // namespace geom
}  // namespace conn
