// A set of disjoint, sorted, closed parameter intervals with union /
// intersection / difference.  Used for visible regions (Definition 2) and
// for the reachable portion of the query segment.
//
// Intervals closer than kEpsParam are coalesced, and sub-eps slivers are
// dropped during normalization: the geometry that produces these sets
// (shadow boundaries, curve crossings) is only accurate to ~1e-9 anyway,
// and downstream consumers (Split, RLU) require properly-overlapping
// intervals to act.

#ifndef CONN_GEOM_INTERVAL_SET_H_
#define CONN_GEOM_INTERVAL_SET_H_

#include <string>
#include <vector>

#include "geom/interval.h"

namespace conn {
namespace geom {

/// Immutable-style set of disjoint closed intervals, kept sorted by lo.
class IntervalSet {
 public:
  /// Empty set.
  IntervalSet() = default;

  /// Singleton set (empty if \p iv is empty).
  explicit IntervalSet(const Interval& iv);

  /// Set from arbitrary (possibly overlapping, unsorted) intervals.
  explicit IntervalSet(std::vector<Interval> intervals);

  const std::vector<Interval>& intervals() const { return intervals_; }
  bool IsEmpty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }

  /// Total length of all member intervals.
  double TotalLength() const;

  /// True iff \p t lies in some member interval (with tolerance).
  bool Contains(double t, double eps = kEpsParam) const;

  /// Set union.
  IntervalSet Union(const IntervalSet& o) const;

  /// Set intersection.
  IntervalSet Intersect(const IntervalSet& o) const;

  /// Intersection with a single interval.
  IntervalSet Intersect(const Interval& iv) const;

  /// Set difference (this minus o).
  IntervalSet Subtract(const IntervalSet& o) const;

  /// Difference with a single interval.
  IntervalSet Subtract(const Interval& iv) const;

  /// Complement within the domain [domain.lo, domain.hi].
  IntervalSet ComplementWithin(const Interval& domain) const;

  std::string ToString() const;

  bool operator==(const IntervalSet&) const = default;

 private:
  /// Sorts, merges (within kEpsParam), and drops empty/sliver intervals.
  void Normalize();

  std::vector<Interval> intervals_;
};

}  // namespace geom
}  // namespace conn

#endif  // CONN_GEOM_INTERVAL_SET_H_
