// Numerically stable quadratic equation solving.  The split-point machinery
// of Section 3 (Theorem 1, Equation (1)) reduces curve crossings to the real
// roots of a quadratic whose coefficients can nearly cancel; this solver uses
// the Citardauq form to avoid catastrophic cancellation.

#ifndef CONN_GEOM_QUADRATIC_H_
#define CONN_GEOM_QUADRATIC_H_

namespace conn {
namespace geom {

/// Solves a*x^2 + b*x + c = 0 over the reals.
///
/// Returns the number of real roots (0, 1, or 2) and writes them to
/// \p roots in ascending order.  Near-zero leading coefficients degrade
/// gracefully to the linear case; a discriminant within a small negative
/// tolerance of zero is treated as a double root.  The degenerate identity
/// 0 == 0 (all coefficients ~0) reports 0 roots — callers treat "equal
/// everywhere" separately.
int SolveQuadratic(double a, double b, double c, double roots[2]);

}  // namespace geom
}  // namespace conn

#endif  // CONN_GEOM_QUADRATIC_H_
