// Split-point computation (Section 3 of the paper).
//
// Given the distance curve of an incumbent (the current ONN / control point
// over an interval) and of a challenger, the winner can change at most twice
// along the query segment (Theorem 1).  CompareCurves computes the exact
// partition of an interval into winner-labeled sub-intervals using the
// robust crossing solver of curve.h.
//
// ClassifyPaperCase is a literal transcription of the paper's Case 1-4
// analysis (valid under Figure 4's preconditions); it exists to cross-check
// the robust engine in tests and to drive the ablation benchmarks.
// EndpointDominancePrune implements Lemma 1's O(1) fast path.

#ifndef CONN_GEOM_SPLIT_H_
#define CONN_GEOM_SPLIT_H_

#include <vector>

#include "geom/curve.h"
#include "geom/interval.h"

namespace conn {
namespace geom {

/// Which curve wins (is strictly lower; ties go to the incumbent).
enum class CurveWinner { kIncumbent, kChallenger };

/// A sub-interval together with its winning curve.
struct LabeledInterval {
  Interval interval;
  CurveWinner winner;
};

/// Partitions \p domain into maximal sub-intervals labeled by the lower
/// curve.  The partition covers the domain exactly; adjacent intervals with
/// the same winner are merged.  Empty domain yields an empty vector.
std::vector<LabeledInterval> CompareCurves(const DistanceCurve& incumbent,
                                           const DistanceCurve& challenger,
                                           const Interval& domain);

/// The paper's split-case taxonomy (Section 3, Cases 1-4).
enum class SplitCase {
  kCase1ChallengerEverywhere,  ///< d >= dist(u, v): challenger replaces all
  kCase2TwoSplits,             ///< a < d < dist(u, v): two split points
  kCase3OneSplit,              ///< -a < d <= a: one split point
  kCase4NoChange,              ///< d <= -a: incumbent keeps everything
};

/// Literal Case 1-4 classification over the *infinite* supporting line of
/// the frame, per Figure 4: d = incumbent.offset - challenger.offset
/// compared against dist(u, v) and a = |m_u - m_v|.  Valid under Figure 4's
/// premises: both control points on the same side of the line, distinct
/// projections (a > 0), and the challenger's control point strictly farther
/// from the line (c > b; footnote 2 of the paper notes the thresholds
/// change otherwise — e.g. with b > c the roles mirror to d >= a /
/// d <= -dist(u,v)).  The caller supplies the true 2-D control points so
/// dist(u, v) is exact.
SplitCase ClassifyPaperCase(const SegmentFrame& frame, Vec2 incumbent_cp,
                            double incumbent_offset, Vec2 challenger_cp,
                            double challenger_offset);

/// Lemma 1 fast path: returns true iff the incumbent provably dominates the
/// challenger over all of \p domain, established from the two endpoint
/// values plus the perpendicular-distance precondition (challenger's control
/// point at least as far from the line).  A false return means "unknown" —
/// run CompareCurves.
bool EndpointDominancePrune(const DistanceCurve& incumbent,
                            const DistanceCurve& challenger,
                            const Interval& domain);

}  // namespace geom
}  // namespace conn

#endif  // CONN_GEOM_SPLIT_H_
