// Geometric predicates with a centralized epsilon policy.
//
// Visibility semantics (Definition 1 of the paper): two points see each other
// iff the straight segment between them does not pass through the *open
// interior* of any obstacle.  Grazing an obstacle edge or corner is allowed —
// shortest obstructed paths routinely run along obstacle boundaries and bend
// at corners.  Numerically this is implemented by shrinking the obstacle by
// kEpsInterior before the crossing test, so obstacles thinner than
// 2*kEpsInterior in either dimension never block (the data generators enforce
// a minimum obstacle extent well above that).

#ifndef CONN_GEOM_PREDICATES_H_
#define CONN_GEOM_PREDICATES_H_

#include "geom/box.h"
#include "geom/segment.h"
#include "geom/vec.h"

namespace conn {
namespace geom {

/// Workspace scale the epsilons are calibrated for ([0, 10000]^2).
inline constexpr double kWorkspaceSide = 10000.0;

/// Tolerance for "on the boundary" in the visibility predicate.
inline constexpr double kEpsInterior = 1e-7;

/// Tolerance for comparing distances / curve values (workspace units).
inline constexpr double kEpsDist = 1e-6;

/// Tolerance for comparing arc-length parameters along a query segment.
inline constexpr double kEpsParam = 1e-7;

/// Result-list slivers below this arc length are absorbed into a
/// neighboring interval.  Interval endpoints are only accurate to ~kEpsParam
/// (region boundaries, curve crossings), so partitions can be left with
/// few-eps leftovers whose value never gets set; an unset leftover would
/// keep the Lemma 2 termination bound at +infinity forever.  At 1e-9 of the
/// workspace scale, absorbing them is far below meaningful resolution.
inline constexpr double kEpsSliver = 1e-5;

/// Sign of the orientation of the triple (a, b, c):
/// +1 counter-clockwise, -1 clockwise, 0 collinear within \p eps
/// (eps is an absolute area threshold).
int Orientation(Vec2 a, Vec2 b, Vec2 c, double eps = 1e-9);

/// True iff closed segments [a,b] and [c,d] share at least one point.
bool SegmentsIntersect(const Segment& s1, const Segment& s2);

/// True iff segment \p s intersects the closed rectangle \p r.
bool SegmentIntersectsRect(const Segment& s, const Rect& r);

/// True iff segment \p s passes through the open interior of rectangle
/// \p r (interior shrunk by \p eps; see file comment for semantics).
/// This is THE visibility-blocking predicate.
bool SegmentCrossesInterior(const Segment& s, const Rect& r,
                            double eps = kEpsInterior);

/// True iff \p p lies strictly inside \p r (at depth > eps from every edge).
bool PointInInterior(Vec2 p, const Rect& r, double eps = kEpsInterior);

/// Clips segment \p s to the closed rectangle \p r (Liang-Barsky).  Returns
/// false when disjoint; otherwise [*t0, *t1] is the sub-range of the
/// segment's [0,1] parameter inside the rectangle (t0 <= t1; equality means
/// the intersection is a single point).
bool ClipSegmentToRect(const Segment& s, const Rect& r, double* t0,
                       double* t1);

/// True iff \p p lies inside or on the boundary (within \p eps area
/// tolerance) of triangle (a, b, c); vertex order may be either winding.
/// Used by the Lemma 6 control-point refinement.
bool PointInTriangle(Vec2 a, Vec2 b, Vec2 c, Vec2 p, double eps = 1e-9);

/// True iff the closed triangle (a, b, c) and the closed rectangle \p r
/// share at least one point (separating-axis test).  Used to filter the
/// obstacles that can possibly shadow a segment from a viewpoint: only
/// those meeting the triangle (viewpoint, q.a, q.b) matter.
bool TriangleIntersectsRect(Vec2 a, Vec2 b, Vec2 c, const Rect& r);

}  // namespace geom
}  // namespace conn

#endif  // CONN_GEOM_PREDICATES_H_
