// Axis-aligned rectangle.  Used both as the obstacle shape (the paper assumes
// rectangular obstacles, Section 1 footnote 1) and as the bounding box type
// of R-tree entries.

#ifndef CONN_GEOM_BOX_H_
#define CONN_GEOM_BOX_H_

#include <algorithm>
#include <array>

#include "common/check.h"
#include "geom/vec.h"

namespace conn {
namespace geom {

/// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
/// Degenerate rectangles (points, horizontal/vertical segments) are valid.
struct Rect {
  Vec2 lo;
  Vec2 hi;

  constexpr Rect() = default;
  constexpr Rect(Vec2 low, Vec2 high) : lo(low), hi(high) {}

  /// Rectangle covering exactly one point.
  static constexpr Rect FromPoint(Vec2 p) { return Rect(p, p); }

  /// Smallest rectangle covering both corners, regardless of their order.
  static constexpr Rect FromCorners(Vec2 a, Vec2 b) {
    return Rect({std::min(a.x, b.x), std::min(a.y, b.y)},
                {std::max(a.x, b.x), std::max(a.y, b.y)});
  }

  /// An "empty" rectangle that acts as the identity for ExpandedToCover.
  static constexpr Rect Empty() {
    return Rect({1e300, 1e300}, {-1e300, -1e300});
  }

  constexpr bool operator==(const Rect&) const = default;

  constexpr bool IsValid() const { return lo.x <= hi.x && lo.y <= hi.y; }
  constexpr double Width() const { return hi.x - lo.x; }
  constexpr double Height() const { return hi.y - lo.y; }
  constexpr double Area() const { return Width() * Height(); }
  constexpr double Margin() const { return 2.0 * (Width() + Height()); }
  constexpr Vec2 Center() const {
    return {(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5};
  }

  /// True iff \p p lies in the closed rectangle.
  constexpr bool Contains(Vec2 p) const {
    return lo.x <= p.x && p.x <= hi.x && lo.y <= p.y && p.y <= hi.y;
  }

  /// True iff \p o lies entirely inside the closed rectangle.
  constexpr bool Contains(const Rect& o) const {
    return lo.x <= o.lo.x && o.hi.x <= hi.x && lo.y <= o.lo.y && o.hi.y <= hi.y;
  }

  /// True iff the closed rectangles share at least one point.
  constexpr bool Intersects(const Rect& o) const {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y && o.lo.y <= hi.y;
  }

  /// Intersection rectangle; invalid (per IsValid) when disjoint.
  constexpr Rect Intersection(const Rect& o) const {
    return Rect({std::max(lo.x, o.lo.x), std::max(lo.y, o.lo.y)},
                {std::min(hi.x, o.hi.x), std::min(hi.y, o.hi.y)});
  }

  /// Area of overlap with \p o (0 when disjoint).
  constexpr double OverlapArea(const Rect& o) const {
    const double w =
        std::min(hi.x, o.hi.x) - std::max(lo.x, o.lo.x);
    const double h =
        std::min(hi.y, o.hi.y) - std::max(lo.y, o.lo.y);
    return (w > 0 && h > 0) ? w * h : 0.0;
  }

  /// Smallest rectangle covering this one and \p o.
  constexpr Rect ExpandedToCover(const Rect& o) const {
    return Rect({std::min(lo.x, o.lo.x), std::min(lo.y, o.lo.y)},
                {std::max(hi.x, o.hi.x), std::max(hi.y, o.hi.y)});
  }

  /// Smallest rectangle covering this one and point \p p.
  constexpr Rect ExpandedToCover(Vec2 p) const {
    return ExpandedToCover(Rect::FromPoint(p));
  }

  /// Corners in counter-clockwise order starting at lo.
  std::array<Vec2, 4> Corners() const {
    return {Vec2{lo.x, lo.y}, Vec2{hi.x, lo.y}, Vec2{hi.x, hi.y},
            Vec2{lo.x, hi.y}};
  }
};

}  // namespace geom
}  // namespace conn

#endif  // CONN_GEOM_BOX_H_
