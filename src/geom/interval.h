// Closed interval of arc-length parameters along a query segment.
//
// All of the paper's interval-valued notions — visible regions (Def. 2),
// control point list entries (Def. 9), result list entries (Def. 6) — are
// represented as Interval / IntervalSet values over q's [0, Length] axis.

#ifndef CONN_GEOM_INTERVAL_H_
#define CONN_GEOM_INTERVAL_H_

#include <algorithm>
#include <string>

#include "geom/predicates.h"

namespace conn {
namespace geom {

/// Closed parameter interval [lo, hi].  Intervals with hi < lo are "empty".
struct Interval {
  double lo = 0.0;
  double hi = -1.0;  // default-constructed interval is empty

  constexpr Interval() = default;
  constexpr Interval(double l, double h) : lo(l), hi(h) {}

  constexpr bool operator==(const Interval&) const = default;

  constexpr bool IsEmpty() const { return hi < lo; }
  constexpr double Length() const { return IsEmpty() ? 0.0 : hi - lo; }
  constexpr double Mid() const { return 0.5 * (lo + hi); }

  /// True iff the interval is a single point (within \p eps).
  constexpr bool IsDegenerate(double eps = kEpsParam) const {
    return !IsEmpty() && hi - lo <= eps;
  }

  constexpr bool Contains(double t) const {
    return !IsEmpty() && lo <= t && t <= hi;
  }

  /// Containment with tolerance: t within eps of the closed interval.
  constexpr bool ContainsApprox(double t, double eps = kEpsParam) const {
    return !IsEmpty() && lo - eps <= t && t <= hi + eps;
  }

  constexpr Interval Intersect(const Interval& o) const {
    return Interval(std::max(lo, o.lo), std::min(hi, o.hi));
  }

  /// True iff the closed intervals overlap in more than a point (> eps).
  constexpr bool OverlapsProperly(const Interval& o,
                                  double eps = kEpsParam) const {
    return std::min(hi, o.hi) - std::max(lo, o.lo) > eps;
  }

  std::string ToString() const {
    if (IsEmpty()) return "[]";
    // Built via append: the `"[" + std::to_string(...)` operator+ chain
    // trips a GCC 12 -Wrestrict false positive (PR105651) inside
    // libstdc++'s string insert, which the -Werror release build rejects.
    std::string out = "[";
    out += std::to_string(lo);
    out += ", ";
    out += std::to_string(hi);
    out += "]";
    return out;
  }
};

}  // namespace geom
}  // namespace conn

#endif  // CONN_GEOM_INTERVAL_H_
