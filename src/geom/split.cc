#include "geom/split.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace conn {
namespace geom {

std::vector<LabeledInterval> CompareCurves(const DistanceCurve& incumbent,
                                           const DistanceCurve& challenger,
                                           const Interval& domain) {
  std::vector<LabeledInterval> out;
  if (domain.IsEmpty()) return out;

  const std::vector<double> crossings =
      CurveCrossings(incumbent, challenger, domain);

  // Breakpoints: domain endpoints plus interior crossings.
  std::vector<double> breaks;
  breaks.reserve(crossings.size() + 2);
  breaks.push_back(domain.lo);
  for (double t : crossings) {
    if (t > breaks.back() + kEpsParam && t < domain.hi - kEpsParam) {
      breaks.push_back(t);
    }
  }
  breaks.push_back(std::max(domain.hi, breaks.back()));

  for (size_t i = 0; i + 1 < breaks.size(); ++i) {
    const Interval piece(breaks[i], breaks[i + 1]);
    const double mid = piece.Mid();
    // Ties (within tolerance) go to the incumbent: fewer result-list
    // perturbations and deterministic output.
    const double gi = incumbent.Eval(mid);
    const double gc = challenger.Eval(mid);
    const CurveWinner w = (gc < gi - 1e-12) ? CurveWinner::kChallenger
                                            : CurveWinner::kIncumbent;
    if (!out.empty() && out.back().winner == w) {
      out.back().interval.hi = piece.hi;  // merge with previous piece
    } else {
      out.push_back({piece, w});
    }
  }
  return out;
}

SplitCase ClassifyPaperCase(const SegmentFrame& frame, Vec2 incumbent_cp,
                            double incumbent_offset, Vec2 challenger_cp,
                            double challenger_offset) {
  // Paper notation: v = incumbent's control point, u = challenger's,
  // d = ||p, v|| - ||p', u||, a = |proj(u) - proj(v)|.
  const double d = incumbent_offset - challenger_offset;
  const double duv = Dist(incumbent_cp, challenger_cp);
  const double a =
      std::abs(frame.ProjectM(challenger_cp) - frame.ProjectM(incumbent_cp));
  if (d >= duv) return SplitCase::kCase1ChallengerEverywhere;
  if (d > a) return SplitCase::kCase2TwoSplits;
  if (d > -a) return SplitCase::kCase3OneSplit;
  return SplitCase::kCase4NoChange;
}

bool EndpointDominancePrune(const DistanceCurve& incumbent,
                            const DistanceCurve& challenger,
                            const Interval& domain) {
  if (domain.IsEmpty()) return true;
  // Soundness argument (Lemma 1): with the challenger's control point at
  // least as far from the supporting line (h_u >= h_v), the difference
  // Y(t) = dist(u, t) - dist(v, t) is unimodal with a single maximum, so a
  // challenger that loses at both endpoints cannot win anywhere between.
  if (challenger.h < incumbent.h) return false;
  return incumbent.Eval(domain.lo) <= challenger.Eval(domain.lo) &&
         incumbent.Eval(domain.hi) <= challenger.Eval(domain.hi);
}

}  // namespace geom
}  // namespace conn
