#include "rtree/node.h"

namespace conn {
namespace rtree {

geom::Rect Node::ComputeBounds() const {
  geom::Rect r = geom::Rect::Empty();
  for (const NodeEntry& e : entries) r = r.ExpandedToCover(e.rect);
  return r;
}

void Node::ToPage(storage::Page* page) const {
  CONN_CHECK_MSG(entries.size() <= kNodeCapacity,
                 "serializing an overflowing node");
  page->WriteAt<uint16_t>(0, level);
  page->WriteAt<uint16_t>(2, static_cast<uint16_t>(entries.size()));
  page->WriteAt<uint32_t>(4, 0);
  size_t off = 8;
  for (const NodeEntry& e : entries) {
    page->WriteAt<NodeEntry>(off, e);
    off += sizeof(NodeEntry);
  }
}

void Node::AssignFromPage(const storage::Page& page) {
  level = page.ReadAt<uint16_t>(0);
  const uint16_t count = page.ReadAt<uint16_t>(2);
  CONN_CHECK_MSG(count <= kNodeCapacity, "corrupt node: count > capacity");
  entries.clear();
  entries.reserve(count);
  size_t off = 8;
  for (uint16_t i = 0; i < count; ++i) {
    entries.push_back(page.ReadAt<NodeEntry>(off));
    off += sizeof(NodeEntry);
  }
}

}  // namespace rtree
}  // namespace conn
