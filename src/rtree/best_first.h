// Best-first distance browsing over an R-tree (Hjaltason & Samet, TODS
// 1999).  Yields indexed objects in ascending order of their minimum
// Euclidean distance to a query segment — the mindist(e, q) order in which
// both CONN's data points and IOR's obstacles are consumed (Algorithms 1
// and 4).  Incremental: callers stop as soon as their termination bound
// (RLMAX, Lemma 2; or the IOR search distance, Lemma 3) is reached, giving
// the optimal I/O property of best-first search.
//
// When the tree's pager runs the asynchronous miss pipeline
// (BufferOptions::async_io), the descent additionally *hints*: before
// faulting on the node it is about to expand it stages the nearest
// still-pending node pages from the heap prefix, and when it expands a
// level-1 node it stages that node's nearest leaf children (STR siblings,
// laid out contiguously) — so the I/O workers resolve the pages the
// descent will demand next while this expansion computes.  Hints are
// advisory: they never fault, never block, and don't change which pages
// the descent reads, so results and fault/NPE accounting stay identical.

#ifndef CONN_RTREE_BEST_FIRST_H_
#define CONN_RTREE_BEST_FIRST_H_

#include <vector>

#include "geom/segment.h"
#include "rtree/rstar_tree.h"

namespace conn {
namespace rtree {

/// Incremental nearest-first stream of objects from a tree w.r.t. a segment.
/// (A point query is the degenerate segment [p, p].)
class BestFirstIterator {
 public:
  /// Starts a stream over \p tree ordered by mindist to \p q.  The tree must
  /// outlive the iterator and must not be modified during iteration.
  BestFirstIterator(const RStarTree& tree, const geom::Segment& q);

  /// Minimum possible distance of any not-yet-returned object; +infinity
  /// when exhausted.  Expands internal nodes as needed (counted I/O).
  double PeekDist();

  /// Retrieves the next object and its mindist.  False when exhausted.
  bool Next(DataObject* out, double* dist);

 private:
  struct HeapItem {
    double dist;
    bool is_node;
    uint64_t payload;  // PageId for nodes, encoded leaf payload for objects
    geom::Rect rect;

    bool operator>(const HeapItem& o) const {
      if (dist != o.dist) return dist > o.dist;
      // Deterministic tie-break: nodes before objects, then by payload.
      if (is_node != o.is_node) return !is_node;
      return payload > o.payload;
    }
  };

  /// Pops internal nodes until the heap's top is an object (or empty).
  void EnsureTopIsObject();

  /// Heap primitives over heap_ (std::push_heap/pop_heap with the same
  /// std::greater<> ordering std::priority_queue would use, so the pop
  /// order is identical).  The raw vector exists so the hint emitters can
  /// scan the heap prefix for pending node pages — a priority_queue hides
  /// its container.
  void PushItem(const HeapItem& item);
  HeapItem PopTop();

  /// Stages the nearest still-pending node pages from the heap prefix
  /// (async pipeline only; called right before a demand node fetch so the
  /// staging overlaps it).
  void EmitPendingNodeHints();

  const RStarTree& tree_;
  geom::Segment query_;
  const bool hints_;  ///< tree_.PrefetchEnabled() at construction
  std::vector<HeapItem> heap_;  ///< min-heap via std::push_heap/pop_heap
  std::vector<storage::PageId> hint_scratch_;
};

}  // namespace rtree
}  // namespace conn

#endif  // CONN_RTREE_BEST_FIRST_H_
