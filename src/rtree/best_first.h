// Best-first distance browsing over an R-tree (Hjaltason & Samet, TODS
// 1999).  Yields indexed objects in ascending order of their minimum
// Euclidean distance to a query segment — the mindist(e, q) order in which
// both CONN's data points and IOR's obstacles are consumed (Algorithms 1
// and 4).  Incremental: callers stop as soon as their termination bound
// (RLMAX, Lemma 2; or the IOR search distance, Lemma 3) is reached, giving
// the optimal I/O property of best-first search.

#ifndef CONN_RTREE_BEST_FIRST_H_
#define CONN_RTREE_BEST_FIRST_H_

#include <queue>
#include <vector>

#include "geom/segment.h"
#include "rtree/rstar_tree.h"

namespace conn {
namespace rtree {

/// Incremental nearest-first stream of objects from a tree w.r.t. a segment.
/// (A point query is the degenerate segment [p, p].)
class BestFirstIterator {
 public:
  /// Starts a stream over \p tree ordered by mindist to \p q.  The tree must
  /// outlive the iterator and must not be modified during iteration.
  BestFirstIterator(const RStarTree& tree, const geom::Segment& q);

  /// Minimum possible distance of any not-yet-returned object; +infinity
  /// when exhausted.  Expands internal nodes as needed (counted I/O).
  double PeekDist();

  /// Retrieves the next object and its mindist.  False when exhausted.
  bool Next(DataObject* out, double* dist);

 private:
  struct HeapItem {
    double dist;
    bool is_node;
    uint64_t payload;  // PageId for nodes, encoded leaf payload for objects
    geom::Rect rect;

    bool operator>(const HeapItem& o) const {
      if (dist != o.dist) return dist > o.dist;
      // Deterministic tie-break: nodes before objects, then by payload.
      if (is_node != o.is_node) return !is_node;
      return payload > o.payload;
    }
  };

  /// Pops internal nodes until the heap's top is an object (or empty).
  void EnsureTopIsObject();

  const RStarTree& tree_;
  geom::Segment query_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
};

}  // namespace rtree
}  // namespace conn

#endif  // CONN_RTREE_BEST_FIRST_H_
