// Disk-based R*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990) —
// the index assumed by the paper for both the data set P and the obstacle
// set O ("All data and obstacle sets are indexed by an R*-tree, with the
// page size fixed at 4KB", Section 5.1).
//
// Implemented features:
//   * ChooseSubtree with the R* overlap-enlargement rule at the leaf level
//     (restricted to the 32 least-area-enlargement candidates);
//   * forced reinsertion of 30% of entries on first overflow per level;
//   * the R* topological split (margin-driven axis choice, overlap-driven
//     distribution choice);
//   * deletion with tree condensation and orphan reinsertion;
//   * range / segment-intersection queries;
//   * STR bulk loading (str_bulk_load.h) and best-first distance browsing
//     (best_first.h) as companions.
//
// All node accesses go through the Pager, so every traversal is charged
// page faults under the paper's I/O model and can be run with a buffer pool
// of any capacity and policy (Figure 12's experiment).  Read traversals use
// FetchNode(), which pins the page in the pool and returns a shared ref to
// the frame's cached deserialization — hot nodes are parsed once per
// residency and never copied.  The Pager itself lives behind a stable heap
// handle: moving a tree (bulk-load returns by value) relocates only the
// handle, never the frame table, latches, or counters that in-flight
// readers may reference.

#ifndef CONN_RTREE_RSTAR_TREE_H_
#define CONN_RTREE_RSTAR_TREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "geom/segment.h"
#include "rtree/node.h"
#include "storage/pager.h"

namespace conn {
namespace rtree {

/// A disk-paged R*-tree over (rect, payload) objects.
class RStarTree {
 public:
  /// Creates an empty tree (a single empty leaf).
  RStarTree();

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;
  RStarTree(RStarTree&&) = default;
  RStarTree& operator=(RStarTree&&) = default;

  /// Inserts an object (R* insertion with forced reinsert).
  Status Insert(const DataObject& obj);

  /// Deletes the object matching (rect, id, kind) exactly.  NotFound if the
  /// object is not present.  Underflowing nodes are dissolved and their
  /// contents reinserted; orphaned subtree pages are not recycled (no
  /// free-list — acceptable for this workload, documented limitation).
  Status Delete(const DataObject& obj);

  /// Number of indexed objects.
  size_t size() const { return size_; }

  /// Tree height in levels (1 = root is a leaf).
  size_t Height() const { return height_; }

  /// Root page id.
  storage::PageId root() const { return root_; }

  /// Bounding rectangle of the whole tree (Empty() when no objects).
  geom::Rect Bounds() const;

  /// Page accessor — configure the buffer pool and read fault counters
  /// here.  The Pager has a stable address for the tree's lifetime (moves
  /// of the tree only re-seat the owning handle).
  storage::Pager& pager() const { return *pager_; }

  /// Number of pages the tree occupies (the "tree size" for Figure 12's
  /// buffer percentages).
  size_t PageCount() const { return pager_->PageCount(); }

  /// Fetches a node through the buffer pool without copying: the returned
  /// ref aliases the frame's decoded-node cache (parsed at most once per
  /// residency of the page).  The ref stays valid after eviction.
  StatusOr<ConstNodeRef> FetchNode(storage::PageId id) const;

  /// True when the pager runs the asynchronous miss pipeline (async_io on
  /// over a buffered pool).  Traversals emit staging hints only then —
  /// synchronous configurations keep the exact reference access pattern.
  bool PrefetchEnabled() const;

  /// Forwards advisory staging hints for tree pages to the pager (a no-op
  /// unless PrefetchEnabled(); hints never fault and never block).
  void PrefetchPages(std::span<const storage::PageId> ids) const;

  /// Child pages of the root whose rectangles intersect \p range, up to
  /// \p max_pages (empty when the root is a leaf).  The batch executor
  /// stages a shard's subtree tops through this before a worker picks the
  /// shard up, so the shard's first descents find them resident.
  Status CollectRootChildrenOverlapping(const geom::Rect& range,
                                        size_t max_pages,
                                        std::vector<storage::PageId>* out)
      const;

  /// Reads a node into caller-owned (mutable) storage — the insertion and
  /// deletion paths use this; read-only traversals prefer FetchNode().
  Status ReadNode(storage::PageId id, Node* out) const;

  /// All objects whose rect intersects \p range.
  Status RangeQuery(const geom::Rect& range,
                    std::vector<DataObject>* out) const;

  /// All objects whose rect intersects segment \p s.
  Status SegmentIntersectionQuery(const geom::Segment& s,
                                  std::vector<DataObject>* out) const;

  /// Structural invariant check (levels, MBR containment, fill factors,
  /// object count).  Intended for tests; OK on success.
  Status Validate() const;

 private:
  friend class StrBulkLoader;  // builds pages directly

  struct PathItem {
    storage::PageId page_id;
    Node node;
    int slot_in_parent;  // -1 for the root
  };

  Status WriteNode(storage::PageId id, const Node& node);

  /// Descends from the root to a node at \p target_level following the R*
  /// ChooseSubtree rules for \p rect; fills \p path (root first).
  Status ChoosePath(const geom::Rect& rect, uint16_t target_level,
                    std::vector<PathItem>* path) const;

  /// Core insertion of an entry at a level, with the once-per-level forced
  /// reinsertion discipline (bitmask over levels).
  Status InsertEntry(const NodeEntry& entry, uint16_t level,
                     uint32_t* reinsert_mask);

  /// Splits an overflowing node by the R* algorithm; returns the new
  /// sibling in \p right.
  static void SplitNode(Node* node, Node* right);

  /// Rewrites nodes along \p path from \p from_index upward, refreshing the
  /// parents' entry rectangles.
  Status AdjustPath(std::vector<PathItem>* path, size_t from_index);

  Status ValidateRec(storage::PageId id, uint16_t expected_level,
                     const geom::Rect* parent_rect, bool is_root,
                     size_t* object_count) const;

  // Stable handle: the Pager (frame table, latches, counters) never moves
  // even when the tree object does.
  std::unique_ptr<storage::Pager> pager_ =
      std::make_unique<storage::Pager>();
  storage::PageId root_ = storage::kInvalidPageId;
  size_t height_ = 1;
  size_t size_ = 0;
};

}  // namespace rtree
}  // namespace conn

#endif  // CONN_RTREE_RSTAR_TREE_H_
