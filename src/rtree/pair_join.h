// Incremental distance join between two R-trees (Hjaltason & Samet,
// SIGMOD 1998): streams object pairs (a, b) in ascending order of their
// Euclidean distance, expanding node pairs best-first.
//
// This is the access-path substrate for the obstacle-aware join family of
// Zhang et al. [31] (core/obstructed_join.h): Euclidean pair distance
// lower-bounds obstructed pair distance, so consumers can cut the stream
// at their join radius / current best.

#ifndef CONN_RTREE_PAIR_JOIN_H_
#define CONN_RTREE_PAIR_JOIN_H_

#include <queue>
#include <vector>

#include "rtree/rstar_tree.h"

namespace conn {
namespace rtree {

/// Incremental nearest-first stream of object pairs from two trees.
class PairDistanceJoin {
 public:
  /// Starts the stream over \p tree_a x \p tree_b.  Both trees must
  /// outlive the iterator and must not be modified during iteration.
  PairDistanceJoin(const RStarTree& tree_a, const RStarTree& tree_b);

  /// Minimum possible distance of any not-yet-returned pair (+infinity
  /// when exhausted).  Expands node pairs as needed (counted I/O).
  double PeekDist();

  /// Retrieves the next pair and its Euclidean distance (ascending).
  /// False when exhausted.
  bool Next(DataObject* a, DataObject* b, double* dist);

 private:
  // Heap item: either a pair of subtrees, a subtree x object, or a pair of
  // objects, keyed by the minimum distance between their rectangles.
  struct Item {
    double dist;
    bool a_is_node;
    bool b_is_node;
    uint64_t a_payload;  // PageId or encoded leaf payload
    uint64_t b_payload;
    geom::Rect a_rect;
    geom::Rect b_rect;

    bool operator>(const Item& o) const {
      if (dist != o.dist) return dist > o.dist;
      if (a_payload != o.a_payload) return a_payload > o.a_payload;
      return b_payload > o.b_payload;
    }
  };

  /// Expands heap tops until the top is an object-object pair (or empty).
  void EnsureTopIsPair();

  /// Pushes the cross product of one side's children against the other
  /// side's fixed item.
  void PushChildren(const Item& top);

  const RStarTree& tree_a_;
  const RStarTree& tree_b_;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
};

}  // namespace rtree
}  // namespace conn

#endif  // CONN_RTREE_PAIR_JOIN_H_
