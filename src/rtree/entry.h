// R-tree entry and object types.
//
// The tree stores opaque (rect, payload) pairs.  Leaf payloads encode an
// object id plus its kind (data point vs obstacle) so a single unified tree
// can index both sets, as required by the 1-tree variant of Section 4.5;
// internal payloads hold child page ids.

#ifndef CONN_RTREE_ENTRY_H_
#define CONN_RTREE_ENTRY_H_

#include <cstdint>

#include "geom/box.h"
#include "storage/page.h"

namespace conn {
namespace rtree {

/// Identifier of an indexed object (index into the owner's object table).
using ObjectId = uint64_t;

/// What a leaf entry represents.  kPoint entries have degenerate rects.
enum class ObjectKind : uint8_t {
  kPoint = 0,     ///< data point of P
  kObstacle = 1,  ///< rectangular obstacle of O
};

/// An object as seen by the tree's public API.
struct DataObject {
  geom::Rect rect;
  ObjectId id = 0;
  ObjectKind kind = ObjectKind::kPoint;

  /// Convenience constructor for a data point.
  static DataObject Point(geom::Vec2 p, ObjectId id) {
    return {geom::Rect::FromPoint(p), id, ObjectKind::kPoint};
  }

  /// Convenience constructor for an obstacle rectangle.
  static DataObject Obstacle(const geom::Rect& r, ObjectId id) {
    return {r, id, ObjectKind::kObstacle};
  }

  /// Point location (center; exact for kPoint entries).
  geom::Vec2 AsPoint() const { return rect.Center(); }
};

/// On-page entry: bounding rect + 64-bit payload.
struct NodeEntry {
  geom::Rect rect;
  uint64_t payload = 0;

  /// Leaf payload encoding: (id << 1) | kind.
  static uint64_t EncodeLeaf(ObjectId id, ObjectKind kind) {
    return (id << 1) | static_cast<uint64_t>(kind);
  }
  ObjectId DecodeId() const { return payload >> 1; }
  ObjectKind DecodeKind() const {
    return static_cast<ObjectKind>(payload & 1);
  }
  storage::PageId DecodeChild() const {
    return static_cast<storage::PageId>(payload);
  }

  DataObject ToObject() const { return {rect, DecodeId(), DecodeKind()}; }
};

static_assert(sizeof(NodeEntry) == 40, "on-page entry layout is 40 bytes");

}  // namespace rtree
}  // namespace conn

#endif  // CONN_RTREE_ENTRY_H_
