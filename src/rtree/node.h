// In-memory R-tree node and its 4 KB page serialization.
//
// Page layout:
//   [0..2)   uint16 level      (0 = leaf)
//   [2..4)   uint16 count
//   [4..8)   uint32 reserved
//   [8..)    count * NodeEntry (40 bytes each)
//
// Capacity: (4096 - 8) / 40 = 102 entries per node; R* minimum fill is 40%.

#ifndef CONN_RTREE_NODE_H_
#define CONN_RTREE_NODE_H_

#include <memory>
#include <vector>

#include "common/check.h"
#include "geom/box.h"
#include "rtree/entry.h"
#include "storage/page.h"

namespace conn {
namespace rtree {

/// Maximum entries per node given the 4 KB page.
inline constexpr size_t kNodeCapacity =
    (storage::kPageSize - 8) / sizeof(NodeEntry);

/// R* minimum fill (40% of capacity).
inline constexpr size_t kNodeMinFill = kNodeCapacity * 2 / 5;

/// Fraction of entries force-reinserted on first overflow (R*: 30%).
inline constexpr size_t kReinsertCount = kNodeCapacity * 3 / 10;

/// Deserialized node. `level` 0 means leaf; internal entries point to pages.
class Node {
 public:
  uint16_t level = 0;
  std::vector<NodeEntry> entries;

  bool IsLeaf() const { return level == 0; }
  size_t Count() const { return entries.size(); }
  bool Overflowing() const { return entries.size() > kNodeCapacity; }

  /// Tight bounding rectangle over all entries (Empty() if none).
  geom::Rect ComputeBounds() const;

  /// Serializes into a 4 KB page.  The node must not be overflowing.
  void ToPage(storage::Page* page) const;

  /// Deserializes \p page into this node, reusing the entry vector's
  /// capacity; validates the header.
  void AssignFromPage(const storage::Page& page);

  /// Deserializes from a page; validates the header.
  static Node FromPage(const storage::Page& page) {
    Node node;
    node.AssignFromPage(page);
    return node;
  }
};

/// Shared immutable view of a deserialized node.  FetchNode() hands these
/// out from the buffer pool's per-frame decoded cache: hot nodes are parsed
/// once per residency and then shared by every reader, and a ref outlives
/// eviction safely (the frame merely drops its reference).
using ConstNodeRef = std::shared_ptr<const Node>;

}  // namespace rtree
}  // namespace conn

#endif  // CONN_RTREE_NODE_H_
