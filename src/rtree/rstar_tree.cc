#include "rtree/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/predicates.h"

namespace conn {
namespace rtree {

namespace {

/// Area enlargement of \p base needed to cover \p add.
double AreaEnlargement(const geom::Rect& base, const geom::Rect& add) {
  return base.ExpandedToCover(add).Area() - base.Area();
}

/// Sum of pairwise overlap between entry \p idx (enlarged to \p enlarged)
/// and every other entry of \p node, minus the overlap it already had.
double OverlapEnlargement(const Node& node, size_t idx,
                          const geom::Rect& enlarged) {
  double delta = 0.0;
  const geom::Rect& original = node.entries[idx].rect;
  for (size_t j = 0; j < node.entries.size(); ++j) {
    if (j == idx) continue;
    delta += enlarged.OverlapArea(node.entries[j].rect) -
             original.OverlapArea(node.entries[j].rect);
  }
  return delta;
}

/// R* restricts the O(n^2) overlap test to this many candidates.
constexpr size_t kChooseSubtreeP = 32;

/// Chooses the child slot of \p node that should receive \p rect.
size_t ChooseSubtreeSlot(const Node& node, const geom::Rect& rect) {
  CONN_DCHECK(!node.IsLeaf());
  CONN_DCHECK(!node.entries.empty());

  if (node.level == 1) {
    // Children are leaves: minimize overlap enlargement among the
    // kChooseSubtreeP entries with least area enlargement.
    std::vector<size_t> order(node.entries.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return AreaEnlargement(node.entries[a].rect, rect) <
             AreaEnlargement(node.entries[b].rect, rect);
    });
    const size_t candidates = std::min(order.size(), kChooseSubtreeP);
    size_t best = order[0];
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_area_enl = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < candidates; ++k) {
      const size_t i = order[k];
      const geom::Rect enlarged = node.entries[i].rect.ExpandedToCover(rect);
      const double overlap = OverlapEnlargement(node, i, enlarged);
      const double area_enl = AreaEnlargement(node.entries[i].rect, rect);
      const double area = node.entries[i].rect.Area();
      if (overlap < best_overlap ||
          (overlap == best_overlap &&
           (area_enl < best_area_enl ||
            (area_enl == best_area_enl && area < best_area)))) {
        best = i;
        best_overlap = overlap;
        best_area_enl = area_enl;
        best_area = area;
      }
    }
    return best;
  }

  // Children are internal nodes: minimize area enlargement, ties by area.
  size_t best = 0;
  double best_enl = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const double enl = AreaEnlargement(node.entries[i].rect, rect);
    const double area = node.entries[i].rect.Area();
    if (enl < best_enl || (enl == best_enl && area < best_area)) {
      best = i;
      best_enl = enl;
      best_area = area;
    }
  }
  return best;
}

/// Margin (perimeter) sum of all R* distributions along one sorted order.
struct SplitScan {
  std::vector<geom::Rect> prefix;  // prefix[i] = bounds of entries[0..i]
  std::vector<geom::Rect> suffix;  // suffix[i] = bounds of entries[i..n-1]
};

SplitScan ComputeScan(const std::vector<NodeEntry>& entries) {
  const size_t n = entries.size();
  SplitScan s;
  s.prefix.resize(n);
  s.suffix.resize(n);
  geom::Rect acc = geom::Rect::Empty();
  for (size_t i = 0; i < n; ++i) {
    acc = acc.ExpandedToCover(entries[i].rect);
    s.prefix[i] = acc;
  }
  acc = geom::Rect::Empty();
  for (size_t i = n; i-- > 0;) {
    acc = acc.ExpandedToCover(entries[i].rect);
    s.suffix[i] = acc;
  }
  return s;
}

}  // namespace

RStarTree::RStarTree() {
  root_ = pager_->Allocate();
  Node leaf;
  leaf.level = 0;
  storage::Page page;
  leaf.ToPage(&page);
  CONN_CHECK(pager_->Write(root_, page).ok());
}

StatusOr<ConstNodeRef> RStarTree::FetchNode(storage::PageId id) const {
  StatusOr<storage::PinnedPage> pinned = pager_->Fetch(id);
  if (!pinned.ok()) return pinned.status();
  storage::PinnedPage& pp = pinned.value();
  if (const std::shared_ptr<const void>& cached = pp.decoded()) {
    // Buffer hit on an already-parsed node: zero copies, zero parsing.
    return std::static_pointer_cast<const Node>(cached);
  }
  auto node = std::make_shared<Node>();
  node->AssignFromPage(pp.page());
  ConstNodeRef ref = std::move(node);
  pp.SetDecoded(ref);  // no-op when unbuffered — nowhere to cache
  return ref;
}

bool RStarTree::PrefetchEnabled() const {
  const storage::BufferOptions& opts = pager_->buffer_pool().options();
  return opts.async_io && opts.capacity_pages > 0;
}

void RStarTree::PrefetchPages(std::span<const storage::PageId> ids) const {
  if (!PrefetchEnabled()) return;
  pager_->Prefetch(ids);
}

Status RStarTree::CollectRootChildrenOverlapping(
    const geom::Rect& range, size_t max_pages,
    std::vector<storage::PageId>* out) const {
  out->clear();
  if (max_pages == 0) return Status::OK();
  StatusOr<ConstNodeRef> root = FetchNode(root_);
  if (!root.ok()) return root.status();
  const Node& node = *root.value();
  if (node.IsLeaf()) return Status::OK();
  for (const NodeEntry& e : node.entries) {
    if (!e.rect.Intersects(range)) continue;
    out->push_back(e.DecodeChild());
    if (out->size() >= max_pages) break;
  }
  return Status::OK();
}

Status RStarTree::ReadNode(storage::PageId id, Node* out) const {
  StatusOr<storage::PinnedPage> pinned = pager_->Fetch(id);
  if (!pinned.ok()) return pinned.status();
  const storage::PinnedPage& pp = pinned.value();
  if (const std::shared_ptr<const void>& cached = pp.decoded()) {
    *out = *std::static_pointer_cast<const Node>(cached);  // skip re-parse
  } else {
    out->AssignFromPage(pp.page());
  }
  return Status::OK();
}

Status RStarTree::WriteNode(storage::PageId id, const Node& node) {
  storage::Page page;
  node.ToPage(&page);
  return pager_->Write(id, page);
}

geom::Rect RStarTree::Bounds() const {
  StatusOr<ConstNodeRef> root = FetchNode(root_);
  if (!root.ok()) return geom::Rect::Empty();
  return root.value()->ComputeBounds();
}

Status RStarTree::ChoosePath(const geom::Rect& rect, uint16_t target_level,
                             std::vector<PathItem>* path) const {
  path->clear();
  storage::PageId page_id = root_;
  int slot = -1;
  while (true) {
    Node node;
    CONN_RETURN_IF_ERROR(ReadNode(page_id, &node));
    const uint16_t level = node.level;
    path->push_back({page_id, std::move(node), slot});
    if (level == target_level) return Status::OK();
    if (level < target_level || path->back().node.entries.empty()) {
      return Status::Internal("ChoosePath: target level unreachable");
    }
    slot = static_cast<int>(ChooseSubtreeSlot(path->back().node, rect));
    page_id = path->back().node.entries[slot].DecodeChild();
  }
}

void RStarTree::SplitNode(Node* node, Node* right) {
  std::vector<NodeEntry>& entries = node->entries;
  const size_t n = entries.size();
  CONN_CHECK(n == kNodeCapacity + 1);
  const size_t min_fill = kNodeMinFill;

  // --- choose split axis by minimum margin sum (R* CSA1/CSA2) ---
  double best_margin = std::numeric_limits<double>::infinity();
  int best_axis = 0;
  bool best_by_hi = false;
  for (int axis = 0; axis < 2; ++axis) {
    for (int by_hi = 0; by_hi < 2; ++by_hi) {
      std::sort(entries.begin(), entries.end(),
                [&](const NodeEntry& a, const NodeEntry& b) {
                  const double ka = axis == 0
                                        ? (by_hi ? a.rect.hi.x : a.rect.lo.x)
                                        : (by_hi ? a.rect.hi.y : a.rect.lo.y);
                  const double kb = axis == 0
                                        ? (by_hi ? b.rect.hi.x : b.rect.lo.x)
                                        : (by_hi ? b.rect.hi.y : b.rect.lo.y);
                  return ka < kb;
                });
      const SplitScan scan = ComputeScan(entries);
      double margin = 0.0;
      for (size_t k = min_fill; k <= n - min_fill; ++k) {
        margin += scan.prefix[k - 1].Margin() + scan.suffix[k].Margin();
      }
      if (margin < best_margin) {
        best_margin = margin;
        best_axis = axis;
        best_by_hi = by_hi;
      }
    }
  }

  // --- re-sort on the chosen axis/order and pick the distribution with
  //     minimum overlap (ties: minimum combined area) (R* CSI1) ---
  std::sort(entries.begin(), entries.end(),
            [&](const NodeEntry& a, const NodeEntry& b) {
              const double ka =
                  best_axis == 0 ? (best_by_hi ? a.rect.hi.x : a.rect.lo.x)
                                 : (best_by_hi ? a.rect.hi.y : a.rect.lo.y);
              const double kb =
                  best_axis == 0 ? (best_by_hi ? b.rect.hi.x : b.rect.lo.x)
                                 : (best_by_hi ? b.rect.hi.y : b.rect.lo.y);
              return ka < kb;
            });
  const SplitScan scan = ComputeScan(entries);
  size_t best_k = min_fill;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t k = min_fill; k <= n - min_fill; ++k) {
    const double overlap = scan.prefix[k - 1].OverlapArea(scan.suffix[k]);
    const double area = scan.prefix[k - 1].Area() + scan.suffix[k].Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  right->level = node->level;
  right->entries.assign(entries.begin() + best_k, entries.end());
  entries.resize(best_k);
}

Status RStarTree::AdjustPath(std::vector<PathItem>* path, size_t from_index) {
  CONN_RETURN_IF_ERROR(
      WriteNode((*path)[from_index].page_id, (*path)[from_index].node));
  for (size_t j = from_index; j > 0; --j) {
    PathItem& child = (*path)[j];
    PathItem& parent = (*path)[j - 1];
    const geom::Rect bounds = child.node.ComputeBounds();
    NodeEntry& pe = parent.node.entries[child.slot_in_parent];
    if (pe.rect == bounds) break;  // no further change propagates
    pe.rect = bounds;
    CONN_RETURN_IF_ERROR(WriteNode(parent.page_id, parent.node));
  }
  return Status::OK();
}

Status RStarTree::InsertEntry(const NodeEntry& entry, uint16_t level,
                              uint32_t* reinsert_mask) {
  std::vector<PathItem> path;
  CONN_RETURN_IF_ERROR(ChoosePath(entry.rect, level, &path));
  path.back().node.entries.push_back(entry);

  size_t i = path.size() - 1;
  while (path[i].node.Overflowing()) {
    const uint16_t node_level = path[i].node.level;
    const bool is_root = (i == 0);

    if (!is_root && !((*reinsert_mask) >> node_level & 1u)) {
      // --- forced reinsertion (R* OverflowTreatment, once per level) ---
      *reinsert_mask |= (1u << node_level);
      Node& node = path[i].node;
      const geom::Vec2 center = node.ComputeBounds().Center();
      std::sort(node.entries.begin(), node.entries.end(),
                [&](const NodeEntry& a, const NodeEntry& b) {
                  return geom::Dist2(a.rect.Center(), center) >
                         geom::Dist2(b.rect.Center(), center);
                });
      std::vector<NodeEntry> removed(node.entries.begin(),
                                     node.entries.begin() + kReinsertCount);
      node.entries.erase(node.entries.begin(),
                         node.entries.begin() + kReinsertCount);
      CONN_RETURN_IF_ERROR(AdjustPath(&path, i));
      // Close reinsert: nearest-to-center first.
      for (size_t r = removed.size(); r-- > 0;) {
        CONN_RETURN_IF_ERROR(
            InsertEntry(removed[r], node_level, reinsert_mask));
      }
      return Status::OK();
    }

    // --- split ---
    Node right;
    SplitNode(&path[i].node, &right);
    const storage::PageId right_id = pager_->Allocate();
    CONN_RETURN_IF_ERROR(WriteNode(right_id, right));
    CONN_RETURN_IF_ERROR(WriteNode(path[i].page_id, path[i].node));

    NodeEntry right_entry;
    right_entry.rect = right.ComputeBounds();
    right_entry.payload = right_id;

    if (is_root) {
      // Grow a new root above the split pair.
      Node new_root;
      new_root.level = static_cast<uint16_t>(path[i].node.level + 1);
      NodeEntry left_entry;
      left_entry.rect = path[i].node.ComputeBounds();
      left_entry.payload = path[i].page_id;
      new_root.entries = {left_entry, right_entry};
      const storage::PageId new_root_id = pager_->Allocate();
      CONN_RETURN_IF_ERROR(WriteNode(new_root_id, new_root));
      root_ = new_root_id;
      ++height_;
      return Status::OK();
    }

    PathItem& parent = path[i - 1];
    parent.node.entries[path[i].slot_in_parent].rect =
        path[i].node.ComputeBounds();
    parent.node.entries.push_back(right_entry);
    --i;
  }
  return AdjustPath(&path, i);
}

Status RStarTree::Insert(const DataObject& obj) {
  if (!obj.rect.IsValid()) {
    return Status::InvalidArgument("Insert: invalid rectangle");
  }
  NodeEntry entry;
  entry.rect = obj.rect;
  entry.payload = NodeEntry::EncodeLeaf(obj.id, obj.kind);
  uint32_t reinsert_mask = 0;
  CONN_RETURN_IF_ERROR(InsertEntry(entry, /*level=*/0, &reinsert_mask));
  ++size_;
  return Status::OK();
}

namespace {

/// Depth-first search for the leaf containing an exact (rect, payload) match.
Status FindLeafRec(const RStarTree& tree, storage::PageId page_id,
                   const NodeEntry& target, std::vector<storage::PageId>* path,
                   bool* found) {
  StatusOr<ConstNodeRef> ref = tree.FetchNode(page_id);
  if (!ref.ok()) return ref.status();
  const Node& node = *ref.value();
  path->push_back(page_id);
  if (node.IsLeaf()) {
    for (const NodeEntry& e : node.entries) {
      if (e.payload == target.payload && e.rect == target.rect) {
        *found = true;
        return Status::OK();
      }
    }
  } else {
    for (const NodeEntry& e : node.entries) {
      if (!e.rect.Contains(target.rect)) continue;
      CONN_RETURN_IF_ERROR(
          FindLeafRec(tree, e.DecodeChild(), target, path, found));
      if (*found) return Status::OK();
    }
  }
  path->pop_back();
  return Status::OK();
}

/// Collects every leaf-level entry below \p page_id.
Status CollectLeafEntries(const RStarTree& tree, storage::PageId page_id,
                          std::vector<NodeEntry>* out) {
  StatusOr<ConstNodeRef> ref = tree.FetchNode(page_id);
  if (!ref.ok()) return ref.status();
  const Node& node = *ref.value();
  if (node.IsLeaf()) {
    out->insert(out->end(), node.entries.begin(), node.entries.end());
    return Status::OK();
  }
  for (const NodeEntry& e : node.entries) {
    CONN_RETURN_IF_ERROR(CollectLeafEntries(tree, e.DecodeChild(), out));
  }
  return Status::OK();
}

}  // namespace

Status RStarTree::Delete(const DataObject& obj) {
  NodeEntry target;
  target.rect = obj.rect;
  target.payload = NodeEntry::EncodeLeaf(obj.id, obj.kind);

  std::vector<storage::PageId> page_path;
  bool found = false;
  CONN_RETURN_IF_ERROR(FindLeafRec(*this, root_, target, &page_path, &found));
  if (!found) return Status::NotFound("Delete: object not indexed");

  // Re-read the path as nodes with parent slots.
  std::vector<PathItem> path;
  for (size_t i = 0; i < page_path.size(); ++i) {
    Node node;
    CONN_RETURN_IF_ERROR(ReadNode(page_path[i], &node));
    int slot = -1;
    if (i > 0) {
      const Node& parent = path[i - 1].node;
      for (size_t s = 0; s < parent.entries.size(); ++s) {
        if (parent.entries[s].DecodeChild() == page_path[i]) {
          slot = static_cast<int>(s);
          break;
        }
      }
      CONN_CHECK(slot >= 0);
    }
    path.push_back({page_path[i], std::move(node), slot});
  }

  // Remove the entry from the leaf.
  {
    Node& leaf = path.back().node;
    auto it = std::find_if(leaf.entries.begin(), leaf.entries.end(),
                           [&](const NodeEntry& e) {
                             return e.payload == target.payload &&
                                    e.rect == target.rect;
                           });
    CONN_CHECK(it != leaf.entries.end());
    leaf.entries.erase(it);
  }

  // Condense: dissolve underflowing non-root nodes bottom-up.
  std::vector<NodeEntry> orphan_leaf_entries;
  size_t i = path.size() - 1;
  while (i > 0 && path[i].node.Count() < kNodeMinFill) {
    // Collect the node's remaining content for reinsertion.
    if (path[i].node.IsLeaf()) {
      orphan_leaf_entries.insert(orphan_leaf_entries.end(),
                                 path[i].node.entries.begin(),
                                 path[i].node.entries.end());
    } else {
      for (const NodeEntry& e : path[i].node.entries) {
        CONN_RETURN_IF_ERROR(
            CollectLeafEntries(*this, e.DecodeChild(), &orphan_leaf_entries));
      }
    }
    // Unlink from the parent (the page itself is leaked by design).
    Node& parent = path[i - 1].node;
    parent.entries.erase(parent.entries.begin() + path[i].slot_in_parent);
    --i;
  }
  CONN_RETURN_IF_ERROR(AdjustPath(&path, i));

  // Shrink the root while it is an internal node with a single child.
  while (height_ > 1) {
    Node root;
    CONN_RETURN_IF_ERROR(ReadNode(root_, &root));
    if (root.IsLeaf() || root.entries.size() != 1) break;
    root_ = root.entries[0].DecodeChild();
    --height_;
  }

  --size_;
  for (const NodeEntry& e : orphan_leaf_entries) {
    uint32_t reinsert_mask = 0;
    CONN_RETURN_IF_ERROR(InsertEntry(e, /*level=*/0, &reinsert_mask));
  }
  return Status::OK();
}

Status RStarTree::RangeQuery(const geom::Rect& range,
                             std::vector<DataObject>* out) const {
  out->clear();
  const bool hints = PrefetchEnabled();
  std::vector<storage::PageId> stack = {root_};
  while (!stack.empty()) {
    const storage::PageId id = stack.back();
    stack.pop_back();
    StatusOr<ConstNodeRef> ref = FetchNode(id);
    if (!ref.ok()) return ref.status();
    const Node& node = *ref.value();
    const size_t first_child = stack.size();
    for (const NodeEntry& e : node.entries) {
      if (!e.rect.Intersects(range)) continue;
      if (node.IsLeaf()) {
        out->push_back(e.ToObject());
      } else {
        stack.push_back(e.DecodeChild());
      }
    }
    // Async pipeline: hint the qualifying children as one batch so their
    // reads overlap this level's compute (STR lays siblings contiguously,
    // so the I/O worker resolves them as one ascending sweep).
    if (hints && stack.size() > first_child) {
      PrefetchPages(std::span<const storage::PageId>(stack).subspan(
          first_child));
    }
  }
  return Status::OK();
}

Status RStarTree::SegmentIntersectionQuery(const geom::Segment& s,
                                           std::vector<DataObject>* out) const {
  out->clear();
  const bool hints = PrefetchEnabled();
  std::vector<storage::PageId> stack = {root_};
  while (!stack.empty()) {
    const storage::PageId id = stack.back();
    stack.pop_back();
    StatusOr<ConstNodeRef> ref = FetchNode(id);
    if (!ref.ok()) return ref.status();
    const Node& node = *ref.value();
    const size_t first_child = stack.size();
    for (const NodeEntry& e : node.entries) {
      if (!geom::SegmentIntersectsRect(s, e.rect)) continue;
      if (node.IsLeaf()) {
        out->push_back(e.ToObject());
      } else {
        stack.push_back(e.DecodeChild());
      }
    }
    // See RangeQuery: batch-hint the qualifying children (async only).
    if (hints && stack.size() > first_child) {
      PrefetchPages(std::span<const storage::PageId>(stack).subspan(
          first_child));
    }
  }
  return Status::OK();
}

Status RStarTree::ValidateRec(storage::PageId id, uint16_t expected_level,
                              const geom::Rect* parent_rect, bool is_root,
                              size_t* object_count) const {
  StatusOr<ConstNodeRef> ref = FetchNode(id);
  if (!ref.ok()) return ref.status();
  const Node& node = *ref.value();
  if (node.level != expected_level) {
    return Status::Corruption("level mismatch");
  }
  if (!is_root && node.Count() < kNodeMinFill) {
    return Status::Corruption("underfull non-root node");
  }
  if (node.Count() > kNodeCapacity) {
    return Status::Corruption("overfull node");
  }
  if (parent_rect != nullptr) {
    const geom::Rect bounds = node.ComputeBounds();
    if (!parent_rect->Contains(bounds)) {
      return Status::Corruption("parent MBR does not contain child bounds");
    }
  }
  if (node.IsLeaf()) {
    *object_count += node.Count();
    return Status::OK();
  }
  for (const NodeEntry& e : node.entries) {
    CONN_RETURN_IF_ERROR(ValidateRec(e.DecodeChild(), expected_level - 1,
                                     &e.rect, /*is_root=*/false,
                                     object_count));
  }
  return Status::OK();
}

Status RStarTree::Validate() const {
  size_t object_count = 0;
  CONN_RETURN_IF_ERROR(ValidateRec(root_,
                                   static_cast<uint16_t>(height_ - 1),
                                   nullptr, /*is_root=*/true, &object_count));
  if (object_count != size_) {
    return Status::Corruption("object count mismatch: tree has " +
                              std::to_string(object_count) + ", expected " +
                              std::to_string(size_));
  }
  return Status::OK();
}

}  // namespace rtree
}  // namespace conn
