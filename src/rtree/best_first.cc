#include "rtree/best_first.h"

#include <limits>

#include "geom/distance.h"

namespace conn {
namespace rtree {

BestFirstIterator::BestFirstIterator(const RStarTree& tree,
                                     const geom::Segment& q)
    : tree_(tree), query_(q) {
  if (tree.size() == 0) return;  // empty tree: stream is empty
  HeapItem root;
  root.dist = 0.0;
  root.is_node = true;
  root.payload = tree.root();
  root.rect = geom::Rect::Empty();
  heap_.push(root);
}

void BestFirstIterator::EnsureTopIsObject() {
  while (!heap_.empty() && heap_.top().is_node) {
    const HeapItem top = heap_.top();
    heap_.pop();
    // Page ids in the heap come from the tree itself; failure here means
    // structural corruption, not a caller error.
    StatusOr<ConstNodeRef> ref =
        tree_.FetchNode(static_cast<storage::PageId>(top.payload));
    CONN_CHECK_MSG(ref.ok(), "best-first read failed");
    const Node& node = *ref.value();
    for (const NodeEntry& e : node.entries) {
      HeapItem item;
      item.dist = geom::MinDistRectSegment(e.rect, query_);
      item.is_node = !node.IsLeaf();
      item.payload = node.IsLeaf() ? e.payload
                                   : static_cast<uint64_t>(e.DecodeChild());
      item.rect = e.rect;
      heap_.push(item);
    }
  }
}

double BestFirstIterator::PeekDist() {
  EnsureTopIsObject();
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.top().dist;
}

bool BestFirstIterator::Next(DataObject* out, double* dist) {
  EnsureTopIsObject();
  if (heap_.empty()) return false;
  const HeapItem top = heap_.top();
  heap_.pop();
  NodeEntry e;
  e.rect = top.rect;
  e.payload = top.payload;
  *out = e.ToObject();
  *dist = top.dist;
  return true;
}

}  // namespace rtree
}  // namespace conn
