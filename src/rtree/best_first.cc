#include "rtree/best_first.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "geom/distance.h"

namespace conn {
namespace rtree {
namespace {

// Heap-prefix window scanned for pending node pages before a demand node
// fetch.  The first levels of the binary min-heap hold the smallest
// (nearest) items, so a short prefix covers the likely next expansions
// without ordering the whole heap.
constexpr size_t kPendingHintScan = 12;

// At most this many pending-node hints per expansion: enough to keep the
// I/O workers ahead of the descent, small enough that a query that
// terminates early (Lemma 2 / Lemma 3 bounds) wastes little staging.
constexpr size_t kPendingNodeHintCap = 4;

}  // namespace

BestFirstIterator::BestFirstIterator(const RStarTree& tree,
                                     const geom::Segment& q)
    : tree_(tree), query_(q), hints_(tree.PrefetchEnabled()) {
  if (tree.size() == 0) return;  // empty tree: stream is empty
  HeapItem root;
  root.dist = 0.0;
  root.is_node = true;
  root.payload = tree.root();
  root.rect = geom::Rect::Empty();
  PushItem(root);
}

void BestFirstIterator::PushItem(const HeapItem& item) {
  heap_.push_back(item);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

BestFirstIterator::HeapItem BestFirstIterator::PopTop() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  HeapItem top = heap_.back();
  heap_.pop_back();
  return top;
}

void BestFirstIterator::EmitPendingNodeHints() {
  hint_scratch_.clear();
  const size_t scan = std::min(heap_.size(), kPendingHintScan);
  for (size_t i = 0;
       i < scan && hint_scratch_.size() < kPendingNodeHintCap; ++i) {
    if (!heap_[i].is_node) continue;
    hint_scratch_.push_back(static_cast<storage::PageId>(heap_[i].payload));
  }
  if (!hint_scratch_.empty()) tree_.PrefetchPages(hint_scratch_);
}

void BestFirstIterator::EnsureTopIsObject() {
  while (!heap_.empty() && heap_.front().is_node) {
    const HeapItem top = PopTop();
    // Issue staging for the nodes we will likely expand next *before*
    // faulting on this one, so their reads overlap this expansion.
    if (hints_) EmitPendingNodeHints();
    // Page ids in the heap come from the tree itself; failure here means
    // structural corruption, not a caller error.
    StatusOr<ConstNodeRef> ref =
        tree_.FetchNode(static_cast<storage::PageId>(top.payload));
    CONN_CHECK_MSG(ref.ok(), "best-first read failed");
    const Node& node = *ref.value();
    // Children of a level-1 node are leaf pages: collect (dist, id) so the
    // nearest STR siblings can be staged as one batch below.
    std::vector<std::pair<double, storage::PageId>> leaf_children;
    const bool collect_leaves = hints_ && node.level == 1;
    for (const NodeEntry& e : node.entries) {
      HeapItem item;
      item.dist = geom::MinDistRectSegment(e.rect, query_);
      item.is_node = !node.IsLeaf();
      item.payload = node.IsLeaf() ? e.payload
                                   : static_cast<uint64_t>(e.DecodeChild());
      item.rect = e.rect;
      PushItem(item);
      if (collect_leaves) {
        leaf_children.push_back({item.dist, e.DecodeChild()});
      }
    }
    if (collect_leaves && !leaf_children.empty()) {
      // Sibling leaf pages staged per expanded level-1 node, nearest (by
      // mindist to the query) first, clamped by the pager's autotuned
      // window (pool_tuning.h): workloads whose staged siblings keep
      // getting evicted untouched earn a narrower window.
      const size_t take = std::min(leaf_children.size(),
                                   tree_.pager().effective_hint_depth());
      std::partial_sort(leaf_children.begin(), leaf_children.begin() + take,
                        leaf_children.end());
      hint_scratch_.clear();
      for (size_t i = 0; i < take; ++i) {
        hint_scratch_.push_back(leaf_children[i].second);
      }
      tree_.PrefetchPages(hint_scratch_);
    }
  }
}

double BestFirstIterator::PeekDist() {
  EnsureTopIsObject();
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.front().dist;
}

bool BestFirstIterator::Next(DataObject* out, double* dist) {
  EnsureTopIsObject();
  if (heap_.empty()) return false;
  const HeapItem top = PopTop();
  NodeEntry e;
  e.rect = top.rect;
  e.payload = top.payload;
  *out = e.ToObject();
  *dist = top.dist;
  return true;
}

}  // namespace rtree
}  // namespace conn
