#include "rtree/str_bulk_load.h"

#include <algorithm>
#include <cmath>

namespace conn {
namespace rtree {

/// Friend of RStarTree; assembles pages bottom-up.
class StrBulkLoader {
 public:
  static StatusOr<RStarTree> Build(std::vector<DataObject> objects,
                                   const BulkLoadOptions& options) {
    if (options.fill_factor <= 0.0 || options.fill_factor > 1.0) {
      return Status::InvalidArgument("fill_factor must be in (0, 1]");
    }
    RStarTree tree;  // starts with an (ultimately unused) empty root page
    if (objects.empty()) return tree;

    const size_t target = std::clamp<size_t>(
        static_cast<size_t>(options.fill_factor * kNodeCapacity),
        kNodeMinFill, kNodeCapacity);

    std::vector<NodeEntry> level_entries;
    level_entries.reserve(objects.size());
    for (const DataObject& obj : objects) {
      NodeEntry e;
      e.rect = obj.rect;
      e.payload = NodeEntry::EncodeLeaf(obj.id, obj.kind);
      level_entries.push_back(e);
    }

    uint16_t level = 0;
    while (true) {
      if (level_entries.size() <= kNodeCapacity) {
        // Single node: it becomes the root (exempt from the fill minimum).
        Node root;
        root.level = level;
        root.entries = std::move(level_entries);
        const storage::PageId root_id = tree.pager_->Allocate();
        CONN_RETURN_IF_ERROR(tree.WriteNode(root_id, root));
        tree.root_ = root_id;
        tree.height_ = static_cast<size_t>(level) + 1;
        tree.size_ = objects.size();
        return tree;
      }
      std::vector<NodeEntry> upper;
      CONN_RETURN_IF_ERROR(
          PackLevel(&tree, level, target, &level_entries, &upper));
      level_entries = std::move(upper);
      ++level;
    }
  }

 private:
  /// Packs one level's entries into nodes using STR tiling; emits the
  /// parent-level entries.  Every produced node's size lies in
  /// [kNodeMinFill, kNodeCapacity].
  static Status PackLevel(RStarTree* tree, uint16_t level, size_t target,
                          std::vector<NodeEntry>* entries,
                          std::vector<NodeEntry>* upper) {
    const size_t n = entries->size();
    // Node count g: near n/target, constrained so even distribution keeps
    // every node within [min fill, capacity].
    const size_t g_lo = (n + kNodeCapacity - 1) / kNodeCapacity;
    const size_t g_hi = std::max<size_t>(1, n / kNodeMinFill);
    size_t g = std::clamp((n + target - 1) / target, g_lo, g_hi);
    CONN_CHECK_MSG(g >= 1 && g_lo <= g_hi, "infeasible STR packing");

    // Even group sizes: `rem` groups of size base+1, the rest of size base.
    const size_t base = n / g;
    const size_t rem = n % g;
    auto group_size = [&](size_t i) { return base + (i < rem ? 1 : 0); };

    // Vertical slices of consecutive groups.
    const size_t slices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(g))));
    const size_t groups_per_slice = (g + slices - 1) / slices;

    std::sort(entries->begin(), entries->end(),
              [](const NodeEntry& a, const NodeEntry& b) {
                return a.rect.Center().x < b.rect.Center().x;
              });

    size_t group = 0;
    size_t offset = 0;
    while (group < g) {
      const size_t slice_groups = std::min(groups_per_slice, g - group);
      size_t slice_len = 0;
      for (size_t k = 0; k < slice_groups; ++k) {
        slice_len += group_size(group + k);
      }
      std::sort(entries->begin() + offset,
                entries->begin() + offset + slice_len,
                [](const NodeEntry& a, const NodeEntry& b) {
                  return a.rect.Center().y < b.rect.Center().y;
                });
      size_t local = offset;
      for (size_t k = 0; k < slice_groups; ++k) {
        const size_t sz = group_size(group + k);
        Node node;
        node.level = level;
        node.entries.assign(entries->begin() + local,
                            entries->begin() + local + sz);
        const storage::PageId id = tree->pager_->Allocate();
        CONN_RETURN_IF_ERROR(tree->WriteNode(id, node));
        NodeEntry parent;
        parent.rect = node.ComputeBounds();
        parent.payload = id;
        upper->push_back(parent);
        local += sz;
      }
      offset += slice_len;
      group += slice_groups;
    }
    CONN_CHECK(offset == n);
    return Status::OK();
  }
};

StatusOr<RStarTree> StrBulkLoad(std::vector<DataObject> objects,
                                const BulkLoadOptions& options) {
  return StrBulkLoader::Build(std::move(objects), options);
}

}  // namespace rtree
}  // namespace conn
