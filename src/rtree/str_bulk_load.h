// Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al., ICDE 1997).
//
// Builds a packed R-tree bottom-up in O(n log n) — orders of magnitude
// faster than repeated R* insertion for the paper-scale datasets (131,461
// obstacles).  The fill factor defaults to 70% so page counts and fanout
// resemble an insertion-built R*-tree, keeping the I/O experiments
// comparable; tests also exercise 100% packing.

#ifndef CONN_RTREE_STR_BULK_LOAD_H_
#define CONN_RTREE_STR_BULK_LOAD_H_

#include <vector>

#include "common/status.h"
#include "rtree/rstar_tree.h"

namespace conn {
namespace rtree {

/// Options for STR bulk loading.
struct BulkLoadOptions {
  /// Target node occupancy in (0, 1]; entries per node =
  /// max(kNodeMinFill, fill_factor * kNodeCapacity).
  double fill_factor = 0.7;
};

/// Builds an R-tree over \p objects by STR packing.  The returned tree
/// supports all RStarTree operations (later inserts/deletes included).
StatusOr<RStarTree> StrBulkLoad(std::vector<DataObject> objects,
                                const BulkLoadOptions& options = {});

}  // namespace rtree
}  // namespace conn

#endif  // CONN_RTREE_STR_BULK_LOAD_H_
