#include "rtree/pair_join.h"

#include <limits>
#include <vector>

#include "geom/distance.h"

namespace conn {
namespace rtree {
namespace {

// Async pipeline only: stage the leaf children of a just-expanded level-1
// node so the pairs pushed onto the heap find their pages resident when
// popped.  Entry order is STR order — siblings are contiguous, so the I/O
// worker resolves the batch as one ascending sweep.  The batch is clamped
// by the pager's autotuned staging window (matches the best-first
// descent's clamp; see pool_tuning.h).
void HintLeafChildren(const RStarTree& tree, const Node& node) {
  if (node.level != 1 || !tree.PrefetchEnabled()) return;
  const size_t cap = tree.pager().effective_hint_depth();
  std::vector<storage::PageId> ids;
  ids.reserve(cap);
  for (const NodeEntry& e : node.entries) {
    ids.push_back(e.DecodeChild());
    if (ids.size() >= cap) break;
  }
  tree.PrefetchPages(ids);
}

}  // namespace

PairDistanceJoin::PairDistanceJoin(const RStarTree& tree_a,
                                   const RStarTree& tree_b)
    : tree_a_(tree_a), tree_b_(tree_b) {
  if (tree_a.size() == 0 || tree_b.size() == 0) return;
  Item root;
  root.dist = 0.0;
  root.a_is_node = true;
  root.b_is_node = true;
  root.a_payload = tree_a.root();
  root.b_payload = tree_b.root();
  root.a_rect = geom::Rect::Empty();
  root.b_rect = geom::Rect::Empty();
  heap_.push(root);
}

void PairDistanceJoin::PushChildren(const Item& top) {
  // Expand the side that is a node; prefer expanding both simultaneously
  // when both are nodes (classic simultaneous traversal keeps the heap
  // shallower than alternating single-side expansion).
  if (top.a_is_node && top.b_is_node) {
    StatusOr<ConstNodeRef> ra =
        tree_a_.FetchNode(static_cast<storage::PageId>(top.a_payload));
    StatusOr<ConstNodeRef> rb =
        tree_b_.FetchNode(static_cast<storage::PageId>(top.b_payload));
    CONN_CHECK(ra.ok() && rb.ok());
    const Node& na = *ra.value();
    const Node& nb = *rb.value();
    HintLeafChildren(tree_a_, na);
    HintLeafChildren(tree_b_, nb);
    for (const NodeEntry& ea : na.entries) {
      for (const NodeEntry& eb : nb.entries) {
        Item item;
        item.dist = geom::MinDistRectRect(ea.rect, eb.rect);
        item.a_is_node = !na.IsLeaf();
        item.b_is_node = !nb.IsLeaf();
        item.a_payload = na.IsLeaf() ? ea.payload
                                     : static_cast<uint64_t>(ea.DecodeChild());
        item.b_payload = nb.IsLeaf() ? eb.payload
                                     : static_cast<uint64_t>(eb.DecodeChild());
        item.a_rect = ea.rect;
        item.b_rect = eb.rect;
        heap_.push(item);
      }
    }
    return;
  }
  // Exactly one side is a node: pair each of its children with the fixed
  // object on the other side.
  const bool expand_a = top.a_is_node;
  const RStarTree& tree = expand_a ? tree_a_ : tree_b_;
  StatusOr<ConstNodeRef> ref = tree.FetchNode(static_cast<storage::PageId>(
      expand_a ? top.a_payload : top.b_payload));
  CONN_CHECK(ref.ok());
  const Node& node = *ref.value();
  HintLeafChildren(tree, node);
  for (const NodeEntry& e : node.entries) {
    Item item = top;
    const geom::Rect other = expand_a ? top.b_rect : top.a_rect;
    item.dist = geom::MinDistRectRect(e.rect, other);
    if (expand_a) {
      item.a_is_node = !node.IsLeaf();
      item.a_payload = node.IsLeaf()
                           ? e.payload
                           : static_cast<uint64_t>(e.DecodeChild());
      item.a_rect = e.rect;
    } else {
      item.b_is_node = !node.IsLeaf();
      item.b_payload = node.IsLeaf()
                           ? e.payload
                           : static_cast<uint64_t>(e.DecodeChild());
      item.b_rect = e.rect;
    }
    heap_.push(item);
  }
}

void PairDistanceJoin::EnsureTopIsPair() {
  while (!heap_.empty() &&
         (heap_.top().a_is_node || heap_.top().b_is_node)) {
    const Item top = heap_.top();
    heap_.pop();
    PushChildren(top);
  }
}

double PairDistanceJoin::PeekDist() {
  EnsureTopIsPair();
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.top().dist;
}

bool PairDistanceJoin::Next(DataObject* a, DataObject* b, double* dist) {
  EnsureTopIsPair();
  if (heap_.empty()) return false;
  const Item top = heap_.top();
  heap_.pop();
  NodeEntry ea, eb;
  ea.rect = top.a_rect;
  ea.payload = top.a_payload;
  eb.rect = top.b_rect;
  eb.payload = top.b_payload;
  *a = ea.ToObject();
  *b = eb.ToObject();
  *dist = top.dist;
  return true;
}

}  // namespace rtree
}  // namespace conn
