// Local visibility graph (Section 4.1 of the paper).
//
// Unlike the classic global visibility graph (O(n^2) space over all 4|O|
// obstacle corners, Section 2.4), this graph holds only the obstacles IOR
// has retrieved so far plus a handful of fixed target vertices (the query
// segment's endpoints — one pair per reachable piece of q).  It is *shared
// and reused* across all data points of one CONN query: obstacles only
// accumulate, and "the IOR for all the points in P will access the obstacle
// set O at most once".
//
// Since the batch executor (src/exec) the graph is also shared *across
// queries of one shard*: obstacles persist for the lifetime of the graph,
// while each query's fixed target vertices are scoped to a QuerySession and
// removed when the session ends.  AddObstacle deduplicates by obstacle id,
// so overlapping incremental retrievals of spatially close queries pay for
// each obstacle's insertion (corner adjacency + edge pruning) exactly once.
//
// Adjacency maintenance is incremental ("the insertion/deletion/update can
// be efficiently supported", Section 1): a vertex's list is computed
// eagerly on insertion and then kept valid under obstacle insertions by
// (a) pruning exactly the cached edges the new rectangle blocks and
// (b) eagerly computing the four new corners' edges and patching them into
// the cached lists of their visible counterparts.  Fixed-vertex insertion
// and removal patch the same way, relying on the symmetry invariant
// (u in adj[v] <=> v in adj[u] for computed lists).  Wholesale invalidation
// (recompute-everything-per-insertion) is the ablation baseline measured
// in bench/micro_visgraph.
//
// SetDeferredAdjacency(true) switches obstacle insertion to *patch-only*
// maintenance for long-lived carried graphs (the differential tick-repair
// path): AddObstacle records the rectangle and its four lazy corners in
// O(1) and Neighbors(v) brings a vertex's cached list current on touch,
// patching only over the obstacles inserted since the list was last valid
// (a per-vertex watermark).  A (vertex x obstacle) visibility pair is paid
// at most once — and only if the vertex is ever touched again, which on a
// moving-frontier workload most are not.  Results are identical to eager
// maintenance: Dijkstra settlement order never depends on adjacency-list
// order (the scan heap tie-breaks on (dist, vertex)), and the patch
// applies the exact SegmentCrossesInterior predicate eager pruning uses,
// so the edge *set* a scan observes at any touch is the same.

#ifndef CONN_VIS_VIS_GRAPH_H_
#define CONN_VIS_VIS_GRAPH_H_

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/stats.h"
#include "geom/segment.h"
#include "vis/grid_index.h"
#include "vis/obstacle_set.h"

namespace conn {
namespace vis {

/// Vertex handle within a VisGraph.
using VertexId = uint32_t;

/// One weighted visibility edge.
struct VisEdge {
  VertexId to;
  double length;
};

/// The incrementally grown local visibility graph.
class VisGraph {
 public:
  /// \p domain must cover the workspace; \p stats (optional) receives
  /// visibility-test counts.
  explicit VisGraph(const geom::Rect& domain, QueryStats* stats = nullptr);

  /// Adds a fixed vertex (query-segment endpoints).  Works on a graph that
  /// already holds obstacles: the vertex's adjacency is computed eagerly
  /// and reciprocal edges are patched into the cached lists of its visible
  /// counterparts.  Freed slots from RemoveFixedVertices are reused, so
  /// shard-shared graphs do not grow with query count.
  VertexId AddFixedVertex(geom::Vec2 p);

  /// Removes fixed vertices added earlier (must not be obstacle corners):
  /// unpatches their reciprocal edges and recycles the slots.  Prefer the
  /// QuerySession RAII wrapper.
  void RemoveFixedVertices(const std::vector<VertexId>& ids);

  /// Inserts an obstacle: registers its rectangle for blocking tests, adds
  /// its four corners as vertices, and patches cached adjacency.  Returns
  /// false (and changes nothing) when an obstacle with this id is already
  /// present — the cross-query reuse fast path of shard-shared graphs.
  bool AddObstacle(const geom::Rect& rect, rtree::ObjectId id);

  /// Number of vertex slots, live and recycled (|SVG| of Section 5.1,
  /// excluding transient points).  Dijkstra arrays are sized by this.
  size_t VertexCount() const { return vertices_.size(); }

  /// True iff slot \p v currently holds a vertex.
  bool IsAlive(VertexId v) const { return alive_[v]; }

  /// Number of obstacles inserted so far.
  size_t ObstacleCount() const { return obstacles_.size(); }

  /// AddObstacle calls skipped because the obstacle was already present —
  /// the work saved by sharing one workspace across a shard of queries.
  uint64_t DuplicateObstacleSkips() const { return duplicate_obstacle_skips_; }

  /// Monotone counter bumped by every effective AddObstacle; consumers
  /// caching data derived from the obstacle set (e.g. visible regions)
  /// revalidate against it.  Adjacency lists do NOT use it — they are
  /// patched in place on insertion.
  uint64_t epoch() const { return epoch_; }

  geom::Vec2 VertexPos(VertexId v) const { return vertices_[v]; }

  const ObstacleSet& obstacles() const { return obstacles_; }

  /// Spatial index of the live vertices (items are VertexIds; recycled
  /// slots are removed on RemoveFixedVertices).  DijkstraScan expands its
  /// seed frontier through this grid's distance rings instead of sorting
  /// the full vertex set per scan.
  const GridIndex& vertex_grid() const { return vertex_grid_; }

  /// Redirects visibility/obstacle counters (nullptr disables).  A shard-
  /// shared graph points this at the stats of the query currently running.
  void set_stats(QueryStats* stats) { stats_ = stats; }
  QueryStats* stats() const { return stats_; }

  /// Visibility test between two arbitrary points against the local
  /// obstacle set (counted into stats).
  bool Visible(geom::Vec2 a, geom::Vec2 b) const;

  /// Adjacency list of \p v: computed on first touch, thereafter kept
  /// valid across AddObstacle calls by incremental patching.
  const std::vector<VisEdge>& Neighbors(VertexId v);

  /// Eagerly materializes adjacency for all live vertices.
  void MaterializeAllAdjacency();

  /// Patch-only adjacency maintenance (see file comment).  Must be chosen
  /// before the first obstacle is inserted; fixed vertices stay eager in
  /// both modes.  Edge sets observed by scans are identical either way.
  void SetDeferredAdjacency(bool deferred);
  bool deferred_adjacency() const { return deferred_; }

 private:
  /// Per-vertex corner metadata for the O(1) own-rectangle rejection: an
  /// edge that leaves a corner pointing strictly into its rectangle's open
  /// quadrant crosses that interior, so the sight-line walk can be skipped.
  struct CornerInfo {
    bool is_corner = false;
    geom::Vec2 inward;  // axis signs pointing into the rectangle
  };

  bool DirectionEntersCorner(VertexId v, geom::Vec2 away) const {
    const CornerInfo& ci = corner_[v];
    if (!ci.is_corner) return false;
    const double tol = 1e-9 * (std::abs(away.x) + std::abs(away.y));
    return away.x * ci.inward.x > tol && away.y * ci.inward.y > tol;
  }

  void RecomputeAdjacency(VertexId v);
  void PatchAdjacency(VertexId v);
  VertexId AddVertexInternal(geom::Vec2 p);

  friend class DijkstraScan;  // uses DirectionEntersCorner when seeding

  std::vector<geom::Vec2> vertices_;
  std::vector<std::vector<VisEdge>> adj_;
  std::vector<bool> adj_computed_;
  std::vector<CornerInfo> corner_;
  std::vector<bool> alive_;
  std::vector<VertexId> free_slots_;  // recycled fixed-vertex slots
  bool deferred_ = false;
  /// Deferred mode: obstacles() size when adj_[v] was last brought
  /// current; a computed list is patched over [mark, size) on touch.
  std::vector<uint32_t> adj_obstacle_mark_;
  /// Deferred mode: the four corner vertex ids of each inserted obstacle,
  /// indexed like obstacles() — the patch's edge-append candidates.
  std::vector<std::array<VertexId, 4>> obstacle_corners_;
  uint64_t epoch_ = 1;
  GridIndex vertex_grid_;
  ObstacleSet obstacles_;
  std::unordered_set<rtree::ObjectId> obstacle_ids_;
  uint64_t duplicate_obstacle_skips_ = 0;
  QueryStats* stats_;
};

/// Scopes one query's fixed vertices on a (possibly shard-shared) graph:
/// every vertex added through the session is removed when it ends, leaving
/// only the accumulated obstacle graph behind.
class QuerySession {
 public:
  explicit QuerySession(VisGraph* vg) : vg_(vg) {}
  ~QuerySession() {
    if (!added_.empty()) vg_->RemoveFixedVertices(added_);
  }

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  VertexId AddFixedVertex(geom::Vec2 p) {
    added_.push_back(vg_->AddFixedVertex(p));
    return added_.back();
  }

  VisGraph* graph() const { return vg_; }

 private:
  VisGraph* vg_;
  std::vector<VertexId> added_;
};

}  // namespace vis
}  // namespace conn

#endif  // CONN_VIS_VIS_GRAPH_H_
