// Local visibility graph (Section 4.1 of the paper).
//
// Unlike the classic global visibility graph (O(n^2) space over all 4|O|
// obstacle corners, Section 2.4), this graph holds only the obstacles IOR
// has retrieved so far plus a handful of fixed target vertices (the query
// segment's endpoints — one pair per reachable piece of q).  It is *shared
// and reused* across all data points of one CONN query: obstacles only
// accumulate, and "the IOR for all the points in P will access the obstacle
// set O at most once".
//
// Adjacency maintenance is incremental ("the insertion/deletion/update can
// be efficiently supported", Section 1): a vertex's list is computed
// lazily on first touch and then kept valid under obstacle insertions by
// (a) pruning exactly the cached edges the new rectangle blocks and
// (b) eagerly computing the four new corners' edges and patching them into
// the cached lists of their visible counterparts.  Wholesale invalidation
// (recompute-everything-per-insertion) is the ablation baseline measured
// in bench/micro_visgraph.

#ifndef CONN_VIS_VIS_GRAPH_H_
#define CONN_VIS_VIS_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "geom/segment.h"
#include "vis/obstacle_set.h"

namespace conn {
namespace vis {

/// Vertex handle within a VisGraph.
using VertexId = uint32_t;

/// One weighted visibility edge.
struct VisEdge {
  VertexId to;
  double length;
};

/// The incrementally grown local visibility graph.
class VisGraph {
 public:
  /// \p domain must cover the workspace; \p stats (optional) receives
  /// visibility-test counts.
  explicit VisGraph(const geom::Rect& domain, QueryStats* stats = nullptr);

  /// Adds a persistent fixed vertex (query-segment endpoints).  Must be
  /// called before obstacles for deterministic vertex numbering.
  VertexId AddFixedVertex(geom::Vec2 p);

  /// Inserts an obstacle: registers its rectangle for blocking tests, adds
  /// its four corners as vertices, and invalidates cached adjacency.
  void AddObstacle(const geom::Rect& rect, rtree::ObjectId id);

  /// Number of vertices (|SVG| of Section 5.1, excluding transient points).
  size_t VertexCount() const { return vertices_.size(); }

  /// Number of obstacles inserted so far.
  size_t ObstacleCount() const { return obstacles_.size(); }

  /// Monotone counter bumped by every AddObstacle; consumers caching data
  /// derived from the obstacle set (e.g. visible regions) revalidate
  /// against it.  Adjacency lists do NOT use it — they are patched in
  /// place on insertion.
  uint64_t epoch() const { return epoch_; }

  geom::Vec2 VertexPos(VertexId v) const { return vertices_[v]; }

  const ObstacleSet& obstacles() const { return obstacles_; }

  /// Visibility test between two arbitrary points against the local
  /// obstacle set (counted into stats).
  bool Visible(geom::Vec2 a, geom::Vec2 b) const;

  /// Adjacency list of \p v: computed on first touch, thereafter kept
  /// valid across AddObstacle calls by incremental patching.
  const std::vector<VisEdge>& Neighbors(VertexId v);

  /// Eagerly materializes adjacency for all vertices.
  void MaterializeAllAdjacency();

 private:
  /// Per-vertex corner metadata for the O(1) own-rectangle rejection: an
  /// edge that leaves a corner pointing strictly into its rectangle's open
  /// quadrant crosses that interior, so the sight-line walk can be skipped.
  struct CornerInfo {
    bool is_corner = false;
    geom::Vec2 inward;  // axis signs pointing into the rectangle
  };

  bool DirectionEntersCorner(VertexId v, geom::Vec2 away) const {
    const CornerInfo& ci = corner_[v];
    if (!ci.is_corner) return false;
    const double tol = 1e-9 * (std::abs(away.x) + std::abs(away.y));
    return away.x * ci.inward.x > tol && away.y * ci.inward.y > tol;
  }

  void RecomputeAdjacency(VertexId v);
  VertexId AddVertexInternal(geom::Vec2 p);

  friend class DijkstraScan;  // uses DirectionEntersCorner when seeding

  std::vector<geom::Vec2> vertices_;
  std::vector<std::vector<VisEdge>> adj_;
  std::vector<bool> adj_computed_;
  std::vector<CornerInfo> corner_;
  uint64_t epoch_ = 1;
  ObstacleSet obstacles_;
  QueryStats* stats_;
};

}  // namespace vis
}  // namespace conn

#endif  // CONN_VIS_VIS_GRAPH_H_
