#include "vis/settlement_log.h"

#include <algorithm>

#include "common/check.h"
#include "geom/distance.h"
#include "geom/predicates.h"

namespace conn {
namespace vis {

SettlementLog::SettlementLog(size_t capacity) : capacity_(capacity) {
  CONN_CHECK_MSG(capacity >= 1, "settlement log needs at least one slot");
  ring_.reserve(capacity);
}

void SettlementLog::Publish(const geom::Segment& source, double radius,
                            int64_t owner) {
  if (radius <= 0.0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(Capsule{source, radius, owner});
    return;
  }
  ring_[next_] = Capsule{source, radius, owner};
  next_ = (next_ + 1) % capacity_;
}

bool SettlementLog::Covers(const geom::Segment& q, double bound,
                           int64_t* owner_out) const {
  for (const Capsule& c : ring_) {
    // max over q of dist(x, c.source) is attained at an endpoint.
    const double drift = std::max(geom::DistPointSegment(q.a, c.source),
                                  geom::DistPointSegment(q.b, c.source));
    if (bound + drift <= c.radius - geom::kEpsDist) {
      if (owner_out != nullptr) *owner_out = c.owner;
      return true;
    }
  }
  return false;
}

void SettlementLog::Clear() {
  ring_.clear();
  next_ = 0;
}

}  // namespace vis
}  // namespace conn
