#include "vis/obstacle_set.h"

#include "common/check.h"

namespace conn {
namespace vis {

ObstacleSet::ObstacleSet(const geom::Rect& domain, int grid_cells_per_side)
    : grid_(domain, grid_cells_per_side) {}

uint32_t ObstacleSet::Add(const geom::Rect& rect, rtree::ObjectId id) {
  CONN_CHECK_MSG(rect.IsValid(), "obstacle rect must be valid");
  const uint32_t index = static_cast<uint32_t>(rects_.size());
  rects_.push_back(rect);
  ids_.push_back(id);
  grid_.Insert(index, rect);
  return index;
}

bool ObstacleSet::Visible(geom::Vec2 a, geom::Vec2 b,
                          uint64_t* test_counter) const {
  const geom::Segment sight(a, b);
  // Streaming walk from a toward b: the first blocking obstacle ends the
  // test, so long blocked sight-lines (the common case in dense fields)
  // cost only the distance to their first blocker.
  uint64_t tests = 0;
  const bool visible = grid_.VisitAlongSegment(sight, [&](uint32_t i) {
    ++tests;
    return !geom::SegmentCrossesInterior(sight, rects_[i]);
  });
  if (test_counter != nullptr) *test_counter += tests;
  return visible;
}

bool ObstacleSet::PointInAnyInterior(geom::Vec2 p) const {
  scratch_.clear();
  grid_.CandidatesAtPoint(p, &scratch_);
  for (uint32_t i : scratch_) {
    if (geom::PointInInterior(p, rects_[i])) return true;
  }
  return false;
}

void ObstacleSet::CandidatesAlongSegment(const geom::Segment& s,
                                         std::vector<uint32_t>* out) const {
  grid_.CandidatesAlongSegment(s, out);
}

void ObstacleSet::CandidatesInRect(const geom::Rect& r,
                                   std::vector<uint32_t>* out) const {
  grid_.CandidatesInRect(r, out);
}

geom::IntervalSet ObstacleSet::BlockedIntervalsOnSegment(
    const geom::Segment& s) const {
  const double len = s.Length();
  std::vector<geom::Interval> blocked;
  scratch_.clear();
  grid_.CandidatesAlongSegment(s, &scratch_);
  for (uint32_t i : scratch_) {
    const geom::Rect& r = rects_[i];
    const geom::Rect inner{{r.lo.x + geom::kEpsInterior,
                            r.lo.y + geom::kEpsInterior},
                           {r.hi.x - geom::kEpsInterior,
                            r.hi.y - geom::kEpsInterior}};
    if (!inner.IsValid()) continue;
    double t0, t1;
    if (!geom::ClipSegmentToRect(s, inner, &t0, &t1)) continue;
    if (t1 - t0 <= 0.0) continue;
    blocked.push_back(geom::Interval(t0 * len, t1 * len));
  }
  return geom::IntervalSet(std::move(blocked));
}

}  // namespace vis
}  // namespace conn
