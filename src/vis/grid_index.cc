#include "vis/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace conn {
namespace vis {

GridIndex::GridIndex(const geom::Rect& domain, int cells_per_side)
    : domain_(domain), n_(cells_per_side) {
  CONN_CHECK_MSG(cells_per_side >= 1, "grid needs at least one cell");
  CONN_CHECK_MSG(domain.IsValid(), "grid domain must be a valid rect");
  cell_w_ = std::max(domain_.Width() / n_, 1e-12);
  cell_h_ = std::max(domain_.Height() / n_, 1e-12);
  cells_.resize(static_cast<size_t>(n_) * n_);
}

int GridIndex::ClampCellX(double x) const {
  const int c = static_cast<int>(std::floor((x - domain_.lo.x) / cell_w_));
  return std::clamp(c, 0, n_ - 1);
}

int GridIndex::ClampCellY(double y) const {
  const int c = static_cast<int>(std::floor((y - domain_.lo.y) / cell_h_));
  return std::clamp(c, 0, n_ - 1);
}

void GridIndex::Insert(uint32_t item, const geom::Rect& rect) {
  CONN_CHECK_MSG(item == item_count_, "grid items must be inserted densely");
  ++item_count_;
  stamp_.push_back(0);
  const int x0 = ClampCellX(rect.lo.x), x1 = ClampCellX(rect.hi.x);
  const int y0 = ClampCellY(rect.lo.y), y1 = ClampCellY(rect.hi.y);
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) CellAt(cx, cy).push_back(item);
  }
}

void GridIndex::InsertPoint(uint32_t item, geom::Vec2 p) {
  if (item >= stamp_.size()) stamp_.resize(item + 1, 0);
  item_count_ = std::max(item_count_, static_cast<size_t>(item) + 1);
  CellAt(ClampCellX(p.x), ClampCellY(p.y)).push_back(item);
}

void GridIndex::RemovePoint(uint32_t item, geom::Vec2 p) {
  std::vector<uint32_t>& cell = CellAt(ClampCellX(p.x), ClampCellY(p.y));
  const auto it = std::find(cell.begin(), cell.end(), item);
  CONN_CHECK_MSG(it != cell.end(), "RemovePoint: item not in its cell");
  cell.erase(it);
}

double GridIndex::RingMinDist(geom::Vec2 center, int ring) const {
  if (ring <= 0) return 0.0;
  const int cx = ClampCellX(center.x), cy = ClampCellY(center.y);
  // Cells with ring index >= `ring` lie outside the (2*ring-1)-cell block
  // centered on (cx, cy).  Per side, the separating coordinate line bounds
  // the distance of anything beyond it; sides whose block edge already
  // leaves the grid contribute no cells.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double best = kInf;
  if (cx - ring + 1 > 0) {
    best = std::min(
        best, center.x - (domain_.lo.x + (cx - ring + 1) * cell_w_));
  }
  if (cx + ring - 1 < n_ - 1) {
    best = std::min(best, (domain_.lo.x + (cx + ring) * cell_w_) - center.x);
  }
  if (cy - ring + 1 > 0) {
    best = std::min(
        best, center.y - (domain_.lo.y + (cy - ring + 1) * cell_h_));
  }
  if (cy + ring - 1 < n_ - 1) {
    best = std::min(best, (domain_.lo.y + (cy + ring) * cell_h_) - center.y);
  }
  if (best == kInf) return kInf;  // rings < ring already cover the grid
  return std::max(0.0, best);
}

void GridIndex::BeginQuery() const { ++epoch_; }

void GridIndex::EmitCell(int cx, int cy, std::vector<uint32_t>* out) const {
  for (uint32_t item : CellAt(cx, cy)) {
    if (stamp_[item] == epoch_) continue;
    stamp_[item] = epoch_;
    out->push_back(item);
  }
}

void GridIndex::CandidatesAlongSegment(const geom::Segment& s,
                                       std::vector<uint32_t>* out) const {
  BeginQuery();
  // Conservative DDA: walk the segment in steps of half the smaller cell
  // extent and emit a 1-cell neighborhood around every visited cell.  This
  // over-approximates the exact Amanatides-Woo traversal slightly but can
  // never miss a cell the segment passes through.
  const double len = s.Length();
  const double step = 0.5 * std::min(cell_w_, cell_h_);
  const int steps = std::max(1, static_cast<int>(std::ceil(len / step)));
  int last_cx = -2, last_cy = -2;
  for (int i = 0; i <= steps; ++i) {
    const geom::Vec2 p = s.At(len * i / steps);
    const int cx = ClampCellX(p.x), cy = ClampCellY(p.y);
    if (cx == last_cx && cy == last_cy) continue;
    last_cx = cx;
    last_cy = cy;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int x = cx + dx, y = cy + dy;
        if (x < 0 || x >= n_ || y < 0 || y >= n_) continue;
        EmitCell(x, y, out);
      }
    }
  }
}

void GridIndex::CandidatesInRect(const geom::Rect& r,
                                 std::vector<uint32_t>* out) const {
  BeginQuery();
  const int x0 = ClampCellX(r.lo.x), x1 = ClampCellX(r.hi.x);
  const int y0 = ClampCellY(r.lo.y), y1 = ClampCellY(r.hi.y);
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) EmitCell(cx, cy, out);
  }
}

void GridIndex::CandidatesAtPoint(geom::Vec2 p,
                                  std::vector<uint32_t>* out) const {
  BeginQuery();
  EmitCell(ClampCellX(p.x), ClampCellY(p.y), out);
}

}  // namespace vis
}  // namespace conn
