// The local obstacle store backing a visibility graph: the obstacles
// retrieved so far by IOR, indexed by a uniform grid for fast sight-line
// (blocking) tests.

#ifndef CONN_VIS_OBSTACLE_SET_H_
#define CONN_VIS_OBSTACLE_SET_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/interval_set.h"
#include "geom/predicates.h"
#include "geom/segment.h"
#include "rtree/entry.h"
#include "vis/grid_index.h"

namespace conn {
namespace vis {

/// Growable set of axis-aligned rectangular obstacles with spatial queries.
class ObstacleSet {
 public:
  /// \p domain should cover the workspace (queries clamp into it).
  explicit ObstacleSet(const geom::Rect& domain, int grid_cells_per_side = 64);

  /// Adds an obstacle.  Returns its dense local index.
  uint32_t Add(const geom::Rect& rect, rtree::ObjectId id);

  size_t size() const { return rects_.size(); }
  const geom::Rect& rect(uint32_t i) const { return rects_[i]; }
  rtree::ObjectId id(uint32_t i) const { return ids_[i]; }

  /// True iff the open segment (a, b) is not blocked by any obstacle
  /// interior (Definition 1).  \p test_counter, when non-null, is
  /// incremented once per exact segment-vs-obstacle test performed.
  bool Visible(geom::Vec2 a, geom::Vec2 b,
               uint64_t* test_counter = nullptr) const;

  /// True iff \p p lies strictly inside some obstacle.
  bool PointInAnyInterior(geom::Vec2 p) const;

  /// Candidate obstacle indices near a segment / inside a rect (grid
  /// over-approximation; callers run exact tests).
  void CandidatesAlongSegment(const geom::Segment& s,
                              std::vector<uint32_t>* out) const;
  void CandidatesInRect(const geom::Rect& r,
                        std::vector<uint32_t>* out) const;

  /// Parameter intervals of \p s (arc-length in [0, s.Length()]) lying
  /// strictly inside obstacle interiors — the unreachable part of a query
  /// segment that crosses obstacles.
  geom::IntervalSet BlockedIntervalsOnSegment(const geom::Segment& s) const;

 private:
  GridIndex grid_;
  std::vector<geom::Rect> rects_;
  std::vector<rtree::ObjectId> ids_;
  mutable std::vector<uint32_t> scratch_;
};

}  // namespace vis
}  // namespace conn

#endif  // CONN_VIS_OBSTACLE_SET_H_
