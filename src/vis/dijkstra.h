// Dijkstra shortest paths over a local visibility graph, from a transient
// source point (the data point p currently being evaluated).
//
// The source is deliberately NOT inserted as a graph vertex: CONN evaluates
// a fresh data point p for every heap pop (Algorithm 4 lines 6/9 insert and
// remove p), and keeping p out of the vertex set means the per-epoch
// adjacency cache of the persistent vertices stays valid across data points.
//
// DijkstraScan is incremental — CPLC (Algorithm 2) consumes vertices in
// ascending obstructed distance ||p, v|| and stops at CPLMAX (Lemma 7), so
// the scan settles only what the caller demands.

#ifndef CONN_VIS_DIJKSTRA_H_
#define CONN_VIS_DIJKSTRA_H_

#include <limits>
#include <queue>
#include <vector>

#include "vis/vis_graph.h"

namespace conn {
namespace vis {

/// Sentinel predecessor meaning "the transient source point".
inline constexpr int32_t kPredSource = -2;

/// Sentinel predecessor meaning "not reached".
inline constexpr int32_t kPredNone = -1;

/// Incremental single-source shortest-path scan.
///
/// Settled vertices are logged, so one scan can serve several consumers:
/// IOR settles up to its target bound via Next()/SettleTargets(), and CPLC
/// later replays the same settlement order from the beginning through
/// EnsureSettled()/log() and extends it on demand — no re-seeding.
class DijkstraScan {
 public:
  /// One settled vertex in settlement (ascending distance) order.
  struct Settled {
    VertexId v;
    double dist;
    int32_t pred;  // kPredSource or a vertex id
  };

  /// Starts a scan from \p source over \p graph.  The graph must not gain
  /// obstacles while the scan is alive.
  DijkstraScan(VisGraph* graph, geom::Vec2 source);

  /// The source location this scan was seeded from.
  geom::Vec2 source() const { return source_; }

  /// Settles and returns the next vertex in ascending distance order.
  /// \p pred receives kPredSource when the shortest path is the direct
  /// sight-line from the source.  Returns false when no vertex remains
  /// reachable.
  bool Next(VertexId* v, double* dist, int32_t* pred);

  /// Ensures at least \p i + 1 vertices are settled; false when the graph
  /// is exhausted first.
  bool EnsureSettled(size_t i);

  /// Settlement log (grows as the scan advances).
  const std::vector<Settled>& log() const { return log_; }

  /// Distance of the next vertex to be settled (+infinity if none).
  double PeekDist();

  /// Settled distance of \p v (+infinity while unsettled/unreachable).
  double DistOf(VertexId v) const {
    return settled_[v] ? dist_[v] : kInf;
  }

  bool IsSettled(VertexId v) const { return settled_[v]; }

  /// Predecessor of a settled vertex (kPredSource / vertex id).
  int32_t PredOf(VertexId v) const { return pred_[v]; }

  /// Runs the scan until every id in \p targets is settled or the graph is
  /// exhausted; returns the maximum target distance (+infinity when some
  /// target is unreachable).
  double SettleTargets(const std::vector<VertexId>& targets);

  /// Number of vertices settled so far.
  size_t SettledCount() const { return settled_count_; }

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  void Push(VertexId v, double dist, int32_t pred);

  /// Settles one more vertex into the log; false when exhausted.
  bool SettleOne();

  /// Pops stale heap entries and interleaves lazy seeding until the heap
  /// top is the true next settlement; false when the scan is exhausted.
  bool PrepareTop();

  /// Seeds direct source->vertex edges for every vertex whose Euclidean
  /// distance (a lower bound of its seed edge) is <= \p bound.  Lazy: a
  /// scan terminated early by its caller (CPLMAX, IOR target bound) never
  /// pays sight-line walks for vertices beyond its reach.
  void SeedUpTo(double bound);

  VisGraph* graph_;
  geom::Vec2 source_;
  std::vector<double> dist_;
  std::vector<int32_t> pred_;
  std::vector<bool> settled_;
  size_t settled_count_ = 0;
  std::vector<Settled> log_;
  size_t next_cursor_ = 0;  // read position of Next() within the log

  // Vertices in ascending Euclidean distance from the source; seed_next_
  // marks how far seeding has progressed.
  std::vector<std::pair<double, VertexId>> seed_order_;
  size_t seed_next_ = 0;

  struct Item {
    double dist;
    VertexId v;
    bool operator>(const Item& o) const {
      if (dist != o.dist) return dist > o.dist;
      return v > o.v;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
};

}  // namespace vis
}  // namespace conn

#endif  // CONN_VIS_DIJKSTRA_H_
