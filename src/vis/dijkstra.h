// Dijkstra shortest paths over a local visibility graph, from a transient
// source point (the data point p currently being evaluated).
//
// The source is deliberately NOT inserted as a graph vertex: CONN evaluates
// a fresh data point p for every heap pop (Algorithm 4 lines 6/9 insert and
// remove p), and keeping p out of the vertex set means the per-epoch
// adjacency cache of the persistent vertices stays valid across data points.
//
// DijkstraScan is incremental — CPLC (Algorithm 2) consumes vertices in
// ascending obstructed distance ||p, v|| and stops at CPLMAX (Lemma 7), so
// the scan settles only what the caller demands.
//
// Scans run on a ScanArena: a pooled, epoch-stamped set of per-vertex
// arrays plus reusable heap/log storage.  Starting a scan is O(1) in the
// graph size (bump the epoch) instead of the former O(V) array assign +
// O(V log V) full sort of the seed order; seeding is driven by the
// visibility graph's vertex grid, expanding square distance rings so the
// work is output-sensitive in the vertices actually reached.  One arena
// serves every scan of a query — or of a whole shard of queries when the
// batch executor shares a core::QueryWorkspace.

#ifndef CONN_VIS_DIJKSTRA_H_
#define CONN_VIS_DIJKSTRA_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "vis/vis_graph.h"

namespace conn {
namespace vis {

/// Sentinel predecessor meaning "the transient source point".
inline constexpr int32_t kPredSource = -2;

/// Sentinel predecessor meaning "not reached".
inline constexpr int32_t kPredNone = -1;

/// One settled vertex in settlement (ascending distance) order.
struct ScanSettled {
  VertexId v;
  double dist;
  int32_t pred;  // kPredSource or a vertex id
};

/// Reusable scan state, shared by consecutive DijkstraScans (one at a
/// time).  All per-vertex arrays are epoch-stamped: a slot is meaningful
/// for the current scan only when its stamp matches the scan's epoch, so a
/// new scan "clears" them by bumping the epoch — O(touched) total work per
/// scan instead of O(V) re-initialization.  The heap / log / seed buffers
/// keep their capacity across scans.
class ScanArena {
 public:
  ScanArena() = default;
  ScanArena(const ScanArena&) = delete;
  ScanArena& operator=(const ScanArena&) = delete;

 private:
  friend class DijkstraScan;

  struct HeapItem {
    double dist;
    VertexId v;
    // Min-heap order with deterministic (dist, v) tie-breaking, so the
    // settlement order never depends on insertion order.
    bool operator>(const HeapItem& o) const {
      if (dist != o.dist) return dist > o.dist;
      return v > o.v;
    }
  };

  struct SeedCand {
    double euclid;
    VertexId v;
    bool operator>(const SeedCand& o) const {
      if (euclid != o.euclid) return euclid > o.euclid;
      return v > o.v;
    }
  };

  /// One processed seed candidate: whether its direct source sight-line
  /// passed keeps warm revalidation from re-running the visibility test.
  struct SeedLogEntry {
    double euclid;
    VertexId v;
    bool pushed;
  };

  void EnsureCapacity(size_t n) {
    if (dist_.size() < n) {
      dist_.resize(n);
      pred_.resize(n);
      dist_stamp_.resize(n, 0);
      settled_stamp_.resize(n, 0);
      seeded_stamp_.resize(n, 0);
      target_stamp_.resize(n, 0);
    }
  }

  uint64_t epoch_ = 0;         ///< current scan's stamp value
  uint64_t target_epoch_ = 0;  ///< per-SettleTargets-call stamp value
  bool in_use_ = false;        ///< one live scan per arena

  // Epoch-stamped per-vertex state (valid iff stamp == epoch_).
  std::vector<double> dist_;
  std::vector<int32_t> pred_;
  std::vector<uint64_t> dist_stamp_;
  std::vector<uint64_t> settled_stamp_;
  std::vector<uint64_t> seeded_stamp_;  ///< entered the pending seed pool
  std::vector<uint64_t> target_stamp_;  ///< SettleTargets bitmap

  // Reusable buffers (cleared per scan, capacity retained).
  std::vector<HeapItem> heap_;      ///< binary min-heap (std::*_heap)
  std::vector<SeedCand> pending_;   ///< binary min-heap of unseeded cands
  std::vector<SeedLogEntry> seed_log_;  ///< processed seeds, ascending
  std::vector<ScanSettled> log_;        ///< settlement log, ascending
};

/// Incremental single-source shortest-path scan.
///
/// Settled vertices are logged, so one scan can serve several consumers:
/// IOR settles up to its target bound via Next()/SettleTargets(), and CPLC
/// later replays the same settlement order from the beginning through
/// EnsureSettled()/log() and extends it on demand — no re-seeding.
class DijkstraScan {
 public:
  using Settled = ScanSettled;

  /// Starts a scan from \p source over \p graph on a private arena
  /// (convenience for tests and one-shot callers).
  DijkstraScan(VisGraph* graph, geom::Vec2 source);

  /// Starts a scan from \p source over \p graph on \p arena.  The arena
  /// admits one live scan at a time and must outlive it.  Obstacles may be
  /// added to the graph while the scan is alive ONLY via Revalidate().
  DijkstraScan(VisGraph* graph, geom::Vec2 source, ScanArena* arena);

  ~DijkstraScan();

  DijkstraScan(const DijkstraScan&) = delete;
  DijkstraScan& operator=(const DijkstraScan&) = delete;

  /// The source location this scan was seeded from.
  geom::Vec2 source() const { return source_; }

  /// Settles and returns the next vertex in ascending distance order.
  /// \p pred receives kPredSource when the shortest path is the direct
  /// sight-line from the source.  Returns false when no vertex remains
  /// reachable.
  bool Next(VertexId* v, double* dist, int32_t* pred);

  /// Ensures at least \p i + 1 vertices are settled; false when the graph
  /// is exhausted first.
  bool EnsureSettled(size_t i);

  /// Settlement log (grows as the scan advances).
  const std::vector<Settled>& log() const { return arena_->log_; }

  /// Distance of the next vertex to be settled (+infinity if none).
  double PeekDist();

  /// Settled distance of \p v (+infinity while unsettled/unreachable).
  double DistOf(VertexId v) const {
    return IsSettled(v) ? arena_->dist_[v] : kInf;
  }

  bool IsSettled(VertexId v) const {
    return v < arena_->settled_stamp_.size() &&
           arena_->settled_stamp_[v] == epoch_;
  }

  /// Predecessor of a settled vertex (kPredSource / vertex id).
  int32_t PredOf(VertexId v) const { return arena_->pred_[v]; }

  /// Runs the scan until every id in \p targets is settled or the graph is
  /// exhausted; returns the maximum target distance (+infinity when some
  /// target is unreachable).
  double SettleTargets(const std::vector<VertexId>& targets);

  /// Number of vertices settled so far.
  size_t SettledCount() const { return settled_count_; }

  /// Warm restart (Lemma 3 outer iterations of IOR): brings the scan back
  /// in sync with a graph that gained obstacles since the scan started or
  /// was last revalidated.  Conservative and exact: with m the minimum
  /// distance from the source to any newly added obstacle, every logged
  /// settlement (and seeded source edge) of distance < m provably cannot
  /// have changed — those are kept and replayed against the patched
  /// adjacency; everything at >= m is rolled back and recomputed on
  /// demand.  After the call the scan behaves exactly like a fresh scan
  /// over the grown graph.
  void Revalidate();

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Resets all scan state onto a fresh arena epoch.
  void Begin();

  void Push(VertexId v, double dist, int32_t pred);

  /// Settles one more vertex into the log; false when exhausted.
  bool SettleOne();

  /// Pops stale heap entries and interleaves lazy seeding until the heap
  /// top is the true next settlement; false when the scan is exhausted.
  bool PrepareTop();

  /// Seeds direct source->vertex edges for every vertex whose Euclidean
  /// distance (a lower bound of its seed edge) is <= \p bound.  Lazy: a
  /// scan terminated early by its caller (CPLMAX, IOR target bound) never
  /// pays sight-line walks for vertices beyond its reach.
  void SeedUpTo(double bound);

  /// Tests the direct source sight-line of \p v and pushes the seed edge
  /// when visible.  Returns whether the edge was pushed.
  bool TrySeed(VertexId v, double euclid);

  /// Moves every live, not-yet-pending vertex of grid ring \p ring into
  /// the pending seed pool.
  void EmitRing(int ring);

  /// Expands grid rings until everything within \p bound is pending.
  void ExpandRingsUpTo(double bound);

  /// Lower bound on the Euclidean distance of any vertex that has not yet
  /// entered the seed log (+infinity when seeding is exhausted).
  double NextSeedLowerBound() const;

  VisGraph* graph_;
  geom::Vec2 source_;
  std::unique_ptr<ScanArena> owned_arena_;  ///< convenience-ctor storage
  ScanArena* arena_;
  uint64_t epoch_ = 0;  ///< arena epoch this scan stamps with

  size_t settled_count_ = 0;
  size_t next_cursor_ = 0;  // read position of Next() within the log
  int rings_done_ = 0;      // grid rings already emitted into pending

  // Graph-growth watermarks for Revalidate().
  uint64_t graph_epoch_ = 0;
  size_t obstacle_watermark_ = 0;
};

}  // namespace vis
}  // namespace conn

#endif  // CONN_VIS_DIJKSTRA_H_
