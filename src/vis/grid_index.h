// Uniform grid over the workspace for the *local* obstacle subset held by a
// visibility graph.  Supports the two hot queries of the visibility
// machinery: "which obstacles could block this sight-line segment?" (DDA
// cell walk) and "which obstacles could cover this rectangle / point?".
//
// The grid returns candidate item indices (deduplicated via an epoch stamp);
// exact geometry tests are the caller's job.

#ifndef CONN_VIS_GRID_INDEX_H_
#define CONN_VIS_GRID_INDEX_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/segment.h"

namespace conn {
namespace vis {

/// Spatial hash over a fixed domain with a fixed resolution.
class GridIndex {
 public:
  /// Covers \p domain with cells_per_side x cells_per_side cells.  Items
  /// outside the domain are clamped into the border cells (still correct,
  /// possibly slower).
  GridIndex(const geom::Rect& domain, int cells_per_side);

  /// Registers item \p item with bounding box \p rect in every overlapped
  /// cell.  Item indices must be dense (0, 1, 2, ...).
  void Insert(uint32_t item, const geom::Rect& rect);

  /// Registers point item \p item in its single containing cell.  Unlike
  /// Insert, ids need not arrive densely and may be reused after
  /// RemovePoint — the update path for recycled visibility-graph vertex
  /// slots.
  void InsertPoint(uint32_t item, geom::Vec2 p);

  /// Unregisters a point item previously added at \p p via InsertPoint.
  void RemovePoint(uint32_t item, geom::Vec2 p);

  size_t item_count() const { return item_count_; }

  /// Appends (deduplicated) candidate items whose cells the segment passes
  /// through.  Any item intersecting the segment is guaranteed included.
  void CandidatesAlongSegment(const geom::Segment& s,
                              std::vector<uint32_t>* out) const;

  /// Streaming variant: visits candidates in walk order from s.a toward
  /// s.b and stops as soon as \p visit returns false.  Returns false iff
  /// the walk was stopped early.  This is the hot path of the visibility
  /// predicate — a blocked sight-line exits at its first blocker instead
  /// of paying for the full segment length.
  template <typename Visitor>
  bool VisitAlongSegment(const geom::Segment& s, Visitor&& visit) const {
    BeginQuery();
    const double len = s.Length();
    const double step = 0.5 * std::min(cell_w_, cell_h_);
    const int steps = std::max(1, static_cast<int>(std::ceil(len / step)));
    int last_cx = -2, last_cy = -2;
    for (int i = 0; i <= steps; ++i) {
      const geom::Vec2 p = s.At(len * i / steps);
      const int cx = ClampCellX(p.x), cy = ClampCellY(p.y);
      if (cx == last_cx && cy == last_cy) continue;
      last_cx = cx;
      last_cy = cy;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int x = cx + dx, y = cy + dy;
          if (x < 0 || x >= n_ || y < 0 || y >= n_) continue;
          for (uint32_t item : CellAt(x, y)) {
            if (stamp_[item] == epoch_) continue;
            stamp_[item] = epoch_;
            if (!visit(item)) return false;
          }
        }
      }
    }
    return true;
  }

  /// Appends (deduplicated) candidate items whose cells overlap \p r.
  void CandidatesInRect(const geom::Rect& r,
                        std::vector<uint32_t>* out) const;

  /// Appends (deduplicated) candidate items in the cell containing \p p.
  void CandidatesAtPoint(geom::Vec2 p, std::vector<uint32_t>* out) const;

  // --- expanding-ring enumeration (output-sensitive Dijkstra seeding) ---
  //
  // Rings are square (Chebyshev) shells of cells around the cell containing
  // \p center: ring 0 is that cell, ring r the perimeter of the
  // (2r+1) x (2r+1) block.  Enumerating rings in order yields every item
  // eventually, and RingMinDist gives a monotone lower bound on the
  // Euclidean distance of anything not yet enumerated — the contract the
  // lazy-seeding scan needs to stop after O(items reached) work.

  /// Lower bound on the distance from \p center to any point of any cell
  /// with ring index >= \p ring; +infinity once rings < \p ring already
  /// cover the whole grid.  Valid for clamped (out-of-domain) items too:
  /// clamping only moves coordinates inward, so an item stored in a ring-r
  /// cell is at least this far from \p center.
  double RingMinDist(geom::Vec2 center, int ring) const;

  /// Visits every item registered in a cell of ring \p ring around
  /// \p center.  Items are visited once per cell they occupy (point items:
  /// exactly once); no cross-call deduplication.
  template <typename Visitor>
  void VisitRing(geom::Vec2 center, int ring, Visitor&& visit) const {
    const int cx = ClampCellX(center.x), cy = ClampCellY(center.y);
    auto emit = [&](int x, int y) {
      if (x < 0 || x >= n_ || y < 0 || y >= n_) return;
      for (uint32_t item : CellAt(x, y)) visit(item);
    };
    if (ring == 0) {
      emit(cx, cy);
      return;
    }
    for (int x = cx - ring; x <= cx + ring; ++x) {
      emit(x, cy - ring);
      emit(x, cy + ring);
    }
    for (int y = cy - ring + 1; y <= cy + ring - 1; ++y) {
      emit(cx - ring, y);
      emit(cx + ring, y);
    }
  }

 private:
  int ClampCellX(double x) const;
  int ClampCellY(double y) const;
  const std::vector<uint32_t>& CellAt(int cx, int cy) const {
    return cells_[static_cast<size_t>(cy) * n_ + cx];
  }
  std::vector<uint32_t>& CellAt(int cx, int cy) {
    return cells_[static_cast<size_t>(cy) * n_ + cx];
  }
  void EmitCell(int cx, int cy, std::vector<uint32_t>* out) const;
  void BeginQuery() const;

  geom::Rect domain_;
  int n_;
  double cell_w_;
  double cell_h_;
  std::vector<std::vector<uint32_t>> cells_;
  size_t item_count_ = 0;

  // Epoch-stamped deduplication across cells within one query.
  mutable std::vector<uint32_t> stamp_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace vis
}  // namespace conn

#endif  // CONN_VIS_GRID_INDEX_H_
