// Per-workspace settlement log: the multi-source coverage record behind
// cross-client frontier sharing (differential tick repair).
//
// Every completed incremental obstacle retrieval proves a coverage fact
// about the graph it ran against: "every obstacle whose mindist to query
// segment s is <= r is now present" (r is IOR's final search distance —
// Theorem 2's search range over all of s's evaluated points).  The log
// keeps a bounded ring of these facts as *capsules* (s, r, owner).  A
// later retrieval against the same graph — the same client's next tick,
// or a clustered sibling's query seeded into the same shard — asks
// Covers(q, b): does some capsule prove that every obstacle within b of
// segment q is already local?  If so, the obstacle stream for that wave
// is skipped entirely; the graph already holds a superset of the wave's
// Theorem-2 obstacle set, which is the exact same correctness argument
// that makes shard-shared workspaces bit-identical to per-query graphs.
//
// The containment test is triangle inequality over segment distances: for
// any obstacle o, mindist(o, q) <= b implies
//   mindist(o, s) <= mindist(o, q) + max_{x in q} dist(x, s)
//                 <= b + max(dist(q.a, s), dist(q.b, s)),
// (distance-to-a-segment is convex, so its max over q sits at an
// endpoint).  Covers therefore requires b + that endpoint max <= r, with
// a kEpsDist safety margin against floating-point rounding in the
// distance evaluations.
//
// Capsules stay valid for the graph's whole lifetime: obstacles are only
// ever added, so "is present" is monotone.  The log must be cleared (or
// discarded) with the graph it describes.

#ifndef CONN_VIS_SETTLEMENT_LOG_H_
#define CONN_VIS_SETTLEMENT_LOG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/segment.h"

namespace conn {
namespace vis {

/// Bounded ring of coverage capsules over one graph's obstacle set.
class SettlementLog {
 public:
  /// One proven coverage fact: every obstacle within \p radius of
  /// \p source is present in the graph this log describes.  \p owner tags
  /// the client whose retrieval proved it (-1 = untagged), so consumers
  /// can distinguish self-reuse from cross-client frontier shares.
  struct Capsule {
    geom::Segment source;
    double radius = 0.0;
    int64_t owner = -1;
  };

  explicit SettlementLog(size_t capacity = kDefaultCapacity);

  /// Records a proven capsule.  Zero-radius facts prove nothing and are
  /// dropped; otherwise the oldest capsule is evicted once the ring is
  /// full (coverage only ever degrades to "stream again", never to an
  /// unsound skip).
  void Publish(const geom::Segment& source, double radius, int64_t owner);

  /// True iff some capsule proves that every obstacle with
  /// mindist(o, q) <= bound is already in the graph.  On success,
  /// \p owner_out (optional) receives the proving capsule's owner tag.
  bool Covers(const geom::Segment& q, double bound,
              int64_t* owner_out = nullptr) const;

  /// Drops every capsule (the described graph was rebuilt).
  void Clear();

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  const std::vector<Capsule>& capsules() const { return ring_; }

  /// Ring size: big enough for every member of a batch shard plus the
  /// pre-seed sweep to coexist within one tick wave, small enough that
  /// Covers stays a trivial linear probe.
  static constexpr size_t kDefaultCapacity = 32;

 private:
  std::vector<Capsule> ring_;
  size_t next_ = 0;  // eviction cursor once the ring is full
  size_t capacity_;
};

}  // namespace vis
}  // namespace conn

#endif  // CONN_VIS_SETTLEMENT_LOG_H_
