#include "vis/visible_region.h"

#include <algorithm>
#include <cmath>

#include "geom/distance.h"
#include "geom/predicates.h"

namespace conn {
namespace vis {

geom::IntervalSet ShadowOnSegment(const geom::Rect& rect,
                                  geom::Vec2 viewpoint,
                                  const geom::SegmentFrame& frame,
                                  uint64_t* test_counter) {
  const geom::Segment& q = frame.segment();
  const double len = frame.length();
  if (len <= 0.0) return geom::IntervalSet();

  // Exact reject: the obstacle can only shadow q if it meets the triangle
  // (viewpoint, q.a, q.b) — a sight-line from the viewpoint to a point of q
  // lies inside that triangle.
  if (!geom::TriangleIntersectsRect(viewpoint, q.a, q.b, rect)) {
    return geom::IntervalSet();
  }

  // Critical parameters: shadow boundaries can only occur where the
  // sight-line grazes a corner, or where q itself crosses the rectangle.
  std::vector<double> criticals = {0.0, len};
  const geom::Vec2 d = q.Delta();
  for (const geom::Vec2& corner : rect.Corners()) {
    const geom::Vec2 ray = corner - viewpoint;
    const double denom = ray.Cross(d);
    if (std::abs(denom) < 1e-12) continue;  // ray parallel to q
    const geom::Vec2 w = q.a - viewpoint;
    const double s = w.Cross(d) / denom;   // position of q-hit along the ray
    const double u = w.Cross(ray) / denom;  // fraction along q
    // The sight-line must reach the corner before q (s >= 1): otherwise
    // passing "through" the corner does not change blocking at q(u).
    if (s < 1.0 - 1e-9) continue;
    if (u < -1e-9 || u > 1.0 + 1e-9) continue;
    criticals.push_back(std::clamp(u, 0.0, 1.0) * len);
  }
  double t0, t1;
  if (geom::ClipSegmentToRect(q, rect, &t0, &t1)) {
    criticals.push_back(t0 * len);
    criticals.push_back(t1 * len);
  }
  std::sort(criticals.begin(), criticals.end());
  criticals.erase(std::unique(criticals.begin(), criticals.end(),
                              [](double a, double b) {
                                return std::abs(a - b) <= geom::kEpsParam;
                              }),
                  criticals.end());

  // Classify each cell by one exact midpoint test.
  std::vector<geom::Interval> blocked;
  for (size_t i = 0; i + 1 < criticals.size(); ++i) {
    const double lo = criticals[i], hi = criticals[i + 1];
    const geom::Vec2 mid = q.At(0.5 * (lo + hi));
    if (test_counter != nullptr) ++*test_counter;
    if (geom::SegmentCrossesInterior(geom::Segment(viewpoint, mid), rect)) {
      blocked.push_back(geom::Interval(lo, hi));
    }
  }
  return geom::IntervalSet(std::move(blocked));
}

geom::IntervalSet VisibleRegion(const ObstacleSet& obstacles,
                                geom::Vec2 viewpoint,
                                const geom::SegmentFrame& frame,
                                uint64_t* test_counter) {
  const double len = frame.length();
  geom::IntervalSet visible{geom::Interval(0.0, len)};
  if (len <= 0.0) return visible;

  std::vector<uint32_t> candidates;
  const geom::Rect hull_bbox =
      frame.segment().Bounds().ExpandedToCover(viewpoint);
  obstacles.CandidatesInRect(hull_bbox, &candidates);
  for (uint32_t i : candidates) {
    const geom::IntervalSet shadow =
        ShadowOnSegment(obstacles.rect(i), viewpoint, frame, test_counter);
    if (!shadow.IsEmpty()) visible = visible.Subtract(shadow);
    if (visible.IsEmpty()) break;
  }
  return visible;
}

}  // namespace vis
}  // namespace conn
