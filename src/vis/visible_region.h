// Visible region computation (Definition 2): the sub-intervals of a query
// segment q that a viewpoint sees past the obstacle set.
//
// Per obstacle, the blocked parameter set is delimited by (a) rays from the
// viewpoint through the obstacle's corners extended to q (grazing
// boundaries) and (b) the points where q itself enters/exits the obstacle.
// Each candidate sub-interval is then classified exactly by one
// midpoint-blocking test, which keeps every degenerate configuration
// (viewpoint collinear with edges, q crossing the obstacle, viewpoint on a
// boundary) in a single robust code path.

#ifndef CONN_VIS_VISIBLE_REGION_H_
#define CONN_VIS_VISIBLE_REGION_H_

#include "geom/curve.h"
#include "geom/interval_set.h"
#include "vis/obstacle_set.h"

namespace conn {
namespace vis {

/// Blocked parameter intervals of \p frame's segment w.r.t. the single
/// rectangle \p rect as seen from \p viewpoint.  Exposed for unit testing.
geom::IntervalSet ShadowOnSegment(const geom::Rect& rect,
                                  geom::Vec2 viewpoint,
                                  const geom::SegmentFrame& frame,
                                  uint64_t* test_counter = nullptr);

/// Visible region VR(viewpoint, q) over \p obstacles: all arc-length
/// parameters t with an unblocked sight-line viewpoint -> q(t).
/// \p test_counter (optional) accumulates exact blocking tests.
geom::IntervalSet VisibleRegion(const ObstacleSet& obstacles,
                                geom::Vec2 viewpoint,
                                const geom::SegmentFrame& frame,
                                uint64_t* test_counter = nullptr);

}  // namespace vis
}  // namespace conn

#endif  // CONN_VIS_VISIBLE_REGION_H_
