#include "vis/vis_graph.h"

#include <algorithm>

#include "common/check.h"

namespace conn {
namespace vis {

VisGraph::VisGraph(const geom::Rect& domain, QueryStats* stats)
    : vertex_grid_(domain, /*cells_per_side=*/64),
      obstacles_(domain),
      stats_(stats) {}

VertexId VisGraph::AddVertexInternal(geom::Vec2 p) {
  if (!free_slots_.empty()) {
    const VertexId id = free_slots_.back();
    free_slots_.pop_back();
    vertices_[id] = p;
    adj_[id].clear();
    adj_computed_[id] = false;
    corner_[id] = CornerInfo{};
    alive_[id] = true;
    adj_obstacle_mark_[id] = 0;
    vertex_grid_.InsertPoint(id, p);
    return id;
  }
  const VertexId id = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(p);
  adj_.emplace_back();
  adj_computed_.push_back(false);
  corner_.emplace_back();
  alive_.push_back(true);
  adj_obstacle_mark_.push_back(0);
  vertex_grid_.InsertPoint(id, p);
  return id;
}

void VisGraph::SetDeferredAdjacency(bool deferred) {
  CONN_CHECK_MSG(obstacles_.size() == 0,
                 "adjacency mode must be chosen before the first obstacle");
  deferred_ = deferred;
}

VertexId VisGraph::AddFixedVertex(geom::Vec2 p) {
  const VertexId id = AddVertexInternal(p);
  // Eager adjacency + reciprocal patching: a fixed vertex added *after*
  // obstacles (a later query's targets on a shard-shared graph) must appear
  // in every already-computed list, or cached-adjacency Dijkstra walks
  // could never reach it.
  RecomputeAdjacency(id);
  for (const VisEdge& e : adj_[id]) {
    if (adj_computed_[e.to]) adj_[e.to].push_back({id, e.length});
  }
  return id;
}

void VisGraph::RemoveFixedVertices(const std::vector<VertexId>& ids) {
  for (VertexId v : ids) {
    CONN_CHECK_MSG(v < vertices_.size() && alive_[v],
                   "removing a vertex that is not live");
    CONN_CHECK_MSG(!corner_[v].is_corner,
                   "obstacle corners are persistent; only fixed vertices "
                   "can be removed");
    if (adj_computed_[v] && !deferred_) {
      // Symmetry invariant: the computed lists holding an edge to v are
      // exactly v's own neighbors with computed lists.  (Deferred mode
      // cannot use this fast path: a stale computed list may retain an
      // edge to v that a patch has already pruned from v's own list, and
      // the full scan below is the only complete candidate set.)
      for (const VisEdge& e : adj_[v]) {
        if (!adj_computed_[e.to]) continue;
        std::erase_if(adj_[e.to],
                      [v](const VisEdge& r) { return r.to == v; });
      }
    } else {
      // Complete candidate set: scan every computed list.  In deferred
      // mode this is the only removal that leaves no stale edge behind —
      // a dangling reference to a recycled slot would corrupt later scans.
      for (VertexId u = 0; u < vertices_.size(); ++u) {
        if (!adj_computed_[u]) continue;
        std::erase_if(adj_[u], [v](const VisEdge& r) { return r.to == v; });
      }
    }
    adj_[v].clear();
    adj_computed_[v] = false;
    alive_[v] = false;
    vertex_grid_.RemovePoint(v, vertices_[v]);
    free_slots_.push_back(v);
  }
}

bool VisGraph::AddObstacle(const geom::Rect& rect, rtree::ObjectId id) {
  if (!obstacle_ids_.insert(id).second) {
    // Already present: a shard sibling's incremental retrieval fetched it.
    ++duplicate_obstacle_skips_;
    return false;
  }
  obstacles_.Add(rect, id);
  ++epoch_;  // visible-region caches must revalidate

  if (!deferred_) {
    // (a) Prune cached edges the new rectangle now blocks.  Only edges
    // whose bounding box meets the rectangle can be affected (cheap
    // pre-filter).
    for (VertexId v = 0; v < vertices_.size(); ++v) {
      if (!adj_computed_[v]) continue;
      const geom::Vec2 vpos = vertices_[v];
      std::erase_if(adj_[v], [&](const VisEdge& e) {
        const geom::Vec2 upos = vertices_[e.to];
        if (!geom::Rect::FromCorners(vpos, upos).Intersects(rect)) {
          return false;
        }
        if (stats_ != nullptr) ++stats_->visibility_tests;
        return geom::SegmentCrossesInterior(geom::Segment(vpos, upos), rect);
      });
    }
  }

  // (b) Add the four corners.  Eager mode computes their adjacency now and
  // patches the reciprocal edges into already-computed lists so every
  // cached list stays complete with respect to the grown graph; deferred
  // mode leaves them lazy — Neighbors() brings any touched list current
  // against the recorded rectangle and corners instead.
  // Corners() yields (lo,lo), (hi,lo), (hi,hi), (lo,hi); inward axis signs
  // point from each corner into the rectangle.
  static constexpr geom::Vec2 kInward[4] = {
      {+1.0, +1.0}, {-1.0, +1.0}, {-1.0, -1.0}, {+1.0, -1.0}};
  const auto corners = rect.Corners();
  std::array<VertexId, 4> corner_ids;
  for (int ci = 0; ci < 4; ++ci) {
    const VertexId c = AddVertexInternal(corners[ci]);
    corner_[c] = CornerInfo{true, kInward[ci]};
    corner_ids[ci] = c;
    if (deferred_) continue;
    RecomputeAdjacency(c);
    for (const VisEdge& e : adj_[c]) {
      if (adj_computed_[e.to]) adj_[e.to].push_back({c, e.length});
    }
  }
  obstacle_corners_.push_back(corner_ids);

  if (stats_ != nullptr) {
    ++stats_->obstacles_evaluated;
    stats_->vis_graph_vertices = vertices_.size();
  }
  return true;
}

bool VisGraph::Visible(geom::Vec2 a, geom::Vec2 b) const {
  return obstacles_.Visible(a, b,
                            stats_ ? &stats_->visibility_tests : nullptr);
}

void VisGraph::RecomputeAdjacency(VertexId v) {
  std::vector<VisEdge>& edges = adj_[v];
  edges.clear();
  const geom::Vec2 pos = vertices_[v];
  for (VertexId u = 0; u < vertices_.size(); ++u) {
    if (u == v || !alive_[u]) continue;
    const geom::Vec2 other = vertices_[u];
    const double len = geom::Dist(pos, other);
    if (len <= geom::kEpsDist) continue;  // coincident vertices: skip
    // O(1) rejection: the edge dives straight into either endpoint's own
    // rectangle (it would fail the sight-line walk anyway).
    if (DirectionEntersCorner(v, other - pos) ||
        DirectionEntersCorner(u, pos - other)) {
      continue;
    }
    if (Visible(pos, other)) edges.push_back({u, len});
  }
  adj_computed_[v] = true;
  adj_obstacle_mark_[v] = static_cast<uint32_t>(obstacles_.size());
}

void VisGraph::PatchAdjacency(VertexId v) {
  const geom::Vec2 pos = vertices_[v];
  const uint32_t from = adj_obstacle_mark_[v];
  const uint32_t to = static_cast<uint32_t>(obstacles_.size());
  // (a) Prune the cached edges the obstacles inserted since the watermark
  // now block — the exact erase the eager path would have run at each
  // insertion (same bbox pre-filter, same interior-crossing predicate).
  for (uint32_t k = from; k < to; ++k) {
    const geom::Rect& rect = obstacles_.rect(k);
    std::erase_if(adj_[v], [&](const VisEdge& e) {
      const geom::Vec2 upos = vertices_[e.to];
      if (!geom::Rect::FromCorners(pos, upos).Intersects(rect)) return false;
      if (stats_ != nullptr) ++stats_->visibility_tests;
      return geom::SegmentCrossesInterior(geom::Segment(pos, upos), rect);
    });
  }
  // (b) Append edges to the new obstacles' corners where visible.  Tested
  // against the *full* current obstacle set, matching what eager insertion
  // (corner sweep + subsequent prunes) would have left in place.
  for (uint32_t k = from; k < to; ++k) {
    for (const VertexId c : obstacle_corners_[k]) {
      if (c == v || !alive_[c]) continue;
      const geom::Vec2 other = vertices_[c];
      const double len = geom::Dist(pos, other);
      if (len <= geom::kEpsDist) continue;  // coincident vertices: skip
      if (DirectionEntersCorner(v, other - pos) ||
          DirectionEntersCorner(c, pos - other)) {
        continue;
      }
      if (Visible(pos, other)) adj_[v].push_back({c, len});
    }
  }
  adj_obstacle_mark_[v] = to;
}

const std::vector<VisEdge>& VisGraph::Neighbors(VertexId v) {
  if (!adj_computed_[v]) {
    RecomputeAdjacency(v);
  } else if (deferred_ && adj_obstacle_mark_[v] < obstacles_.size()) {
    PatchAdjacency(v);
  }
  return adj_[v];
}

void VisGraph::MaterializeAllAdjacency() {
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (alive_[v]) Neighbors(v);
  }
}

}  // namespace vis
}  // namespace conn
