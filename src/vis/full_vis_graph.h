// Global (complete) visibility graph — the classical baseline of Section
// 2.4.  Holds every obstacle corner plus any number of extra points, with
// all-pairs visibility edges materialized eagerly and visibility tested by
// brute force against the whole obstacle set.
//
// Complexity is O(V^2 * |O|) to build and O(V^2) space, exactly the
// scalability problem the paper's local visibility graph avoids.  In this
// library it serves as (a) the ground-truth obstructed-distance oracle for
// property tests, (b) the "FULL" size baseline of Figures 9(b)-12(d), and
// (c) the eager contender in the visibility-graph ablation benchmark.

#ifndef CONN_VIS_FULL_VIS_GRAPH_H_
#define CONN_VIS_FULL_VIS_GRAPH_H_

#include <vector>

#include "geom/box.h"
#include "vis/vis_graph.h"

namespace conn {
namespace vis {

/// Complete visibility graph over a fixed obstacle set.
class FullVisGraph {
 public:
  /// Registers the obstacle set; every rectangle contributes 4 corner
  /// vertices (so VertexCount() starts at 4*|O|, the paper's FULL size).
  explicit FullVisGraph(std::vector<geom::Rect> obstacles);

  /// Adds an extra vertex (data point, query endpoint, sample point).
  /// Must be called before Build().
  VertexId AddPoint(geom::Vec2 p);

  /// Materializes all-pairs visibility edges.
  void Build();

  size_t VertexCount() const { return vertices_.size(); }
  geom::Vec2 VertexPos(VertexId v) const { return vertices_[v]; }

  /// Brute-force sight-line test against every obstacle.
  bool Visible(geom::Vec2 a, geom::Vec2 b) const;

  /// Single-source shortest-path distances to every vertex (+infinity for
  /// unreachable).  Requires Build().
  std::vector<double> DistancesFrom(VertexId src) const;

  /// Distances from an arbitrary location that is not a graph vertex: a
  /// virtual source seeded with every directly visible vertex.  Requires
  /// Build().
  std::vector<double> DistancesFromLocation(geom::Vec2 source) const;

  /// Shortest obstructed distance between two vertices.  Requires Build().
  double Distance(VertexId src, VertexId dst) const;

 private:
  std::vector<geom::Rect> obstacles_;
  std::vector<geom::Vec2> vertices_;
  std::vector<std::vector<VisEdge>> adj_;
  bool built_ = false;
};

}  // namespace vis
}  // namespace conn

#endif  // CONN_VIS_FULL_VIS_GRAPH_H_
