#include "vis/full_vis_graph.h"

#include <limits>
#include <queue>

#include "common/check.h"
#include "geom/predicates.h"

namespace conn {
namespace vis {

FullVisGraph::FullVisGraph(std::vector<geom::Rect> obstacles)
    : obstacles_(std::move(obstacles)) {
  for (const geom::Rect& r : obstacles_) {
    for (const geom::Vec2& c : r.Corners()) vertices_.push_back(c);
  }
}

VertexId FullVisGraph::AddPoint(geom::Vec2 p) {
  CONN_CHECK_MSG(!built_, "AddPoint after Build()");
  vertices_.push_back(p);
  return static_cast<VertexId>(vertices_.size() - 1);
}

bool FullVisGraph::Visible(geom::Vec2 a, geom::Vec2 b) const {
  const geom::Segment sight(a, b);
  for (const geom::Rect& r : obstacles_) {
    if (geom::SegmentCrossesInterior(sight, r)) return false;
  }
  return true;
}

void FullVisGraph::Build() {
  CONN_CHECK_MSG(!built_, "Build() called twice");
  const size_t n = vertices_.size();
  adj_.assign(n, {});
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      const double len = geom::Dist(vertices_[i], vertices_[j]);
      if (len <= geom::kEpsDist) continue;
      if (Visible(vertices_[i], vertices_[j])) {
        adj_[i].push_back({j, len});
        adj_[j].push_back({i, len});
      }
    }
  }
  built_ = true;
}

std::vector<double> FullVisGraph::DistancesFromLocation(
    geom::Vec2 source) const {
  CONN_CHECK_MSG(built_, "DistancesFromLocation before Build()");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(vertices_.size(), kInf);
  std::vector<bool> settled(vertices_.size(), false);
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (Visible(source, vertices_[v])) {
      dist[v] = geom::Dist(source, vertices_[v]);
      heap.push({dist[v], v});
    }
  }
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (settled[v]) continue;
    settled[v] = true;
    for (const VisEdge& e : adj_[v]) {
      if (!settled[e.to] && d + e.length < dist[e.to]) {
        dist[e.to] = d + e.length;
        heap.push({dist[e.to], e.to});
      }
    }
  }
  return dist;
}

std::vector<double> FullVisGraph::DistancesFrom(VertexId src) const {
  CONN_CHECK_MSG(built_, "DistancesFrom before Build()");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(vertices_.size(), kInf);
  std::vector<bool> settled(vertices_.size(), false);
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[src] = 0.0;
  heap.push({0.0, src});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (settled[v]) continue;
    settled[v] = true;
    for (const VisEdge& e : adj_[v]) {
      if (!settled[e.to] && d + e.length < dist[e.to]) {
        dist[e.to] = d + e.length;
        heap.push({dist[e.to], e.to});
      }
    }
  }
  return dist;
}

double FullVisGraph::Distance(VertexId src, VertexId dst) const {
  return DistancesFrom(src)[dst];
}

}  // namespace vis
}  // namespace conn
