#include "vis/dijkstra.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geom/distance.h"
#include "geom/predicates.h"

namespace conn {
namespace vis {

DijkstraScan::DijkstraScan(VisGraph* graph, geom::Vec2 source)
    : graph_(graph),
      source_(source),
      owned_arena_(std::make_unique<ScanArena>()),
      arena_(owned_arena_.get()) {
  Begin();
}

DijkstraScan::DijkstraScan(VisGraph* graph, geom::Vec2 source,
                           ScanArena* arena)
    : graph_(graph), source_(source), arena_(arena) {
  CONN_CHECK_MSG(!arena_->in_use_,
                 "ScanArena admits one live scan at a time");
  Begin();
}

DijkstraScan::~DijkstraScan() { arena_->in_use_ = false; }

void DijkstraScan::Begin() {
  arena_->in_use_ = true;
  epoch_ = ++arena_->epoch_;
  arena_->EnsureCapacity(graph_->VertexCount());
  arena_->heap_.clear();
  arena_->pending_.clear();
  arena_->seed_log_.clear();
  arena_->log_.clear();
  settled_count_ = 0;
  next_cursor_ = 0;
  rings_done_ = 0;
  graph_epoch_ = graph_->epoch();
  obstacle_watermark_ = graph_->obstacles().size();
}

double DijkstraScan::NextSeedLowerBound() const {
  double lb = graph_->vertex_grid().RingMinDist(source_, rings_done_);
  if (!arena_->pending_.empty()) {
    lb = std::min(lb, arena_->pending_.front().euclid);
  }
  return lb;
}

void DijkstraScan::EmitRing(int ring) {
  arena_->EnsureCapacity(graph_->VertexCount());
  graph_->vertex_grid().VisitRing(source_, ring, [&](uint32_t item) {
    const VertexId v = item;
    if (!graph_->IsAlive(v)) return;
    if (arena_->seeded_stamp_[v] == epoch_) return;
    arena_->seeded_stamp_[v] = epoch_;
    arena_->pending_.push_back(
        {geom::Dist(source_, graph_->VertexPos(v)), v});
    std::push_heap(arena_->pending_.begin(), arena_->pending_.end(),
                   std::greater<>());
  });
}

void DijkstraScan::ExpandRingsUpTo(double bound) {
  const GridIndex& grid = graph_->vertex_grid();
  while (true) {
    const double rmin = grid.RingMinDist(source_, rings_done_);
    if (std::isinf(rmin) || rmin > bound) break;
    EmitRing(rings_done_);
    ++rings_done_;
  }
}

bool DijkstraScan::TrySeed(VertexId v, double euclid) {
  if (euclid <= geom::kEpsDist) {
    // Source coincides with the vertex: trivially reachable.
    Push(v, euclid, kPredSource);
    return true;
  }
  const geom::Vec2 pos = graph_->VertexPos(v);
  if (graph_->DirectionEntersCorner(v, source_ - pos)) return false;
  if (QueryStats* stats = graph_->stats()) ++stats->seed_tests;
  if (graph_->Visible(source_, pos)) {
    Push(v, euclid, kPredSource);
    return true;
  }
  return false;
}

void DijkstraScan::SeedUpTo(double bound) {
  ExpandRingsUpTo(bound);
  auto& pending = arena_->pending_;
  while (!pending.empty() && pending.front().euclid <= bound) {
    const ScanArena::SeedCand cand = pending.front();
    std::pop_heap(pending.begin(), pending.end(), std::greater<>());
    pending.pop_back();
    const bool pushed = TrySeed(cand.v, cand.euclid);
    arena_->seed_log_.push_back({cand.euclid, cand.v, pushed});
  }
}

void DijkstraScan::Push(VertexId v, double dist, int32_t pred) {
  if (arena_->dist_stamp_[v] != epoch_ || dist < arena_->dist_[v]) {
    arena_->dist_[v] = dist;
    arena_->pred_[v] = pred;
    arena_->dist_stamp_[v] = epoch_;
    arena_->heap_.push_back({dist, v});
    std::push_heap(arena_->heap_.begin(), arena_->heap_.end(),
                   std::greater<>());
  }
}

bool DijkstraScan::PrepareTop() {
  CONN_CHECK_MSG(graph_->epoch() == graph_epoch_,
                 "graph gained obstacles mid-scan; call Revalidate() first");
  // Fixed vertices patched in mid-scan don't bump the epoch; make sure the
  // per-vertex arrays cover them before relaxation touches their slots.
  arena_->EnsureCapacity(graph_->VertexCount());
  auto& heap = arena_->heap_;
  while (true) {
    while (!heap.empty() &&
           arena_->settled_stamp_[heap.front().v] == epoch_) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>());
      heap.pop_back();
    }
    const double seed_lb = NextSeedLowerBound();
    if (heap.empty()) {
      if (seed_lb == kInf) return false;
      SeedUpTo(seed_lb);
      continue;
    }
    // Invariant: before settling at distance D, every vertex whose direct
    // source edge could be shorter (euclid <= D) must have been seeded.
    if (seed_lb <= heap.front().dist) {
      SeedUpTo(heap.front().dist);
      continue;
    }
    return true;
  }
}

double DijkstraScan::PeekDist() {
  if (next_cursor_ < arena_->log_.size()) {
    return arena_->log_[next_cursor_].dist;
  }
  if (!PrepareTop()) return kInf;
  return arena_->heap_.front().dist;
}

bool DijkstraScan::SettleOne() {
  if (!PrepareTop()) return false;
  auto& heap = arena_->heap_;
  const ScanArena::HeapItem top = heap.front();
  std::pop_heap(heap.begin(), heap.end(), std::greater<>());
  heap.pop_back();
  arena_->settled_stamp_[top.v] = epoch_;
  ++settled_count_;
  for (const VisEdge& e : graph_->Neighbors(top.v)) {
    if (arena_->settled_stamp_[e.to] != epoch_) {
      Push(e.to, top.dist + e.length, static_cast<int32_t>(top.v));
    }
  }
  arena_->log_.push_back({top.v, top.dist, arena_->pred_[top.v]});
  return true;
}

bool DijkstraScan::EnsureSettled(size_t i) {
  while (arena_->log_.size() <= i) {
    if (!SettleOne()) return false;
  }
  return true;
}

bool DijkstraScan::Next(VertexId* v, double* dist, int32_t* pred) {
  if (!EnsureSettled(next_cursor_)) return false;
  const Settled& entry = arena_->log_[next_cursor_++];
  *v = entry.v;
  *dist = entry.dist;
  *pred = entry.pred;
  return true;
}

double DijkstraScan::SettleTargets(const std::vector<VertexId>& targets) {
  // Mark the unique, not-yet-settled targets and count them; settlement
  // pops then pay O(1) per vertex instead of a linear target search.
  // Already-settled log entries between the read cursor and the log end
  // (left by an earlier consumer) never decrement the counter, because
  // only unsettled targets are marked.
  const uint64_t mark = ++arena_->target_epoch_;
  size_t remaining = 0;
  for (VertexId t : targets) {
    CONN_CHECK(t < arena_->target_stamp_.size());
    if (arena_->target_stamp_[t] == mark) continue;  // duplicate target id
    if (!IsSettled(t)) {
      arena_->target_stamp_[t] = mark;
      ++remaining;
    }
  }
  VertexId v = 0;
  double d = 0.0;
  int32_t pred = kPredNone;
  while (remaining > 0 && Next(&v, &d, &pred)) {
    if (arena_->target_stamp_[v] == mark) {
      arena_->target_stamp_[v] = 0;
      --remaining;
    }
  }
  double max_dist = 0.0;
  for (VertexId t : targets) {
    max_dist = std::max(max_dist, DistOf(t));
  }
  return max_dist;
}

void DijkstraScan::Revalidate() {
  if (graph_->epoch() == graph_epoch_) return;
  graph_epoch_ = graph_->epoch();
  const ObstacleSet& obs = graph_->obstacles();
  double m = kInf;
  for (size_t i = obstacle_watermark_; i < obs.size(); ++i) {
    m = std::min(m, geom::MinDistRectPoint(obs.rect(i), source_));
  }
  obstacle_watermark_ = obs.size();

  // Anything settled or seeded strictly below the cut provably kept its
  // shortest path: a path of length L stays inside the L-disk around the
  // source, so it cannot touch an obstacle at distance >= m, and any new
  // path through a fresh corner first pays >= m to reach it.  The eps
  // backs the cut off that boundary so predicate tolerances cannot flip a
  // grazing sight-line.
  const double cut = m - geom::kEpsDist;

  auto& log = arena_->log_;
  auto& seed_log = arena_->seed_log_;
  size_t keep_log = 0;
  while (keep_log < log.size() && log[keep_log].dist < cut) ++keep_log;
  size_t keep_seed = 0;
  while (keep_seed < seed_log.size() && seed_log[keep_seed].euclid < cut) {
    ++keep_seed;
  }
  log.resize(keep_log);
  seed_log.resize(keep_seed);
  settled_count_ = keep_log;
  next_cursor_ = std::min(next_cursor_, keep_log);

  // Fresh epoch: O(1) wholesale invalidation of the per-vertex arrays.
  epoch_ = ++arena_->epoch_;
  arena_->EnsureCapacity(graph_->VertexCount());
  arena_->heap_.clear();
  arena_->pending_.clear();

  // Re-mark the kept seeds, then refill the pending pool by re-walking the
  // already-expanded rings.  Corner vertices the new obstacles added land
  // in the pool automatically when their cell was already visited; cells
  // beyond rings_done_ pick them up on the normal lazy path.
  for (const ScanArena::SeedLogEntry& s : seed_log) {
    arena_->seeded_stamp_[s.v] = epoch_;
  }
  const int rings = rings_done_;
  for (int r = 0; r < rings; ++r) EmitRing(r);

  // Replay the kept prefix in the original operation order (seeds with
  // euclid <= D flush before the settlement at D), so exact distance ties
  // resolve identically to an uninterrupted scan.  Seed visibility tests
  // are NOT re-run — the kept outcomes are provably unchanged.
  size_t si = 0;
  for (size_t li = 0; li < keep_log; ++li) {
    const ScanSettled entry = log[li];
    while (si < keep_seed && seed_log[si].euclid <= entry.dist) {
      const ScanArena::SeedLogEntry s = seed_log[si++];
      if (s.pushed) Push(s.v, s.euclid, kPredSource);
    }
    arena_->dist_[entry.v] = entry.dist;
    arena_->pred_[entry.v] = entry.pred;
    arena_->dist_stamp_[entry.v] = epoch_;
    arena_->settled_stamp_[entry.v] = epoch_;
    for (const VisEdge& e : graph_->Neighbors(entry.v)) {
      if (arena_->settled_stamp_[e.to] != epoch_) {
        Push(e.to, entry.dist + e.length, static_cast<int32_t>(entry.v));
      }
    }
  }
  while (si < keep_seed) {
    const ScanArena::SeedLogEntry s = seed_log[si++];
    if (s.pushed) Push(s.v, s.euclid, kPredSource);
  }
}

}  // namespace vis
}  // namespace conn
