#include "vis/dijkstra.h"

#include <algorithm>

#include "common/check.h"

namespace conn {
namespace vis {

DijkstraScan::DijkstraScan(VisGraph* graph, geom::Vec2 source)
    : graph_(graph), source_(source) {
  const size_t n = graph->VertexCount();
  dist_.assign(n, kInf);
  pred_.assign(n, kPredNone);
  settled_.assign(n, false);
  // Defer the source's sight-line tests: vertices are seeded lazily in
  // ascending Euclidean distance as the settlement frontier reaches them.
  // Recycled slots (fixed vertices of finished query sessions) are skipped.
  seed_order_.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (!graph->IsAlive(v)) continue;
    seed_order_.emplace_back(geom::Dist(source, graph->VertexPos(v)), v);
  }
  std::sort(seed_order_.begin(), seed_order_.end());
}

void DijkstraScan::SeedUpTo(double bound) {
  while (seed_next_ < seed_order_.size() &&
         seed_order_[seed_next_].first <= bound) {
    const auto [euclid, v] = seed_order_[seed_next_++];
    if (euclid <= geom::kEpsDist) {
      // Source coincides with the vertex: trivially reachable.
      Push(v, euclid, kPredSource);
      continue;
    }
    const geom::Vec2 pos = graph_->VertexPos(v);
    if (graph_->DirectionEntersCorner(v, source_ - pos)) continue;
    if (graph_->Visible(source_, pos)) {
      Push(v, euclid, kPredSource);
    }
  }
}

void DijkstraScan::Push(VertexId v, double dist, int32_t pred) {
  if (dist < dist_[v]) {
    dist_[v] = dist;
    pred_[v] = pred;
    heap_.push({dist, v});
  }
}

namespace {
// Forward declaration helper is unnecessary; logic lives in PrepareTop.
}  // namespace

bool DijkstraScan::PrepareTop() {
  while (true) {
    while (!heap_.empty() && settled_[heap_.top().v]) heap_.pop();
    if (heap_.empty()) {
      if (seed_next_ >= seed_order_.size()) return false;
      SeedUpTo(seed_order_[seed_next_].first);
      continue;
    }
    // Invariant: before settling at distance D, every vertex whose direct
    // source edge could be shorter (euclid <= D) must have been seeded.
    if (seed_next_ < seed_order_.size() &&
        seed_order_[seed_next_].first <= heap_.top().dist) {
      SeedUpTo(heap_.top().dist);
      continue;
    }
    return true;
  }
}

double DijkstraScan::PeekDist() {
  if (next_cursor_ < log_.size()) return log_[next_cursor_].dist;
  if (!PrepareTop()) return kInf;
  return heap_.top().dist;
}

bool DijkstraScan::SettleOne() {
  if (!PrepareTop()) return false;
  const Item top = heap_.top();
  heap_.pop();
  settled_[top.v] = true;
  ++settled_count_;
  for (const VisEdge& e : graph_->Neighbors(top.v)) {
    if (!settled_[e.to]) {
      Push(e.to, top.dist + e.length, static_cast<int32_t>(top.v));
    }
  }
  log_.push_back({top.v, top.dist, pred_[top.v]});
  return true;
}

bool DijkstraScan::EnsureSettled(size_t i) {
  while (log_.size() <= i) {
    if (!SettleOne()) return false;
  }
  return true;
}

bool DijkstraScan::Next(VertexId* v, double* dist, int32_t* pred) {
  if (!EnsureSettled(next_cursor_)) return false;
  const Settled& entry = log_[next_cursor_++];
  *v = entry.v;
  *dist = entry.dist;
  *pred = entry.pred;
  return true;
}

double DijkstraScan::SettleTargets(const std::vector<VertexId>& targets) {
  size_t remaining = 0;
  for (VertexId t : targets) {
    CONN_CHECK(t < settled_.size());
    if (!settled_[t]) ++remaining;
  }
  VertexId v;
  double d;
  int32_t pred;
  while (remaining > 0 && Next(&v, &d, &pred)) {
    if (std::find(targets.begin(), targets.end(), v) != targets.end()) {
      --remaining;
    }
  }
  double max_dist = 0.0;
  for (VertexId t : targets) {
    max_dist = std::max(max_dist, DistOf(t));
  }
  return max_dist;
}

}  // namespace vis
}  // namespace conn
