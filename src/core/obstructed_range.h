// Obstructed range query — another member of the obstacle-aware query
// family of Zhang et al. (EDBT 2004, reference [31] of the paper): all data
// points whose OBSTRUCTED distance to a query location is at most a radius.
//
// Processing follows the same pattern as ONN: best-first browsing of the
// data R-tree by Euclidean mindist (a lower bound of the obstructed
// distance, so the stream can stop at the radius), with each candidate's
// exact obstructed distance computed by IOR over a shared local visibility
// graph.

#ifndef CONN_CORE_OBSTRUCTED_RANGE_H_
#define CONN_CORE_OBSTRUCTED_RANGE_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "core/onn.h"
#include "core/options.h"
#include "geom/vec.h"
#include "rtree/rstar_tree.h"

namespace conn {
namespace core {

/// Answer of an obstructed range query: members sorted by obstructed
/// distance, nearest first.
struct ObstructedRangeResult {
  geom::Vec2 query;
  double radius = 0.0;
  std::vector<OnnNeighbor> members;
  QueryStats stats;
};

/// All points p of the data tree with odist(p, query_point) <= radius.
ObstructedRangeResult ObstructedRangeQuery(
    const rtree::RStarTree& data_tree, const rtree::RStarTree& obstacle_tree,
    geom::Vec2 query_point, double radius, const ConnOptions& opts = {});

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_OBSTRUCTED_RANGE_H_
