// Result List and its update procedure (RLU) — Algorithm 3 of the paper.
//
// The result list RL partitions the reachable portion of the query segment
// into tuples <p_i, cp_i, R_i>: data point p_i is the obstructed NN of
// every point of R_i and its shortest paths there pass control point cp_i.
// Evaluating a new data point p merges its control point list into RL,
// splitting intervals at the (at most two per pair, Theorem 1) curve
// crossings and applying the Lemma 1 endpoint-dominance fast path.

#ifndef CONN_CORE_RESULT_LIST_H_
#define CONN_CORE_RESULT_LIST_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "core/cpl.h"
#include "core/options.h"
#include "geom/curve.h"
#include "geom/interval_set.h"

namespace conn {
namespace core {

/// Sentinel point id for "no ONN known yet".
inline constexpr int64_t kNoPoint = -1;

/// One tuple <p, cp, R> of the result list.
struct RlEntry {
  int64_t pid = kNoPoint;  ///< data point id (kNoPoint while unset)
  geom::Vec2 cp;           ///< control point of pid over range
  double offset = 0.0;     ///< ||pid, cp||
  geom::Interval range;

  bool has_value() const { return pid != kNoPoint; }

  /// Obstructed-distance curve of this entry.
  geom::DistanceCurve Curve(const geom::SegmentFrame& frame) const {
    return geom::DistanceCurve::FromControlPoint(frame, cp, offset);
  }
};

/// The running CONN result over the reachable domain of q.
class ResultList {
 public:
  /// Initializes one unset entry per reachable piece of the query segment.
  explicit ResultList(const geom::IntervalSet& domain);

  const std::vector<RlEntry>& entries() const { return entries_; }

  /// RLMAX of Lemma 2: the largest endpoint distance over all entries;
  /// +infinity while any reachable interval still lacks an ONN.
  double RlMax(const geom::SegmentFrame& frame) const;

  /// RLU (Algorithm 3): merges data point \p pid's control point list into
  /// the running result.
  void Update(int64_t pid, const ControlPointList& cpl,
              const geom::SegmentFrame& frame, const ConnOptions& opts,
              QueryStats* stats);

  /// Obstructed distance of the current ONN at parameter \p t
  /// (+infinity where unset / outside the domain).
  double OdistAt(double t, const geom::SegmentFrame& frame) const;

  /// Current ONN id at parameter \p t (kNoPoint where unset / outside).
  int64_t OnnAt(double t) const;

 private:
  void AssignCandidate(int64_t pid, geom::Vec2 cp, double offset,
                       const geom::IntervalSet& regions,
                       const geom::SegmentFrame& frame,
                       const ConnOptions& opts, QueryStats* stats);
  void MergeAdjacent();

  std::vector<RlEntry> entries_;
};

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_RESULT_LIST_H_
