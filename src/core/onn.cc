#include "core/onn.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/timer.h"
#include "core/engine_internal.h"
#include "core/odist.h"
#include "rtree/best_first.h"

namespace conn {
namespace core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

OnnResult OnnQuery(const rtree::RStarTree& data_tree,
                   const rtree::RStarTree& obstacle_tree,
                   geom::Vec2 query_point, size_t k, const ConnOptions& opts) {
  CONN_CHECK_MSG(k >= 1, "ONN requires k >= 1");
  Timer timer;
  QueryStats stats;
  internal::PagerDelta data_io(data_tree.pager());
  internal::PagerDelta obstacle_io(obstacle_tree.pager());

  OnnResult result;
  result.query = query_point;

  const geom::Segment q(query_point, query_point);
  const geom::Rect domain =
      internal::WorkspaceBounds(&data_tree, &obstacle_tree, q);
  vis::VisGraph vg(domain, &stats);
  vis::ScanArena arena;
  const vis::VertexId target = vg.AddFixedVertex(query_point);
  TreeObstacleSource obstacle_source(obstacle_tree, q);

  // Max-heap semantics via a sorted vector (k is small).
  std::vector<OnnNeighbor> best;
  auto kth_bound = [&]() {
    return best.size() < k ? kInf : best.back().odist;
  };

  rtree::BestFirstIterator points(data_tree, q);
  double retrieved = 0.0;
  rtree::DataObject obj;
  double dist = 0.0;
  // Termination here is the plain k-th-bound cutoff; ONN keeps no
  // lemma2_terminations statistic, so the bound-vs-exhaustion distinction
  // the segment engines draw (StreamOutcome) does not apply.
  while (points.PeekDist() < kth_bound() ||
         (best.size() < k && points.PeekDist() < kInf)) {
    CONN_CHECK(points.Next(&obj, &dist));
    CONN_CHECK_MSG(obj.kind == rtree::ObjectKind::kPoint,
                   "data tree contains a non-point entry");
    ++stats.points_evaluated;
    const double od = IncrementalObstacleRetrieval(
        &obstacle_source, &vg, {target}, obj.AsPoint(), &retrieved, &stats,
        /*out_scan=*/nullptr, &arena, opts.use_warm_scan_restarts);
    if (od >= kth_bound()) continue;
    best.push_back({static_cast<int64_t>(obj.id), od});
    std::sort(best.begin(), best.end(),
              [](const OnnNeighbor& a, const OnnNeighbor& b) {
                if (a.odist != b.odist) return a.odist < b.odist;
                return a.pid < b.pid;
              });
    if (best.size() > k) best.pop_back();
  }
  // Drop unreachable "neighbors" (infinite distance).
  std::erase_if(best, [](const OnnNeighbor& n) { return n.odist == kInf; });
  result.neighbors = std::move(best);

  stats.vis_graph_vertices = vg.VertexCount();
  stats.data_page_reads = data_io.faults();
  stats.obstacle_page_reads = obstacle_io.faults();
  stats.buffer_hits = data_io.hits() + obstacle_io.hits();
  internal::AddPrefetchStats(data_io, &stats);
  internal::AddPrefetchStats(obstacle_io, &stats);
  stats.cpu_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  return result;
}

}  // namespace core
}  // namespace conn
