// Euclidean continuous nearest neighbor (CNN) search — Tao, Papadias &
// Shen, VLDB 2002 — the obstacle-free ancestor of CONN and the contrast of
// Figure 1 of the paper.
//
// In an obstacle-free space every data point is its own control point with
// offset zero, so CNN is exactly the CONN machinery with trivial control
// point lists: best-first browsing by mindist(p, q), split points at
// perpendicular-bisector crossings (a special case of the quadratic of
// Theorem 1), and RLMAX termination.  Besides being useful on its own, it
// anchors two correctness properties exercised by tests: CONN with an
// empty obstacle set must equal CNN, and CNN must match brute-force
// sampling.

#ifndef CONN_CORE_CNN_H_
#define CONN_CORE_CNN_H_

#include "core/conn.h"

namespace conn {
namespace core {

/// Euclidean CNN over a data R-tree (no obstacles).  The result reuses
/// ConnResult; each tuple's control point is the data point itself and
/// offset is 0.
ConnResult CnnQuery(const rtree::RStarTree& data_tree, const geom::Segment& q,
                    const ConnOptions& opts = {});

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_CNN_H_
