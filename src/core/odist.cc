#include "core/odist.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "vis/dijkstra.h"

namespace conn {
namespace core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

bool TreeObstacleSource::NextObstacleWithin(double bound,
                                            rtree::DataObject* out,
                                            double* dist) {
  // Note: with bound == +inf (IOR's full-drain fallback) the peek test
  // cannot reject an exhausted stream (inf > inf is false), so Next() must
  // be allowed to report exhaustion.
  if (it_.PeekDist() > bound) return false;
  if (!it_.Next(out, dist)) return false;
  CONN_CHECK_MSG(out->kind == rtree::ObjectKind::kObstacle,
                 "obstacle tree contains a non-obstacle entry");
  return true;
}

bool UnifiedStream::NextObstacleWithin(double bound, rtree::DataObject* out,
                                       double* dist) {
  while (it_.PeekDist() <= bound) {
    rtree::DataObject obj;
    double d = 0.0;
    if (!it_.Next(&obj, &d)) return false;  // exhausted (bound may be +inf)
    retrieved_up_to_ = std::max(retrieved_up_to_, d);
    if (obj.kind == rtree::ObjectKind::kObstacle) {
      *out = obj;
      *dist = d;
      return true;
    }
    pending_points_.emplace_back(obj, d);
  }
  return false;
}

double UnifiedStream::PeekPointDistHint() const {
  if (!pending_points_.empty()) return pending_points_.front().second;
  return kInf;  // unknown without advancing; callers combine with PeekDist
}

StreamOutcome UnifiedStream::NextPointWithin(double bound,
                                             rtree::DataObject* out,
                                             double* dist) {
  // Pending points were popped in ascending order, so the front is the
  // global minimum over all unprocessed points.
  if (!pending_points_.empty()) {
    if (pending_points_.front().second > bound) {
      return StreamOutcome::kBoundReached;
    }
    *out = pending_points_.front().first;
    *dist = pending_points_.front().second;
    pending_points_.pop_front();
    return StreamOutcome::kYielded;
  }
  while (true) {
    const double peek = it_.PeekDist();
    if (peek == std::numeric_limits<double>::infinity()) {
      return StreamOutcome::kExhausted;
    }
    if (peek > bound) return StreamOutcome::kBoundReached;
    rtree::DataObject obj;
    double d = 0.0;
    CONN_CHECK(it_.Next(&obj, &d));  // finite peek => an object exists
    retrieved_up_to_ = std::max(retrieved_up_to_, d);
    if (obj.kind == rtree::ObjectKind::kPoint) {
      *out = obj;
      *dist = d;
      return StreamOutcome::kYielded;
    }
    // Paper semantics for the unified traversal: a popped obstacle is
    // inserted into the local visibility graph right away.
    vg_->AddObstacle(obj.rect, obj.id);
  }
}

bool CoverageGuardedSource::NextObstacleWithin(double bound,
                                               rtree::DataObject* out,
                                               double* dist) {
  if (log_ != nullptr) {
    if (bound != memo_bound_) {
      memo_bound_ = bound;
      int64_t owner = -1;
      memo_covered_ = log_->Covers(query_, bound, &owner);
      if (memo_covered_ && stats_ != nullptr && owner != client_tag_) {
        ++stats_->frontier_shares;
      }
    }
    // Covered: every obstacle within the bound is already in the graph, so
    // no *new* obstacle remains within it.  The inner cursor stays put.
    if (memo_covered_) return false;
  }
  if (!inner_->NextObstacleWithin(bound, out, dist)) return false;
  ++yields_;
  return true;
}

double IncrementalObstacleRetrieval(
    ObstacleSource* source, vis::VisGraph* vg,
    const std::vector<vis::VertexId>& targets, geom::Vec2 p,
    double* retrieved_up_to, QueryStats* stats,
    std::unique_ptr<vis::DijkstraScan>* out_scan, vis::ScanArena* arena,
    bool warm_restarts) {
  CONN_CHECK_MSG(!targets.empty(), "IOR requires at least one target vertex");
  // Local shortest paths on the current graph (Algorithm 1 line 2).
  auto make_scan = [&] {
    return arena != nullptr
               ? std::make_unique<vis::DijkstraScan>(vg, p, arena)
               : std::make_unique<vis::DijkstraScan>(vg, p);
  };
  auto scan = make_scan();
  if (stats != nullptr) ++stats->dijkstra_runs;
  double d = 0.0;
  while (true) {
    const size_t settled_before = scan->SettledCount();
    d = scan->SettleTargets(targets);
    if (stats != nullptr) {
      stats->dijkstra_settled += scan->SettledCount() - settled_before;
    }

    // Lemma 3: once every obstacle with mindist <= d is present and the
    // recomputed paths do not lengthen, the paths are the true shortest
    // paths and the search range SR(p, q) (Theorem 2) is covered.
    if (d <= *retrieved_up_to) break;

    bool fetched = false;
    rtree::DataObject obstacle;
    double obstacle_dist = 0.0;
    while (source->NextObstacleWithin(d, &obstacle, &obstacle_dist)) {
      // On a shard-shared graph the obstacle may already be present
      // (AddObstacle returns false); only a real insertion invalidates the
      // scan and warrants another Dijkstra iteration.
      if (vg->AddObstacle(obstacle.rect, obstacle.id)) fetched = true;
    }
    // All obstacles with mindist <= d are now local (the source yields them
    // in ascending order and refused only those beyond d).
    *retrieved_up_to = std::max(*retrieved_up_to, d);
    // Graph unchanged => d is final and the scan is still valid.
    if (!fetched) break;

    if (warm_restarts) {
      // Lemma-3 restart on the grown graph: roll back only the settlement
      // suffix the new obstacles can reach, keep the provably unaffected
      // prefix.
      scan->Revalidate();
      if (stats != nullptr) ++stats->scan_warm_restarts;
    } else {
      // Reference path: recompute from scratch (destroy first — the arena
      // admits one live scan at a time).
      scan.reset();
      scan = make_scan();
      if (stats != nullptr) ++stats->dijkstra_runs;
    }
  }
  if (out_scan != nullptr) *out_scan = std::move(scan);
  return d;
}

}  // namespace core
}  // namespace conn
