// Reusable obstacle workspace shared by several queries (the batch
// executor's per-shard state).
//
// Rebuilding the local visibility graph per query — the paper's
// single-query model — repeats the dominant cost of COkNN processing for
// every query: retrieving the same obstacles from the R-tree and paying
// their corner-adjacency insertion again.  A QueryWorkspace keeps one
// VisGraph alive across a whole shard of spatially close queries: obstacle
// insertions deduplicate by id (VisGraph::AddObstacle), while each query's
// fixed target vertices are scoped to a vis::QuerySession and vanish when
// the query completes.  Correctness is unaffected: the shared graph holds a
// superset of each query's Theorem-2 search-range obstacle set, and extra
// real obstacles can only confirm (never shorten) obstructed distances —
// the same argument that makes the 1-tree configuration's eager obstacle
// insertion exact.

#ifndef CONN_CORE_WORKSPACE_H_
#define CONN_CORE_WORKSPACE_H_

#include "geom/box.h"
#include "rtree/rstar_tree.h"
#include "vis/dijkstra.h"
#include "vis/settlement_log.h"
#include "vis/vis_graph.h"

namespace conn {
namespace core {

/// Persistent cross-query obstacle state: one visibility graph whose
/// obstacles accumulate for the workspace's lifetime.
class QueryWorkspace {
 public:
  /// Builds a workspace whose grid domain covers both trees (either may be
  /// null) and \p query_cover — the bounding rectangle of every query
  /// segment that will run against it.  With \p differential_repair the
  /// workspace serves the differential tick-repair path: queries read and
  /// publish coverage capsules through settlement_log(), and the batch
  /// layer carries the workspace through reshards by cover overlap.
  QueryWorkspace(const rtree::RStarTree* data_tree,
                 const rtree::RStarTree* obstacle_tree,
                 const geom::Rect& query_cover,
                 bool differential_repair = false);

  QueryWorkspace(const QueryWorkspace&) = delete;
  QueryWorkspace& operator=(const QueryWorkspace&) = delete;

  vis::VisGraph* graph() { return &vg_; }

  /// The pooled Dijkstra scan state every query of this workspace runs on:
  /// epoch-stamped arrays sized once for the shared graph, so consecutive
  /// scans (one per data point per query) start in O(1) instead of paying
  /// a per-scan O(V) initialization.
  vis::ScanArena* scan_arena() { return &scan_arena_; }

  /// Obstacle insertions skipped because a sibling query already fetched
  /// the obstacle — the retrieval work saved by sharing.
  uint64_t ObstacleReuseHits() const { return vg_.DuplicateObstacleSkips(); }

  /// Unique obstacles accumulated so far.
  size_t ObstacleCount() const { return vg_.ObstacleCount(); }

  /// The grid domain the graph was built over (tree bounds + query cover).
  const geom::Rect& domain() const { return domain_; }

  /// True iff \p cover lies inside the built domain — the tick loop's
  /// carry-over check: a workspace stays valid while the (moving) queries
  /// it serves remain inside the domain it was sized for.
  bool Covers(const geom::Rect& cover) const { return domain_.Contains(cover); }

  /// Coverage capsules proven by retrievals that ran against this
  /// workspace's graph (see vis/settlement_log.h) — the shared frontier
  /// the differential-repair path reads and publishes.  Lives and dies
  /// with the graph it describes, so its facts stay sound.
  vis::SettlementLog* settlement_log() { return &settlement_log_; }

  /// True when the workspace was built for the differential-repair path.
  bool differential_repair() const { return differential_repair_; }

 private:
  geom::Rect domain_;
  vis::VisGraph vg_;
  vis::ScanArena scan_arena_;
  vis::SettlementLog settlement_log_;
  bool differential_repair_ = false;
};

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_WORKSPACE_H_
