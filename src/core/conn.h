// CONN query processing — Algorithm 4 of the paper.
//
// Given a data R-tree Tp, an obstacle R-tree To (or one unified tree,
// Section 4.5) and a query segment q, returns the exact obstructed nearest
// neighbor of every point of q as a list of <point, control point,
// interval> tuples.  Data points are consumed in ascending mindist(p, q)
// order (best-first browsing); each one runs IOR (obstacle completion),
// CPLC (control point list) and RLU (result merge); the loop stops at the
// Lemma 2 bound RLMAX.
//
// Degenerate and adversarial inputs are first-class:
//   * zero-length q degrades to an ONN point query;
//   * parts of q inside obstacle interiors are detected up front, reported
//     in ConnResult::unreachable, and excluded from the RLMAX bound;
//   * data points unreachable from q (walled off) never become ONN; if
//     every point is unreachable the tuples keep pid == kNoPoint.

#ifndef CONN_CORE_CONN_H_
#define CONN_CORE_CONN_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "core/options.h"
#include "core/result_list.h"
#include "geom/interval_set.h"
#include "geom/segment.h"
#include "rtree/rstar_tree.h"

namespace conn {
namespace core {

class QueryWorkspace;  // core/workspace.h — reusable cross-query state

/// One tuple of the final CONN result.
struct ConnTuple {
  int64_t point_id = kNoPoint;  ///< ONN over range (kNoPoint: none exists)
  geom::Vec2 control_point;     ///< all shortest paths pass through here
  double offset = 0.0;          ///< ||point, control_point||
  geom::Interval range;         ///< arc-length interval of q
};

/// Complete answer of a CONN query.
struct ConnResult {
  geom::Segment query;
  std::vector<ConnTuple> tuples;   ///< ordered partition of the reachable q
  geom::IntervalSet unreachable;   ///< parts of q inside obstacle interiors
  QueryStats stats;

  /// Obstructed distance from q(t) to its ONN (+infinity if none).
  double OdistAt(double t) const;

  /// ONN id at parameter t (kNoPoint if none / unreachable).
  int64_t OnnAt(double t) const;

  /// Tuples with consecutive ranges of the same point id merged — the
  /// <p, R> view of Definition 6 (control points elided).
  std::vector<std::pair<int64_t, geom::Interval>> MergedByPoint() const;

  /// Split points: interior tuple boundaries where the ONN changes.
  std::vector<double> SplitParams() const;
};

/// CONN with P and O in two separate R-trees (the paper's default).  A
/// non-null \p workspace (batch execution) makes the query reuse that
/// shared obstacle graph instead of building its own.
ConnResult ConnQuery(const rtree::RStarTree& data_tree,
                     const rtree::RStarTree& obstacle_tree,
                     const geom::Segment& q, const ConnOptions& opts = {},
                     QueryWorkspace* workspace = nullptr);

/// CONN with both sets in one unified R-tree (Section 4.5).
ConnResult ConnQuery1T(const rtree::RStarTree& unified_tree,
                       const geom::Segment& q, const ConnOptions& opts = {},
                       QueryWorkspace* workspace = nullptr);

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_CONN_H_
