#include "core/obstructed_range.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"
#include "core/engine_internal.h"
#include "core/odist.h"
#include "rtree/best_first.h"

namespace conn {
namespace core {

ObstructedRangeResult ObstructedRangeQuery(
    const rtree::RStarTree& data_tree, const rtree::RStarTree& obstacle_tree,
    geom::Vec2 query_point, double radius, const ConnOptions& opts) {
  CONN_CHECK_MSG(radius >= 0.0, "range radius must be non-negative");
  Timer timer;
  QueryStats stats;
  internal::PagerDelta data_io(data_tree.pager());
  internal::PagerDelta obstacle_io(obstacle_tree.pager());

  ObstructedRangeResult result;
  result.query = query_point;
  result.radius = radius;

  const geom::Segment q(query_point, query_point);
  const geom::Rect domain =
      internal::WorkspaceBounds(&data_tree, &obstacle_tree, q);
  vis::VisGraph vg(domain, &stats);
  vis::ScanArena arena;
  const vis::VertexId target = vg.AddFixedVertex(query_point);
  TreeObstacleSource obstacle_source(obstacle_tree, q);

  rtree::BestFirstIterator points(data_tree, q);
  double retrieved = 0.0;
  rtree::DataObject obj;
  double dist;
  // Euclidean mindist lower-bounds the obstructed distance, so the stream
  // can stop permanently once it passes the radius.
  while (points.PeekDist() <= radius) {
    if (!points.Next(&obj, &dist)) break;
    CONN_CHECK_MSG(obj.kind == rtree::ObjectKind::kPoint,
                   "data tree contains a non-point entry");
    ++stats.points_evaluated;
    const double od = IncrementalObstacleRetrieval(
        &obstacle_source, &vg, {target}, obj.AsPoint(), &retrieved, &stats,
        /*out_scan=*/nullptr, &arena, opts.use_warm_scan_restarts);
    if (od <= radius) {
      result.members.push_back({static_cast<int64_t>(obj.id), od});
    }
  }
  std::sort(result.members.begin(), result.members.end(),
            [](const OnnNeighbor& a, const OnnNeighbor& b) {
              if (a.odist != b.odist) return a.odist < b.odist;
              return a.pid < b.pid;
            });

  stats.vis_graph_vertices = vg.VertexCount();
  stats.data_page_reads = data_io.faults();
  stats.obstacle_page_reads = obstacle_io.faults();
  stats.buffer_hits = data_io.hits() + obstacle_io.hits();
  internal::AddPrefetchStats(data_io, &stats);
  internal::AddPrefetchStats(obstacle_io, &stats);
  stats.cpu_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  return result;
}

}  // namespace core
}  // namespace conn
