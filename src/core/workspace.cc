#include "core/workspace.h"

#include "core/engine_internal.h"

namespace conn {
namespace core {

QueryWorkspace::QueryWorkspace(const rtree::RStarTree* data_tree,
                               const rtree::RStarTree* obstacle_tree,
                               const geom::Rect& query_cover,
                               bool differential_repair)
    : domain_(
          internal::WorkspaceBounds(data_tree, obstacle_tree, query_cover)),
      vg_(domain_, /*stats=*/nullptr),
      differential_repair_(differential_repair) {
  // Repair-mode workspaces keep eager adjacency: measured on bench_ticks,
  // vis::VisGraph's deferred (patch-only) mode trades the per-insertion
  // corner sweeps for per-touch patches at roughly break-even pair count,
  // and its bookkeeping overhead loses ~15% warm qps at smoke scale.  The
  // repair win comes from the settlement log and the reshard adoption
  // path, both orthogonal to adjacency maintenance.
}

}  // namespace core
}  // namespace conn
