#include "core/workspace.h"

#include "core/engine_internal.h"

namespace conn {
namespace core {

QueryWorkspace::QueryWorkspace(const rtree::RStarTree* data_tree,
                               const rtree::RStarTree* obstacle_tree,
                               const geom::Rect& query_cover)
    : domain_(
          internal::WorkspaceBounds(data_tree, obstacle_tree, query_cover)),
      vg_(domain_, /*stats=*/nullptr) {}

}  // namespace core
}  // namespace conn
