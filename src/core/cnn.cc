#include "core/cnn.h"

#include <limits>

#include "common/check.h"
#include "common/timer.h"
#include "core/engine_internal.h"
#include "rtree/best_first.h"

namespace conn {
namespace core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ConnResult CnnQuery(const rtree::RStarTree& data_tree, const geom::Segment& q,
                    const ConnOptions& opts) {
  Timer timer;
  QueryStats stats;
  internal::PagerDelta data_io(data_tree.pager());

  ConnResult result;
  result.query = q;
  const geom::SegmentFrame frame(q);
  const geom::IntervalSet reachable{geom::Interval(0.0, q.Length())};

  ResultList rl(reachable);
  rtree::BestFirstIterator points(data_tree, q);
  rtree::DataObject obj;
  double dist = 0.0;
  while (true) {
    const double peek = points.PeekDist();
    if (peek == kInf) break;
    if (opts.use_rlmax_terminate && peek > rl.RlMax(frame)) {
      ++stats.lemma2_terminations;
      break;
    }
    CONN_CHECK(points.Next(&obj, &dist));
    CONN_CHECK_MSG(obj.kind == rtree::ObjectKind::kPoint,
                   "data tree contains a non-point entry");
    ++stats.points_evaluated;
    // Obstacle-free space: p is its own control point over all of q.
    ControlPointList cpl = {CplEntry{true, obj.AsPoint(), 0.0,
                                     geom::Interval(0.0, q.Length())}};
    rl.Update(static_cast<int64_t>(obj.id), cpl, frame, opts, &stats);
  }
  for (const RlEntry& e : rl.entries()) {
    result.tuples.push_back(
        ConnTuple{e.pid, e.cp, e.offset, e.range});
  }

  stats.data_page_reads = data_io.faults();
  stats.buffer_hits = data_io.hits();
  internal::AddPrefetchStats(data_io, &stats);
  stats.cpu_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  return result;
}

}  // namespace core
}  // namespace conn
