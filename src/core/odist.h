// Incremental Obstacle Retrieval (IOR) — Algorithm 1 of the paper — and the
// obstacle-provisioning streams it consumes.
//
// IOR guarantees (Theorem 2 + Lemmas 3/4) that after it returns, the local
// visibility graph contains every obstacle that can affect the obstructed
// distance from the data point p to any point of the query segment, and
// that the shortest-path distances from p to the segment's endpoint
// vertices computed on the local graph equal the true obstructed distances.
//
// Obstacles arrive in ascending order of their minimum Euclidean distance
// to the query segment, either from a dedicated obstacle R-tree (2-tree
// configuration) or interleaved with data points from one unified R-tree
// (1-tree configuration, Section 4.5) — the ObstacleSource interface hides
// the difference.

#ifndef CONN_CORE_ODIST_H_
#define CONN_CORE_ODIST_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "rtree/best_first.h"
#include "vis/dijkstra.h"
#include "vis/settlement_log.h"
#include "vis/vis_graph.h"

namespace conn {
namespace core {

/// Why a bounded stream pop did (or did not) yield an object.  The main
/// query loops must distinguish kBoundReached (Lemma 2 actually pruned
/// remaining points) from kExhausted (the iterator simply ran dry) to keep
/// the lemma2_terminations statistic honest.
enum class StreamOutcome {
  kYielded,       ///< an object was produced
  kBoundReached,  ///< objects remain, but all lie beyond the bound
  kExhausted,     ///< the underlying stream has no objects left
};

/// Ascending-mindist stream of obstacles.
class ObstacleSource {
 public:
  virtual ~ObstacleSource() = default;

  /// Pops the next obstacle whose mindist to the query segment is <= bound.
  /// Returns false — without advancing past the bound — when none remains
  /// within it.
  virtual bool NextObstacleWithin(double bound, rtree::DataObject* out,
                                  double* dist) = 0;
};

/// 2-tree configuration: obstacles stream from their own R-tree.
class TreeObstacleSource : public ObstacleSource {
 public:
  TreeObstacleSource(const rtree::RStarTree& obstacle_tree,
                     const geom::Segment& q)
      : it_(obstacle_tree, q) {}

  bool NextObstacleWithin(double bound, rtree::DataObject* out,
                          double* dist) override;

 private:
  rtree::BestFirstIterator it_;
};

/// 1-tree configuration (Section 4.5): both sets share one R-tree.  Popped
/// obstacles are inserted into the visibility graph immediately (as in the
/// paper); popped data points are buffered for the main loop, preserving
/// their ascending-distance order.
class UnifiedStream : public ObstacleSource {
 public:
  UnifiedStream(const rtree::RStarTree& unified_tree, const geom::Segment& q,
                vis::VisGraph* vg)
      : it_(unified_tree, q), vg_(vg) {}

  // --- ObstacleSource (used by IOR) ---
  bool NextObstacleWithin(double bound, rtree::DataObject* out,
                          double* dist) override;

  /// Distance of the next unprocessed data point (buffered or upstream);
  /// +infinity when the stream is exhausted.  Does not advance the
  /// underlying iterator.
  double PeekPointDistHint() const;

  /// Pops the next data point with distance <= bound.  Obstacles
  /// encountered on the way enter the visibility graph.  kBoundReached
  /// means entries remain beyond the bound — RLMAX genuinely cut the
  /// unified traversal short (they may be obstacles rather than points;
  /// telling those apart would cost the very I/O the bound saves);
  /// kExhausted means the stream ran dry.  The distinction drives Lemma-2
  /// stat accounting.
  StreamOutcome NextPointWithin(double bound, rtree::DataObject* out,
                                double* dist);

  /// Largest distance of any object popped from the underlying stream so
  /// far: every obstacle with mindist below this is already in the graph.
  double retrieved_up_to() const { return retrieved_up_to_; }

 private:
  rtree::BestFirstIterator it_;
  vis::VisGraph* vg_;
  std::deque<std::pair<rtree::DataObject, double>> pending_points_;
  double retrieved_up_to_ = 0.0;
};

/// Settlement-log coverage guard (differential tick repair): decorates an
/// obstacle source so that a retrieval wave whose bound a published
/// capsule covers is answered "none remains within the bound" without
/// touching the inner stream.  That answer is literally true of the *new*
/// obstacles IOR is looking for — the capsule proves every obstacle within
/// the bound is already in the graph — so IOR takes the same no-new-work
/// exit it takes when the stream yields only duplicates, and the inner
/// cursor never advances past anything it would later need.  Exactness is
/// the shard-sharing superset argument: the graph holds a superset of the
/// wave's Theorem-2 obstacle set either way.
class CoverageGuardedSource : public ObstacleSource {
 public:
  /// \p log may be null (guard disabled; pure pass-through).  \p client_tag
  /// identifies the querying client: a covered wave whose proving capsule
  /// was published by a *different* client counts one frontier_shares.
  CoverageGuardedSource(ObstacleSource* inner, const vis::SettlementLog* log,
                        const geom::Segment& q, int64_t client_tag,
                        QueryStats* stats)
      : inner_(inner),
        log_(log),
        query_(q),
        client_tag_(client_tag),
        stats_(stats) {}

  bool NextObstacleWithin(double bound, rtree::DataObject* out,
                          double* dist) override;

  /// Obstacles the inner source actually yielded through this guard — the
  /// caller diffs it across a retrieval to classify carried vs re-scored.
  uint64_t yields() const { return yields_; }

 private:
  ObstacleSource* inner_;
  const vis::SettlementLog* log_;
  geom::Segment query_;
  int64_t client_tag_;
  QueryStats* stats_;
  uint64_t yields_ = 0;
  // Per-wave coverage memo: IOR drains one wave with a fixed bound, so the
  // (linear-probe) capsule test runs once per wave, not once per obstacle.
  double memo_bound_ = -1.0;
  bool memo_covered_ = false;
};

/// Runs IOR (Algorithm 1) for data point \p p: repeatedly computes local
/// shortest paths from p to the \p targets vertices, fetches every obstacle
/// with mindist(o, q) within the current path bound, and iterates until the
/// bound stabilizes (Lemma 3).  \p retrieved_up_to carries the "previous
/// search distance d" across data points so the obstacle set O is consumed
/// at most once per query.
///
/// Returns the (now exact) maximum obstructed distance from p to the
/// targets — +infinity when some target is unreachable (in which case the
/// entire source has been drained, so the local graph is complete and all
/// later computations remain correct).
///
/// When \p out_scan is non-null it receives the final Dijkstra scan from p
/// (valid for the now-stable obstacle set) so CPLC can continue it instead
/// of re-seeding — the scan's settlement log already covers the search
/// range of Theorem 2.
///
/// \p arena (optional) backs the scan with pooled epoch-stamped state; a
/// query (or a batch shard) passes one arena so consecutive scans skip the
/// per-scan O(V) initialization.  With \p warm_restarts (the default) an
/// obstacle wave revalidates and extends the previous scan
/// (DijkstraScan::Revalidate) instead of recomputing it from scratch;
/// disabling it forces the paper-literal fresh scan per Lemma-3 iteration
/// — the reference path the equivalence suite compares against.
double IncrementalObstacleRetrieval(
    ObstacleSource* source, vis::VisGraph* vg,
    const std::vector<vis::VertexId>& targets, geom::Vec2 p,
    double* retrieved_up_to, QueryStats* stats,
    std::unique_ptr<vis::DijkstraScan>* out_scan = nullptr,
    vis::ScanArena* arena = nullptr, bool warm_restarts = true);

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_ODIST_H_
