// Options controlling CONN / COkNN query processing.  The lemma toggles
// exist for the pruning ablation study (bench/ablation_pruning); production
// callers keep the defaults (everything on).

#ifndef CONN_CORE_OPTIONS_H_
#define CONN_CORE_OPTIONS_H_

namespace conn {
namespace core {

/// Knobs for the CONN family of queries.
struct ConnOptions {
  /// Lemma 1 endpoint-dominance fast path inside RLU / CPLC updates.
  bool use_lemma1_prune = true;

  /// Lemma 6 triangle refinement of candidate control-point regions.
  bool use_lemma6_refine = true;

  /// Lemma 7 CPLMAX termination of the CPLC Dijkstra traversal.
  bool use_lemma7_terminate = true;

  /// Lemma 2 RLMAX termination of the main data-point loop.  Disabling
  /// forces evaluation of every data point (for the ablation only).
  bool use_rlmax_terminate = true;

  /// Warm IOR restarts: an obstacle wave revalidates and extends the
  /// previous Dijkstra scan (rolling back only the settlement suffix the
  /// new obstacles can reach) instead of recomputing it from scratch.
  /// Results are bit-identical either way; disabling selects the
  /// paper-literal fresh-scan-per-Lemma-3-iteration reference path that
  /// the scan-arena equivalence suite compares against.
  bool use_warm_scan_restarts = true;

  /// Cross-tick warm starts for moving-query subscriptions: successive
  /// ticks of one client reuse the prior tick's workspace (obstacle graph
  /// + scan arena) and short-circuit ticks whose query segment did not
  /// move (CoknnQueryTick's prior-result memo).  Results are bit-identical
  /// either way — reused graphs only ever hold a *superset* of the query's
  /// Theorem-2 obstacle set, the same exactness argument as batch
  /// workspace sharing; disabling selects the fresh evaluate-every-tick
  /// reference path the subscription equivalence suite compares against.
  bool use_tick_warm_start = true;

  /// Differential tick repair on top of the cross-tick warm path: carried
  /// workspaces switch to patch-only adjacency maintenance (obstacle
  /// insertion defers per-vertex visibility work until a scan actually
  /// touches the vertex) and keep a per-shard settlement log of coverage
  /// capsules — one entry per completed retrieval asserting "every
  /// obstacle within radius r of segment s is already in this graph".  A
  /// later query (the same client's next tick, or a clustered sibling's)
  /// whose Theorem-2 search range a capsule covers skips the obstacle
  /// stream entirely; only boundary points whose range escapes coverage
  /// re-score against the tree.  Results are bit-identical either way:
  /// scans depend only on the graph's edge *sets* at use time (the heap
  /// tie-breaks on (dist, vertex)), and a covered wave has the same
  /// postcondition as streaming duplicates.  Requires
  /// use_tick_warm_start; off selects the PR 8 warm path unchanged.
  bool use_differential_repair = false;

  /// Resolution of the local obstacle grid (cells per side).
  int grid_cells_per_side = 64;
};

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_OPTIONS_H_
