#include "core/result_list.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "geom/split.h"

namespace conn {
namespace core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ResultList::ResultList(const geom::IntervalSet& domain) {
  for (const geom::Interval& piece : domain.intervals()) {
    RlEntry e;
    e.range = piece;
    entries_.push_back(e);
  }
}

double ResultList::RlMax(const geom::SegmentFrame& frame) const {
  double max_val = 0.0;
  for (const RlEntry& e : entries_) {
    if (!e.has_value()) return kInf;
    const geom::DistanceCurve c = e.Curve(frame);
    max_val = std::max({max_val, c.Eval(e.range.lo), c.Eval(e.range.hi)});
  }
  return max_val;
}

void ResultList::MergeAdjacent() {
  std::vector<RlEntry> merged;
  for (const RlEntry& e : entries_) {
    if (!merged.empty()) {
      RlEntry& prev = merged.back();
      const bool adjacent =
          std::abs(prev.range.hi - e.range.lo) <= geom::kEpsParam;
      const bool same =
          prev.pid == e.pid &&
          (!e.has_value() || (prev.cp == e.cp && prev.offset == e.offset));
      if (adjacent && same) {
        prev.range.hi = e.range.hi;
        continue;
      }
      // Absorb boundary slivers (see kEpsSliver): an eps-sized leftover —
      // typically value-less — must not survive, or RLMAX stays infinite.
      if (adjacent && e.range.Length() <= geom::kEpsSliver &&
          prev.has_value()) {
        prev.range.hi = e.range.hi;
        continue;
      }
      if (adjacent && prev.range.Length() <= geom::kEpsSliver &&
          e.has_value()) {
        RlEntry grown = e;
        grown.range.lo = prev.range.lo;
        prev = grown;
        continue;
      }
    }
    merged.push_back(e);
  }
  entries_ = std::move(merged);
}

void ResultList::AssignCandidate(int64_t pid, geom::Vec2 cp, double offset,
                                 const geom::IntervalSet& regions,
                                 const geom::SegmentFrame& frame,
                                 const ConnOptions& opts, QueryStats* stats) {
  if (regions.IsEmpty()) return;
  const geom::DistanceCurve challenger =
      geom::DistanceCurve::FromControlPoint(frame, cp, offset);

  std::vector<RlEntry> next;
  next.reserve(entries_.size() + 2);
  for (const RlEntry& entry : entries_) {
    const geom::IntervalSet contested = regions.Intersect(entry.range);
    if (contested.IsEmpty()) {
      next.push_back(entry);
      continue;
    }
    double cursor = entry.range.lo;
    auto push_kept = [&](double lo, double hi) {
      if (hi - lo <= geom::kEpsParam) return;
      RlEntry kept = entry;
      kept.range = geom::Interval(lo, hi);
      next.push_back(kept);
    };
    for (const geom::Interval& piece : contested.intervals()) {
      push_kept(cursor, piece.lo);
      cursor = std::max(cursor, piece.hi);
      const geom::Interval sub(std::max(piece.lo, entry.range.lo),
                               std::min(piece.hi, entry.range.hi));
      if (sub.Length() <= geom::kEpsParam) continue;
      if (!entry.has_value()) {
        RlEntry taken;
        taken.pid = pid;
        taken.cp = cp;
        taken.offset = offset;
        taken.range = sub;
        next.push_back(taken);
        continue;
      }
      const geom::DistanceCurve incumbent = entry.Curve(frame);
      // Algorithm 3 line 7 (Lemma 1): incumbent keeps the whole interval if
      // it dominates the challenger at both endpoints (with the
      // perpendicular-distance soundness condition of split.h).
      if (opts.use_lemma1_prune &&
          geom::EndpointDominancePrune(incumbent, challenger, sub)) {
        if (stats != nullptr) ++stats->lemma1_prunes;
        RlEntry kept = entry;
        kept.range = sub;
        next.push_back(kept);
        continue;
      }
      if (stats != nullptr) ++stats->split_evaluations;
      for (const geom::LabeledInterval& li :
           geom::CompareCurves(incumbent, challenger, sub)) {
        RlEntry piece_entry = entry;
        if (li.winner == geom::CurveWinner::kChallenger) {
          piece_entry.pid = pid;
          piece_entry.cp = cp;
          piece_entry.offset = offset;
        }
        piece_entry.range = li.interval;
        next.push_back(piece_entry);
      }
    }
    push_kept(cursor, entry.range.hi);
  }
  entries_ = std::move(next);
  MergeAdjacent();
}

void ResultList::Update(int64_t pid, const ControlPointList& cpl,
                        const geom::SegmentFrame& frame,
                        const ConnOptions& opts, QueryStats* stats) {
  for (const CplEntry& ce : cpl) {
    if (!ce.has_cp) continue;  // p cannot reach this interval at all
    AssignCandidate(pid, ce.cp, ce.offset, geom::IntervalSet(ce.range), frame,
                    opts, stats);
  }
}

double ResultList::OdistAt(double t, const geom::SegmentFrame& frame) const {
  for (const RlEntry& e : entries_) {
    if (e.range.ContainsApprox(t)) {
      if (!e.has_value()) return kInf;
      return e.Curve(frame).Eval(t);
    }
  }
  return kInf;
}

int64_t ResultList::OnnAt(double t) const {
  for (const RlEntry& e : entries_) {
    if (e.range.ContainsApprox(t)) return e.pid;
  }
  return kNoPoint;
}

}  // namespace core
}  // namespace conn
