#include "core/obstructed_join.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>

#include "common/check.h"
#include "common/timer.h"
#include "core/engine_internal.h"
#include "core/odist.h"
#include "core/onn.h"
#include "rtree/pair_join.h"

namespace conn {
namespace core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Obstructed-distance evaluation context anchored at one left object:
/// a local visibility graph around a (the degenerate segment [a, a]) whose
/// obstacle set grows across all right partners of a (IOR reuse).
struct LeftContext {
  std::unique_ptr<vis::VisGraph> vg;
  std::unique_ptr<vis::ScanArena> arena;
  std::unique_ptr<TreeObstacleSource> source;
  vis::VertexId target = 0;
  double retrieved = 0.0;
};

class PairOdistEvaluator {
 public:
  PairOdistEvaluator(const rtree::RStarTree& tree_a,
                     const rtree::RStarTree& tree_b,
                     const rtree::RStarTree& obstacle_tree, QueryStats* stats)
      : tree_a_(tree_a),
        tree_b_(tree_b),
        obstacle_tree_(obstacle_tree),
        stats_(stats) {}

  double Odist(const rtree::DataObject& a, const rtree::DataObject& b) {
    LeftContext& ctx = ContextFor(a);
    return IncrementalObstacleRetrieval(ctx.source.get(), ctx.vg.get(),
                                        {ctx.target}, b.AsPoint(),
                                        &ctx.retrieved, stats_,
                                        /*out_scan=*/nullptr, ctx.arena.get());
  }

 private:
  LeftContext& ContextFor(const rtree::DataObject& a) {
    auto it = contexts_.find(static_cast<int64_t>(a.id));
    if (it != contexts_.end()) return it->second;
    const geom::Vec2 pos = a.AsPoint();
    const geom::Segment q(pos, pos);
    LeftContext ctx;
    ctx.vg = std::make_unique<vis::VisGraph>(
        internal::WorkspaceBounds(&tree_a_, &obstacle_tree_, q)
            .ExpandedToCover(tree_b_.Bounds()),
        stats_);
    ctx.arena = std::make_unique<vis::ScanArena>();
    ctx.target = ctx.vg->AddFixedVertex(pos);
    ctx.source = std::make_unique<TreeObstacleSource>(obstacle_tree_, q);
    return contexts_.emplace(static_cast<int64_t>(a.id), std::move(ctx))
        .first->second;
  }

  const rtree::RStarTree& tree_a_;
  const rtree::RStarTree& tree_b_;
  const rtree::RStarTree& obstacle_tree_;
  QueryStats* stats_;
  std::map<int64_t, LeftContext> contexts_;
};

void FinishStats(const internal::PagerDelta& a_io,
                 const internal::PagerDelta& b_io,
                 const internal::PagerDelta& o_io, const Timer& timer,
                 JoinResult* result) {
  result->stats.data_page_reads = a_io.faults() + b_io.faults();
  result->stats.obstacle_page_reads = o_io.faults();
  result->stats.buffer_hits = a_io.hits() + b_io.hits() + o_io.hits();
  internal::AddPrefetchStats(a_io, &result->stats);
  internal::AddPrefetchStats(b_io, &result->stats);
  internal::AddPrefetchStats(o_io, &result->stats);
  result->stats.cpu_seconds = timer.ElapsedSeconds();
}

}  // namespace

JoinResult ObstructedEDistanceJoin(const rtree::RStarTree& tree_a,
                                   const rtree::RStarTree& tree_b,
                                   const rtree::RStarTree& obstacle_tree,
                                   double e, const ConnOptions& opts) {
  (void)opts;
  CONN_CHECK_MSG(e >= 0.0, "join radius must be non-negative");
  Timer timer;
  JoinResult result;
  internal::PagerDelta a_io(tree_a.pager()), b_io(tree_b.pager()),
      o_io(obstacle_tree.pager());

  PairOdistEvaluator eval(tree_a, tree_b, obstacle_tree, &result.stats);
  rtree::PairDistanceJoin pairs(tree_a, tree_b);
  rtree::DataObject a, b;
  double euclid;
  // Euclidean pair distance lower-bounds obstructed pair distance: pairs
  // beyond e can never join.
  while (pairs.PeekDist() <= e) {
    if (!pairs.Next(&a, &b, &euclid)) break;
    ++result.stats.points_evaluated;
    const double od = eval.Odist(a, b);
    if (od <= e) {
      result.pairs.push_back({static_cast<int64_t>(a.id),
                              static_cast<int64_t>(b.id), od});
    }
  }
  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const JoinPair& x, const JoinPair& y) {
              if (x.odist != y.odist) return x.odist < y.odist;
              if (x.a_pid != y.a_pid) return x.a_pid < y.a_pid;
              return x.b_pid < y.b_pid;
            });
  FinishStats(a_io, b_io, o_io, timer, &result);
  return result;
}

JoinResult ObstructedClosestPairs(const rtree::RStarTree& tree_a,
                                  const rtree::RStarTree& tree_b,
                                  const rtree::RStarTree& obstacle_tree,
                                  size_t k, const ConnOptions& opts) {
  (void)opts;
  CONN_CHECK_MSG(k >= 1, "closest pairs requires k >= 1");
  Timer timer;
  JoinResult result;
  internal::PagerDelta a_io(tree_a.pager()), b_io(tree_b.pager()),
      o_io(obstacle_tree.pager());

  PairOdistEvaluator eval(tree_a, tree_b, obstacle_tree, &result.stats);
  rtree::PairDistanceJoin pairs(tree_a, tree_b);
  auto kth_bound = [&]() {
    return result.pairs.size() < k ? kInf : result.pairs.back().odist;
  };
  rtree::DataObject a, b;
  double euclid;
  while (pairs.PeekDist() < kth_bound()) {
    if (!pairs.Next(&a, &b, &euclid)) break;
    ++result.stats.points_evaluated;
    const double od = eval.Odist(a, b);
    if (od >= kth_bound()) continue;  // also skips unreachable (inf) pairs
    result.pairs.push_back(
        {static_cast<int64_t>(a.id), static_cast<int64_t>(b.id), od});
    std::sort(result.pairs.begin(), result.pairs.end(),
              [](const JoinPair& x, const JoinPair& y) {
                if (x.odist != y.odist) return x.odist < y.odist;
                if (x.a_pid != y.a_pid) return x.a_pid < y.a_pid;
                return x.b_pid < y.b_pid;
              });
    if (result.pairs.size() > k) result.pairs.pop_back();
  }
  FinishStats(a_io, b_io, o_io, timer, &result);
  return result;
}

JoinResult ObstructedSemiJoin(const rtree::RStarTree& tree_a,
                              const rtree::RStarTree& tree_b,
                              const rtree::RStarTree& obstacle_tree,
                              const ConnOptions& opts) {
  Timer timer;
  JoinResult result;
  internal::PagerDelta a_io(tree_a.pager()), b_io(tree_b.pager()),
      o_io(obstacle_tree.pager());

  std::vector<rtree::DataObject> lefts;
  CONN_CHECK(tree_a.RangeQuery(tree_a.Bounds(), &lefts).ok());
  std::sort(lefts.begin(), lefts.end(),
            [](const rtree::DataObject& x, const rtree::DataObject& y) {
              return x.id < y.id;
            });
  for (const rtree::DataObject& a : lefts) {
    const OnnResult onn =
        OnnQuery(tree_b, obstacle_tree, a.AsPoint(), 1, opts);
    result.stats += onn.stats;
    if (!onn.neighbors.empty()) {
      result.pairs.push_back({static_cast<int64_t>(a.id),
                              onn.neighbors[0].pid,
                              onn.neighbors[0].odist});
    }
  }
  FinishStats(a_io, b_io, o_io, timer, &result);
  return result;
}

}  // namespace core
}  // namespace conn
