// Obstacle-aware join queries — the remainder of the query family of
// Zhang et al. (EDBT 2004, reference [31] of the paper): e-distance joins,
// (k-)closest pairs, and distance semi-joins, all under obstructed
// distance.
//
// All three ride on the incremental Euclidean pair join (rtree/pair_join):
// the Euclidean pair distance lower-bounds the obstructed pair distance,
// so the pair stream can be cut at the join radius (e-join) or at the
// current k-th best (closest pairs).  Exact obstructed distances come from
// IOR over per-left-object local visibility graphs that are reused across
// all right-side partners of the same left object.

#ifndef CONN_CORE_OBSTRUCTED_JOIN_H_
#define CONN_CORE_OBSTRUCTED_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "core/options.h"
#include "rtree/rstar_tree.h"

namespace conn {
namespace core {

/// One joined pair.
struct JoinPair {
  int64_t a_pid = -1;
  int64_t b_pid = -1;
  double odist = 0.0;
};

/// Answer of an obstructed join; pairs sorted by obstructed distance.
struct JoinResult {
  std::vector<JoinPair> pairs;
  QueryStats stats;
};

/// e-distance join: all pairs (a, b) in A x B with odist(a, b) <= e.
JoinResult ObstructedEDistanceJoin(const rtree::RStarTree& tree_a,
                                   const rtree::RStarTree& tree_b,
                                   const rtree::RStarTree& obstacle_tree,
                                   double e, const ConnOptions& opts = {});

/// k closest pairs of A x B by obstructed distance (fewer if reachable
/// pairs run out).
JoinResult ObstructedClosestPairs(const rtree::RStarTree& tree_a,
                                  const rtree::RStarTree& tree_b,
                                  const rtree::RStarTree& obstacle_tree,
                                  size_t k, const ConnOptions& opts = {});

/// Distance semi-join: for every a in A, its obstructed nearest neighbor
/// in B (pairs ordered by a's id; unreachable a's omitted).
JoinResult ObstructedSemiJoin(const rtree::RStarTree& tree_a,
                              const rtree::RStarTree& tree_b,
                              const rtree::RStarTree& obstacle_tree,
                              const ConnOptions& opts = {});

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_OBSTRUCTED_JOIN_H_
