#include "core/naive.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace conn {
namespace core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

NaiveOracle::NaiveOracle(std::vector<geom::Vec2> points,
                         std::vector<geom::Rect> obstacles)
    : points_(std::move(points)),
      obstacles_(obstacles),
      graph_(std::move(obstacles)) {
  point_vertex_.reserve(points_.size());
  for (const geom::Vec2& p : points_) {
    point_vertex_.push_back(graph_.AddPoint(p));
  }
  graph_.Build();
}

std::vector<double> NaiveOracle::DistancesFromLocation(geom::Vec2 s) const {
  return graph_.DistancesFromLocation(s);
}

double NaiveOracle::Odist(geom::Vec2 a, geom::Vec2 b) const {
  if (graph_.Visible(a, b)) return geom::Dist(a, b);
  const std::vector<double> da = DistancesFromLocation(a);
  double best = kInf;
  for (vis::VertexId v = 0; v < graph_.VertexCount(); ++v) {
    if (da[v] == kInf) continue;
    const geom::Vec2 vp = graph_.VertexPos(v);
    if (graph_.Visible(vp, b)) {
      best = std::min(best, da[v] + geom::Dist(vp, b));
    }
  }
  return best;
}

double NaiveOracle::OdistToPoint(geom::Vec2 s, size_t pid) const {
  CONN_CHECK(pid < points_.size());
  return DistancesFromLocation(s)[point_vertex_[pid]];
}

std::vector<double> NaiveOracle::OdistToAllPoints(geom::Vec2 s) const {
  const std::vector<double> dist = DistancesFromLocation(s);
  std::vector<double> out;
  out.reserve(points_.size());
  for (vis::VertexId v : point_vertex_) out.push_back(dist[v]);
  return out;
}

std::vector<std::pair<int64_t, double>> NaiveOracle::OnnAt(geom::Vec2 s,
                                                           size_t k) const {
  const std::vector<double> dist = OdistToAllPoints(s);
  std::vector<std::pair<int64_t, double>> ranked;
  ranked.reserve(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    if (dist[i] < kInf) ranked.emplace_back(static_cast<int64_t>(i), dist[i]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace core
}  // namespace conn
