#include "core/coknn.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/timer.h"
#include "core/engine_internal.h"
#include "core/odist.h"
#include "core/workspace.h"
#include "rtree/best_first.h"

namespace conn {
namespace core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

KnnResultList::KnnResultList(const geom::IntervalSet& domain, size_t k)
    : k_(k) {
  CONN_CHECK_MSG(k >= 1, "COkNN requires k >= 1");
  for (const geom::Interval& piece : domain.intervals()) {
    tuples_.push_back(CoknnTuple{piece, {}});
  }
}

double KnnResultList::RlMax(const geom::SegmentFrame& frame) const {
  double max_val = 0.0;
  for (const CoknnTuple& t : tuples_) {
    if (t.candidates.size() < k_) return kInf;
    for (const KnnCandidate& c : t.candidates) {
      const geom::DistanceCurve curve = c.Curve(frame);
      max_val =
          std::max({max_val, curve.Eval(t.range.lo), curve.Eval(t.range.hi)});
    }
  }
  return max_val;
}

void KnnResultList::MergeAdjacent(const geom::SegmentFrame& frame) {
  std::vector<CoknnTuple> merged;
  for (CoknnTuple& t : tuples_) {
    if (!merged.empty()) {
      CoknnTuple& prev = merged.back();
      const bool adjacent =
          std::abs(prev.range.hi - t.range.lo) <= geom::kEpsParam;
      // Absorb boundary slivers into the better-filled neighbor (an
      // eps-sized underfull leftover would pin RLMAX at +infinity).
      if (adjacent && t.range.Length() <= geom::kEpsSliver &&
          prev.candidates.size() >= t.candidates.size()) {
        prev.range.hi = t.range.hi;
        continue;
      }
      if (adjacent && prev.range.Length() <= geom::kEpsSliver &&
          t.candidates.size() >= prev.candidates.size()) {
        t.range.lo = prev.range.lo;
        prev = std::move(t);
        continue;
      }
      bool same_set = adjacent && prev.candidates.size() == t.candidates.size();
      if (same_set) {
        // Same candidate multiset (pid + control point + offset)?
        for (const KnnCandidate& c : t.candidates) {
          const bool found = std::any_of(
              prev.candidates.begin(), prev.candidates.end(),
              [&](const KnnCandidate& pc) {
                return pc.pid == c.pid && pc.cp == c.cp &&
                       pc.offset == c.offset;
              });
          if (!found) {
            same_set = false;
            break;
          }
        }
      }
      if (same_set) {
        prev.range.hi = t.range.hi;
        // Re-sort by distance at the merged midpoint for a canonical order.
        const double mid = prev.range.Mid();
        std::sort(prev.candidates.begin(), prev.candidates.end(),
                  [&](const KnnCandidate& a, const KnnCandidate& b) {
                    return a.Curve(frame).Eval(mid) <
                           b.Curve(frame).Eval(mid);
                  });
        continue;
      }
    }
    merged.push_back(std::move(t));
  }
  tuples_ = std::move(merged);
}

void KnnResultList::AssignCandidate(const KnnCandidate& cand,
                                    const geom::Interval& region,
                                    const geom::SegmentFrame& frame,
                                    QueryStats* stats) {
  if (region.Length() <= geom::kEpsParam) return;
  const geom::DistanceCurve challenger = cand.Curve(frame);

  std::vector<CoknnTuple> next;
  next.reserve(tuples_.size() + 2);
  for (CoknnTuple& tuple : tuples_) {
    const geom::Interval overlap = tuple.range.Intersect(region);
    if (overlap.Length() <= geom::kEpsParam) {
      next.push_back(std::move(tuple));
      continue;
    }
    // Leading kept piece.
    if (overlap.lo - tuple.range.lo > geom::kEpsParam) {
      next.push_back(CoknnTuple{geom::Interval(tuple.range.lo, overlap.lo),
                                tuple.candidates});
    }

    // Contested piece: split at every curve crossing that can change set
    // membership — challenger vs members AND members vs members (the
    // "worst member" can swap inside the interval).
    std::vector<double> breaks = {overlap.lo, overlap.hi};
    std::vector<geom::DistanceCurve> curves;
    curves.reserve(tuple.candidates.size());
    for (const KnnCandidate& c : tuple.candidates) {
      curves.push_back(c.Curve(frame));
    }
    if (stats != nullptr) ++stats->split_evaluations;
    for (size_t i = 0; i < curves.size(); ++i) {
      for (double x : geom::CurveCrossings(curves[i], challenger, overlap)) {
        breaks.push_back(x);
      }
      for (size_t j = i + 1; j < curves.size(); ++j) {
        for (double x : geom::CurveCrossings(curves[i], curves[j], overlap)) {
          breaks.push_back(x);
        }
      }
    }
    std::sort(breaks.begin(), breaks.end());
    breaks.erase(std::unique(breaks.begin(), breaks.end(),
                             [](double a, double b) {
                               return std::abs(a - b) <= geom::kEpsParam;
                             }),
                 breaks.end());
    // The eps-tolerant unique pass keeps the first of a near-duplicate run,
    // so a crossing within kEpsParam of overlap.hi swallows the terminal
    // break.  Clamp the surviving break onto overlap.hi instead of
    // re-appending it, which would create an eps-sliver interval.
    if (overlap.hi - breaks.back() > geom::kEpsParam) {
      breaks.push_back(overlap.hi);
    } else {
      breaks.back() = overlap.hi;
    }

    for (size_t i = 0; i + 1 < breaks.size(); ++i) {
      const geom::Interval piece(breaks[i], breaks[i + 1]);
      const double mid = piece.Mid();
      // Rank candidates + challenger at the midpoint; keep the k nearest.
      std::vector<std::pair<double, const KnnCandidate*>> ranked;
      ranked.reserve(tuple.candidates.size() + 1);
      for (size_t c = 0; c < tuple.candidates.size(); ++c) {
        ranked.emplace_back(curves[c].Eval(mid), &tuple.candidates[c]);
      }
      ranked.emplace_back(challenger.Eval(mid), &cand);
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first < b.first;
                  return a.second->pid < b.second->pid;  // deterministic ties
                });
      CoknnTuple out;
      out.range = piece;
      const size_t keep = std::min(k_, ranked.size());
      for (size_t c = 0; c < keep; ++c) {
        out.candidates.push_back(*ranked[c].second);
      }
      next.push_back(std::move(out));
    }

    // Trailing kept piece.
    if (tuple.range.hi - overlap.hi > geom::kEpsParam) {
      next.push_back(CoknnTuple{geom::Interval(overlap.hi, tuple.range.hi),
                                std::move(tuple.candidates)});
    }
  }
  tuples_ = std::move(next);
  MergeAdjacent(frame);
}

void KnnResultList::Update(int64_t pid, const ControlPointList& cpl,
                           const geom::SegmentFrame& frame,
                           QueryStats* stats) {
  for (const CplEntry& ce : cpl) {
    if (!ce.has_cp) continue;
    KnnCandidate cand;
    cand.pid = pid;
    cand.cp = ce.cp;
    cand.offset = ce.offset;
    AssignCandidate(cand, ce.range, frame, stats);
  }
}

const CoknnTuple* CoknnResult::FindTuple(double t) const {
  // The tuples are an ordered partition of the reachable domain: binary
  // search for the first tuple with range.lo > t, then probe the few
  // neighbors that can contain t under ContainsApprox (a boundary value
  // sits in two adjacent tuples; return the earliest, preserving the
  // first-match semantics of the former linear scan).
  auto it = std::upper_bound(
      tuples.begin(), tuples.end(), t,
      [](double v, const CoknnTuple& tup) { return v < tup.range.lo; });
  const size_t idx = static_cast<size_t>(it - tuples.begin());
  for (size_t i = idx >= 2 ? idx - 2 : 0; i < tuples.size() && i <= idx; ++i) {
    if (tuples[i].range.ContainsApprox(t)) return &tuples[i];
  }
  return nullptr;
}

std::vector<int64_t> CoknnResult::KnnAt(double t,
                                        const geom::SegmentFrame& frame) const {
  const CoknnTuple* tup = FindTuple(t);
  if (tup == nullptr) return {};
  std::vector<std::pair<double, int64_t>> ranked;
  ranked.reserve(tup->candidates.size());
  for (const KnnCandidate& c : tup->candidates) {
    ranked.emplace_back(c.Curve(frame).Eval(t), c.pid);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<int64_t> ids;
  ids.reserve(ranked.size());
  for (const auto& [d, pid] : ranked) ids.push_back(pid);
  return ids;
}

std::vector<int64_t> CoknnResult::KnnAt(double t) const {
  return KnnAt(t, geom::SegmentFrame(query));
}

double CoknnResult::OdistAt(double t, size_t j,
                            const geom::SegmentFrame& frame) const {
  const CoknnTuple* tup = FindTuple(t);
  if (tup == nullptr || j >= tup->candidates.size()) return kInf;
  std::vector<double> vals;
  vals.reserve(tup->candidates.size());
  for (const KnnCandidate& c : tup->candidates) {
    vals.push_back(c.Curve(frame).Eval(t));
  }
  std::sort(vals.begin(), vals.end());
  return vals[j];
}

double CoknnResult::OdistAt(double t, size_t j) const {
  return OdistAt(t, j, geom::SegmentFrame(query));
}

namespace {

/// Differential-repair wiring for one RunCoknn invocation: the carried
/// workspace's settlement log (null = repair off, the PR 8 path) and the
/// owner tag its published capsule carries.
struct RepairHooks {
  vis::SettlementLog* log = nullptr;
  int64_t client_tag = -1;
};

/// Shared main loop for both tree configurations.
template <typename NextPointFn>
CoknnResult RunCoknn(const geom::Segment& q, size_t k,
                     const geom::IntervalSet& blocked, vis::VisGraph* vg,
                     vis::ScanArena* arena, ObstacleSource* obstacle_source,
                     NextPointFn&& next_point, const ConnOptions& opts,
                     QueryStats* stats, const RepairHooks& repair = {}) {
  CoknnResult result;
  result.query = q;
  result.k = k;

  const geom::SegmentFrame frame(q);
  const geom::IntervalSet reachable =
      internal::ReachablePieces(blocked, q.Length(), &result.unreachable);
  vis::QuerySession session(vg);
  const std::vector<vis::VertexId> targets =
      internal::AddTargetVertices(&session, reachable, q);

  // Repair mode: retrieval waves already proven covered by the workspace's
  // settlement log skip the obstacle stream (the guard answers "nothing
  // new within the bound", which the capsule makes literally true).
  CoverageGuardedSource guarded(obstacle_source, repair.log, q,
                                repair.client_tag, stats);
  ObstacleSource* source =
      repair.log != nullptr ? static_cast<ObstacleSource*>(&guarded)
                            : obstacle_source;
  if (repair.log != nullptr) stats->repairs_applied = 1;

  KnnResultList rl(reachable, k);
  VisibleRegionCache vr_cache;
  double retrieved = 0.0;
  rtree::DataObject obj;
  double dist = 0.0;
  while (true) {
    const double bound = opts.use_rlmax_terminate ? rl.RlMax(frame) : kInf;
    const StreamOutcome outcome = next_point(bound, &obj, &dist);
    if (outcome != StreamOutcome::kYielded) {
      // Lemma 2 gets credit only when RLMAX pruned points that remained;
      // an exhausted iterator stopping the loop is not a pruning win.
      if (outcome == StreamOutcome::kBoundReached) {
        ++stats->lemma2_terminations;
      }
      break;
    }
    ++stats->points_evaluated;
    const geom::Vec2 p = obj.AsPoint();
    std::unique_ptr<vis::DijkstraScan> scan;
    const uint64_t yields_before = guarded.yields();
    IncrementalObstacleRetrieval(source, vg, targets, p, &retrieved, stats,
                                 &scan, arena, opts.use_warm_scan_restarts);
    if (repair.log != nullptr) {
      // Carried vs re-scored at retrieval granularity: a point whose whole
      // search range was served by carried coverage (or by earlier waves
      // of this query) never touched the tree; a boundary point streamed.
      if (guarded.yields() != yields_before) {
        ++stats->tuples_rescored;
      } else {
        ++stats->tuples_carried;
      }
    }
    const ControlPointList cpl = ComputeControlPointList(
        vg, scan.get(), p, frame, reachable, opts, stats, &vr_cache);
    rl.Update(static_cast<int64_t>(obj.id), cpl, frame, stats);
  }
  stats->vr_cache_evictions += vr_cache.evictions();
  // Publish this query's proven coverage: after the loop, every obstacle
  // with mindist(o, q) <= retrieved is in the graph (streamed waves by the
  // ascending source, covered waves by their proving capsule).  The next
  // repair on this workspace reads it — same client or a shard sibling.
  if (repair.log != nullptr) {
    repair.log->Publish(q, retrieved, repair.client_tag);
  }
  result.tuples = rl.tuples();
  return result;
}

/// Two-tree body shared by CoknnQuery (no hooks) and CoknnRepair.
CoknnResult CoknnQueryImpl(const rtree::RStarTree& data_tree,
                           const rtree::RStarTree& obstacle_tree,
                           const geom::Segment& q, size_t k,
                           const ConnOptions& opts, QueryWorkspace* workspace,
                           const RepairHooks& repair) {
  Timer timer;
  QueryStats stats;
  internal::PagerDelta data_io(data_tree.pager());
  internal::PagerDelta obstacle_io(obstacle_tree.pager());

  internal::ScopedQueryGraph graph(workspace, &data_tree, &obstacle_tree, q,
                                   &stats);
  vis::VisGraph* vg = graph.get();
  TreeObstacleSource obstacle_source(obstacle_tree, q);
  const geom::IntervalSet blocked =
      internal::BlockedIntervals(obstacle_tree, q);

  rtree::BestFirstIterator points(data_tree, q);
  auto next_point = [&](double bound, rtree::DataObject* out, double* dist) {
    // bound may be +inf (RLMAX with underfull candidate sets): a finite
    // peek below the bound guarantees an object, so exhaustion and the
    // Lemma-2 stop are cleanly separable.
    const double peek = points.PeekDist();
    if (peek == kInf) return StreamOutcome::kExhausted;
    if (peek > bound) return StreamOutcome::kBoundReached;
    CONN_CHECK(points.Next(out, dist));
    CONN_CHECK_MSG(out->kind == rtree::ObjectKind::kPoint,
                   "data tree contains a non-point entry");
    return StreamOutcome::kYielded;
  };

  CoknnResult result =
      RunCoknn(q, k, blocked, vg, graph.arena(), &obstacle_source, next_point,
               opts, &stats, repair);

  stats.vis_graph_vertices = vg->VertexCount();
  stats.data_page_reads = data_io.faults();
  stats.obstacle_page_reads = obstacle_io.faults();
  stats.buffer_hits = data_io.hits() + obstacle_io.hits();
  internal::AddPrefetchStats(data_io, &stats);
  internal::AddPrefetchStats(obstacle_io, &stats);
  stats.cpu_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  return result;
}

/// Unified-tree body shared by CoknnQuery1T (no hooks) and CoknnRepair1T.
CoknnResult CoknnQuery1TImpl(const rtree::RStarTree& unified_tree,
                             const geom::Segment& q, size_t k,
                             const ConnOptions& opts,
                             QueryWorkspace* workspace,
                             const RepairHooks& repair) {
  Timer timer;
  QueryStats stats;
  internal::PagerDelta io(unified_tree.pager());

  internal::ScopedQueryGraph graph(workspace, &unified_tree, nullptr, q,
                                   &stats);
  vis::VisGraph* vg = graph.get();
  UnifiedStream stream(unified_tree, q, vg);
  const geom::IntervalSet blocked = internal::BlockedIntervals(unified_tree, q);

  auto next_point = [&](double bound, rtree::DataObject* out, double* dist) {
    return stream.NextPointWithin(bound, out, dist);
  };

  CoknnResult result = RunCoknn(q, k, blocked, vg, graph.arena(), &stream,
                                next_point, opts, &stats, repair);

  stats.vis_graph_vertices = vg->VertexCount();
  stats.data_page_reads = io.faults();
  stats.buffer_hits = io.hits();
  internal::AddPrefetchStats(io, &stats);
  stats.cpu_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  return result;
}

}  // namespace

CoknnResult CoknnQuery(const rtree::RStarTree& data_tree,
                       const rtree::RStarTree& obstacle_tree,
                       const geom::Segment& q, size_t k,
                       const ConnOptions& opts, QueryWorkspace* workspace) {
  return CoknnQueryImpl(data_tree, obstacle_tree, q, k, opts, workspace, {});
}

CoknnResult CoknnQuery1T(const rtree::RStarTree& unified_tree,
                         const geom::Segment& q, size_t k,
                         const ConnOptions& opts, QueryWorkspace* workspace) {
  return CoknnQuery1TImpl(unified_tree, q, k, opts, workspace, {});
}

namespace {

/// Stationary-segment memo guard: the prior answer is reusable only for
/// the bit-identical (segment, k) query, under the warm-start gate.
bool TickMemoApplies(const TickWarmStart& warm, const geom::Segment& q,
                     size_t k, const ConnOptions& opts) {
  return opts.use_tick_warm_start && warm.prior != nullptr &&
         warm.prior->query == q && warm.prior->k == k;
}

/// Re-reports \p prior as this tick's answer.  Stats are reset to the work
/// this tick actually did (a copy): only the warm-start marker and the
/// copy's wall time survive — retrieval counters of the original run must
/// not be double-counted into workload aggregates.
CoknnResult TickMemoResult(const CoknnResult& prior) {
  Timer timer;
  CoknnResult result = prior;
  result.stats = QueryStats{};
  result.stats.tick_warm_starts = 1;
  result.stats.cpu_seconds = timer.ElapsedSeconds();
  return result;
}

/// Repair requires a carried workspace (its settlement log is the carried
/// coverage) under the warm-start gate; CoknnQueryTick only dispatches to
/// the repair path for workspaces *built* for repair — a short-lived
/// per-query fallback graph has an empty log and gains nothing.
bool RepairApplies(const ConnOptions& opts, const QueryWorkspace* workspace) {
  return opts.use_differential_repair && opts.use_tick_warm_start &&
         workspace != nullptr && workspace->differential_repair();
}

}  // namespace

CoknnResult CoknnRepair(const rtree::RStarTree& data_tree,
                        const rtree::RStarTree& obstacle_tree,
                        const geom::Segment& q, size_t k,
                        const TickWarmStart& warm, const ConnOptions& opts,
                        QueryWorkspace* workspace) {
  CONN_CHECK_MSG(workspace != nullptr,
                 "differential repair needs a carried workspace");
  if (TickMemoApplies(warm, q, k, opts)) return TickMemoResult(*warm.prior);
  return CoknnQueryImpl(data_tree, obstacle_tree, q, k, opts, workspace,
                        {workspace->settlement_log(), warm.client_tag});
}

CoknnResult CoknnRepair1T(const rtree::RStarTree& unified_tree,
                          const geom::Segment& q, size_t k,
                          const TickWarmStart& warm, const ConnOptions& opts,
                          QueryWorkspace* workspace) {
  CONN_CHECK_MSG(workspace != nullptr,
                 "differential repair needs a carried workspace");
  if (TickMemoApplies(warm, q, k, opts)) return TickMemoResult(*warm.prior);
  return CoknnQuery1TImpl(unified_tree, q, k, opts, workspace,
                          {workspace->settlement_log(), warm.client_tag});
}

CoknnResult CoknnQueryTick(const rtree::RStarTree& data_tree,
                           const rtree::RStarTree& obstacle_tree,
                           const geom::Segment& q, size_t k,
                           const TickWarmStart& warm, const ConnOptions& opts,
                           QueryWorkspace* workspace) {
  if (TickMemoApplies(warm, q, k, opts)) return TickMemoResult(*warm.prior);
  if (RepairApplies(opts, workspace)) {
    return CoknnRepair(data_tree, obstacle_tree, q, k, warm, opts, workspace);
  }
  return CoknnQuery(data_tree, obstacle_tree, q, k, opts, workspace);
}

CoknnResult CoknnQueryTick1T(const rtree::RStarTree& unified_tree,
                             const geom::Segment& q, size_t k,
                             const TickWarmStart& warm,
                             const ConnOptions& opts,
                             QueryWorkspace* workspace) {
  if (TickMemoApplies(warm, q, k, opts)) return TickMemoResult(*warm.prior);
  if (RepairApplies(opts, workspace)) {
    return CoknnRepair1T(unified_tree, q, k, warm, opts, workspace);
  }
  return CoknnQuery1T(unified_tree, q, k, opts, workspace);
}

}  // namespace core
}  // namespace conn
