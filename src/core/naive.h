// Brute-force reference implementations ("ground truth oracles").
//
// These deliberately trade time and space for obviousness: the full global
// visibility graph (Section 2.4) over every obstacle corner and every data
// point, brute-force sight-line tests against the entire obstacle set, and
// dense sampling along the query segment.  They exist to validate the
// optimized algorithms in property tests and to serve as the naive
// baselines the paper argues against (Section 1: "a naive approach is to
// issue an ONN search at every point of q").

#ifndef CONN_CORE_NAIVE_H_
#define CONN_CORE_NAIVE_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/segment.h"
#include "geom/vec.h"
#include "vis/full_vis_graph.h"

namespace conn {
namespace core {

/// Ground-truth oracle over in-memory point and obstacle sets.
class NaiveOracle {
 public:
  /// Builds the full visibility graph over all obstacle corners plus all
  /// data points (O(V^2 |O|) — small inputs only).
  NaiveOracle(std::vector<geom::Vec2> points,
              std::vector<geom::Rect> obstacles);

  size_t num_points() const { return points_.size(); }

  /// Exact obstructed distance between two arbitrary locations
  /// (+infinity when no obstacle-free path exists).
  double Odist(geom::Vec2 a, geom::Vec2 b) const;

  /// Exact obstructed distance from location \p s to data point \p pid.
  double OdistToPoint(geom::Vec2 s, size_t pid) const;

  /// Exact obstructed distances from \p s to every data point.
  std::vector<double> OdistToAllPoints(geom::Vec2 s) const;

  /// The k obstructed nearest data points of \p s as (pid, odist), nearest
  /// first; unreachable points excluded.
  std::vector<std::pair<int64_t, double>> OnnAt(geom::Vec2 s,
                                                size_t k) const;

  /// Size of the underlying full visibility graph (the paper's FULL
  /// baseline is 4|O| corners; extra points add to this count).
  size_t FullGraphVertexCount() const { return graph_.VertexCount(); }

 private:
  /// Shortest distances from an arbitrary (non-vertex) source to every
  /// graph vertex, via a virtual-source Dijkstra.
  std::vector<double> DistancesFromLocation(geom::Vec2 s) const;

  std::vector<geom::Vec2> points_;
  std::vector<geom::Rect> obstacles_;
  vis::FullVisGraph graph_;
  std::vector<vis::VertexId> point_vertex_;  // graph vertex of each point
};

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_NAIVE_H_
