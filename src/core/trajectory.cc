#include "core/trajectory.h"

#include "common/check.h"

namespace conn {
namespace core {

double TrajectoryResult::TotalLength() const {
  double total = 0.0;
  for (const TrajectoryLeg& leg : legs) total += leg.segment.Length();
  return total;
}

int64_t TrajectoryResult::OnnAtArcLength(double s) const {
  double cursor = 0.0;
  for (const TrajectoryLeg& leg : legs) {
    const double len = leg.segment.Length();
    if (s <= cursor + len || &leg == &legs.back()) {
      return leg.result.OnnAt(s - cursor);
    }
    cursor += len;
  }
  return kNoPoint;
}

TrajectoryResult TrajectoryConnQuery(const rtree::RStarTree& data_tree,
                                     const rtree::RStarTree& obstacle_tree,
                                     const std::vector<geom::Vec2>& waypoints,
                                     const ConnOptions& opts) {
  CONN_CHECK_MSG(waypoints.size() >= 2,
                 "trajectory needs at least two waypoints");
  TrajectoryResult out;
  for (size_t i = 0; i + 1 < waypoints.size(); ++i) {
    const geom::Segment leg(waypoints[i], waypoints[i + 1]);
    if (leg.Length() <= 0.0) continue;  // skip duplicate waypoints
    TrajectoryLeg entry;
    entry.segment = leg;
    entry.result = ConnQuery(data_tree, obstacle_tree, leg, opts);
    out.total_stats += entry.result.stats;
    out.legs.push_back(std::move(entry));
  }
  return out;
}

}  // namespace core
}  // namespace conn
