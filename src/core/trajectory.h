// Trajectory CONN — the first future-work extension named in Section 6 of
// the paper: "retrieving the ONN of every point on a specified moving
// trajectory that consists of several consecutive line segments."
//
// Each polyline leg is answered by the single-segment CONN engine; the
// result keeps per-leg tuples plus aggregated statistics.  (Each leg builds
// its own local visibility graph: the graph's target vertices and visible
// regions are leg-specific, and the paper's reuse argument applies within
// one segment's evaluation, not across segments.)

#ifndef CONN_CORE_TRAJECTORY_H_
#define CONN_CORE_TRAJECTORY_H_

#include <vector>

#include "core/conn.h"

namespace conn {
namespace core {

/// CONN answer for one leg of a trajectory.
struct TrajectoryLeg {
  geom::Segment segment;
  ConnResult result;
};

/// Answer of a trajectory CONN query.
struct TrajectoryResult {
  std::vector<TrajectoryLeg> legs;
  QueryStats total_stats;  ///< sums over all legs

  /// ONN id at arc-length position \p s measured along the whole polyline.
  int64_t OnnAtArcLength(double s) const;

  /// Total polyline length.
  double TotalLength() const;
};

/// Runs CONN over every leg of the polyline defined by \p waypoints
/// (at least 2).  Consecutive duplicate waypoints are skipped.
TrajectoryResult TrajectoryConnQuery(const rtree::RStarTree& data_tree,
                                     const rtree::RStarTree& obstacle_tree,
                                     const std::vector<geom::Vec2>& waypoints,
                                     const ConnOptions& opts = {});

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_TRAJECTORY_H_
