// COkNN query processing (Section 4.5 of the paper): the k obstructed
// nearest neighbors of every point along a query segment.
//
// The result generalizes CONN's tuples to <ONNS_i, R_i> where ONNS_i is the
// *set* of the k nearest points over interval R_i.  Intervals are split
// wherever set membership changes, i.e., at crossings between the distance
// curve of an arriving candidate and the curves already in the set — and,
// because which member is "the worst" can change inside an interval, also
// at crossings among the existing members (the classification is done by
// exact midpoint ranking between consecutive crossings).
//
// The Lemma 2 pruning bound becomes RLMAX = max_i maxodist(ONNS_i, R_i
// endpoints), +infinity while any interval holds fewer than k candidates
// (distance curves are convex, so endpoint values bound the interval).

#ifndef CONN_CORE_COKNN_H_
#define CONN_CORE_COKNN_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "core/cpl.h"
#include "core/options.h"
#include "core/result_list.h"
#include "geom/interval_set.h"
#include "geom/segment.h"
#include "rtree/rstar_tree.h"

namespace conn {
namespace core {

class QueryWorkspace;  // core/workspace.h — reusable cross-query state

/// One member of an interval's k-NN candidate set.
struct KnnCandidate {
  int64_t pid = kNoPoint;
  geom::Vec2 cp;
  double offset = 0.0;

  geom::DistanceCurve Curve(const geom::SegmentFrame& frame) const {
    return geom::DistanceCurve::FromControlPoint(frame, cp, offset);
  }
};

/// One tuple <ONNS, R> of the COkNN result; candidates are sorted by their
/// obstructed distance at the interval midpoint (nearest first).
struct CoknnTuple {
  geom::Interval range;
  std::vector<KnnCandidate> candidates;
};

/// Complete answer of a COkNN query.
struct CoknnResult {
  geom::Segment query;
  size_t k = 1;
  std::vector<CoknnTuple> tuples;  ///< ordered partition of the reachable q
  geom::IntervalSet unreachable;
  QueryStats stats;

  /// Ids of the k nearest points at parameter t, nearest first.
  std::vector<int64_t> KnnAt(double t) const;

  /// Obstructed distance of the j-th nearest (0-based) at parameter t.
  double OdistAt(double t, size_t j) const;

  /// Frame-hoisted variants for hot verification loops: the caller builds
  /// geom::SegmentFrame(query) once and probes many parameters.
  std::vector<int64_t> KnnAt(double t, const geom::SegmentFrame& frame) const;
  double OdistAt(double t, size_t j, const geom::SegmentFrame& frame) const;

  /// Binary-searches the ordered tuple partition for the tuple containing
  /// parameter \p t (nullptr when t falls in no tuple, e.g. unreachable).
  const CoknnTuple* FindTuple(double t) const;
};

/// The running COkNN result list (exposed for unit tests).
class KnnResultList {
 public:
  KnnResultList(const geom::IntervalSet& domain, size_t k);

  const std::vector<CoknnTuple>& tuples() const { return tuples_; }

  /// Generalized RLMAX (see file comment).
  double RlMax(const geom::SegmentFrame& frame) const;

  /// Merges data point \p pid's control point list into the candidate sets.
  void Update(int64_t pid, const ControlPointList& cpl,
              const geom::SegmentFrame& frame, QueryStats* stats);

 private:
  void AssignCandidate(const KnnCandidate& cand,
                       const geom::Interval& region,
                       const geom::SegmentFrame& frame, QueryStats* stats);
  void MergeAdjacent(const geom::SegmentFrame& frame);

  size_t k_;
  std::vector<CoknnTuple> tuples_;
};

/// COkNN with P and O in two separate R-trees.  When \p workspace is
/// non-null, the query runs its obstacle retrieval against that shared
/// graph (batch execution) instead of building a fresh one; results are
/// identical, per-query I/O and graph-size statistics then describe the
/// shared state.
CoknnResult CoknnQuery(const rtree::RStarTree& data_tree,
                       const rtree::RStarTree& obstacle_tree,
                       const geom::Segment& q, size_t k,
                       const ConnOptions& opts = {},
                       QueryWorkspace* workspace = nullptr);

/// COkNN over one unified R-tree (Section 4.5).
CoknnResult CoknnQuery1T(const rtree::RStarTree& unified_tree,
                         const geom::Segment& q, size_t k,
                         const ConnOptions& opts = {},
                         QueryWorkspace* workspace = nullptr);

/// Prior-tick state a moving-query subscription client carries into its
/// next tick.  The workspace half of warm starting (the carried obstacle
/// graph + scan arena) is already expressed through the \p workspace
/// parameter — a tick-loop caller simply passes the *same* workspace it
/// used last tick.  TickWarmStart adds the result half: the previous
/// answer, enabling the stationary-segment memo.
struct TickWarmStart {
  /// Last tick's result for this client (null on the client's first tick,
  /// or when the caller discarded it).  Must outlive the query call.
  const CoknnResult* prior = nullptr;

  /// The client this tick belongs to (-1 = anonymous).  The differential
  /// repair path tags the coverage capsules it publishes with this, so the
  /// frontier_shares statistic can tell cross-client reuse from a client
  /// re-reading its own frontier.
  int64_t client_tag = -1;
};

/// COkNN for one tick of a moving query (two-tree configuration).  When
/// `opts.use_tick_warm_start` is set and \p warm holds a prior result for
/// the *identical* (segment, k) query — a client whose route paused or
/// whose step landed on the same segment — the prior answer is re-reported
/// without touching the trees (stats then carry `tick_warm_starts = 1` and
/// no retrieval work).  Otherwise this is exactly CoknnQuery: reusing a
/// cross-tick workspace is bit-identical to a fresh evaluation because the
/// carried graph holds a superset of the query's Theorem-2 obstacle set.
CoknnResult CoknnQueryTick(const rtree::RStarTree& data_tree,
                           const rtree::RStarTree& obstacle_tree,
                           const geom::Segment& q, size_t k,
                           const TickWarmStart& warm,
                           const ConnOptions& opts = {},
                           QueryWorkspace* workspace = nullptr);

/// Tick entry point for the unified-tree configuration (see CoknnQueryTick).
CoknnResult CoknnQueryTick1T(const rtree::RStarTree& unified_tree,
                             const geom::Segment& q, size_t k,
                             const TickWarmStart& warm,
                             const ConnOptions& opts = {},
                             QueryWorkspace* workspace = nullptr);

/// Differential tick repair (two-tree configuration): CoknnQueryTick run
/// as a repair against \p workspace's carried state instead of a fresh
/// evaluation.  Tick-t's Theorem-2 search ranges are diffed against the
/// coverage the workspace's settlement log already proves: data points
/// whose range is untouched by the segment advance are carried without
/// contacting the obstacle tree (tuples_carried), only boundary points
/// whose range escapes coverage re-score through the stream
/// (tuples_rescored), with obstacle waves absorbed by
/// DijkstraScan::Revalidate warm restarts on the carried graph.  The
/// query's own final search range is published back to the log, so
/// clustered clients sharing the shard workspace repair off each other's
/// frontiers (frontier_shares).  Results are bit-identical to CoknnQuery:
/// the graph holds a superset of every wave's Theorem-2 obstacle set
/// whether the wave streamed or was covered.  CoknnQueryTick dispatches
/// here when ConnOptions::use_differential_repair is set (with
/// use_tick_warm_start) and a workspace is supplied.
CoknnResult CoknnRepair(const rtree::RStarTree& data_tree,
                        const rtree::RStarTree& obstacle_tree,
                        const geom::Segment& q, size_t k,
                        const TickWarmStart& warm, const ConnOptions& opts,
                        QueryWorkspace* workspace);

/// Differential tick repair for the unified-tree configuration (see
/// CoknnRepair).
CoknnResult CoknnRepair1T(const rtree::RStarTree& unified_tree,
                          const geom::Segment& q, size_t k,
                          const TickWarmStart& warm, const ConnOptions& opts,
                          QueryWorkspace* workspace);

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_COKNN_H_
