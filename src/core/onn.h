// Obstructed k-nearest-neighbor point queries (Zhang et al., EDBT 2004 —
// reference [31] of the paper): the k data points with the smallest
// obstructed distance to a fixed query location.
//
// Implemented in the paper's framework: best-first browsing of the data
// R-tree by Euclidean mindist (a lower bound of the obstructed distance),
// with each candidate's exact obstructed distance computed by IOR over the
// shared local visibility graph, and termination once mindist exceeds the
// current k-th best obstructed distance.
//
// This is both a baseline (the naive CONN evaluates it per sample point)
// and the building block of the degenerate zero-length CONN query.

#ifndef CONN_CORE_ONN_H_
#define CONN_CORE_ONN_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "core/options.h"
#include "geom/vec.h"
#include "rtree/rstar_tree.h"

namespace conn {
namespace core {

/// One obstructed nearest neighbor.
struct OnnNeighbor {
  int64_t pid = -1;
  double odist = 0.0;
};

/// Answer of an ONN point query: up to k neighbors, nearest first.
struct OnnResult {
  geom::Vec2 query;
  std::vector<OnnNeighbor> neighbors;
  QueryStats stats;
};

/// k obstructed nearest neighbors of \p query_point.
OnnResult OnnQuery(const rtree::RStarTree& data_tree,
                   const rtree::RStarTree& obstacle_tree,
                   geom::Vec2 query_point, size_t k,
                   const ConnOptions& opts = {});

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_ONN_H_
