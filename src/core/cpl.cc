#include "core/cpl.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/check.h"
#include "geom/distance.h"
#include "geom/predicates.h"
#include "geom/split.h"
#include "vis/dijkstra.h"
#include "vis/visible_region.h"

namespace conn {
namespace core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Merges adjacent entries carrying the same control point and absorbs
/// boundary slivers (an eps-sized control-point-less leftover would keep
/// CPLMAX infinite and defeat the Lemma 7 termination).
void MergeAdjacent(ControlPointList* cpl) {
  ControlPointList merged;
  for (const CplEntry& e : *cpl) {
    if (!merged.empty()) {
      CplEntry& prev = merged.back();
      const bool adjacent =
          std::abs(prev.range.hi - e.range.lo) <= geom::kEpsParam;
      const bool same =
          prev.has_cp == e.has_cp &&
          (!e.has_cp || (prev.cp == e.cp && prev.offset == e.offset));
      if (adjacent && same) {
        prev.range.hi = e.range.hi;
        continue;
      }
      if (adjacent && e.range.Length() <= geom::kEpsSliver && prev.has_cp) {
        prev.range.hi = e.range.hi;
        continue;
      }
      if (adjacent && prev.range.Length() <= geom::kEpsSliver && e.has_cp) {
        CplEntry grown = e;
        grown.range.lo = prev.range.lo;
        prev = grown;
        continue;
      }
    }
    merged.push_back(e);
  }
  *cpl = std::move(merged);
}

/// Merges candidate (cp, offset) into the list over `regions`, competing
/// with incumbents by exact curve comparison.  Returns whether any entry
/// was contested (false => the list is untouched, and any cached CPLMAX
/// stays valid).
bool AssignCandidate(ControlPointList* cpl, geom::Vec2 cp, double offset,
                     const geom::IntervalSet& regions,
                     const geom::SegmentFrame& frame, const ConnOptions& opts,
                     QueryStats* stats) {
  if (regions.IsEmpty()) return false;
  const geom::DistanceCurve challenger =
      geom::DistanceCurve::FromControlPoint(frame, cp, offset);

  bool any_contested = false;
  ControlPointList next;
  next.reserve(cpl->size() + 2);
  for (const CplEntry& entry : *cpl) {
    const geom::IntervalSet contested = regions.Intersect(entry.range);
    if (contested.IsEmpty()) {
      next.push_back(entry);
      continue;
    }
    any_contested = true;
    // Walk the entry's range, alternating kept and contested pieces.
    double cursor = entry.range.lo;
    auto push_kept = [&](double lo, double hi) {
      if (hi - lo <= geom::kEpsParam) return;
      CplEntry kept = entry;
      kept.range = geom::Interval(lo, hi);
      next.push_back(kept);
    };
    for (const geom::Interval& piece : contested.intervals()) {
      push_kept(cursor, piece.lo);
      cursor = std::max(cursor, piece.hi);
      const geom::Interval sub(std::max(piece.lo, entry.range.lo),
                               std::min(piece.hi, entry.range.hi));
      if (sub.Length() <= geom::kEpsParam) continue;
      if (!entry.has_cp) {
        // Line 11-12 of Algorithm 2: unassigned interval, candidate takes it.
        CplEntry taken;
        taken.has_cp = true;
        taken.cp = cp;
        taken.offset = offset;
        taken.range = sub;
        next.push_back(taken);
        continue;
      }
      const geom::DistanceCurve incumbent = entry.Curve(frame);
      if (opts.use_lemma1_prune &&
          geom::EndpointDominancePrune(incumbent, challenger, sub)) {
        if (stats != nullptr) ++stats->lemma1_prunes;
        CplEntry kept = entry;
        kept.range = sub;
        next.push_back(kept);
        continue;
      }
      if (stats != nullptr) ++stats->split_evaluations;
      for (const geom::LabeledInterval& li :
           geom::CompareCurves(incumbent, challenger, sub)) {
        CplEntry piece_entry = entry;
        if (li.winner == geom::CurveWinner::kChallenger) {
          piece_entry.has_cp = true;
          piece_entry.cp = cp;
          piece_entry.offset = offset;
        }
        piece_entry.range = li.interval;
        next.push_back(piece_entry);
      }
    }
    push_kept(cursor, entry.range.hi);
  }
  if (!any_contested) return false;
  *cpl = std::move(next);
  MergeAdjacent(cpl);
  return true;
}

}  // namespace

double CplMax(const ControlPointList& cpl, const geom::SegmentFrame& frame) {
  double max_val = 0.0;
  for (const CplEntry& e : cpl) {
    if (!e.has_cp) return kInf;
    const geom::DistanceCurve c = e.Curve(frame);
    max_val = std::max({max_val, c.Eval(e.range.lo), c.Eval(e.range.hi)});
  }
  return max_val;
}

bool CplIsPartition(const ControlPointList& cpl,
                    const geom::IntervalSet& domain) {
  // Entries must appear in order and, per domain piece, tile it end to end
  // (small eps-slivers between adjacent entries are tolerated).
  size_t i = 0;
  for (const geom::Interval& piece : domain.intervals()) {
    double cursor = piece.lo;
    while (i < cpl.size() && cpl[i].range.hi <= piece.hi + geom::kEpsParam) {
      if (std::abs(cpl[i].range.lo - cursor) > 4 * geom::kEpsParam) {
        return false;
      }
      cursor = cpl[i].range.hi;
      ++i;
    }
    if (std::abs(cursor - piece.hi) > 4 * geom::kEpsParam) return false;
  }
  return i == cpl.size();
}

const geom::IntervalSet& VisibleRegionCache::Get(
    vis::VisGraph* vg, vis::VertexId v, const geom::SegmentFrame& frame,
    uint64_t* test_counter) {
  if (epoch_ != vg->epoch()) {
    // Selective invalidation: VR(v) is built from sight-lines between v and
    // points of q, all inside the triangle (v, q.a, q.b).  Only entries
    // whose triangle bounding box meets a new obstacle rectangle can have
    // changed; the rest stay cached across the wave.
    const vis::ObstacleSet& obs = vg->obstacles();
    const geom::Segment q = frame.segment();
    const geom::Rect qbox = geom::Rect::FromCorners(q.a, q.b);
    for (size_t u = 0; u < cache_.size(); ++u) {
      if (!cache_[u].has_value()) continue;
      const geom::Rect hull = qbox.ExpandedToCover(
          vg->VertexPos(static_cast<vis::VertexId>(u)));
      for (size_t oi = obstacle_watermark_; oi < obs.size(); ++oi) {
        if (hull.Intersects(obs.rect(oi))) {
          cache_[u].reset();
          ++evictions_;
          break;
        }
      }
    }
    obstacle_watermark_ = obs.size();
    epoch_ = vg->epoch();
  }
  if (cache_.size() < vg->VertexCount()) cache_.resize(vg->VertexCount());
  if (!cache_[v].has_value()) {
    cache_[v] = vis::VisibleRegion(vg->obstacles(), vg->VertexPos(v), frame,
                                   test_counter);
  }
  return *cache_[v];
}

ControlPointList ComputeControlPointList(vis::VisGraph* vg,
                                         vis::DijkstraScan* scan,
                                         geom::Vec2 p,
                                         const geom::SegmentFrame& frame,
                                         const geom::IntervalSet& domain,
                                         const ConnOptions& opts,
                                         QueryStats* stats,
                                         VisibleRegionCache* vr_cache) {
  CONN_CHECK(scan != nullptr && vr_cache != nullptr);
  ControlPointList cpl;
  for (const geom::Interval& piece : domain.intervals()) {
    cpl.push_back(CplEntry{false, {}, 0.0, piece});
  }
  if (cpl.empty()) return cpl;

  uint64_t* vis_counter = stats ? &stats->visibility_tests : nullptr;

  // The data point itself is the control point wherever it directly sees q
  // (the scan iterates graph vertices; p is the scan's source).
  const geom::IntervalSet vr_p =
      vis::VisibleRegion(vg->obstacles(), p, frame, vis_counter);
  AssignCandidate(&cpl, p, 0.0, vr_p, frame, opts, stats);

  // CPLMAX (Lemma 7) changes only when AssignCandidate actually contests
  // an entry; cache it across the (mostly pruned) settled vertices instead
  // of rescanning the whole list per vertex.
  double cplmax = CplMax(cpl, frame);

  const size_t settled_before = scan->SettledCount();
  for (size_t i = 0; scan->EnsureSettled(i); ++i) {
    const auto [v, dist_v, pred] = scan->log()[i];
    if (opts.use_lemma7_terminate && dist_v >= cplmax) {
      // Lemma 7 with the relaxed zero lower bound on mindist(v, q): the
      // scan is ordered by ||p, v||, so every remaining vertex is out too.
      if (stats != nullptr) ++stats->lemma7_terminations;
      break;
    }
    const geom::Vec2 vpos = vg->VertexPos(v);
    if (opts.use_lemma7_terminate &&
        dist_v + geom::DistPointSegment(vpos, frame.segment()) >= cplmax) {
      continue;  // Lemma 7 proper, applied per vertex
    }

    // Lemma 5: v cannot control intervals its path predecessor already sees.
    const geom::IntervalSet& vr_v = vr_cache->Get(vg, v, frame, vis_counter);
    geom::Vec2 upos;
    const geom::IntervalSet* vr_u = nullptr;
    if (pred == vis::kPredSource) {
      upos = p;
      vr_u = &vr_p;
    } else {
      CONN_CHECK(pred >= 0);
      upos = vg->VertexPos(static_cast<vis::VertexId>(pred));
      vr_u = &vr_cache->Get(vg, static_cast<vis::VertexId>(pred), frame,
                            vis_counter);
    }
    geom::IntervalSet candidate_region = vr_v.Subtract(*vr_u);
    if (candidate_region.IsEmpty()) continue;

    if (opts.use_lemma6_refine) {
      // Lemma 6: an interval whose endpoints the predecessor sees cannot be
      // controlled by v unless v lies inside the triangle (u, R.l, R.r).
      std::vector<geom::Interval> kept;
      for (const geom::Interval& r : candidate_region.intervals()) {
        const bool ends_visible_to_u =
            vr_u->Contains(r.lo) && vr_u->Contains(r.hi);
        if (ends_visible_to_u &&
            !geom::PointInTriangle(upos, frame.PointAt(r.lo),
                                   frame.PointAt(r.hi), vpos)) {
          continue;  // pruned by Lemma 6
        }
        kept.push_back(r);
      }
      candidate_region = geom::IntervalSet(std::move(kept));
      if (candidate_region.IsEmpty()) continue;
    }

    if (AssignCandidate(&cpl, vpos, dist_v, candidate_region, frame, opts,
                        stats)) {
      cplmax = CplMax(cpl, frame);
    }
  }
  if (stats != nullptr) {
    stats->dijkstra_settled += scan->SettledCount() - settled_before;
  }
  return cpl;
}

ControlPointList ComputeControlPointList(vis::VisGraph* vg, geom::Vec2 p,
                                         const geom::SegmentFrame& frame,
                                         const geom::IntervalSet& domain,
                                         const ConnOptions& opts,
                                         QueryStats* stats) {
  vis::DijkstraScan scan(vg, p);
  if (stats != nullptr) ++stats->dijkstra_runs;
  VisibleRegionCache cache;
  return ComputeControlPointList(vg, &scan, p, frame, domain, opts, stats,
                                 &cache);
}

}  // namespace core
}  // namespace conn
