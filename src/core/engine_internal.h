// Shared plumbing of the CONN-family query engines (conn.cc, coknn.cc,
// onn.cc, cnn.cc).  Internal header — not part of the public API.

#ifndef CONN_CORE_ENGINE_INTERNAL_H_
#define CONN_CORE_ENGINE_INTERNAL_H_

#include <optional>
#include <vector>

#include "core/workspace.h"
#include "geom/interval_set.h"
#include "geom/predicates.h"
#include "geom/segment.h"
#include "rtree/rstar_tree.h"
#include "storage/pager.h"
#include "vis/vis_graph.h"

namespace conn {
namespace core {
namespace internal {

/// Workspace rectangle covering the trees' contents and \p cover (used as
/// the local obstacle grid's domain).  Either tree may be null.
inline geom::Rect WorkspaceBounds(const rtree::RStarTree* a,
                                  const rtree::RStarTree* b,
                                  const geom::Rect& cover) {
  geom::Rect r = cover;
  if (a != nullptr) r = r.ExpandedToCover(a->Bounds());
  if (b != nullptr) r = r.ExpandedToCover(b->Bounds());
  // Guard against degenerate domains (single point workloads).
  const double pad = 1.0 + 1e-3 * std::max(r.Width(), r.Height());
  return geom::Rect({r.lo.x - pad, r.lo.y - pad}, {r.hi.x + pad, r.hi.y + pad});
}

inline geom::Rect WorkspaceBounds(const rtree::RStarTree* a,
                                  const rtree::RStarTree* b,
                                  const geom::Segment& q) {
  return WorkspaceBounds(a, b, q.Bounds());
}

/// Arc-length intervals of \p q lying strictly inside obstacle interiors
/// indexed by \p tree (non-obstacle entries are ignored, so the unified
/// tree of the 1-tree configuration works too).
inline geom::IntervalSet BlockedIntervals(const rtree::RStarTree& tree,
                                          const geom::Segment& q) {
  std::vector<rtree::DataObject> hits;
  CONN_CHECK(tree.SegmentIntersectionQuery(q, &hits).ok());
  const double len = q.Length();
  std::vector<geom::Interval> blocked;
  for (const rtree::DataObject& obj : hits) {
    if (obj.kind != rtree::ObjectKind::kObstacle) continue;
    const geom::Rect& r = obj.rect;
    const geom::Rect inner{
        {r.lo.x + geom::kEpsInterior, r.lo.y + geom::kEpsInterior},
        {r.hi.x - geom::kEpsInterior, r.hi.y - geom::kEpsInterior}};
    if (!inner.IsValid()) continue;
    double t0, t1;
    if (!geom::ClipSegmentToRect(q, inner, &t0, &t1)) continue;
    if (t1 - t0 <= 0.0) continue;
    blocked.push_back(geom::Interval(t0 * len, t1 * len));
  }
  return geom::IntervalSet(std::move(blocked));
}

/// Splits [0, len] into reachable pieces and the blocked/sliver complement.
/// Pieces not meaningfully longer than the parameter tolerance are moved to
/// the unreachable side: a sliver piece could never be claimed robustly and
/// would pin the RLMAX termination bound at +infinity (see kEpsSliver).
inline geom::IntervalSet ReachablePieces(const geom::IntervalSet& blocked,
                                         double length,
                                         geom::IntervalSet* unreachable) {
  const geom::IntervalSet raw =
      blocked.ComplementWithin(geom::Interval(0.0, length));
  std::vector<geom::Interval> keep;
  std::vector<geom::Interval> dropped = blocked.intervals();
  for (const geom::Interval& piece : raw.intervals()) {
    if (piece.Length() <= geom::kEpsSliver) {
      dropped.push_back(piece);
    } else {
      keep.push_back(piece);
    }
  }
  *unreachable = geom::IntervalSet(std::move(dropped));
  return geom::IntervalSet(std::move(keep));
}

/// Adds a fixed graph vertex at both endpoints of every reachable piece of
/// the query segment; returns the vertex ids (the IOR targets).  The
/// vertices are scoped to \p session: they disappear with it, leaving a
/// shard-shared graph's obstacle state intact for the next query.
inline std::vector<vis::VertexId> AddTargetVertices(
    vis::QuerySession* session, const geom::IntervalSet& reachable,
    const geom::Segment& q) {
  std::vector<vis::VertexId> targets;
  for (const geom::Interval& piece : reachable.intervals()) {
    targets.push_back(session->AddFixedVertex(q.At(piece.lo)));
    targets.push_back(session->AddFixedVertex(q.At(piece.hi)));
  }
  return targets;
}

/// Restores a (possibly shard-shared) graph's stats sink on scope exit,
/// after pointing it at the running query's counters.
class GraphStatsScope {
 public:
  GraphStatsScope(vis::VisGraph* vg, QueryStats* stats)
      : vg_(vg), saved_(vg->stats()) {
    vg_->set_stats(stats);
  }
  ~GraphStatsScope() { vg_->set_stats(saved_); }

  GraphStatsScope(const GraphStatsScope&) = delete;
  GraphStatsScope& operator=(const GraphStatsScope&) = delete;

 private:
  vis::VisGraph* vg_;
  QueryStats* saved_;
};

/// The one visibility graph a query runs against: the shared workspace's
/// when one is supplied (batch execution), otherwise a query-local graph
/// built over the trees + q.  Either way the graph's stats sink points at
/// \p stats for this scope.  Every public query entry point opens with one
/// of these so the resolution logic cannot drift between engines.  The
/// scan arena resolves the same way: the workspace's pooled arena when
/// shared, a query-local one otherwise.
class ScopedQueryGraph {
 public:
  ScopedQueryGraph(QueryWorkspace* workspace, const rtree::RStarTree* a,
                   const rtree::RStarTree* b, const geom::Segment& q,
                   QueryStats* stats)
      : own_(workspace == nullptr
                 ? std::optional<vis::VisGraph>(
                       std::in_place, WorkspaceBounds(a, b, q), stats)
                 : std::nullopt),
        own_arena_(workspace == nullptr
                       ? std::optional<vis::ScanArena>(std::in_place)
                       : std::nullopt),
        vg_(workspace != nullptr ? workspace->graph() : &*own_),
        arena_(workspace != nullptr ? workspace->scan_arena() : &*own_arena_),
        stats_scope_(vg_, stats) {}

  ScopedQueryGraph(const ScopedQueryGraph&) = delete;
  ScopedQueryGraph& operator=(const ScopedQueryGraph&) = delete;

  vis::VisGraph* get() { return vg_; }

  /// Pooled scan state for every DijkstraScan of this query.
  vis::ScanArena* arena() { return arena_; }

 private:
  std::optional<vis::VisGraph> own_;
  std::optional<vis::ScanArena> own_arena_;
  vis::VisGraph* vg_;
  vis::ScanArena* arena_;
  GraphStatsScope stats_scope_;
};

/// Snapshot of a Pager's fault/hit/prefetch counters for delta accounting.
class PagerDelta {
 public:
  explicit PagerDelta(const storage::Pager& pager)
      : pager_(pager),
        faults0_(pager.faults()),
        hits0_(pager.hits()),
        prefetch_issued0_(pager.prefetch_issued()),
        prefetch_hits0_(pager.prefetch_hits()),
        prefetch_wasted0_(pager.prefetch_wasted()) {}

  uint64_t faults() const { return pager_.faults() - faults0_; }
  uint64_t hits() const { return pager_.hits() - hits0_; }
  uint64_t prefetch_issued() const {
    return pager_.prefetch_issued() - prefetch_issued0_;
  }
  uint64_t prefetch_hits() const {
    return pager_.prefetch_hits() - prefetch_hits0_;
  }
  uint64_t prefetch_wasted() const {
    return pager_.prefetch_wasted() - prefetch_wasted0_;
  }

 private:
  const storage::Pager& pager_;
  uint64_t faults0_;
  uint64_t hits0_;
  uint64_t prefetch_issued0_;
  uint64_t prefetch_hits0_;
  uint64_t prefetch_wasted0_;
};

/// Folds a delta's async-pipeline counters into \p stats.  Additive, so the
/// deltas of several trees (data + obstacle, or join operands) stack.
inline void AddPrefetchStats(const PagerDelta& io, QueryStats* stats) {
  stats->prefetch_issued += io.prefetch_issued();
  stats->prefetch_hits += io.prefetch_hits();
  stats->prefetch_wasted += io.prefetch_wasted();
}

}  // namespace internal
}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_ENGINE_INTERNAL_H_
