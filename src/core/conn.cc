#include "core/conn.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/timer.h"
#include "core/cpl.h"
#include "core/engine_internal.h"
#include "core/odist.h"
#include "core/workspace.h"
#include "rtree/best_first.h"
#include "vis/dijkstra.h"

namespace conn {
namespace core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Converts the final ResultList into public tuples.
void ExportTuples(const ResultList& rl, ConnResult* result) {
  for (const RlEntry& e : rl.entries()) {
    ConnTuple t;
    t.point_id = e.pid;
    t.control_point = e.cp;
    t.offset = e.offset;
    t.range = e.range;
    result->tuples.push_back(t);
  }
}

/// Degenerate zero-length query: a single ONN point lookup expressed with
/// the same IOR machinery (no interval computation involved).
ConnResult DegenerateConn(const rtree::RStarTree& data_tree,
                          ObstacleSource* obstacle_source,
                          vis::VisGraph* vg, vis::ScanArena* arena,
                          const geom::Segment& q, const ConnOptions& opts,
                          QueryStats* stats) {
  ConnResult result;
  result.query = q;

  vis::QuerySession session(vg);
  const vis::VertexId target = session.AddFixedVertex(q.a);
  double retrieved = 0.0;
  double best = kInf;
  int64_t best_pid = kNoPoint;

  rtree::BestFirstIterator points(data_tree, q);
  rtree::DataObject obj;
  double dist = 0.0;
  while (points.PeekDist() < best) {
    CONN_CHECK(points.Next(&obj, &dist));
    // In the 1-tree configuration the same tree also yields obstacles.
    if (obj.kind != rtree::ObjectKind::kPoint) continue;
    ++stats->points_evaluated;
    const double od = IncrementalObstacleRetrieval(
        obstacle_source, vg, {target}, obj.AsPoint(), &retrieved, stats,
        /*out_scan=*/nullptr, arena, opts.use_warm_scan_restarts);
    if (od < best) {
      best = od;
      best_pid = obj.id;
    }
  }
  if (best_pid != kNoPoint) {
    ConnTuple t;
    t.point_id = best_pid;
    t.control_point = q.a;  // trivially: the query point itself
    t.offset = best;
    t.range = geom::Interval(0.0, 0.0);
    result.tuples.push_back(t);
  }
  return result;
}

}  // namespace

double ConnResult::OdistAt(double t) const {
  const geom::SegmentFrame frame(query);
  for (const ConnTuple& tup : tuples) {
    if (tup.range.ContainsApprox(t)) {
      if (tup.point_id == kNoPoint) return kInf;
      return geom::DistanceCurve::FromControlPoint(frame, tup.control_point,
                                                   tup.offset)
          .Eval(t);
    }
  }
  return kInf;
}

int64_t ConnResult::OnnAt(double t) const {
  for (const ConnTuple& tup : tuples) {
    if (tup.range.ContainsApprox(t)) return tup.point_id;
  }
  return kNoPoint;
}

std::vector<std::pair<int64_t, geom::Interval>> ConnResult::MergedByPoint()
    const {
  std::vector<std::pair<int64_t, geom::Interval>> merged;
  for (const ConnTuple& tup : tuples) {
    if (!merged.empty() && merged.back().first == tup.point_id &&
        std::abs(merged.back().second.hi - tup.range.lo) <=
            geom::kEpsParam) {
      merged.back().second.hi = tup.range.hi;
    } else {
      merged.emplace_back(tup.point_id, tup.range);
    }
  }
  return merged;
}

std::vector<double> ConnResult::SplitParams() const {
  std::vector<double> splits;
  const auto merged = MergedByPoint();
  for (size_t i = 0; i + 1 < merged.size(); ++i) {
    if (std::abs(merged[i].second.hi - merged[i + 1].second.lo) <=
        geom::kEpsParam) {
      splits.push_back(merged[i].second.hi);
    }
  }
  return splits;
}

ConnResult ConnQuery(const rtree::RStarTree& data_tree,
                     const rtree::RStarTree& obstacle_tree,
                     const geom::Segment& q, const ConnOptions& opts,
                     QueryWorkspace* workspace) {
  Timer timer;
  QueryStats stats;
  internal::PagerDelta data_io(data_tree.pager());
  internal::PagerDelta obstacle_io(obstacle_tree.pager());

  internal::ScopedQueryGraph graph(workspace, &data_tree, &obstacle_tree, q,
                                   &stats);
  vis::VisGraph* vg = graph.get();
  TreeObstacleSource obstacle_source(obstacle_tree, q);

  ConnResult result;
  if (q.Length() <= 0.0) {
    result = DegenerateConn(data_tree, &obstacle_source, vg, graph.arena(), q,
                            opts, &stats);
  } else {
    result.query = q;
    const geom::SegmentFrame frame(q);
    const geom::IntervalSet blocked =
        internal::BlockedIntervals(obstacle_tree, q);
    const geom::IntervalSet reachable =
        internal::ReachablePieces(blocked, q.Length(), &result.unreachable);

    vis::QuerySession session(vg);
    const std::vector<vis::VertexId> targets =
        internal::AddTargetVertices(&session, reachable, q);

    ResultList rl(reachable);
    rtree::BestFirstIterator points(data_tree, q);
    VisibleRegionCache vr_cache;
    double retrieved = 0.0;
    rtree::DataObject obj;
    double dist = 0.0;
    while (true) {
      const double peek = points.PeekDist();
      if (peek == kInf) break;
      if (opts.use_rlmax_terminate && peek > rl.RlMax(frame)) {
        ++stats.lemma2_terminations;  // Lemma 2: no remaining point matters
        break;
      }
      CONN_CHECK(points.Next(&obj, &dist));
      CONN_CHECK_MSG(obj.kind == rtree::ObjectKind::kPoint,
                     "data tree contains a non-point entry");
      ++stats.points_evaluated;
      const geom::Vec2 p = obj.AsPoint();
      std::unique_ptr<vis::DijkstraScan> scan;
      IncrementalObstacleRetrieval(&obstacle_source, vg, targets, p,
                                   &retrieved, &stats, &scan, graph.arena(),
                                   opts.use_warm_scan_restarts);
      const ControlPointList cpl = ComputeControlPointList(
          vg, scan.get(), p, frame, reachable, opts, &stats, &vr_cache);
      rl.Update(static_cast<int64_t>(obj.id), cpl, frame, opts, &stats);
    }
    stats.vr_cache_evictions += vr_cache.evictions();
    ExportTuples(rl, &result);
  }

  stats.vis_graph_vertices = vg->VertexCount();
  stats.data_page_reads = data_io.faults();
  stats.obstacle_page_reads = obstacle_io.faults();
  stats.buffer_hits = data_io.hits() + obstacle_io.hits();
  internal::AddPrefetchStats(data_io, &stats);
  internal::AddPrefetchStats(obstacle_io, &stats);
  stats.cpu_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  return result;
}

ConnResult ConnQuery1T(const rtree::RStarTree& unified_tree,
                       const geom::Segment& q, const ConnOptions& opts,
                       QueryWorkspace* workspace) {
  Timer timer;
  QueryStats stats;
  internal::PagerDelta io(unified_tree.pager());

  internal::ScopedQueryGraph graph(workspace, &unified_tree, nullptr, q,
                                   &stats);
  vis::VisGraph* vg = graph.get();
  UnifiedStream stream(unified_tree, q, vg);

  ConnResult result;
  if (q.Length() <= 0.0) {
    // For the degenerate case the unified stream acts as the obstacle
    // source; points it buffers are re-found by the dedicated iterator.
    result = DegenerateConn(unified_tree, &stream, vg, graph.arena(), q, opts,
                            &stats);
  } else {
    result.query = q;
    const geom::SegmentFrame frame(q);
    const geom::IntervalSet blocked =
        internal::BlockedIntervals(unified_tree, q);
    const geom::IntervalSet reachable =
        internal::ReachablePieces(blocked, q.Length(), &result.unreachable);

    vis::QuerySession session(vg);
    const std::vector<vis::VertexId> targets =
        internal::AddTargetVertices(&session, reachable, q);

    ResultList rl(reachable);
    VisibleRegionCache vr_cache;
    double retrieved = 0.0;
    rtree::DataObject obj;
    double dist = 0.0;
    while (true) {
      const double bound =
          opts.use_rlmax_terminate ? rl.RlMax(frame) : kInf;
      const StreamOutcome outcome = stream.NextPointWithin(bound, &obj, &dist);
      if (outcome != StreamOutcome::kYielded) {
        // Count Lemma 2 only when points beyond RLMAX remain — a drained
        // stream stopping the loop is exhaustion, not pruning.
        if (outcome == StreamOutcome::kBoundReached) {
          ++stats.lemma2_terminations;
        }
        break;
      }
      ++stats.points_evaluated;
      retrieved = std::max(retrieved, stream.retrieved_up_to());
      const geom::Vec2 p = obj.AsPoint();
      std::unique_ptr<vis::DijkstraScan> scan;
      IncrementalObstacleRetrieval(&stream, vg, targets, p, &retrieved,
                                   &stats, &scan, graph.arena(),
                                   opts.use_warm_scan_restarts);
      const ControlPointList cpl = ComputeControlPointList(
          vg, scan.get(), p, frame, reachable, opts, &stats, &vr_cache);
      rl.Update(static_cast<int64_t>(obj.id), cpl, frame, opts, &stats);
    }
    stats.vr_cache_evictions += vr_cache.evictions();
    ExportTuples(rl, &result);
  }

  stats.vis_graph_vertices = vg->VertexCount();
  stats.data_page_reads = io.faults();  // single tree: all I/O charged here
  stats.buffer_hits = io.hits();
  internal::AddPrefetchStats(io, &stats);
  stats.cpu_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  return result;
}

}  // namespace core
}  // namespace conn
