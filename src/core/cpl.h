// Control Point List Computation (CPLC) — Algorithm 2 of the paper.
//
// The control point list CPL(p, q) (Definition 9) partitions the query
// segment into intervals, each tagged with the vertex cp through which
// every shortest path from p to that interval passes (Definition 8), plus
// the accumulated distance ||p, cp||.  The obstructed distance from p to
// q(t) is then the simple curve ||p, cp|| + dist(cp, q(t)) — the form all
// split-point computation relies on.
//
// The computation walks the local visibility graph from p in ascending
// obstructed distance (an incremental Dijkstra scan) and, per settled
// vertex v with shortest-path predecessor u:
//   * restricts v's candidacy to VR(v) - VR(u)       (Lemma 5),
//   * drops intervals failing the triangle test      (Lemma 6),
//   * stops the scan at ||p, v|| >= CPLMAX           (Lemma 7),
// merging each surviving candidate into the list via the robust curve
// comparison of geom/split.h.

#ifndef CONN_CORE_CPL_H_
#define CONN_CORE_CPL_H_

#include <optional>
#include <vector>

#include "common/stats.h"
#include "core/options.h"
#include "geom/curve.h"
#include "geom/interval.h"
#include "geom/interval_set.h"
#include "vis/dijkstra.h"
#include "vis/vis_graph.h"

namespace conn {
namespace core {

/// One tuple <cp, R> of a control point list.  `has_cp == false` marks an
/// interval p cannot reach (no vertex sees it, or blocked entirely).
struct CplEntry {
  bool has_cp = false;
  geom::Vec2 cp;        ///< control point position
  double offset = 0.0;  ///< ||p, cp||
  geom::Interval range;

  /// Distance curve of this entry over the frame.
  geom::DistanceCurve Curve(const geom::SegmentFrame& frame) const {
    return geom::DistanceCurve::FromControlPoint(frame, cp, offset);
  }
};

/// Ordered partition of the query domain (the reachable part of q).
using ControlPointList = std::vector<CplEntry>;

/// Per-query cache of visible regions VR(v, q).  A vertex's visible region
/// depends only on the vertex and the obstacle set, not on the data point
/// being evaluated, so one cache serves every CPLC run of a query; it
/// self-invalidates when the graph's obstacle epoch advances.
///
/// Invalidation is selective: every sight-line contributing to VR(v) lies
/// inside the triangle (v, q.a, q.b), so an epoch bump only evicts entries
/// whose triangle's bounding box a newly added obstacle rectangle can
/// intersect — spatially distant entries survive the wave.
class VisibleRegionCache {
 public:
  /// The (cached) visible region of vertex \p v over the frame's segment.
  const geom::IntervalSet& Get(vis::VisGraph* vg, vis::VertexId v,
                               const geom::SegmentFrame& frame,
                               uint64_t* test_counter);

  /// Entries dropped by selective invalidation so far (-> stats).
  uint64_t evictions() const { return evictions_; }

 private:
  std::vector<std::optional<geom::IntervalSet>> cache_;
  uint64_t epoch_ = 0;
  size_t obstacle_watermark_ = 0;  ///< obstacles already reconciled
  uint64_t evictions_ = 0;
};

/// Computes CPL(p, q) on the (IOR-completed) local visibility graph,
/// restricted to \p domain — the reachable portion of the query segment
/// (sub-intervals of q inside obstacle interiors are excluded up front so
/// the Lemma 7 bound CPLMAX stays finite).
///
/// \p scan must be a Dijkstra scan from p over the current graph (normally
/// the one IOR just finished — its settlement log is replayed and extended
/// in place).  \p vr_cache (optional) shares visible regions across the
/// query's CPLC runs.  \p stats (optional) receives split/lemma counters.
ControlPointList ComputeControlPointList(vis::VisGraph* vg,
                                         vis::DijkstraScan* scan,
                                         geom::Vec2 p,
                                         const geom::SegmentFrame& frame,
                                         const geom::IntervalSet& domain,
                                         const ConnOptions& opts,
                                         QueryStats* stats,
                                         VisibleRegionCache* vr_cache);

/// Convenience overload: seeds its own scan and cache (tests, one-shot use).
ControlPointList ComputeControlPointList(vis::VisGraph* vg, geom::Vec2 p,
                                         const geom::SegmentFrame& frame,
                                         const geom::IntervalSet& domain,
                                         const ConnOptions& opts,
                                         QueryStats* stats);

/// CPLMAX of Lemma 7: the largest endpoint value over all entries
/// (+infinity while some interval has no control point yet).
double CplMax(const ControlPointList& cpl, const geom::SegmentFrame& frame);

/// Sanity check for tests: entries tile \p domain in order.
bool CplIsPartition(const ControlPointList& cpl,
                    const geom::IntervalSet& domain);

}  // namespace core
}  // namespace conn

#endif  // CONN_CORE_CPL_H_
