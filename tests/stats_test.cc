// Tests for the QueryStats cost model (Section 5.1: 10 ms per page fault)
// and the Status/StatusOr error plumbing.

#include <gtest/gtest.h>

#include "common/stats.h"
#include "common/status.h"

namespace conn {
namespace {

TEST(QueryStatsTest, CostModelChargesTenMsPerPage) {
  QueryStats s;
  s.data_page_reads = 7;
  s.obstacle_page_reads = 3;
  s.cpu_seconds = 0.5;
  EXPECT_EQ(s.TotalPageReads(), 10u);
  EXPECT_DOUBLE_EQ(s.IoSeconds(), 0.1);
  EXPECT_DOUBLE_EQ(s.QueryCostSeconds(), 0.6);
}

TEST(QueryStatsTest, AccumulateAndAverage) {
  QueryStats a;
  a.points_evaluated = 10;
  a.obstacles_evaluated = 4;
  a.cpu_seconds = 1.0;
  QueryStats b;
  b.points_evaluated = 20;
  b.obstacles_evaluated = 6;
  b.cpu_seconds = 3.0;
  a += b;
  EXPECT_EQ(a.points_evaluated, 30u);
  EXPECT_EQ(a.obstacles_evaluated, 10u);
  EXPECT_DOUBLE_EQ(a.cpu_seconds, 4.0);

  const QueryStats avg = a.AveragedOver(2);
  EXPECT_EQ(avg.points_evaluated, 15u);
  EXPECT_DOUBLE_EQ(avg.cpu_seconds, 2.0);
}

TEST(QueryStatsTest, ToStringMentionsKeyCounters) {
  QueryStats s;
  s.points_evaluated = 42;
  const std::string str = s.ToString();
  EXPECT_NE(str.find("NPE=42"), std::string::npos);
  EXPECT_NE(str.find("SVG"), std::string::npos);
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok_value(42);
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(ok_value.value(), 42);

  StatusOr<int> err(Status::NotFound("missing"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOut) {
  StatusOr<std::string> s(std::string("payload"));
  const std::string moved = std::move(s).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace conn
