// Tests for the QueryStats cost model (Section 5.1: 10 ms per page fault),
// the Status/StatusOr error plumbing, and the tick-loop reuse counters the
// subscription service reports.

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "common/status.h"
#include "datagen/datasets.h"
#include "datagen/fleet.h"
#include "exec/subscription.h"
#include "rtree/str_bulk_load.h"

namespace conn {
namespace {

TEST(QueryStatsTest, CostModelChargesTenMsPerPage) {
  QueryStats s;
  s.data_page_reads = 7;
  s.obstacle_page_reads = 3;
  s.cpu_seconds = 0.5;
  EXPECT_EQ(s.TotalPageReads(), 10u);
  EXPECT_DOUBLE_EQ(s.IoSeconds(), 0.1);
  EXPECT_DOUBLE_EQ(s.QueryCostSeconds(), 0.6);
}

TEST(QueryStatsTest, AccumulateAndAverage) {
  QueryStats a;
  a.points_evaluated = 10;
  a.obstacles_evaluated = 4;
  a.cpu_seconds = 1.0;
  QueryStats b;
  b.points_evaluated = 20;
  b.obstacles_evaluated = 6;
  b.cpu_seconds = 3.0;
  a.tick_warm_starts = 1;
  a.tick_frontier_reuse = 3;
  a.cross_shard_store_hits = 5;
  b.tick_warm_starts = 1;
  b.tick_frontier_reuse = 7;
  b.cross_shard_store_hits = 1;
  a += b;
  EXPECT_EQ(a.points_evaluated, 30u);
  EXPECT_EQ(a.obstacles_evaluated, 10u);
  EXPECT_DOUBLE_EQ(a.cpu_seconds, 4.0);
  EXPECT_EQ(a.tick_warm_starts, 2u);
  EXPECT_EQ(a.tick_frontier_reuse, 10u);
  EXPECT_EQ(a.cross_shard_store_hits, 6u);

  const QueryStats avg = a.AveragedOver(2);
  EXPECT_EQ(avg.points_evaluated, 15u);
  EXPECT_DOUBLE_EQ(avg.cpu_seconds, 2.0);
  EXPECT_EQ(avg.tick_warm_starts, 1u);
  EXPECT_EQ(avg.tick_frontier_reuse, 5u);
}

TEST(QueryStatsTest, TickReuseCountersEngageOnClusteredFleet) {
  // A clustered fleet over a real scene must exercise all three tick-loop
  // reuse paths: carried workspaces (tick_warm_starts), warm Dijkstra
  // restarts inside carried shards (tick_frontier_reuse), and obstacle
  // preseeding after resharding (cross_shard_store_hits).
  const datagen::DatasetPair pair = datagen::MakeDatasetPair(
      datagen::PointDistribution::kUniform, 150, 80, /*seed=*/99);
  const rtree::RStarTree tp =
      rtree::StrBulkLoad(datagen::ToPointObjects(pair.points)).value();
  const rtree::RStarTree to =
      rtree::StrBulkLoad(datagen::ToObstacleObjects(pair.obstacles)).value();

  datagen::FleetOptions fopts;
  fopts.pattern = datagen::FleetPattern::kClustered;
  fopts.depots = 2;
  fopts.depot_radius = 250.0;
  fopts.waypoints_per_route = 4;
  fopts.leg_length = 300.0;
  fopts.speed = 64.0;
  std::vector<datagen::FleetRoute> fleet = datagen::MakeFleetRoutes(
      /*n=*/10, datagen::Workspace(), fopts, /*seed=*/0x57A7);
  fleet[3].waypoints.resize(1);  // one stationary client: memo path

  exec::SubscriptionOptions opts;
  opts.batch.num_threads = 1;
  opts.batch.target_shard_size = 3;
  opts.batch.share_locality_factor = 0.0;
  opts.reshard_period = 2;  // frequent resharding: preseed participates

  exec::SubscriptionService service(tp, to, opts);
  for (datagen::FleetRoute& r : fleet) {
    ASSERT_TRUE(
        service.Subscribe(exec::RouteSpec{std::move(r.waypoints), r.speed}, 2)
            .ok());
  }

  QueryStats totals;
  for (int tick = 0; tick < 8; ++tick) {
    const exec::TickResult result = service.Tick();
    totals += result.stats.per_query_totals;
  }
  EXPECT_GT(totals.tick_warm_starts, 0u);
  EXPECT_GT(totals.tick_frontier_reuse, 0u);
  EXPECT_GT(totals.cross_shard_store_hits, 0u);
}

TEST(QueryStatsTest, ToStringMentionsKeyCounters) {
  QueryStats s;
  s.points_evaluated = 42;
  const std::string str = s.ToString();
  EXPECT_NE(str.find("NPE=42"), std::string::npos);
  EXPECT_NE(str.find("SVG"), std::string::npos);
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok_value(42);
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(ok_value.value(), 42);

  StatusOr<int> err(Status::NotFound("missing"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOut) {
  StatusOr<std::string> s(std::string("payload"));
  const std::string moved = std::move(s).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace conn
