// Property tests for the pin/unpin buffer pool:
//   * pinned frames are never evicted (and their bytes never move/change),
//   * the exact-LRU mode replays randomized read/write traces with the same
//     hit/miss sequence and resident set as the seed LruBuffer (which is
//     what makes the committed Fig. 12 fault counts reproducible),
//   * the default 2Q policy is scan-resistant where plain LRU is not,
//   * tree-level FetchNode caching serves identical nodes without re-parsing
//     and stays coherent across structural updates.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "rtree/rstar_tree.h"
#include "rtree/str_bulk_load.h"
#include "storage/buffer_pool.h"
#include "storage/lru_buffer.h"
#include "storage/pager.h"
#include "storage_test_util.h"

namespace conn {
namespace storage {
namespace {

/// A Pager with \p pages stamped pages and the given buffer configuration.
std::unique_ptr<Pager> MakePager(size_t pages, const BufferOptions& opts) {
  auto pager = std::make_unique<Pager>();
  for (size_t i = 0; i < pages; ++i) {
    const PageId id = pager->Allocate();
    CONN_CHECK(pager->Write(id, StampedPage(id)).ok());
  }
  pager->ConfigureBuffer(opts);  // drops pages cached during the writes
  pager->ResetCounters();
  return pager;
}

TEST(BufferPoolTest, PinnedFramesAreNeverEvicted) {
  BufferOptions opts;
  opts.capacity_pages = 4;
  opts.policy = EvictionPolicy::kExactLru;
  auto pager = MakePager(/*pages=*/32, opts);

  // Pin two pages and remember their frame addresses.
  StatusOr<PinnedPage> a = pager->Fetch(0);
  StatusOr<PinnedPage> b = pager->Fetch(1);
  ASSERT_TRUE(a.ok() && b.ok());
  const Page* addr_a = &a.value().page();
  const Page* addr_b = &b.value().page();

  // Churn far more distinct pages through the pool than it has frames.
  for (PageId id = 2; id < 32; ++id) ASSERT_TRUE(pager->Fetch(id).ok());

  // The pinned pages stayed resident, at the same addresses, unmodified.
  EXPECT_TRUE(pager->buffer_pool().Resident(0));
  EXPECT_TRUE(pager->buffer_pool().Resident(1));
  EXPECT_EQ(&a.value().page(), addr_a);
  EXPECT_EQ(&b.value().page(), addr_b);
  EXPECT_TRUE(PageMatchesStamp(a.value().page(), 0));
  EXPECT_TRUE(PageMatchesStamp(b.value().page(), 1));
  EXPECT_EQ(pager->buffer_pool().PinnedFrames(), 2u);

  a.value().Release();
  b.value().Release();
  EXPECT_EQ(pager->buffer_pool().PinnedFrames(), 0u);

  // Unpinned now: more churn may evict them again.
  for (PageId id = 2; id < 32; ++id) ASSERT_TRUE(pager->Fetch(id).ok());
  EXPECT_FALSE(pager->buffer_pool().Resident(0));
}

TEST(BufferPoolTest, FullyPinnedPoolServesOverflowCopies) {
  BufferOptions opts;
  opts.capacity_pages = 3;
  opts.policy = EvictionPolicy::kTwoQueue;
  auto pager = MakePager(/*pages=*/8, opts);

  std::vector<PinnedPage> pins;
  for (PageId id = 0; id < 3; ++id) {
    pins.push_back(std::move(pager->Fetch(id)).value());
  }
  EXPECT_EQ(pager->buffer_pool().PinnedFrames(), 3u);

  // Every frame is pinned: the next miss falls back to a handle-owned copy
  // (still a fault) and caches nothing; the pinned pages are untouched.
  StatusOr<PinnedPage> overflow = pager->Fetch(7);
  ASSERT_TRUE(overflow.ok());
  EXPECT_TRUE(PageMatchesStamp(overflow.value().page(), 7));
  EXPECT_FALSE(pager->buffer_pool().Resident(7));
  for (PageId id = 0; id < 3; ++id) {
    EXPECT_TRUE(pager->buffer_pool().Resident(id));
    EXPECT_TRUE(PageMatchesStamp(pins[id].page(), id));
  }
  EXPECT_EQ(pager->faults(), 4u);
}

// Replays a randomized read/write trace against the new pool in exact-LRU
// mode and against the seed LruBuffer wrapped in the seed Pager::Read logic,
// asserting the hit/miss outcome of every operation and the resident set
// after it agree exactly.
TEST(BufferPoolTest, ExactLruMatchesSeedLruBufferOnRandomizedTraces) {
  constexpr size_t kPages = 24;
  constexpr size_t kOps = 600;
  for (const size_t capacity : {1u, 2u, 3u, 5u, 8u, 16u}) {
    BufferOptions opts;
    opts.capacity_pages = capacity;
    opts.policy = EvictionPolicy::kExactLru;
    auto pager = MakePager(kPages, opts);

    LruBuffer model(capacity);  // the seed buffer manager
    uint64_t model_faults = 0, model_hits = 0;

    Rng rng(0xF00D + capacity);
    for (size_t op = 0; op < kOps; ++op) {
      const PageId id = static_cast<PageId>(rng.UniformU64(kPages));
      if (rng.Bernoulli(0.1)) {
        // Write path: seed semantics were write-through + Put.
        const Page page = StampedPage(id);
        ASSERT_TRUE(pager->Write(id, page).ok());
        model.Put(id, page);
      } else {
        // Read path: seed semantics were Get-else-fault-and-Put.
        Page copy;
        if (model.Get(id, &copy)) {
          ++model_hits;
        } else {
          ++model_faults;
          model.Put(id, StampedPage(id));
        }
        StatusOr<PinnedPage> view = pager->Fetch(id);
        ASSERT_TRUE(view.ok());
        EXPECT_TRUE(PageMatchesStamp(view.value().page(), id));
      }
      ASSERT_EQ(pager->faults(), model_faults)
          << "op " << op << " capacity " << capacity;
      ASSERT_EQ(pager->hits(), model_hits)
          << "op " << op << " capacity " << capacity;
      for (PageId p = 0; p < kPages; ++p) {
        ASSERT_EQ(pager->buffer_pool().Resident(p), model.Contains(p))
            << "op " << op << " capacity " << capacity << " page " << p;
      }
    }
  }
}

TEST(BufferPoolTest, TwoQueueIsScanResistantWhereLruIsNot) {
  // Hot working set of 4 pages touched twice per round (the R-tree pattern:
  // roots/internals are re-referenced within one query), interleaved with a
  // long scan of single-touch cold pages.  2Q promotes the double-touched
  // hot set into its protected queue; plain LRU lets every scan wash it out
  // and re-faults the hot set each round.
  constexpr uint64_t kHot = 4;
  constexpr uint64_t kCold = 64;
  constexpr uint64_t kRounds = 20;
  auto run = [&](EvictionPolicy policy) {
    BufferOptions opts;
    opts.capacity_pages = 8;
    opts.policy = policy;
    auto pager = MakePager(kHot + kCold, opts);
    for (uint64_t round = 0; round < kRounds; ++round) {
      for (int touch = 0; touch < 2; ++touch) {
        for (PageId id = 0; id < kHot; ++id) {
          CONN_CHECK(pager->Fetch(id).ok());
        }
      }
      for (PageId id = 0; id < kCold; ++id) {
        CONN_CHECK(pager->Fetch(static_cast<PageId>(kHot + id)).ok());
      }
    }
    return pager->faults();
  };
  const uint64_t lru_faults = run(EvictionPolicy::kExactLru);
  const uint64_t two_queue_faults = run(EvictionPolicy::kTwoQueue);
  // LRU re-faults the whole hot set every round (only the immediate second
  // touch hits): (hot + cold) faults per round.
  EXPECT_EQ(lru_faults, kRounds * (kHot + kCold));
  // 2Q faults the hot set only in round one; afterwards it lives in Am.
  EXPECT_EQ(two_queue_faults, kHot + kRounds * kCold);
}

TEST(BufferPoolTest, GhostHitPromotesReloadedPageToProtected) {
  BufferOptions opts;
  opts.capacity_pages = 4;  // A1in target = 1, ghost history = 16 ids
  opts.policy = EvictionPolicy::kTwoQueue;
  auto pager = MakePager(/*pages=*/16, opts);

  for (PageId id = 0; id < 5; ++id) ASSERT_TRUE(pager->Fetch(id).ok());
  // Page 0 was FIFO-evicted into the ghost queue.
  EXPECT_FALSE(pager->buffer_pool().Resident(0));
  // Re-loading it is a fault, but the ghost hit places it in Am...
  ASSERT_TRUE(pager->Fetch(0).ok());
  const uint64_t faults_after_reload = pager->faults();
  // ...so a long single-touch scan cannot evict it again.
  for (PageId id = 5; id < 16; ++id) ASSERT_TRUE(pager->Fetch(id).ok());
  EXPECT_TRUE(pager->buffer_pool().Resident(0));
  ASSERT_TRUE(pager->Fetch(0).ok());
  EXPECT_EQ(pager->faults(), faults_after_reload + 11);
  EXPECT_EQ(pager->hits(), 1u);
}

TEST(BufferPoolTest, TwoQueueNeverExceedsCapacity) {
  BufferOptions opts;
  opts.capacity_pages = 6;
  opts.policy = EvictionPolicy::kTwoQueue;
  auto pager = MakePager(/*pages=*/40, opts);
  Rng rng(99);
  for (size_t op = 0; op < 2000; ++op) {
    const PageId id = static_cast<PageId>(rng.UniformU64(40));
    ASSERT_TRUE(pager->Fetch(id).ok());
    ASSERT_LE(pager->buffer_pool().ResidentPages(), 6u);
  }
  EXPECT_EQ(pager->faults() + pager->hits(), 2000u);
}

TEST(BufferPoolTest, ReadaheadStagingDoesNotCountAsAFirstReference) {
  // A page staged by readahead and then demand-read once must behave like
  // any other single-touch page: it stays probationary and FIFO-evicts.
  // Otherwise a readahead-assisted sequential scan would promote every
  // cold page into the protected queue.
  BufferOptions opts;
  opts.capacity_pages = 4;  // A1in target = 1
  opts.policy = EvictionPolicy::kTwoQueue;
  opts.readahead_pages = 2;
  auto pager = MakePager(/*pages=*/16, opts);

  ASSERT_TRUE(pager->Fetch(0).ok());  // demand 0, stages 1 and 2
  EXPECT_TRUE(pager->buffer_pool().Resident(1));
  ASSERT_TRUE(pager->Fetch(1).ok());  // FIRST demand touch of staged page
  EXPECT_EQ(pager->hits(), 1u);
  ASSERT_TRUE(pager->Fetch(0).ok());  // SECOND demand touch: protected

  // Churn the probationary queue.
  ASSERT_TRUE(pager->Fetch(5).ok());
  ASSERT_TRUE(pager->Fetch(9).ok());
  // The once-demand-touched staged page washed out with the scan...
  EXPECT_FALSE(pager->buffer_pool().Resident(1));
  // ...while the twice-touched page is protected in Am.
  EXPECT_TRUE(pager->buffer_pool().Resident(0));
}

TEST(BufferPoolTest, EvictedPrefetchedPagesLeaveNoGhostHistory) {
  // A readahead-staged page evicted before any demand reference has no
  // reuse history: when demand finally arrives it must enter the
  // probationary queue (no ghost-hit shortcut into Am), while a page with
  // a real demand reference before its eviction does earn the promotion.
  BufferOptions opts;
  opts.capacity_pages = 4;  // A1in target = 1
  opts.policy = EvictionPolicy::kTwoQueue;
  opts.readahead_pages = 2;
  auto pager = MakePager(/*pages=*/16, opts);

  ASSERT_TRUE(pager->Fetch(0).ok());  // demand 0; stages 1 and 2
  // Fill the pool; readahead churn FIFO-evicts pages 0..2.  Page 0 had a
  // demand reference, pages 1 and 2 were prefetched-only.
  ASSERT_TRUE(pager->Fetch(6).ok());
  EXPECT_FALSE(pager->buffer_pool().Resident(1));
  // First demand access of the evicted prefetched page: probationary.
  ASSERT_TRUE(pager->Fetch(1).ok());
  // Demand re-load of the demand-referenced page: ghost hit, protected.
  ASSERT_TRUE(pager->Fetch(0).ok());
  // A single-touch scan washes page 1 out of the FIFO but leaves page 0.
  ASSERT_TRUE(pager->Fetch(10).ok());
  EXPECT_FALSE(pager->buffer_pool().Resident(1));
  EXPECT_TRUE(pager->buffer_pool().Resident(0));
}

TEST(BufferPoolTest, ConfigureDropsContentsAndGhostHistory) {
  BufferOptions opts;
  opts.capacity_pages = 4;
  auto pager = MakePager(/*pages=*/8, opts);
  for (PageId id = 0; id < 8; ++id) ASSERT_TRUE(pager->Fetch(id).ok());
  EXPECT_GT(pager->buffer_pool().ResidentPages(), 0u);
  pager->ConfigureBuffer(opts);
  EXPECT_EQ(pager->buffer_pool().ResidentPages(), 0u);
}

// --- tree-level decoded-node cache ---

rtree::RStarTree MakeTree(size_t objects) {
  std::vector<rtree::DataObject> objs;
  Rng rng(0xABCD);
  objs.reserve(objects);
  for (size_t i = 0; i < objects; ++i) {
    objs.push_back(rtree::DataObject::Point(
        {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, i));
  }
  return std::move(rtree::StrBulkLoad(std::move(objs)).value());
}

TEST(NodeCacheTest, HotNodesAreParsedOncePerResidency) {
  rtree::RStarTree tree = MakeTree(2000);
  tree.pager().SetBufferCapacity(tree.PageCount());
  StatusOr<rtree::ConstNodeRef> first = tree.FetchNode(tree.root());
  StatusOr<rtree::ConstNodeRef> second = tree.FetchNode(tree.root());
  ASSERT_TRUE(first.ok() && second.ok());
  // Same shared object: the second fetch reused the frame's decoded cache.
  EXPECT_EQ(first.value().get(), second.value().get());
}

TEST(NodeCacheTest, RefsSurviveEvictionOfTheirFrame) {
  rtree::RStarTree tree = MakeTree(4000);
  tree.pager().SetBufferCapacity(2);
  StatusOr<rtree::ConstNodeRef> root = tree.FetchNode(tree.root());
  ASSERT_TRUE(root.ok());
  const rtree::ConstNodeRef held = root.value();
  const uint16_t level = held->level;
  const size_t count = held->Count();
  // Evict the root's frame by touching many other pages.
  for (PageId id = 0; id < tree.PageCount(); ++id) {
    ASSERT_TRUE(tree.pager().Fetch(static_cast<PageId>(id)).ok());
  }
  // The shared node outlives its frame: same contents, no dangling.
  EXPECT_EQ(held->level, level);
  EXPECT_EQ(held->Count(), count);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(NodeCacheTest, InsertInvalidatesCachedNodes) {
  rtree::RStarTree tree = MakeTree(500);
  tree.pager().SetBufferCapacity(tree.PageCount() + 16);
  // Warm the decoded cache over the whole tree.
  ASSERT_TRUE(tree.Validate().ok());
  // Structural updates go through Pager::Write, which must drop stale
  // decoded nodes so subsequent reads see the new entries.
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        tree.Insert(rtree::DataObject::Point({i * 1.0, i * 2.0}, 10000 + i))
            .ok());
  }
  ASSERT_TRUE(tree.Validate().ok());
  std::vector<rtree::DataObject> found;
  ASSERT_TRUE(
      tree.RangeQuery(geom::Rect({-1, -1}, {1001, 1001}), &found).ok());
  EXPECT_EQ(found.size(), 550u);
}

}  // namespace
}  // namespace storage
}  // namespace conn
