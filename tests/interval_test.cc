// Unit and property tests for Interval and IntervalSet — the algebra every
// visible region, control point list, and result list is built on.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/interval_set.h"

namespace conn {
namespace geom {
namespace {

TEST(IntervalTest, EmptyAndLength) {
  EXPECT_TRUE(Interval().IsEmpty());
  EXPECT_FALSE(Interval(1, 2).IsEmpty());
  EXPECT_DOUBLE_EQ(Interval(1, 4).Length(), 3.0);
  EXPECT_DOUBLE_EQ(Interval(4, 1).Length(), 0.0);
}

TEST(IntervalTest, ContainsAndIntersect) {
  const Interval iv(2, 5);
  EXPECT_TRUE(iv.Contains(2));
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_FALSE(iv.Contains(5.0001));
  EXPECT_EQ(iv.Intersect(Interval(4, 9)), Interval(4, 5));
  EXPECT_TRUE(iv.Intersect(Interval(6, 9)).IsEmpty());
}

TEST(IntervalTest, OverlapsProperly) {
  EXPECT_TRUE(Interval(0, 5).OverlapsProperly(Interval(4, 9)));
  EXPECT_FALSE(Interval(0, 5).OverlapsProperly(Interval(5, 9)));  // touch
}

TEST(IntervalSetTest, NormalizationMergesAndSorts) {
  const IntervalSet s({Interval(5, 7), Interval(0, 2), Interval(1.5, 4)});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.intervals()[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(s.intervals()[0].hi, 4.0);
  EXPECT_DOUBLE_EQ(s.intervals()[1].lo, 5.0);
}

TEST(IntervalSetTest, DropsSlivers) {
  const IntervalSet s({Interval(0, 1e-9), Interval(5, 5)});
  EXPECT_TRUE(s.IsEmpty());
}

TEST(IntervalSetTest, UnionIntersectSubtract) {
  const IntervalSet a({Interval(0, 4), Interval(6, 10)});
  const IntervalSet b({Interval(3, 7)});
  const IntervalSet u = a.Union(b);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u.TotalLength(), 10.0);

  const IntervalSet i = a.Intersect(b);
  ASSERT_EQ(i.size(), 2u);
  EXPECT_DOUBLE_EQ(i.intervals()[0].lo, 3.0);
  EXPECT_DOUBLE_EQ(i.intervals()[0].hi, 4.0);
  EXPECT_DOUBLE_EQ(i.intervals()[1].lo, 6.0);
  EXPECT_DOUBLE_EQ(i.intervals()[1].hi, 7.0);

  const IntervalSet d = a.Subtract(b);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.intervals()[0].hi, 3.0);
  EXPECT_DOUBLE_EQ(d.intervals()[1].lo, 7.0);
}

TEST(IntervalSetTest, ComplementWithin) {
  const IntervalSet s({Interval(2, 3), Interval(5, 6)});
  const IntervalSet c = s.ComplementWithin(Interval(0, 10));
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.TotalLength(), 8.0);
}

TEST(IntervalSetTest, ContainsBinarySearch) {
  const IntervalSet s({Interval(0, 1), Interval(4, 5), Interval(8, 9)});
  EXPECT_TRUE(s.Contains(0.5));
  EXPECT_TRUE(s.Contains(4.0));
  EXPECT_TRUE(s.Contains(9.0));
  EXPECT_FALSE(s.Contains(2.0));
  EXPECT_FALSE(s.Contains(9.5));
}

// ---------------------------------------------------------------------------
// Property sweep: algebra laws on randomized sets, verified pointwise.
// ---------------------------------------------------------------------------

class IntervalSetProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  static IntervalSet RandomSet(Rng* rng) {
    std::vector<Interval> ivs;
    const int n = 1 + static_cast<int>(rng->UniformU64(6));
    for (int i = 0; i < n; ++i) {
      const double lo = rng->Uniform(0.0, 90.0);
      ivs.push_back(Interval(lo, lo + rng->Uniform(0.5, 15.0)));
    }
    return IntervalSet(std::move(ivs));
  }

  // Pointwise membership check at a probe grid, avoiding eps boundaries.
  static void ExpectPointwise(const IntervalSet& got, const IntervalSet& a,
                              const IntervalSet& b, char op) {
    for (double t = 0.05; t < 100.0; t += 0.327) {
      const bool in_a = a.Contains(t, 0.0);
      const bool in_b = b.Contains(t, 0.0);
      bool want = false;
      switch (op) {
        case 'u': want = in_a || in_b; break;
        case 'i': want = in_a && in_b; break;
        case 's': want = in_a && !in_b; break;
      }
      // Tolerate disagreement within eps of any boundary.
      bool near_boundary = false;
      for (const IntervalSet* set : {&a, &b, &got}) {
        for (const Interval& iv : set->intervals()) {
          if (std::abs(t - iv.lo) < 1e-3 || std::abs(t - iv.hi) < 1e-3) {
            near_boundary = true;
          }
        }
      }
      if (near_boundary) continue;
      EXPECT_EQ(got.Contains(t, 0.0), want) << "op=" << op << " t=" << t;
    }
  }
};

TEST_P(IntervalSetProperty, AlgebraLawsPointwise) {
  Rng rng(GetParam());
  const IntervalSet a = RandomSet(&rng);
  const IntervalSet b = RandomSet(&rng);
  ExpectPointwise(a.Union(b), a, b, 'u');
  ExpectPointwise(a.Intersect(b), a, b, 'i');
  ExpectPointwise(a.Subtract(b), a, b, 's');
}

TEST_P(IntervalSetProperty, SubtractComplementDuality) {
  Rng rng(GetParam() ^ 0xFEED);
  const IntervalSet a = RandomSet(&rng);
  const Interval domain(0.0, 120.0);
  // a - a == empty; a  union complement(a) == domain.
  EXPECT_TRUE(a.Subtract(a).IsEmpty());
  const IntervalSet whole = a.Union(a.ComplementWithin(domain));
  EXPECT_NEAR(whole.TotalLength(), domain.Length(), 1e-6);
}

TEST_P(IntervalSetProperty, IntersectIsCommutative) {
  Rng rng(GetParam() ^ 0xBEEF);
  const IntervalSet a = RandomSet(&rng);
  const IntervalSet b = RandomSet(&rng);
  EXPECT_NEAR(a.Intersect(b).TotalLength(), b.Intersect(a).TotalLength(),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace geom
}  // namespace conn
