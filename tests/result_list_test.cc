// Tests for ResultList / RLU (Algorithm 3): interval bookkeeping, winner
// selection, RLMAX semantics, and the Lemma 1 fast path's neutrality.

#include <cmath>

#include <gtest/gtest.h>

#include "core/result_list.h"

namespace conn {
namespace core {
namespace {

geom::SegmentFrame TestFrame() {
  return geom::SegmentFrame(geom::Segment({0, 0}, {100, 0}));
}

ControlPointList SelfCpl(geom::Vec2 p, double lo = 0.0, double hi = 100.0) {
  return {CplEntry{true, p, 0.0, geom::Interval(lo, hi)}};
}

TEST(ResultListTest, StartsUnsetWithInfiniteRlMax) {
  const geom::SegmentFrame frame = TestFrame();
  ResultList rl(geom::IntervalSet{geom::Interval(0, 100)});
  ASSERT_EQ(rl.entries().size(), 1u);
  EXPECT_FALSE(rl.entries()[0].has_value());
  EXPECT_TRUE(std::isinf(rl.RlMax(frame)));
  EXPECT_EQ(rl.OnnAt(50.0), kNoPoint);
  EXPECT_TRUE(std::isinf(rl.OdistAt(50.0, frame)));
}

TEST(ResultListTest, FirstPointTakesEverything) {
  const geom::SegmentFrame frame = TestFrame();
  ResultList rl(geom::IntervalSet{geom::Interval(0, 100)});
  rl.Update(7, SelfCpl({50, 10}), frame, {}, nullptr);
  ASSERT_EQ(rl.entries().size(), 1u);
  EXPECT_EQ(rl.entries()[0].pid, 7);
  EXPECT_DOUBLE_EQ(rl.OdistAt(50.0, frame), 10.0);
  // RLMAX = distance at the farther endpoint.
  EXPECT_NEAR(rl.RlMax(frame), std::hypot(50, 10), 1e-12);
}

TEST(ResultListTest, BisectorSplitBetweenTwoPoints) {
  const geom::SegmentFrame frame = TestFrame();
  ResultList rl(geom::IntervalSet{geom::Interval(0, 100)});
  rl.Update(1, SelfCpl({30, 10}), frame, {}, nullptr);
  rl.Update(2, SelfCpl({70, 10}), frame, {}, nullptr);
  ASSERT_EQ(rl.entries().size(), 2u);
  EXPECT_EQ(rl.OnnAt(10.0), 1);
  EXPECT_EQ(rl.OnnAt(90.0), 2);
  EXPECT_NEAR(rl.entries()[0].range.hi, 50.0, 1e-9);
}

TEST(ResultListTest, DominatedChallengerChangesNothing) {
  const geom::SegmentFrame frame = TestFrame();
  ResultList rl(geom::IntervalSet{geom::Interval(0, 100)});
  rl.Update(1, SelfCpl({50, 5}), frame, {}, nullptr);
  QueryStats stats;
  rl.Update(2, SelfCpl({50, 50}), frame, {}, &stats);  // strictly farther
  ASSERT_EQ(rl.entries().size(), 1u);
  EXPECT_EQ(rl.entries()[0].pid, 1);
  EXPECT_GE(stats.lemma1_prunes, 1u);  // the fast path should have fired
}

TEST(ResultListTest, Lemma1OffGivesSameAnswer) {
  const geom::SegmentFrame frame = TestFrame();
  ConnOptions no_prune;
  no_prune.use_lemma1_prune = false;

  ResultList a(geom::IntervalSet{geom::Interval(0, 100)});
  ResultList b(geom::IntervalSet{geom::Interval(0, 100)});
  const geom::Vec2 pts[] = {{30, 10}, {70, 10}, {50, 3}, {10, 40}, {90, 2}};
  for (int i = 0; i < 5; ++i) {
    a.Update(i, SelfCpl(pts[i]), frame, {}, nullptr);
    b.Update(i, SelfCpl(pts[i]), frame, no_prune, nullptr);
  }
  for (double t = 0.5; t < 100; t += 1.0) {
    EXPECT_EQ(a.OnnAt(t), b.OnnAt(t)) << "t=" << t;
    EXPECT_NEAR(a.OdistAt(t, frame), b.OdistAt(t, frame), 1e-9);
  }
}

TEST(ResultListTest, ChallengerWinsMiddleCreatesThreeEntries) {
  const geom::SegmentFrame frame = TestFrame();
  ResultList rl(geom::IntervalSet{geom::Interval(0, 100)});
  rl.Update(1, SelfCpl({50, 30}), frame, {}, nullptr);
  // Control point near the segment with an offset: wins a bounded window
  // around t=50 (Case 2: two split points).
  ControlPointList challenger = {
      CplEntry{true, {50, 2}, 15.0, geom::Interval(0, 100)}};
  rl.Update(2, challenger, frame, {}, nullptr);
  ASSERT_EQ(rl.entries().size(), 3u);
  EXPECT_EQ(rl.entries()[0].pid, 1);
  EXPECT_EQ(rl.entries()[1].pid, 2);
  EXPECT_EQ(rl.entries()[2].pid, 1);
}

TEST(ResultListTest, MultiPieceDomainKeepsGaps) {
  const geom::SegmentFrame frame = TestFrame();
  ResultList rl(geom::IntervalSet{
      std::vector<geom::Interval>{{0, 40}, {60, 100}}});
  rl.Update(1, SelfCpl({50, 10}), frame, {}, nullptr);
  ASSERT_EQ(rl.entries().size(), 2u);
  EXPECT_EQ(rl.OnnAt(50.0), kNoPoint);  // inside the gap
  EXPECT_EQ(rl.OnnAt(20.0), 1);
  EXPECT_EQ(rl.OnnAt(80.0), 1);
}

TEST(ResultListTest, PartialCplOnlyAffectsItsIntervals) {
  const geom::SegmentFrame frame = TestFrame();
  ResultList rl(geom::IntervalSet{geom::Interval(0, 100)});
  rl.Update(1, SelfCpl({50, 20}), frame, {}, nullptr);
  // A challenger whose CPL covers only [0, 30] (e.g. the rest is blocked).
  ControlPointList partial = {
      CplEntry{true, {10, 1}, 0.0, geom::Interval(0, 30)},
      CplEntry{false, {}, 0.0, geom::Interval(30, 100)}};
  rl.Update(2, partial, frame, {}, nullptr);
  EXPECT_EQ(rl.OnnAt(10.0), 2);
  EXPECT_EQ(rl.OnnAt(80.0), 1);
}

TEST(ResultListTest, AdjacentSamePointSameCurveMerges) {
  const geom::SegmentFrame frame = TestFrame();
  ResultList rl(geom::IntervalSet{geom::Interval(0, 100)});
  // Same point, same control point, delivered as two adjacent CPL pieces.
  ControlPointList split_cpl = {
      CplEntry{true, {50, 10}, 0.0, geom::Interval(0, 50)},
      CplEntry{true, {50, 10}, 0.0, geom::Interval(50, 100)}};
  rl.Update(1, split_cpl, frame, {}, nullptr);
  ASSERT_EQ(rl.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(rl.entries()[0].range.Length(), 100.0);
}

}  // namespace
}  // namespace core
}  // namespace conn
