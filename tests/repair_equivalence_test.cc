// Repair-vs-fresh bit-identity: the differential tick-repair path
// (ConnOptions::use_differential_repair — settlement-log coverage guard,
// capsule publish-back, reshard workspace adoption) must reproduce an
// independent per-tick COkNN evaluation bit-identically: tuples, candidate
// sets (pid, control point, offset), and unreachable intervals.  The
// repair path's whole claim is "less work, same bits"; stats are not
// compared (doing less work is the point), but the repair counters are
// asserted non-vacuous so a silently disengaged repair path cannot pass.
//
// Coverage matrix: uniform + Zipf points, k in {1, 3, 5}, both tree
// configurations, 1 and 4 worker threads, with mid-run membership churn
// (subscribe + unsubscribe triggers a reshard whose adoption pass must
// stay exact) and a quarantined client mid-stream (failure injection must
// not poison shared capsules for the survivors).

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "datagen/fleet.h"
#include "exec/subscription.h"
#include "rtree/str_bulk_load.h"

namespace conn {
namespace exec {
namespace {

struct Scene {
  datagen::DatasetPair pair;
  rtree::RStarTree tp;
  rtree::RStarTree to;
  rtree::RStarTree unified;
  std::vector<RouteSpec> routes;
};

Scene MakeScene(uint64_t seed, datagen::PointDistribution dist,
                size_t num_points, size_t num_obstacles, size_t num_clients) {
  Scene s;
  s.pair = datagen::MakeDatasetPair(dist, num_points, num_obstacles, seed);
  s.tp = rtree::StrBulkLoad(datagen::ToPointObjects(s.pair.points)).value();
  s.to =
      rtree::StrBulkLoad(datagen::ToObstacleObjects(s.pair.obstacles)).value();
  std::vector<rtree::DataObject> all = datagen::ToPointObjects(s.pair.points);
  for (const rtree::DataObject& o :
       datagen::ToObstacleObjects(s.pair.obstacles)) {
    all.push_back(o);
  }
  s.unified = rtree::StrBulkLoad(std::move(all)).value();

  datagen::FleetOptions fopts;
  fopts.pattern = datagen::FleetPattern::kClustered;
  fopts.depots = 2;
  fopts.depot_radius = 300.0;
  fopts.waypoints_per_route = 3;
  fopts.leg_length = 300.0;
  fopts.speed = 64.0;
  for (datagen::FleetRoute& r : datagen::MakeFleetRoutes(
           num_clients, datagen::Workspace(), fopts, seed ^ 0x5E77)) {
    // Every fourth client is stationary (a completed route): the memo path
    // must coexist with repair dispatch.
    if (s.routes.size() % 4 == 3) r.waypoints.resize(1);
    s.routes.push_back(RouteSpec{std::move(r.waypoints), r.speed});
  }
  return s;
}

void ExpectIntervalSetsEqual(const geom::IntervalSet& got,
                             const geom::IntervalSet& want) {
  ASSERT_EQ(got.intervals().size(), want.intervals().size());
  for (size_t i = 0; i < got.intervals().size(); ++i) {
    EXPECT_EQ(got.intervals()[i].lo, want.intervals()[i].lo);
    EXPECT_EQ(got.intervals()[i].hi, want.intervals()[i].hi);
  }
}

void ExpectCoknnEqual(const core::CoknnResult& got,
                      const core::CoknnResult& want) {
  ExpectIntervalSetsEqual(got.unreachable, want.unreachable);
  ASSERT_EQ(got.tuples.size(), want.tuples.size());
  for (size_t i = 0; i < got.tuples.size(); ++i) {
    const core::CoknnTuple& g = got.tuples[i];
    const core::CoknnTuple& x = want.tuples[i];
    EXPECT_EQ(g.range.lo, x.range.lo) << "tuple " << i;
    EXPECT_EQ(g.range.hi, x.range.hi) << "tuple " << i;
    ASSERT_EQ(g.candidates.size(), x.candidates.size()) << "tuple " << i;
    for (size_t c = 0; c < g.candidates.size(); ++c) {
      EXPECT_EQ(g.candidates[c].pid, x.candidates[c].pid)
          << "tuple " << i << " cand " << c;
      EXPECT_EQ(g.candidates[c].cp, x.candidates[c].cp)
          << "tuple " << i << " cand " << c;
      EXPECT_EQ(g.candidates[c].offset, x.candidates[c].offset)
          << "tuple " << i << " cand " << c;
    }
  }
}

SubscriptionOptions RepairOptions(size_t threads) {
  SubscriptionOptions opts;
  opts.batch.num_threads = threads;
  opts.batch.target_shard_size = 3;
  opts.batch.share_locality_factor = 0.0;  // force sharing: exactness bar
  opts.batch.query.use_tick_warm_start = true;
  opts.batch.query.use_differential_repair = true;
  opts.reshard_period = 3;  // small: adoption participates mid-run
  return opts;
}

struct Config {
  uint64_t seed;
  datagen::PointDistribution dist;
  size_t k;
  bool one_tree;
  size_t threads;
};

class RepairEquivalence : public ::testing::TestWithParam<Config> {};

TEST_P(RepairEquivalence, RepairLoopMatchesIndependentEvaluation) {
  const Config cfg = GetParam();
  const Scene scene =
      MakeScene(cfg.seed, cfg.dist, 140, 70, /*num_clients=*/8);

  const SubscriptionOptions opts = RepairOptions(cfg.threads);
  SubscriptionService service =
      cfg.one_tree ? SubscriptionService(scene.unified, opts)
                   : SubscriptionService(scene.tp, scene.to, opts);
  std::vector<int64_t> ids;
  for (const RouteSpec& r : scene.routes) {
    ids.push_back(service.Subscribe(r, cfg.k).value());
  }

  uint64_t repairs = 0;
  uint64_t carried = 0;
  uint64_t rescored = 0;
  for (uint64_t tick = 0; tick < 6; ++tick) {
    // Mid-run membership churn: the reshard it forces must adopt (or
    // rebuild) workspaces without disturbing exactness.
    if (tick == 2) {
      ASSERT_TRUE(service.Unsubscribe(ids[1]).ok());
      ids.push_back(service.Subscribe(scene.routes[1], cfg.k).value());
    }

    const TickResult result = service.Tick();
    ASSERT_EQ(result.updates.size(), size_t{8});
    EXPECT_EQ(result.quarantined_now, size_t{0});
    repairs += result.stats.per_query_totals.repairs_applied;
    carried += result.stats.per_query_totals.tuples_carried;
    rescored += result.stats.per_query_totals.tuples_rescored;

    for (const ClientUpdate& u : result.updates) {
      SCOPED_TRACE("tick " + std::to_string(tick) + " client " +
                   std::to_string(u.client));
      ASSERT_TRUE(u.status.ok());
      ASSERT_TRUE(u.result.has_value());
      EXPECT_EQ(u.result->query, u.segment);
      const core::CoknnResult want =
          cfg.one_tree
              ? core::CoknnQuery1T(scene.unified, u.segment, cfg.k)
              : core::CoknnQuery(scene.tp, scene.to, u.segment, cfg.k);
      ExpectCoknnEqual(*u.result, want);
    }
  }
  EXPECT_GT(repairs, 0u) << "repair path never engaged; test is vacuous";
  EXPECT_GT(carried + rescored, 0u) << "no point was ever classified";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RepairEquivalence,
    ::testing::Values(
        Config{41, datagen::PointDistribution::kUniform, 1, false, 1},
        Config{42, datagen::PointDistribution::kUniform, 3, false, 4},
        Config{43, datagen::PointDistribution::kUniform, 5, true, 1},
        Config{44, datagen::PointDistribution::kZipf, 1, true, 4},
        Config{45, datagen::PointDistribution::kZipf, 3, false, 1},
        Config{46, datagen::PointDistribution::kZipf, 5, false, 4},
        Config{47, datagen::PointDistribution::kUniform, 3, true, 4},
        Config{48, datagen::PointDistribution::kZipf, 5, true, 1}),
    [](const ::testing::TestParamInfo<Config>& info) {
      const Config& c = info.param;
      return (c.dist == datagen::PointDistribution::kUniform ? "Uniform"
                                                             : "Zipf") +
             std::string("K") + std::to_string(c.k) +
             (c.one_tree ? "OneTree" : "TwoTrees") + "T" +
             std::to_string(c.threads) + "Seed" + std::to_string(c.seed);
    });

TEST(RepairEquivalence, QuarantinedClientDoesNotPoisonSharedFrontier) {
  // One client fails at tick 2 and is quarantined.  Its capsules may
  // remain in the shard's settlement log — they are coverage facts about
  // the graph, true regardless of who proved them — so the survivors must
  // keep producing bit-identical answers after the victim vanishes.
  const Scene scene =
      MakeScene(49, datagen::PointDistribution::kUniform, 140, 70, 8);

  SubscriptionOptions faulty = RepairOptions(/*threads=*/1);
  SubscriptionService probe(scene.tp, scene.to, faulty);
  std::vector<int64_t> ids;
  for (const RouteSpec& r : scene.routes) {
    ids.push_back(probe.Subscribe(r, 3).value());
  }
  const int64_t victim = ids[2];
  faulty.failure_injector = [victim](int64_t client, uint64_t tick) {
    if (client == victim && tick >= 2) {
      return Status::InvalidArgument("injected tick fault");
    }
    return Status::OK();
  };

  SubscriptionService service(scene.tp, scene.to, faulty);
  std::vector<int64_t> got_ids;
  for (const RouteSpec& r : scene.routes) {
    got_ids.push_back(service.Subscribe(r, 3).value());
  }
  ASSERT_EQ(got_ids, ids);

  uint64_t repairs = 0;
  for (uint64_t tick = 0; tick < 6; ++tick) {
    SCOPED_TRACE("tick " + std::to_string(tick));
    const TickResult result = service.Tick();
    repairs += result.stats.per_query_totals.repairs_applied;
    ASSERT_EQ(result.updates.size(), tick <= 2 ? size_t{8} : size_t{7});
    EXPECT_EQ(result.quarantined_now, tick == 2 ? size_t{1} : size_t{0});
    for (const ClientUpdate& u : result.updates) {
      SCOPED_TRACE("client " + std::to_string(u.client));
      if (u.client == victim && tick == 2) {
        EXPECT_FALSE(u.status.ok());
        EXPECT_FALSE(u.result.has_value());
        continue;
      }
      ASSERT_TRUE(u.status.ok());
      ASSERT_TRUE(u.result.has_value());
      const core::CoknnResult want =
          core::CoknnQuery(scene.tp, scene.to, u.segment, 3);
      ExpectCoknnEqual(*u.result, want);
    }
  }
  EXPECT_EQ(service.quarantined_clients(), size_t{1});
  EXPECT_GT(repairs, 0u) << "repair path never engaged; test is vacuous";
}

}  // namespace
}  // namespace exec
}  // namespace conn
