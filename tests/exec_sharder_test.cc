// Tests for the batch executor's plumbing: STR locality sharding and the
// worker pool.

#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "exec/sharder.h"
#include "exec/thread_pool.h"

namespace conn {
namespace exec {
namespace {

geom::Segment Seg(double x, double y) {
  return geom::Segment({x, y}, {x + 10.0, y + 10.0});
}

TEST(SharderTest, EveryIndexAppearsExactlyOnce) {
  std::vector<geom::Segment> queries;
  for (int i = 0; i < 37; ++i) {
    queries.push_back(Seg(100.0 * (i % 7), 100.0 * (i / 7)));
  }
  const auto shards = ShardByLocality(queries, 5);
  std::set<size_t> seen;
  size_t total = 0;
  for (const auto& shard : shards) {
    EXPECT_FALSE(shard.empty());
    EXPECT_LE(shard.size(), 5u);
    for (size_t idx : shard) {
      EXPECT_TRUE(seen.insert(idx).second) << "index " << idx << " duplicated";
      ++total;
    }
  }
  EXPECT_EQ(total, queries.size());
}

TEST(SharderTest, SingleShardWhenBatchFitsTarget) {
  std::vector<geom::Segment> queries = {Seg(0, 0), Seg(500, 500), Seg(900, 0)};
  const auto shards = ShardByLocality(queries, 8);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].size(), 3u);
}

TEST(SharderTest, DeterministicAcrossCalls) {
  std::vector<geom::Segment> queries;
  for (int i = 0; i < 23; ++i) {
    queries.push_back(Seg(37.0 * ((i * 13) % 11), 53.0 * ((i * 7) % 9)));
  }
  EXPECT_EQ(ShardByLocality(queries, 4), ShardByLocality(queries, 4));
}

TEST(SharderTest, ClusteredQueriesShardTogether) {
  // Four tight clusters in the workspace corners; with the shard size equal
  // to the cluster size, each shard must stay within one cluster.
  const geom::Vec2 corners[4] = {{0, 0}, {9000, 0}, {0, 9000}, {9000, 9000}};
  std::vector<geom::Segment> queries;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 5; ++i) {
      queries.push_back(Seg(corners[c].x + 10.0 * i, corners[c].y + 10.0 * i));
    }
  }
  const auto shards = ShardByLocality(queries, 5);
  ASSERT_EQ(shards.size(), 4u);
  for (const auto& shard : shards) {
    ASSERT_EQ(shard.size(), 5u);
    const size_t cluster = shard[0] / 5;
    for (size_t idx : shard) {
      EXPECT_EQ(idx / 5, cluster) << "shard mixes clusters";
    }
  }
}

TEST(SharderTest, ZeroTargetIsClampedToOne) {
  std::vector<geom::Segment> queries = {Seg(0, 0), Seg(100, 100)};
  const auto shards = ShardByLocality(queries, 0);
  EXPECT_EQ(shards.size(), 2u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);

  // The pool stays usable after an idle round-trip.
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 150);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();
  SUCCEED();
}

}  // namespace
}  // namespace exec
}  // namespace conn
