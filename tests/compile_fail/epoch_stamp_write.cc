// MUST NOT COMPILE (any compiler): writes a ScanArena epoch-stamp array
// directly.  The stamp arrays are private with DijkstraScan as the only
// friend — "clearing" scan state is an O(1) epoch bump through the arena
// API, and a hand-rolled O(V) wipe would silently reintroduce the
// per-restart cost PR 3 removed.  conn-tidy's conn-arena-epoch-reset check
// enforces the same invariant for code that *can* name the members.

#include "vis/dijkstra.h"

int main() {
  conn::vis::ScanArena arena;
  arena.dist_stamp_.clear();  // error: 'dist_stamp_' is private
  return 0;
}
