// MUST NOT COMPILE (-Werror=unused-result): discards the [[nodiscard]]
// PageRequest returned by Pager::FetchAsync — the abandoned handle's
// destructor still synchronizes with the I/O worker, but the caller paid a
// fault for bytes nobody will ever read.

#include "storage/pager.h"

int main() {
  conn::storage::Pager pager;
  pager.FetchAsync(0);  // error: ignoring nodiscard conn::storage::PageRequest
  return 0;
}
