// MUST NOT COMPILE (Clang, -Werror=thread-safety): calls a REQUIRES(mu)
// method without holding mu.  This is the annotation BufferPool's private
// helpers rely on ("must be called under the frame's shard latch").

#include "common/mutex.h"

namespace {

struct Counter {
  conn::Mutex mu;
  int value GUARDED_BY(mu) = 0;

  void Bump() REQUIRES(mu) { ++value; }
};

}  // namespace

int main() {
  Counter c;
  c.Bump();  // error: calling Bump() requires holding mutex 'mu'
  return 0;
}
