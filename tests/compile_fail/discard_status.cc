// MUST NOT COMPILE (-Werror=unused-result): drops the Status returned by
// PageFile::Write on the floor — the exact silent-error pattern
// [[nodiscard]] on conn::Status exists to reject.

#include "storage/page_file.h"

int main() {
  conn::storage::PageFile file;
  const conn::storage::PageId id = file.Allocate();
  conn::storage::Page page;
  file.Write(id, page);  // error: ignoring nodiscard conn::Status
  return 0;
}
