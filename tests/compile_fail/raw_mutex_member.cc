// MUST NOT COMPILE (Clang, -Werror=thread-safety): a raw std::mutex member
// used as the guard of a GUARDED_BY field.  std::mutex carries no
// capability annotation, so the attribute is rejected — the only latch type
// the analysis (and the repo) accepts is conn::Mutex from common/mutex.h.
// conn-tidy's conn-raw-sync-primitive check enforces the same rule
// semantically over every declaration, not just annotated ones.

#include <mutex>

#include "common/mutex.h"

namespace {

struct Counter {
  std::mutex mu;  // raw primitive: not a capability
  int value GUARDED_BY(mu) = 0;  // error: 'guarded_by' needs a capability
};

}  // namespace

int main() {
  Counter c;
  std::lock_guard<std::mutex> lock(c.mu);
  return c.value;
}
