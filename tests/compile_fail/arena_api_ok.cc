// Positive control for the project-invariant rules: the *sanctioned* APIs
// the fail cases route around, used correctly, under the full flag set.
// Scan state is touched only through ScanArena + DijkstraScan, and the
// latch is the capability-annotated conn::Mutex.  Must always compile.

#include "common/mutex.h"
#include "vis/dijkstra.h"

namespace {

struct GuardedLog {
  conn::Mutex mu;
  double furthest GUARDED_BY(mu) = 0.0;
};

// A fresh scan (or a warm Revalidate) is how epochs move — never by
// touching the stamp arrays.
double FurthestSettled(conn::vis::VisGraph* graph, GuardedLog* out) {
  conn::vis::ScanArena arena;
  conn::vis::DijkstraScan scan(graph, {0.0, 0.0}, &arena);
  conn::vis::VertexId v = 0;
  double dist = 0.0;
  int32_t pred = 0;
  double last = 0.0;
  while (scan.Next(&v, &dist, &pred)) last = dist;
  scan.Revalidate();
  conn::MutexLock lock(out->mu);
  out->furthest = last;
  return last;
}

}  // namespace

int main() {
  GuardedLog log;
  (void)FurthestSettled(nullptr, &log);
  return 0;
}
