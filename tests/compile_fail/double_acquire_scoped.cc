// MUST NOT COMPILE (Clang, -Werror=thread-safety): acquires the same
// SCOPED_CAPABILITY lock twice in one scope — conn::Mutex is not
// recursive, so this self-deadlocks at runtime; the analysis rejects it
// statically.

#include "common/mutex.h"

int main() {
  conn::Mutex mu;
  conn::MutexLock first(mu);
  conn::MutexLock second(mu);  // error: acquiring mutex 'mu' already held
  return 0;
}
