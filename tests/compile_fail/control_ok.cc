// Positive control for the negative-compilation harness: exercises every
// construct the fail cases abuse, used *correctly*, under the full warning
// flag set.  Must always compile — if it stops compiling, the harness (or
// an include path / flag) is broken, not the production code.

#include "common/mutex.h"
#include "common/status.h"
#include "storage/page_file.h"
#include "storage/pager.h"

namespace {

struct Counter {
  conn::Mutex mu;
  int value GUARDED_BY(mu) = 0;

  void Bump() REQUIRES(mu) { ++value; }
};

int LockedRead(Counter& c) {
  conn::MutexLock lock(c.mu);
  c.Bump();
  return c.value;
}

conn::Status ConsumedStatus(conn::storage::PageFile& f) {
  conn::storage::Page p;
  CONN_RETURN_IF_ERROR(f.Write(f.Allocate(), p));
  return conn::Status::OK();
}

double ConsumedStatusOr(conn::storage::Pager& pager) {
  conn::StatusOr<conn::storage::PinnedPage> view = pager.Fetch(0);
  if (!view.ok()) return -1.0;
  return static_cast<double>(view.value().id());
}

double ConsumedPageRequest(conn::storage::Pager& pager) {
  conn::storage::PageRequest req = pager.FetchAsync(0);
  conn::StatusOr<conn::storage::PinnedPage> view = req.Wait();
  if (!view.ok()) return -1.0;
  return static_cast<double>(view.value().id());
}

}  // namespace

int main() {
  Counter c;
  conn::storage::PageFile file;
  conn::storage::Pager pager;
  (void)LockedRead(c);
  // Explicit void casts are the sanctioned discard idiom (and themselves
  // part of the control: they must stay warning-free).
  (void)ConsumedStatus(file);
  (void)ConsumedStatusOr(pager);
  (void)ConsumedPageRequest(pager);
  return 0;
}
