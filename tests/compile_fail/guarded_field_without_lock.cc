// MUST NOT COMPILE (Clang, -Werror=thread-safety): reads and writes a
// GUARDED_BY field without holding its latch — the plain data race the
// capability analysis turns into a compile error.

#include "common/mutex.h"

namespace {

struct Counter {
  conn::Mutex mu;
  int value GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.value = 7;       // error: writing variable 'value' requires holding 'mu'
  return c.value;    // error: reading variable 'value' requires holding 'mu'
}
