// MUST NOT COMPILE (-Werror=unused-result): discards the
// StatusOr<PinnedPage> returned by Pager::Fetch — dropping it loses both
// the error and the pinned view.

#include "storage/pager.h"

int main() {
  conn::storage::Pager pager;
  pager.Fetch(0);  // error: ignoring nodiscard conn::StatusOr<PinnedPage>
  return 0;
}
