// Batch-vs-single equivalence: BatchRunner must reproduce the per-query
// engine's answers exactly — tuples, candidate sets, unreachable intervals,
// and the algorithmic per-query statistics that are invariant under
// workspace sharing (NPE and Lemma-2 terminations; obstacle/graph/Dijkstra
// counters legitimately differ because the shared graph accumulates across
// the shard, and I/O deltas are only meaningful in aggregate).
//
// Workloads are randomized per Section 5.1's recipe at test scale: uniform
// and Zipf point sets over street-rect obstacles, varying k, both tree
// configurations.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "datagen/workload.h"
#include "exec/batch.h"
#include "rtree/str_bulk_load.h"

namespace conn {
namespace exec {
namespace {

struct Workload {
  datagen::DatasetPair pair;
  rtree::RStarTree tp;
  rtree::RStarTree to;
  rtree::RStarTree unified;
  std::vector<geom::Segment> queries;
};

Workload MakeBatchWorkload(uint64_t seed, datagen::PointDistribution dist,
                           size_t num_points, size_t num_obstacles,
                           size_t num_queries) {
  Workload w;
  w.pair = datagen::MakeDatasetPair(dist, num_points, num_obstacles, seed);
  w.tp = rtree::StrBulkLoad(datagen::ToPointObjects(w.pair.points)).value();
  w.to =
      rtree::StrBulkLoad(datagen::ToObstacleObjects(w.pair.obstacles)).value();
  std::vector<rtree::DataObject> all =
      datagen::ToPointObjects(w.pair.points);
  for (const rtree::DataObject& o :
       datagen::ToObstacleObjects(w.pair.obstacles)) {
    all.push_back(o);
  }
  w.unified = rtree::StrBulkLoad(std::move(all)).value();

  datagen::WorkloadOptions wopts;
  wopts.query_length = 450.0;
  w.queries = datagen::MakeWorkload(num_queries, datagen::Workspace(), wopts,
                                    {}, seed ^ 0xBA7C4);
  return w;
}

void ExpectIntervalSetsEqual(const geom::IntervalSet& got,
                             const geom::IntervalSet& want) {
  ASSERT_EQ(got.intervals().size(), want.intervals().size());
  for (size_t i = 0; i < got.intervals().size(); ++i) {
    EXPECT_EQ(got.intervals()[i].lo, want.intervals()[i].lo);
    EXPECT_EQ(got.intervals()[i].hi, want.intervals()[i].hi);
  }
}

void ExpectCoknnEqual(const core::CoknnResult& got,
                      const core::CoknnResult& want, size_t qi) {
  SCOPED_TRACE("query " + std::to_string(qi));
  ExpectIntervalSetsEqual(got.unreachable, want.unreachable);
  ASSERT_EQ(got.tuples.size(), want.tuples.size());
  for (size_t i = 0; i < got.tuples.size(); ++i) {
    const core::CoknnTuple& g = got.tuples[i];
    const core::CoknnTuple& x = want.tuples[i];
    EXPECT_EQ(g.range.lo, x.range.lo) << "tuple " << i;
    EXPECT_EQ(g.range.hi, x.range.hi) << "tuple " << i;
    ASSERT_EQ(g.candidates.size(), x.candidates.size()) << "tuple " << i;
    for (size_t c = 0; c < g.candidates.size(); ++c) {
      EXPECT_EQ(g.candidates[c].pid, x.candidates[c].pid)
          << "tuple " << i << " cand " << c;
      EXPECT_EQ(g.candidates[c].cp, x.candidates[c].cp)
          << "tuple " << i << " cand " << c;
      EXPECT_EQ(g.candidates[c].offset, x.candidates[c].offset)
          << "tuple " << i << " cand " << c;
    }
  }
  EXPECT_EQ(got.stats.points_evaluated, want.stats.points_evaluated);
  EXPECT_EQ(got.stats.lemma2_terminations, want.stats.lemma2_terminations);
}

void ExpectConnEqual(const core::ConnResult& got, const core::ConnResult& want,
                     size_t qi) {
  SCOPED_TRACE("query " + std::to_string(qi));
  ExpectIntervalSetsEqual(got.unreachable, want.unreachable);
  ASSERT_EQ(got.tuples.size(), want.tuples.size());
  for (size_t i = 0; i < got.tuples.size(); ++i) {
    EXPECT_EQ(got.tuples[i].point_id, want.tuples[i].point_id) << "tuple " << i;
    EXPECT_EQ(got.tuples[i].control_point, want.tuples[i].control_point)
        << "tuple " << i;
    EXPECT_EQ(got.tuples[i].offset, want.tuples[i].offset) << "tuple " << i;
    EXPECT_EQ(got.tuples[i].range.lo, want.tuples[i].range.lo) << "tuple " << i;
    EXPECT_EQ(got.tuples[i].range.hi, want.tuples[i].range.hi) << "tuple " << i;
  }
  EXPECT_EQ(got.stats.points_evaluated, want.stats.points_evaluated);
  EXPECT_EQ(got.stats.lemma2_terminations, want.stats.lemma2_terminations);
}

struct Config {
  uint64_t seed;
  datagen::PointDistribution dist;
  size_t k;
  bool one_tree;
};

class BatchEquivalence : public ::testing::TestWithParam<Config> {};

TEST_P(BatchEquivalence, CoknnMatchesSingleQueryEngine) {
  const Config cfg = GetParam();
  const Workload w =
      MakeBatchWorkload(cfg.seed, cfg.dist, 140, 70, /*num_queries=*/10);

  std::vector<BatchQuery> batch;
  for (const geom::Segment& q : w.queries) {
    batch.push_back(BatchQuery::Coknn(q, cfg.k));
  }

  BatchOptions opts;
  opts.num_threads = 2;
  opts.target_shard_size = 3;
  opts.share_locality_factor = 0.0;  // force sharing: exactness is the point
  const BatchRunner runner =
      cfg.one_tree ? BatchRunner(w.unified, opts)
                   : BatchRunner(w.tp, w.to, opts);
  const BatchResult result = runner.Run(batch);

  ASSERT_EQ(result.outcomes.size(), w.queries.size());
  EXPECT_GT(result.stats.shard_count, 1u);
  for (size_t i = 0; i < w.queries.size(); ++i) {
    const core::CoknnResult want =
        cfg.one_tree ? core::CoknnQuery1T(w.unified, w.queries[i], cfg.k)
                     : core::CoknnQuery(w.tp, w.to, w.queries[i], cfg.k);
    ASSERT_TRUE(result.outcomes[i].coknn.has_value());
    ExpectCoknnEqual(*result.outcomes[i].coknn, want, i);
  }
}

TEST_P(BatchEquivalence, ConnMatchesSingleQueryEngine) {
  const Config cfg = GetParam();
  const Workload w = MakeBatchWorkload(cfg.seed ^ 0xC0FFEE, cfg.dist, 120, 60,
                                       /*num_queries=*/8);

  std::vector<BatchQuery> batch;
  for (const geom::Segment& q : w.queries) batch.push_back(BatchQuery::Conn(q));

  BatchOptions opts;
  opts.num_threads = 2;
  opts.target_shard_size = 3;
  opts.share_locality_factor = 0.0;  // force sharing: exactness is the point
  const BatchRunner runner =
      cfg.one_tree ? BatchRunner(w.unified, opts)
                   : BatchRunner(w.tp, w.to, opts);
  const BatchResult result = runner.Run(batch);

  for (size_t i = 0; i < w.queries.size(); ++i) {
    const core::ConnResult want =
        cfg.one_tree ? core::ConnQuery1T(w.unified, w.queries[i])
                     : core::ConnQuery(w.tp, w.to, w.queries[i]);
    ASSERT_TRUE(result.outcomes[i].conn.has_value());
    ExpectConnEqual(*result.outcomes[i].conn, want, i);
  }
}

TEST_P(BatchEquivalence, SharedAndUnsharedWorkspacesAgree) {
  const Config cfg = GetParam();
  const Workload w =
      MakeBatchWorkload(cfg.seed ^ 0x5EED, cfg.dist, 100, 50, 6);

  std::vector<BatchQuery> batch;
  for (const geom::Segment& q : w.queries) {
    batch.push_back(BatchQuery::Coknn(q, cfg.k));
  }

  BatchOptions shared;
  shared.num_threads = 1;
  shared.target_shard_size = 3;
  shared.share_locality_factor = 0.0;
  BatchOptions unshared = shared;
  unshared.share_workspace = false;

  const BatchRunner a = cfg.one_tree ? BatchRunner(w.unified, shared)
                                     : BatchRunner(w.tp, w.to, shared);
  const BatchRunner b = cfg.one_tree ? BatchRunner(w.unified, unshared)
                                     : BatchRunner(w.tp, w.to, unshared);
  const BatchResult ra = a.Run(batch);
  const BatchResult rb = b.Run(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectCoknnEqual(*ra.outcomes[i].coknn, *rb.outcomes[i].coknn, i);
  }
  // Only the shared configuration reuses obstacles.
  EXPECT_EQ(rb.stats.obstacle_reuse_hits, 0u);
}

TEST(BatchLocalityGuard, ClusteredPointQueriesStillShare) {
  // Zero-length CONN queries (DegenerateConn point lookups) have no MBR
  // extent of their own; the guard's obstacle-spacing floor must keep a
  // tight cluster of them on the sharing path under *default* options.
  // Hand-built scene: the lone data point sits behind a wall, so every
  // query's IOR must retrieve that wall — the first inserts it, the rest
  // hit the shared workspace.
  const rtree::RStarTree tp =
      rtree::StrBulkLoad(
          {rtree::DataObject::Point({5600.0, 5000.0}, /*id=*/0)})
          .value();
  const rtree::RStarTree to =
      rtree::StrBulkLoad({rtree::DataObject::Obstacle(
                             geom::Rect({5200, 4800}, {5300, 5200}), /*id=*/0)})
          .value();

  std::vector<BatchQuery> batch;
  for (int i = 0; i < 6; ++i) {
    const geom::Vec2 p{5000.0 + 10.0 * i, 5000.0 + 5.0 * i};
    batch.push_back(BatchQuery::Conn(geom::Segment(p, p)));
  }

  const BatchRunner runner(tp, to, BatchOptions{});
  const BatchResult result = runner.Run(batch);
  EXPECT_GT(result.stats.obstacle_reuse_hits, 0u)
      << "the locality guard disabled sharing for a tight point cluster";
  for (size_t i = 0; i < batch.size(); ++i) {
    const core::ConnResult want = core::ConnQuery(tp, to, batch[i].segment);
    ASSERT_TRUE(result.outcomes[i].conn.has_value());
    ExpectConnEqual(*result.outcomes[i].conn, want, i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BatchEquivalence,
    ::testing::Values(
        Config{11, datagen::PointDistribution::kUniform, 1, false},
        Config{12, datagen::PointDistribution::kUniform, 3, false},
        Config{13, datagen::PointDistribution::kUniform, 3, true},
        Config{14, datagen::PointDistribution::kZipf, 1, false},
        Config{15, datagen::PointDistribution::kZipf, 5, false},
        Config{16, datagen::PointDistribution::kZipf, 3, true}),
    [](const ::testing::TestParamInfo<Config>& info) {
      const Config& c = info.param;
      return (c.dist == datagen::PointDistribution::kUniform ? "Uniform"
                                                             : "Zipf") +
             std::string("K") + std::to_string(c.k) +
             (c.one_tree ? "OneTree" : "TwoTrees") + "Seed" +
             std::to_string(c.seed);
    });

}  // namespace
}  // namespace exec
}  // namespace conn
