// Fault parity guard for the async-pipeline refactor: with async_io off
// the miss path must be byte-for-byte the pre-refactor synchronous code,
// so replaying the Fig. 12 benchmark recipe (bench/fig12_buffer.cc at the
// smoke scale its committed baseline was recorded under) must reproduce
// the baseline's exact-LRU fault counts — the numbers published in
// baselines/README.md — exactly.  A drift of even one fault here means
// the refactor changed the reference fetch path, not just added to it.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/coknn.h"
#include "datagen/datasets.h"
#include "datagen/workload.h"
#include "rtree/rstar_tree.h"
#include "rtree/str_bulk_load.h"
#include "storage/buffer_pool.h"

namespace conn {
namespace core {
namespace {

// bench_common.h smoke defaults: CONN_BENCH_SCALE=0.05,
// CONN_BENCH_QUERIES=3, seed 7777, warm-up half equal to the measured
// half, ql=4.5%, k=5.
constexpr double kScale = 0.05;
constexpr size_t kQueries = 3;
constexpr uint64_t kSeed = 7777;

struct BaselinePoint {
  double buffer_percent;
  uint64_t faults;  // baselines/README.md, CL exact-lru curve
};

TEST(Fig12Parity, SyncPathReproducesCommittedExactLruFaults) {
  const size_t num_points =
      static_cast<size_t>(datagen::kCaCardinality * kScale);
  const size_t num_obstacles =
      static_cast<size_t>(datagen::kLaCardinality * kScale);
  const datagen::DatasetPair pair = datagen::MakeDatasetPair(
      datagen::PointDistribution::kClustered, num_points, num_obstacles,
      /*seed=*/0xC0DE + num_points * 31 + num_obstacles * 7);
  rtree::RStarTree tp =
      rtree::StrBulkLoad(datagen::ToPointObjects(pair.points)).value();
  rtree::RStarTree to =
      rtree::StrBulkLoad(datagen::ToObstacleObjects(pair.obstacles)).value();

  datagen::WorkloadOptions wopts;
  wopts.query_length = datagen::QueryLengthFromPercent(4.5);
  const std::vector<geom::Segment> warmup = datagen::MakeWorkload(
      kQueries, datagen::Workspace(), wopts, {}, kSeed * 13 + 5);
  const std::vector<geom::Segment> workload =
      datagen::MakeWorkload(kQueries, datagen::Workspace(), wopts, {}, kSeed);

  const std::vector<BaselinePoint> curve{
      {0.0, 21}, {2.0, 20}, {8.0, 16}, {32.0, 10}};
  for (const BaselinePoint& point : curve) {
    SCOPED_TRACE("bs=" + std::to_string(point.buffer_percent) + "%");
    for (rtree::RStarTree* tree : {&tp, &to}) {
      storage::BufferOptions opts = tree->pager().buffer_pool().options();
      opts.capacity_pages = static_cast<size_t>(
          tree->PageCount() * point.buffer_percent / 100.0);
      opts.policy = storage::EvictionPolicy::kExactLru;
      opts.async_io = false;  // the reference path under test
      tree->pager().ConfigureBuffer(opts);
      tree->pager().ResetCounters();
    }
    for (const geom::Segment& q : warmup) {
      CoknnQuery(tp, to, q, /*k=*/5);
    }
    tp.pager().ResetCounters();
    to.pager().ResetCounters();

    QueryStats total;
    for (const geom::Segment& q : workload) {
      total += CoknnQuery(tp, to, q, /*k=*/5).stats;
    }
    EXPECT_EQ(total.AveragedOver(kQueries).TotalPageReads(), point.faults);
  }
}

}  // namespace
}  // namespace core
}  // namespace conn
