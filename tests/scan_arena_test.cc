// Scan-arena equivalence and regression suite.
//
// The arena-backed Dijkstra machinery (epoch-stamped state, grid-ring
// seeding, warm IOR restarts via DijkstraScan::Revalidate) is a pure
// optimization: every observable result must be bit-identical to the
// fresh-scan reference path.  This file checks that contract at two
// levels — directly on randomized scans interrupted by obstacle waves,
// and end-to-end through CoknnQuery/ConnQuery in both tree configurations
// with warm restarts on vs. off — plus regressions for the SettleTargets
// target-accounting rewrite (duplicate ids, unreachable targets, and
// already-settled targets left beyond the consumer cursor).

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/coknn.h"
#include "core/conn.h"
#include "datagen/datasets.h"
#include "datagen/workload.h"
#include "rtree/str_bulk_load.h"
#include "vis/dijkstra.h"
#include "vis/vis_graph.h"

namespace conn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Scan-level: Revalidate() after obstacle waves == fresh scan on the grown
// graph, settlement log compared entry by entry (v, dist, pred all exact).
// ---------------------------------------------------------------------------

std::vector<vis::DijkstraScan::Settled> Drain(vis::DijkstraScan* scan) {
  std::vector<vis::DijkstraScan::Settled> out;
  vis::VertexId v;
  double d;
  int32_t pred;
  while (scan->Next(&v, &d, &pred)) out.push_back({v, d, pred});
  return out;
}

geom::Rect RandomObstacle(Rng* rng) {
  const double x = rng->Uniform(0.0, 95.0);
  const double y = rng->Uniform(0.0, 95.0);
  const double w = rng->Uniform(0.5, 6.0);
  const double h = rng->Uniform(0.5, 6.0);
  return geom::Rect({x, y}, {x + w, y + h});
}

TEST(ScanArenaWarmTest, RevalidateMatchesFreshScanOnRandomScenes) {
  const geom::Rect domain({-5, -5}, {105, 105});
  for (uint64_t trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Rng rng(0xA1E7A + trial);
    vis::VisGraph g(domain);
    rtree::ObjectId next_id = 0;
    const size_t initial = 3 + rng.UniformU64(5);
    for (size_t i = 0; i < initial; ++i) {
      g.AddObstacle(RandomObstacle(&rng), next_id++);
    }
    const geom::Vec2 src{rng.Uniform(0, 100), rng.Uniform(0, 100)};

    vis::ScanArena arena;
    vis::DijkstraScan warm(&g, src, &arena);
    // Two obstacle waves with partial settlement in between, like IOR's
    // Lemma-3 iterations.
    for (int wave = 0; wave < 2; ++wave) {
      warm.EnsureSettled(rng.UniformU64(g.VertexCount() + 1));
      const size_t extra = 1 + rng.UniformU64(4);
      for (size_t i = 0; i < extra; ++i) {
        g.AddObstacle(RandomObstacle(&rng), next_id++);
      }
      warm.Revalidate();
    }
    const auto got = Drain(&warm);

    vis::DijkstraScan fresh(&g, src);
    const auto want = Drain(&fresh);

    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].v, want[i].v) << "entry " << i;
      EXPECT_EQ(got[i].dist, want[i].dist) << "entry " << i;
      EXPECT_EQ(got[i].pred, want[i].pred) << "entry " << i;
    }
  }
}

TEST(ScanArenaWarmTest, MultiWaveRevalidateMatchesFreshScanAfterEveryWave) {
  // The tick loop re-drives Revalidate on a long-lived scan arena wave
  // after wave; one warm restart being exact does not imply the fifth is
  // (rollback bookkeeping compounds).  2-5 successive waves on one live
  // scan, fully drained and checked against a fresh scan after EVERY
  // wave: same settled count, and bit-identical distance per vertex.
  const geom::Rect domain({-5, -5}, {105, 105});
  for (uint64_t trial = 0; trial < 25; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Rng rng(0xB0B5C + trial);
    vis::VisGraph g(domain);
    rtree::ObjectId next_id = 0;
    const size_t initial = 2 + rng.UniformU64(4);
    for (size_t i = 0; i < initial; ++i) {
      g.AddObstacle(RandomObstacle(&rng), next_id++);
    }
    const geom::Vec2 src{rng.Uniform(0, 100), rng.Uniform(0, 100)};

    vis::ScanArena arena;
    vis::DijkstraScan warm(&g, src, &arena);
    Drain(&warm);  // settle everything before the first wave

    const size_t waves = 2 + rng.UniformU64(4);
    for (size_t wave = 0; wave < waves; ++wave) {
      SCOPED_TRACE("wave " + std::to_string(wave));
      const size_t extra = 1 + rng.UniformU64(4);
      for (size_t i = 0; i < extra; ++i) {
        g.AddObstacle(RandomObstacle(&rng), next_id++);
      }
      warm.Revalidate();
      Drain(&warm);

      vis::DijkstraScan fresh(&g, src);
      const auto want = Drain(&fresh);
      ASSERT_EQ(warm.SettledCount(), want.size());
      for (const vis::DijkstraScan::Settled& e : want) {
        ASSERT_TRUE(warm.IsSettled(e.v)) << "vertex " << e.v;
        EXPECT_EQ(warm.DistOf(e.v), e.dist) << "vertex " << e.v;
      }
    }
  }
}

TEST(ScanArenaWarmTest, MultiWaveRevalidateWithTargetsMatchesFreshScan) {
  // Same multi-wave growth, but interleaved with partial settlement and
  // SettleTargets probes — the access pattern CPLC drives between IOR
  // waves.  The warm target distance after every wave must equal a fresh
  // scan's.
  const geom::Rect domain({-5, -5}, {105, 105});
  for (uint64_t trial = 0; trial < 25; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Rng rng(0x7A46E7 + trial);
    vis::VisGraph g(domain);
    rtree::ObjectId next_id = 0;
    const size_t initial = 2 + rng.UniformU64(4);
    for (size_t i = 0; i < initial; ++i) {
      g.AddObstacle(RandomObstacle(&rng), next_id++);
    }
    const vis::VertexId target =
        g.AddFixedVertex({rng.Uniform(0, 100), rng.Uniform(0, 100)});
    const geom::Vec2 src{rng.Uniform(0, 100), rng.Uniform(0, 100)};

    vis::ScanArena arena;
    vis::DijkstraScan warm(&g, src, &arena);
    const size_t waves = 2 + rng.UniformU64(4);
    for (size_t wave = 0; wave < waves; ++wave) {
      SCOPED_TRACE("wave " + std::to_string(wave));
      warm.EnsureSettled(rng.UniformU64(g.VertexCount() + 1));
      const size_t extra = 1 + rng.UniformU64(4);
      for (size_t i = 0; i < extra; ++i) {
        g.AddObstacle(RandomObstacle(&rng), next_id++);
      }
      warm.Revalidate();
      const double got = warm.SettleTargets({target});

      vis::DijkstraScan fresh(&g, src);
      EXPECT_EQ(got, fresh.SettleTargets({target}));
    }
  }
}

TEST(ScanArenaWarmTest, RevalidateKeepsConsumedPrefixReadable) {
  // Revalidate must clamp the consumer cursor into the truncated log and
  // keep Next() producing the exact fresh-scan sequence afterwards.
  const geom::Rect domain({-5, -5}, {105, 105});
  vis::VisGraph g(domain);
  g.AddObstacle(geom::Rect({40, 40}, {45, 60}), 0);
  g.AddObstacle(geom::Rect({60, 20}, {70, 25}), 1);
  const geom::Vec2 src{10, 50};

  vis::ScanArena arena;
  vis::DijkstraScan warm(&g, src, &arena);
  // Consume a few entries through the public cursor API.
  vis::VertexId v;
  double d;
  int32_t pred;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(warm.Next(&v, &d, &pred));
  // Wave lands near the source: most of the log rolls back.
  g.AddObstacle(geom::Rect({12, 48}, {14, 52}), 2);
  warm.Revalidate();
  std::vector<vis::DijkstraScan::Settled> tail = Drain(&warm);

  vis::DijkstraScan fresh(&g, src);
  const auto want = Drain(&fresh);
  // The warm tail must be a suffix of the fresh log (the consumed prefix
  // was read before the cursor clamp), matching entry for entry.
  ASSERT_LE(tail.size(), want.size());
  const size_t offset = want.size() - tail.size();
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].v, want[offset + i].v) << "entry " << i;
    EXPECT_EQ(tail[i].dist, want[offset + i].dist) << "entry " << i;
    EXPECT_EQ(tail[i].pred, want[offset + i].pred) << "entry " << i;
  }
  // And the prefix the warm scan reported before the wave agrees with the
  // fresh log's prefix distances via the settled accessors.
  for (size_t i = 0; i < offset; ++i) {
    EXPECT_TRUE(warm.IsSettled(want[i].v));
    EXPECT_EQ(warm.DistOf(want[i].v), want[i].dist);
  }
}

TEST(ScanArenaTest, SharedArenaScansMatchPrivateArenaScans) {
  // Consecutive scans on one arena must not leak state into each other.
  const geom::Rect domain({-5, -5}, {105, 105});
  Rng rng(0x5EED5);
  vis::VisGraph g(domain);
  for (rtree::ObjectId id = 0; id < 6; ++id) {
    g.AddObstacle(RandomObstacle(&rng), id);
  }
  vis::ScanArena arena;
  for (int i = 0; i < 8; ++i) {
    const geom::Vec2 src{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    vis::DijkstraScan pooled(&g, src, &arena);
    vis::DijkstraScan fresh(&g, src);
    const auto got = Drain(&pooled);
    const auto want = Drain(&fresh);
    ASSERT_EQ(got.size(), want.size()) << "scan " << i;
    for (size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].v, want[j].v);
      EXPECT_EQ(got[j].dist, want[j].dist);
      EXPECT_EQ(got[j].pred, want[j].pred);
    }
  }
}

// ---------------------------------------------------------------------------
// SettleTargets regressions.
// ---------------------------------------------------------------------------

TEST(SettleTargetsTest, DuplicateTargetsSettleNoFurtherThanUnique) {
  const geom::Rect domain({-5, -5}, {105, 105});
  vis::VisGraph g(domain);
  g.AddObstacle(geom::Rect({40, 40}, {60, 45}), 0);
  g.AddObstacle(geom::Rect({20, 60}, {25, 80}), 1);
  const vis::VertexId t = g.AddFixedVertex({50, 70});

  vis::DijkstraScan dup(&g, {10, 10});
  const double d_dup = dup.SettleTargets({t, t, t});
  vis::DijkstraScan uniq(&g, {10, 10});
  const double d_uniq = uniq.SettleTargets({t});
  EXPECT_EQ(d_dup, d_uniq);
  EXPECT_LT(d_dup, kInf);
  // The duplicate-count bug over-reported `remaining` and drained the
  // whole graph; equal settled counts prove the early stop survived.
  EXPECT_EQ(dup.SettledCount(), uniq.SettledCount());
}

TEST(SettleTargetsTest, UnreachableTargetReturnsInfinityAndTerminates) {
  const geom::Rect domain({-5, -5}, {105, 105});
  vis::VisGraph g(domain);
  // The target sits strictly inside an obstacle: every sight-line to it
  // crosses the interior, so it can never be settled.
  g.AddObstacle(geom::Rect({40, 40}, {60, 60}), 0);
  const vis::VertexId sealed = g.AddFixedVertex({50, 50});
  const vis::VertexId open = g.AddFixedVertex({80, 80});

  vis::DijkstraScan scan(&g, {10, 10});
  const double d = scan.SettleTargets({sealed, open, sealed});
  EXPECT_EQ(d, kInf);
  EXPECT_TRUE(scan.IsSettled(open));
  EXPECT_FALSE(scan.IsSettled(sealed));
  EXPECT_LT(scan.DistOf(open), kInf);
}

TEST(SettleTargetsTest, AlreadySettledTargetBeyondCursorIsNotDoubleCounted) {
  // EnsureSettled extends the log without moving the Next() cursor.  A
  // later SettleTargets call then replays already-settled entries; its
  // remaining-counter must not treat them as fresh settlements (the old
  // linear-search accounting did, stopping before the real target and
  // reporting +infinity for a reachable vertex).
  const geom::Rect domain({-5, -5}, {105, 105});
  vis::VisGraph g(domain);
  g.AddObstacle(geom::Rect({30, 10}, {35, 90}), 0);
  const vis::VertexId near_v = g.AddFixedVertex({15, 52});
  const vis::VertexId far_v = g.AddFixedVertex({90, 50});

  vis::DijkstraScan scan(&g, {10, 50});
  // Settle a prefix that includes near_v but not far_v, cursor untouched.
  ASSERT_TRUE(scan.EnsureSettled(0));
  size_t i = 0;
  while (!scan.IsSettled(near_v)) {
    ASSERT_TRUE(scan.EnsureSettled(++i));
  }
  ASSERT_FALSE(scan.IsSettled(far_v));

  const double d = scan.SettleTargets({near_v, far_v});
  EXPECT_TRUE(scan.IsSettled(far_v));
  EXPECT_LT(d, kInf);

  vis::DijkstraScan fresh(&g, {10, 50});
  EXPECT_EQ(d, fresh.SettleTargets({near_v, far_v}));
}

// ---------------------------------------------------------------------------
// Engine-level: warm restarts vs. the fresh-scan reference path must agree
// bit for bit across randomized workloads (uniform + Zipf obstacles, both
// tree configurations, k in {1, 3, 5}).
// ---------------------------------------------------------------------------

struct Workload {
  datagen::DatasetPair pair;
  rtree::RStarTree tp;
  rtree::RStarTree to;
  rtree::RStarTree unified;
  std::vector<geom::Segment> queries;
};

Workload MakeWorkload(uint64_t seed, datagen::PointDistribution dist,
                      size_t num_points, size_t num_obstacles,
                      size_t num_queries) {
  Workload w;
  w.pair = datagen::MakeDatasetPair(dist, num_points, num_obstacles, seed);
  w.tp = rtree::StrBulkLoad(datagen::ToPointObjects(w.pair.points)).value();
  w.to =
      rtree::StrBulkLoad(datagen::ToObstacleObjects(w.pair.obstacles)).value();
  std::vector<rtree::DataObject> all = datagen::ToPointObjects(w.pair.points);
  for (const rtree::DataObject& o :
       datagen::ToObstacleObjects(w.pair.obstacles)) {
    all.push_back(o);
  }
  w.unified = rtree::StrBulkLoad(std::move(all)).value();

  datagen::WorkloadOptions wopts;
  wopts.query_length = 450.0;
  w.queries = datagen::MakeWorkload(num_queries, datagen::Workspace(), wopts,
                                    {}, seed ^ 0xA9E4A);
  return w;
}

void ExpectIntervalSetsEqual(const geom::IntervalSet& got,
                             const geom::IntervalSet& want) {
  ASSERT_EQ(got.intervals().size(), want.intervals().size());
  for (size_t i = 0; i < got.intervals().size(); ++i) {
    EXPECT_EQ(got.intervals()[i].lo, want.intervals()[i].lo);
    EXPECT_EQ(got.intervals()[i].hi, want.intervals()[i].hi);
  }
}

void ExpectCoknnEqual(const core::CoknnResult& got,
                      const core::CoknnResult& want, size_t qi) {
  SCOPED_TRACE("query " + std::to_string(qi));
  ExpectIntervalSetsEqual(got.unreachable, want.unreachable);
  ASSERT_EQ(got.tuples.size(), want.tuples.size());
  for (size_t i = 0; i < got.tuples.size(); ++i) {
    const core::CoknnTuple& g = got.tuples[i];
    const core::CoknnTuple& x = want.tuples[i];
    EXPECT_EQ(g.range.lo, x.range.lo) << "tuple " << i;
    EXPECT_EQ(g.range.hi, x.range.hi) << "tuple " << i;
    ASSERT_EQ(g.candidates.size(), x.candidates.size()) << "tuple " << i;
    for (size_t c = 0; c < g.candidates.size(); ++c) {
      EXPECT_EQ(g.candidates[c].pid, x.candidates[c].pid)
          << "tuple " << i << " cand " << c;
      EXPECT_EQ(g.candidates[c].cp, x.candidates[c].cp)
          << "tuple " << i << " cand " << c;
      EXPECT_EQ(g.candidates[c].offset, x.candidates[c].offset)
          << "tuple " << i << " cand " << c;
    }
  }
  EXPECT_EQ(got.stats.points_evaluated, want.stats.points_evaluated);
  EXPECT_EQ(got.stats.lemma2_terminations, want.stats.lemma2_terminations);
}

struct Config {
  uint64_t seed;
  datagen::PointDistribution dist;
  size_t k;
  bool one_tree;
};

class ScanArenaEquivalence : public ::testing::TestWithParam<Config> {};

TEST_P(ScanArenaEquivalence, WarmRestartsMatchFreshScanReference) {
  const Config cfg = GetParam();
  const Workload w = MakeWorkload(cfg.seed, cfg.dist, 130, 80,
                                  /*num_queries=*/8);
  core::ConnOptions warm;
  warm.use_warm_scan_restarts = true;
  core::ConnOptions cold;
  cold.use_warm_scan_restarts = false;

  QueryStats warm_totals;
  QueryStats cold_totals;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    const core::CoknnResult got =
        cfg.one_tree ? core::CoknnQuery1T(w.unified, w.queries[i], cfg.k, warm)
                     : core::CoknnQuery(w.tp, w.to, w.queries[i], cfg.k, warm);
    const core::CoknnResult want =
        cfg.one_tree ? core::CoknnQuery1T(w.unified, w.queries[i], cfg.k, cold)
                     : core::CoknnQuery(w.tp, w.to, w.queries[i], cfg.k, cold);
    ExpectCoknnEqual(got, want, i);
    warm_totals += got.stats;
    cold_totals += want.stats;
  }
  // The comparison must actually exercise warm restarts, and the reference
  // path must never take one.
  EXPECT_GT(warm_totals.scan_warm_restarts, 0u);
  EXPECT_EQ(cold_totals.scan_warm_restarts, 0u);
  // A warm restart replaces a full re-scan: the warm path must do strictly
  // less settlement work.
  EXPECT_LT(warm_totals.dijkstra_settled, cold_totals.dijkstra_settled);
}

TEST_P(ScanArenaEquivalence, ConnWarmRestartsMatchFreshScanReference) {
  const Config cfg = GetParam();
  const Workload w = MakeWorkload(cfg.seed ^ 0xF00D, cfg.dist, 110, 60,
                                  /*num_queries=*/6);
  core::ConnOptions warm;
  warm.use_warm_scan_restarts = true;
  core::ConnOptions cold;
  cold.use_warm_scan_restarts = false;

  for (size_t i = 0; i < w.queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const core::ConnResult got =
        cfg.one_tree ? core::ConnQuery1T(w.unified, w.queries[i], warm)
                     : core::ConnQuery(w.tp, w.to, w.queries[i], warm);
    const core::ConnResult want =
        cfg.one_tree ? core::ConnQuery1T(w.unified, w.queries[i], cold)
                     : core::ConnQuery(w.tp, w.to, w.queries[i], cold);
    ExpectIntervalSetsEqual(got.unreachable, want.unreachable);
    ASSERT_EQ(got.tuples.size(), want.tuples.size());
    for (size_t t = 0; t < got.tuples.size(); ++t) {
      EXPECT_EQ(got.tuples[t].point_id, want.tuples[t].point_id);
      EXPECT_EQ(got.tuples[t].control_point, want.tuples[t].control_point);
      EXPECT_EQ(got.tuples[t].offset, want.tuples[t].offset);
      EXPECT_EQ(got.tuples[t].range.lo, want.tuples[t].range.lo);
      EXPECT_EQ(got.tuples[t].range.hi, want.tuples[t].range.hi);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ScanArenaEquivalence,
    ::testing::Values(
        Config{21, datagen::PointDistribution::kUniform, 1, false},
        Config{22, datagen::PointDistribution::kUniform, 3, false},
        Config{23, datagen::PointDistribution::kUniform, 5, true},
        Config{24, datagen::PointDistribution::kZipf, 1, true},
        Config{25, datagen::PointDistribution::kZipf, 3, false},
        Config{26, datagen::PointDistribution::kZipf, 5, false}),
    [](const ::testing::TestParamInfo<Config>& info) {
      const Config& c = info.param;
      return (c.dist == datagen::PointDistribution::kUniform ? "Uniform"
                                                             : "Zipf") +
             std::string("K") + std::to_string(c.k) +
             (c.one_tree ? "OneTree" : "TwoTrees") + "Seed" +
             std::to_string(c.seed);
    });

}  // namespace
}  // namespace conn
