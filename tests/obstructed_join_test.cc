// Tests for the obstructed join family (e-distance join, closest pairs,
// semi-join) against brute-force oracles.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/naive.h"
#include "core/obstructed_join.h"
#include "datagen/datasets.h"
#include "rtree/str_bulk_load.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

struct JoinScene {
  std::vector<geom::Vec2> a, b;
  std::vector<geom::Rect> obstacles;
  rtree::RStarTree ta, tb, to;
};

JoinScene MakeJoinScene(uint64_t seed, size_t na, size_t nb, size_t no) {
  Rng rng(seed);
  JoinScene s;
  for (size_t i = 0; i < no; ++i) {
    const geom::Vec2 lo{rng.Uniform(50, 900), rng.Uniform(50, 900)};
    s.obstacles.push_back(geom::Rect(
        lo, {lo.x + rng.Uniform(5, 100), lo.y + rng.Uniform(5, 100)}));
  }
  for (size_t i = 0; i < na; ++i) {
    s.a.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  for (size_t i = 0; i < nb; ++i) {
    s.b.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  datagen::DisplacePointsOutsideObstacles(&s.a, s.obstacles, seed ^ 1);
  datagen::DisplacePointsOutsideObstacles(&s.b, s.obstacles, seed ^ 2);
  s.ta = std::move(rtree::StrBulkLoad(datagen::ToPointObjects(s.a))).value();
  s.tb = std::move(rtree::StrBulkLoad(datagen::ToPointObjects(s.b))).value();
  s.to = std::move(rtree::StrBulkLoad(datagen::ToObstacleObjects(s.obstacles)))
             .value();
  return s;
}

TEST(ObstructedJoinTest, WallSeparatesAnEuclideanPair) {
  JoinScene s;
  s.a = {{0, 0}};
  s.b = {{0, 30}, {40, 0}};
  s.obstacles = {geom::Rect({-50, 10}, {50, 20})};
  s.ta = std::move(rtree::StrBulkLoad(datagen::ToPointObjects(s.a))).value();
  s.tb = std::move(rtree::StrBulkLoad(datagen::ToPointObjects(s.b))).value();
  s.to = std::move(rtree::StrBulkLoad(datagen::ToObstacleObjects(s.obstacles)))
             .value();

  // e = 45: Euclidean would join both partners; the wall leaves only b1.
  const JoinResult r = ObstructedEDistanceJoin(s.ta, s.tb, s.to, 45.0);
  ASSERT_EQ(r.pairs.size(), 1u);
  EXPECT_EQ(r.pairs[0].b_pid, 1);
  EXPECT_NEAR(r.pairs[0].odist, 40.0, 1e-9);

  // The closest pair is likewise (a0, b1).
  const JoinResult cp = ObstructedClosestPairs(s.ta, s.tb, s.to, 1);
  ASSERT_EQ(cp.pairs.size(), 1u);
  EXPECT_EQ(cp.pairs[0].b_pid, 1);
}

class JoinVsOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinVsOracle, EDistanceJoinMatchesBruteForce) {
  JoinScene s = MakeJoinScene(GetParam(), 15, 15, 12);
  const NaiveOracle oracle(s.b, s.obstacles);
  const double e = 250.0;
  const JoinResult got = ObstructedEDistanceJoin(s.ta, s.tb, s.to, e);

  std::set<std::pair<int64_t, int64_t>> want;
  for (size_t i = 0; i < s.a.size(); ++i) {
    const std::vector<double> dists = oracle.OdistToAllPoints(s.a[i]);
    for (size_t j = 0; j < dists.size(); ++j) {
      if (dists[j] <= e - 1e-6) {
        want.insert({static_cast<int64_t>(i), static_cast<int64_t>(j)});
      }
    }
  }
  std::set<std::pair<int64_t, int64_t>> got_set;
  for (const JoinPair& p : got.pairs) {
    got_set.insert({p.a_pid, p.b_pid});
    // Every reported distance must be correct.
    EXPECT_NEAR(p.odist, oracle.OdistToPoint(s.a[p.a_pid], p.b_pid),
                1e-5 * (1 + p.odist));
  }
  for (const auto& w : want) {
    EXPECT_TRUE(got_set.count(w))
        << "missing pair (" << w.first << "," << w.second << ")";
  }
  // Ascending order.
  for (size_t i = 1; i < got.pairs.size(); ++i) {
    EXPECT_GE(got.pairs[i].odist, got.pairs[i - 1].odist);
  }
}

TEST_P(JoinVsOracle, ClosestPairsMatchBruteForce) {
  JoinScene s = MakeJoinScene(GetParam() ^ 0xC1, 12, 12, 10);
  const NaiveOracle oracle(s.b, s.obstacles);
  const size_t k = 4;
  const JoinResult got = ObstructedClosestPairs(s.ta, s.tb, s.to, k);

  std::vector<double> all;
  for (const auto& ap : s.a) {
    for (double d : oracle.OdistToAllPoints(ap)) {
      if (std::isfinite(d)) all.push_back(d);
    }
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(got.pairs.size(), std::min(k, all.size()));
  for (size_t i = 0; i < got.pairs.size(); ++i) {
    EXPECT_NEAR(got.pairs[i].odist, all[i], 1e-5 * (1 + all[i]))
        << "rank " << i;
  }
}

TEST_P(JoinVsOracle, SemiJoinMatchesPerPointOnn) {
  JoinScene s = MakeJoinScene(GetParam() ^ 0x5E, 10, 20, 10);
  const NaiveOracle oracle(s.b, s.obstacles);
  const JoinResult got = ObstructedSemiJoin(s.ta, s.tb, s.to);

  size_t idx = 0;
  for (size_t i = 0; i < s.a.size(); ++i) {
    const auto want = oracle.OnnAt(s.a[i], 1);
    if (want.empty()) continue;  // unreachable left point omitted
    ASSERT_LT(idx, got.pairs.size());
    EXPECT_EQ(got.pairs[idx].a_pid, static_cast<int64_t>(i));
    EXPECT_NEAR(got.pairs[idx].odist, want[0].second,
                1e-5 * (1 + want[0].second));
    ++idx;
  }
  EXPECT_EQ(idx, got.pairs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinVsOracle, ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace core
}  // namespace conn
