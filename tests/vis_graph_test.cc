// Tests for the local visibility graph and its incremental Dijkstra scan:
// lazy adjacency correctness under obstacle insertion (epoch invalidation),
// shortest paths around obstacles, and unreachable pockets.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vis/dijkstra.h"
#include "vis/full_vis_graph.h"
#include "vis/vis_graph.h"

namespace conn {
namespace vis {
namespace {

const geom::Rect kDomain({0, 0}, {1000, 1000});

TEST(VisGraphTest, EmptyGraphDirectPath) {
  VisGraph g(kDomain);
  const VertexId t = g.AddFixedVertex({100, 0});
  DijkstraScan scan(&g, {0, 0});
  VertexId v;
  double dist;
  int32_t pred;
  ASSERT_TRUE(scan.Next(&v, &dist, &pred));
  EXPECT_EQ(v, t);
  EXPECT_DOUBLE_EQ(dist, 100.0);
  EXPECT_EQ(pred, kPredSource);
}

TEST(VisGraphTest, PathBendsAroundObstacle) {
  VisGraph g(kDomain);
  const VertexId t = g.AddFixedVertex({100, 0});
  // A wall between source (0,0) and target (100,0).
  g.AddObstacle(geom::Rect({45, -30}, {55, 30}), 0);
  EXPECT_EQ(g.VertexCount(), 5u);  // target + 4 corners
  EXPECT_EQ(g.ObstacleCount(), 1u);

  DijkstraScan scan(&g, {0, 0});
  const double d = scan.SettleTargets({t});
  // Shortest path via corner (45,-30) or (45,30) then (55,±30).
  const double expected = std::hypot(45, 30) + 10 + std::hypot(45, 30);
  EXPECT_NEAR(d, expected, 1e-9);
  // Predecessor chain must reach the target through a corner.
  EXPECT_GE(scan.PredOf(t), 0);
}

TEST(VisGraphTest, EpochInvalidationBlocksOldEdges) {
  VisGraph g(kDomain);
  const VertexId t = g.AddFixedVertex({100, 0});
  {
    DijkstraScan scan(&g, {0, 0});
    EXPECT_NEAR(scan.SettleTargets({t}), 100.0, 1e-12);
  }
  // Insert a wall: the cached direct edge must be invalidated.
  g.AddObstacle(geom::Rect({45, -30}, {55, 30}), 0);
  {
    DijkstraScan scan(&g, {0, 0});
    EXPECT_GT(scan.SettleTargets({t}), 100.0 + 1.0);
  }
}

TEST(VisGraphTest, UnreachableTargetGivesInfinity) {
  VisGraph g(kDomain);
  const VertexId t = g.AddFixedVertex({500, 500});
  // Box the target in with four overlapping walls.
  g.AddObstacle(geom::Rect({400, 400}, {600, 420}), 0);  // bottom
  g.AddObstacle(geom::Rect({400, 580}, {600, 600}), 1);  // top
  g.AddObstacle(geom::Rect({400, 400}, {420, 600}), 2);  // left
  g.AddObstacle(geom::Rect({580, 400}, {600, 600}), 3);  // right
  DijkstraScan scan(&g, {0, 0});
  EXPECT_TRUE(std::isinf(scan.SettleTargets({t})));
}

TEST(VisGraphTest, StatsCountersAdvance) {
  QueryStats stats;
  VisGraph g(kDomain, &stats);
  g.AddFixedVertex({100, 0});
  g.AddObstacle(geom::Rect({40, 10}, {60, 30}), 7);
  EXPECT_EQ(stats.obstacles_evaluated, 1u);
  EXPECT_EQ(stats.vis_graph_vertices, 5u);
  g.Visible({0, 0}, {100, 100});
  EXPECT_GE(stats.visibility_tests, 1u);
}

TEST(DijkstraScanTest, YieldsAscendingDistances) {
  Rng rng(99);
  VisGraph g(kDomain);
  g.AddFixedVertex({900, 900});
  for (int i = 0; i < 20; ++i) {
    const geom::Vec2 lo{rng.Uniform(100, 800), rng.Uniform(100, 800)};
    g.AddObstacle(
        geom::Rect(lo, {lo.x + rng.Uniform(5, 80), lo.y + rng.Uniform(5, 80)}),
        i);
  }
  DijkstraScan scan(&g, {50, 50});
  VertexId v;
  double dist, prev = 0.0;
  int32_t pred;
  while (scan.Next(&v, &dist, &pred)) {
    EXPECT_GE(dist, prev - 1e-12);
    prev = dist;
    if (pred >= 0) {
      EXPECT_TRUE(scan.IsSettled(static_cast<VertexId>(pred)));
      EXPECT_LE(scan.DistOf(static_cast<VertexId>(pred)), dist + 1e-12);
    }
  }
}

// The local VisGraph must agree with the eager FullVisGraph on obstructed
// distances between a source and fixed targets.
class LocalVsFullGraph : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LocalVsFullGraph, SameShortestDistances) {
  Rng rng(GetParam());
  std::vector<geom::Rect> rects;
  for (int i = 0; i < 15; ++i) {
    const geom::Vec2 lo{rng.Uniform(100, 800), rng.Uniform(100, 800)};
    rects.push_back(geom::Rect(
        lo, {lo.x + rng.Uniform(10, 120), lo.y + rng.Uniform(10, 120)}));
  }
  const geom::Vec2 source{rng.Uniform(0, 80), rng.Uniform(0, 80)};
  const geom::Vec2 target{rng.Uniform(900, 1000), rng.Uniform(900, 1000)};

  VisGraph local(kDomain);
  const VertexId t = local.AddFixedVertex(target);
  for (size_t i = 0; i < rects.size(); ++i) local.AddObstacle(rects[i], i);
  DijkstraScan scan(&local, source);
  const double local_dist = scan.SettleTargets({t});

  FullVisGraph full(rects);
  const VertexId ft = full.AddPoint(target);
  const VertexId fs = full.AddPoint(source);
  full.Build();
  const double full_dist = full.Distance(fs, ft);

  EXPECT_NEAR(local_dist, full_dist, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalVsFullGraph,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace vis
}  // namespace conn
