// Unit tests for the uniform grid over local obstacles: candidate queries
// must be supersets of the exact answers (conservativeness) and deduplicated.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/predicates.h"
#include "geom/vec.h"
#include "vis/grid_index.h"

namespace conn {
namespace vis {
namespace {

TEST(GridIndexTest, PointQueryFindsCoveringItems) {
  GridIndex grid(geom::Rect({0, 0}, {100, 100}), 10);
  grid.Insert(0, geom::Rect({5, 5}, {15, 15}));
  grid.Insert(1, geom::Rect({50, 50}, {60, 60}));
  std::vector<uint32_t> out;
  grid.CandidatesAtPoint({10, 10}, &out);
  EXPECT_TRUE(std::count(out.begin(), out.end(), 0u) == 1);
  out.clear();
  grid.CandidatesAtPoint({55, 55}, &out);
  EXPECT_TRUE(std::count(out.begin(), out.end(), 1u) == 1);
}

TEST(GridIndexTest, RectQueryIsConservative) {
  GridIndex grid(geom::Rect({0, 0}, {100, 100}), 8);
  grid.Insert(0, geom::Rect({5, 5}, {15, 15}));
  grid.Insert(1, geom::Rect({80, 80}, {90, 90}));
  std::vector<uint32_t> out;
  grid.CandidatesInRect(geom::Rect({0, 0}, {20, 20}), &out);
  EXPECT_EQ(std::count(out.begin(), out.end(), 0u), 1);
}

TEST(GridIndexTest, NoDuplicatesForSpanningItems) {
  GridIndex grid(geom::Rect({0, 0}, {100, 100}), 16);
  grid.Insert(0, geom::Rect({0, 0}, {100, 100}));  // spans every cell
  std::vector<uint32_t> out;
  grid.CandidatesInRect(geom::Rect({0, 0}, {100, 100}), &out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  grid.CandidatesAlongSegment(geom::Segment({0, 0}, {100, 100}), &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(GridIndexTest, ItemsOutsideDomainAreClamped) {
  GridIndex grid(geom::Rect({0, 0}, {100, 100}), 4);
  grid.Insert(0, geom::Rect({150, 150}, {160, 160}));  // outside
  std::vector<uint32_t> out;
  grid.CandidatesAtPoint({99, 99}, &out);  // border cell
  EXPECT_EQ(out.size(), 1u);  // clamped into the corner cell, still findable
}

class GridSegmentProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridSegmentProperty, SegmentCandidatesAreSupersetOfIntersecting) {
  Rng rng(GetParam());
  const geom::Rect domain({0, 0}, {1000, 1000});
  GridIndex grid(domain, 32);
  std::vector<geom::Rect> rects;
  for (uint32_t i = 0; i < 200; ++i) {
    const geom::Vec2 lo{rng.Uniform(0, 950), rng.Uniform(0, 950)};
    rects.push_back(geom::Rect(
        lo, {lo.x + rng.Uniform(1, 50), lo.y + rng.Uniform(1, 50)}));
    grid.Insert(i, rects.back());
  }
  for (int qi = 0; qi < 50; ++qi) {
    const geom::Segment s({rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
                          {rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
    std::vector<uint32_t> cand;
    grid.CandidatesAlongSegment(s, &cand);
    const std::set<uint32_t> cand_set(cand.begin(), cand.end());
    EXPECT_EQ(cand_set.size(), cand.size()) << "duplicates returned";
    for (uint32_t i = 0; i < rects.size(); ++i) {
      if (geom::SegmentIntersectsRect(s, rects[i])) {
        EXPECT_TRUE(cand_set.count(i))
            << "grid missed intersecting obstacle " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridSegmentProperty,
                         ::testing::Range<uint64_t>(1, 7));

TEST(GridRingTest, RingsPartitionAllPointItems) {
  Rng rng(0x41B3);
  GridIndex grid(geom::Rect({0, 0}, {100, 100}), 8);
  // Include out-of-domain points: they clamp into border cells and must
  // still be enumerated by some ring.
  std::vector<geom::Vec2> pts;
  for (uint32_t i = 0; i < 60; ++i) {
    pts.push_back({rng.Uniform(-20, 120), rng.Uniform(-20, 120)});
    grid.InsertPoint(i, pts.back());
  }
  const geom::Vec2 center{rng.Uniform(0, 100), rng.Uniform(0, 100)};
  std::multiset<uint32_t> seen;
  for (int ring = 0; !std::isinf(grid.RingMinDist(center, ring)); ++ring) {
    grid.VisitRing(center, ring, [&](uint32_t item) { seen.insert(item); });
  }
  ASSERT_EQ(seen.size(), pts.size()) << "each point in exactly one ring cell";
  for (uint32_t i = 0; i < pts.size(); ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(GridRingTest, RingMinDistLowerBoundsItemDistances) {
  Rng rng(0x41B4);
  GridIndex grid(geom::Rect({0, 0}, {100, 100}), 8);
  std::vector<geom::Vec2> pts;
  for (uint32_t i = 0; i < 80; ++i) {
    pts.push_back({rng.Uniform(-15, 115), rng.Uniform(-15, 115)});
    grid.InsertPoint(i, pts.back());
  }
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Vec2 center{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    double lb = 0.0;
    for (int ring = 0;; ++ring) {
      lb = grid.RingMinDist(center, ring);
      if (std::isinf(lb)) break;
      EXPECT_GE(lb, 0.0);
      // Every item enumerated at ring indices >= ring must be at least lb
      // away — the contract lazy seeding termination rests on.
      for (int r2 = ring; !std::isinf(grid.RingMinDist(center, r2)); ++r2) {
        grid.VisitRing(center, r2, [&](uint32_t item) {
          EXPECT_GE(geom::Dist(center, pts[item]) + 1e-12, lb)
              << "item " << item << " ring " << r2 << " vs bound at " << ring;
        });
      }
    }
  }
}

TEST(GridRingTest, RingMinDistIsMonotoneNondecreasing) {
  GridIndex grid(geom::Rect({0, 0}, {100, 100}), 16);
  const geom::Vec2 center{33.0, 71.0};
  double prev = grid.RingMinDist(center, 0);
  for (int ring = 1; ring < 40; ++ring) {
    const double cur = grid.RingMinDist(center, ring);
    EXPECT_GE(cur, prev) << "ring " << ring;
    prev = cur;
  }
  EXPECT_TRUE(std::isinf(prev));
}

TEST(GridRingTest, RemovePointDropsItemFromEnumeration) {
  GridIndex grid(geom::Rect({0, 0}, {100, 100}), 8);
  grid.InsertPoint(0, {10, 10});
  grid.InsertPoint(1, {50, 50});
  grid.RemovePoint(0, {10, 10});
  std::vector<uint32_t> seen;
  for (int ring = 0; !std::isinf(grid.RingMinDist({50, 50}, ring)); ++ring) {
    grid.VisitRing({50, 50}, ring,
                   [&](uint32_t item) { seen.push_back(item); });
  }
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 1u);
  // Slot reuse after removal (the recycled fixed-vertex path).
  grid.InsertPoint(0, {90, 90});
  seen.clear();
  for (int ring = 0; !std::isinf(grid.RingMinDist({90, 90}, ring)); ++ring) {
    grid.VisitRing({90, 90}, ring,
                   [&](uint32_t item) { seen.push_back(item); });
  }
  EXPECT_EQ(seen.size(), 2u);
}

}  // namespace
}  // namespace vis
}  // namespace conn
