// Unit tests for the uniform grid over local obstacles: candidate queries
// must be supersets of the exact answers (conservativeness) and deduplicated.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/predicates.h"
#include "vis/grid_index.h"

namespace conn {
namespace vis {
namespace {

TEST(GridIndexTest, PointQueryFindsCoveringItems) {
  GridIndex grid(geom::Rect({0, 0}, {100, 100}), 10);
  grid.Insert(0, geom::Rect({5, 5}, {15, 15}));
  grid.Insert(1, geom::Rect({50, 50}, {60, 60}));
  std::vector<uint32_t> out;
  grid.CandidatesAtPoint({10, 10}, &out);
  EXPECT_TRUE(std::count(out.begin(), out.end(), 0u) == 1);
  out.clear();
  grid.CandidatesAtPoint({55, 55}, &out);
  EXPECT_TRUE(std::count(out.begin(), out.end(), 1u) == 1);
}

TEST(GridIndexTest, RectQueryIsConservative) {
  GridIndex grid(geom::Rect({0, 0}, {100, 100}), 8);
  grid.Insert(0, geom::Rect({5, 5}, {15, 15}));
  grid.Insert(1, geom::Rect({80, 80}, {90, 90}));
  std::vector<uint32_t> out;
  grid.CandidatesInRect(geom::Rect({0, 0}, {20, 20}), &out);
  EXPECT_EQ(std::count(out.begin(), out.end(), 0u), 1);
}

TEST(GridIndexTest, NoDuplicatesForSpanningItems) {
  GridIndex grid(geom::Rect({0, 0}, {100, 100}), 16);
  grid.Insert(0, geom::Rect({0, 0}, {100, 100}));  // spans every cell
  std::vector<uint32_t> out;
  grid.CandidatesInRect(geom::Rect({0, 0}, {100, 100}), &out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  grid.CandidatesAlongSegment(geom::Segment({0, 0}, {100, 100}), &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(GridIndexTest, ItemsOutsideDomainAreClamped) {
  GridIndex grid(geom::Rect({0, 0}, {100, 100}), 4);
  grid.Insert(0, geom::Rect({150, 150}, {160, 160}));  // outside
  std::vector<uint32_t> out;
  grid.CandidatesAtPoint({99, 99}, &out);  // border cell
  EXPECT_EQ(out.size(), 1u);  // clamped into the corner cell, still findable
}

class GridSegmentProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridSegmentProperty, SegmentCandidatesAreSupersetOfIntersecting) {
  Rng rng(GetParam());
  const geom::Rect domain({0, 0}, {1000, 1000});
  GridIndex grid(domain, 32);
  std::vector<geom::Rect> rects;
  for (uint32_t i = 0; i < 200; ++i) {
    const geom::Vec2 lo{rng.Uniform(0, 950), rng.Uniform(0, 950)};
    rects.push_back(geom::Rect(
        lo, {lo.x + rng.Uniform(1, 50), lo.y + rng.Uniform(1, 50)}));
    grid.Insert(i, rects.back());
  }
  for (int qi = 0; qi < 50; ++qi) {
    const geom::Segment s({rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
                          {rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
    std::vector<uint32_t> cand;
    grid.CandidatesAlongSegment(s, &cand);
    const std::set<uint32_t> cand_set(cand.begin(), cand.end());
    EXPECT_EQ(cand_set.size(), cand.size()) << "duplicates returned";
    for (uint32_t i = 0; i < rects.size(); ++i) {
      if (geom::SegmentIntersectsRect(s, rects[i])) {
        EXPECT_TRUE(cand_set.count(i))
            << "grid missed intersecting obstacle " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridSegmentProperty,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace vis
}  // namespace conn
