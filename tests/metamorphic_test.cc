// Metamorphic properties of CONN: rigid transformations that preserve
// axis-alignment (translation, axis mirroring, uniform scaling) must
// transform the answer exactly — same split-point structure, distances
// scaled accordingly.  These catch coordinate-dependence bugs no direct
// oracle comparison would isolate.

#include <cmath>

#include <gtest/gtest.h>

#include "core/conn.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

ConnResult RunScene(const testutil::Scene& scene) {
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  return ConnQuery(tp, to, scene.query);
}

void ExpectSameProfile(const ConnResult& a, const ConnResult& b,
                       double scale = 1.0) {
  const double len = a.query.Length();
  ASSERT_NEAR(b.query.Length(), len * scale, 1e-6 * (1 + len));
  for (int i = 0; i <= 200; ++i) {
    const double t = len * i / 200.0;
    const double da = a.OdistAt(t);
    const double db = b.OdistAt(t * scale);
    if (std::isinf(da) || std::isinf(db)) {
      EXPECT_EQ(std::isinf(da), std::isinf(db)) << "t=" << t;
    } else {
      EXPECT_NEAR(db, da * scale, 1e-6 * (1 + da * scale)) << "t=" << t;
    }
  }
}

class Metamorphic : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Metamorphic, TranslationInvariance) {
  const testutil::Scene base = testutil::MakeScene(GetParam(), 40, 15);
  testutil::Scene moved = base;
  const geom::Vec2 delta{137.25, -42.75};
  for (auto& p : moved.points) p += delta;
  for (auto& o : moved.obstacles) {
    o.lo += delta;
    o.hi += delta;
  }
  moved.query = geom::Segment(base.query.a + delta, base.query.b + delta);

  ExpectSameProfile(RunScene(base), RunScene(moved));
}

TEST_P(Metamorphic, MirrorInvariance) {
  const testutil::Scene base =
      testutil::MakeScene(GetParam() ^ 0xF11Bu, 40, 15);
  testutil::Scene mirrored = base;
  auto flip = [](geom::Vec2 p) { return geom::Vec2{2000.0 - p.x, p.y}; };
  for (auto& p : mirrored.points) p = flip(p);
  for (auto& o : mirrored.obstacles) {
    o = geom::Rect::FromCorners(flip(o.lo), flip(o.hi));
  }
  mirrored.query = geom::Segment(flip(base.query.a), flip(base.query.b));

  ExpectSameProfile(RunScene(base), RunScene(mirrored));
}

TEST_P(Metamorphic, UniformScaling) {
  const testutil::Scene base =
      testutil::MakeScene(GetParam() ^ 0x5CA1E, 30, 12);
  const double s = 2.5;
  testutil::Scene scaled = base;
  for (auto& p : scaled.points) p = p * s;
  for (auto& o : scaled.obstacles) {
    o.lo = o.lo * s;
    o.hi = o.hi * s;
  }
  scaled.query = geom::Segment(base.query.a * s, base.query.b * s);

  ExpectSameProfile(RunScene(base), RunScene(scaled), s);
}

TEST_P(Metamorphic, PointIdPermutationInvariance) {
  // Shuffling the insertion order / ids must not change distances.
  const testutil::Scene base = testutil::MakeScene(GetParam() ^ 0x9E37, 50, 10);
  testutil::Scene shuffled = base;
  Rng rng(GetParam());
  for (size_t i = shuffled.points.size(); i > 1; --i) {
    std::swap(shuffled.points[i - 1], shuffled.points[rng.UniformU64(i)]);
  }
  const ConnResult a = RunScene(base);
  const ConnResult b = RunScene(shuffled);
  const double len = base.query.Length();
  for (int i = 0; i <= 150; ++i) {
    const double t = len * i / 150.0;
    const double da = a.OdistAt(t);
    const double db = b.OdistAt(t);
    if (std::isinf(da) || std::isinf(db)) {
      EXPECT_EQ(std::isinf(da), std::isinf(db)) << "t=" << t;
    } else {
      EXPECT_NEAR(da, db, 1e-9 * (1 + da)) << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Metamorphic, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace core
}  // namespace conn
