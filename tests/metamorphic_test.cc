// Metamorphic properties of CONN: rigid transformations that preserve
// axis-alignment (translation, axis mirroring, uniform scaling) must
// transform the answer exactly — same split-point structure, distances
// scaled accordingly.  These catch coordinate-dependence bugs no direct
// oracle comparison would isolate.
//
// Tick-loop metamorphics extend the same idea to the subscription
// service: translating the whole scene together with the routes, and
// re-ticking a route at half step size, must not change the reported
// (point, odist) answers along the visited segments.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/conn.h"
#include "exec/subscription.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

ConnResult RunScene(const testutil::Scene& scene) {
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  return ConnQuery(tp, to, scene.query);
}

void ExpectSameProfile(const ConnResult& a, const ConnResult& b,
                       double scale = 1.0) {
  const double len = a.query.Length();
  ASSERT_NEAR(b.query.Length(), len * scale, 1e-6 * (1 + len));
  for (int i = 0; i <= 200; ++i) {
    const double t = len * i / 200.0;
    const double da = a.OdistAt(t);
    const double db = b.OdistAt(t * scale);
    if (std::isinf(da) || std::isinf(db)) {
      EXPECT_EQ(std::isinf(da), std::isinf(db)) << "t=" << t;
    } else {
      EXPECT_NEAR(db, da * scale, 1e-6 * (1 + da * scale)) << "t=" << t;
    }
  }
}

class Metamorphic : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Metamorphic, TranslationInvariance) {
  const testutil::Scene base = testutil::MakeScene(GetParam(), 40, 15);
  testutil::Scene moved = base;
  const geom::Vec2 delta{137.25, -42.75};
  for (auto& p : moved.points) p += delta;
  for (auto& o : moved.obstacles) {
    o.lo += delta;
    o.hi += delta;
  }
  moved.query = geom::Segment(base.query.a + delta, base.query.b + delta);

  ExpectSameProfile(RunScene(base), RunScene(moved));
}

TEST_P(Metamorphic, MirrorInvariance) {
  const testutil::Scene base =
      testutil::MakeScene(GetParam() ^ 0xF11Bu, 40, 15);
  testutil::Scene mirrored = base;
  auto flip = [](geom::Vec2 p) { return geom::Vec2{2000.0 - p.x, p.y}; };
  for (auto& p : mirrored.points) p = flip(p);
  for (auto& o : mirrored.obstacles) {
    o = geom::Rect::FromCorners(flip(o.lo), flip(o.hi));
  }
  mirrored.query = geom::Segment(flip(base.query.a), flip(base.query.b));

  ExpectSameProfile(RunScene(base), RunScene(mirrored));
}

TEST_P(Metamorphic, UniformScaling) {
  const testutil::Scene base =
      testutil::MakeScene(GetParam() ^ 0x5CA1E, 30, 12);
  const double s = 2.5;
  testutil::Scene scaled = base;
  for (auto& p : scaled.points) p = p * s;
  for (auto& o : scaled.obstacles) {
    o.lo = o.lo * s;
    o.hi = o.hi * s;
  }
  scaled.query = geom::Segment(base.query.a * s, base.query.b * s);

  ExpectSameProfile(RunScene(base), RunScene(scaled), s);
}

TEST_P(Metamorphic, PointIdPermutationInvariance) {
  // Shuffling the insertion order / ids must not change distances.
  const testutil::Scene base = testutil::MakeScene(GetParam() ^ 0x9E37, 50, 10);
  testutil::Scene shuffled = base;
  Rng rng(GetParam());
  for (size_t i = shuffled.points.size(); i > 1; --i) {
    std::swap(shuffled.points[i - 1], shuffled.points[rng.UniformU64(i)]);
  }
  const ConnResult a = RunScene(base);
  const ConnResult b = RunScene(shuffled);
  const double len = base.query.Length();
  for (int i = 0; i <= 150; ++i) {
    const double t = len * i / 150.0;
    const double da = a.OdistAt(t);
    const double db = b.OdistAt(t);
    if (std::isinf(da) || std::isinf(db)) {
      EXPECT_EQ(std::isinf(da), std::isinf(db)) << "t=" << t;
    } else {
      EXPECT_NEAR(da, db, 1e-9 * (1 + da)) << "t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Tick-loop metamorphics.
// ---------------------------------------------------------------------------

/// A 3-leg axis-aligned route with integer waypoints, leg length 256, and
/// speed 64: every tick boundary's absolute arc value is exactly
/// representable and tick chords lie exactly on the legs, so a half-step
/// schedule (speed 32) visits bit-identical positions — its segments are
/// exactly the halves of the full-step segments.
exec::RouteSpec MakeAxisRoute(Rng* rng) {
  exec::RouteSpec r;
  geom::Vec2 pos{std::floor(rng->Uniform(300.0, 700.0)),
                 std::floor(rng->Uniform(300.0, 700.0))};
  r.waypoints.push_back(pos);
  for (int leg = 0; leg < 3; ++leg) {
    const bool horizontal = (rng->NextU64() & 1) != 0;
    double dir = (rng->NextU64() & 1) != 0 ? 1.0 : -1.0;
    double& coord = horizontal ? pos.x : pos.y;
    if (coord + dir * 256.0 < 0.0 || coord + dir * 256.0 > 1000.0) dir = -dir;
    coord += dir * 256.0;
    r.waypoints.push_back(pos);
  }
  r.speed = 64.0;
  return r;
}

/// The k-NN ids at parameter \p t as a set (sorted: rank order may
/// legitimately flip between near-equal candidates under FP perturbation).
std::vector<int64_t> SortedKnn(const CoknnResult& r, double t) {
  std::vector<int64_t> ids = r.KnnAt(t);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST_P(Metamorphic, TickTranslationInvariance) {
  // Translating the scene together with the routes must not change which
  // points a moving client sees at any tick, nor (within tolerance) at
  // what obstructed distance.
  const testutil::Scene base = testutil::MakeScene(GetParam() ^ 0x71C4, 40, 15);
  testutil::Scene moved = base;
  const geom::Vec2 delta{137.25, -42.75};
  for (auto& p : moved.points) p += delta;
  for (auto& o : moved.obstacles) {
    o.lo += delta;
    o.hi += delta;
  }

  Rng rng(GetParam() ^ 0x60A7);
  const exec::RouteSpec route = MakeAxisRoute(&rng);
  exec::RouteSpec moved_route = route;
  for (geom::Vec2& w : moved_route.waypoints) w += delta;

  const rtree::RStarTree tp_a = testutil::MakePointTree(base);
  const rtree::RStarTree to_a = testutil::MakeObstacleTree(base);
  const rtree::RStarTree tp_b = testutil::MakePointTree(moved);
  const rtree::RStarTree to_b = testutil::MakeObstacleTree(moved);

  exec::SubscriptionOptions opts;
  opts.batch.num_threads = 1;
  exec::SubscriptionService sa(tp_a, to_a, opts);
  exec::SubscriptionService sb(tp_b, to_b, opts);
  ASSERT_TRUE(sa.Subscribe(route, 2).ok());
  ASSERT_TRUE(sb.Subscribe(moved_route, 2).ok());

  for (int tick = 0; tick < 6; ++tick) {
    SCOPED_TRACE("tick " + std::to_string(tick));
    const exec::TickResult ra = sa.Tick();
    const exec::TickResult rb = sb.Tick();
    ASSERT_EQ(ra.updates.size(), 1u);
    ASSERT_EQ(rb.updates.size(), 1u);
    const CoknnResult& a = *ra.updates[0].result;
    const CoknnResult& b = *rb.updates[0].result;

    ASSERT_EQ(a.tuples.size(), b.tuples.size());
    for (size_t i = 0; i < a.tuples.size(); ++i) {
      const double mid = a.tuples[i].range.Mid();
      EXPECT_EQ(SortedKnn(a, mid), SortedKnn(b, mid)) << "tuple " << i;
      for (size_t j = 0; j < a.tuples[i].candidates.size(); ++j) {
        const double da = a.OdistAt(mid, j);
        const double db = b.OdistAt(mid, j);
        EXPECT_NEAR(db, da, 1e-6 * (1.0 + da)) << "tuple " << i << " j " << j;
      }
    }
  }
}

TEST_P(Metamorphic, HalfStepTickInvariance) {
  // Re-ticking the same route at half step size covers the same arc with
  // twice as many segments; the reported answers along each visited
  // segment must not change.  Dyadic geometry (see MakeAxisRoute) makes
  // the half-step endpoints bit-identical, so point sets compare exactly.
  const testutil::Scene scene =
      testutil::MakeScene(GetParam() ^ 0x4A1F, 40, 15);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);

  Rng rng(GetParam() ^ 0x57E9);
  const exec::RouteSpec full = MakeAxisRoute(&rng);
  exec::RouteSpec half = full;
  half.speed = 32.0;

  exec::SubscriptionOptions opts;
  opts.batch.num_threads = 1;
  exec::SubscriptionService sf(tp, to, opts);
  exec::SubscriptionService sh(tp, to, opts);
  ASSERT_TRUE(sf.Subscribe(full, 2).ok());
  ASSERT_TRUE(sh.Subscribe(half, 2).ok());

  for (int tick = 0; tick < 6; ++tick) {
    SCOPED_TRACE("tick " + std::to_string(tick));
    const exec::TickResult rf = sf.Tick();
    const exec::TickResult rh0 = sh.Tick();
    const exec::TickResult rh1 = sh.Tick();
    const CoknnResult& a = *rf.updates[0].result;
    const CoknnResult& h0 = *rh0.updates[0].result;
    const CoknnResult& h1 = *rh1.updates[0].result;

    ASSERT_TRUE(h0.query.a == a.query.a);
    ASSERT_TRUE(h1.query.b == a.query.b);
    ASSERT_TRUE(h0.query.b == h1.query.a);

    // Probe interior offsets of the full-step segment (arc-length
    // parameters, away from tuple boundaries at the segment ends).
    for (const double u : {8.0, 16.0, 24.0, 40.0, 48.0, 56.0}) {
      SCOPED_TRACE("offset " + std::to_string(u));
      const CoknnResult& hb = u < 32.0 ? h0 : h1;
      const double tb = u < 32.0 ? u : u - 32.0;
      EXPECT_EQ(SortedKnn(a, u), SortedKnn(hb, tb));
      for (size_t j = 0; j < 2; ++j) {
        const double da = a.OdistAt(u, j);
        const double db = hb.OdistAt(tb, j);
        if (std::isinf(da) || std::isinf(db)) {
          EXPECT_EQ(std::isinf(da), std::isinf(db)) << "j " << j;
        } else {
          EXPECT_NEAR(db, da, 1e-9 * (1.0 + da)) << "j " << j;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Metamorphic, ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace core
}  // namespace conn
