// Unit tests for the paged storage layer: PageFile, the LruBuffer reference
// model, and the Pager's pin-based fetch path and fault accounting (the
// basis of the paper's I/O metric).  Buffer-pool eviction/pinning property
// tests live in buffer_pool_test.cc.

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/lru_buffer.h"
#include "storage/page_file.h"
#include "storage/pager.h"

namespace conn {
namespace storage {
namespace {

TEST(PageTest, TypedReadWriteRoundTrip) {
  Page p;
  p.WriteAt<uint64_t>(0, 0xDEADBEEFCAFEF00DULL);
  p.WriteAt<double>(8, 3.25);
  EXPECT_EQ(p.ReadAt<uint64_t>(0), 0xDEADBEEFCAFEF00DULL);
  EXPECT_DOUBLE_EQ(p.ReadAt<double>(8), 3.25);
}

TEST(PageFileTest, AllocateReadWrite) {
  PageFile f;
  const PageId a = f.Allocate();
  const PageId b = f.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(f.PageCount(), 2u);

  Page p;
  p.WriteAt<int>(0, 42);
  ASSERT_TRUE(f.Write(a, p).ok());
  Page q;
  ASSERT_TRUE(f.Read(a, &q).ok());
  EXPECT_EQ(q.ReadAt<int>(0), 42);
}

TEST(PageFileTest, OutOfRangeIsNotFound) {
  PageFile f;
  Page p;
  EXPECT_EQ(f.Read(5, &p).code(), StatusCode::kNotFound);
  EXPECT_EQ(f.Write(5, p).code(), StatusCode::kNotFound);
}

TEST(PageFileTest, FreshPageIsZeroed) {
  PageFile f;
  Page p;
  ASSERT_TRUE(f.Read(f.Allocate(), &p).ok());
  for (size_t i = 0; i < kPageSize; i += 512) EXPECT_EQ(p.bytes[i], 0);
}

TEST(LruBufferTest, ZeroCapacityNeverCaches) {
  LruBuffer buf(0);
  Page p;
  buf.Put(1, p);
  EXPECT_FALSE(buf.Get(1, &p));
  EXPECT_EQ(buf.size(), 0u);
}

TEST(LruBufferTest, EvictsLeastRecentlyUsed) {
  LruBuffer buf(2);
  Page p;
  p.WriteAt<int>(0, 1);
  buf.Put(1, p);
  p.WriteAt<int>(0, 2);
  buf.Put(2, p);
  // Touch 1 so 2 becomes LRU.
  ASSERT_TRUE(buf.Get(1, &p));
  p.WriteAt<int>(0, 3);
  buf.Put(3, p);
  EXPECT_TRUE(buf.Get(1, &p));
  EXPECT_FALSE(buf.Get(2, &p));  // evicted
  EXPECT_TRUE(buf.Get(3, &p));
}

TEST(LruBufferTest, PutRefreshesExistingEntry) {
  LruBuffer buf(2);
  Page p;
  p.WriteAt<int>(0, 10);
  buf.Put(7, p);
  p.WriteAt<int>(0, 20);
  buf.Put(7, p);
  EXPECT_EQ(buf.size(), 1u);
  ASSERT_TRUE(buf.Get(7, &p));
  EXPECT_EQ(p.ReadAt<int>(0), 20);
}

TEST(LruBufferTest, ShrinkEvicts) {
  LruBuffer buf(4);
  Page p;
  for (PageId i = 0; i < 4; ++i) buf.Put(i, p);
  buf.SetCapacity(1);
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_TRUE(buf.Get(3, &p));  // most recent survives
}

TEST(PagerTest, UnbufferedEveryFetchFaults) {
  Pager pager;  // capacity 0 by default (paper's default configuration)
  const PageId id = pager.Allocate();
  Page p;
  p.WriteAt<int>(0, 77);
  ASSERT_TRUE(pager.Write(id, p).ok());
  for (int i = 0; i < 5; ++i) {
    StatusOr<PinnedPage> view = pager.Fetch(id);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view.value().page().ReadAt<int>(0), 77);
  }
  EXPECT_EQ(pager.faults(), 5u);
  EXPECT_EQ(pager.hits(), 0u);
}

TEST(PagerTest, FetchOutOfRangeIsNotFound) {
  Pager pager;
  EXPECT_EQ(pager.Fetch(3).status().code(), StatusCode::kNotFound);
}

TEST(PagerTest, BufferedRepeatFetchesHit) {
  Pager pager;
  pager.SetBufferCapacity(8);
  const PageId id = pager.Allocate();
  Page p;
  ASSERT_TRUE(pager.Write(id, p).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(pager.Fetch(id).ok());
  // The write primed the buffer, so every fetch hits.
  EXPECT_EQ(pager.faults(), 0u);
  EXPECT_EQ(pager.hits(), 5u);
}

TEST(PagerTest, HitsBorrowFrameMemoryWithoutCopy) {
  Pager pager;
  pager.SetBufferCapacity(4);
  const PageId id = pager.Allocate();
  Page p;
  p.WriteAt<int>(0, 5);
  ASSERT_TRUE(pager.Write(id, p).ok());
  StatusOr<PinnedPage> a = pager.Fetch(id);
  StatusOr<PinnedPage> b = pager.Fetch(id);
  ASSERT_TRUE(a.ok() && b.ok());
  // Both handles alias the same frame — the hit path never copies a page.
  EXPECT_EQ(&a.value().page(), &b.value().page());
  EXPECT_EQ(pager.buffer_pool().PinnedFrames(), 1u);
}

TEST(PagerTest, ClearBufferForcesRefault) {
  Pager pager;
  pager.SetBufferCapacity(8);
  const PageId id = pager.Allocate();
  Page p;
  ASSERT_TRUE(pager.Write(id, p).ok());
  pager.ClearBuffer();
  ASSERT_TRUE(pager.Fetch(id).ok());
  ASSERT_TRUE(pager.Fetch(id).ok());
  EXPECT_EQ(pager.faults(), 1u);
  EXPECT_EQ(pager.hits(), 1u);
}

TEST(PagerTest, ResetCountersZeroesFaultsAndHits) {
  Pager pager;
  pager.SetBufferCapacity(2);
  const PageId id = pager.Allocate();
  Page p;
  ASSERT_TRUE(pager.Write(id, p).ok());
  ASSERT_TRUE(pager.Fetch(id).ok());
  pager.ClearBuffer();
  ASSERT_TRUE(pager.Fetch(id).ok());
  EXPECT_EQ(pager.faults(), 1u);
  EXPECT_EQ(pager.hits(), 1u);
  pager.ResetCounters();
  EXPECT_EQ(pager.faults(), 0u);
  EXPECT_EQ(pager.hits(), 0u);
  ASSERT_TRUE(pager.Fetch(id).ok());  // resident from before the reset
  EXPECT_EQ(pager.faults(), 0u);
  EXPECT_EQ(pager.hits(), 1u);
}

TEST(PagerTest, WriteThroughKeepsCacheCoherent) {
  Pager pager;
  pager.SetBufferCapacity(2);
  const PageId id = pager.Allocate();
  Page p;
  p.WriteAt<int>(0, 1);
  ASSERT_TRUE(pager.Write(id, p).ok());
  p.WriteAt<int>(0, 2);
  ASSERT_TRUE(pager.Write(id, p).ok());
  StatusOr<PinnedPage> view = pager.Fetch(id);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().page().ReadAt<int>(0), 2);
}

TEST(PagerTest, WriteDropsDecodedObject) {
  Pager pager;
  pager.SetBufferCapacity(2);
  const PageId id = pager.Allocate();
  Page p;
  ASSERT_TRUE(pager.Write(id, p).ok());
  {
    StatusOr<PinnedPage> view = pager.Fetch(id);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view.value().decoded(), nullptr);
    view.value().SetDecoded(std::make_shared<int>(41));
  }
  {
    // The decoded object survives while the page stays resident...
    StatusOr<PinnedPage> view = pager.Fetch(id);
    ASSERT_TRUE(view.ok());
    ASSERT_NE(view.value().decoded(), nullptr);
    EXPECT_EQ(*std::static_pointer_cast<const int>(view.value().decoded()),
              41);
  }
  ASSERT_TRUE(pager.Write(id, p).ok());
  {
    // ...but a write invalidates it: the bytes may no longer match.
    StatusOr<PinnedPage> view = pager.Fetch(id);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view.value().decoded(), nullptr);
  }
}

TEST(PagerTest, ReadaheadStagesFollowingPagesWithoutFaults) {
  Pager pager;
  for (int i = 0; i < 16; ++i) pager.Allocate();
  BufferOptions opts;
  opts.capacity_pages = 8;
  opts.readahead_pages = 3;
  pager.ConfigureBuffer(opts);
  ASSERT_TRUE(pager.Fetch(0).ok());
  // The demand miss faulted once but staged pages 1..3 as device reads.
  EXPECT_EQ(pager.faults(), 1u);
  EXPECT_EQ(pager.file().device_reads(), 4u);
  for (PageId id = 1; id <= 3; ++id) ASSERT_TRUE(pager.Fetch(id).ok());
  EXPECT_EQ(pager.faults(), 1u);
  EXPECT_EQ(pager.hits(), 3u);
  // Readahead stops at the end of the file.
  ASSERT_TRUE(pager.Fetch(15).ok());
  EXPECT_EQ(pager.faults(), 2u);
}

}  // namespace
}  // namespace storage
}  // namespace conn
