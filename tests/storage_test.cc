// Unit tests for the paged storage layer: PageFile, LruBuffer, and the
// Pager's fault accounting (the basis of the paper's I/O metric).

#include <gtest/gtest.h>

#include "storage/lru_buffer.h"
#include "storage/page_file.h"
#include "storage/pager.h"

namespace conn {
namespace storage {
namespace {

TEST(PageTest, TypedReadWriteRoundTrip) {
  Page p;
  p.WriteAt<uint64_t>(0, 0xDEADBEEFCAFEF00DULL);
  p.WriteAt<double>(8, 3.25);
  EXPECT_EQ(p.ReadAt<uint64_t>(0), 0xDEADBEEFCAFEF00DULL);
  EXPECT_DOUBLE_EQ(p.ReadAt<double>(8), 3.25);
}

TEST(PageFileTest, AllocateReadWrite) {
  PageFile f;
  const PageId a = f.Allocate();
  const PageId b = f.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(f.PageCount(), 2u);

  Page p;
  p.WriteAt<int>(0, 42);
  ASSERT_TRUE(f.Write(a, p).ok());
  Page q;
  ASSERT_TRUE(f.Read(a, &q).ok());
  EXPECT_EQ(q.ReadAt<int>(0), 42);
}

TEST(PageFileTest, OutOfRangeIsNotFound) {
  PageFile f;
  Page p;
  EXPECT_EQ(f.Read(5, &p).code(), StatusCode::kNotFound);
  EXPECT_EQ(f.Write(5, p).code(), StatusCode::kNotFound);
}

TEST(PageFileTest, FreshPageIsZeroed) {
  PageFile f;
  Page p;
  ASSERT_TRUE(f.Read(f.Allocate(), &p).ok());
  for (size_t i = 0; i < kPageSize; i += 512) EXPECT_EQ(p.bytes[i], 0);
}

TEST(LruBufferTest, ZeroCapacityNeverCaches) {
  LruBuffer buf(0);
  Page p;
  buf.Put(1, p);
  EXPECT_FALSE(buf.Get(1, &p));
  EXPECT_EQ(buf.size(), 0u);
}

TEST(LruBufferTest, EvictsLeastRecentlyUsed) {
  LruBuffer buf(2);
  Page p;
  p.WriteAt<int>(0, 1);
  buf.Put(1, p);
  p.WriteAt<int>(0, 2);
  buf.Put(2, p);
  // Touch 1 so 2 becomes LRU.
  ASSERT_TRUE(buf.Get(1, &p));
  p.WriteAt<int>(0, 3);
  buf.Put(3, p);
  EXPECT_TRUE(buf.Get(1, &p));
  EXPECT_FALSE(buf.Get(2, &p));  // evicted
  EXPECT_TRUE(buf.Get(3, &p));
}

TEST(LruBufferTest, PutRefreshesExistingEntry) {
  LruBuffer buf(2);
  Page p;
  p.WriteAt<int>(0, 10);
  buf.Put(7, p);
  p.WriteAt<int>(0, 20);
  buf.Put(7, p);
  EXPECT_EQ(buf.size(), 1u);
  ASSERT_TRUE(buf.Get(7, &p));
  EXPECT_EQ(p.ReadAt<int>(0), 20);
}

TEST(LruBufferTest, ShrinkEvicts) {
  LruBuffer buf(4);
  Page p;
  for (PageId i = 0; i < 4; ++i) buf.Put(i, p);
  buf.SetCapacity(1);
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_TRUE(buf.Get(3, &p));  // most recent survives
}

TEST(PagerTest, UnbufferedEveryReadFaults) {
  Pager pager;  // capacity 0 by default (paper's default configuration)
  const PageId id = pager.Allocate();
  Page p;
  ASSERT_TRUE(pager.Write(id, p).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(pager.Read(id, &p).ok());
  EXPECT_EQ(pager.faults(), 5u);
  EXPECT_EQ(pager.hits(), 0u);
}

TEST(PagerTest, BufferedRepeatReadsHit) {
  Pager pager;
  pager.SetBufferCapacity(8);
  const PageId id = pager.Allocate();
  Page p;
  ASSERT_TRUE(pager.Write(id, p).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(pager.Read(id, &p).ok());
  // The write primed the buffer, so every read hits.
  EXPECT_EQ(pager.faults(), 0u);
  EXPECT_EQ(pager.hits(), 5u);
}

TEST(PagerTest, ClearBufferForcesRefault) {
  Pager pager;
  pager.SetBufferCapacity(8);
  const PageId id = pager.Allocate();
  Page p;
  ASSERT_TRUE(pager.Write(id, p).ok());
  pager.ClearBuffer();
  ASSERT_TRUE(pager.Read(id, &p).ok());
  ASSERT_TRUE(pager.Read(id, &p).ok());
  EXPECT_EQ(pager.faults(), 1u);
  EXPECT_EQ(pager.hits(), 1u);
}

TEST(PagerTest, WriteThroughKeepsCacheCoherent) {
  Pager pager;
  pager.SetBufferCapacity(2);
  const PageId id = pager.Allocate();
  Page p;
  p.WriteAt<int>(0, 1);
  ASSERT_TRUE(pager.Write(id, p).ok());
  p.WriteAt<int>(0, 2);
  ASSERT_TRUE(pager.Write(id, p).ok());
  Page q;
  ASSERT_TRUE(pager.Read(id, &q).ok());
  EXPECT_EQ(q.ReadAt<int>(0), 2);
}

}  // namespace
}  // namespace storage
}  // namespace conn
