// Shared helpers for the storage-layer test suites: pages stamped with an
// id-derived pattern so eviction/pin races that serve wrong or torn bytes
// are detectable by content.

#ifndef CONN_TESTS_STORAGE_TEST_UTIL_H_
#define CONN_TESTS_STORAGE_TEST_UTIL_H_

#include "storage/page.h"

namespace conn {
namespace storage {

/// Stamps a page with a pattern derived from \p id for integrity checks.
inline Page StampedPage(PageId id) {
  Page p;
  for (size_t off = 0; off + sizeof(uint64_t) <= kPageSize;
       off += sizeof(uint64_t)) {
    p.WriteAt<uint64_t>(off, (static_cast<uint64_t>(id) << 32) ^ off);
  }
  return p;
}

/// True iff \p p carries exactly the stamp StampedPage(\p id) wrote.
inline bool PageMatchesStamp(const Page& p, PageId id) {
  for (size_t off = 0; off + sizeof(uint64_t) <= kPageSize;
       off += sizeof(uint64_t)) {
    if (p.ReadAt<uint64_t>(off) != ((static_cast<uint64_t>(id) << 32) ^ off)) {
      return false;
    }
  }
  return true;
}

}  // namespace storage
}  // namespace conn

#endif  // CONN_TESTS_STORAGE_TEST_UTIL_H_
