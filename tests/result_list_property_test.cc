// Property sweep at the ResultList level (no trees, no visibility): after
// merging any sequence of control point lists, the result list must be the
// pointwise minimum of all submitted distance curves — RLU is exactly a
// lower-envelope computation (the paper's Section 3 machinery).

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/result_list.h"

namespace conn {
namespace core {
namespace {

struct Curve {
  int64_t pid;
  geom::Vec2 cp;
  double offset;
};

class ResultListEnvelope : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ResultListEnvelope, IsThePointwiseLowerEnvelope) {
  Rng rng(GetParam());
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {1000, 0}));
  ResultList rl(geom::IntervalSet{geom::Interval(0, 1000)});

  std::vector<Curve> curves;
  const int n = 3 + static_cast<int>(rng.UniformU64(12));
  for (int i = 0; i < n; ++i) {
    Curve c{i,
            {rng.Uniform(-100, 1100), rng.Uniform(0, 400)},
            rng.Uniform(0, 300)};
    curves.push_back(c);
    // Each point may arrive as several CPL pieces covering [0, 1000].
    ControlPointList cpl;
    const double cut = rng.Uniform(100, 900);
    cpl.push_back(CplEntry{true, c.cp, c.offset, geom::Interval(0, cut)});
    cpl.push_back(CplEntry{true, c.cp, c.offset, geom::Interval(cut, 1000)});
    rl.Update(c.pid, cpl, frame, {}, nullptr);
  }

  for (int i = 0; i <= 500; ++i) {
    const double t = 1000.0 * i / 500.0;
    double want = std::numeric_limits<double>::infinity();
    for (const Curve& c : curves) {
      want = std::min(
          want, c.offset + geom::Dist(c.cp, frame.PointAt(t)));
    }
    EXPECT_NEAR(rl.OdistAt(t, frame), want, 1e-6 * (1 + want))
        << "seed=" << GetParam() << " t=" << t;
  }

  // The reported owner must achieve the envelope value (ties permitted).
  for (int i = 0; i <= 100; ++i) {
    const double t = 1000.0 * (i + 0.5) / 101.0;
    const int64_t pid = rl.OnnAt(t);
    ASSERT_GE(pid, 0);
    const Curve& c = curves[pid];
    EXPECT_NEAR(c.offset + geom::Dist(c.cp, frame.PointAt(t)),
                rl.OdistAt(t, frame), 1e-6);
  }
}

TEST_P(ResultListEnvelope, UpdateOrderDoesNotMatter) {
  Rng rng(GetParam() ^ 0x0DDE);
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {500, 0}));
  std::vector<Curve> curves;
  for (int i = 0; i < 8; ++i) {
    curves.push_back(Curve{
        i, {rng.Uniform(0, 500), rng.Uniform(5, 200)}, rng.Uniform(0, 150)});
  }
  ResultList forward(geom::IntervalSet{geom::Interval(0, 500)});
  ResultList backward(geom::IntervalSet{geom::Interval(0, 500)});
  for (int i = 0; i < 8; ++i) {
    ControlPointList cpl_f = {
        CplEntry{true, curves[i].cp, curves[i].offset, geom::Interval(0, 500)}};
    forward.Update(curves[i].pid, cpl_f, frame, {}, nullptr);
    ControlPointList cpl_b = {CplEntry{true, curves[7 - i].cp,
                                       curves[7 - i].offset,
                                       geom::Interval(0, 500)}};
    backward.Update(curves[7 - i].pid, cpl_b, frame, {}, nullptr);
  }
  for (int i = 0; i <= 200; ++i) {
    const double t = 500.0 * i / 200.0;
    EXPECT_NEAR(forward.OdistAt(t, frame), backward.OdistAt(t, frame), 1e-6)
        << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResultListEnvelope,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace core
}  // namespace conn
