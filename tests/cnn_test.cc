// Tests for Euclidean CNN (Tao et al.) and its equivalence with CONN on an
// empty obstacle set — the Figure 1(a) semantics.

#include <gtest/gtest.h>

#include "core/cnn.h"
#include "core/conn.h"
#include "geom/distance.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

TEST(CnnTest, SinglePointOwnsWholeSegment) {
  testutil::Scene scene;
  scene.points = {{50, 40}};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const ConnResult r = CnnQuery(tp, geom::Segment({0, 0}, {100, 0}));
  ASSERT_EQ(r.tuples.size(), 1u);
  EXPECT_EQ(r.tuples[0].point_id, 0);
  EXPECT_DOUBLE_EQ(r.tuples[0].range.Length(), 100.0);
}

TEST(CnnTest, TwoPointsSplitAtBisector) {
  testutil::Scene scene;
  scene.points = {{20, 10}, {80, 10}};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const ConnResult r = CnnQuery(tp, geom::Segment({0, 0}, {100, 0}));
  ASSERT_EQ(r.tuples.size(), 2u);
  EXPECT_NEAR(r.tuples[0].range.hi, 50.0, 1e-9);
  const auto splits = r.SplitParams();
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_NEAR(splits[0], 50.0, 1e-9);
}

TEST(CnnTest, Figure1aShape) {
  // Qualitative check of the paper's Figure 1(a): several stations along a
  // highway produce an ordered sequence of split points.
  testutil::Scene scene;
  scene.points = {{100, 80},  {250, -60}, {420, 90},
                  {600, -70}, {780, 60},  {930, -40}};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const ConnResult r = CnnQuery(tp, geom::Segment({0, 0}, {1000, 0}));
  EXPECT_GE(r.tuples.size(), 4u);
  // Every point of q must be assigned, in order, and each tuple's point
  // must actually be the Euclidean NN at the tuple midpoint.
  for (const ConnTuple& t : r.tuples) {
    const geom::Vec2 s = r.query.At(t.range.Mid());
    double best = 1e300;
    int64_t best_pid = -1;
    for (size_t i = 0; i < scene.points.size(); ++i) {
      const double d = geom::Dist(scene.points[i], s);
      if (d < best) {
        best = d;
        best_pid = static_cast<int64_t>(i);
      }
    }
    EXPECT_EQ(t.point_id, best_pid);
  }
}

class CnnEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CnnEquivalence, ConnWithNoObstaclesEqualsCnn) {
  testutil::Scene scene = testutil::MakeScene(GetParam(), 60, 0);
  scene.obstacles.clear();
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);  // empty

  const ConnResult cnn = CnnQuery(tp, scene.query);
  const ConnResult conn = ConnQuery(tp, to, scene.query);

  for (int i = 0; i <= 200; ++i) {
    const double t = scene.query.Length() * (i + 0.5) / 201.0;
    EXPECT_NEAR(cnn.OdistAt(t), conn.OdistAt(t), 1e-9) << "t=" << t;
    EXPECT_EQ(cnn.OnnAt(t), conn.OnnAt(t)) << "t=" << t;
  }
}

TEST_P(CnnEquivalence, CnnMatchesDenseSampling) {
  testutil::Scene scene = testutil::MakeScene(GetParam() ^ 0xCAFE, 80, 0);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const ConnResult cnn = CnnQuery(tp, scene.query);

  for (int i = 0; i <= 300; ++i) {
    const double t = scene.query.Length() * i / 300.0;
    const geom::Vec2 s = scene.query.At(t);
    double best = 1e300;
    for (const geom::Vec2& p : scene.points) {
      best = std::min(best, geom::Dist(p, s));
    }
    EXPECT_NEAR(cnn.OdistAt(t), best, 1e-7 * (1 + best)) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CnnEquivalence,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace core
}  // namespace conn
