// Tests for trajectory CONN (the Section 6 future-work extension).

#include <gtest/gtest.h>

#include "core/trajectory.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

TEST(TrajectoryTest, LegsMatchIndividualQueries) {
  const testutil::Scene scene = testutil::MakeScene(21, 40, 12);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);

  const std::vector<geom::Vec2> waypoints = {
      {100, 100}, {400, 150}, {450, 500}, {800, 650}};
  const TrajectoryResult traj =
      TrajectoryConnQuery(tp, to, waypoints, {});
  ASSERT_EQ(traj.legs.size(), 3u);

  for (size_t i = 0; i < traj.legs.size(); ++i) {
    const geom::Segment leg(waypoints[i], waypoints[i + 1]);
    const ConnResult direct = ConnQuery(tp, to, leg);
    for (int s = 0; s <= 50; ++s) {
      const double t = leg.Length() * (s + 0.5) / 51.0;
      const double a = traj.legs[i].result.OdistAt(t);
      const double b = direct.OdistAt(t);
      if (std::isinf(a) || std::isinf(b)) {
        EXPECT_EQ(std::isinf(a), std::isinf(b)) << "leg " << i << " t=" << t;
      } else {
        EXPECT_NEAR(a, b, 1e-9) << "leg " << i << " t=" << t;
      }
    }
  }
}

TEST(TrajectoryTest, DuplicateWaypointsSkipped) {
  const testutil::Scene scene = testutil::MakeScene(22, 20, 5);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const TrajectoryResult traj = TrajectoryConnQuery(
      tp, to, {{100, 100}, {100, 100}, {500, 500}}, {});
  ASSERT_EQ(traj.legs.size(), 1u);
}

TEST(TrajectoryTest, ArcLengthLookupAndTotals) {
  const testutil::Scene scene = testutil::MakeScene(23, 30, 8);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const std::vector<geom::Vec2> waypoints = {{0, 0}, {300, 0}, {300, 400}};
  const TrajectoryResult traj = TrajectoryConnQuery(tp, to, waypoints, {});
  EXPECT_DOUBLE_EQ(traj.TotalLength(), 700.0);

  // Sampling within the second leg must agree with its own result.
  const int64_t via_arc = traj.OnnAtArcLength(450.0);
  const int64_t direct = traj.legs[1].result.OnnAt(150.0);
  EXPECT_EQ(via_arc, direct);

  // Aggregated stats sum the per-leg counters.
  uint64_t npe = 0;
  for (const TrajectoryLeg& leg : traj.legs) {
    npe += leg.result.stats.points_evaluated;
  }
  EXPECT_EQ(traj.total_stats.points_evaluated, npe);
}

}  // namespace
}  // namespace core
}  // namespace conn
