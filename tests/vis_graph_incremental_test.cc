// Property tests for the visibility graph's incremental maintenance — the
// performance-critical path added on top of the paper's description.  A
// graph grown obstacle-by-obstacle (with cached adjacency being patched in
// place) must behave exactly like a graph built from scratch over the same
// final obstacle set, regardless of when adjacency was first touched.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vis/dijkstra.h"
#include "vis/vis_graph.h"

namespace conn {
namespace vis {
namespace {

const geom::Rect kDomain({0, 0}, {1000, 1000});

std::vector<geom::Rect> RandomRects(Rng* rng, int n) {
  std::vector<geom::Rect> rects;
  for (int i = 0; i < n; ++i) {
    const geom::Vec2 lo{rng->Uniform(50, 900), rng->Uniform(50, 900)};
    rects.push_back(geom::Rect(
        lo, {lo.x + rng->Uniform(5, 90), lo.y + rng->Uniform(5, 90)}));
  }
  return rects;
}

class IncrementalEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalEquivalence, PatchedGraphEqualsFreshGraph) {
  Rng rng(GetParam());
  const auto rects = RandomRects(&rng, 25);
  const geom::Vec2 target{950, 950};

  // Incremental graph: interleave insertions with Dijkstra scans so that
  // cached adjacency exists *before* later obstacles arrive (exercising
  // both the prune pass and the reciprocal patch).
  VisGraph inc(kDomain);
  const VertexId t_inc = inc.AddFixedVertex(target);
  std::vector<geom::Vec2> sources;
  for (size_t i = 0; i < rects.size(); ++i) {
    inc.AddObstacle(rects[i], i);
    if (i % 5 == 2) {
      const geom::Vec2 src{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
      DijkstraScan warm(&inc, src);
      warm.SettleTargets({t_inc});  // touch (and cache) many adjacencies
      sources.push_back(src);
    }
  }

  // Fresh graph over the final obstacle set.
  VisGraph fresh(kDomain);
  const VertexId t_fresh = fresh.AddFixedVertex(target);
  for (size_t i = 0; i < rects.size(); ++i) fresh.AddObstacle(rects[i], i);

  ASSERT_EQ(inc.VertexCount(), fresh.VertexCount());

  // Distances from a batch of probes must agree exactly — to the target
  // and to every graph vertex.
  for (int probe = 0; probe < 6; ++probe) {
    const geom::Vec2 src{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    DijkstraScan a(&inc, src);
    DijkstraScan b(&fresh, src);
    a.SettleTargets({t_inc});
    b.SettleTargets({t_fresh});
    // Drain both completely.
    VertexId v;
    double d;
    int32_t pred;
    while (a.Next(&v, &d, &pred)) {
    }
    while (b.Next(&v, &d, &pred)) {
    }
    for (VertexId u = 0; u < inc.VertexCount(); ++u) {
      const double da = a.DistOf(u);
      const double db = b.DistOf(u);
      if (std::isinf(da) || std::isinf(db)) {
        EXPECT_EQ(std::isinf(da), std::isinf(db)) << "vertex " << u;
      } else {
        EXPECT_NEAR(da, db, 1e-9) << "vertex " << u;
      }
    }
  }
}

TEST_P(IncrementalEquivalence, NeighborsAreSymmetricAndVisible) {
  Rng rng(GetParam() ^ 0x5A5A);
  const auto rects = RandomRects(&rng, 20);
  VisGraph g(kDomain);
  g.AddFixedVertex({500, 500});
  for (size_t i = 0; i < rects.size(); ++i) {
    g.AddObstacle(rects[i], i);
    // Touch a random vertex's adjacency mid-build.
    g.Neighbors(static_cast<VertexId>(rng.UniformU64(g.VertexCount())));
  }
  g.MaterializeAllAdjacency();

  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    for (const VisEdge& e : g.Neighbors(v)) {
      // Every cached edge must still be an unblocked sight-line...
      EXPECT_TRUE(g.Visible(g.VertexPos(v), g.VertexPos(e.to)))
          << v << "->" << e.to;
      EXPECT_NEAR(e.length, geom::Dist(g.VertexPos(v), g.VertexPos(e.to)),
                  1e-9);
      // ...and present in the reverse list (graph is undirected).
      bool reciprocal = false;
      for (const VisEdge& r : g.Neighbors(e.to)) {
        if (r.to == v) reciprocal = true;
      }
      EXPECT_TRUE(reciprocal) << v << "<->" << e.to;
    }
  }
}

TEST_P(IncrementalEquivalence, ScanLogReplayMatchesNext) {
  Rng rng(GetParam() ^ 0x1DE);
  const auto rects = RandomRects(&rng, 15);
  VisGraph g(kDomain);
  g.AddFixedVertex({900, 100});
  for (size_t i = 0; i < rects.size(); ++i) g.AddObstacle(rects[i], i);

  const geom::Vec2 src{50, 50};
  DijkstraScan via_next(&g, src);
  std::vector<DijkstraScan::Settled> seen;
  VertexId v;
  double d;
  int32_t pred;
  while (via_next.Next(&v, &d, &pred)) seen.push_back({v, d, pred});

  DijkstraScan via_log(&g, src);
  for (size_t i = 0; i < seen.size(); ++i) {
    ASSERT_TRUE(via_log.EnsureSettled(i));
    EXPECT_EQ(via_log.log()[i].v, seen[i].v);
    EXPECT_DOUBLE_EQ(via_log.log()[i].dist, seen[i].dist);
    EXPECT_EQ(via_log.log()[i].pred, seen[i].pred);
  }
  EXPECT_FALSE(via_log.EnsureSettled(seen.size()));
}

TEST_P(IncrementalEquivalence, DeferredGraphEqualsEagerGraph) {
  // Deferred (patch-only) adjacency: insertions record the obstacle and
  // its lazy corners in O(1); stale cached lists are patched over the
  // [mark, size) obstacle suffix on next touch.  Every observable —
  // distances, edge sets, reachability — must match the eager graph,
  // with fixed vertices added and removed mid-stream (query sessions)
  // and scans interleaved so stale cached lists exist when later
  // obstacles arrive.
  Rng rng(GetParam() ^ 0xDEF);
  const auto rects = RandomRects(&rng, 25);

  VisGraph eager(kDomain);
  VisGraph deferred(kDomain);
  deferred.SetDeferredAdjacency(true);
  const VertexId t_e = eager.AddFixedVertex({950, 950});
  const VertexId t_d = deferred.AddFixedVertex({950, 950});
  ASSERT_EQ(t_e, t_d);

  for (size_t i = 0; i < rects.size(); ++i) {
    eager.AddObstacle(rects[i], i);
    deferred.AddObstacle(rects[i], i);
    if (i % 4 == 1) {
      // A transient query session: fixed target added, scanned against
      // (caching adjacency in both graphs), then removed — the deferred
      // graph's removal must purge the vertex from stale lists too.
      const geom::Vec2 pos{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
      const VertexId q_e = eager.AddFixedVertex(pos);
      const VertexId q_d = deferred.AddFixedVertex(pos);
      const geom::Vec2 src{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
      DijkstraScan a(&eager, src);
      DijkstraScan b(&deferred, src);
      a.SettleTargets({q_e});
      b.SettleTargets({q_d});
      eager.RemoveFixedVertices({q_e});
      deferred.RemoveFixedVertices({q_d});
    }
  }

  ASSERT_EQ(eager.VertexCount(), deferred.VertexCount());
  for (int probe = 0; probe < 6; ++probe) {
    const geom::Vec2 src{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    DijkstraScan a(&eager, src);
    DijkstraScan b(&deferred, src);
    a.SettleTargets({t_e});
    b.SettleTargets({t_d});
    VertexId v;
    double d;
    int32_t pred;
    while (a.Next(&v, &d, &pred)) {
    }
    while (b.Next(&v, &d, &pred)) {
    }
    for (VertexId u = 0; u < eager.VertexCount(); ++u) {
      const double da = a.DistOf(u);
      const double db = b.DistOf(u);
      if (std::isinf(da) || std::isinf(db)) {
        EXPECT_EQ(std::isinf(da), std::isinf(db)) << "vertex " << u;
      } else {
        EXPECT_NEAR(da, db, 1e-9) << "vertex " << u;
      }
    }
  }
}

TEST_P(IncrementalEquivalence, DeferredNeighborsAreSymmetricAndVisible) {
  Rng rng(GetParam() ^ 0xD0D0);
  const auto rects = RandomRects(&rng, 20);
  VisGraph g(kDomain);
  g.SetDeferredAdjacency(true);
  g.AddFixedVertex({500, 500});
  for (size_t i = 0; i < rects.size(); ++i) {
    g.AddObstacle(rects[i], i);
    // Touch a random vertex's adjacency mid-build so later insertions
    // leave stale cached lists behind for the patch path.
    g.Neighbors(static_cast<VertexId>(rng.UniformU64(g.VertexCount())));
  }
  g.MaterializeAllAdjacency();

  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    for (const VisEdge& e : g.Neighbors(v)) {
      EXPECT_TRUE(g.Visible(g.VertexPos(v), g.VertexPos(e.to)))
          << v << "->" << e.to;
      EXPECT_NEAR(e.length, geom::Dist(g.VertexPos(v), g.VertexPos(e.to)),
                  1e-9);
      bool reciprocal = false;
      for (const VisEdge& r : g.Neighbors(e.to)) {
        if (r.to == v) reciprocal = true;
      }
      EXPECT_TRUE(reciprocal) << v << "<->" << e.to;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalence,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace vis
}  // namespace conn
