// Tests for the 1-tree configuration (Section 4.5): the unified-tree CONN
// and COkNN must return exactly the same answers as the 2-tree versions.

#include <cmath>

#include <gtest/gtest.h>

#include "core/coknn.h"
#include "core/conn.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

class OneTreeEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OneTreeEquivalence, ConnSameAnswerAsTwoTrees) {
  const testutil::Scene scene = testutil::MakeScene(GetParam(), 60, 20);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const rtree::RStarTree unified = testutil::MakeUnifiedTree(scene);

  const ConnResult two = ConnQuery(tp, to, scene.query);
  const ConnResult one = ConnQuery1T(unified, scene.query);

  EXPECT_EQ(one.unreachable.size(), two.unreachable.size());
  for (int i = 0; i <= 250; ++i) {
    const double t = scene.query.Length() * (i + 0.5) / 251.0;
    const double a = two.OdistAt(t);
    const double b = one.OdistAt(t);
    if (std::isinf(a) || std::isinf(b)) {
      EXPECT_EQ(std::isinf(a), std::isinf(b)) << "t=" << t;
    } else {
      EXPECT_NEAR(a, b, 1e-6 * (1 + a)) << "t=" << t;
    }
  }
}

TEST_P(OneTreeEquivalence, CoknnSameAnswerAsTwoTrees) {
  const testutil::Scene scene =
      testutil::MakeScene(GetParam() ^ 0x17EE, 40, 15);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const rtree::RStarTree unified = testutil::MakeUnifiedTree(scene);
  const size_t k = 3;

  const CoknnResult two = CoknnQuery(tp, to, scene.query, k);
  const CoknnResult one = CoknnQuery1T(unified, scene.query, k);

  for (int i = 0; i <= 150; ++i) {
    const double t = scene.query.Length() * (i + 0.5) / 151.0;
    if (two.unreachable.Contains(t, 1e-3)) continue;
    for (size_t j = 0; j < k; ++j) {
      const double a = two.OdistAt(t, j);
      const double b = one.OdistAt(t, j);
      if (std::isinf(a) || std::isinf(b)) {
        EXPECT_EQ(std::isinf(a), std::isinf(b)) << "t=" << t << " j=" << j;
      } else {
        EXPECT_NEAR(a, b, 1e-6 * (1 + a)) << "t=" << t << " j=" << j;
      }
    }
  }
}

TEST_P(OneTreeEquivalence, OneTreeUsesSingleTreeIo) {
  const testutil::Scene scene =
      testutil::MakeScene(GetParam() ^ 0xF00D, 60, 20);
  const rtree::RStarTree unified = testutil::MakeUnifiedTree(scene);
  const ConnResult one = ConnQuery1T(unified, scene.query);
  EXPECT_GT(one.stats.data_page_reads, 0u);
  EXPECT_EQ(one.stats.obstacle_page_reads, 0u);  // single pager
  EXPECT_GT(one.stats.points_evaluated, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneTreeEquivalence,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace core
}  // namespace conn
