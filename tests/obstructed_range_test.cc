// Tests for the obstructed range query against the brute-force oracle.

#include <set>

#include <gtest/gtest.h>

#include "core/naive.h"
#include "core/obstructed_range.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

TEST(ObstructedRangeTest, WallExcludesEuclideanNeighbor) {
  testutil::Scene scene;
  scene.points = {{0, 30}, {40, 0}};
  scene.obstacles = {geom::Rect({-50, 10}, {50, 20})};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);

  // Radius 45: Euclidean would include both (30 and 40); the wall pushes
  // point 0's obstructed distance beyond 45.
  const ObstructedRangeResult r =
      ObstructedRangeQuery(tp, to, {0, 0}, 45.0);
  ASSERT_EQ(r.members.size(), 1u);
  EXPECT_EQ(r.members[0].pid, 1);
  EXPECT_NEAR(r.members[0].odist, 40.0, 1e-9);
}

TEST(ObstructedRangeTest, ZeroRadiusMatchesOnlyCoincidentPoints) {
  testutil::Scene scene;
  scene.points = {{10, 10}, {20, 20}};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ObstructedRangeResult none = ObstructedRangeQuery(tp, to, {5, 5}, 0.0);
  EXPECT_TRUE(none.members.empty());
  const ObstructedRangeResult hit =
      ObstructedRangeQuery(tp, to, {10, 10}, 0.0);
  ASSERT_EQ(hit.members.size(), 1u);
  EXPECT_EQ(hit.members[0].pid, 0);
}

TEST(ObstructedRangeTest, MembersSortedByDistance) {
  const testutil::Scene scene = testutil::MakeScene(31, 60, 15);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ObstructedRangeResult r =
      ObstructedRangeQuery(tp, to, {500, 500}, 300.0);
  for (size_t i = 1; i < r.members.size(); ++i) {
    EXPECT_GE(r.members[i].odist, r.members[i - 1].odist);
  }
  for (const OnnNeighbor& m : r.members) {
    EXPECT_LE(m.odist, 300.0);
  }
}

class ObstructedRangeVsOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObstructedRangeVsOracle, SameMembershipAsBruteForce) {
  const testutil::Scene scene = testutil::MakeScene(GetParam(), 50, 18);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const NaiveOracle oracle(scene.points, scene.obstacles);

  Rng rng(GetParam() ^ 0xAB);
  for (int qi = 0; qi < 6; ++qi) {
    const geom::Vec2 qp{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const double radius = rng.Uniform(50, 400);
    const ObstructedRangeResult got =
        ObstructedRangeQuery(tp, to, qp, radius);

    const std::vector<double> truth = oracle.OdistToAllPoints(qp);
    std::set<int64_t> want;
    for (size_t i = 0; i < truth.size(); ++i) {
      // Skip near-boundary members (either inclusion is acceptable).
      if (truth[i] <= radius - 1e-6) want.insert(static_cast<int64_t>(i));
    }
    std::set<int64_t> got_ids;
    for (const OnnNeighbor& m : got.members) got_ids.insert(m.pid);
    for (int64_t pid : want) {
      EXPECT_TRUE(got_ids.count(pid)) << "missing pid " << pid;
    }
    for (int64_t pid : got_ids) {
      EXPECT_LE(truth[pid], radius + 1e-6) << "extra pid " << pid;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObstructedRangeVsOracle,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace core
}  // namespace conn
