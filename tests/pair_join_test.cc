// Tests for the incremental Euclidean pair distance join.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rtree/pair_join.h"
#include "rtree/str_bulk_load.h"

namespace conn {
namespace rtree {
namespace {

RStarTree MakeTree(const std::vector<geom::Vec2>& pts) {
  std::vector<DataObject> objs;
  for (size_t i = 0; i < pts.size(); ++i) {
    objs.push_back(DataObject::Point(pts[i], i));
  }
  return std::move(StrBulkLoad(objs)).value();
}

TEST(PairJoinTest, EmptyTreesYieldNothing) {
  RStarTree empty_a, empty_b;
  PairDistanceJoin join(empty_a, empty_b);
  DataObject a, b;
  double d;
  EXPECT_TRUE(std::isinf(join.PeekDist()));
  EXPECT_FALSE(join.Next(&a, &b, &d));
}

TEST(PairJoinTest, SmallCrossProductAscending) {
  const RStarTree ta = MakeTree({{0, 0}, {10, 0}});
  const RStarTree tb = MakeTree({{1, 0}, {20, 0}});
  PairDistanceJoin join(ta, tb);
  DataObject a, b;
  double d;
  std::vector<double> dists;
  while (join.Next(&a, &b, &d)) dists.push_back(d);
  ASSERT_EQ(dists.size(), 4u);  // full cross product
  // 0-1: 1; 10-1: 9; 10-20: 10; 0-20: 20.
  EXPECT_DOUBLE_EQ(dists[0], 1.0);
  EXPECT_DOUBLE_EQ(dists[1], 9.0);
  EXPECT_DOUBLE_EQ(dists[2], 10.0);
  EXPECT_DOUBLE_EQ(dists[3], 20.0);
}

class PairJoinProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairJoinProperty, MatchesBruteForceOrder) {
  Rng rng(GetParam());
  std::vector<geom::Vec2> pa, pb;
  const size_t na = 40 + rng.UniformU64(80), nb = 40 + rng.UniformU64(80);
  for (size_t i = 0; i < na; ++i) {
    pa.push_back({rng.Uniform(0, 500), rng.Uniform(0, 500)});
  }
  for (size_t i = 0; i < nb; ++i) {
    pb.push_back({rng.Uniform(0, 500), rng.Uniform(0, 500)});
  }
  const RStarTree ta = MakeTree(pa);
  const RStarTree tb = MakeTree(pb);

  std::vector<double> want;
  for (const auto& x : pa) {
    for (const auto& y : pb) want.push_back(geom::Dist(x, y));
  }
  std::sort(want.begin(), want.end());

  PairDistanceJoin join(ta, tb);
  DataObject a, b;
  double d;
  size_t idx = 0;
  double prev = -1.0;
  while (join.Next(&a, &b, &d)) {
    ASSERT_LT(idx, want.size());
    EXPECT_NEAR(d, want[idx], 1e-9) << "rank " << idx;
    EXPECT_NEAR(d, geom::Dist(pa[a.id], pb[b.id]), 1e-9);
    EXPECT_GE(d, prev - 1e-12);
    prev = d;
    ++idx;
  }
  EXPECT_EQ(idx, want.size());
}

TEST_P(PairJoinProperty, PeekNeverOvershoots) {
  Rng rng(GetParam() ^ 0x77);
  std::vector<geom::Vec2> pa, pb;
  for (int i = 0; i < 60; ++i) {
    pa.push_back({rng.Uniform(0, 300), rng.Uniform(0, 300)});
    pb.push_back({rng.Uniform(0, 300), rng.Uniform(0, 300)});
  }
  const RStarTree ta = MakeTree(pa);
  const RStarTree tb = MakeTree(pb);
  PairDistanceJoin join(ta, tb);
  DataObject a, b;
  double d;
  for (int i = 0; i < 200; ++i) {
    const double peek = join.PeekDist();
    ASSERT_TRUE(join.Next(&a, &b, &d));
    EXPECT_DOUBLE_EQ(peek, d);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairJoinProperty,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace rtree
}  // namespace conn
