// Tests for the split-point engine: CompareCurves winner partitions, the
// literal Case 1-4 classification of Section 3, and the Lemma 1 fast path.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/split.h"

namespace conn {
namespace geom {
namespace {

const SegmentFrame& Frame() {
  static const SegmentFrame f(Segment({0, 0}, {100, 0}));
  return f;
}

TEST(CompareCurvesTest, PartitionCoversDomain) {
  const auto inc = DistanceCurve::FromControlPoint(Frame(), {30, 10}, 0.0);
  const auto cha = DistanceCurve::FromControlPoint(Frame(), {70, 10}, 0.0);
  const auto parts = CompareCurves(inc, cha, Interval(0, 100));
  ASSERT_FALSE(parts.empty());
  EXPECT_DOUBLE_EQ(parts.front().interval.lo, 0.0);
  EXPECT_DOUBLE_EQ(parts.back().interval.hi, 100.0);
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    EXPECT_DOUBLE_EQ(parts[i].interval.hi, parts[i + 1].interval.lo);
    EXPECT_NE(parts[i].winner, parts[i + 1].winner);  // merged if equal
  }
}

TEST(CompareCurvesTest, BisectorSplitsAtMidpoint) {
  const auto inc = DistanceCurve::FromControlPoint(Frame(), {30, 10}, 0.0);
  const auto cha = DistanceCurve::FromControlPoint(Frame(), {70, 10}, 0.0);
  const auto parts = CompareCurves(inc, cha, Interval(0, 100));
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].winner, CurveWinner::kIncumbent);
  EXPECT_NEAR(parts[0].interval.hi, 50.0, 1e-9);
  EXPECT_EQ(parts[1].winner, CurveWinner::kChallenger);
}

TEST(CompareCurvesTest, TieGoesToIncumbent) {
  const auto c = DistanceCurve::FromControlPoint(Frame(), {50, 5}, 1.0);
  const auto parts = CompareCurves(c, c, Interval(0, 100));
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].winner, CurveWinner::kIncumbent);
}

TEST(CompareCurvesTest, EmptyDomain) {
  const auto c = DistanceCurve::FromControlPoint(Frame(), {50, 5}, 1.0);
  EXPECT_TRUE(CompareCurves(c, c, Interval()).empty());
}

TEST(CompareCurvesTest, ChallengerWinsMiddleOnly) {
  // Challenger with near control point but offset: wins a bounded window
  // (the paper's Case 2 — two split points).
  const auto inc = DistanceCurve::FromControlPoint(Frame(), {50, 30}, 0.0);
  const auto cha = DistanceCurve::FromControlPoint(Frame(), {50, 2}, 15.0);
  const auto parts = CompareCurves(inc, cha, Interval(0, 100));
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].winner, CurveWinner::kIncumbent);
  EXPECT_EQ(parts[1].winner, CurveWinner::kChallenger);
  EXPECT_EQ(parts[2].winner, CurveWinner::kIncumbent);
}

// ---------------------------------------------------------------------------
// Paper Case 1-4 classification cross-check (Figure 4 preconditions: both
// control points strictly on the same side, distinct projections).
// ---------------------------------------------------------------------------

class PaperCaseProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PaperCaseProperty, ClassificationMatchesEngine) {
  Rng rng(GetParam());
  // A huge domain approximates the infinite line of the paper's analysis.
  // Control points sit near the center; the margin conditions below bound
  // every crossing's position well inside the domain.
  const SegmentFrame frame(Segment({-100000, 0}, {100000, 0}));
  const Interval domain(0, 200000);
  int verified = 0;
  for (int iter = 0; iter < 4000 && verified < 400; ++iter) {
    const Vec2 v{rng.Uniform(-300, 300), rng.Uniform(5, 60)};  // incumbent cp
    const Vec2 u{rng.Uniform(-300, 300), rng.Uniform(5, 60)};  // challenger cp
    if (std::abs(u.x - v.x) < 1.0) continue;  // need a > 0
    if (u.y <= v.y + 2.0) continue;  // Figure 4 premise: c > b (with margin)
    const double off_v = rng.Uniform(0, 800);
    const double off_u = rng.Uniform(0, 800);
    const double d = off_v - off_u;
    const double duv = Dist(u, v);
    const double a = std::abs(u.x - v.x);
    // Keep a margin from the case boundaries: near them fp noise flips the
    // classification and crossings drift toward the asymptotes.
    if (std::abs(d - duv) < 5.0 || std::abs(d - a) < 5.0 ||
        std::abs(d + a) < 5.0) {
      continue;
    }
    ++verified;

    const SplitCase c = ClassifyPaperCase(frame, v, off_v, u, off_u);
    const auto inc = DistanceCurve::FromControlPoint(frame, v, off_v);
    const auto cha = DistanceCurve::FromControlPoint(frame, u, off_u);
    const auto crossings = CurveCrossings(inc, cha, domain);
    const auto parts = CompareCurves(inc, cha, domain);

    switch (c) {
      case SplitCase::kCase1ChallengerEverywhere:
        EXPECT_EQ(crossings.size(), 0u) << "d=" << d << " duv=" << duv;
        ASSERT_EQ(parts.size(), 1u);
        EXPECT_EQ(parts[0].winner, CurveWinner::kChallenger);
        break;
      case SplitCase::kCase2TwoSplits:
        EXPECT_EQ(crossings.size(), 2u) << "d=" << d << " a=" << a;
        break;
      case SplitCase::kCase3OneSplit:
        EXPECT_EQ(crossings.size(), 1u) << "d=" << d << " a=" << a;
        break;
      case SplitCase::kCase4NoChange:
        EXPECT_EQ(crossings.size(), 0u) << "d=" << d << " a=" << a;
        ASSERT_EQ(parts.size(), 1u);
        EXPECT_EQ(parts[0].winner, CurveWinner::kIncumbent);
        break;
    }
  }
  EXPECT_GE(verified, 100);  // the sweep must actually exercise cases
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaperCaseProperty,
                         ::testing::Range<uint64_t>(1, 7));

// ---------------------------------------------------------------------------
// Lemma 1 fast path soundness: whenever the prune fires, the engine must
// agree that the incumbent wins everywhere.
// ---------------------------------------------------------------------------

class Lemma1Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma1Property, PruneImpliesIncumbentEverywhere) {
  Rng rng(GetParam());
  int fired = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    const auto inc = DistanceCurve::FromControlPoint(
        Frame(), {rng.Uniform(0, 100), rng.Uniform(0, 40)},
        rng.Uniform(0, 50));
    const auto cha = DistanceCurve::FromControlPoint(
        Frame(), {rng.Uniform(0, 100), rng.Uniform(0, 40)},
        rng.Uniform(0, 50));
    const Interval domain(rng.Uniform(0, 40), rng.Uniform(60, 100));
    if (!EndpointDominancePrune(inc, cha, domain)) continue;
    ++fired;
    for (double t = domain.lo; t <= domain.hi; t += domain.Length() / 64) {
      EXPECT_LE(inc.Eval(t), cha.Eval(t) + 1e-9)
          << "Lemma 1 pruned a challenger that wins at t=" << t;
    }
  }
  EXPECT_GT(fired, 50);  // the prune must fire often enough to be tested
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Property,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace geom
}  // namespace conn
