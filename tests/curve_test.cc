// Tests for SegmentFrame, DistanceCurve, and the crossing solver — the
// machinery realizing Theorem 1 (at most two equal-distance points).

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/curve.h"

namespace conn {
namespace geom {
namespace {

TEST(SegmentFrameTest, ProjectsIntoArcLengthCoordinates) {
  const SegmentFrame f(Segment({0, 0}, {10, 0}));
  EXPECT_DOUBLE_EQ(f.length(), 10.0);
  EXPECT_DOUBLE_EQ(f.ProjectM({3, 5}), 3.0);
  EXPECT_DOUBLE_EQ(f.ProjectH({3, 5}), 5.0);
  EXPECT_DOUBLE_EQ(f.ProjectH({3, -5}), 5.0);  // unsigned
}

TEST(SegmentFrameTest, RotatedSegment) {
  const SegmentFrame f(Segment({0, 0}, {3, 4}));  // length 5
  EXPECT_DOUBLE_EQ(f.length(), 5.0);
  // The segment's endpoint projects to (5, 0).
  EXPECT_NEAR(f.ProjectM({3, 4}), 5.0, 1e-12);
  EXPECT_NEAR(f.ProjectH({3, 4}), 0.0, 1e-12);
  // A point perpendicular off the midpoint.
  const Vec2 mid{1.5, 2.0};
  const Vec2 off = mid + Vec2{-4.0 / 5.0, 3.0 / 5.0} * 2.0;
  EXPECT_NEAR(f.ProjectM(off), 2.5, 1e-12);
  EXPECT_NEAR(f.ProjectH(off), 2.0, 1e-12);
}

TEST(DistanceCurveTest, EvalMatchesDirectComputation) {
  const SegmentFrame f(Segment({0, 0}, {10, 0}));
  const Vec2 cp{4, 3};
  const DistanceCurve c = DistanceCurve::FromControlPoint(f, cp, 7.0);
  for (double t = 0; t <= 10; t += 0.5) {
    EXPECT_NEAR(c.Eval(t), 7.0 + Dist(cp, f.PointAt(t)), 1e-12);
  }
}

TEST(CurveCrossingsTest, EqualOffsetsIsBisector) {
  const SegmentFrame f(Segment({0, 0}, {10, 0}));
  // Control points (2,1) and (8,1) with zero offsets: crossing at x = 5.
  const auto c1 = DistanceCurve::FromControlPoint(f, {2, 1}, 0.0);
  const auto c2 = DistanceCurve::FromControlPoint(f, {8, 1}, 0.0);
  const auto xs = CurveCrossings(c1, c2, Interval(0, 10));
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_NEAR(xs[0], 5.0, 1e-9);
}

TEST(CurveCrossingsTest, IdenticalCurvesReportNone) {
  const SegmentFrame f(Segment({0, 0}, {10, 0}));
  const auto c = DistanceCurve::FromControlPoint(f, {5, 2}, 1.0);
  EXPECT_TRUE(CurveCrossings(c, c, Interval(0, 10)).empty());
}

TEST(CurveCrossingsTest, TwoCrossings) {
  const SegmentFrame f(Segment({0, 0}, {20, 0}));
  // Far control point with small offset vs near control point with large
  // offset: the near one wins only in the middle.
  const auto far = DistanceCurve::FromControlPoint(f, {10, 8}, 0.0);
  const auto near = DistanceCurve::FromControlPoint(f, {10, 1}, 4.0);
  const auto xs = CurveCrossings(far, near, Interval(0, 20));
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_LT(xs[0], 10.0);
  EXPECT_GT(xs[1], 10.0);
  // Verify sign pattern: near wins strictly between the crossings.
  const double mid = 10.0;
  EXPECT_LT(near.Eval(mid), far.Eval(mid));
  EXPECT_GT(near.Eval(0.0), far.Eval(0.0));
  EXPECT_GT(near.Eval(20.0), far.Eval(20.0));
}

TEST(CurveCrossingsTest, KinkedCurveOnSegmentLine) {
  const SegmentFrame f(Segment({0, 0}, {10, 0}));
  // Control point ON the supporting line: h = 0, V-shaped curve.
  const auto v = DistanceCurve::FromControlPoint(f, {5, 0}, 0.0);
  const auto flat = DistanceCurve::FromControlPoint(f, {5, 3}, 0.0);
  // |t-5| = sqrt((t-5)^2+9) has no solution; with offset it does:
  const auto lifted = DistanceCurve::FromControlPoint(f, {5, 0}, 2.0);
  EXPECT_TRUE(CurveCrossings(v, flat, Interval(0, 10)).empty());
  const auto xs = CurveCrossings(lifted, flat, Interval(0, 10));
  // 2 + |t-5| = sqrt((t-5)^2 + 9): |t-5| = 5/4 -> t = 3.75, 6.25.
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_NEAR(xs[0], 3.75, 1e-9);
  EXPECT_NEAR(xs[1], 6.25, 1e-9);
}

class CurveCrossingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CurveCrossingProperty, CrossingsMatchDenseSignScan) {
  Rng rng(GetParam());
  const SegmentFrame f(Segment({0, 0}, {100, 0}));
  for (int iter = 0; iter < 300; ++iter) {
    const auto c1 = DistanceCurve::FromControlPoint(
        f, {rng.Uniform(-20, 120), rng.Uniform(0, 60)}, rng.Uniform(0, 80));
    const auto c2 = DistanceCurve::FromControlPoint(
        f, {rng.Uniform(-20, 120), rng.Uniform(0, 60)}, rng.Uniform(0, 80));
    const Interval domain(0, 100);
    const auto xs = CurveCrossings(c1, c2, domain);
    ASSERT_LE(xs.size(), 2u);  // Theorem 1

    // Dense scan: every sign change must be near a reported crossing, and
    // every reported crossing must have |g| ~ 0.
    for (double x : xs) {
      EXPECT_LE(std::abs(c1.Eval(x) - c2.Eval(x)), 1e-5);
    }
    const int kGrid = 400;
    double prev = c1.Eval(0) - c2.Eval(0);
    for (int i = 1; i <= kGrid; ++i) {
      const double t = 100.0 * i / kGrid;
      const double cur = c1.Eval(t) - c2.Eval(t);
      if (prev * cur < 0.0 && std::abs(prev) > 1e-7 && std::abs(cur) > 1e-7) {
        // A sign change inside (t - step, t): some crossing must be nearby.
        bool found = false;
        for (double x : xs) {
          if (x >= 100.0 * (i - 1) / kGrid - 1e-6 && x <= t + 1e-6) {
            found = true;
          }
        }
        EXPECT_TRUE(found) << "sign change near t=" << t << " not reported";
      }
      prev = cur;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurveCrossingProperty,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace geom
}  // namespace conn
