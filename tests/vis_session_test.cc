// Tests for the VisGraph query-session refactor that enables shard-shared
// obstacle workspaces: fixed vertices added after obstacles, scoped
// removal via QuerySession, slot recycling, and AddObstacle deduplication.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "vis/dijkstra.h"
#include "vis/vis_graph.h"

namespace conn {
namespace vis {
namespace {

const geom::Rect kDomain({-100, -100}, {1100, 1100});

/// Obstructed distance from \p src to \p dst on \p vg, with \p dst already
/// a graph vertex.
double DistTo(VisGraph* vg, geom::Vec2 src, VertexId dst) {
  DijkstraScan scan(vg, src);
  return scan.SettleTargets({dst});
}

TEST(VisSessionTest, FixedVertexAfterObstaclesMatchesFixedFirstGraph) {
  const geom::Rect wall({400, 0}, {420, 700});
  const geom::Vec2 src{100, 100};
  const geom::Vec2 dst{800, 100};

  // Reference: the single-query order (fixed vertex first, then obstacles).
  VisGraph ref(kDomain);
  const VertexId t_ref = ref.AddFixedVertex(dst);
  ref.AddObstacle(wall, 1);
  const double want = DistTo(&ref, src, t_ref);
  EXPECT_TRUE(std::isfinite(want));
  EXPECT_GT(want, geom::Dist(src, dst));  // the wall forces a detour

  // Shared-workspace order: obstacles first, target patched in afterwards.
  VisGraph shared(kDomain);
  shared.AddObstacle(wall, 1);
  const VertexId t_shared = shared.AddFixedVertex(dst);
  EXPECT_DOUBLE_EQ(DistTo(&shared, src, t_shared), want);
}

TEST(VisSessionTest, SessionRemovalLeavesObstacleGraphIntact) {
  const geom::Rect wall_a({300, 200}, {320, 900});
  const geom::Rect wall_b({600, -50}, {620, 500});
  const geom::Vec2 src{50, 400};
  const geom::Vec2 dst{900, 400};

  VisGraph shared(kDomain);
  shared.AddObstacle(wall_a, 7);

  // Query 1: adds its targets, retrieves one more obstacle, then ends.
  {
    QuerySession s1(&shared);
    const VertexId t1 = s1.AddFixedVertex({500, 800});
    shared.AddObstacle(wall_b, 8);
    EXPECT_TRUE(std::isfinite(DistTo(&shared, src, t1)));
  }
  const size_t slots_after_s1 = shared.VertexCount();

  // Query 2 on the accumulated graph must equal a fresh graph holding the
  // same obstacles.
  VisGraph fresh(kDomain);
  const VertexId t_fresh = fresh.AddFixedVertex(dst);
  fresh.AddObstacle(wall_a, 7);
  fresh.AddObstacle(wall_b, 8);
  const double want = DistTo(&fresh, src, t_fresh);

  {
    QuerySession s2(&shared);
    const VertexId t2 = s2.AddFixedVertex(dst);
    EXPECT_DOUBLE_EQ(DistTo(&shared, src, t2), want);
  }

  // Session 2 reused the slot session 1 freed: no slot growth.
  EXPECT_EQ(shared.VertexCount(), slots_after_s1);
}

TEST(VisSessionTest, ManySessionsDoNotGrowTheGraph) {
  VisGraph shared(kDomain);
  shared.AddObstacle(geom::Rect({400, 400}, {500, 500}), 1);
  size_t baseline = 0;
  for (int i = 0; i < 20; ++i) {
    QuerySession s(&shared);
    s.AddFixedVertex({10.0 + i, 20.0});
    s.AddFixedVertex({900.0 - i, 880.0});
    if (i == 0) baseline = shared.VertexCount();
    EXPECT_EQ(shared.VertexCount(), baseline);
  }
}

TEST(VisSessionTest, RemovedVertexDisappearsFromNeighborLists) {
  VisGraph g(kDomain);
  const VertexId keep = g.AddFixedVertex({100, 100});
  g.AddObstacle(geom::Rect({400, 400}, {500, 500}), 1);
  VertexId gone;
  {
    QuerySession s(&g);
    gone = s.AddFixedVertex({200, 200});
    bool found = false;
    for (const VisEdge& e : g.Neighbors(keep)) found |= (e.to == gone);
    EXPECT_TRUE(found) << "live session vertex missing from cached list";
  }
  EXPECT_FALSE(g.IsAlive(gone));
  for (const VisEdge& e : g.Neighbors(keep)) {
    EXPECT_TRUE(g.IsAlive(e.to)) << "edge to a removed vertex survived";
  }
}

TEST(VisSessionTest, AddObstacleDeduplicatesById) {
  VisGraph g(kDomain);
  EXPECT_TRUE(g.AddObstacle(geom::Rect({100, 100}, {200, 200}), 42));
  const size_t vertices = g.VertexCount();
  const uint64_t epoch = g.epoch();

  EXPECT_FALSE(g.AddObstacle(geom::Rect({100, 100}, {200, 200}), 42));
  EXPECT_EQ(g.ObstacleCount(), 1u);
  EXPECT_EQ(g.VertexCount(), vertices);
  EXPECT_EQ(g.epoch(), epoch) << "a skipped duplicate must not invalidate "
                                 "visible-region caches";
  EXPECT_EQ(g.DuplicateObstacleSkips(), 1u);

  EXPECT_TRUE(g.AddObstacle(geom::Rect({300, 300}, {400, 400}), 43));
  EXPECT_EQ(g.ObstacleCount(), 2u);
}

}  // namespace
}  // namespace vis
}  // namespace conn
