// Asynchronous miss pipeline: PageRequest/MissQueue semantics at the
// storage layer, prefetch-counter accounting, and — the correctness bar of
// the whole refactor — bit-identical engine results with async_io on vs
// off, across point distributions, eviction policies, and worker counts.
// Runs under the tsan preset (label "exec"): the pipeline hands pins
// between fetching threads and I/O workers, which is exactly the traffic
// the capability annotations on MissQueue/PageRequestState describe.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "datagen/datasets.h"
#include "datagen/workload.h"
#include "exec/batch.h"
#include "rtree/str_bulk_load.h"
#include "storage/page_request.h"
#include "storage/pager.h"
#include "storage/pool_tuning.h"
#include "storage_test_util.h"

namespace conn {
namespace storage {
namespace {

constexpr size_t kTestPages = 96;

/// Pager over kTestPages stamped pages with the async pipeline enabled.
void ConfigureAsync(Pager* pager, size_t capacity, size_t queue_depth,
                    size_t io_threads) {
  for (size_t i = 0; i < kTestPages; ++i) {
    const PageId id = pager->Allocate();
    ASSERT_TRUE(pager->Write(id, StampedPage(id)).ok());
  }
  BufferOptions opts;
  opts.capacity_pages = capacity;
  opts.async_io = true;
  opts.miss_queue_depth = queue_depth;
  opts.io_threads = io_threads;
  pager->ConfigureBuffer(opts);
  pager->ResetCounters();
}

/// Spins until \p cond holds or ~2 s elapse; returns the final value.
template <typename Cond>
bool WaitUntil(Cond cond) {
  for (int i = 0; i < 2000; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

TEST(PageRequestTest, EmptyHandleIsReadyAndInvalid) {
  PageRequest req;
  EXPECT_FALSE(req.valid());
  EXPECT_TRUE(req.Ready());
}

TEST(PageRequestTest, BufferHitArrivesPrecompleted) {
  Pager pager;
  ConfigureAsync(&pager, /*capacity=*/16, kMissQueueDepth, /*io_threads=*/1);
  ASSERT_TRUE(pager.Fetch(3).ok());  // fault it in
  PageRequest req = pager.FetchAsync(3);
  EXPECT_TRUE(req.valid());
  EXPECT_TRUE(req.Ready());  // resident: no queue round-trip
  StatusOr<PinnedPage> got = req.Wait();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(PageMatchesStamp(got.value().page(), 3));
  EXPECT_FALSE(req.valid());  // Wait consumes the handle
  EXPECT_EQ(pager.hits(), 1u);
  EXPECT_EQ(pager.faults(), 1u);
}

TEST(PageRequestTest, MissIsServicedOffThread) {
  Pager pager;
  ConfigureAsync(&pager, /*capacity=*/16, kMissQueueDepth, /*io_threads=*/2);
  PageRequest req = pager.FetchAsync(7);
  StatusOr<PinnedPage> got = req.Wait();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(PageMatchesStamp(got.value().page(), 7));
  EXPECT_EQ(pager.faults(), 1u);  // charged at issue time
  EXPECT_EQ(pager.hits(), 0u);
}

TEST(PageRequestTest, UnallocatedPageFailsLikeSyncFetch) {
  Pager pager;
  ConfigureAsync(&pager, /*capacity=*/16, kMissQueueDepth, /*io_threads=*/1);
  const PageId bad = kTestPages + 100;
  const StatusOr<PinnedPage> async_got = pager.FetchAsync(bad).Wait();
  ASSERT_FALSE(async_got.ok());

  Pager sync_pager;
  for (size_t i = 0; i < kTestPages; ++i) {
    const PageId id = sync_pager.Allocate();
    ASSERT_TRUE(sync_pager.Write(id, StampedPage(id)).ok());
  }
  BufferOptions sync_opts;
  sync_opts.capacity_pages = 16;
  sync_pager.ConfigureBuffer(sync_opts);
  const StatusOr<PinnedPage> sync_got = sync_pager.Fetch(bad);
  ASSERT_FALSE(sync_got.ok());
  EXPECT_EQ(async_got.status().message(), sync_got.status().message());
}

TEST(PageRequestTest, DroppedHandleStillCompletesAndAccounts) {
  Pager pager;
  ConfigureAsync(&pager, /*capacity=*/16, kMissQueueDepth, /*io_threads=*/1);
  {
    PageRequest req = pager.FetchAsync(11);
    (void)req;  // dropped without Wait(): dtor drains the completion
  }
  // The drop waited the completion out, so the page is resident now.
  StatusOr<PinnedPage> again = pager.Fetch(11);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(PageMatchesStamp(again.value().page(), 11));
  EXPECT_EQ(pager.faults(), 1u);
  EXPECT_EQ(pager.hits(), 1u);
}

TEST(PageRequestTest, MoveTransfersThePendingCompletion) {
  Pager pager;
  ConfigureAsync(&pager, /*capacity=*/16, kMissQueueDepth, /*io_threads=*/1);
  PageRequest a = pager.FetchAsync(5);
  PageRequest b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): post-move spec
  StatusOr<PinnedPage> got = b.Wait();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(PageMatchesStamp(got.value().page(), 5));
}

TEST(AsyncPipelineTest, TinyQueueFallsBackInlineAndStaysExact) {
  Pager pager;
  // Depth 1 with a single worker: most demand enqueues race a full queue
  // and take the inline fallback — results and accounting must not care.
  ConfigureAsync(&pager, /*capacity=*/8, /*queue_depth=*/1, /*io_threads=*/1);
  std::vector<PageRequest> inflight;
  for (PageId id = 0; id < 32; ++id) inflight.push_back(pager.FetchAsync(id));
  for (PageId id = 0; id < 32; ++id) {
    StatusOr<PinnedPage> got = inflight[id].Wait();
    ASSERT_TRUE(got.ok()) << "page " << id;
    EXPECT_TRUE(PageMatchesStamp(got.value().page(), id)) << "page " << id;
  }
  EXPECT_EQ(pager.faults() + pager.hits(), 32u);
}

TEST(AsyncPipelineTest, EveryDemandFetchChargesExactlyOnce) {
  Pager pager;
  ConfigureAsync(&pager, /*capacity=*/16, kMissQueueDepth, /*io_threads=*/2);
  constexpr size_t kOps = 300;
  Rng rng(0xA51);
  for (size_t op = 0; op < kOps; ++op) {
    const PageId id = static_cast<PageId>(rng.UniformU64(kTestPages));
    ASSERT_TRUE(pager.Fetch(id).ok());
  }
  EXPECT_EQ(pager.faults() + pager.hits(), kOps);
}

TEST(AsyncPipelineTest, PrefetchHintsLandAndCountHits) {
  Pager pager;
  ConfigureAsync(&pager, /*capacity=*/64, kMissQueueDepth, /*io_threads=*/2);
  const std::vector<PageId> hinted{20, 21, 22, 23, 24, 25, 26, 27};
  pager.Prefetch(std::span<const PageId>(hinted));
  EXPECT_EQ(pager.prefetch_issued(), hinted.size());
  // Staging is asynchronous: wait until every hinted page is resident
  // before demanding any of them, so the first demand touch
  // deterministically lands on a staged frame.
  ASSERT_TRUE(WaitUntil([&] {
    for (const PageId id : hinted) {
      if (!pager.buffer_pool().Resident(id)) return false;
    }
    return true;
  }));
  for (const PageId id : hinted) {
    StatusOr<PinnedPage> got = pager.Fetch(id);
    ASSERT_TRUE(got.ok()) << "page " << id;
    EXPECT_TRUE(PageMatchesStamp(got.value().page(), id)) << "page " << id;
  }
  EXPECT_EQ(pager.prefetch_hits(), hinted.size());
  EXPECT_EQ(pager.hits(), hinted.size());
  EXPECT_EQ(pager.faults(), 0u);
  EXPECT_LE(pager.prefetch_hits() + pager.prefetch_wasted(),
            pager.prefetch_issued());
}

TEST(AsyncPipelineTest, EvictedUntouchedStagesCountAsWasted) {
  Pager pager;
  // Capacity far below the scan: staged pages that are never demanded get
  // evicted by the churn and must surface as prefetch_wasted.
  ConfigureAsync(&pager, /*capacity=*/8, kMissQueueDepth, /*io_threads=*/1);
  const std::vector<PageId> hinted{80, 81, 82, 83};
  pager.Prefetch(std::span<const PageId>(hinted));
  ASSERT_TRUE(WaitUntil([&] {
    for (const PageId id : hinted) {
      if (!pager.buffer_pool().Resident(id)) return false;
    }
    return true;
  }));
  for (PageId id = 0; id < 64; ++id) {
    ASSERT_TRUE(pager.Fetch(id).ok());
  }
  EXPECT_EQ(pager.prefetch_wasted(), hinted.size());
  EXPECT_EQ(pager.prefetch_hits(), 0u);
}

TEST(AsyncPipelineTest, HintDepthShrinksUnderWastedStaging) {
  Pager pager;
  ConfigureAsync(&pager, /*capacity=*/8, kMissQueueDepth, /*io_threads=*/1);
  ASSERT_EQ(pager.effective_hint_depth(), kHintDepthCap);

  // Rounds of staging that is never demanded: hint four pages from the
  // upper region, wait until they land, then churn them out with demand
  // reads of the lower region.  Every window's wasted ratio is ~1, so the
  // autotuner must walk the depth down to the floor.
  PageId hint_cursor = 64;
  while (pager.prefetch_issued() < 3 * kHintTuneWindow) {
    std::vector<PageId> hinted;
    for (int i = 0; i < 4; ++i) {
      hinted.push_back(64 + (hint_cursor++ - 64) % (kTestPages - 64));
    }
    pager.Prefetch(std::span<const PageId>(hinted));
    ASSERT_TRUE(WaitUntil([&] {
      for (const PageId id : hinted) {
        if (!pager.buffer_pool().Resident(id)) return false;
      }
      return true;
    }));
    for (PageId id = 0; id < 64; ++id) {
      ASSERT_TRUE(pager.Fetch(id).ok());
    }
  }
  EXPECT_EQ(pager.effective_hint_depth(), kHintDepthFloor);

  // A measured phase starts over from the widest window.
  pager.ResetCounters();
  EXPECT_EQ(pager.effective_hint_depth(), kHintDepthCap);
}

TEST(AsyncPipelineTest, HintDepthHoldsAtCapWhenStagingPaysOff) {
  Pager pager;
  ConfigureAsync(&pager, /*capacity=*/16, kMissQueueDepth, /*io_threads=*/1);

  // Every staged page is demand-touched before eviction: zero waste, so
  // the depth must never leave the cap.
  PageId cursor = 0;
  while (pager.prefetch_issued() < 2 * kHintTuneWindow) {
    std::vector<PageId> hinted;
    for (int i = 0; i < 4; ++i) {
      hinted.push_back(cursor++ % kTestPages);
    }
    pager.Prefetch(std::span<const PageId>(hinted));
    ASSERT_TRUE(WaitUntil([&] {
      for (const PageId id : hinted) {
        if (!pager.buffer_pool().Resident(id)) return false;
      }
      return true;
    }));
    for (const PageId id : hinted) {
      ASSERT_TRUE(pager.Fetch(id).ok());
    }
  }
  EXPECT_EQ(pager.effective_hint_depth(), kHintDepthCap);
  EXPECT_EQ(pager.prefetch_wasted(), 0u);
}

TEST(AsyncPipelineTest, DepthStatsTrackQueueOccupancy) {
  Pager pager;
  ConfigureAsync(&pager, /*capacity=*/32, kMissQueueDepth, /*io_threads=*/1);
  std::vector<PageRequest> inflight;
  for (PageId id = 0; id < 24; ++id) inflight.push_back(pager.FetchAsync(id));
  for (PageRequest& req : inflight) ASSERT_TRUE(req.Wait().ok());
  const MissQueue::DepthStats depths = pager.MissQueueDepths();
  EXPECT_GT(depths.samples, 0u);
  EXPECT_LE(depths.p50, depths.p99);
  EXPECT_LE(depths.p99, depths.max);
  pager.ResetCounters();
  EXPECT_EQ(pager.MissQueueDepths().samples, 0u);
}

TEST(AsyncPipelineTest, SyncFallbackWhenAsyncOffOrUnbuffered) {
  // async_io with capacity 0 is ignored (documented): Fetch still works
  // and FetchAsync degrades to a pre-completed handle.
  Pager pager;
  for (size_t i = 0; i < kTestPages; ++i) {
    const PageId id = pager.Allocate();
    ASSERT_TRUE(pager.Write(id, StampedPage(id)).ok());
  }
  BufferOptions opts;
  opts.capacity_pages = 0;
  opts.async_io = true;
  pager.ConfigureBuffer(opts);
  pager.ResetCounters();
  PageRequest req = pager.FetchAsync(2);
  EXPECT_TRUE(req.Ready());
  StatusOr<PinnedPage> got = req.Wait();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(PageMatchesStamp(got.value().page(), 2));
  EXPECT_EQ(pager.faults(), 1u);  // unbuffered: every fetch faults
}

}  // namespace
}  // namespace storage

namespace exec {
namespace {

struct Scene {
  datagen::DatasetPair pair;
  rtree::RStarTree tp;
  rtree::RStarTree to;
  std::vector<geom::Segment> queries;
};

Scene MakeScene(uint64_t seed, datagen::PointDistribution dist) {
  Scene s;
  s.pair = datagen::MakeDatasetPair(dist, 140, 70, seed);
  s.tp = rtree::StrBulkLoad(datagen::ToPointObjects(s.pair.points)).value();
  s.to =
      rtree::StrBulkLoad(datagen::ToObstacleObjects(s.pair.obstacles)).value();
  datagen::WorkloadOptions wopts;
  wopts.query_length = 450.0;
  s.queries = datagen::MakeWorkload(10, datagen::Workspace(), wopts, {},
                                    seed ^ 0xA57);
  return s;
}

void SetBuffer(const rtree::RStarTree& tree, storage::EvictionPolicy policy,
               bool async_io) {
  storage::BufferOptions opts = tree.pager().buffer_pool().options();
  opts.capacity_pages = std::max<size_t>(4, tree.PageCount() / 4);
  opts.policy = policy;
  opts.async_io = async_io;
  tree.pager().ConfigureBuffer(opts);
  tree.pager().ResetCounters();
}

void ExpectBitIdentical(const core::CoknnResult& got,
                        const core::CoknnResult& want, size_t qi) {
  SCOPED_TRACE("query " + std::to_string(qi));
  ASSERT_EQ(got.unreachable.intervals().size(),
            want.unreachable.intervals().size());
  for (size_t i = 0; i < got.unreachable.intervals().size(); ++i) {
    EXPECT_EQ(got.unreachable.intervals()[i].lo,
              want.unreachable.intervals()[i].lo);
    EXPECT_EQ(got.unreachable.intervals()[i].hi,
              want.unreachable.intervals()[i].hi);
  }
  ASSERT_EQ(got.tuples.size(), want.tuples.size());
  for (size_t i = 0; i < got.tuples.size(); ++i) {
    const core::CoknnTuple& g = got.tuples[i];
    const core::CoknnTuple& x = want.tuples[i];
    EXPECT_EQ(g.range.lo, x.range.lo) << "tuple " << i;
    EXPECT_EQ(g.range.hi, x.range.hi) << "tuple " << i;
    ASSERT_EQ(g.candidates.size(), x.candidates.size()) << "tuple " << i;
    for (size_t c = 0; c < g.candidates.size(); ++c) {
      EXPECT_EQ(g.candidates[c].pid, x.candidates[c].pid)
          << "tuple " << i << " cand " << c;
      EXPECT_EQ(g.candidates[c].cp, x.candidates[c].cp)
          << "tuple " << i << " cand " << c;
      EXPECT_EQ(g.candidates[c].offset, x.candidates[c].offset)
          << "tuple " << i << " cand " << c;
    }
  }
  // The hints are advisory, so the algorithmic work is identical too.
  EXPECT_EQ(got.stats.points_evaluated, want.stats.points_evaluated);
  EXPECT_EQ(got.stats.obstacles_evaluated, want.stats.obstacles_evaluated);
  EXPECT_EQ(got.stats.lemma2_terminations, want.stats.lemma2_terminations);
}

struct AsyncConfig {
  uint64_t seed;
  datagen::PointDistribution dist;
  storage::EvictionPolicy policy;
  size_t threads;
};

class AsyncEquivalence : public ::testing::TestWithParam<AsyncConfig> {};

TEST_P(AsyncEquivalence, AsyncAndSyncProduceBitIdenticalResults) {
  const AsyncConfig cfg = GetParam();
  const Scene s = MakeScene(cfg.seed, cfg.dist);

  std::vector<BatchQuery> batch;
  for (const geom::Segment& q : s.queries) {
    batch.push_back(BatchQuery::Coknn(q, 3));
  }
  BatchOptions opts;
  opts.num_threads = cfg.threads;
  opts.target_shard_size = 3;
  opts.share_locality_factor = 0.0;
  const BatchRunner runner(s.tp, s.to, opts);

  SetBuffer(s.tp, cfg.policy, /*async_io=*/false);
  SetBuffer(s.to, cfg.policy, /*async_io=*/false);
  const BatchResult sync_run = runner.Run(batch);
  EXPECT_EQ(sync_run.stats.shards_parked, 0u);
  EXPECT_EQ(sync_run.stats.miss_queue_depth_p99, 0u);

  SetBuffer(s.tp, cfg.policy, /*async_io=*/true);
  SetBuffer(s.to, cfg.policy, /*async_io=*/true);
  const BatchResult async_run = runner.Run(batch);
  EXPECT_GT(async_run.stats.per_query_totals.prefetch_issued, 0u);

  ASSERT_EQ(async_run.outcomes.size(), sync_run.outcomes.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(async_run.outcomes[i].coknn.has_value());
    ASSERT_TRUE(sync_run.outcomes[i].coknn.has_value());
    ExpectBitIdentical(*async_run.outcomes[i].coknn,
                       *sync_run.outcomes[i].coknn, i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AsyncEquivalence,
    ::testing::Values(
        AsyncConfig{31, datagen::PointDistribution::kUniform,
                    storage::EvictionPolicy::kTwoQueue, 1},
        AsyncConfig{32, datagen::PointDistribution::kUniform,
                    storage::EvictionPolicy::kExactLru, 4},
        AsyncConfig{33, datagen::PointDistribution::kZipf,
                    storage::EvictionPolicy::kTwoQueue, 4},
        AsyncConfig{34, datagen::PointDistribution::kZipf,
                    storage::EvictionPolicy::kExactLru, 1}),
    [](const ::testing::TestParamInfo<AsyncConfig>& info) {
      const AsyncConfig& c = info.param;
      return (c.dist == datagen::PointDistribution::kUniform ? "Uniform"
                                                             : "Zipf") +
             std::string(c.policy == storage::EvictionPolicy::kTwoQueue
                             ? "TwoQueue"
                             : "ExactLru") +
             "T" + std::to_string(c.threads);
    });

}  // namespace
}  // namespace exec
}  // namespace conn
