// vis::SettlementLog unit semantics and the repair-carry soundness
// property.
//
// The property half is the ISSUE's "carried tuple's search range is
// provably disjoint from the advance delta", stated over the objects the
// implementation actually reasons with.  A repair carries a point exactly
// when its retrieval wave's bound b is covered by a capsule (s, r); the
// "advance delta" is the set of indexed obstacles NOT yet in the carried
// graph.  Capsule soundness — every indexed obstacle within r of s is in
// the graph — implies every delta obstacle sits strictly beyond r of s,
// and the Covers triangle inequality then puts it beyond b of the carried
// query: the wave's Theorem-2 search range cannot touch the delta.  The
// tests below brute-force both halves against the full obstacle list:
// capsule soundness after every repair tick, and Covers-implies-complete
// for random probe segments.

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/coknn.h"
#include "core/workspace.h"
#include "datagen/datasets.h"
#include "geom/distance.h"
#include "rtree/str_bulk_load.h"
#include "vis/settlement_log.h"

namespace conn {
namespace vis {
namespace {

geom::Segment Seg(double ax, double ay, double bx, double by) {
  return geom::Segment{{ax, ay}, {bx, by}};
}

TEST(SettlementLogTest, PublishAndCoverBasics) {
  SettlementLog log;
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.Covers(Seg(0, 0, 1, 0), 0.0));

  log.Publish(Seg(0, 0, 10, 0), 100.0, /*owner=*/7);
  ASSERT_EQ(log.size(), 1u);

  // The same segment is trivially within itself: covered iff the bound
  // leaves the epsilon margin.
  int64_t owner = -1;
  EXPECT_TRUE(log.Covers(Seg(0, 0, 10, 0), 50.0, &owner));
  EXPECT_EQ(owner, 7);
  EXPECT_FALSE(log.Covers(Seg(0, 0, 10, 0), 100.0));

  // A query displaced by d eats d out of the budget: endpoints of
  // y=60 sit 60 from the source, so bounds up to ~40 are covered.
  EXPECT_TRUE(log.Covers(Seg(0, 60, 10, 60), 39.0));
  EXPECT_FALSE(log.Covers(Seg(0, 60, 10, 60), 41.0));

  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.Covers(Seg(0, 0, 10, 0), 1.0));
}

TEST(SettlementLogTest, ZeroRadiusFactsAreDropped) {
  SettlementLog log;
  log.Publish(Seg(0, 0, 1, 0), 0.0, 1);
  log.Publish(Seg(0, 0, 1, 0), -5.0, 1);
  EXPECT_EQ(log.size(), 0u);
}

TEST(SettlementLogTest, RingEvictsOldestFirst) {
  SettlementLog log(/*capacity=*/2);
  log.Publish(Seg(0, 0, 1, 0), 10.0, 1);
  log.Publish(Seg(100, 0, 101, 0), 10.0, 2);
  EXPECT_EQ(log.size(), 2u);

  // Third publish evicts capsule 1: its coverage is gone, capsule 2's and
  // 3's remain.
  log.Publish(Seg(200, 0, 201, 0), 10.0, 3);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_FALSE(log.Covers(Seg(0, 0, 1, 0), 5.0));
  EXPECT_TRUE(log.Covers(Seg(100, 0, 101, 0), 5.0));
  EXPECT_TRUE(log.Covers(Seg(200, 0, 201, 0), 5.0));
}

TEST(SettlementLogTest, MidpointDriftDoesNotFoolTheEndpointBound) {
  // dist-to-segment is convex along q, so the endpoint max IS the max;
  // a query crossing the source (max drift at endpoints, zero at the
  // crossing) must be budgeted by its endpoints, not its midpoint.
  SettlementLog log;
  log.Publish(Seg(0, 0, 10, 0), 50.0, 1);
  // Perpendicular crosser through the source: endpoints 30 away.
  EXPECT_TRUE(log.Covers(Seg(5, -30, 5, 30), 19.0));
  EXPECT_FALSE(log.Covers(Seg(5, -30, 5, 30), 21.0));
}

// --- repair-carry soundness property -------------------------------------

struct RepairScene {
  datagen::DatasetPair pair;
  rtree::RStarTree tp;
  rtree::RStarTree to;
};

RepairScene MakeRepairScene(uint64_t seed) {
  RepairScene s;
  s.pair = datagen::MakeDatasetPair(datagen::PointDistribution::kUniform, 160,
                                    80, seed);
  s.tp = rtree::StrBulkLoad(datagen::ToPointObjects(s.pair.points)).value();
  s.to =
      rtree::StrBulkLoad(datagen::ToObstacleObjects(s.pair.obstacles)).value();
  return s;
}

/// Ids present in the carried graph's local obstacle set.
std::unordered_set<uint64_t> GraphObstacleIds(core::QueryWorkspace* ws) {
  std::unordered_set<uint64_t> ids;
  const ObstacleSet& set = ws->graph()->obstacles();
  for (uint32_t i = 0; i < set.size(); ++i) ids.insert(set.id(i));
  return ids;
}

TEST(SettlementLogProperty, CapsulesAreSoundAfterEveryRepairTick) {
  const RepairScene scene = MakeRepairScene(2026);

  core::ConnOptions opts;
  opts.use_tick_warm_start = true;
  opts.use_differential_repair = true;

  // Two clients leapfrogging along abutting arc slices of one street,
  // sharing a workspace: every tick publishes a capsule, later ticks
  // repair off earlier ones (their own and each other's).
  const geom::Rect cover({3000.0, 3000.0}, {7000.0, 7000.0});
  core::QueryWorkspace ws(&scene.tp, &scene.to, cover,
                          /*differential_repair=*/true);

  uint64_t carried_total = 0;
  for (int tick = 0; tick < 10; ++tick) {
    const double t = 200.0 * tick;
    const geom::Segment steps[2] = {
        Seg(3500.0 + t, 4000.0, 3700.0 + t, 4000.0),
        Seg(3600.0 + t, 4120.0, 3800.0 + t, 4120.0)};
    for (int client = 0; client < 2; ++client) {
      const core::TickWarmStart warm{/*prior=*/nullptr,
                                     /*client_tag=*/client + 1};
      const core::CoknnResult got = core::CoknnRepair(
          scene.tp, scene.to, steps[client], /*k=*/3, warm, opts, &ws);
      carried_total += got.stats.tuples_carried;

      // Bit-identity against a fresh evaluation at every step.
      const core::CoknnResult want =
          core::CoknnQuery(scene.tp, scene.to, steps[client], 3);
      ASSERT_EQ(got.tuples.size(), want.tuples.size());
      for (size_t i = 0; i < got.tuples.size(); ++i) {
        ASSERT_EQ(got.tuples[i].candidates.size(),
                  want.tuples[i].candidates.size());
        for (size_t c = 0; c < got.tuples[i].candidates.size(); ++c) {
          EXPECT_EQ(got.tuples[i].candidates[c].pid,
                    want.tuples[i].candidates[c].pid);
        }
      }

      // Capsule soundness against the full indexed obstacle list: every
      // obstacle within a capsule's radius of its source is in the graph
      // — equivalently, every absent obstacle (the advance delta) lies
      // strictly beyond the radius, so any covered (carried) search range
      // is disjoint from the delta.
      const std::unordered_set<uint64_t> present = GraphObstacleIds(&ws);
      for (const SettlementLog::Capsule& cap :
           ws.settlement_log()->capsules()) {
        for (size_t o = 0; o < scene.pair.obstacles.size(); ++o) {
          if (geom::MinDistRectSegment(scene.pair.obstacles[o], cap.source) <=
              cap.radius) {
            EXPECT_TRUE(present.count(o))
                << "tick " << tick << " client " << client << ": obstacle "
                << o << " inside capsule radius " << cap.radius
                << " but absent from the carried graph";
          }
        }
      }
    }
  }
  EXPECT_GT(ws.settlement_log()->size(), 0u);
  EXPECT_GT(carried_total, 0u) << "no wave was ever covered; test is vacuous";
}

TEST(SettlementLogProperty, CoversImpliesNoAbsentObstacleWithinBound) {
  const RepairScene scene = MakeRepairScene(777);

  core::ConnOptions opts;
  opts.use_tick_warm_start = true;
  opts.use_differential_repair = true;
  const geom::Rect cover({2000.0, 2000.0}, {8000.0, 8000.0});
  core::QueryWorkspace ws(&scene.tp, &scene.to, cover, true);

  // Seed the log with a few real retrievals.
  for (int tick = 0; tick < 4; ++tick) {
    const double t = 150.0 * tick;
    const core::TickWarmStart warm{nullptr, 1};
    core::CoknnRepair(scene.tp, scene.to,
                      Seg(4000.0 + t, 5000.0, 4220.0 + t, 5030.0), 3, warm,
                      opts, &ws);
  }
  ASSERT_GT(ws.settlement_log()->size(), 0u);

  // Probe segments at growing displacements from the seeded routes; for
  // every (q, b) the log claims covered, brute force must find no absent
  // obstacle within b of q.
  const std::unordered_set<uint64_t> present = GraphObstacleIds(&ws);
  size_t covered_probes = 0;
  for (int i = 0; i < 40; ++i) {
    const double dx = 37.0 * i;
    const geom::Segment q =
        Seg(3950.0 + dx, 4950.0 + 3.0 * i, 4150.0 + dx, 4990.0);
    for (double bound : {25.0, 100.0, 400.0, 1600.0}) {
      if (!ws.settlement_log()->Covers(q, bound)) continue;
      ++covered_probes;
      for (size_t o = 0; o < scene.pair.obstacles.size(); ++o) {
        if (present.count(o)) continue;
        EXPECT_GT(geom::MinDistRectSegment(scene.pair.obstacles[o], q), bound)
            << "probe " << i << " bound " << bound << ": absent obstacle "
            << o << " inside a covered search range";
      }
    }
  }
  EXPECT_GT(covered_probes, 0u) << "no probe was covered; test is vacuous";
}

}  // namespace
}  // namespace vis
}  // namespace conn
