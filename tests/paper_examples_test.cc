// Paper-fidelity suite: scenes built after the paper's own figures and
// worked examples, asserting the qualitative claims made in the text.
// Exact coordinates are not published, so the scenes reproduce each
// figure's *configuration* and the tests check the *stated outcome*.

#include <cmath>

#include <gtest/gtest.h>

#include "core/cnn.h"
#include "core/conn.h"
#include "core/cpl.h"
#include "core/naive.h"
#include "core/odist.h"
#include "core/onn.h"
#include "test_util.h"
#include "vis/visible_region.h"

namespace conn {
namespace core {
namespace {

using geom::Rect;

// ---------------------------------------------------------------------------
// Figure 1: "the split points s1, s2, s3 defined by a CNN search are
// different from the split points s1', s2', s3' defined by a CONN search.
// In addition, the answer objects vary as well.  For example, object d is
// the NN for S in a Euclidean space, whereas it is not the ONN for S."
// ---------------------------------------------------------------------------
TEST(PaperFigure1, ConnDiffersFromCnnInBothSplitsAndAnswers) {
  testutil::Scene scene;
  // Stations roughly as drawn: a, b, g, c above the highway; d, f below.
  scene.points = {
      {120, 110},   // 0: a  (dist 117 from S: second in Euclidean terms)
      {380, 170},   // 1: b
      {860, 150},   // 2: c
      {140, -60},   // 3: d  (dist 85 from S: the Euclidean NN of S)
      {600, -200},  // 4: f
      {620, 140},   // 5: g
  };
  // o3 sits between the highway and d: the detour around its left end
  // costs ~127, more than the unobstructed 117 to a.
  scene.obstacles = {
      Rect({60, -40}, {400, -10}),   // o3: wall in front of d
      Rect({330, 40}, {480, 90}),    // o1
      Rect({540, 45}, {690, 95}),    // o2
      Rect({740, 170}, {850, 240}),  // o4
  };
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const geom::Segment q({80, 0}, {900, 0});

  const ConnResult conn = ConnQuery(tp, to, q);
  const ConnResult cnn = CnnQuery(tp, q);

  // d is the Euclidean NN of S...
  EXPECT_EQ(cnn.OnnAt(0.0), 3);
  // ...but NOT the obstructed NN of S (o3 blocks it).
  EXPECT_NE(conn.OnnAt(0.0), 3);

  // The split-point sets differ.
  const auto s_conn = conn.SplitParams();
  const auto s_cnn = cnn.SplitParams();
  bool any_difference = s_conn.size() != s_cnn.size();
  for (size_t i = 0; !any_difference && i < s_conn.size(); ++i) {
    if (std::abs(s_conn[i] - s_cnn[i]) > 1.0) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

// ---------------------------------------------------------------------------
// Section 1 / Figure 1(b): "their Euclidean distance is the length of
// segment [a, g], whereas their obstructed distance is the summation of
// the lengths of [a, m] and [m, g]" — one bend around an obstacle corner.
// ---------------------------------------------------------------------------
TEST(PaperFigure1, ObstructedDistanceBendsAtOneCorner) {
  const geom::Vec2 a{0, 0}, g{100, 0};
  const geom::Rect o4({40, -30}, {60, 10});  // blocks the straight [a, g]
  NaiveOracle oracle({}, {o4});
  const double od = oracle.Odist(a, g);
  EXPECT_GT(od, geom::Dist(a, g));
  // The obstacle straddles the supporting line of [a, g], so the shortest
  // path wraps a pair of same-side corners (m of the figure):
  const double via_top = geom::Dist(a, {40, 10}) +
                         geom::Dist({40, 10}, {60, 10}) +
                         geom::Dist({60, 10}, g);
  const double via_bottom = geom::Dist(a, {40, -30}) +
                            geom::Dist({40, -30}, {60, -30}) +
                            geom::Dist({60, -30}, g);
  EXPECT_NEAR(od, std::min(via_top, via_bottom), 1e-9);
}

// ---------------------------------------------------------------------------
// Figure 3: the control point list of p over q decomposes q into intervals
// with distinct control points; the shortest path to the shadowed interval
// passes through an obstacle corner ("point a is the control point for
// point p over segment [s1, s2] ... ||p, p'|| equals ||p, a|| + dist(a, p')").
// ---------------------------------------------------------------------------
TEST(PaperFigure3, ControlPointDecomposition) {
  testutil::Scene scene;
  scene.points = {{20, 80}};  // p, up and to the left
  scene.obstacles = {
      Rect({30, 30}, {60, 60}),   // o1: shadows the middle of q from p
      Rect({70, 20}, {90, 50}),   // o2: shadows the right end
  };
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const geom::Segment q({0, 0}, {100, 0});
  const ConnResult r = ConnQuery(tp, to, q);

  // Several control-point pieces, all owned by the single point p.
  ASSERT_GE(r.tuples.size(), 2u);
  const NaiveOracle oracle({}, scene.obstacles);
  for (const ConnTuple& t : r.tuples) {
    ASSERT_EQ(t.point_id, 0);
    // Definition 8: for s in R, ||p, s|| = ||p, cp|| + dist(cp, s).
    const double mid = t.range.Mid();
    const geom::Vec2 s = q.At(mid);
    EXPECT_NEAR(t.offset + geom::Dist(t.control_point, s),
                oracle.Odist(scene.points[0], s), 1e-6);
    // Definition 8(ii): cp is visible to every point of R.
    vis::ObstacleSet set(geom::Rect({-100, -300}, {300, 300}));
    for (size_t i = 0; i < scene.obstacles.size(); ++i) {
      set.Add(scene.obstacles[i], i);
    }
    for (double f : {0.05, 0.5, 0.95}) {
      const geom::Vec2 pt = q.At(t.range.lo + f * t.range.Length());
      EXPECT_TRUE(set.Visible(t.control_point, pt))
          << "cp not visible at fraction " << f;
    }
  }
}

// ---------------------------------------------------------------------------
// Theorem 1: "there are at most two points along q with same obstructed
// distance to p and p'" — across random instances the engine never
// produces more than two crossings, already asserted by curve tests; here
// we confirm a Case-2 construction yields exactly the three-piece result
// the paper describes (p' wins [S,s1] and [s2,E], p keeps [s1,s2]).
// ---------------------------------------------------------------------------
TEST(PaperTheorem1, CaseTwoYieldsExactlyTwoSplitPoints) {
  testutil::Scene scene;
  // Two points, one curve pair — Section 3's Case 2 configuration:
  // p1 sits just below a narrow wall under q (sees the flanks directly but
  // pays a corner detour in the wall's shadow), p0 hangs unobstructed
  // above the middle.  Their curves cross exactly twice: p1 owns both
  // flanks, p0 the bounded middle window.
  scene.points = {{50, 25}, {50, -20}};
  scene.obstacles = {Rect({35, -8}, {65, -3})};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const geom::Segment q({0, 0}, {100, 0});
  const ConnResult r = ConnQuery(tp, to, q);

  const auto merged = r.MergedByPoint();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].first, 1);  // direct flank
  EXPECT_EQ(merged[1].first, 0);  // shadowed middle window
  EXPECT_EQ(merged[2].first, 1);  // direct flank
  EXPECT_EQ(r.SplitParams().size(), 2u);  // Theorem 1: at most two
}

// ---------------------------------------------------------------------------
// Figure 5 / Theorem 2: obstacles outside the range bounded by SP(p, S),
// SP(p, E) and q never affect the result (IOR must not fetch them).
// ---------------------------------------------------------------------------
TEST(PaperTheorem2, ObstaclesOutsideSearchRangeAreNotRetrieved) {
  const geom::Rect near_wall({45, 20}, {55, 60});
  const geom::Rect far_away({900, 900}, {960, 960});
  rtree::RStarTree to;
  ASSERT_TRUE(to.Insert(rtree::DataObject::Obstacle(near_wall, 0)).ok());
  ASSERT_TRUE(to.Insert(rtree::DataObject::Obstacle(far_away, 1)).ok());
  rtree::RStarTree tp;
  ASSERT_TRUE(tp.Insert(rtree::DataObject::Point({50, 80}, 0)).ok());

  const ConnResult r = ConnQuery(tp, to, geom::Segment({0, 0}, {100, 0}));
  EXPECT_EQ(r.stats.obstacles_evaluated, 1u);  // only the near wall
}

// ---------------------------------------------------------------------------
// Example 2 / Figure 8 machinery: evaluating a point b against the current
// result list replaces the incumbent a on exactly the sub-intervals where
// b's curve is lower, and the final list is the pointwise minimum.
// ---------------------------------------------------------------------------
TEST(PaperExample2, ResultListIsPointwiseMinimum) {
  testutil::Scene scene;
  scene.points = {{20, 40}, {80, 35}, {50, 90}};
  scene.obstacles = {Rect({30, 15}, {45, 30}), Rect({60, 10}, {75, 25}),
                     Rect({40, 50}, {60, 70})};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const geom::Segment q({0, 0}, {100, 0});
  const ConnResult r = ConnQuery(tp, to, q);
  const NaiveOracle oracle(scene.points, scene.obstacles);

  for (int i = 0; i <= 100; ++i) {
    const double t = i * q.Length() / 100.0;
    const auto best = oracle.OnnAt(q.At(t), 1);
    ASSERT_FALSE(best.empty());
    EXPECT_NEAR(r.OdistAt(t), best[0].second, 1e-6 * (1 + best[0].second))
        << "t=" << t;
  }
}

}  // namespace
}  // namespace core
}  // namespace conn
