// Tick-loop-vs-independent equivalence: the subscription service's
// incremental tick loop — carried per-shard workspaces, the cross-shard
// obstacle store, and the stationary-segment memo — must reproduce an
// independent per-tick COkNN evaluation bit-identically: tuples, candidate
// sets (pid, control point, offset), and unreachable intervals.  Per-query
// work counters legitimately differ (that the warm path does *less* work is
// its point), so unlike batch_equivalence_test no stats are compared.
//
// Fleets are randomized at test scale: clustered depot routes over street
// rects and uniform/Zipf points, k in {1, 3, 5}, both tree configurations,
// warm starts on and off, 1 and 4 worker threads, with mid-run membership
// churn (subscribe + unsubscribe) and stationary clients (completed routes)
// so resharding and the memo both participate.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "datagen/fleet.h"
#include "exec/subscription.h"
#include "rtree/str_bulk_load.h"

namespace conn {
namespace exec {
namespace {

struct Scene {
  datagen::DatasetPair pair;
  rtree::RStarTree tp;
  rtree::RStarTree to;
  rtree::RStarTree unified;
  std::vector<RouteSpec> routes;
};

Scene MakeScene(uint64_t seed, datagen::PointDistribution dist,
                size_t num_points, size_t num_obstacles, size_t num_clients) {
  Scene s;
  s.pair = datagen::MakeDatasetPair(dist, num_points, num_obstacles, seed);
  s.tp = rtree::StrBulkLoad(datagen::ToPointObjects(s.pair.points)).value();
  s.to =
      rtree::StrBulkLoad(datagen::ToObstacleObjects(s.pair.obstacles)).value();
  std::vector<rtree::DataObject> all = datagen::ToPointObjects(s.pair.points);
  for (const rtree::DataObject& o :
       datagen::ToObstacleObjects(s.pair.obstacles)) {
    all.push_back(o);
  }
  s.unified = rtree::StrBulkLoad(std::move(all)).value();

  datagen::FleetOptions fopts;
  fopts.pattern = datagen::FleetPattern::kClustered;
  fopts.depots = 2;
  fopts.depot_radius = 300.0;
  fopts.waypoints_per_route = 3;
  fopts.leg_length = 300.0;
  fopts.speed = 64.0;
  for (datagen::FleetRoute& r : datagen::MakeFleetRoutes(
           num_clients, datagen::Workspace(), fopts, seed ^ 0xF1EE7)) {
    // Every fourth client is stationary (a completed route): its identical
    // segment every tick exercises the memo path.
    if (s.routes.size() % 4 == 3) r.waypoints.resize(1);
    s.routes.push_back(RouteSpec{std::move(r.waypoints), r.speed});
  }
  return s;
}

void ExpectIntervalSetsEqual(const geom::IntervalSet& got,
                             const geom::IntervalSet& want) {
  ASSERT_EQ(got.intervals().size(), want.intervals().size());
  for (size_t i = 0; i < got.intervals().size(); ++i) {
    EXPECT_EQ(got.intervals()[i].lo, want.intervals()[i].lo);
    EXPECT_EQ(got.intervals()[i].hi, want.intervals()[i].hi);
  }
}

void ExpectCoknnEqual(const core::CoknnResult& got,
                      const core::CoknnResult& want) {
  ExpectIntervalSetsEqual(got.unreachable, want.unreachable);
  ASSERT_EQ(got.tuples.size(), want.tuples.size());
  for (size_t i = 0; i < got.tuples.size(); ++i) {
    const core::CoknnTuple& g = got.tuples[i];
    const core::CoknnTuple& x = want.tuples[i];
    EXPECT_EQ(g.range.lo, x.range.lo) << "tuple " << i;
    EXPECT_EQ(g.range.hi, x.range.hi) << "tuple " << i;
    ASSERT_EQ(g.candidates.size(), x.candidates.size()) << "tuple " << i;
    for (size_t c = 0; c < g.candidates.size(); ++c) {
      EXPECT_EQ(g.candidates[c].pid, x.candidates[c].pid)
          << "tuple " << i << " cand " << c;
      EXPECT_EQ(g.candidates[c].cp, x.candidates[c].cp)
          << "tuple " << i << " cand " << c;
      EXPECT_EQ(g.candidates[c].offset, x.candidates[c].offset)
          << "tuple " << i << " cand " << c;
    }
  }
}

TEST(SubscriptionApiTest, RejectsMalformedRoutesAndUnknownClients) {
  const Scene scene =
      MakeScene(31, datagen::PointDistribution::kUniform, 40, 20, 2);
  SubscriptionService service(scene.tp, scene.to, SubscriptionOptions{});

  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(service.Subscribe(RouteSpec{{}, 1.0}, 1).ok());
  EXPECT_FALSE(
      service.Subscribe(RouteSpec{{{0.0, 0.0}, {kInf, 0.0}}, 1.0}, 1).ok());
  EXPECT_FALSE(service.Subscribe(RouteSpec{{{0.0, 0.0}}, 0.0}, 1).ok());
  EXPECT_FALSE(service.Subscribe(RouteSpec{{{0.0, 0.0}}, 1.0}, 0).ok());
  EXPECT_EQ(service.Unsubscribe(12345).code(), StatusCode::kNotFound);

  // An empty service still ticks (and counts ticks).
  const TickResult empty = service.Tick();
  EXPECT_TRUE(empty.updates.empty());
  EXPECT_EQ(service.ticks(), 1u);

  const int64_t id = service.Subscribe(scene.routes[0], 1).value();
  EXPECT_EQ(service.live_clients(), 1u);
  EXPECT_EQ(service.quarantined_clients(), 0u);
  EXPECT_TRUE(service.Unsubscribe(id).ok());
  EXPECT_EQ(service.live_clients(), 0u);
}

struct Config {
  uint64_t seed;
  datagen::PointDistribution dist;
  size_t k;
  bool one_tree;
  bool warm;
  size_t threads;
};

class SubscriptionEquivalence : public ::testing::TestWithParam<Config> {};

TEST_P(SubscriptionEquivalence, TickLoopMatchesIndependentEvaluation) {
  const Config cfg = GetParam();
  const Scene scene =
      MakeScene(cfg.seed, cfg.dist, 140, 70, /*num_clients=*/8);

  SubscriptionOptions opts;
  opts.batch.num_threads = cfg.threads;
  opts.batch.target_shard_size = 3;
  opts.batch.share_locality_factor = 0.0;  // force sharing: exactness bar
  opts.batch.query.use_tick_warm_start = cfg.warm;
  opts.reshard_period = 3;  // small: resharding participates mid-run

  SubscriptionService service =
      cfg.one_tree ? SubscriptionService(scene.unified, opts)
                   : SubscriptionService(scene.tp, scene.to, opts);
  std::vector<int64_t> ids;
  for (const RouteSpec& r : scene.routes) {
    ids.push_back(service.Subscribe(r, cfg.k).value());
  }

  uint64_t warm_starts = 0;
  for (uint64_t tick = 0; tick < 6; ++tick) {
    // Mid-run membership churn: the sticky assignment must rebuild
    // without disturbing exactness.
    if (tick == 2) {
      ASSERT_TRUE(service.Unsubscribe(ids[1]).ok());
      ids.push_back(service.Subscribe(scene.routes[1], cfg.k).value());
    }

    const TickResult result = service.Tick();
    ASSERT_EQ(result.tick, tick);
    ASSERT_EQ(result.updates.size(), size_t{8});
    EXPECT_EQ(result.quarantined_now, size_t{0});
    warm_starts += result.stats.per_query_totals.tick_warm_starts;

    for (const ClientUpdate& u : result.updates) {
      SCOPED_TRACE("tick " + std::to_string(tick) + " client " +
                   std::to_string(u.client));
      ASSERT_TRUE(u.status.ok());
      ASSERT_TRUE(u.result.has_value());
      EXPECT_EQ(u.result->query, u.segment);
      const core::CoknnResult want =
          cfg.one_tree
              ? core::CoknnQuery1T(scene.unified, u.segment, cfg.k)
              : core::CoknnQuery(scene.tp, scene.to, u.segment, cfg.k);
      ExpectCoknnEqual(*u.result, want);
    }
  }
  if (cfg.warm) {
    EXPECT_GT(warm_starts, 0u) << "warm path never engaged";
  } else {
    EXPECT_EQ(warm_starts, 0u) << "warm path ran despite the gate";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SubscriptionEquivalence,
    ::testing::Values(
        Config{21, datagen::PointDistribution::kUniform, 1, false, true, 1},
        Config{22, datagen::PointDistribution::kUniform, 3, false, true, 4},
        Config{23, datagen::PointDistribution::kUniform, 3, true, true, 1},
        Config{24, datagen::PointDistribution::kZipf, 1, false, false, 1},
        Config{25, datagen::PointDistribution::kZipf, 5, false, true, 4},
        Config{26, datagen::PointDistribution::kZipf, 3, true, false, 4},
        Config{27, datagen::PointDistribution::kUniform, 5, true, true, 4},
        Config{28, datagen::PointDistribution::kZipf, 1, true, false, 1}),
    [](const ::testing::TestParamInfo<Config>& info) {
      const Config& c = info.param;
      return (c.dist == datagen::PointDistribution::kUniform ? "Uniform"
                                                             : "Zipf") +
             std::string("K") + std::to_string(c.k) +
             (c.one_tree ? "OneTree" : "TwoTrees") +
             (c.warm ? "Warm" : "Fresh") + "T" + std::to_string(c.threads) +
             "Seed" + std::to_string(c.seed);
    });

}  // namespace
}  // namespace exec
}  // namespace conn
