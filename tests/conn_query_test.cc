// Directed unit tests for ConnQuery: the paper's running examples
// (Figure 1(b) semantics), result accessors, statistics, and termination.

#include <cmath>

#include <gtest/gtest.h>

#include "core/conn.h"
#include "geom/predicates.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

TEST(ConnQueryTest, EmptyDataSetYieldsUnsetTuple) {
  testutil::Scene scene;
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r = ConnQuery(tp, to, geom::Segment({0, 0}, {100, 0}));
  ASSERT_EQ(r.tuples.size(), 1u);
  EXPECT_EQ(r.tuples[0].point_id, kNoPoint);
  EXPECT_TRUE(std::isinf(r.OdistAt(50.0)));
}

TEST(ConnQueryTest, ObstacleChangesTheAnswerVsEuclidean) {
  // A wall in front of the Euclidean NN flips the winner — the essence of
  // Figure 1(b) (point d is the Euclidean NN of S but not its ONN).
  testutil::Scene scene;
  scene.points = {{50, 30}, {50, -60}};  // p0 nearer without obstacles
  scene.obstacles = {geom::Rect({10, 10}, {90, 20})};  // wall above q
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r = ConnQuery(tp, to, geom::Segment({0, 0}, {100, 0}));

  // At the segment midpoint, p0's detour around the wall is longer than
  // p1's direct 60: the ONN must be p1.
  EXPECT_EQ(r.OnnAt(50.0), 1);
  EXPECT_NEAR(r.OdistAt(50.0), 60.0, 1e-9);
  // Near the segment ends the wall matters less; p0 wins there.
  EXPECT_EQ(r.OnnAt(1.0), 0);
  EXPECT_EQ(r.OnnAt(99.0), 0);
}

TEST(ConnQueryTest, ControlPointsAreObstacleCorners) {
  testutil::Scene scene;
  scene.points = {{50, 100}};
  scene.obstacles = {geom::Rect({30, 40}, {70, 60})};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r = ConnQuery(tp, to, geom::Segment({0, 0}, {100, 0}));

  // Shadowed center pieces must route through the obstacle's lower corners.
  bool saw_left = false, saw_right = false;
  for (const ConnTuple& t : r.tuples) {
    if (t.control_point == geom::Vec2{30, 40}) saw_left = true;
    if (t.control_point == geom::Vec2{70, 40}) saw_right = true;
  }
  EXPECT_TRUE(saw_left);
  EXPECT_TRUE(saw_right);
}

TEST(ConnQueryTest, StatsArePopulated) {
  const testutil::Scene scene = testutil::MakeScene(3, 60, 20);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r = ConnQuery(tp, to, scene.query);

  EXPECT_GT(r.stats.points_evaluated, 0u);
  EXPECT_GT(r.stats.data_page_reads, 0u);
  EXPECT_GT(r.stats.vis_graph_vertices, 2u);
  EXPECT_GT(r.stats.dijkstra_runs, 0u);
  EXPECT_GE(r.stats.cpu_seconds, 0.0);
  EXPECT_GT(r.stats.QueryCostSeconds(), r.stats.cpu_seconds);
}

TEST(ConnQueryTest, RlmaxTerminationDoesNotChangeTheAnswer) {
  testutil::Scene scene = testutil::MakeScene(9, 120, 15);
  // Keep the query fully reachable so the Lemma 2 bound becomes finite and
  // its savings are observable.
  std::erase_if(scene.obstacles, [&](const geom::Rect& r) {
    return geom::SegmentIntersectsRect(scene.query, r);
  });
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);

  ConnOptions no_term;
  no_term.use_rlmax_terminate = false;
  const ConnResult with_term = ConnQuery(tp, to, scene.query);
  const ConnResult without = ConnQuery(tp, to, scene.query, no_term);

  // Lemma 2 saves work...
  EXPECT_LT(with_term.stats.points_evaluated,
            without.stats.points_evaluated);
  EXPECT_EQ(without.stats.points_evaluated, scene.points.size());
  // ...but never changes the answer.
  for (int i = 0; i <= 150; ++i) {
    const double t = scene.query.Length() * (i + 0.5) / 151.0;
    const double a = with_term.OdistAt(t);
    const double b = without.OdistAt(t);
    if (std::isinf(a) || std::isinf(b)) {
      EXPECT_EQ(std::isinf(a), std::isinf(b)) << t;
    } else {
      EXPECT_NEAR(a, b, 1e-9) << t;
    }
  }
}

TEST(ConnQueryTest, DegenerateZeroLengthQueryIsOnn) {
  const testutil::Scene scene = testutil::MakeScene(4, 30, 10);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const geom::Vec2 qp{500, 500};
  const ConnResult r = ConnQuery(tp, to, geom::Segment(qp, qp));
  ASSERT_EQ(r.tuples.size(), 1u);
  EXPECT_NE(r.tuples[0].point_id, kNoPoint);
  EXPECT_GT(r.tuples[0].offset, 0.0);
}

TEST(ConnQueryTest, MergedByPointCoalescesControlPointPieces) {
  testutil::Scene scene;
  scene.points = {{50, 100}};
  scene.obstacles = {geom::Rect({30, 40}, {70, 60})};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r = ConnQuery(tp, to, geom::Segment({0, 0}, {100, 0}));

  // One data point: the <p, R> view must be a single tuple even though the
  // <p, cp, R> view has several control-point pieces.
  EXPECT_GT(r.tuples.size(), 1u);
  const auto merged = r.MergedByPoint();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].first, 0);
  EXPECT_NEAR(merged[0].second.Length(), 100.0, 1e-6);
  EXPECT_TRUE(r.SplitParams().empty());  // no ONN change anywhere
}

TEST(ConnQueryTest, SplitParamsMarkOnnChanges) {
  testutil::Scene scene;
  scene.points = {{20, 10}, {80, 10}};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r = ConnQuery(tp, to, geom::Segment({0, 0}, {100, 0}));
  const auto splits = r.SplitParams();
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_NEAR(splits[0], 50.0, 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace conn
