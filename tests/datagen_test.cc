// Tests for the dataset and workload generators of Section 5.1.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "datagen/distributions.h"
#include "datagen/workload.h"
#include "vis/obstacle_set.h"

namespace conn {
namespace datagen {
namespace {

TEST(DistributionsTest, UniformCoversDomain) {
  Rng rng(1);
  const geom::Rect domain({0, 0}, {100, 200});
  const auto pts = UniformPoints(10000, domain, &rng);
  double minx = 1e9, maxx = -1e9, miny = 1e9, maxy = -1e9;
  for (const geom::Vec2& p : pts) {
    ASSERT_TRUE(domain.Contains(p));
    minx = std::min(minx, p.x);
    maxx = std::max(maxx, p.x);
    miny = std::min(miny, p.y);
    maxy = std::max(maxy, p.y);
  }
  EXPECT_LT(minx, 5.0);
  EXPECT_GT(maxx, 95.0);
  EXPECT_LT(miny, 10.0);
  EXPECT_GT(maxy, 190.0);
}

TEST(DistributionsTest, ZipfIsSkewedTowardOrigin) {
  Rng rng(2);
  const geom::Rect domain({0, 0}, {100, 100});
  const auto pts = ZipfPoints(20000, domain, 0.8, &rng);
  size_t low_quarter = 0;
  for (const geom::Vec2& p : pts) {
    ASSERT_TRUE(domain.Contains(p));
    if (p.x < 25.0) ++low_quarter;
  }
  // With alpha=0.8, far more than half of the mass sits in the low quarter
  // (u^5 < 0.25 for u < 0.758).
  EXPECT_GT(low_quarter, pts.size() / 2);
}

TEST(DistributionsTest, ZipfFractionRangeAndDeterminism) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = ZipfFraction(&a, 0.8);
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
    EXPECT_DOUBLE_EQ(x, ZipfFraction(&b, 0.8));  // same seed, same stream
  }
}

TEST(DistributionsTest, ClusteredPointsAreClustered) {
  Rng rng(3);
  const geom::Rect domain({0, 0}, {10000, 10000});
  const auto pts = ClusteredPoints(5000, domain, 10, &rng);
  // Mean nearest-neighbor distance of a clustered set is far below the
  // uniform expectation (~0.5/sqrt(n/area) ~ 70 here).
  double total_nn = 0.0;
  const size_t probes = 200;
  for (size_t i = 0; i < probes; ++i) {
    double best = 1e18;
    for (size_t j = 0; j < pts.size(); ++j) {
      if (j == i) continue;
      best = std::min(best, geom::Dist2(pts[i], pts[j]));
    }
    total_nn += std::sqrt(best);
  }
  EXPECT_LT(total_nn / probes, 40.0);
}

TEST(DatasetsTest, StreetRectsAreValidThinAndInWorkspace) {
  const auto rects = StreetRects(5000, 4);
  ASSERT_EQ(rects.size(), 5000u);
  size_t thin = 0;
  for (const geom::Rect& r : rects) {
    ASSERT_TRUE(r.IsValid());
    ASSERT_TRUE(Workspace().Contains(r));
    EXPECT_GE(r.Width(), kMinObstacleExtent - 1e-9);
    EXPECT_GE(r.Height(), kMinObstacleExtent - 1e-9);
    if (std::min(r.Width(), r.Height()) * 3 <
        std::max(r.Width(), r.Height())) {
      ++thin;
    }
  }
  // Street MBRs are predominantly elongated.
  EXPECT_GT(thin, rects.size() / 2);
}

TEST(DatasetsTest, DisplaceClearsAllInteriors) {
  auto pair = MakeDatasetPair(PointDistribution::kUniform, 2000, 3000, 99);
  vis::ObstacleSet set(Workspace(), 128);
  for (size_t i = 0; i < pair.obstacles.size(); ++i) {
    set.Add(pair.obstacles[i], i);
  }
  for (const geom::Vec2& p : pair.points) {
    EXPECT_FALSE(set.PointInAnyInterior(p));
  }
}

TEST(DatasetsTest, GenerationIsDeterministic) {
  const auto a = StreetRects(500, 42);
  const auto b = StreetRects(500, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);

  const auto pa = GeneratePoints(PointDistribution::kClustered, 500, 42);
  const auto pb = GeneratePoints(PointDistribution::kClustered, 500, 42);
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(WorkloadTest, QueryLengthConversion) {
  EXPECT_DOUBLE_EQ(QueryLengthFromPercent(4.5), 450.0);
  EXPECT_DOUBLE_EQ(QueryLengthFromPercent(7.5), 750.0);
}

TEST(WorkloadTest, SegmentsHaveRequestedLengthAndStayInside) {
  WorkloadOptions opts;
  opts.query_length = 450.0;
  const auto segs = MakeWorkload(50, Workspace(), opts, {}, 7);
  ASSERT_EQ(segs.size(), 50u);
  for (const geom::Segment& s : segs) {
    EXPECT_NEAR(s.Length(), 450.0, 1e-6);
    EXPECT_TRUE(Workspace().Contains(s.a));
    EXPECT_TRUE(Workspace().Contains(s.b));
  }
}

TEST(WorkloadTest, AvoidanceReducesBlockedLength) {
  const auto obstacles = StreetRects(4000, 11);
  vis::ObstacleSet set(Workspace(), 128);
  for (size_t i = 0; i < obstacles.size(); ++i) set.Add(obstacles[i], i);

  WorkloadOptions avoid;
  avoid.query_length = 450.0;
  avoid.avoid_obstacle_crossings = true;
  WorkloadOptions plain;
  plain.query_length = 450.0;

  double blocked_avoid = 0.0, blocked_plain = 0.0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    blocked_avoid += set.BlockedIntervalsOnSegment(
                            RandomQuerySegment(Workspace(), avoid, obstacles,
                                               seed))
                         .TotalLength();
    blocked_plain += set.BlockedIntervalsOnSegment(
                            RandomQuerySegment(Workspace(), plain, obstacles,
                                               seed))
                         .TotalLength();
  }
  EXPECT_LE(blocked_avoid, blocked_plain);
}

}  // namespace
}  // namespace datagen
}  // namespace conn
