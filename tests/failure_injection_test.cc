// Adversarial / degenerate-input tests: queries crossing obstacles, data
// points walled off or sitting on obstacle corners, duplicate points,
// obstacle-dense pockets, and boundary-touching geometry.  The engine must
// stay correct (verified against the oracle) and must never crash or hang.
// The subscription-service section injects per-client failures into the
// tick loop: a failing client must be quarantined and reported without
// poisoning its siblings' warm state.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/coknn.h"
#include "core/conn.h"
#include "core/naive.h"
#include "exec/subscription.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

TEST(FailureInjectionTest, QueryCrossingObstacleReportsUnreachable) {
  testutil::Scene scene;
  scene.points = {{10, 50}, {90, 50}};
  scene.obstacles = {geom::Rect({40, -20}, {60, 120})};  // wall across q
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r = ConnQuery(tp, to, geom::Segment({0, 50}, {100, 50}));

  ASSERT_EQ(r.unreachable.size(), 1u);
  EXPECT_NEAR(r.unreachable.intervals()[0].lo, 40.0, 1e-5);
  EXPECT_NEAR(r.unreachable.intervals()[0].hi, 60.0, 1e-5);
  EXPECT_EQ(r.OnnAt(50.0), kNoPoint);
  // Outside the wall both sides have answers; the wall splits ownership.
  EXPECT_EQ(r.OnnAt(10.0), 0);
  EXPECT_EQ(r.OnnAt(90.0), 1);
  // The left point's odist at the right piece requires a detour.
  EXPECT_GT(r.OdistAt(65.0), 0.0);
}

TEST(FailureInjectionTest, WalledOffPointNeverWins) {
  testutil::Scene scene;
  scene.points = {{500, 500}, {700, 520}};
  // Box point 0 (Euclidean-nearest to the query) completely.
  scene.obstacles = {
      geom::Rect({450, 450}, {550, 460}), geom::Rect({450, 540}, {550, 550}),
      geom::Rect({450, 450}, {460, 550}), geom::Rect({540, 450}, {550, 550})};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r =
      ConnQuery(tp, to, geom::Segment({480, 600}, {620, 600}));
  for (const ConnTuple& t : r.tuples) {
    EXPECT_EQ(t.point_id, 1) << "walled-off point must not appear";
  }
}

TEST(FailureInjectionTest, AllPointsUnreachableGivesEmptyAnswer) {
  testutil::Scene scene;
  scene.points = {{500, 500}};
  scene.obstacles = {
      geom::Rect({450, 450}, {550, 460}), geom::Rect({450, 540}, {550, 550}),
      geom::Rect({450, 450}, {460, 550}), geom::Rect({540, 450}, {550, 550})};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r = ConnQuery(tp, to, geom::Segment({0, 0}, {100, 0}));
  ASSERT_EQ(r.tuples.size(), 1u);
  EXPECT_EQ(r.tuples[0].point_id, kNoPoint);
  EXPECT_TRUE(std::isinf(r.OdistAt(50.0)));
}

TEST(FailureInjectionTest, PointOnObstacleCornerIsUsable) {
  testutil::Scene scene;
  scene.points = {{30, 40}};  // exactly an obstacle corner
  scene.obstacles = {geom::Rect({30, 40}, {70, 80})};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r = ConnQuery(tp, to, geom::Segment({0, 0}, {100, 0}));
  ASSERT_FALSE(r.tuples.empty());
  for (const ConnTuple& t : r.tuples) {
    EXPECT_EQ(t.point_id, 0);
    EXPECT_TRUE(std::isfinite(r.OdistAt(t.range.Mid())));
  }
}

TEST(FailureInjectionTest, DuplicatePointsTie) {
  testutil::Scene scene;
  scene.points = {{50, 30}, {50, 30}, {50, 30}};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r = ConnQuery(tp, to, geom::Segment({0, 0}, {100, 0}));
  ASSERT_EQ(r.tuples.size(), 1u);
  EXPECT_NEAR(r.OdistAt(50.0), 30.0, 1e-9);
  // Any of the duplicates is acceptable as the winner.
  EXPECT_GE(r.tuples[0].point_id, 0);
  EXPECT_LE(r.tuples[0].point_id, 2);
}

TEST(FailureInjectionTest, QueryTouchingObstacleEdgeIsFullyReachable) {
  testutil::Scene scene;
  scene.points = {{50, 50}};
  scene.obstacles = {geom::Rect({20, -30}, {80, 0})};  // q runs along its top
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r = ConnQuery(tp, to, geom::Segment({0, 0}, {100, 0}));
  EXPECT_TRUE(r.unreachable.IsEmpty());
  EXPECT_NEAR(r.OdistAt(50.0), 50.0, 1e-9);
}

TEST(FailureInjectionTest, DensePocketMatchesOracle) {
  // A dense pocket of overlapping obstacles around the query's middle.
  testutil::Scene scene = testutil::MakeScene(77, 25, 0, 600.0);
  Rng rng(1234);
  const geom::Vec2 mid = scene.query.At(scene.query.Length() / 2);
  for (int i = 0; i < 30; ++i) {
    const geom::Vec2 c{mid.x + rng.Uniform(-120, 120),
                       mid.y + rng.Uniform(-120, 120)};
    const double w = rng.Uniform(10, 60), h = rng.Uniform(10, 60);
    scene.obstacles.push_back(geom::Rect({c.x - w / 2, c.y - h / 2},
                                         {c.x + w / 2, c.y + h / 2}));
  }
  datagen::DisplacePointsOutsideObstacles(&scene.points, scene.obstacles, 9);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult r = ConnQuery(tp, to, scene.query);
  const NaiveOracle oracle(scene.points, scene.obstacles);

  for (int i = 0; i <= 150; ++i) {
    const double t = scene.query.Length() * i / 150.0;
    if (r.unreachable.Contains(t, 1e-3)) continue;
    const auto want = oracle.OnnAt(scene.query.At(t), 1);
    const double got = r.OdistAt(t);
    if (want.empty()) {
      EXPECT_TRUE(std::isinf(got));
    } else {
      ASSERT_TRUE(std::isfinite(got)) << "t=" << t;
      EXPECT_NEAR(got, want[0].second, 1e-5 * (1 + want[0].second))
          << "t=" << t;
    }
  }
}

TEST(FailureInjectionTest, CoknnWithKLargerThanDataset) {
  testutil::Scene scene;
  scene.points = {{30, 20}, {70, 20}};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const CoknnResult r =
      CoknnQuery(tp, to, geom::Segment({0, 0}, {100, 0}), 5);
  ASSERT_FALSE(r.tuples.empty());
  for (const CoknnTuple& t : r.tuples) {
    EXPECT_EQ(t.candidates.size(), 2u);  // only 2 points exist
  }
}

exec::RouteSpec MakeRoute(Rng* rng) {
  exec::RouteSpec r;
  geom::Vec2 pos{rng->Uniform(200, 800), rng->Uniform(200, 800)};
  r.waypoints.push_back(pos);
  for (int leg = 0; leg < 3; ++leg) {
    pos.x = std::clamp(pos.x + rng->Uniform(-250.0, 250.0), 0.0, 1000.0);
    pos.y = std::clamp(pos.y + rng->Uniform(-250.0, 250.0), 0.0, 1000.0);
    r.waypoints.push_back(pos);
  }
  r.speed = 64.0;
  return r;
}

void ExpectCoknnBitIdentical(const CoknnResult& got, const CoknnResult& want) {
  ASSERT_EQ(got.unreachable.intervals().size(),
            want.unreachable.intervals().size());
  for (size_t i = 0; i < got.unreachable.intervals().size(); ++i) {
    EXPECT_EQ(got.unreachable.intervals()[i].lo,
              want.unreachable.intervals()[i].lo);
    EXPECT_EQ(got.unreachable.intervals()[i].hi,
              want.unreachable.intervals()[i].hi);
  }
  ASSERT_EQ(got.tuples.size(), want.tuples.size());
  for (size_t i = 0; i < got.tuples.size(); ++i) {
    EXPECT_EQ(got.tuples[i].range.lo, want.tuples[i].range.lo);
    EXPECT_EQ(got.tuples[i].range.hi, want.tuples[i].range.hi);
    ASSERT_EQ(got.tuples[i].candidates.size(),
              want.tuples[i].candidates.size());
    for (size_t c = 0; c < got.tuples[i].candidates.size(); ++c) {
      EXPECT_EQ(got.tuples[i].candidates[c].pid,
                want.tuples[i].candidates[c].pid);
      EXPECT_EQ(got.tuples[i].candidates[c].cp,
                want.tuples[i].candidates[c].cp);
      EXPECT_EQ(got.tuples[i].candidates[c].offset,
                want.tuples[i].candidates[c].offset);
    }
  }
}

TEST(FailureInjectionTest, TickLoopQuarantinesFailingClientWithoutPoison) {
  // One client's per-tick query starts failing at tick 2.  It must be
  // reported with the error once, quarantined from then on, and its
  // siblings' answers must stay bit-identical to a run with no failure —
  // the shared warm state (carried workspaces, obstacle store) must not
  // be poisoned by the victim's disappearance.
  const testutil::Scene scene = testutil::MakeScene(4242, 120, 50);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);

  Rng rng(0xFA11);
  std::vector<exec::RouteSpec> routes;
  for (int i = 0; i < 6; ++i) routes.push_back(MakeRoute(&rng));

  exec::SubscriptionOptions base;
  base.batch.num_threads = 1;
  base.batch.target_shard_size = 3;
  base.batch.share_locality_factor = 0.0;
  base.reshard_period = 3;

  exec::SubscriptionService healthy(tp, to, base);
  std::vector<int64_t> healthy_ids;
  for (const exec::RouteSpec& r : routes) {
    healthy_ids.push_back(healthy.Subscribe(r, 2).value());
  }

  // Ids are assigned in subscribe order, so the two services agree on who
  // the victim is.
  const int64_t victim = healthy_ids[2];
  exec::SubscriptionOptions faulty = base;
  faulty.failure_injector = [victim](int64_t client, uint64_t tick) {
    if (client == victim && tick >= 2) {
      return Status::InvalidArgument("injected tick fault");
    }
    return Status::OK();
  };
  exec::SubscriptionService svc(tp, to, faulty);
  std::vector<int64_t> ids;
  for (const exec::RouteSpec& r : routes) {
    ids.push_back(svc.Subscribe(r, 2).value());
  }
  ASSERT_EQ(ids, healthy_ids);

  uint64_t warm_starts = 0;
  for (uint64_t tick = 0; tick < 6; ++tick) {
    SCOPED_TRACE("tick " + std::to_string(tick));
    const exec::TickResult got = svc.Tick();
    const exec::TickResult want = healthy.Tick();
    warm_starts += got.stats.per_query_totals.tick_warm_starts;

    // Tick 2 reports the victim's error once; later ticks exclude it.
    const size_t expected_updates = tick <= 2 ? 6 : 5;
    ASSERT_EQ(got.updates.size(), expected_updates);
    EXPECT_EQ(got.quarantined_now, tick == 2 ? size_t{1} : size_t{0});

    for (const exec::ClientUpdate& u : got.updates) {
      SCOPED_TRACE("client " + std::to_string(u.client));
      if (u.client == victim && tick == 2) {
        EXPECT_FALSE(u.status.ok());
        EXPECT_FALSE(u.result.has_value());
        continue;
      }
      ASSERT_TRUE(u.status.ok());
      ASSERT_TRUE(u.result.has_value());
      // Find the same client in the no-failure run and demand bit-identity.
      const auto it =
          std::find_if(want.updates.begin(), want.updates.end(),
                       [&](const exec::ClientUpdate& w) {
                         return w.client == u.client;
                       });
      ASSERT_NE(it, want.updates.end());
      EXPECT_EQ(u.segment, it->segment);
      ExpectCoknnBitIdentical(*u.result, *it->result);
    }
  }
  EXPECT_EQ(svc.quarantined_clients(), size_t{1});
  EXPECT_GT(warm_starts, 0u) << "warm path never engaged; test is vacuous";
}

TEST(FailureInjectionTest, ReversedQuerySegmentIsSymmetric) {
  const testutil::Scene scene = testutil::MakeScene(88, 40, 12);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const ConnResult fwd = ConnQuery(tp, to, scene.query);
  const ConnResult rev = ConnQuery(tp, to, scene.query.Reversed());
  const double len = scene.query.Length();
  for (int i = 0; i <= 100; ++i) {
    const double t = len * (i + 0.5) / 101.0;
    const double a = fwd.OdistAt(t);
    const double b = rev.OdistAt(len - t);
    if (std::isinf(a) || std::isinf(b)) {
      EXPECT_EQ(std::isinf(a), std::isinf(b)) << "t=" << t;
    } else {
      EXPECT_NEAR(a, b, 1e-6 * (1 + a)) << "t=" << t;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace conn
