// Tests for ObstacleSet: the visibility predicate against brute force, and
// blocked-interval computation on segments crossing obstacles.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/predicates.h"
#include "vis/obstacle_set.h"

namespace conn {
namespace vis {
namespace {

TEST(ObstacleSetTest, VisibleWithNoObstacles) {
  ObstacleSet set(geom::Rect({0, 0}, {100, 100}));
  EXPECT_TRUE(set.Visible({0, 0}, {100, 100}));
}

TEST(ObstacleSetTest, BlockedByInterior) {
  ObstacleSet set(geom::Rect({0, 0}, {100, 100}));
  set.Add(geom::Rect({40, 40}, {60, 60}), 0);
  EXPECT_FALSE(set.Visible({0, 50}, {100, 50}));
  EXPECT_TRUE(set.Visible({0, 0}, {100, 0}));
  // Grazing the edge is allowed.
  EXPECT_TRUE(set.Visible({0, 60}, {100, 60}));
}

TEST(ObstacleSetTest, VisibilityTestCounterIncrements) {
  ObstacleSet set(geom::Rect({0, 0}, {100, 100}));
  set.Add(geom::Rect({40, 40}, {60, 60}), 0);
  uint64_t counter = 0;
  set.Visible({0, 50}, {100, 50}, &counter);
  EXPECT_GE(counter, 1u);
}

TEST(ObstacleSetTest, PointInAnyInterior) {
  ObstacleSet set(geom::Rect({0, 0}, {100, 100}));
  set.Add(geom::Rect({10, 10}, {20, 20}), 0);
  set.Add(geom::Rect({15, 15}, {30, 30}), 1);  // overlapping
  EXPECT_TRUE(set.PointInAnyInterior({12, 12}));
  EXPECT_TRUE(set.PointInAnyInterior({25, 25}));
  EXPECT_FALSE(set.PointInAnyInterior({10, 10}));  // corner: boundary
  EXPECT_FALSE(set.PointInAnyInterior({50, 50}));
}

TEST(ObstacleSetTest, BlockedIntervalsOnSegment) {
  ObstacleSet set(geom::Rect({0, 0}, {100, 100}));
  set.Add(geom::Rect({20, 0}, {30, 100}), 0);
  set.Add(geom::Rect({60, 0}, {70, 100}), 1);
  const geom::Segment q({0, 50}, {100, 50});
  const geom::IntervalSet blocked = set.BlockedIntervalsOnSegment(q);
  ASSERT_EQ(blocked.size(), 2u);
  EXPECT_NEAR(blocked.intervals()[0].lo, 20.0, 1e-5);
  EXPECT_NEAR(blocked.intervals()[0].hi, 30.0, 1e-5);
  EXPECT_NEAR(blocked.intervals()[1].lo, 60.0, 1e-5);
  EXPECT_NEAR(blocked.intervals()[1].hi, 70.0, 1e-5);
}

TEST(ObstacleSetTest, BlockedIntervalsMergeOverlappingObstacles) {
  ObstacleSet set(geom::Rect({0, 0}, {100, 100}));
  set.Add(geom::Rect({20, 0}, {50, 100}), 0);
  set.Add(geom::Rect({40, 0}, {70, 100}), 1);
  const geom::IntervalSet blocked =
      set.BlockedIntervalsOnSegment(geom::Segment({0, 50}, {100, 50}));
  ASSERT_EQ(blocked.size(), 1u);
  EXPECT_NEAR(blocked.TotalLength(), 50.0, 1e-5);
}

class ObstacleSetVisibilityProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObstacleSetVisibilityProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  const geom::Rect domain({0, 0}, {1000, 1000});
  ObstacleSet set(domain, 32);
  std::vector<geom::Rect> rects;
  for (uint32_t i = 0; i < 120; ++i) {
    const geom::Vec2 lo{rng.Uniform(0, 950), rng.Uniform(0, 950)};
    rects.push_back(
        geom::Rect(lo, {lo.x + rng.Uniform(2, 60), lo.y + rng.Uniform(2, 60)}));
    set.Add(rects.back(), i);
  }
  for (int qi = 0; qi < 300; ++qi) {
    const geom::Vec2 a{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    const geom::Vec2 b{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    bool brute = true;
    for (const geom::Rect& r : rects) {
      if (geom::SegmentCrossesInterior(geom::Segment(a, b), r)) {
        brute = false;
        break;
      }
    }
    EXPECT_EQ(set.Visible(a, b), brute) << "a=(" << a.x << "," << a.y
                                        << ") b=(" << b.x << "," << b.y << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObstacleSetVisibilityProperty,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace vis
}  // namespace conn
