// Direct tests of the UnifiedStream router (Section 4.5, 1-tree mode):
// popped obstacles must enter the visibility graph immediately, points
// must come back in ascending-distance order regardless of how IOR's
// obstacle draining interleaves, and retrieved_up_to must be monotone.

#include <cmath>

#include <gtest/gtest.h>

#include "core/odist.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

TEST(UnifiedStreamTest, RoutesObstaclesIntoGraphAndPointsInOrder) {
  const testutil::Scene scene = testutil::MakeScene(51, 30, 20);
  const rtree::RStarTree unified = testutil::MakeUnifiedTree(scene);
  vis::VisGraph vg(geom::Rect({-100, -100}, {1100, 1100}));
  UnifiedStream stream(unified, scene.query, &vg);

  rtree::DataObject obj;
  double dist, prev = -1.0;
  size_t points = 0;
  while (stream.NextPointWithin(1e18, &obj, &dist) ==
         core::StreamOutcome::kYielded) {
    EXPECT_EQ(obj.kind, rtree::ObjectKind::kPoint);
    EXPECT_GE(dist, prev);
    prev = dist;
    ++points;
  }
  EXPECT_EQ(points, scene.points.size());
  // Every obstacle was popped on the way and inserted into the graph.
  EXPECT_EQ(vg.ObstacleCount(), scene.obstacles.size());
  EXPECT_TRUE(std::isfinite(stream.retrieved_up_to()));
}

TEST(UnifiedStreamTest, ObstacleDrainBuffersPointsWithoutLosingOrder) {
  const testutil::Scene scene = testutil::MakeScene(52, 25, 15);
  const rtree::RStarTree unified = testutil::MakeUnifiedTree(scene);
  vis::VisGraph vg(geom::Rect({-100, -100}, {1100, 1100}));
  UnifiedStream stream(unified, scene.query, &vg);

  // Drain obstacles up to a mid-range bound first (as IOR would)...
  rtree::DataObject obstacle;
  double odist;
  size_t obstacles = 0;
  while (stream.NextObstacleWithin(300.0, &obstacle, &odist)) {
    EXPECT_EQ(obstacle.kind, rtree::ObjectKind::kObstacle);
    EXPECT_LE(odist, 300.0);
    ++obstacles;
  }
  const double retrieved_after_drain = stream.retrieved_up_to();

  // ...then consume all points: still ascending, none lost.
  rtree::DataObject obj;
  double dist, prev = -1.0;
  size_t points = 0;
  while (stream.NextPointWithin(1e18, &obj, &dist) ==
         core::StreamOutcome::kYielded) {
    EXPECT_GE(dist, prev);
    prev = dist;
    ++points;
  }
  EXPECT_EQ(points, scene.points.size());
  EXPECT_GE(stream.retrieved_up_to(), retrieved_after_drain);
}

TEST(UnifiedStreamTest, BoundIsRespected) {
  const testutil::Scene scene = testutil::MakeScene(53, 40, 10);
  const rtree::RStarTree unified = testutil::MakeUnifiedTree(scene);
  vis::VisGraph vg(geom::Rect({-100, -100}, {1100, 1100}));
  UnifiedStream stream(unified, scene.query, &vg);

  rtree::DataObject obj;
  double dist;
  while (stream.NextPointWithin(150.0, &obj, &dist) ==
         core::StreamOutcome::kYielded) {
    EXPECT_LE(dist, 150.0);
  }
  // A later call with a larger bound resumes where the stream stopped.
  size_t more = 0;
  while (stream.NextPointWithin(400.0, &obj, &dist) ==
         core::StreamOutcome::kYielded) {
    EXPECT_GT(dist, 150.0 - 1e-9);
    EXPECT_LE(dist, 400.0);
    ++more;
  }
  (void)more;  // may be zero if no point falls in (150, 400]
}

}  // namespace
}  // namespace core
}  // namespace conn
