// End-to-end property tests: the optimized CONN engine against the
// brute-force NaiveOracle (full visibility graph + dense sampling) on
// randomized scenes.  These are the primary correctness anchors of the
// whole library — if the split-point algebra, IOR, CPLC, or RLU were wrong
// anywhere, distances at some sample point would disagree.

#include <cmath>

#include <gtest/gtest.h>

#include "core/conn.h"
#include "core/naive.h"
#include "geom/curve.h"
#include "test_util.h"

namespace conn {
namespace {

constexpr double kTol = 1e-5;
constexpr int kSamplesPerQuery = 257;

struct SceneParams {
  uint64_t seed;
  size_t points;
  size_t obstacles;
  double query_len;
};

class ConnVsOracle : public ::testing::TestWithParam<SceneParams> {};

TEST_P(ConnVsOracle, OdistMatchesOracleAtSamples) {
  const SceneParams params = GetParam();
  const testutil::Scene scene = testutil::MakeScene(
      params.seed, params.points, params.obstacles, params.query_len);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);

  const core::ConnResult result = core::ConnQuery(tp, to, scene.query);
  const core::NaiveOracle oracle(scene.points, scene.obstacles);

  const double len = scene.query.Length();
  for (int i = 0; i < kSamplesPerQuery; ++i) {
    const double t = len * i / (kSamplesPerQuery - 1);
    const geom::Vec2 s = scene.query.At(t);
    // Skip samples inside obstacle interiors (reported unreachable) and
    // samples within tolerance of a tuple boundary (either side is valid).
    if (result.unreachable.Contains(t, 1e-3)) continue;

    const auto truth = oracle.OnnAt(s, 1);
    const double reported = result.OdistAt(t);
    if (truth.empty()) {
      EXPECT_TRUE(std::isinf(reported)) << "t=" << t;
      continue;
    }
    ASSERT_FALSE(std::isinf(reported))
        << "engine found no ONN at t=" << t << " but oracle found pid="
        << truth[0].first << " at odist=" << truth[0].second;
    // Identity may differ under ties; the distance must agree.
    EXPECT_NEAR(reported, truth[0].second, kTol * (1.0 + truth[0].second))
        << "seed=" << params.seed << " t=" << t
        << " engine pid=" << result.OnnAt(t)
        << " oracle pid=" << truth[0].first;
  }
}

TEST_P(ConnVsOracle, TuplesTileTheReachableDomain) {
  const SceneParams params = GetParam();
  const testutil::Scene scene = testutil::MakeScene(
      params.seed, params.points, params.obstacles, params.query_len);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const core::ConnResult result = core::ConnQuery(tp, to, scene.query);

  // Tuples are ordered, disjoint, and cover [0, len] minus the unreachable
  // intervals.
  double covered = 0.0;
  for (size_t i = 0; i < result.tuples.size(); ++i) {
    const geom::Interval& r = result.tuples[i].range;
    EXPECT_LE(r.lo, r.hi + geom::kEpsParam);
    if (i > 0) {
      EXPECT_GE(r.lo, result.tuples[i - 1].range.hi - geom::kEpsParam);
    }
    covered += r.Length();
  }
  const double expected =
      scene.query.Length() - result.unreachable.TotalLength();
  EXPECT_NEAR(covered, expected, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    RandomScenes, ConnVsOracle,
    ::testing::Values(
        SceneParams{1, 20, 6, 400.0}, SceneParams{2, 40, 12, 400.0},
        SceneParams{3, 60, 20, 500.0}, SceneParams{4, 10, 30, 300.0},
        SceneParams{5, 80, 8, 600.0}, SceneParams{6, 30, 25, 200.0},
        SceneParams{7, 50, 15, 700.0}, SceneParams{8, 25, 40, 350.0},
        SceneParams{9, 100, 10, 450.0}, SceneParams{10, 15, 50, 500.0},
        SceneParams{11, 70, 35, 550.0}, SceneParams{12, 45, 45, 250.0}));

}  // namespace
}  // namespace conn
