// Unit tests for Vec2, Rect, and Segment primitives.

#include <gtest/gtest.h>

#include "geom/box.h"
#include "geom/segment.h"
#include "geom/vec.h"

namespace conn {
namespace geom {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -2.0));
}

TEST(Vec2Test, DotAndCross) {
  const Vec2 a{1.0, 2.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 11.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -2.0);
  EXPECT_DOUBLE_EQ(a.Cross(a), 0.0);
}

TEST(Vec2Test, NormAndNormalize) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  const Vec2 u = v.Normalized();
  EXPECT_NEAR(u.Norm(), 1.0, 1e-15);
  EXPECT_NEAR(u.x, 0.6, 1e-15);
}

TEST(Vec2Test, Perp) {
  const Vec2 v{2.0, 1.0};
  EXPECT_DOUBLE_EQ(v.Dot(v.Perp()), 0.0);
  EXPECT_GT(v.Cross(v.Perp()), 0.0);  // CCW
}

TEST(Vec2Test, Dist) {
  EXPECT_DOUBLE_EQ(Dist({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Dist2({1, 1}, {2, 2}), 2.0);
}

TEST(RectTest, BasicProperties) {
  const Rect r({1.0, 2.0}, {4.0, 6.0});
  EXPECT_TRUE(r.IsValid());
  EXPECT_DOUBLE_EQ(r.Width(), 3.0);
  EXPECT_DOUBLE_EQ(r.Height(), 4.0);
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 14.0);
  EXPECT_EQ(r.Center(), Vec2(2.5, 4.0));
}

TEST(RectTest, EmptyIsIdentityForCover) {
  const Rect e = Rect::Empty();
  EXPECT_FALSE(e.IsValid());
  const Rect r({1, 1}, {2, 2});
  EXPECT_EQ(e.ExpandedToCover(r), r);
}

TEST(RectTest, ContainsPoint) {
  const Rect r({0, 0}, {10, 10});
  EXPECT_TRUE(r.Contains(Vec2{5, 5}));
  EXPECT_TRUE(r.Contains(Vec2{0, 0}));    // boundary inclusive
  EXPECT_TRUE(r.Contains(Vec2{10, 10}));  // boundary inclusive
  EXPECT_FALSE(r.Contains(Vec2{10.001, 5}));
}

TEST(RectTest, ContainsRect) {
  const Rect outer({0, 0}, {10, 10});
  EXPECT_TRUE(outer.Contains(Rect({1, 1}, {9, 9})));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect({5, 5}, {11, 9})));
}

TEST(RectTest, IntersectionAndOverlap) {
  const Rect a({0, 0}, {4, 4});
  const Rect b({2, 2}, {6, 6});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.Intersection(b), Rect({2, 2}, {4, 4}));
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 4.0);
  const Rect c({5, 5}, {6, 6});
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
  // Touching edges count as intersecting but have zero overlap area.
  const Rect d({4, 0}, {8, 4});
  EXPECT_TRUE(a.Intersects(d));
  EXPECT_DOUBLE_EQ(a.OverlapArea(d), 0.0);
}

TEST(RectTest, FromCornersNormalizesOrder) {
  EXPECT_EQ(Rect::FromCorners({4, 1}, {1, 5}), Rect({1, 1}, {4, 5}));
}

TEST(RectTest, CornersAreCcw) {
  const Rect r({0, 0}, {2, 1});
  const auto c = r.Corners();
  double area2 = 0.0;
  for (int i = 0; i < 4; ++i) area2 += c[i].Cross(c[(i + 1) % 4]);
  EXPECT_GT(area2, 0.0);  // positive signed area => counter-clockwise
}

TEST(SegmentTest, LengthAndAt) {
  const Segment s({0, 0}, {6, 8});
  EXPECT_DOUBLE_EQ(s.Length(), 10.0);
  EXPECT_EQ(s.At(0.0), Vec2(0, 0));
  EXPECT_EQ(s.At(10.0), Vec2(6, 8));
  EXPECT_NEAR(s.At(5.0).x, 3.0, 1e-12);
  EXPECT_NEAR(s.At(5.0).y, 4.0, 1e-12);
}

TEST(SegmentTest, ZeroLength) {
  const Segment s({2, 3}, {2, 3});
  EXPECT_DOUBLE_EQ(s.Length(), 0.0);
  EXPECT_EQ(s.At(0.0), Vec2(2, 3));
  EXPECT_EQ(s.At(5.0), Vec2(2, 3));  // any parameter maps to the point
  EXPECT_DOUBLE_EQ(s.ProjectParam({9, 9}), 0.0);
}

TEST(SegmentTest, ProjectionAndLineDistance) {
  const Segment s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(s.ProjectParam({3, 5}), 3.0);
  EXPECT_DOUBLE_EQ(s.ProjectParam({-2, 1}), -2.0);  // unclamped
  EXPECT_DOUBLE_EQ(s.LineDistance({3, 5}), 5.0);
  EXPECT_DOUBLE_EQ(s.LineDistance({3, -5}), 5.0);  // unsigned
}

TEST(SegmentTest, BoundsAndReversed) {
  const Segment s({5, 1}, {2, 7});
  EXPECT_EQ(s.Bounds(), Rect({2, 1}, {5, 7}));
  EXPECT_EQ(s.Reversed().a, s.b);
  EXPECT_EQ(s.Reversed().b, s.a);
}

}  // namespace
}  // namespace geom
}  // namespace conn
