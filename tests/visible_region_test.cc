// Tests for shadow / visible-region computation (Definition 2), including a
// property sweep validating every region boundary against dense sight-line
// sampling.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/curve.h"
#include "vis/visible_region.h"

namespace conn {
namespace vis {
namespace {

const geom::Rect kDomain({0, 0}, {1000, 1000});

TEST(ShadowTest, NoShadowWhenBehindViewpoint) {
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {100, 0}));
  // Obstacle behind the viewpoint relative to the segment.
  const geom::IntervalSet shadow =
      ShadowOnSegment(geom::Rect({40, 90}, {60, 95}), {50, 50}, frame);
  EXPECT_TRUE(shadow.IsEmpty());
}

TEST(ShadowTest, CentralObstacleShadowsMiddle) {
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {100, 0}));
  // Viewpoint above, obstacle between viewpoint and segment.
  const geom::IntervalSet shadow =
      ShadowOnSegment(geom::Rect({45, 40}, {55, 60}), {50, 100}, frame);
  ASSERT_EQ(shadow.size(), 1u);
  // The silhouette corners are the UPPER ones (nearer the viewpoint): the
  // ray through (45,60) hits y=0 at x = 50 - 5 * 100/40 = 37.5, and
  // symmetrically 62.5 through (55,60).
  EXPECT_NEAR(shadow.intervals()[0].lo, 37.5, 1e-6);
  EXPECT_NEAR(shadow.intervals()[0].hi, 62.5, 1e-6);
}

TEST(ShadowTest, SegmentCrossingObstacleIsShadowedInside) {
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {100, 0}));
  // Obstacle straddling the segment itself.
  const geom::IntervalSet shadow =
      ShadowOnSegment(geom::Rect({30, -10}, {40, 10}), {0, 50}, frame);
  // Everything from the obstacle's entry to (at least) its exit is blocked,
  // plus the occlusion behind it.
  EXPECT_FALSE(shadow.IsEmpty());
  EXPECT_TRUE(shadow.Contains(35.0));
  EXPECT_FALSE(shadow.Contains(10.0));
}

TEST(VisibleRegionTest, FullWhenNoObstacles) {
  ObstacleSet set(kDomain);
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {100, 0}));
  const geom::IntervalSet vr = VisibleRegion(set, {50, 70}, frame);
  ASSERT_EQ(vr.size(), 1u);
  EXPECT_NEAR(vr.TotalLength(), 100.0, 1e-9);
}

TEST(VisibleRegionTest, TwoObstaclesThreeVisiblePieces) {
  ObstacleSet set(kDomain);
  set.Add(geom::Rect({35, 20}, {45, 30}), 0);
  set.Add(geom::Rect({55, 20}, {65, 30}), 1);
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {100, 0}));
  const geom::IntervalSet vr = VisibleRegion(set, {50, 60}, frame);
  // Shadows: [20, 42.5] (rays through (35,30) and (45,20)) and the mirror
  // [57.5, 80]; visible: left piece, center gap, right piece.
  ASSERT_EQ(vr.size(), 3u);
  EXPECT_NEAR(vr.intervals()[0].hi, 20.0, 1e-6);
  EXPECT_NEAR(vr.intervals()[1].lo, 42.5, 1e-6);
  EXPECT_NEAR(vr.intervals()[1].hi, 57.5, 1e-6);
  EXPECT_NEAR(vr.intervals()[2].lo, 80.0, 1e-6);
}

TEST(VisibleRegionTest, ViewpointInsideObstacleSeesNothing) {
  ObstacleSet set(kDomain);
  set.Add(geom::Rect({40, 40}, {60, 60}), 0);
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {100, 0}));
  const geom::IntervalSet vr = VisibleRegion(set, {50, 50}, frame);
  EXPECT_TRUE(vr.IsEmpty());
}

TEST(VisibleRegionTest, ViewpointOnCornerSeesAround) {
  ObstacleSet set(kDomain);
  set.Add(geom::Rect({40, 40}, {60, 60}), 0);
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {100, 0}));
  // Viewpoint exactly on the obstacle's lower-left corner.
  const geom::IntervalSet vr = VisibleRegion(set, {40, 40}, frame);
  EXPECT_FALSE(vr.IsEmpty());
  EXPECT_TRUE(vr.Contains(0.0));  // sees the left part of the segment
}

class VisibleRegionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VisibleRegionProperty, MatchesDenseSightlineSampling) {
  Rng rng(GetParam());
  ObstacleSet set(kDomain, 32);
  std::vector<geom::Rect> rects;
  const int n = 1 + static_cast<int>(rng.UniformU64(25));
  for (int i = 0; i < n; ++i) {
    const geom::Vec2 lo{rng.Uniform(0, 900), rng.Uniform(0, 900)};
    rects.push_back(geom::Rect(
        lo, {lo.x + rng.Uniform(5, 100), lo.y + rng.Uniform(5, 100)}));
    set.Add(rects.back(), i);
  }
  const geom::Segment q({rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
                        {rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  if (q.Length() < 1.0) return;
  const geom::SegmentFrame frame(q);
  const geom::Vec2 view{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
  const geom::IntervalSet vr = VisibleRegion(set, view, frame);

  for (int i = 0; i <= 400; ++i) {
    const double t = q.Length() * i / 400.0;
    const bool direct = set.Visible(view, q.At(t));
    // Skip probes within eps of any region boundary.
    bool near_boundary = false;
    for (const geom::Interval& iv : vr.intervals()) {
      if (std::abs(t - iv.lo) < 1e-4 || std::abs(t - iv.hi) < 1e-4) {
        near_boundary = true;
      }
    }
    if (near_boundary) continue;
    EXPECT_EQ(vr.Contains(t, 0.0), direct)
        << "t=" << t << " view=(" << view.x << "," << view.y << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VisibleRegionProperty,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace vis
}  // namespace conn
