// Regression tests for the Lemma-2 termination statistic: the main loops
// used to credit lemma2_terminations whenever they stopped while the RLMAX
// bound was finite — including when the best-first stream had simply run
// out of points.  The statistic must count only genuine prunes (points
// remained beyond RLMAX), or published pruning-effectiveness numbers would
// be corrupted.

#include <vector>

#include <gtest/gtest.h>

#include "core/coknn.h"
#include "core/conn.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

/// A hand-built scene: every object close to the query segment (RLMAX of
/// the two near points is ~50, the obstacle's mindist is 40), so the loop
/// always exhausts the stream — unified or not — with a finite bound; plus
/// a variant with one far outlier that RLMAX must prune.
testutil::Scene TwoNearPoints() {
  testutil::Scene s;
  s.domain = geom::Rect({0, 0}, {1000, 1000});
  s.query = geom::Segment({0, 100}, {100, 100});
  s.points = {{50, 101}, {50, 102}};
  s.obstacles = {geom::Rect({40, 140}, {60, 160})};  // mindist 40 < RLMAX
  return s;
}

testutil::Scene TwoNearOneFarPoint() {
  testutil::Scene s = TwoNearPoints();
  // mindist to q ~ 800, far beyond the RLMAX of the two near points (~51).
  s.points.push_back({50, 900});
  return s;
}

TEST(TerminationStats, ExhaustedStreamIsNotALemma2Termination) {
  const testutil::Scene s = TwoNearPoints();
  const rtree::RStarTree tp = testutil::MakePointTree(s);
  const rtree::RStarTree to = testutil::MakeObstacleTree(s);

  const CoknnResult r = CoknnQuery(tp, to, s.query, 1);
  EXPECT_EQ(r.stats.points_evaluated, 2u);  // stream fully consumed
  EXPECT_EQ(r.stats.lemma2_terminations, 0u)
      << "an exhausted iterator with a finite bound is not a prune";
}

TEST(TerminationStats, BoundReachedCountsExactlyOneLemma2Termination) {
  const testutil::Scene s = TwoNearOneFarPoint();
  const rtree::RStarTree tp = testutil::MakePointTree(s);
  const rtree::RStarTree to = testutil::MakeObstacleTree(s);

  const CoknnResult r = CoknnQuery(tp, to, s.query, 1);
  EXPECT_LT(r.stats.points_evaluated, 3u);  // the outlier was pruned
  EXPECT_EQ(r.stats.lemma2_terminations, 1u);
}

TEST(TerminationStats, OneTreeCoknnDrawsTheSameDistinction) {
  const testutil::Scene near_only = TwoNearPoints();
  const rtree::RStarTree u1 = testutil::MakeUnifiedTree(near_only);
  const CoknnResult exhausted = CoknnQuery1T(u1, near_only.query, 1);
  EXPECT_EQ(exhausted.stats.points_evaluated, 2u);
  EXPECT_EQ(exhausted.stats.lemma2_terminations, 0u);

  const testutil::Scene with_far = TwoNearOneFarPoint();
  const rtree::RStarTree u2 = testutil::MakeUnifiedTree(with_far);
  const CoknnResult pruned = CoknnQuery1T(u2, with_far.query, 1);
  EXPECT_LT(pruned.stats.points_evaluated, 3u);
  EXPECT_EQ(pruned.stats.lemma2_terminations, 1u);
}

TEST(TerminationStats, OneTreeConnDrawsTheSameDistinction) {
  const testutil::Scene near_only = TwoNearPoints();
  const rtree::RStarTree u1 = testutil::MakeUnifiedTree(near_only);
  const ConnResult exhausted = ConnQuery1T(u1, near_only.query);
  EXPECT_EQ(exhausted.stats.points_evaluated, 2u);
  EXPECT_EQ(exhausted.stats.lemma2_terminations, 0u);

  const testutil::Scene with_far = TwoNearOneFarPoint();
  const rtree::RStarTree u2 = testutil::MakeUnifiedTree(with_far);
  const ConnResult pruned = ConnQuery1T(u2, with_far.query);
  EXPECT_LT(pruned.stats.points_evaluated, 3u);
  EXPECT_EQ(pruned.stats.lemma2_terminations, 1u);
}

/// Metamorphic invariant over random scenes: with the fix, exactly one of
/// "every point was evaluated" and "one Lemma-2 termination was recorded"
/// holds for any terminating run.
class TerminationInvariant : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TerminationInvariant, PruneFlagMatchesUnconsumedPoints) {
  const testutil::Scene s = testutil::MakeScene(GetParam(), 40, 12);
  const rtree::RStarTree tp = testutil::MakePointTree(s);
  const rtree::RStarTree to = testutil::MakeObstacleTree(s);

  const CoknnResult r = CoknnQuery(tp, to, s.query, 3);
  EXPECT_LE(r.stats.lemma2_terminations, 1u);
  EXPECT_EQ(r.stats.lemma2_terminations == 1,
            r.stats.points_evaluated < s.points.size())
      << "lemma2_terminations=" << r.stats.lemma2_terminations
      << " NPE=" << r.stats.points_evaluated << "/" << s.points.size();

  // With RLMAX disabled the loop always drains the stream: never a prune.
  ConnOptions no_prune;
  no_prune.use_rlmax_terminate = false;
  const CoknnResult drained = CoknnQuery(tp, to, s.query, 3, no_prune);
  EXPECT_EQ(drained.stats.lemma2_terminations, 0u);
  EXPECT_EQ(drained.stats.points_evaluated, s.points.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TerminationInvariant,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace core
}  // namespace conn
