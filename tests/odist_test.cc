// Tests for IOR (Algorithm 1): obstacle retrieval bounds, reuse of the
// shared visibility graph across data points, and exactness of the
// resulting obstructed distances against the full-graph oracle.

#include <cmath>

#include <gtest/gtest.h>

#include "core/naive.h"
#include "core/odist.h"
#include "test_util.h"
#include "vis/dijkstra.h"

namespace conn {
namespace core {
namespace {

TEST(IorTest, NoObstaclesDirectDistance) {
  const geom::Rect domain({0, 0}, {1000, 1000});
  vis::VisGraph vg(domain);
  const vis::VertexId s = vg.AddFixedVertex({0, 0});
  const vis::VertexId e = vg.AddFixedVertex({100, 0});

  rtree::RStarTree empty_obstacles;
  TreeObstacleSource source(empty_obstacles, geom::Segment({0, 0}, {100, 0}));
  double retrieved = 0.0;
  QueryStats stats;
  const double d = IncrementalObstacleRetrieval(&source, &vg, {s, e},
                                                {50, 40}, &retrieved, &stats);
  // max over targets of the direct distances.
  EXPECT_NEAR(d, std::hypot(50, 40), 1e-12);
  EXPECT_EQ(stats.obstacles_evaluated, 0u);
}

TEST(IorTest, FetchesOnlyObstaclesWithinPathBound) {
  const geom::Rect domain({0, 0}, {1000, 1000});
  QueryStats stats;
  vis::VisGraph vg(domain, &stats);  // NOE is counted by the graph
  const vis::VertexId s = vg.AddFixedVertex({400, 500});
  const vis::VertexId e = vg.AddFixedVertex({600, 500});
  const geom::Segment q({400, 500}, {600, 500});

  // One blocking wall near the query; one obstacle far away that can never
  // affect the result and must not be retrieved.
  rtree::RStarTree obstacles;
  ASSERT_TRUE(obstacles
                  .Insert(rtree::DataObject::Obstacle(
                      geom::Rect({490, 480}, {510, 520}), 0))
                  .ok());
  ASSERT_TRUE(obstacles
                  .Insert(rtree::DataObject::Obstacle(
                      geom::Rect({50, 50}, {60, 60}), 1))
                  .ok());

  TreeObstacleSource source(obstacles, q);
  double retrieved = 0.0;
  const double d = IncrementalObstacleRetrieval(&source, &vg, {s, e},
                                                {500, 530}, &retrieved, &stats);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_EQ(stats.obstacles_evaluated, 1u);  // the far obstacle stayed out
  EXPECT_EQ(vg.ObstacleCount(), 1u);
}

TEST(IorTest, GraphIsReusedAcrossDataPoints) {
  const geom::Rect domain({0, 0}, {1000, 1000});
  QueryStats stats;
  vis::VisGraph vg(domain, &stats);
  const vis::VertexId s = vg.AddFixedVertex({400, 500});
  const vis::VertexId e = vg.AddFixedVertex({600, 500});
  const geom::Segment q({400, 500}, {600, 500});

  rtree::RStarTree obstacles;
  ASSERT_TRUE(obstacles
                  .Insert(rtree::DataObject::Obstacle(
                      geom::Rect({490, 480}, {510, 520}), 0))
                  .ok());

  TreeObstacleSource source(obstacles, q);
  double retrieved = 0.0;
  IncrementalObstacleRetrieval(&source, &vg, {s, e}, {500, 530}, &retrieved,
                               &stats);
  const uint64_t noe_after_first = stats.obstacles_evaluated;
  // A second, closer point must not trigger any further retrieval.
  IncrementalObstacleRetrieval(&source, &vg, {s, e}, {500, 525}, &retrieved,
                               &stats);
  EXPECT_EQ(stats.obstacles_evaluated, noe_after_first);
}

TEST(IorTest, UnreachableTargetDrainsAndReturnsInfinity) {
  const geom::Rect domain({0, 0}, {1000, 1000});
  QueryStats stats;
  vis::VisGraph vg(domain, &stats);
  // Target sealed in a box.
  const vis::VertexId t = vg.AddFixedVertex({500, 500});
  rtree::RStarTree obstacles;
  const geom::Rect walls[] = {geom::Rect({450, 450}, {550, 460}),
                              geom::Rect({450, 540}, {550, 550}),
                              geom::Rect({450, 450}, {460, 550}),
                              geom::Rect({540, 450}, {550, 550})};
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        obstacles.Insert(rtree::DataObject::Obstacle(walls[i], i)).ok());
  }
  TreeObstacleSource source(obstacles,
                            geom::Segment({500, 500}, {500, 500}));
  double retrieved = 0.0;
  const double d = IncrementalObstacleRetrieval(&source, &vg, {t}, {0, 0},
                                                &retrieved, &stats);
  EXPECT_TRUE(std::isinf(d));
  EXPECT_EQ(stats.obstacles_evaluated, 4u);  // full drain, then stop
}

// IOR distances must equal the ground-truth obstructed distance.
class IorVsOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IorVsOracle, ExactObstructedDistances) {
  const testutil::Scene scene = testutil::MakeScene(GetParam(), 12, 25);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const NaiveOracle oracle({}, scene.obstacles);

  const geom::Rect domain({-100, -100}, {1100, 1100});
  vis::VisGraph vg(domain);
  const vis::VertexId s = vg.AddFixedVertex(scene.query.a);
  const vis::VertexId e = vg.AddFixedVertex(scene.query.b);
  TreeObstacleSource source(to, scene.query);
  double retrieved = 0.0;
  QueryStats stats;

  for (const geom::Vec2& p : scene.points) {
    const double d = IncrementalObstacleRetrieval(&source, &vg, {s, e}, p,
                                                  &retrieved, &stats);
    const double want = std::max(oracle.Odist(p, scene.query.a),
                                 oracle.Odist(p, scene.query.b));
    if (std::isinf(want)) {
      EXPECT_TRUE(std::isinf(d));
    } else {
      EXPECT_NEAR(d, want, 1e-6) << "p=(" << p.x << "," << p.y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IorVsOracle, ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace core
}  // namespace conn
