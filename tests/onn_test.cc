// Tests for the ONN point query (reference [31]) against the brute-force
// oracle, including k > 1 and unreachable configurations.

#include <gtest/gtest.h>

#include "core/naive.h"
#include "core/onn.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

TEST(OnnTest, NoObstaclesIsEuclideanNn) {
  testutil::Scene scene;
  scene.points = {{10, 10}, {50, 50}, {90, 10}};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);

  const OnnResult r = OnnQuery(tp, to, {12, 12}, 1);
  ASSERT_EQ(r.neighbors.size(), 1u);
  EXPECT_EQ(r.neighbors[0].pid, 0);
  EXPECT_NEAR(r.neighbors[0].odist, std::hypot(2, 2), 1e-12);
}

TEST(OnnTest, ObstacleForcesFartherNeighbor) {
  testutil::Scene scene;
  scene.points = {{0, 30}, {40, 0}};  // p0 nearer in Euclidean terms
  scene.obstacles = {geom::Rect({-50, 10}, {50, 20})};  // wall blocks p0
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);

  const OnnResult r = OnnQuery(tp, to, {0, 0}, 1);
  ASSERT_EQ(r.neighbors.size(), 1u);
  // Euclidean NN is p0 (dist 30 < 40), but the wall makes the detour to p0
  // longer than the straight path to p1.
  EXPECT_EQ(r.neighbors[0].pid, 1);
  EXPECT_NEAR(r.neighbors[0].odist, 40.0, 1e-9);
}

TEST(OnnTest, KNeighborsAreSortedAndDistinct) {
  const testutil::Scene scene = testutil::MakeScene(5, 40, 15);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);

  const OnnResult r = OnnQuery(tp, to, {500, 500}, 5);
  ASSERT_EQ(r.neighbors.size(), 5u);
  for (size_t i = 1; i < r.neighbors.size(); ++i) {
    EXPECT_GE(r.neighbors[i].odist, r.neighbors[i - 1].odist);
    for (size_t j = 0; j < i; ++j) {
      EXPECT_NE(r.neighbors[i].pid, r.neighbors[j].pid);
    }
  }
}

TEST(OnnTest, UnreachablePointsExcluded) {
  testutil::Scene scene;
  scene.points = {{500, 500}, {100, 100}};
  // Seal point 0 into a box.
  scene.obstacles = {
      geom::Rect({450, 450}, {550, 460}), geom::Rect({450, 540}, {550, 550}),
      geom::Rect({450, 450}, {460, 550}), geom::Rect({540, 450}, {550, 550})};
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);

  const OnnResult r = OnnQuery(tp, to, {200, 200}, 2);
  ASSERT_EQ(r.neighbors.size(), 1u);  // the boxed point is unreachable
  EXPECT_EQ(r.neighbors[0].pid, 1);
}

class OnnVsOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OnnVsOracle, MatchesBruteForce) {
  const testutil::Scene scene = testutil::MakeScene(GetParam(), 50, 20);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const NaiveOracle oracle(scene.points, scene.obstacles);

  Rng rng(GetParam() ^ 0xA11CE);
  for (int qi = 0; qi < 8; ++qi) {
    const geom::Vec2 qp{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    if (oracle.OnnAt(qp, 1).empty()) continue;  // query inside an obstacle
    for (size_t k : {size_t{1}, size_t{3}}) {
      const OnnResult got = OnnQuery(tp, to, qp, k);
      const auto want = oracle.OnnAt(qp, k);
      ASSERT_EQ(got.neighbors.size(), want.size()) << "k=" << k;
      for (size_t i = 0; i < want.size(); ++i) {
        // Identities may swap under ties; distances must match.
        EXPECT_NEAR(got.neighbors[i].odist, want[i].second,
                    1e-6 * (1 + want[i].second))
            << "k=" << k << " rank=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnnVsOracle, ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace core
}  // namespace conn
