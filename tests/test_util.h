// Shared helpers for the test suite: deterministic random scene generation
// and tree construction.

#ifndef CONN_TESTS_TEST_UTIL_H_
#define CONN_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "datagen/datasets.h"
#include "geom/box.h"
#include "geom/segment.h"
#include "rtree/rstar_tree.h"
#include "rtree/str_bulk_load.h"

namespace conn {
namespace testutil {

/// A randomized small scene: points, obstacles, and a query segment, all
/// within a compact test workspace so brute-force oracles stay fast.
struct Scene {
  geom::Rect domain;
  std::vector<geom::Vec2> points;
  std::vector<geom::Rect> obstacles;
  geom::Segment query;
};

/// Generates a scene with \p num_points points and \p num_obstacles
/// obstacles; obstacles are small axis-aligned rectangles that may overlap.
/// Points are displaced out of obstacle interiors.
inline Scene MakeScene(uint64_t seed, size_t num_points,
                       size_t num_obstacles, double query_len = 400.0) {
  Rng rng(seed);
  Scene s;
  s.domain = geom::Rect({0.0, 0.0}, {1000.0, 1000.0});
  for (size_t i = 0; i < num_obstacles; ++i) {
    const geom::Vec2 c{rng.Uniform(50.0, 950.0), rng.Uniform(50.0, 950.0)};
    const double w = rng.Uniform(5.0, 120.0);
    const double h = rng.Uniform(5.0, 120.0);
    s.obstacles.push_back(geom::Rect({c.x - w * 0.5, c.y - h * 0.5},
                                     {c.x + w * 0.5, c.y + h * 0.5}));
  }
  for (size_t i = 0; i < num_points; ++i) {
    s.points.push_back(
        {rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
  }
  datagen::DisplacePointsOutsideObstacles(&s.points, s.obstacles,
                                          seed ^ 0xABCD);

  const geom::Vec2 start{rng.Uniform(100.0, 900.0),
                         rng.Uniform(100.0, 900.0)};
  const double theta = rng.Uniform(0.0, 6.283185307179586);
  geom::Vec2 end{start.x + query_len * std::cos(theta),
                 start.y + query_len * std::sin(theta)};
  end.x = std::clamp(end.x, 0.0, 1000.0);
  end.y = std::clamp(end.y, 0.0, 1000.0);
  s.query = geom::Segment(start, end);
  return s;
}

/// Bulk-loads a point tree from the scene.
inline rtree::RStarTree MakePointTree(const Scene& s) {
  auto result = rtree::StrBulkLoad(datagen::ToPointObjects(s.points));
  return std::move(result).value();
}

/// Bulk-loads an obstacle tree from the scene.
inline rtree::RStarTree MakeObstacleTree(const Scene& s) {
  auto result = rtree::StrBulkLoad(datagen::ToObstacleObjects(s.obstacles));
  return std::move(result).value();
}

/// Bulk-loads the unified (points + obstacles) tree of Section 4.5.
inline rtree::RStarTree MakeUnifiedTree(const Scene& s) {
  std::vector<rtree::DataObject> all = datagen::ToPointObjects(s.points);
  for (const rtree::DataObject& o : datagen::ToObstacleObjects(s.obstacles)) {
    all.push_back(o);
  }
  auto result = rtree::StrBulkLoad(std::move(all));
  return std::move(result).value();
}

}  // namespace testutil
}  // namespace conn

#endif  // CONN_TESTS_TEST_UTIL_H_
