// Tests for CPLC (Algorithm 2): control point lists must partition the
// domain, and the distance curve they induce must equal the ground-truth
// obstructed distance at every sample of the query segment.

#include <cmath>

#include <gtest/gtest.h>

#include "core/cpl.h"
#include "core/naive.h"
#include "core/odist.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

ControlPointList CplFor(const testutil::Scene& scene, geom::Vec2 p,
                        const ConnOptions& opts, QueryStats* stats) {
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const geom::Rect domain({-100, -100}, {1100, 1100});
  vis::VisGraph vg(domain, stats);
  const vis::VertexId s = vg.AddFixedVertex(scene.query.a);
  const vis::VertexId e = vg.AddFixedVertex(scene.query.b);
  TreeObstacleSource source(to, scene.query);
  double retrieved = 0.0;
  IncrementalObstacleRetrieval(&source, &vg, {s, e}, p, &retrieved, stats);
  const geom::SegmentFrame frame(scene.query);
  const geom::IntervalSet domain_set{
      geom::Interval(0.0, scene.query.Length())};
  // The returned list is value-only (control point positions + offsets), so
  // the graph and trees may die with this scope.
  return ComputeControlPointList(&vg, p, frame, domain_set, opts, stats);
}

TEST(CplTest, NoObstaclesPointIsItsOwnControlPoint) {
  testutil::Scene scene;
  scene.domain = geom::Rect({0, 0}, {1000, 1000});
  scene.query = geom::Segment({100, 100}, {500, 100});
  const geom::Vec2 p{300, 250};

  QueryStats stats;
  const ControlPointList cpl = CplFor(scene, p, {}, &stats);
  ASSERT_EQ(cpl.size(), 1u);
  EXPECT_TRUE(cpl[0].has_cp);
  EXPECT_EQ(cpl[0].cp, p);
  EXPECT_DOUBLE_EQ(cpl[0].offset, 0.0);
  EXPECT_TRUE(CplIsPartition(
      cpl, geom::IntervalSet{geom::Interval(0, scene.query.Length())}));
}

TEST(CplTest, WallCreatesCornerControlPoints) {
  testutil::Scene scene;
  scene.domain = geom::Rect({0, 0}, {1000, 1000});
  scene.query = geom::Segment({100, 100}, {500, 100});
  // Wall between p and the middle of q.
  scene.obstacles.push_back(geom::Rect({250, 150}, {350, 250}));
  const geom::Vec2 p{300, 300};

  QueryStats stats;
  const ControlPointList cpl = CplFor(scene, p, {}, &stats);
  EXPECT_GE(cpl.size(), 3u);  // around-left / shadow pieces / around-right
  // Every entry must have a control point (whole q is reachable from p).
  for (const CplEntry& e : cpl) {
    EXPECT_TRUE(e.has_cp);
  }
  // Shadowed center: control point is one of the wall's lower corners.
  const geom::SegmentFrame frame(scene.query);
  bool saw_corner_cp = false;
  for (const CplEntry& e : cpl) {
    if ((e.cp == geom::Vec2{250, 150}) || (e.cp == geom::Vec2{350, 150})) {
      saw_corner_cp = true;
      EXPECT_GT(e.offset, 0.0);
    }
  }
  EXPECT_TRUE(saw_corner_cp);
}

class CplVsOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CplVsOracle, CurveEqualsGroundTruthOdist) {
  const testutil::Scene scene = testutil::MakeScene(GetParam(), 6, 18);
  if (scene.query.Length() < 1.0) return;
  const NaiveOracle oracle({}, scene.obstacles);
  const geom::SegmentFrame frame(scene.query);

  QueryStats stats;
  for (size_t pi = 0; pi < std::min<size_t>(scene.points.size(), 4); ++pi) {
    const geom::Vec2 p = scene.points[pi];
    const ControlPointList cpl = CplFor(scene, p, {}, &stats);
    ASSERT_TRUE(CplIsPartition(
        cpl, geom::IntervalSet{geom::Interval(0, scene.query.Length())}));

    for (int i = 0; i <= 100; ++i) {
      const double t = scene.query.Length() * i / 100.0;
      // Locate the covering entry.
      const CplEntry* entry = nullptr;
      for (const CplEntry& e : cpl) {
        if (e.range.ContainsApprox(t)) {
          entry = &e;
          break;
        }
      }
      ASSERT_NE(entry, nullptr) << "t=" << t;
      const double want = oracle.Odist(p, scene.query.At(t));
      if (!entry->has_cp) {
        // Unreachable from p (or a boundary sliver).
        if (std::isinf(want)) continue;
        // Tolerate eps-boundary mismatches only.
        ADD_FAILURE_AT(__FILE__, __LINE__)
            << "missing control point at reachable t=" << t;
        continue;
      }
      const double got = entry->Curve(frame).Eval(t);
      EXPECT_NEAR(got, want, 1e-5 * (1 + want))
          << "seed=" << GetParam() << " point " << pi << " t=" << t;
    }
  }
}

TEST_P(CplVsOracle, Lemma6AndLemma7DoNotChangeTheResult) {
  const testutil::Scene scene =
      testutil::MakeScene(GetParam() ^ 0xC0FFEE, 5, 15);
  if (scene.query.Length() < 1.0) return;
  const geom::SegmentFrame frame(scene.query);

  ConnOptions all_on;
  ConnOptions pruning_off;
  pruning_off.use_lemma6_refine = false;
  pruning_off.use_lemma7_terminate = false;
  pruning_off.use_lemma1_prune = false;

  QueryStats s1, s2;
  for (size_t pi = 0; pi < std::min<size_t>(scene.points.size(), 3); ++pi) {
    const geom::Vec2 p = scene.points[pi];
    const ControlPointList a = CplFor(scene, p, all_on, &s1);
    const ControlPointList b = CplFor(scene, p, pruning_off, &s2);
    // The *functions* must agree even if the partitions differ.
    for (int i = 0; i <= 60; ++i) {
      const double t = scene.query.Length() * (i + 0.5) / 61.0;
      auto value = [&](const ControlPointList& cpl) {
        for (const CplEntry& e : cpl) {
          if (e.range.ContainsApprox(t)) {
            return e.has_cp ? e.Curve(frame).Eval(t)
                            : std::numeric_limits<double>::infinity();
          }
        }
        return std::numeric_limits<double>::infinity();
      };
      const double va = value(a), vb = value(b);
      if (std::isinf(va) || std::isinf(vb)) {
        EXPECT_EQ(std::isinf(va), std::isinf(vb)) << "t=" << t;
      } else {
        EXPECT_NEAR(va, vb, 1e-6 * (1 + vb)) << "t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CplVsOracle, ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace core
}  // namespace conn
