// Property tests: the R*-tree against a linear-scan reference model under
// randomized insert/delete workloads, plus best-first order checks and
// STR-vs-insertion content equivalence.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/distance.h"
#include "rtree/best_first.h"
#include "rtree/rstar_tree.h"
#include "rtree/str_bulk_load.h"

namespace conn {
namespace rtree {
namespace {

class RtreeVsLinearScan : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RtreeVsLinearScan, RangeQueriesMatchAfterMixedWorkload) {
  Rng rng(GetParam());
  RStarTree tree;
  std::map<uint64_t, geom::Rect> model;
  uint64_t next_id = 0;

  for (int op = 0; op < 1200; ++op) {
    const double roll = rng.NextDouble();
    if (roll < 0.7 || model.empty()) {
      // Insert: mixed points and small rects.
      geom::Rect r;
      if (rng.Bernoulli(0.5)) {
        const geom::Vec2 p{rng.Uniform(0, 500), rng.Uniform(0, 500)};
        r = geom::Rect::FromPoint(p);
      } else {
        const geom::Vec2 lo{rng.Uniform(0, 480), rng.Uniform(0, 480)};
        r = geom::Rect(
            lo, {lo.x + rng.Uniform(0, 20), lo.y + rng.Uniform(0, 20)});
      }
      const uint64_t id = next_id++;
      ASSERT_TRUE(tree.Insert({r, id, ObjectKind::kPoint}).ok());
      model[id] = r;
    } else {
      // Delete a random surviving object.
      auto it = model.begin();
      std::advance(it, rng.UniformU64(model.size()));
      ASSERT_TRUE(
          tree.Delete({it->second, it->first, ObjectKind::kPoint}).ok());
      model.erase(it);
    }
  }
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  EXPECT_EQ(tree.size(), model.size());

  // 20 random range queries must match the model exactly.
  for (int qi = 0; qi < 20; ++qi) {
    const geom::Vec2 lo{rng.Uniform(0, 400), rng.Uniform(0, 400)};
    const geom::Rect range(
        lo, {lo.x + rng.Uniform(5, 120), lo.y + rng.Uniform(5, 120)});
    std::vector<DataObject> got;
    ASSERT_TRUE(tree.RangeQuery(range, &got).ok());
    std::set<uint64_t> got_ids;
    for (const DataObject& o : got) got_ids.insert(o.id);

    std::set<uint64_t> want_ids;
    for (const auto& [id, r] : model) {
      if (r.Intersects(range)) want_ids.insert(id);
    }
    EXPECT_EQ(got_ids, want_ids) << "query " << qi;
  }
}

TEST_P(RtreeVsLinearScan, BestFirstMatchesSortedLinearScan) {
  Rng rng(GetParam() ^ 0xBADC0DE);
  std::vector<DataObject> objects;
  for (size_t i = 0; i < 400; ++i) {
    objects.push_back(
        DataObject::Point({rng.Uniform(0, 500), rng.Uniform(0, 500)}, i));
  }
  RStarTree tree = std::move(StrBulkLoad(objects)).value();

  const geom::Segment q({rng.Uniform(0, 500), rng.Uniform(0, 500)},
                        {rng.Uniform(0, 500), rng.Uniform(0, 500)});
  std::vector<double> want;
  for (const DataObject& o : objects) {
    want.push_back(geom::DistPointSegment(o.AsPoint(), q));
  }
  std::sort(want.begin(), want.end());

  BestFirstIterator it(tree, q);
  DataObject obj;
  double dist;
  size_t idx = 0;
  while (it.Next(&obj, &dist)) {
    ASSERT_LT(idx, want.size());
    EXPECT_NEAR(dist, want[idx], 1e-9) << "rank " << idx;
    ++idx;
  }
  EXPECT_EQ(idx, want.size());
}

TEST_P(RtreeVsLinearScan, StrAndInsertionTreesHoldTheSameContent) {
  Rng rng(GetParam() ^ 0x57A7);
  std::vector<DataObject> objects;
  for (size_t i = 0; i < 800; ++i) {
    objects.push_back(
        DataObject::Point({rng.Uniform(0, 300), rng.Uniform(0, 300)}, i));
  }
  RStarTree str_tree = std::move(StrBulkLoad(objects)).value();
  RStarTree ins_tree;
  for (const DataObject& o : objects) ASSERT_TRUE(ins_tree.Insert(o).ok());

  ASSERT_TRUE(str_tree.Validate().ok());
  ASSERT_TRUE(ins_tree.Validate().ok());

  const geom::Rect everything({-10, -10}, {310, 310});
  std::vector<DataObject> a, b;
  ASSERT_TRUE(str_tree.RangeQuery(everything, &a).ok());
  ASSERT_TRUE(ins_tree.RangeQuery(everything, &b).ok());
  std::set<uint64_t> sa, sb;
  for (const DataObject& o : a) sa.insert(o.id);
  for (const DataObject& o : b) sb.insert(o.id);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa.size(), 800u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtreeVsLinearScan,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace rtree
}  // namespace conn
