// Unit tests for orientation, intersection, clipping, and the visibility
// blocking predicate (SegmentCrossesInterior) — the geometric bedrock of
// Definition 1's visibility semantics.

#include <gtest/gtest.h>

#include "geom/predicates.h"

namespace conn {
namespace geom {
namespace {

TEST(OrientationTest, Basic) {
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {0, 1}), 1);   // CCW
  EXPECT_EQ(Orientation({0, 0}, {0, 1}, {1, 0}), -1);  // CW
  EXPECT_EQ(Orientation({0, 0}, {1, 1}, {2, 2}), 0);   // collinear
}

TEST(SegmentsIntersectTest, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect(Segment({0, 0}, {4, 4}),
                                Segment({0, 4}, {4, 0})));
}

TEST(SegmentsIntersectTest, Disjoint) {
  EXPECT_FALSE(SegmentsIntersect(Segment({0, 0}, {1, 1}),
                                 Segment({2, 2}, {3, 3})));
  EXPECT_FALSE(SegmentsIntersect(Segment({0, 0}, {1, 0}),
                                 Segment({0, 1}, {1, 1})));
}

TEST(SegmentsIntersectTest, EndpointTouch) {
  EXPECT_TRUE(SegmentsIntersect(Segment({0, 0}, {2, 2}),
                                Segment({2, 2}, {4, 0})));
}

TEST(SegmentsIntersectTest, CollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect(Segment({0, 0}, {4, 0}),
                                Segment({2, 0}, {6, 0})));
  EXPECT_FALSE(SegmentsIntersect(Segment({0, 0}, {1, 0}),
                                 Segment({2, 0}, {3, 0})));
}

TEST(ClipSegmentTest, FullyInside) {
  double t0, t1;
  ASSERT_TRUE(ClipSegmentToRect(Segment({2, 2}, {3, 3}),
                                Rect({0, 0}, {10, 10}), &t0, &t1));
  EXPECT_DOUBLE_EQ(t0, 0.0);
  EXPECT_DOUBLE_EQ(t1, 1.0);
}

TEST(ClipSegmentTest, CrossingThrough) {
  double t0, t1;
  ASSERT_TRUE(ClipSegmentToRect(Segment({-5, 5}, {15, 5}),
                                Rect({0, 0}, {10, 10}), &t0, &t1));
  EXPECT_DOUBLE_EQ(t0, 0.25);
  EXPECT_DOUBLE_EQ(t1, 0.75);
}

TEST(ClipSegmentTest, Miss) {
  double t0, t1;
  EXPECT_FALSE(ClipSegmentToRect(Segment({-5, 20}, {15, 20}),
                                 Rect({0, 0}, {10, 10}), &t0, &t1));
}

TEST(ClipSegmentTest, GrazingCorner) {
  double t0, t1;
  // Diagonal through the corner (10,10) exactly.
  ASSERT_TRUE(ClipSegmentToRect(Segment({5, 15}, {15, 5}),
                                Rect({0, 0}, {10, 10}), &t0, &t1));
  EXPECT_NEAR(t0, t1, 1e-12);  // single touching point
}

TEST(SegmentCrossesInteriorTest, ThroughTheMiddle) {
  EXPECT_TRUE(SegmentCrossesInterior(Segment({-5, 5}, {15, 5}),
                                     Rect({0, 0}, {10, 10})));
}

TEST(SegmentCrossesInteriorTest, AlongEdgeIsAllowed) {
  // Grazing along the boundary must NOT block (shortest paths hug edges).
  EXPECT_FALSE(SegmentCrossesInterior(Segment({0, 0}, {10, 0}),
                                      Rect({0, 0}, {10, 10})));
  EXPECT_FALSE(SegmentCrossesInterior(Segment({-5, 10}, {15, 10}),
                                      Rect({0, 0}, {10, 10})));
}

TEST(SegmentCrossesInteriorTest, ThroughCornerIsAllowed) {
  EXPECT_FALSE(SegmentCrossesInterior(Segment({5, 15}, {15, 5}),
                                      Rect({0, 0}, {10, 10})));
}

TEST(SegmentCrossesInteriorTest, DiagonalOfTheRectBlocks) {
  // Corner-to-corner diagonal passes through the interior.
  EXPECT_TRUE(SegmentCrossesInterior(Segment({0, 0}, {10, 10}),
                                     Rect({0, 0}, {10, 10})));
}

TEST(SegmentCrossesInteriorTest, EndpointStrictlyInsideBlocks) {
  EXPECT_TRUE(SegmentCrossesInterior(Segment({5, 5}, {20, 5}),
                                     Rect({0, 0}, {10, 10})));
  EXPECT_TRUE(SegmentCrossesInterior(Segment({4, 4}, {6, 6}),
                                     Rect({0, 0}, {10, 10})));
}

TEST(SegmentCrossesInteriorTest, EndpointOnBoundaryAllowed) {
  // From a corner to the outside without entering.
  EXPECT_FALSE(SegmentCrossesInterior(Segment({10, 10}, {20, 20}),
                                      Rect({0, 0}, {10, 10})));
  // From one edge point leaving perpendicular.
  EXPECT_FALSE(SegmentCrossesInterior(Segment({5, 10}, {5, 20}),
                                      Rect({0, 0}, {10, 10})));
}

TEST(SegmentCrossesInteriorTest, DegenerateThinObstacleNeverBlocks) {
  // A rectangle thinner than 2*eps has no interior under our policy.
  EXPECT_FALSE(SegmentCrossesInterior(Segment({-5, 0.5}, {5, 0.5}),
                                      Rect({0, 0.5 - 1e-9}, {10, 0.5 + 1e-9})));
}

TEST(PointInInteriorTest, Basic) {
  const Rect r({0, 0}, {10, 10});
  EXPECT_TRUE(PointInInterior({5, 5}, r));
  EXPECT_FALSE(PointInInterior({0, 5}, r));    // on edge
  EXPECT_FALSE(PointInInterior({10, 10}, r));  // corner
  EXPECT_FALSE(PointInInterior({-1, 5}, r));
}

TEST(PointInTriangleTest, InsideOutsideBoundary) {
  const Vec2 a{0, 0}, b{10, 0}, c{0, 10};
  EXPECT_TRUE(PointInTriangle(a, b, c, {2, 2}));
  EXPECT_TRUE(PointInTriangle(a, b, c, {5, 0}));  // on edge counts
  EXPECT_TRUE(PointInTriangle(a, b, c, {0, 0}));  // vertex counts
  EXPECT_FALSE(PointInTriangle(a, b, c, {6, 6}));
  EXPECT_FALSE(PointInTriangle(a, b, c, {-1, 5}));
  // Winding order must not matter.
  EXPECT_TRUE(PointInTriangle(c, b, a, {2, 2}));
}

TEST(SegmentIntersectsRectTest, TouchCountsAsIntersect) {
  EXPECT_TRUE(SegmentIntersectsRect(Segment({-5, 0}, {5, 0}),
                                    Rect({0, 0}, {10, 10})));
  EXPECT_FALSE(SegmentIntersectsRect(Segment({-5, -1}, {5, -1}),
                                     Rect({0, 0}, {10, 10})));
}

}  // namespace
}  // namespace geom
}  // namespace conn
