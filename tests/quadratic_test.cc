// Unit and property tests for the stable quadratic solver underlying the
// split-point computation (Equation (1) of the paper).

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/quadratic.h"

namespace conn {
namespace geom {
namespace {

TEST(QuadraticTest, TwoDistinctRoots) {
  double r[2];
  // (x-2)(x-5) = x^2 - 7x + 10
  ASSERT_EQ(SolveQuadratic(1, -7, 10, r), 2);
  EXPECT_NEAR(r[0], 2.0, 1e-12);
  EXPECT_NEAR(r[1], 5.0, 1e-12);
}

TEST(QuadraticTest, DoubleRoot) {
  double r[2];
  // (x-3)^2
  ASSERT_EQ(SolveQuadratic(1, -6, 9, r), 1);
  EXPECT_NEAR(r[0], 3.0, 1e-9);
}

TEST(QuadraticTest, NoRealRoots) {
  double r[2];
  EXPECT_EQ(SolveQuadratic(1, 0, 1, r), 0);
}

TEST(QuadraticTest, LinearDegeneration) {
  double r[2];
  ASSERT_EQ(SolveQuadratic(0, 2, -8, r), 1);
  EXPECT_NEAR(r[0], 4.0, 1e-12);
}

TEST(QuadraticTest, ConstantNoRoots) {
  double r[2];
  EXPECT_EQ(SolveQuadratic(0, 0, 5, r), 0);
  EXPECT_EQ(SolveQuadratic(0, 0, 0, r), 0);  // identity handled by caller
}

TEST(QuadraticTest, CancellationResistance) {
  // x^2 - 1e8 x + 1 = 0: roots ~1e8 and ~1e-8.  The naive formula loses the
  // small root to cancellation; Citardauq must not.
  double r[2];
  ASSERT_EQ(SolveQuadratic(1, -1e8, 1, r), 2);
  EXPECT_NEAR(r[0], 1e-8, 1e-16);
  EXPECT_NEAR(r[1], 1e8, 1e-4);
}

TEST(QuadraticTest, NegativeLeadingCoefficient) {
  double r[2];
  // -(x-1)(x-4) = -x^2 + 5x - 4
  ASSERT_EQ(SolveQuadratic(-1, 5, -4, r), 2);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
  EXPECT_NEAR(r[1], 4.0, 1e-12);
}

class QuadraticProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuadraticProperty, RootsSatisfyEquation) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    const double a = rng.Uniform(-10, 10);
    const double b = rng.Uniform(-100, 100);
    const double c = rng.Uniform(-100, 100);
    double r[2];
    const int n = SolveQuadratic(a, b, c, r);
    const double scale =
        std::max({std::abs(a), std::abs(b), std::abs(c), 1.0});
    for (int i = 0; i < n; ++i) {
      const double residual = a * r[i] * r[i] + b * r[i] + c;
      EXPECT_LE(std::abs(residual), 1e-6 * scale * (1.0 + r[i] * r[i]))
          << "a=" << a << " b=" << b << " c=" << c << " root=" << r[i];
    }
    if (n == 2) {
      EXPECT_LE(r[0], r[1]);
    }
  }
}

TEST_P(QuadraticProperty, ConstructedRootsAreRecovered) {
  Rng rng(GetParam() ^ 0x5EED);
  for (int iter = 0; iter < 500; ++iter) {
    const double x1 = rng.Uniform(-50, 50);
    const double x2 = rng.Uniform(-50, 50);
    const double a = rng.Uniform(0.1, 5.0);
    // a(x - x1)(x - x2)
    double r[2];
    const int n = SolveQuadratic(a, -a * (x1 + x2), a * x1 * x2, r);
    if (std::abs(x1 - x2) < 1e-5) continue;  // near-double roots: skip
    ASSERT_EQ(n, 2) << "x1=" << x1 << " x2=" << x2;
    EXPECT_NEAR(r[0], std::min(x1, x2),
                1e-6 * (1 + std::abs(x1) + std::abs(x2)));
    EXPECT_NEAR(r[1], std::max(x1, x2),
                1e-6 * (1 + std::abs(x1) + std::abs(x2)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuadraticProperty,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace geom
}  // namespace conn
