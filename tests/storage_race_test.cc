// Concurrency tests for the pin/unpin buffer pool, run under the tsan
// preset (label "exec") alongside the batch-executor suite: many threads
// fetch, pin, read, and release pages of one shared Pager while eviction
// churns, which is exactly what BatchRunner's workers do to a tree's pool.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "rtree/rstar_tree.h"
#include "rtree/str_bulk_load.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/pool_tuning.h"
#include "storage_test_util.h"

namespace conn {
namespace storage {
namespace {

void RunChurn(EvictionPolicy policy, bool async_io = false,
              size_t capacity_pages = kFramesPerShard / kA1inTargetDivisor,
              size_t pages = 64) {
  const size_t kPages = pages;
  constexpr size_t kThreads = 4;
  constexpr size_t kOpsPerThread = 1500;

  Pager pager;
  for (size_t i = 0; i < kPages; ++i) {
    const PageId id = pager.Allocate();
    ASSERT_TRUE(pager.Write(id, StampedPage(id)).ok());
  }
  BufferOptions opts;
  // Default capacity is a quarter of one latch shard's frame budget
  // (pool_tuning.h): a single-shard pool far below the working set, so
  // eviction churns constantly and stays churning if the shard sizing
  // ever changes.  The fan-out variant below overrides it to span many
  // shards of the lifted kMaxShards cap.
  opts.capacity_pages = capacity_pages;
  opts.policy = policy;
  opts.async_io = async_io;
  pager.ConfigureBuffer(opts);
  pager.ResetCounters();

  std::atomic<uint64_t> corrupt{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xBEEF + t);
      std::vector<PinnedPage> held;  // pins held across later fetches
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        // Skew toward a hot set so hits, misses, and evictions all happen.
        const PageId id = rng.Bernoulli(0.5)
                              ? static_cast<PageId>(rng.UniformU64(8))
                              : static_cast<PageId>(rng.UniformU64(kPages));
        StatusOr<PinnedPage> view = pager.Fetch(id);
        if (!view.ok() || !PageMatchesStamp(view.value().page(), id)) {
          corrupt.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Exercise the decoded-object slot under contention.
        if (view.value().decoded() == nullptr && rng.Bernoulli(0.25)) {
          view.value().SetDecoded(std::make_shared<PageId>(id));
        } else if (view.value().decoded() != nullptr &&
                   *std::static_pointer_cast<const PageId>(
                       view.value().decoded()) != id) {
          corrupt.fetch_add(1, std::memory_order_relaxed);
        }
        // Sometimes keep the pin alive across future fetches/evictions.
        if (rng.Bernoulli(0.2)) {
          held.push_back(std::move(view).value());
          if (held.size() > 4) held.erase(held.begin());
        }
      }
      // Re-check pages still pinned at the end: their bytes never moved.
      for (const PinnedPage& p : held) {
        if (!PageMatchesStamp(p.page(), p.id())) {
          corrupt.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(corrupt.load(), 0u);
  EXPECT_EQ(pager.buffer_pool().PinnedFrames(), 0u);  // no leaked pins
  // Every fetch resolved to exactly one hit or one fault.
  EXPECT_EQ(pager.faults() + pager.hits(), kThreads * kOpsPerThread);
}

TEST(StorageRaceTest, ConcurrentFetchPinUnpinChurnTwoQueue) {
  RunChurn(EvictionPolicy::kTwoQueue);
}

TEST(StorageRaceTest, ConcurrentFetchPinUnpinChurnExactLru) {
  RunChurn(EvictionPolicy::kExactLru);
}

// Same churn with every miss routed through the async pipeline's demand
// class: fetching threads now rendezvous with the I/O workers, and the
// one-hit-or-one-fault accounting invariant must survive the handoff.
TEST(StorageRaceTest, ConcurrentChurnAsyncPipelineTwoQueue) {
  RunChurn(EvictionPolicy::kTwoQueue, /*async_io=*/true);
}

TEST(StorageRaceTest, ConcurrentChurnAsyncPipelineExactLru) {
  RunChurn(EvictionPolicy::kExactLru, /*async_io=*/true);
}

// Churn across a pool spanning many latch shards of the lifted kMaxShards
// cap (pool_tuning.h), async pipeline on: evictions, staging inserts, and
// pin traffic spread over the full fan-out instead of one latch.
TEST(StorageRaceTest, ConcurrentChurnAcrossLiftedShardFanout) {
  RunChurn(EvictionPolicy::kTwoQueue, /*async_io=*/true,
           /*capacity_pages=*/8 * kFramesPerShard, /*pages=*/1024);
}

TEST(StorageRaceTest, ConcurrentTreeTraversalsShareOnePool) {
  // Four threads range-scan one tree whose pool is much smaller than the
  // tree, so frames churn while every thread parses nodes from pinned
  // memory and installs/consumes decoded-node cache entries.
  constexpr size_t kObjects = 4000;
  std::vector<rtree::DataObject> objs;
  Rng rng(0x7EA);
  objs.reserve(kObjects);
  for (size_t i = 0; i < kObjects; ++i) {
    objs.push_back(rtree::DataObject::Point(
        {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, i));
  }
  rtree::RStarTree tree =
      std::move(rtree::StrBulkLoad(std::move(objs)).value());
  tree.pager().SetBufferCapacity(kFramesPerShard / kA1inTargetDivisor);

  // Single-threaded reference counts per window.
  std::vector<geom::Rect> windows;
  std::vector<size_t> expected;
  Rng wrng(0x51DE);
  for (int i = 0; i < 32; ++i) {
    const double x = wrng.Uniform(0, 900), y = wrng.Uniform(0, 900);
    windows.push_back(geom::Rect({x, y}, {x + 100, y + 100}));
    std::vector<rtree::DataObject> out;
    ASSERT_TRUE(tree.RangeQuery(windows.back(), &out).ok());
    expected.push_back(out.size());
  }

  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (size_t round = 0; round < 8; ++round) {
        for (size_t w = 0; w < windows.size(); ++w) {
          std::vector<rtree::DataObject> out;
          if (!tree.RangeQuery(windows[w], &out).ok() ||
              out.size() != expected[w]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(tree.pager().buffer_pool().PinnedFrames(), 0u);
}

}  // namespace
}  // namespace storage
}  // namespace conn
