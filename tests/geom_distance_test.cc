// Unit tests for the Euclidean distance metrics, especially
// MinDistRectSegment — the R-tree pruning metric mindist(N, q).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/distance.h"

namespace conn {
namespace geom {
namespace {

TEST(DistPointSegmentTest, ProjectionInside) {
  EXPECT_DOUBLE_EQ(DistPointSegment({5, 3}, Segment({0, 0}, {10, 0})), 3.0);
}

TEST(DistPointSegmentTest, ClampsToEndpoints) {
  EXPECT_DOUBLE_EQ(DistPointSegment({-3, 4}, Segment({0, 0}, {10, 0})), 5.0);
  EXPECT_DOUBLE_EQ(DistPointSegment({13, 4}, Segment({0, 0}, {10, 0})), 5.0);
}

TEST(DistPointSegmentTest, ZeroLengthSegment) {
  EXPECT_DOUBLE_EQ(DistPointSegment({3, 4}, Segment({0, 0}, {0, 0})), 5.0);
}

TEST(ClosestParamTest, Basic) {
  const Segment s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(ClosestParamOnSegment({4, 7}, s), 4.0);
  EXPECT_DOUBLE_EQ(ClosestParamOnSegment({-5, 0}, s), 0.0);
  EXPECT_DOUBLE_EQ(ClosestParamOnSegment({50, 0}, s), 10.0);
}

TEST(DistSegmentSegmentTest, IntersectingIsZero) {
  EXPECT_DOUBLE_EQ(DistSegmentSegment(Segment({0, 0}, {4, 4}),
                                      Segment({0, 4}, {4, 0})),
                   0.0);
}

TEST(DistSegmentSegmentTest, ParallelSegments) {
  EXPECT_DOUBLE_EQ(DistSegmentSegment(Segment({0, 0}, {10, 0}),
                                      Segment({0, 3}, {10, 3})),
                   3.0);
}

TEST(DistSegmentSegmentTest, EndpointToInterior) {
  EXPECT_DOUBLE_EQ(DistSegmentSegment(Segment({0, 0}, {10, 0}),
                                      Segment({5, 2}, {5, 9})),
                   2.0);
}

TEST(MinDistRectPointTest, InsideIsZero) {
  EXPECT_DOUBLE_EQ(MinDistRectPoint(Rect({0, 0}, {10, 10}), {5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(MinDistRectPoint(Rect({0, 0}, {10, 10}), {10, 10}), 0.0);
}

TEST(MinDistRectPointTest, SideAndCorner) {
  const Rect r({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(MinDistRectPoint(r, {15, 5}), 5.0);   // side
  EXPECT_DOUBLE_EQ(MinDistRectPoint(r, {13, 14}), 5.0);  // corner 3-4-5
}

TEST(MinDistRectSegmentTest, IntersectingIsZero) {
  EXPECT_DOUBLE_EQ(
      MinDistRectSegment(Rect({0, 0}, {10, 10}), Segment({-5, 5}, {15, 5})),
      0.0);
}

TEST(MinDistRectSegmentTest, SegmentBesideRect) {
  EXPECT_DOUBLE_EQ(
      MinDistRectSegment(Rect({0, 0}, {10, 10}), Segment({12, 0}, {12, 10})),
      2.0);
}

TEST(MinDistRectSegmentTest, DiagonalApproach) {
  EXPECT_NEAR(
      MinDistRectSegment(Rect({0, 0}, {10, 10}), Segment({13, 14}, {20, 20})),
      5.0, 1e-12);
}

TEST(MinDistRectSegmentTest, MatchesBruteForceSampling) {
  // Property check against dense sampling of both the segment and the rect
  // boundary.
  Rng rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    const Rect r = Rect::FromCorners(
        {rng.Uniform(0, 100), rng.Uniform(0, 100)},
        {rng.Uniform(0, 100), rng.Uniform(0, 100)});
    const Segment s({rng.Uniform(0, 100), rng.Uniform(0, 100)},
                    {rng.Uniform(0, 100), rng.Uniform(0, 100)});
    const double fast = MinDistRectSegment(r, s);
    double brute = 1e300;
    for (int i = 0; i <= 64; ++i) {
      const Vec2 p = s.At(s.Length() * i / 64.0);
      brute = std::min(brute, MinDistRectPoint(r, p));
    }
    // Sampling can only overestimate the true minimum.
    EXPECT_LE(fast, brute + 1e-9);
    EXPECT_GE(fast, brute - 2.0);  // coarse lower sanity bound
  }
}

TEST(MinDistRectRectTest, Cases) {
  const Rect a({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(MinDistRectRect(a, Rect({5, 5}, {20, 20})), 0.0);
  EXPECT_DOUBLE_EQ(MinDistRectRect(a, Rect({15, 0}, {20, 10})), 5.0);
  EXPECT_DOUBLE_EQ(MinDistRectRect(a, Rect({13, 14}, {20, 20})), 5.0);
}

TEST(MaxDistRectPointTest, FarthestCorner) {
  const Rect r({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(MaxDistRectPoint(r, {0, 0}), std::sqrt(200.0));
  EXPECT_DOUBLE_EQ(MaxDistRectPoint(r, {-3, -4}), std::hypot(13.0, 14.0));
}

}  // namespace
}  // namespace geom
}  // namespace conn
