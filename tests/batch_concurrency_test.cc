// Concurrency hammer for the batch executor, written to be run under
// ThreadSanitizer (the `tsan` preset's CI job): many worker threads share
// one dataset's trees — and therefore one Pager per tree — while separate
// batches run concurrently against the same runner.  Buffered and
// unbuffered pager configurations are both exercised (they take different
// locking paths).

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/workload.h"
#include "exec/batch.h"
#include "test_util.h"

namespace conn {
namespace exec {
namespace {

std::vector<BatchQuery> HammerQueries(const testutil::Scene& scene,
                                      size_t count, uint64_t seed) {
  datagen::WorkloadOptions wopts;
  wopts.query_length = 300.0;
  std::vector<BatchQuery> batch;
  for (const geom::Segment& q :
       datagen::MakeWorkload(count, scene.domain, wopts, {}, seed)) {
    batch.push_back(BatchQuery::Coknn(q, 2));
  }
  return batch;
}

TEST(BatchConcurrency, ManyThreadsHammerOneDataset) {
  const testutil::Scene scene = testutil::MakeScene(77, 70, 25);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  // Buffered pagers: concurrent reads contend on the LRU lock.
  tp.pager().SetBufferCapacity(16);
  to.pager().SetBufferCapacity(16);

  const std::vector<BatchQuery> batch = HammerQueries(scene, 16, 990);

  BatchOptions opts;
  opts.num_threads = 8;
  opts.target_shard_size = 2;  // many shards -> all workers busy
  const BatchRunner runner(tp, to, opts);
  const BatchResult result = runner.Run(batch);

  ASSERT_EQ(result.outcomes.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(result.outcomes[i].coknn.has_value()) << "query " << i;
    const core::CoknnResult want =
        core::CoknnQuery(tp, to, batch[i].segment, batch[i].k);
    const core::CoknnResult& got = *result.outcomes[i].coknn;
    ASSERT_EQ(got.tuples.size(), want.tuples.size()) << "query " << i;
    for (size_t j = 0; j < got.tuples.size(); ++j) {
      EXPECT_EQ(got.tuples[j].range.lo, want.tuples[j].range.lo);
      EXPECT_EQ(got.tuples[j].range.hi, want.tuples[j].range.hi);
      ASSERT_EQ(got.tuples[j].candidates.size(),
                want.tuples[j].candidates.size());
      for (size_t c = 0; c < got.tuples[j].candidates.size(); ++c) {
        EXPECT_EQ(got.tuples[j].candidates[c].pid,
                  want.tuples[j].candidates[c].pid);
      }
    }
  }
  tp.pager().SetBufferCapacity(0);
  to.pager().SetBufferCapacity(0);
}

TEST(BatchConcurrency, ConcurrentBatchesShareTreesSafely) {
  const testutil::Scene scene = testutil::MakeScene(78, 60, 20);
  const rtree::RStarTree unified = testutil::MakeUnifiedTree(scene);

  const std::vector<BatchQuery> batch_a = HammerQueries(scene, 10, 991);
  const std::vector<BatchQuery> batch_b = HammerQueries(scene, 10, 992);

  BatchOptions opts;
  opts.num_threads = 3;
  opts.target_shard_size = 2;
  const BatchRunner runner(unified, opts);

  // Run() is const and reentrant: two batches in flight on one runner,
  // hammering one unbuffered pager from up to six workers.
  BatchResult ra, rb;
  std::thread ta([&] { ra = runner.Run(batch_a); });
  std::thread tb([&] { rb = runner.Run(batch_b); });
  ta.join();
  tb.join();

  ASSERT_EQ(ra.outcomes.size(), batch_a.size());
  ASSERT_EQ(rb.outcomes.size(), batch_b.size());
  for (size_t i = 0; i < batch_a.size(); ++i) {
    const core::CoknnResult want =
        core::CoknnQuery1T(unified, batch_a[i].segment, batch_a[i].k);
    ASSERT_TRUE(ra.outcomes[i].coknn.has_value());
    EXPECT_EQ(ra.outcomes[i].coknn->tuples.size(), want.tuples.size())
        << "query " << i;
  }
  // The batch-level fault accounting moved (reads happened) and the
  // per-query totals accumulated exactly one entry per query.
  EXPECT_GT(ra.stats.data_page_faults + rb.stats.data_page_faults, 0u);
  EXPECT_EQ(ra.stats.per_query_totals.points_evaluated +
                rb.stats.per_query_totals.points_evaluated,
            [&] {
              uint64_t total = 0;
              for (const auto& o : ra.outcomes) {
                total += o.coknn->stats.points_evaluated;
              }
              for (const auto& o : rb.outcomes) {
                total += o.coknn->stats.points_evaluated;
              }
              return total;
            }());
}

}  // namespace
}  // namespace exec
}  // namespace conn
