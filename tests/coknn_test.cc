// Tests for COkNN (Section 4.5): k=1 equivalence with CONN, candidate-set
// semantics, and a full property sweep against brute-force k-ONN sampling.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/coknn.h"
#include "core/conn.h"
#include "core/naive.h"
#include "test_util.h"

namespace conn {
namespace core {
namespace {

TEST(CoknnTest, KnnListStartsEmptyWithInfiniteBound) {
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {100, 0}));
  KnnResultList rl(geom::IntervalSet{geom::Interval(0, 100)}, 3);
  EXPECT_TRUE(std::isinf(rl.RlMax(frame)));
}

TEST(CoknnTest, FewerThanKCandidatesKeepsInfiniteBound) {
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {100, 0}));
  KnnResultList rl(geom::IntervalSet{geom::Interval(0, 100)}, 2);
  ControlPointList cpl = {
      CplEntry{true, {50, 10}, 0.0, geom::Interval(0, 100)}};
  rl.Update(1, cpl, frame, nullptr);
  EXPECT_TRUE(std::isinf(rl.RlMax(frame)));  // only 1 of 2 candidates
  ControlPointList cpl2 = {
      CplEntry{true, {20, 5}, 0.0, geom::Interval(0, 100)}};
  rl.Update(2, cpl2, frame, nullptr);
  EXPECT_TRUE(std::isfinite(rl.RlMax(frame)));
}

TEST(CoknnTest, SetChangesCreateSplits) {
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {100, 0}));
  KnnResultList rl(geom::IntervalSet{geom::Interval(0, 100)}, 1);
  ControlPointList a = {CplEntry{true, {30, 10}, 0.0, geom::Interval(0, 100)}};
  ControlPointList b = {CplEntry{true, {70, 10}, 0.0, geom::Interval(0, 100)}};
  rl.Update(1, a, frame, nullptr);
  rl.Update(2, b, frame, nullptr);
  ASSERT_EQ(rl.tuples().size(), 2u);
  EXPECT_EQ(rl.tuples()[0].candidates[0].pid, 1);
  EXPECT_EQ(rl.tuples()[1].candidates[0].pid, 2);
  EXPECT_NEAR(rl.tuples()[0].range.hi, 50.0, 1e-9);
}

TEST(CoknnTest, KeepsBothCandidatesWithoutSplitWhenKIs2) {
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {100, 0}));
  KnnResultList rl(geom::IntervalSet{geom::Interval(0, 100)}, 2);
  ControlPointList a = {CplEntry{true, {30, 10}, 0.0, geom::Interval(0, 100)}};
  ControlPointList b = {CplEntry{true, {70, 10}, 0.0, geom::Interval(0, 100)}};
  rl.Update(1, a, frame, nullptr);
  rl.Update(2, b, frame, nullptr);
  // The SET {1,2} is constant along q even though the order flips at 50.
  ASSERT_EQ(rl.tuples().size(), 1u);
  EXPECT_EQ(rl.tuples()[0].candidates.size(), 2u);
}

class CoknnEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoknnEquivalence, KOneEqualsConn) {
  const testutil::Scene scene = testutil::MakeScene(GetParam(), 50, 15);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);

  const ConnResult conn = ConnQuery(tp, to, scene.query);
  const CoknnResult k1 = CoknnQuery(tp, to, scene.query, 1);

  for (int i = 0; i <= 200; ++i) {
    const double t = scene.query.Length() * (i + 0.5) / 201.0;
    if (conn.unreachable.Contains(t, 1e-3)) continue;
    const double a = conn.OdistAt(t);
    const double b = k1.OdistAt(t, 0);
    if (std::isinf(a) || std::isinf(b)) {
      EXPECT_EQ(std::isinf(a), std::isinf(b)) << "t=" << t;
    } else {
      EXPECT_NEAR(a, b, 1e-6 * (1 + a)) << "t=" << t;
    }
  }
}

TEST_P(CoknnEquivalence, MatchesOracleKDistancesAtSamples) {
  const testutil::Scene scene =
      testutil::MakeScene(GetParam() ^ 0xFACE, 40, 12);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const NaiveOracle oracle(scene.points, scene.obstacles);
  const size_t k = 3;
  const CoknnResult r = CoknnQuery(tp, to, scene.query, k);

  for (int i = 0; i <= 120; ++i) {
    const double t = scene.query.Length() * i / 120.0;
    if (r.unreachable.Contains(t, 1e-3)) continue;
    // Skip samples near tuple boundaries (either side valid).
    bool near_boundary = false;
    for (const CoknnTuple& tup : r.tuples) {
      if (std::abs(t - tup.range.lo) < 1e-3 ||
          std::abs(t - tup.range.hi) < 1e-3) {
        near_boundary = true;
      }
    }
    if (near_boundary) continue;

    const auto want = oracle.OnnAt(scene.query.At(t), k);
    for (size_t j = 0; j < want.size(); ++j) {
      const double got = r.OdistAt(t, j);
      EXPECT_NEAR(got, want[j].second, 1e-5 * (1 + want[j].second))
          << "seed=" << GetParam() << " t=" << t << " rank=" << j;
    }
  }
}

TEST_P(CoknnEquivalence, CandidateSetsAreDistinctPids) {
  const testutil::Scene scene =
      testutil::MakeScene(GetParam() ^ 0xD00D, 30, 10);
  const rtree::RStarTree tp = testutil::MakePointTree(scene);
  const rtree::RStarTree to = testutil::MakeObstacleTree(scene);
  const CoknnResult r = CoknnQuery(tp, to, scene.query, 4);
  for (const CoknnTuple& tup : r.tuples) {
    std::set<int64_t> pids;
    for (const KnnCandidate& c : tup.candidates) pids.insert(c.pid);
    EXPECT_EQ(pids.size(), tup.candidates.size())
        << "duplicate pid in one interval's candidate set";
    EXPECT_LE(tup.candidates.size(), 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoknnEquivalence,
                         ::testing::Range<uint64_t>(1, 9));

TEST(CoknnTest, CrossingWithinEpsOfIntervalEndDoesNotCreateSliver) {
  // Candidate 1: curve t (cp at the segment start).  Candidate 2: curve
  // (100 - t) + (100 - 1e-7), crossing candidate 1 at t = 100 - 5e-8 —
  // within kEpsParam of the interval end.  The eps-tolerant dedupe of the
  // split breaks swallows the terminal break at 100; the clamp must pull
  // the surviving break onto 100 instead of re-appending an eps-sliver.
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {100, 0}));
  KnnResultList rl(geom::IntervalSet{geom::Interval(0, 100)}, 1);
  ControlPointList a = {CplEntry{true, {0, 0}, 0.0, geom::Interval(0, 100)}};
  ControlPointList b = {
      CplEntry{true, {100, 0}, 100.0 - 1e-7, geom::Interval(0, 100)}};
  rl.Update(1, a, frame, nullptr);
  rl.Update(2, b, frame, nullptr);

  ASSERT_FALSE(rl.tuples().empty());
  // The tuples tile [0, 100] exactly — the last boundary lands on 100,
  // not on the eps-shifted crossing — and no eps-sliver survives.
  EXPECT_EQ(rl.tuples().front().range.lo, 0.0);
  EXPECT_EQ(rl.tuples().back().range.hi, 100.0);
  for (size_t i = 0; i + 1 < rl.tuples().size(); ++i) {
    EXPECT_EQ(rl.tuples()[i].range.hi, rl.tuples()[i + 1].range.lo);
  }
  for (const CoknnTuple& tup : rl.tuples()) {
    EXPECT_GT(tup.range.Length(), geom::kEpsSliver);
  }
  // Candidate 1 wins everywhere but the eps-neighborhood of 100.
  ASSERT_EQ(rl.tuples().size(), 1u);
  EXPECT_EQ(rl.tuples()[0].candidates[0].pid, 1);
}

TEST(CoknnTest, FindTupleBinarySearchMatchesLinearSemantics) {
  CoknnResult r;
  r.query = geom::Segment({0, 0}, {100, 0});
  r.k = 1;
  CoknnTuple first;
  first.range = geom::Interval(0, 40);
  first.candidates.push_back(KnnCandidate{1, {20, 0}, 0.0});
  CoknnTuple second;
  second.range = geom::Interval(40, 100);
  second.candidates.push_back(KnnCandidate{2, {70, 0}, 0.0});
  r.tuples = {first, second};

  EXPECT_EQ(r.FindTuple(10.0), &r.tuples[0]);
  EXPECT_EQ(r.FindTuple(70.0), &r.tuples[1]);
  // A shared boundary belongs to the earlier tuple (first-match semantics
  // of the former linear scan).
  EXPECT_EQ(r.FindTuple(40.0), &r.tuples[0]);
  EXPECT_EQ(r.FindTuple(0.0), &r.tuples[0]);
  EXPECT_EQ(r.FindTuple(100.0), &r.tuples[1]);
  EXPECT_EQ(r.FindTuple(-5.0), nullptr);
  EXPECT_EQ(r.FindTuple(105.0), nullptr);

  EXPECT_EQ(r.KnnAt(10.0), std::vector<int64_t>{1});
  EXPECT_EQ(r.KnnAt(70.0), std::vector<int64_t>{2});
  EXPECT_TRUE(r.KnnAt(-5.0).empty());

  // Frame-hoisted overloads agree with the convenience versions.
  const geom::SegmentFrame frame(r.query);
  for (double t : {0.0, 10.0, 40.0, 70.0, 100.0}) {
    EXPECT_EQ(r.KnnAt(t), r.KnnAt(t, frame)) << "t=" << t;
    EXPECT_EQ(r.OdistAt(t, 0), r.OdistAt(t, 0, frame)) << "t=" << t;
  }
  EXPECT_TRUE(std::isinf(r.OdistAt(10.0, 5)));  // rank beyond candidate set
}

}  // namespace
}  // namespace core
}  // namespace conn
