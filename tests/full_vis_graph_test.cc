// Tests for the global (complete) visibility graph baseline of Section 2.4.

#include <cmath>

#include <gtest/gtest.h>

#include "vis/full_vis_graph.h"

namespace conn {
namespace vis {
namespace {

TEST(FullVisGraphTest, VertexCountIsFourPerObstaclePlusPoints) {
  FullVisGraph g(
      {geom::Rect({0, 0}, {10, 10}), geom::Rect({20, 20}, {30, 30})});
  EXPECT_EQ(g.VertexCount(), 8u);  // the paper's FULL = 4|O|
  g.AddPoint({50, 50});
  EXPECT_EQ(g.VertexCount(), 9u);
}

TEST(FullVisGraphTest, DirectPathNoObstacles) {
  FullVisGraph g({});
  const VertexId a = g.AddPoint({0, 0});
  const VertexId b = g.AddPoint({30, 40});
  g.Build();
  EXPECT_DOUBLE_EQ(g.Distance(a, b), 50.0);
}

TEST(FullVisGraphTest, DetourAroundWall) {
  FullVisGraph g({geom::Rect({45, -30}, {55, 30})});
  const VertexId a = g.AddPoint({0, 0});
  const VertexId b = g.AddPoint({100, 0});
  g.Build();
  const double expected = std::hypot(45, 30) + 10 + std::hypot(45, 30);
  EXPECT_NEAR(g.Distance(a, b), expected, 1e-9);
}

TEST(FullVisGraphTest, FigureTwoTopology) {
  // Qualitative reproduction of Figure 2 of the paper: the shortest path
  // from ps to pe routes around the obstacles via corner vertices.
  const geom::Rect o1({20, 35}, {45, 60});  // upper obstacle
  const geom::Rect o2({35, 5}, {70, 34});   // lower obstacle (blocks the
                                            // straight ps-pe line)
  FullVisGraph g({o1, o2});
  const VertexId ps = g.AddPoint({5, 30});
  const VertexId pe = g.AddPoint({90, 40});
  g.Build();
  const double d = g.Distance(ps, pe);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GT(d, geom::Dist({5, 30}, {90, 40}));  // a detour was needed
}

TEST(FullVisGraphTest, UnreachableEnclosure) {
  // A point sealed inside a box of overlapping obstacles.
  FullVisGraph g(
      {geom::Rect({40, 40}, {60, 45}), geom::Rect({40, 55}, {60, 60}),
       geom::Rect({40, 40}, {45, 60}), geom::Rect({55, 40}, {60, 60})});
  const VertexId inside = g.AddPoint({50, 50});
  const VertexId outside = g.AddPoint({0, 0});
  g.Build();
  EXPECT_TRUE(std::isinf(g.Distance(outside, inside)));
}

TEST(FullVisGraphTest, DistancesFromLocationMatchesAddedPoint) {
  const std::vector<geom::Rect> obstacles = {geom::Rect({30, 10}, {50, 40})};
  const geom::Vec2 probe{5, 25};

  FullVisGraph g1(obstacles);
  const VertexId target = g1.AddPoint({95, 25});
  g1.Build();
  const std::vector<double> dist = g1.DistancesFromLocation(probe);

  FullVisGraph g2(obstacles);
  const VertexId t2 = g2.AddPoint({95, 25});
  const VertexId s2 = g2.AddPoint(probe);
  g2.Build();
  EXPECT_NEAR(dist[target], g2.Distance(s2, t2), 1e-9);
}

}  // namespace
}  // namespace vis
}  // namespace conn
