// Unit tests for the R*-tree: node serialization, insertion, splitting,
// deletion, structural validation, and the query operations.

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rtree/best_first.h"
#include "rtree/node.h"
#include "rtree/rstar_tree.h"
#include "rtree/str_bulk_load.h"

namespace conn {
namespace rtree {
namespace {

TEST(NodeTest, PageRoundTrip) {
  Node n;
  n.level = 3;
  for (int i = 0; i < 50; ++i) {
    NodeEntry e;
    e.rect = geom::Rect({i * 1.0, i * 2.0}, {i * 1.0 + 1, i * 2.0 + 1});
    e.payload = static_cast<uint64_t>(i) * 7 + 1;
    n.entries.push_back(e);
  }
  storage::Page page;
  n.ToPage(&page);
  const Node m = Node::FromPage(page);
  EXPECT_EQ(m.level, 3);
  ASSERT_EQ(m.entries.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(m.entries[i].rect, n.entries[i].rect);
    EXPECT_EQ(m.entries[i].payload, n.entries[i].payload);
  }
}

TEST(NodeTest, CapacityMatchesPageLayout) {
  // 4 KB page, 8-byte header, 40-byte entries.
  EXPECT_EQ(kNodeCapacity, (4096u - 8u) / 40u);
  EXPECT_GE(kNodeMinFill, kNodeCapacity * 2 / 5);
  EXPECT_LT(kNodeMinFill, kNodeCapacity / 2 + 1);
}

TEST(LeafPayloadTest, EncodesIdAndKind) {
  const uint64_t enc = NodeEntry::EncodeLeaf(12345, ObjectKind::kObstacle);
  NodeEntry e;
  e.payload = enc;
  EXPECT_EQ(e.DecodeId(), 12345u);
  EXPECT_EQ(e.DecodeKind(), ObjectKind::kObstacle);
}

TEST(RStarTreeTest, EmptyTree) {
  RStarTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 1u);
  ASSERT_TRUE(tree.Validate().ok());
  std::vector<DataObject> out;
  ASSERT_TRUE(tree.RangeQuery(geom::Rect({0, 0}, {10, 10}), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(RStarTreeTest, InsertAndRangeQuery) {
  RStarTree tree;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        tree.Insert(DataObject::Point({i * 1.0, i * 1.0}, i)).ok());
  }
  EXPECT_EQ(tree.size(), 100u);
  ASSERT_TRUE(tree.Validate().ok());

  std::vector<DataObject> out;
  ASSERT_TRUE(tree.RangeQuery(geom::Rect({10, 10}, {20, 20}), &out).ok());
  EXPECT_EQ(out.size(), 11u);  // points 10..20
}

TEST(RStarTreeTest, GrowsAndSplits) {
  RStarTree tree;
  Rng rng(7);
  const size_t n = 1000;  // forces multiple levels (capacity 102)
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Insert(DataObject::Point(
                        {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, i))
                    .ok());
  }
  EXPECT_EQ(tree.size(), n);
  EXPECT_GE(tree.Height(), 2u);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
}

TEST(RStarTreeTest, InvalidRectRejected) {
  RStarTree tree;
  DataObject bad;
  bad.rect = geom::Rect({5, 5}, {1, 1});  // hi < lo
  EXPECT_EQ(tree.Insert(bad).code(), StatusCode::kInvalidArgument);
}

TEST(RStarTreeTest, DeleteExistingAndMissing) {
  RStarTree tree;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Insert(DataObject::Point({i * 3.0, 10.0}, i)).ok());
  }
  ASSERT_TRUE(tree.Delete(DataObject::Point({30.0, 10.0}, 10)).ok());
  EXPECT_EQ(tree.size(), 299u);
  ASSERT_TRUE(tree.Validate().ok());
  // Deleting again: not found.
  EXPECT_EQ(tree.Delete(DataObject::Point({30.0, 10.0}, 10)).code(),
            StatusCode::kNotFound);
  // Wrong id at an existing location: not found.
  EXPECT_EQ(tree.Delete(DataObject::Point({33.0, 10.0}, 99)).code(),
            StatusCode::kNotFound);
}

TEST(RStarTreeTest, SegmentIntersectionQuery) {
  RStarTree tree;
  ASSERT_TRUE(
      tree.Insert(DataObject::Obstacle(geom::Rect({0, 0}, {10, 10}), 0)).ok());
  ASSERT_TRUE(
      tree.Insert(DataObject::Obstacle(geom::Rect({20, 0}, {30, 10}), 1)).ok());
  ASSERT_TRUE(
      tree.Insert(DataObject::Obstacle(geom::Rect({40, 40}, {50, 50}), 2))
          .ok());
  std::vector<DataObject> out;
  ASSERT_TRUE(
      tree.SegmentIntersectionQuery(geom::Segment({-5, 5}, {35, 5}), &out)
          .ok());
  ASSERT_EQ(out.size(), 2u);
  std::vector<uint64_t> ids = {out[0].id, out[1].id};
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 1u);
}

TEST(StrBulkLoadTest, BuildsValidTreeWithAllObjects) {
  std::vector<DataObject> objects;
  Rng rng(11);
  for (size_t i = 0; i < 5000; ++i) {
    objects.push_back(
        DataObject::Point({rng.Uniform(0, 1000), rng.Uniform(0, 1000)}, i));
  }
  auto loaded = StrBulkLoad(objects);
  ASSERT_TRUE(loaded.ok());
  RStarTree tree = std::move(loaded).value();
  EXPECT_EQ(tree.size(), 5000u);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();

  // Every object is findable.
  std::vector<DataObject> out;
  ASSERT_TRUE(tree.RangeQuery(geom::Rect({0, 0}, {1000, 1000}), &out).ok());
  EXPECT_EQ(out.size(), 5000u);
}

TEST(StrBulkLoadTest, FullPackingAndEmpty) {
  auto empty = StrBulkLoad({});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().size(), 0u);

  std::vector<DataObject> objects;
  for (size_t i = 0; i < 500; ++i) {
    objects.push_back(DataObject::Point({i * 1.0, 0.0}, i));
  }
  BulkLoadOptions opts;
  opts.fill_factor = 1.0;
  auto packed = StrBulkLoad(objects, opts);
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(packed.value().Validate().ok());
}

TEST(StrBulkLoadTest, RejectsBadFillFactor) {
  BulkLoadOptions opts;
  opts.fill_factor = 0.0;
  EXPECT_FALSE(StrBulkLoad({}, opts).ok());
  opts.fill_factor = 1.5;
  EXPECT_FALSE(StrBulkLoad({}, opts).ok());
}

TEST(StrBulkLoadTest, SupportsSubsequentInsertsAndDeletes) {
  std::vector<DataObject> objects;
  for (size_t i = 0; i < 1000; ++i) {
    objects.push_back(DataObject::Point({i * 1.0, i * 0.5}, i));
  }
  RStarTree tree = std::move(StrBulkLoad(objects)).value();
  ASSERT_TRUE(tree.Insert(DataObject::Point({5000, 5000}, 9999)).ok());
  ASSERT_TRUE(tree.Delete(DataObject::Point({3.0, 1.5}, 3)).ok());
  EXPECT_EQ(tree.size(), 1000u);
  ASSERT_TRUE(tree.Validate().ok());
}

TEST(BestFirstTest, YieldsAscendingDistances) {
  RStarTree tree;
  Rng rng(3);
  for (size_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert(DataObject::Point(
                        {rng.Uniform(0, 100), rng.Uniform(0, 100)}, i))
                    .ok());
  }
  const geom::Segment q({50, 50}, {60, 50});
  BestFirstIterator it(tree, q);
  DataObject obj;
  double dist;
  double prev = -1.0;
  size_t count = 0;
  while (it.Next(&obj, &dist)) {
    EXPECT_GE(dist, prev);
    prev = dist;
    ++count;
  }
  EXPECT_EQ(count, 500u);
}

TEST(BestFirstTest, PeekMatchesNext) {
  RStarTree tree;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Insert(DataObject::Point({i * 2.0, 0.0}, i)).ok());
  }
  BestFirstIterator it(tree, geom::Segment({11, 0}, {11, 0}));
  const double peek = it.PeekDist();
  DataObject obj;
  double dist;
  ASSERT_TRUE(it.Next(&obj, &dist));
  EXPECT_DOUBLE_EQ(peek, dist);
  EXPECT_DOUBLE_EQ(dist, 1.0);  // nearest point at x=10 or x=12
}

TEST(BestFirstTest, EmptyTreeStream) {
  RStarTree tree;
  BestFirstIterator it(tree, geom::Segment({0, 0}, {1, 1}));
  EXPECT_TRUE(std::isinf(it.PeekDist()));
  DataObject obj;
  double dist;
  EXPECT_FALSE(it.Next(&obj, &dist));
}

}  // namespace
}  // namespace rtree
}  // namespace conn
