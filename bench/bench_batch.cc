// Batched multi-query execution vs the sequential single-query loop.
//
// The workload models the system's target traffic: a fleet of simultaneous
// route queries clustered around a handful of hubs (users cluster in city
// cores), at the bench harness's scaled cardinalities.  Three variants:
//
//   BM_CoknnSequential      — the paper's model: one query at a time, each
//                             rebuilding its visibility graph from scratch.
//   BM_CoknnBatched         — BatchRunner: STR locality shards, one shared
//                             obstacle workspace per shard, worker pool.
//   BM_CoknnBatchedNoShare  — BatchRunner with sharing disabled: isolates
//                             the thread-pool contribution from the
//                             workspace-reuse contribution.
//
// Counters: qps (queries/sec), reuse_hits (obstacle insertions skipped via
// sharing), reuse_frac (fraction of obstacle retrievals served by the
// shared workspace).  A uniform (non-clustered) workload variant reports
// how the win degrades when locality is poor.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "exec/batch.h"

namespace conn {
namespace bench {
namespace {

size_t FleetSize() { return std::max<size_t>(32, BenchQueries() * 8); }

/// Hub-clustered fleet workload: queries start near one of a few depots.
std::vector<exec::BatchQuery> FleetWorkload(size_t n, size_t k,
                                            uint64_t seed) {
  Rng rng(seed);
  const geom::Rect ws = datagen::Workspace();
  const size_t hubs = std::max<size_t>(1, n / 16);
  std::vector<geom::Vec2> depots;
  for (size_t h = 0; h < hubs; ++h) {
    depots.push_back({rng.Uniform(ws.lo.x + 500, ws.hi.x - 500),
                      rng.Uniform(ws.lo.y + 500, ws.hi.y - 500)});
  }
  const double length = datagen::QueryLengthFromPercent(4.5);
  std::vector<exec::BatchQuery> batch;
  for (size_t i = 0; i < n; ++i) {
    const geom::Vec2& depot = depots[i % hubs];
    const geom::Vec2 start{depot.x + rng.Uniform(-300.0, 300.0),
                           depot.y + rng.Uniform(-300.0, 300.0)};
    const double theta = rng.Uniform(0.0, 6.283185307179586);
    geom::Vec2 end{start.x + length * std::cos(theta),
                   start.y + length * std::sin(theta)};
    end.x = std::clamp(end.x, ws.lo.x, ws.hi.x);
    end.y = std::clamp(end.y, ws.lo.y, ws.hi.y);
    batch.push_back(exec::BatchQuery::Coknn(geom::Segment(start, end), k));
  }
  return batch;
}

/// Uniform workload (no locality): the sharder's worst case.
std::vector<exec::BatchQuery> UniformWorkload(size_t n, size_t k,
                                              uint64_t seed) {
  datagen::WorkloadOptions wopts;
  wopts.query_length = datagen::QueryLengthFromPercent(4.5);
  std::vector<exec::BatchQuery> batch;
  for (const geom::Segment& q :
       datagen::MakeWorkload(n, datagen::Workspace(), wopts, {}, seed)) {
    batch.push_back(exec::BatchQuery::Coknn(q, k));
  }
  return batch;
}

void ReportBatch(benchmark::State& state, const exec::BatchStats& stats,
                 size_t queries, double elapsed_total, size_t hint_depth) {
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(queries) * state.iterations() / elapsed_total);
  state.counters["reuse_hits"] = static_cast<double>(stats.obstacle_reuse_hits);
  const double retrievals = static_cast<double>(stats.obstacle_reuse_hits +
                                                stats.obstacles_inserted);
  state.counters["reuse_frac"] =
      retrievals > 0 ? stats.obstacle_reuse_hits / retrievals : 0.0;
  state.counters["shards"] = static_cast<double>(stats.shard_count);
  state.counters["vis_tests"] =
      static_cast<double>(stats.per_query_totals.visibility_tests);
  state.counters["seed_tests"] =
      static_cast<double>(stats.per_query_totals.seed_tests);
  state.counters["warm_restarts"] =
      static_cast<double>(stats.per_query_totals.scan_warm_restarts);
  state.counters["settled"] =
      static_cast<double>(stats.per_query_totals.dijkstra_settled);
  state.counters["NOE"] =
      static_cast<double>(stats.per_query_totals.obstacles_evaluated);
  // Async miss pipeline ($CONN_ASYNC_IO) — all zero when it's off.
  state.counters["parked"] = static_cast<double>(stats.shards_parked);
  state.counters["mq_p50"] = static_cast<double>(stats.miss_queue_depth_p50);
  state.counters["mq_p99"] = static_cast<double>(stats.miss_queue_depth_p99);
  state.counters["prefetch_issued"] =
      static_cast<double>(stats.per_query_totals.prefetch_issued);
  state.counters["prefetch_hits"] =
      static_cast<double>(stats.per_query_totals.prefetch_hits);
  // The effective hint depth is the autotuner's final answer for this
  // workload (pool_tuning.h); it stays at the cap with async off.
  state.SetLabel(std::string(BenchAsyncIo() ? "async=on" : "async=off") +
                 " hint_depth=" + std::to_string(hint_depth));
}

void RunBatchedBench(benchmark::State& state,
                     const std::vector<exec::BatchQuery>& batch,
                     bool share_workspace) {
  const Dataset& ds = GetDataset(datagen::PointDistribution::kUniform,
                                 ScaledCa(), ScaledLa());
  ApplyBenchAsyncIo(ds);
  exec::BatchOptions opts;
  opts.target_shard_size = 16;
  opts.share_workspace = share_workspace;
  const exec::BatchRunner runner(*ds.tp, *ds.to, opts);

  exec::BatchStats last;
  double elapsed = 0.0;
  for (auto _ : state) {
    const exec::BatchResult result = runner.Run(batch);
    benchmark::DoNotOptimize(result.outcomes.data());
    last = result.stats;
    elapsed += result.stats.wall_seconds;
  }
  ReportBatch(state, last, batch.size(), elapsed,
              ds.tp->pager().effective_hint_depth());
}

void RunSequentialBench(benchmark::State& state,
                        const std::vector<exec::BatchQuery>& batch) {
  const Dataset& ds = GetDataset(datagen::PointDistribution::kUniform,
                                 ScaledCa(), ScaledLa());
  QueryStats totals;
  Timer timer;
  for (auto _ : state) {
    // Per-iteration totals, mirroring the batched variants' last-iteration
    // stats — the cross-variant work-counter comparison must not scale
    // with however many iterations the harness chooses.
    totals = QueryStats{};
    for (const exec::BatchQuery& q : batch) {
      const core::CoknnResult r = core::CoknnQuery(*ds.tp, *ds.to, q.segment,
                                                   q.k);
      benchmark::DoNotOptimize(r.tuples.data());
      totals += r.stats;
    }
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(batch.size()) * state.iterations() /
      timer.ElapsedSeconds());
  state.counters["vis_tests"] = static_cast<double>(totals.visibility_tests);
  state.counters["seed_tests"] = static_cast<double>(totals.seed_tests);
  state.counters["warm_restarts"] =
      static_cast<double>(totals.scan_warm_restarts);
  state.counters["settled"] = static_cast<double>(totals.dijkstra_settled);
  state.counters["NOE"] = static_cast<double>(totals.obstacles_evaluated);
}

void BM_CoknnSequential(benchmark::State& state) {
  RunSequentialBench(state, FleetWorkload(FleetSize(), 5, 42));
}
BENCHMARK(BM_CoknnSequential)->Unit(benchmark::kMillisecond);

void BM_CoknnBatched(benchmark::State& state) {
  RunBatchedBench(state, FleetWorkload(FleetSize(), 5, 42),
                  /*share_workspace=*/true);
}
BENCHMARK(BM_CoknnBatched)->Unit(benchmark::kMillisecond);

void BM_CoknnBatchedNoShare(benchmark::State& state) {
  RunBatchedBench(state, FleetWorkload(FleetSize(), 5, 42),
                  /*share_workspace=*/false);
}
BENCHMARK(BM_CoknnBatchedNoShare)->Unit(benchmark::kMillisecond);

void BM_CoknnBatchedUniformWorkload(benchmark::State& state) {
  RunBatchedBench(state, UniformWorkload(FleetSize(), 5, 42),
                  /*share_workspace=*/true);
}
BENCHMARK(BM_CoknnBatchedUniformWorkload)->Unit(benchmark::kMillisecond);

void BM_CoknnSequentialUniformWorkload(benchmark::State& state) {
  RunSequentialBench(state, UniformWorkload(FleetSize(), 5, 42));
}
BENCHMARK(BM_CoknnSequentialUniformWorkload)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace conn

BENCHMARK_MAIN();
