// Figure 9 — "Performance vs. ql (% of data space side)".
//
// Paper setup: CL combination (P = CA points, O = LA street MBRs), k = 5,
// ql in {1.5, 3, 4.5, 6, 7.5}% of the space side.
//   Fig. 9(a): total query time split into I/O and CPU, plus the number of
//              points (NPE) and obstacles (NOE) evaluated — all grow with ql.
//   Fig. 9(b): local visibility graph size |SVG| vs FULL = 4|O| — |SVG|
//              grows with ql but stays orders of magnitude below FULL.
//
// Expected shape: every reported counter increases monotonically with ql;
// SVG << FULL at every setting.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace conn {
namespace bench {
namespace {

void BM_Fig09_QueryLength(benchmark::State& state) {
  const double ql = static_cast<double>(state.range(0)) / 10.0;
  const Dataset& ds = GetDataset(datagen::PointDistribution::kClustered,
                                 ScaledCa(), ScaledLa());
  QueryStats avg;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.ql_percent = ql;
    cfg.k = 5;
    avg = RunCoknnWorkload(ds, cfg);
  }
  ReportStats(state, avg, ds.pair.obstacles.size());
  state.SetLabel("CL, k=5, ql=" + std::to_string(ql) + "%");
}

BENCHMARK(BM_Fig09_QueryLength)
    ->Arg(15)   // ql = 1.5%
    ->Arg(30)   // ql = 3.0%
    ->Arg(45)   // ql = 4.5%
    ->Arg(60)   // ql = 6.0%
    ->Arg(75)   // ql = 7.5%
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace conn

BENCHMARK_MAIN();
