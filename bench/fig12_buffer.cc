// Figure 12 — "Performance vs. bs (% of the tree size)".
//
// Paper setup: CL and UL combinations, k = 5, ql = 4.5%, buffer sized at
// {1, 2, 4, 8, 16, 32}% of each R-tree's page count; the first half of the
// workload warms the buffer and only the second half is measured (the
// pager counters are reset between the halves, and every reported metric
// is averaged over the measured half only).
//
// Expected shape: I/O cost (page faults) falls as the buffer grows while
// CPU time, NPE, NOE, and |SVG| stay flat — "non-zero buffer can only
// improve I/O performance, but not others".
//
// The eviction policy comes from $CONN_BUFFER_POLICY: the default "2q"
// (scan-resistant) or "exact-lru", which reproduces the seed LRU buffer's
// fault counts bit-for-bit.  The JSON carries both "faults" and "hits" per
// configuration, so the whole I/O curve is machine-readable.
//
// $CONN_ASYNC_IO=1 routes misses through the asynchronous pipeline
// (storage/pager.h); fault counts are unchanged by construction — the
// async curve must overlay the sync one — and the prefetch_* counters
// become non-zero.  The default (off) is the configuration the committed
// baselines were captured under.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace conn {
namespace bench {
namespace {

void RunBuffer(benchmark::State& state, datagen::PointDistribution dist,
               size_t num_points, const char* name) {
  const double bs = static_cast<double>(state.range(0));
  const Dataset& ds = GetDataset(dist, num_points, ScaledLa());
  QueryStats avg;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.ql_percent = 4.5;
    cfg.k = 5;
    cfg.buffer_percent = bs;
    cfg.buffer_policy = BenchBufferPolicy();
    cfg.async_io = BenchAsyncIo();
    cfg.warmup_queries = BenchQueries();  // paper: 50 warm-up of 100
    avg = RunCoknnWorkload(ds, cfg);
  }
  ReportStats(state, avg, ds.pair.obstacles.size());
  state.counters["hits"] = static_cast<double>(avg.buffer_hits);
  state.SetLabel(std::string(name) + ", k=5, ql=4.5%, bs=" +
                 std::to_string(static_cast<int>(bs)) + "%, policy=" +
                 PolicyName(BenchBufferPolicy()) +
                 (BenchAsyncIo() ? ", async=on" : ", async=off"));
}

void BM_Fig12_CL(benchmark::State& state) {
  RunBuffer(state, datagen::PointDistribution::kClustered, ScaledCa(), "CL");
}

void BM_Fig12_UL(benchmark::State& state) {
  RunBuffer(state, datagen::PointDistribution::kUniform, ScaledLa() / 2, "UL");
}

BENCHMARK(BM_Fig12_CL)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig12_UL)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace conn

BENCHMARK_MAIN();
