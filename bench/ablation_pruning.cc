// Ablation study: contribution of each pruning rule to CONN performance.
//
// Not a figure of the paper, but a direct validation of its design claims:
//   * Lemma 1  — endpoint-dominance fast path in RLU/CPLC updates;
//   * Lemma 6  — triangle refinement of candidate control-point regions;
//   * Lemma 7  — CPLMAX termination of the CPLC Dijkstra scan;
//   * Lemma 2  — RLMAX termination of the data-point loop.
//
// Expected shape: disabling Lemma 2 blows up NPE (every data point gets
// evaluated); disabling Lemma 7 blows up Dijkstra settles; disabling
// Lemmas 1/6 increases split evaluations / CPU.  Answers never change
// (asserted by the test suite, measured here).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace conn {
namespace bench {
namespace {

enum Variant : int64_t {
  kAllOn = 0,
  kNoLemma1 = 1,
  kNoLemma6 = 2,
  kNoLemma7 = 3,
  kNoLemma2 = 4,
  kAllOff = 5,
};

const char* VariantName(int64_t v) {
  switch (v) {
    case kAllOn: return "all pruning ON";
    case kNoLemma1: return "Lemma 1 OFF (no endpoint-dominance)";
    case kNoLemma6: return "Lemma 6 OFF (no triangle refinement)";
    case kNoLemma7: return "Lemma 7 OFF (no CPLMAX termination)";
    case kNoLemma2: return "Lemma 2 OFF (no RLMAX termination)";
    case kAllOff: return "ALL pruning OFF";
  }
  return "?";
}

void BM_Ablation_Pruning(benchmark::State& state) {
  // Quarter cardinality: the no-Lemma-2 / all-off variants evaluate every
  // data point by design, so the ablation runs on a smaller instance (the
  // comparison is relative; the pruning ratios are what matters).
  const Dataset& ds = GetDataset(datagen::PointDistribution::kClustered,
                                 std::max<size_t>(200, ScaledCa() / 4),
                                 std::max<size_t>(400, ScaledLa() / 4));
  core::ConnOptions opts;
  switch (state.range(0)) {
    case kNoLemma1: opts.use_lemma1_prune = false; break;
    case kNoLemma6: opts.use_lemma6_refine = false; break;
    case kNoLemma7: opts.use_lemma7_terminate = false; break;
    case kNoLemma2: opts.use_rlmax_terminate = false; break;
    case kAllOff:
      opts.use_lemma1_prune = false;
      opts.use_lemma6_refine = false;
      opts.use_lemma7_terminate = false;
      opts.use_rlmax_terminate = false;
      break;
    default: break;
  }
  QueryStats avg;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.ql_percent = 4.5;
    cfg.k = 5;
    cfg.options = opts;
    avg = RunCoknnWorkload(ds, cfg);
  }
  ReportStats(state, avg, ds.pair.obstacles.size());
  state.counters["settled"] = static_cast<double>(avg.dijkstra_settled);
  state.counters["splits"] = static_cast<double>(avg.split_evaluations);
  state.counters["l1_hits"] = static_cast<double>(avg.lemma1_prunes);
  state.SetLabel(VariantName(state.range(0)));
}

BENCHMARK(BM_Ablation_Pruning)
    ->Arg(kAllOn)
    ->Arg(kNoLemma1)
    ->Arg(kNoLemma6)
    ->Arg(kNoLemma7)
    ->Arg(kNoLemma2)
    ->Arg(kAllOff)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace conn

BENCHMARK_MAIN();
