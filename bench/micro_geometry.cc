// Micro-benchmarks of the geometry kernel: the split-point quadratic, curve
// crossings, visible regions, interval algebra, and the blocking predicate.
// These are the inner loops of CPLC/RLU; regressions here hit every query.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "geom/curve.h"
#include "geom/interval_set.h"
#include "geom/predicates.h"
#include "geom/quadratic.h"
#include "geom/split.h"
#include "vis/obstacle_set.h"
#include "vis/visible_region.h"

namespace conn {
namespace {

void BM_SolveQuadratic(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::array<double, 3>> coeffs(1024);
  for (auto& c : coeffs) {
    c = {rng.Uniform(-10, 10), rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
  }
  size_t i = 0;
  for (auto _ : state) {
    double roots[2];
    const auto& c = coeffs[i++ & 1023];
    benchmark::DoNotOptimize(geom::SolveQuadratic(c[0], c[1], c[2], roots));
  }
}
BENCHMARK(BM_SolveQuadratic);

void BM_CurveCrossings(benchmark::State& state) {
  Rng rng(2);
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {1000, 0}));
  std::vector<std::pair<geom::DistanceCurve, geom::DistanceCurve>> cases;
  for (int i = 0; i < 1024; ++i) {
    cases.emplace_back(
        geom::DistanceCurve::FromControlPoint(
            frame, {rng.Uniform(0, 1000), rng.Uniform(0, 300)},
            rng.Uniform(0, 400)),
        geom::DistanceCurve::FromControlPoint(
            frame, {rng.Uniform(0, 1000), rng.Uniform(0, 300)},
            rng.Uniform(0, 400)));
  }
  size_t i = 0;
  const geom::Interval domain(0, 1000);
  for (auto _ : state) {
    const auto& [a, b] = cases[i++ & 1023];
    benchmark::DoNotOptimize(geom::CurveCrossings(a, b, domain));
  }
}
BENCHMARK(BM_CurveCrossings);

void BM_CompareCurves(benchmark::State& state) {
  Rng rng(3);
  const geom::SegmentFrame frame(geom::Segment({0, 0}, {1000, 0}));
  std::vector<std::pair<geom::DistanceCurve, geom::DistanceCurve>> cases;
  for (int i = 0; i < 1024; ++i) {
    cases.emplace_back(
        geom::DistanceCurve::FromControlPoint(
            frame, {rng.Uniform(0, 1000), rng.Uniform(0, 300)},
            rng.Uniform(0, 400)),
        geom::DistanceCurve::FromControlPoint(
            frame, {rng.Uniform(0, 1000), rng.Uniform(0, 300)},
            rng.Uniform(0, 400)));
  }
  size_t i = 0;
  const geom::Interval domain(0, 1000);
  for (auto _ : state) {
    const auto& [a, b] = cases[i++ & 1023];
    benchmark::DoNotOptimize(geom::CompareCurves(a, b, domain));
  }
}
BENCHMARK(BM_CompareCurves);

void BM_SegmentCrossesInterior(benchmark::State& state) {
  Rng rng(4);
  std::vector<std::pair<geom::Segment, geom::Rect>> cases;
  for (int i = 0; i < 1024; ++i) {
    const geom::Vec2 lo{rng.Uniform(0, 900), rng.Uniform(0, 900)};
    cases.emplace_back(
        geom::Segment({rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
                      {rng.Uniform(0, 1000), rng.Uniform(0, 1000)}),
        geom::Rect(
            lo, {lo.x + rng.Uniform(5, 100), lo.y + rng.Uniform(5, 100)}));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, r] = cases[i++ & 1023];
    benchmark::DoNotOptimize(geom::SegmentCrossesInterior(s, r));
  }
}
BENCHMARK(BM_SegmentCrossesInterior);

void BM_VisibleRegion(benchmark::State& state) {
  Rng rng(5);
  vis::ObstacleSet set(geom::Rect({0, 0}, {1000, 1000}), 32);
  for (uint32_t i = 0; i < static_cast<uint32_t>(state.range(0)); ++i) {
    const geom::Vec2 lo{rng.Uniform(0, 950), rng.Uniform(0, 950)};
    set.Add(
        geom::Rect(lo, {lo.x + rng.Uniform(5, 50), lo.y + rng.Uniform(5, 50)}),
        i);
  }
  const geom::SegmentFrame frame(geom::Segment({100, 100}, {900, 500}));
  std::vector<geom::Vec2> viewpoints(256);
  for (auto& v : viewpoints) {
    v = {rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vis::VisibleRegion(set, viewpoints[i++ & 255], frame));
  }
}
BENCHMARK(BM_VisibleRegion)->Arg(16)->Arg(64)->Arg(256);

void BM_IntervalSetSubtract(benchmark::State& state) {
  Rng rng(6);
  std::vector<std::pair<geom::IntervalSet, geom::IntervalSet>> cases;
  for (int c = 0; c < 256; ++c) {
    std::vector<geom::Interval> a, b;
    for (int i = 0; i < 12; ++i) {
      const double lo = rng.Uniform(0, 900);
      a.push_back(geom::Interval(lo, lo + rng.Uniform(1, 50)));
      const double lo2 = rng.Uniform(0, 900);
      b.push_back(geom::Interval(lo2, lo2 + rng.Uniform(1, 50)));
    }
    cases.emplace_back(geom::IntervalSet(std::move(a)),
                       geom::IntervalSet(std::move(b)));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = cases[i++ & 255];
    benchmark::DoNotOptimize(a.Subtract(b));
  }
}
BENCHMARK(BM_IntervalSetSubtract);

}  // namespace
}  // namespace conn

BENCHMARK_MAIN();
