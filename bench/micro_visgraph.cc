// Micro-benchmarks and design ablation of the local visibility graph.
//
// The paper's central scalability argument (Section 4.1) is that the local
// graph is cheap to grow and to re-query as IOR streams obstacles in.  This
// binary isolates that claim:
//   * Incremental (shipped): one graph, adjacency cached and patched in
//     place across insertions; queries interleave with growth.
//   * RebuildEachQuery: a fresh graph is constructed from the obstacles
//     retrieved so far at every query checkpoint — the cost profile of NOT
//     reusing the local graph across data points.
//   * FullVisGraphBuild: the classical global O(V^2 |O|) construction of
//     Section 2.4 (what the paper avoids entirely).
//   * DijkstraScanWarm: a single scan over a fully cached graph.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datagen/datasets.h"
#include "vis/dijkstra.h"
#include "vis/full_vis_graph.h"
#include "vis/vis_graph.h"

namespace conn {
namespace {

std::vector<geom::Rect> LocalObstacles(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Rect> rects;
  rects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const geom::Vec2 lo{rng.Uniform(0, 9500), rng.Uniform(0, 9500)};
    rects.push_back(geom::Rect(
        lo, {lo.x + rng.Uniform(5, 200), lo.y + rng.Uniform(5, 60)}));
  }
  return rects;
}

constexpr int kQueryEvery = 16;  // insertions between re-queries (IOR-like)

// The shipped design: grow one graph, re-query as it grows.
void BM_IncrementalGrowAndQuery(benchmark::State& state) {
  const auto rects = LocalObstacles(state.range(0), 1);
  for (auto _ : state) {
    vis::VisGraph g(geom::Rect({0, 0}, {10000, 10000}));
    const vis::VertexId t = g.AddFixedVertex({9000, 9000});
    for (size_t i = 0; i < rects.size(); ++i) {
      g.AddObstacle(rects[i], i);
      if ((i % kQueryEvery) == 0) {
        vis::DijkstraScan scan(&g, {500, 500});
        benchmark::DoNotOptimize(scan.SettleTargets({t}));
      }
    }
    vis::DijkstraScan scan(&g, {500, 500});
    benchmark::DoNotOptimize(scan.SettleTargets({t}));
  }
}
BENCHMARK(BM_IncrementalGrowAndQuery)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Ablation: no reuse — rebuild the local graph from scratch at every
// query checkpoint (all adjacency recomputed from zero).
void BM_RebuildEachQuery(benchmark::State& state) {
  const auto rects = LocalObstacles(state.range(0), 1);
  for (auto _ : state) {
    for (size_t i = 0; i < rects.size(); i += kQueryEvery) {
      vis::VisGraph g(geom::Rect({0, 0}, {10000, 10000}));
      const vis::VertexId t = g.AddFixedVertex({9000, 9000});
      for (size_t j = 0; j <= i; ++j) g.AddObstacle(rects[j], j);
      vis::DijkstraScan scan(&g, {500, 500});
      benchmark::DoNotOptimize(scan.SettleTargets({t}));
    }
  }
}
BENCHMARK(BM_RebuildEachQuery)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Full global graph construction (Section 2.4 baseline): O(V^2 |O|).
void BM_FullVisGraphBuild(benchmark::State& state) {
  const auto rects = LocalObstacles(state.range(0), 2);
  for (auto _ : state) {
    vis::FullVisGraph g(rects);
    g.Build();
    benchmark::DoNotOptimize(g.VertexCount());
  }
}
BENCHMARK(BM_FullVisGraphBuild)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Dijkstra over a warm (fully cached) local graph.
void BM_DijkstraScanWarm(benchmark::State& state) {
  const auto rects = LocalObstacles(state.range(0), 3);
  vis::VisGraph g(geom::Rect({0, 0}, {10000, 10000}));
  const vis::VertexId t = g.AddFixedVertex({9000, 9000});
  for (size_t i = 0; i < rects.size(); ++i) g.AddObstacle(rects[i], i);
  {
    vis::DijkstraScan warmup(&g, {500, 500});
    warmup.SettleTargets({t});
  }
  Rng rng(4);
  for (auto _ : state) {
    vis::DijkstraScan scan(&g, {rng.Uniform(0, 10000), rng.Uniform(0, 10000)});
    benchmark::DoNotOptimize(scan.SettleTargets({t}));
  }
}
BENCHMARK(BM_DijkstraScanWarm)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Same scan workload on a pooled ScanArena: per-scan setup drops from the
// O(V) array init + O(V log V) seed sort to an O(1) epoch bump plus
// output-sensitive ring seeding.
void BM_DijkstraScanArena(benchmark::State& state) {
  const auto rects = LocalObstacles(state.range(0), 3);
  vis::VisGraph g(geom::Rect({0, 0}, {10000, 10000}));
  const vis::VertexId t = g.AddFixedVertex({9000, 9000});
  for (size_t i = 0; i < rects.size(); ++i) g.AddObstacle(rects[i], i);
  vis::ScanArena arena;
  {
    vis::DijkstraScan warmup(&g, {500, 500}, &arena);
    warmup.SettleTargets({t});
  }
  Rng rng(4);
  for (auto _ : state) {
    vis::DijkstraScan scan(&g, {rng.Uniform(0, 10000), rng.Uniform(0, 10000)},
                           &arena);
    benchmark::DoNotOptimize(scan.SettleTargets({t}));
  }
}
BENCHMARK(BM_DijkstraScanArena)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace conn

BENCHMARK_MAIN();
