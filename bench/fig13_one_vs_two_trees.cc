// Figure 13 — "COkNN on two R-trees vs. its on one R-tree".
//
// Paper setup, six panels:
//   (a) CL, k=5, ql sweep        (b) UL, k=5, ql sweep
//   (c) CL, ql=4.5%, k sweep     (d) UL, ql=4.5%, k sweep
//   (e) UL, k=5 ql=4.5%, ratio   (f) ZL, k=5 ql=4.5%, ratio sweep
// each comparing the 2-tree configuration (separate Tp/To) with the
// unified 1-tree configuration of Section 4.5.
//
// Expected shape: "1T is more efficient than 2T in most cases" — the
// unified tree needs a single traversal, and points/obstacles that are
// close in space share leaf pages, so total page faults (and hence query
// cost) drop.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace conn {
namespace bench {
namespace {

void RunOneVsTwo(benchmark::State& state, datagen::PointDistribution dist,
                 size_t num_points, double ql, size_t k, bool one_tree,
                 const char* label) {
  const Dataset& ds = GetDataset(dist, num_points, ScaledLa());
  QueryStats avg;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.ql_percent = ql;
    cfg.k = k;
    cfg.one_tree = one_tree;
    avg = RunCoknnWorkload(ds, cfg);
  }
  ReportStats(state, avg, ds.pair.obstacles.size());
  state.SetLabel(label + std::string(one_tree ? " [1T]" : " [2T]"));
}

// --- panels (a)/(b): ql sweep (arg = ql * 10) ---
void BM_Fig13a_CL_QL_2T(benchmark::State& s) {
  RunOneVsTwo(s, datagen::PointDistribution::kClustered, ScaledCa(),
              s.range(0) / 10.0, 5, false, "CL ql sweep");
}
void BM_Fig13a_CL_QL_1T(benchmark::State& s) {
  RunOneVsTwo(s, datagen::PointDistribution::kClustered, ScaledCa(),
              s.range(0) / 10.0, 5, true, "CL ql sweep");
}
void BM_Fig13b_UL_QL_2T(benchmark::State& s) {
  RunOneVsTwo(s, datagen::PointDistribution::kUniform, ScaledLa() / 2,
              s.range(0) / 10.0, 5, false, "UL ql sweep");
}
void BM_Fig13b_UL_QL_1T(benchmark::State& s) {
  RunOneVsTwo(s, datagen::PointDistribution::kUniform, ScaledLa() / 2,
              s.range(0) / 10.0, 5, true, "UL ql sweep");
}

// --- panels (c)/(d): k sweep ---
void BM_Fig13c_CL_K_2T(benchmark::State& s) {
  RunOneVsTwo(s, datagen::PointDistribution::kClustered, ScaledCa(), 4.5,
              s.range(0), false, "CL k sweep");
}
void BM_Fig13c_CL_K_1T(benchmark::State& s) {
  RunOneVsTwo(s, datagen::PointDistribution::kClustered, ScaledCa(), 4.5,
              s.range(0), true, "CL k sweep");
}
void BM_Fig13d_UL_K_2T(benchmark::State& s) {
  RunOneVsTwo(s, datagen::PointDistribution::kUniform, ScaledLa() / 2, 4.5,
              s.range(0), false, "UL k sweep");
}
void BM_Fig13d_UL_K_1T(benchmark::State& s) {
  RunOneVsTwo(s, datagen::PointDistribution::kUniform, ScaledLa() / 2, 4.5,
              s.range(0), true, "UL k sweep");
}

// --- panels (e)/(f): |P|/|O| sweep (arg = ratio * 10) ---
void BM_Fig13e_UL_Ratio_2T(benchmark::State& s) {
  const size_t np = std::max<size_t>(10, ScaledLa() * s.range(0) / 10);
  RunOneVsTwo(s, datagen::PointDistribution::kUniform, np, 4.5, 5, false,
              "UL ratio sweep");
}
void BM_Fig13e_UL_Ratio_1T(benchmark::State& s) {
  const size_t np = std::max<size_t>(10, ScaledLa() * s.range(0) / 10);
  RunOneVsTwo(s, datagen::PointDistribution::kUniform, np, 4.5, 5, true,
              "UL ratio sweep");
}
void BM_Fig13f_ZL_Ratio_2T(benchmark::State& s) {
  const size_t np = std::max<size_t>(10, ScaledLa() * s.range(0) / 10);
  RunOneVsTwo(s, datagen::PointDistribution::kZipf, np, 4.5, 5, false,
              "ZL ratio sweep");
}
void BM_Fig13f_ZL_Ratio_1T(benchmark::State& s) {
  const size_t np = std::max<size_t>(10, ScaledLa() * s.range(0) / 10);
  RunOneVsTwo(s, datagen::PointDistribution::kZipf, np, 4.5, 5, true,
              "ZL ratio sweep");
}

#define QL_ARGS ->Arg(15)->Arg(30)->Arg(45)->Arg(60)->Arg(75)
#define K_ARGS ->Arg(1)->Arg(3)->Arg(5)->Arg(7)->Arg(9)
#define RATIO_ARGS ->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(50)->Arg(100)
#define ONE_ITER ->Iterations(1)->Unit(benchmark::kMillisecond)

BENCHMARK(BM_Fig13a_CL_QL_2T) QL_ARGS ONE_ITER;
BENCHMARK(BM_Fig13a_CL_QL_1T) QL_ARGS ONE_ITER;
BENCHMARK(BM_Fig13b_UL_QL_2T) QL_ARGS ONE_ITER;
BENCHMARK(BM_Fig13b_UL_QL_1T) QL_ARGS ONE_ITER;
BENCHMARK(BM_Fig13c_CL_K_2T) K_ARGS ONE_ITER;
BENCHMARK(BM_Fig13c_CL_K_1T) K_ARGS ONE_ITER;
BENCHMARK(BM_Fig13d_UL_K_2T) K_ARGS ONE_ITER;
BENCHMARK(BM_Fig13d_UL_K_1T) K_ARGS ONE_ITER;
BENCHMARK(BM_Fig13e_UL_Ratio_2T) RATIO_ARGS ONE_ITER;
BENCHMARK(BM_Fig13e_UL_Ratio_1T) RATIO_ARGS ONE_ITER;
BENCHMARK(BM_Fig13f_ZL_Ratio_2T) RATIO_ARGS ONE_ITER;
BENCHMARK(BM_Fig13f_ZL_Ratio_1T) RATIO_ARGS ONE_ITER;

}  // namespace
}  // namespace bench
}  // namespace conn

BENCHMARK_MAIN();
