// Micro-benchmarks of the R*-tree: STR bulk load vs one-by-one insertion,
// best-first stream consumption, and range queries — the access-path costs
// under every CONN query.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datagen/datasets.h"
#include "rtree/best_first.h"
#include "rtree/rstar_tree.h"
#include "rtree/str_bulk_load.h"

namespace conn {
namespace {

std::vector<rtree::DataObject> MakeObjects(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<rtree::DataObject> objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    objects.push_back(rtree::DataObject::Point(
        {rng.Uniform(0, 10000), rng.Uniform(0, 10000)}, i));
  }
  return objects;
}

void BM_StrBulkLoad(benchmark::State& state) {
  const auto objects = MakeObjects(state.range(0), 1);
  for (auto _ : state) {
    auto tree = rtree::StrBulkLoad(objects);
    benchmark::DoNotOptimize(tree.value().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StrBulkLoad)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_InsertionBuild(benchmark::State& state) {
  const auto objects = MakeObjects(state.range(0), 2);
  for (auto _ : state) {
    rtree::RStarTree tree;
    for (const auto& o : objects) {
      benchmark::DoNotOptimize(tree.Insert(o).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InsertionBuild)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_BestFirstFullDrain(benchmark::State& state) {
  const auto objects = MakeObjects(state.range(0), 3);
  rtree::RStarTree tree = std::move(rtree::StrBulkLoad(objects)).value();
  const geom::Segment q({4000, 5000}, {6000, 5000});
  for (auto _ : state) {
    rtree::BestFirstIterator it(tree, q);
    rtree::DataObject obj;
    double dist;
    size_t count = 0;
    while (it.Next(&obj, &dist)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BestFirstFullDrain)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_BestFirstTop100(benchmark::State& state) {
  const auto objects = MakeObjects(100000, 4);
  rtree::RStarTree tree = std::move(rtree::StrBulkLoad(objects)).value();
  const geom::Segment q({4000, 5000}, {6000, 5000});
  for (auto _ : state) {
    rtree::BestFirstIterator it(tree, q);
    rtree::DataObject obj;
    double dist;
    for (int i = 0; i < 100 && it.Next(&obj, &dist); ++i) {
    }
    benchmark::DoNotOptimize(dist);
  }
}
BENCHMARK(BM_BestFirstTop100)->Unit(benchmark::kMicrosecond);

void BM_RangeQuery(benchmark::State& state) {
  const auto objects = MakeObjects(100000, 5);
  rtree::RStarTree tree = std::move(rtree::StrBulkLoad(objects)).value();
  Rng rng(6);
  std::vector<geom::Rect> queries(256);
  for (auto& r : queries) {
    const geom::Vec2 lo{rng.Uniform(0, 9000), rng.Uniform(0, 9000)};
    r = geom::Rect(lo, {lo.x + 500, lo.y + 500});
  }
  size_t i = 0;
  std::vector<rtree::DataObject> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.RangeQuery(queries[i++ & 255], &out).ok());
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_RangeQuery)->Unit(benchmark::kMicrosecond);

void BM_SegmentStabbingQuery(benchmark::State& state) {
  const auto rects = datagen::StreetRects(50000, 7);
  rtree::RStarTree tree =
      std::move(rtree::StrBulkLoad(datagen::ToObstacleObjects(rects))).value();
  Rng rng(8);
  std::vector<geom::Segment> queries(256);
  for (auto& s : queries) {
    const geom::Vec2 a{rng.Uniform(0, 9000), rng.Uniform(0, 9000)};
    s = geom::Segment(a, {a.x + 450, a.y + 450});
  }
  size_t i = 0;
  std::vector<rtree::DataObject> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.SegmentIntersectionQuery(queries[i++ & 255], &out).ok());
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_SegmentStabbingQuery)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace conn

BENCHMARK_MAIN();
