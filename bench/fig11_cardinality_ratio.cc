// Figure 11 — "Performance vs. |P|/|O|".
//
// Paper setup: UL (Uniform points + LA obstacles) and ZL (Zipf points + LA
// obstacles), k = 5, ql = 4.5%, |P|/|O| in {0.1, 0.2, 0.5, 1, 2, 5, 10}.
//
// Expected shape (the paper's crucial observation): query cost first DROPS
// as the ratio grows (denser P shrinks the search range, so IOR retrieves
// fewer obstacles — NOE and |SVG| fall), then RISES again (each point
// dominates a shorter interval, so more candidates are evaluated — NPE
// grows).  The minimum sits near |P|/|O| = 0.5.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace conn {
namespace bench {
namespace {

void RunRatio(benchmark::State& state, datagen::PointDistribution dist,
              const char* name) {
  const double ratio = static_cast<double>(state.range(0)) / 10.0;
  const size_t num_obstacles = ScaledLa();
  const size_t num_points =
      std::max<size_t>(10, static_cast<size_t>(num_obstacles * ratio));
  const Dataset& ds = GetDataset(dist, num_points, num_obstacles);
  QueryStats avg;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.ql_percent = 4.5;
    cfg.k = 5;
    avg = RunCoknnWorkload(ds, cfg);
  }
  ReportStats(state, avg, ds.pair.obstacles.size());
  state.SetLabel(std::string(name) + ", k=5, ql=4.5%, |P|/|O|=" +
                 std::to_string(ratio));
}

void BM_Fig11_UL(benchmark::State& state) {
  RunRatio(state, datagen::PointDistribution::kUniform, "UL");
}

void BM_Fig11_ZL(benchmark::State& state) {
  RunRatio(state, datagen::PointDistribution::kZipf, "ZL");
}

// Args are ratio * 10: {0.1, 0.2, 0.5, 1, 2, 5, 10}.
BENCHMARK(BM_Fig11_UL)
    ->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(50)->Arg(100)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Fig11_ZL)
    ->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(50)->Arg(100)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace conn

BENCHMARK_MAIN();
