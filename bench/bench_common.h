// Shared infrastructure for the figure-reproduction benchmarks.
//
// Datasets follow Section 5.1: workspace [0,10000]^2, obstacle set O = LA
// stand-in (street MBRs), point set P = CA stand-in / Uniform / Zipf(0.8),
// both indexed by R*-trees with 4 KB pages, 100 COkNN queries with random
// start/orientation and length ql% of the space side.  Defaults (Table 2,
// bold): ql = 4.5%, k = 5, |P|/|O| = 0.5, buffer = 0.
//
// Because the paper-scale run (|O| = 131,461, 100 queries) takes hours on a
// laptop, the harness scales cardinalities by CONN_BENCH_SCALE (default
// 0.05) and runs CONN_BENCH_QUERIES queries per configuration (default 3).
// Set CONN_BENCH_SCALE=1 CONN_BENCH_QUERIES=100 for the full experiment.

#ifndef CONN_BENCH_BENCH_COMMON_H_
#define CONN_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <memory>

#include "common/stats.h"
#include "core/options.h"
#include "datagen/datasets.h"
#include "datagen/workload.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"

namespace conn {
namespace bench {

/// Cardinality scale factor from $CONN_BENCH_SCALE (default 0.05).
double BenchScale();

/// Queries per configuration from $CONN_BENCH_QUERIES (default 3).
size_t BenchQueries();

/// Paper cardinalities scaled by BenchScale().
size_t ScaledLa();  // |O|
size_t ScaledCa();  // |P| for the CL combination

/// A built dataset: point/obstacle sets plus the three R*-trees.
struct Dataset {
  datagen::DatasetPair pair;
  std::unique_ptr<rtree::RStarTree> tp;       ///< points only
  std::unique_ptr<rtree::RStarTree> to;       ///< obstacles only
  std::unique_ptr<rtree::RStarTree> unified;  ///< both (Section 4.5)
};

/// Returns a process-cached dataset (built on first use).
const Dataset& GetDataset(datagen::PointDistribution dist, size_t num_points,
                          size_t num_obstacles);

/// Buffer eviction policy from $CONN_BUFFER_POLICY ("2q" — the default —
/// or "exact-lru", the seed-compatible strict LRU).
storage::EvictionPolicy BenchBufferPolicy();

/// Human-readable name of a policy (benchmark labels).
const char* PolicyName(storage::EvictionPolicy policy);

/// Async miss pipeline toggle from $CONN_ASYNC_IO ("1"/"on" enables;
/// default off, the reference configuration the baselines were captured
/// under).
bool BenchAsyncIo();

/// Applies $CONN_ASYNC_IO to a dataset's trees for the throughput
/// harnesses (bench_batch / bench_ticks), which don't sweep buffer size
/// themselves: when on, every tree gets a buffer at 8% of its pages with
/// the async pipeline enabled; when off, the trees are left untouched
/// (unbuffered — the committed-baseline configuration).  The figure
/// harnesses instead route the toggle through RunConfig::async_io.
void ApplyBenchAsyncIo(const Dataset& ds);

/// Workload/measurement knobs for one benchmark configuration.
struct RunConfig {
  double ql_percent = 4.5;
  size_t k = 5;
  size_t queries = 0;          ///< 0 => BenchQueries()
  bool one_tree = false;       ///< Section 4.5 unified-tree variant
  double buffer_percent = 0.0; ///< buffer capacity as % of tree pages
  storage::EvictionPolicy buffer_policy = storage::EvictionPolicy::kTwoQueue;
  bool async_io = false;       ///< service misses via the async pipeline
  size_t warmup_queries = 0;   ///< extra queries to warm the buffer
  core::ConnOptions options;
  uint64_t seed = 7777;
};

/// Runs the COkNN workload and returns the per-query average stats.
QueryStats RunCoknnWorkload(const Dataset& ds, const RunConfig& cfg);

/// Publishes the paper's metrics as benchmark counters.
void ReportStats(benchmark::State& state, const QueryStats& avg,
                 size_t num_obstacles);

}  // namespace bench
}  // namespace conn

#endif  // CONN_BENCH_BENCH_COMMON_H_
