// Moving-query subscription service: wave-over-wave tick-loop COkNN.
//
// A clustered fleet of clients subscribes with routes; every tick advances
// each client one step and re-evaluates its COkNN.  Two variants:
//
//   BM_TicksWarm   — incremental loop: carried per-shard workspaces, the
//                    cross-shard obstacle store, and the stationary-segment
//                    memo all engaged (use_tick_warm_start on).
//   BM_TicksFresh  — the reference: same service and sharding machinery,
//                    but every tick evaluated from scratch (gate off).
//
// The equivalence suite proves the two produce bit-identical answers, so
// the counters here are a pure performance statement.  Counters: qps
// (client updates/sec across all ticks), p50_ms/p99_ms (per-query CPU
// latency over the last iteration's updates), and the reuse counters
// tick_warm / tick_frontier / store_hits.
//
// Setting $CONN_TICK_ARRIVAL_QPS additionally registers the open-loop
// variants (BM_TicksOpenLoop*): issuer threads driving independent
// services on a fixed arrival timetable, reporting sojourn latency under
// saturation.  The baselines are captured without the env var, so the
// committed JSON stays closed-loop.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "datagen/fleet.h"
#include "exec/subscription.h"

namespace conn {
namespace bench {
namespace {

size_t FleetClients() { return std::max<size_t>(16, BenchQueries() * 4); }

constexpr uint64_t kTicks = 8;

std::vector<exec::RouteSpec> TickFleet(size_t n, uint64_t seed) {
  datagen::FleetOptions fopts;  // clustered depots, dyadic speeds
  fopts.depots = std::max<size_t>(2, n / 8);
  std::vector<exec::RouteSpec> routes;
  for (datagen::FleetRoute& r :
       datagen::MakeFleetRoutes(n, datagen::Workspace(), fopts, seed)) {
    routes.push_back(exec::RouteSpec{std::move(r.waypoints), r.speed});
  }
  return routes;
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(v->size() - 1) + 0.5);
  return (*v)[idx];
}

exec::SubscriptionOptions TickOptions(bool warm) {
  exec::SubscriptionOptions opts;
  opts.batch.target_shard_size = 8;
  // Force sharing: this harness measures cross-tick reuse, not the
  // adaptive locality guard (bench_batch covers the guard).  The default
  // guard would decline depot-spanning shards at small bench scales and
  // silently benchmark the per-query fallback instead.
  opts.batch.share_locality_factor = 0.0;
  opts.batch.query.use_tick_warm_start = warm;
  opts.batch.query.use_differential_repair = warm;
  opts.reshard_period = 4;
  return opts;
}

std::string TickLabel(const Dataset& ds) {
  // The effective hint depth is the autotuner's final answer for this
  // workload (pool_tuning.h); it stays at the cap with async off.
  return std::string(BenchAsyncIo() ? "async=on" : "async=off") +
         " hint_depth=" +
         std::to_string(ds.tp->pager().effective_hint_depth());
}

void RunTickBench(benchmark::State& state, bool warm) {
  const Dataset& ds = GetDataset(datagen::PointDistribution::kUniform,
                                 ScaledCa(), ScaledLa());
  ApplyBenchAsyncIo(ds);
  const std::vector<exec::RouteSpec> routes = TickFleet(FleetClients(), 4242);
  const exec::SubscriptionOptions opts = TickOptions(warm);

  QueryStats totals;
  std::vector<double> lat;
  size_t updates = 0;
  size_t parked = 0;
  size_t adopted = 0;
  size_t mq_p99 = 0;
  double elapsed = 0.0;
  for (auto _ : state) {
    exec::SubscriptionService service(*ds.tp, *ds.to, opts);
    for (const exec::RouteSpec& r : routes) {
      service.Subscribe(r, 5).value();
    }
    // Per-iteration totals (see bench_batch.cc): work counters must not
    // scale with however many iterations the harness chooses.
    totals = QueryStats{};
    lat.clear();
    updates = 0;
    parked = 0;
    adopted = 0;
    mq_p99 = 0;
    for (uint64_t tick = 0; tick < kTicks; ++tick) {
      const exec::TickResult result = service.Tick();
      benchmark::DoNotOptimize(result.updates.data());
      elapsed += result.stats.wall_seconds;
      totals += result.stats.per_query_totals;
      parked += result.stats.shards_parked;
      adopted += result.stats.workspaces_adopted;
      mq_p99 = std::max(mq_p99, result.stats.miss_queue_depth_p99);
      updates += result.updates.size();
      for (const exec::ClientUpdate& u : result.updates) {
        if (u.result.has_value()) lat.push_back(u.result->stats.cpu_seconds);
      }
    }
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(updates) * state.iterations() / elapsed);
  state.counters["p50_ms"] = Percentile(&lat, 0.50) * 1e3;
  state.counters["p99_ms"] = Percentile(&lat, 0.99) * 1e3;
  state.counters["tick_warm"] = static_cast<double>(totals.tick_warm_starts);
  state.counters["tick_frontier"] =
      static_cast<double>(totals.tick_frontier_reuse);
  state.counters["store_hits"] =
      static_cast<double>(totals.cross_shard_store_hits);
  // Differential repair (use_differential_repair) — zero in the fresh run.
  state.counters["repairs"] = static_cast<double>(totals.repairs_applied);
  state.counters["carried"] = static_cast<double>(totals.tuples_carried);
  state.counters["rescored"] = static_cast<double>(totals.tuples_rescored);
  state.counters["frontier_shares"] =
      static_cast<double>(totals.frontier_shares);
  state.counters["adopted"] = static_cast<double>(adopted);
  // Async miss pipeline ($CONN_ASYNC_IO) — all zero when it's off.
  state.counters["parked"] = static_cast<double>(parked);
  state.counters["mq_p99"] = static_cast<double>(mq_p99);
  state.counters["prefetch_issued"] =
      static_cast<double>(totals.prefetch_issued);
  state.counters["prefetch_hits"] = static_cast<double>(totals.prefetch_hits);
  state.SetLabel(TickLabel(ds));
}

void BM_TicksWarm(benchmark::State& state) {
  RunTickBench(state, /*warm=*/true);
}
BENCHMARK(BM_TicksWarm)->Unit(benchmark::kMillisecond);

void BM_TicksFresh(benchmark::State& state) {
  RunTickBench(state, /*warm=*/false);
}
BENCHMARK(BM_TicksFresh)->Unit(benchmark::kMillisecond);

// --- open-loop driver ($CONN_TICK_ARRIVAL_QPS) ----------------------------
//
// The closed-loop benchmarks above measure capacity: the next tick starts
// the moment the previous one finishes.  The open-loop driver instead
// fixes an arrival timetable (YCSB-style): each issuer thread owns an
// independent service over a round-robin slice of the fleet and issues
// tick j at start + j*interval, never delaying the schedule because a
// tick ran long.  Sojourn latency — completion minus *scheduled* arrival
// — therefore includes queueing delay, and its p99 diverges once the
// offered rate (client updates/sec across all threads) crosses the
// service capacity the closed-loop qps counter reports.

/// Offered rate in client updates/sec across all issuer threads; 0 (unset)
/// disables the open-loop benchmarks entirely.
double TickArrivalQps() {
  static const double qps = [] {
    const char* env = std::getenv("CONN_TICK_ARRIVAL_QPS");
    return env != nullptr ? std::atof(env) : 0.0;
  }();
  return qps;
}

constexpr size_t kOpenLoopThreads = 4;
constexpr uint64_t kOpenLoopTicks = 32;

void RunOpenLoopBench(benchmark::State& state, bool warm) {
  const Dataset& ds = GetDataset(datagen::PointDistribution::kUniform,
                                 ScaledCa(), ScaledLa());
  ApplyBenchAsyncIo(ds);
  const std::vector<exec::RouteSpec> routes = TickFleet(FleetClients(), 4242);
  const exec::SubscriptionOptions opts = TickOptions(warm);

  std::vector<double> sojourn;
  QueryStats totals;
  size_t updates = 0;
  double span = 0.0;
  for (auto _ : state) {
    sojourn.clear();
    totals = QueryStats{};
    updates = 0;
    span = 0.0;
    std::vector<std::vector<double>> thread_sojourn(kOpenLoopThreads);
    std::vector<QueryStats> thread_totals(kOpenLoopThreads);
    std::vector<size_t> thread_updates(kOpenLoopThreads, 0);
    std::vector<double> thread_span(kOpenLoopThreads, 0.0);
    std::atomic<size_t> ready{0};

    auto issuer = [&](size_t t) {
      // Each issuer owns its slice end to end: SubscriptionService is
      // single-driver by contract, so saturation comes from several
      // services contending for CPU, not from sharing one.
      exec::SubscriptionService service(*ds.tp, *ds.to, opts);
      size_t clients = 0;
      for (size_t i = t; i < routes.size(); i += kOpenLoopThreads) {
        service.Subscribe(routes[i], 5).value();
        ++clients;
      }
      // This thread carries 1/kOpenLoopThreads of the offered rate; one
      // tick delivers `clients` updates.
      const double interval = static_cast<double>(clients) *
                              static_cast<double>(kOpenLoopThreads) /
                              TickArrivalQps();
      ready.fetch_add(1);
      while (ready.load() < kOpenLoopThreads) {
      }
      const auto start = std::chrono::steady_clock::now();
      for (uint64_t tick = 0; tick < kOpenLoopTicks; ++tick) {
        const auto scheduled =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            interval * static_cast<double>(tick)));
        // A thread that has fallen behind schedule issues immediately —
        // the timetable never stretches (open loop).
        std::this_thread::sleep_until(scheduled);
        const exec::TickResult result = service.Tick();
        benchmark::DoNotOptimize(result.updates.data());
        const auto done = std::chrono::steady_clock::now();
        thread_sojourn[t].push_back(
            std::chrono::duration<double>(done - scheduled).count());
        thread_totals[t] += result.stats.per_query_totals;
        thread_updates[t] += result.updates.size();
        thread_span[t] = std::chrono::duration<double>(done - start).count();
      }
    };
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kOpenLoopThreads; ++t) {
      threads.emplace_back(issuer, t);
    }
    for (std::thread& th : threads) th.join();
    for (size_t t = 0; t < kOpenLoopThreads; ++t) {
      sojourn.insert(sojourn.end(), thread_sojourn[t].begin(),
                     thread_sojourn[t].end());
      totals += thread_totals[t];
      updates += thread_updates[t];
      span = std::max(span, thread_span[t]);
    }
  }
  state.counters["offered_qps"] = TickArrivalQps();
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(updates) / span);
  state.counters["sojourn_p50_ms"] = Percentile(&sojourn, 0.50) * 1e3;
  state.counters["sojourn_p99_ms"] = Percentile(&sojourn, 0.99) * 1e3;
  state.counters["repairs"] = static_cast<double>(totals.repairs_applied);
  state.counters["carried"] = static_cast<double>(totals.tuples_carried);
  state.counters["rescored"] = static_cast<double>(totals.tuples_rescored);
  state.counters["frontier_shares"] =
      static_cast<double>(totals.frontier_shares);
  state.SetLabel(TickLabel(ds));
}

void BM_TicksOpenLoopWarm(benchmark::State& state) {
  RunOpenLoopBench(state, /*warm=*/true);
}

void BM_TicksOpenLoopFresh(benchmark::State& state) {
  RunOpenLoopBench(state, /*warm=*/false);
}

// Registered only when the env var is set: the committed baseline JSON is
// captured without it, so the closed-loop suite stays the comparison set.
const bool kOpenLoopRegistered = [] {
  if (TickArrivalQps() <= 0.0) return false;
  benchmark::RegisterBenchmark("BM_TicksOpenLoopWarm", BM_TicksOpenLoopWarm)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime()
      ->Iterations(1);
  benchmark::RegisterBenchmark("BM_TicksOpenLoopFresh", BM_TicksOpenLoopFresh)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime()
      ->Iterations(1);
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace conn

BENCHMARK_MAIN();
