// Moving-query subscription service: wave-over-wave tick-loop COkNN.
//
// A clustered fleet of clients subscribes with routes; every tick advances
// each client one step and re-evaluates its COkNN.  Two variants:
//
//   BM_TicksWarm   — incremental loop: carried per-shard workspaces, the
//                    cross-shard obstacle store, and the stationary-segment
//                    memo all engaged (use_tick_warm_start on).
//   BM_TicksFresh  — the reference: same service and sharding machinery,
//                    but every tick evaluated from scratch (gate off).
//
// The equivalence suite proves the two produce bit-identical answers, so
// the counters here are a pure performance statement.  Counters: qps
// (client updates/sec across all ticks), p50_ms/p99_ms (per-query CPU
// latency over the last iteration's updates), and the reuse counters
// tick_warm / tick_frontier / store_hits.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "datagen/fleet.h"
#include "exec/subscription.h"

namespace conn {
namespace bench {
namespace {

size_t FleetClients() { return std::max<size_t>(16, BenchQueries() * 4); }

constexpr uint64_t kTicks = 8;

std::vector<exec::RouteSpec> TickFleet(size_t n, uint64_t seed) {
  datagen::FleetOptions fopts;  // clustered depots, dyadic speeds
  fopts.depots = std::max<size_t>(2, n / 8);
  std::vector<exec::RouteSpec> routes;
  for (datagen::FleetRoute& r :
       datagen::MakeFleetRoutes(n, datagen::Workspace(), fopts, seed)) {
    routes.push_back(exec::RouteSpec{std::move(r.waypoints), r.speed});
  }
  return routes;
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(v->size() - 1) + 0.5);
  return (*v)[idx];
}

void RunTickBench(benchmark::State& state, bool warm) {
  const Dataset& ds = GetDataset(datagen::PointDistribution::kUniform,
                                 ScaledCa(), ScaledLa());
  ApplyBenchAsyncIo(ds);
  const std::vector<exec::RouteSpec> routes = TickFleet(FleetClients(), 4242);

  exec::SubscriptionOptions opts;
  opts.batch.target_shard_size = 8;
  // Force sharing: this harness measures cross-tick reuse, not the
  // adaptive locality guard (bench_batch covers the guard).  The default
  // guard would decline depot-spanning shards at small bench scales and
  // silently benchmark the per-query fallback instead.
  opts.batch.share_locality_factor = 0.0;
  opts.batch.query.use_tick_warm_start = warm;
  opts.reshard_period = 4;

  QueryStats totals;
  std::vector<double> lat;
  size_t updates = 0;
  size_t parked = 0;
  size_t mq_p99 = 0;
  double elapsed = 0.0;
  for (auto _ : state) {
    exec::SubscriptionService service(*ds.tp, *ds.to, opts);
    for (const exec::RouteSpec& r : routes) {
      service.Subscribe(r, 5).value();
    }
    // Per-iteration totals (see bench_batch.cc): work counters must not
    // scale with however many iterations the harness chooses.
    totals = QueryStats{};
    lat.clear();
    updates = 0;
    parked = 0;
    mq_p99 = 0;
    for (uint64_t tick = 0; tick < kTicks; ++tick) {
      const exec::TickResult result = service.Tick();
      benchmark::DoNotOptimize(result.updates.data());
      elapsed += result.stats.wall_seconds;
      totals += result.stats.per_query_totals;
      parked += result.stats.shards_parked;
      mq_p99 = std::max(mq_p99, result.stats.miss_queue_depth_p99);
      updates += result.updates.size();
      for (const exec::ClientUpdate& u : result.updates) {
        if (u.result.has_value()) lat.push_back(u.result->stats.cpu_seconds);
      }
    }
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(updates) * state.iterations() / elapsed);
  state.counters["p50_ms"] = Percentile(&lat, 0.50) * 1e3;
  state.counters["p99_ms"] = Percentile(&lat, 0.99) * 1e3;
  state.counters["tick_warm"] = static_cast<double>(totals.tick_warm_starts);
  state.counters["tick_frontier"] =
      static_cast<double>(totals.tick_frontier_reuse);
  state.counters["store_hits"] =
      static_cast<double>(totals.cross_shard_store_hits);
  // Async miss pipeline ($CONN_ASYNC_IO) — all zero when it's off.
  state.counters["parked"] = static_cast<double>(parked);
  state.counters["mq_p99"] = static_cast<double>(mq_p99);
  state.counters["prefetch_issued"] =
      static_cast<double>(totals.prefetch_issued);
  state.counters["prefetch_hits"] = static_cast<double>(totals.prefetch_hits);
  state.SetLabel(BenchAsyncIo() ? "async=on" : "async=off");
}

void BM_TicksWarm(benchmark::State& state) {
  RunTickBench(state, /*warm=*/true);
}
BENCHMARK(BM_TicksWarm)->Unit(benchmark::kMillisecond);

void BM_TicksFresh(benchmark::State& state) {
  RunTickBench(state, /*warm=*/false);
}
BENCHMARK(BM_TicksFresh)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace conn

BENCHMARK_MAIN();
