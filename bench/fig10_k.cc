// Figure 10 — "Performance vs. k".
//
// Paper setup: CL combination, ql = 4.5%, k in {1, 3, 5, 7, 9}.
//   Fig. 10(a): total time / NPE / NOE grow with k (larger search range,
//               more result-list maintenance).
//   Fig. 10(b): |SVG| grows mildly with k and stays far below FULL = 4|O|
//               (paper: 1545 -> 1740 vertices over k = 1..9).
//
// Expected shape: monotone growth in all counters, gentle for |SVG|.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace conn {
namespace bench {
namespace {

void BM_Fig10_K(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const Dataset& ds = GetDataset(datagen::PointDistribution::kClustered,
                                 ScaledCa(), ScaledLa());
  QueryStats avg;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.ql_percent = 4.5;
    cfg.k = k;
    avg = RunCoknnWorkload(ds, cfg);
  }
  ReportStats(state, avg, ds.pair.obstacles.size());
  state.SetLabel("CL, ql=4.5%, k=" + std::to_string(k));
}

BENCHMARK(BM_Fig10_K)
    ->Arg(1)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace conn

BENCHMARK_MAIN();
