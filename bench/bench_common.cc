#include "bench_common.h"

#include <cstdlib>
#include <map>
#include <string>
#include <tuple>

#include "common/check.h"
#include "core/coknn.h"
#include "rtree/str_bulk_load.h"

namespace conn {
namespace bench {

double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("CONN_BENCH_SCALE");
    double s = env ? std::atof(env) : 0.05;
    if (s <= 0.0 || s > 1.0) s = 0.05;
    return s;
  }();
  return scale;
}

size_t BenchQueries() {
  static const size_t queries = [] {
    const char* env = std::getenv("CONN_BENCH_QUERIES");
    long q = env ? std::atol(env) : 3;
    if (q < 1) q = 3;
    return static_cast<size_t>(q);
  }();
  return queries;
}

size_t ScaledLa() {
  return static_cast<size_t>(datagen::kLaCardinality * BenchScale());
}

size_t ScaledCa() {
  return static_cast<size_t>(datagen::kCaCardinality * BenchScale());
}

const Dataset& GetDataset(datagen::PointDistribution dist, size_t num_points,
                          size_t num_obstacles) {
  using Key = std::tuple<int, size_t, size_t>;
  static std::map<Key, std::unique_ptr<Dataset>>* cache =
      new std::map<Key, std::unique_ptr<Dataset>>();
  const Key key{static_cast<int>(dist), num_points, num_obstacles};
  auto it = cache->find(key);
  if (it != cache->end()) return *it->second;

  auto ds = std::make_unique<Dataset>();
  ds->pair = datagen::MakeDatasetPair(dist, num_points, num_obstacles,
                                      /*seed=*/0xC0DE + num_points * 31 +
                                          num_obstacles * 7);
  ds->tp = std::make_unique<rtree::RStarTree>(std::move(
      rtree::StrBulkLoad(datagen::ToPointObjects(ds->pair.points)).value()));
  ds->to = std::make_unique<rtree::RStarTree>(std::move(
      rtree::StrBulkLoad(datagen::ToObstacleObjects(ds->pair.obstacles))
          .value()));
  std::vector<rtree::DataObject> all =
      datagen::ToPointObjects(ds->pair.points);
  for (const rtree::DataObject& o :
       datagen::ToObstacleObjects(ds->pair.obstacles)) {
    all.push_back(o);
  }
  ds->unified = std::make_unique<rtree::RStarTree>(
      std::move(rtree::StrBulkLoad(std::move(all)).value()));

  auto [pos, inserted] = cache->emplace(key, std::move(ds));
  CONN_CHECK(inserted);
  return *pos->second;
}

storage::EvictionPolicy BenchBufferPolicy() {
  static const storage::EvictionPolicy policy = [] {
    const char* env = std::getenv("CONN_BUFFER_POLICY");
    if (env == nullptr || std::string(env) == "2q") {
      return storage::EvictionPolicy::kTwoQueue;
    }
    // A typo here would silently publish baselines under the wrong policy.
    CONN_CHECK_MSG(std::string(env) == "exact-lru",
                   "CONN_BUFFER_POLICY must be \"2q\" or \"exact-lru\"");
    return storage::EvictionPolicy::kExactLru;
  }();
  return policy;
}

const char* PolicyName(storage::EvictionPolicy policy) {
  return policy == storage::EvictionPolicy::kExactLru ? "exact-lru" : "2q";
}

bool BenchAsyncIo() {
  static const bool enabled = [] {
    const char* env = std::getenv("CONN_ASYNC_IO");
    if (env == nullptr) return false;
    const std::string v(env);
    return v == "1" || v == "on" || v == "true";
  }();
  return enabled;
}

void ApplyBenchAsyncIo(const Dataset& ds) {
  if (!BenchAsyncIo()) return;
  auto enable = [](rtree::RStarTree& tree) {
    storage::BufferOptions opts = tree.pager().buffer_pool().options();
    opts.capacity_pages =
        static_cast<size_t>(static_cast<double>(tree.PageCount()) * 0.08);
    opts.policy = BenchBufferPolicy();
    opts.async_io = true;
    tree.pager().ConfigureBuffer(opts);
    tree.pager().ResetCounters();
  };
  enable(*ds.tp);
  enable(*ds.to);
  enable(*ds.unified);
}

QueryStats RunCoknnWorkload(const Dataset& ds, const RunConfig& cfg) {
  const size_t queries = cfg.queries == 0 ? BenchQueries() : cfg.queries;

  // Configure buffers ("% of the tree size", Figure 12) and zero the
  // counters: the workload below charges its warm-up half separately.
  auto set_buffer = [&](rtree::RStarTree& tree) {
    const size_t pages = static_cast<size_t>(
        tree.PageCount() * cfg.buffer_percent / 100.0);
    storage::BufferOptions opts = tree.pager().buffer_pool().options();
    opts.capacity_pages = pages;
    opts.policy = cfg.buffer_policy;
    opts.async_io = cfg.async_io;
    tree.pager().ConfigureBuffer(opts);  // also drops stale cached pages
    tree.pager().ResetCounters();
  };
  set_buffer(*ds.tp);
  set_buffer(*ds.to);
  set_buffer(*ds.unified);

  datagen::WorkloadOptions wopts;
  wopts.query_length = datagen::QueryLengthFromPercent(cfg.ql_percent);
  const std::vector<geom::Segment> warmup = datagen::MakeWorkload(
      cfg.warmup_queries, datagen::Workspace(), wopts, {}, cfg.seed * 13 + 5);
  const std::vector<geom::Segment> workload = datagen::MakeWorkload(
      queries, datagen::Workspace(), wopts, {}, cfg.seed);

  // Warm half: primes the buffer pool (and 2Q's reference history) but is
  // excluded from the reported averages.  Per-query stats are computed
  // from counter deltas, so the warm half cannot leak into the measured
  // half; resetting here additionally keeps the pagers' cumulative
  // counters equal to the measured half alone, which is what the faults /
  // hits counters in the published JSON summarize.
  for (const geom::Segment& q : warmup) {
    if (cfg.one_tree) {
      core::CoknnQuery1T(*ds.unified, q, cfg.k, cfg.options);
    } else {
      core::CoknnQuery(*ds.tp, *ds.to, q, cfg.k, cfg.options);
    }
  }
  ds.tp->pager().ResetCounters();
  ds.to->pager().ResetCounters();
  ds.unified->pager().ResetCounters();

  QueryStats total;
  for (const geom::Segment& q : workload) {
    const core::CoknnResult r =
        cfg.one_tree ? core::CoknnQuery1T(*ds.unified, q, cfg.k, cfg.options)
                     : core::CoknnQuery(*ds.tp, *ds.to, q, cfg.k, cfg.options);
    total += r.stats;
  }
  return total.AveragedOver(queries);
}

void ReportStats(benchmark::State& state, const QueryStats& avg,
                 size_t num_obstacles) {
  state.counters["qcost_s"] = avg.QueryCostSeconds();
  state.counters["io_s"] = avg.IoSeconds();
  state.counters["cpu_s"] = avg.cpu_seconds;
  state.counters["pages"] = static_cast<double>(avg.TotalPageReads());
  // "pages" is the paper's I/O metric name; "faults" spells out what it
  // counts so the fault curve is directly greppable in the JSON.
  state.counters["faults"] = static_cast<double>(avg.TotalPageReads());
  state.counters["NPE"] = static_cast<double>(avg.points_evaluated);
  state.counters["NOE"] = static_cast<double>(avg.obstacles_evaluated);
  state.counters["SVG"] = static_cast<double>(avg.vis_graph_vertices);
  state.counters["FULL"] = static_cast<double>(4 * num_obstacles);
  state.counters["vis_tests"] = static_cast<double>(avg.visibility_tests);
  state.counters["seed_tests"] = static_cast<double>(avg.seed_tests);
  state.counters["settled"] = static_cast<double>(avg.dijkstra_settled);
  state.counters["warm_restarts"] =
      static_cast<double>(avg.scan_warm_restarts);
  state.counters["tick_warm"] = static_cast<double>(avg.tick_warm_starts);
  state.counters["tick_frontier"] =
      static_cast<double>(avg.tick_frontier_reuse);
  state.counters["store_hits"] =
      static_cast<double>(avg.cross_shard_store_hits);
  state.counters["prefetch_issued"] = static_cast<double>(avg.prefetch_issued);
  state.counters["prefetch_hits"] = static_cast<double>(avg.prefetch_hits);
  state.counters["prefetch_wasted"] = static_cast<double>(avg.prefetch_wasted);
}

}  // namespace bench
}  // namespace conn
