// Storage-layer microbenchmarks: buffer-pool hit latency, miss/eviction
// churn, pin/unpin latch contention across threads, the decoded-node cache
// on the tree read path, and STR sibling readahead.  Wired into the
// bench_smoke CTest label so the pool's fast paths stay runnable; absolute
// numbers are hardware-dependent, shapes (hit << miss, contention scaling)
// are what to watch.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "rtree/rstar_tree.h"
#include "rtree/str_bulk_load.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/pool_tuning.h"

namespace conn {
namespace bench {
namespace {

using storage::BufferOptions;
using storage::EvictionPolicy;
using storage::Page;
using storage::PageId;
using storage::Pager;
using storage::PinnedPage;

constexpr size_t kFilePages = 2048;

EvictionPolicy PolicyArg(int64_t arg) {
  return arg == 0 ? EvictionPolicy::kTwoQueue : EvictionPolicy::kExactLru;
}

std::unique_ptr<Pager> MakePager(size_t capacity, EvictionPolicy policy,
                                 size_t readahead = 0) {
  auto pager = std::make_unique<Pager>();
  Page p;
  for (size_t i = 0; i < kFilePages; ++i) {
    const PageId id = pager->Allocate();
    p.WriteAt<uint64_t>(0, id);
    CONN_CHECK(pager->Write(id, p).ok());
  }
  BufferOptions opts;
  opts.capacity_pages = capacity;
  opts.policy = policy;
  opts.readahead_pages = readahead;
  pager->ConfigureBuffer(opts);
  return pager;
}

/// Hit path: working set fits, every fetch pins a resident frame.
void BM_BufferHit(benchmark::State& state) {
  auto pager = MakePager(/*capacity=*/128, PolicyArg(state.range(0)));
  for (PageId id = 0; id < 64; ++id) CONN_CHECK(pager->Fetch(id).ok());
  pager->ResetCounters();  // exclude the priming faults from hit_rate
  PageId id = 0;
  for (auto _ : state) {
    StatusOr<PinnedPage> view = pager->Fetch(id);
    benchmark::DoNotOptimize(view.value().page().data());
    id = (id + 1) % 64;
  }
  state.counters["hit_rate"] =
      static_cast<double>(pager->hits()) /
      static_cast<double>(pager->hits() + pager->faults());
}
BENCHMARK(BM_BufferHit)->Arg(0)->Arg(1);

/// Miss path: capacity far below the scan, every fetch evicts and reloads.
void BM_BufferMissChurn(benchmark::State& state) {
  auto pager = MakePager(/*capacity=*/16, PolicyArg(state.range(0)));
  PageId id = 0;
  for (auto _ : state) {
    StatusOr<PinnedPage> view = pager->Fetch(id);
    benchmark::DoNotOptimize(view.value().page().data());
    id = (id + 1) % kFilePages;
  }
  state.counters["fault_rate"] =
      static_cast<double>(pager->faults()) /
      static_cast<double>(pager->hits() + pager->faults());
}
BENCHMARK(BM_BufferMissChurn)->Arg(0)->Arg(1);

/// Unbuffered baseline: direct file views (the paper's bs = 0 default).
void BM_UnbufferedFetch(benchmark::State& state) {
  auto pager = MakePager(/*capacity=*/0, EvictionPolicy::kTwoQueue);
  PageId id = 0;
  for (auto _ : state) {
    StatusOr<PinnedPage> view = pager->Fetch(id);
    benchmark::DoNotOptimize(view.value().page().data());
    id = (id + 1) % kFilePages;
  }
}
BENCHMARK(BM_UnbufferedFetch);

/// Pin/unpin contention: all threads hammer one hot set through the
/// per-shard latches.  Throughput per thread should degrade gently, not
/// collapse, as threads are added.  Pool and hot-set sizes derive from the
/// pool's own sharding constants (storage/pool_tuning.h): the pool spans
/// the full kMaxShards fan-out (32 shards / 1024 frames under the current
/// tuning) with the hot set striped across every latch, so a future
/// shard-cap change moves this watchpoint with it.
void BM_PinContention(benchmark::State& state) {
  static Pager* shared = [] {
    return MakePager(/*capacity=*/storage::kMaxShards *
                         storage::kFramesPerShard,
                     EvictionPolicy::kTwoQueue)
        .release();
  }();
  Rng rng(0x900D + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    const PageId id = static_cast<PageId>(
        rng.UniformU64(storage::kMaxShards * storage::kFramesPerShard));
    StatusOr<PinnedPage> view = shared->Fetch(id);
    benchmark::DoNotOptimize(view.value().page().data());
  }
}
BENCHMARK(BM_PinContention)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

/// STR sibling readahead: sequential leaf-order scan with and without
/// prefetching; the fault counter stays demand-only either way.
void BM_ReadaheadScan(benchmark::State& state) {
  const size_t readahead = static_cast<size_t>(state.range(0));
  auto pager =
      MakePager(/*capacity=*/64, EvictionPolicy::kTwoQueue, readahead);
  PageId id = 0;
  for (auto _ : state) {
    StatusOr<PinnedPage> view = pager->Fetch(id);
    benchmark::DoNotOptimize(view.value().page().data());
    id = (id + 1) % kFilePages;
  }
  const double total =
      static_cast<double>(pager->hits() + pager->faults());
  state.counters["fault_rate"] =
      static_cast<double>(pager->faults()) / total;
}
BENCHMARK(BM_ReadaheadScan)->Arg(0)->Arg(8);

/// Cold scan with engine-issued Prefetch hints (the pager here always runs
/// the async pipeline, independent of $CONN_ASYNC_IO).  Hinting a window
/// ahead of the scan cursor overlaps staging with the per-page work, so the
/// demand-fault counter falls vs the hint-free scan (Arg 0) while the
/// result of the scan is identical.
void BM_ColdScanPrefetch(benchmark::State& state) {
  const bool hints = state.range(0) != 0;
  constexpr size_t kWindow = 32;
  uint64_t demand_faults = 0;
  uint64_t staged_hits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto pager = MakePager(/*capacity=*/64, EvictionPolicy::kTwoQueue);
    BufferOptions opts = pager->buffer_pool().options();
    opts.async_io = true;
    pager->ConfigureBuffer(opts);
    pager->ResetCounters();
    state.ResumeTiming();
    std::vector<PageId> window;
    uint64_t sum = 0;
    for (PageId id = 0; id < kFilePages; ++id) {
      if (hints && id % (kWindow / 2) == 0) {
        window.clear();
        const PageId lo = id + kWindow / 2;
        const PageId hi =
            std::min<PageId>(lo + kWindow, static_cast<PageId>(kFilePages));
        for (PageId j = lo; j < hi; ++j) window.push_back(j);
        pager->Prefetch(std::span<const PageId>(window));
      }
      StatusOr<PinnedPage> view = pager->Fetch(id);
      sum += view.value().page().ReadAt<uint64_t>(0);
    }
    benchmark::DoNotOptimize(sum);
    demand_faults = pager->faults();
    staged_hits = pager->prefetch_hits();
  }
  state.counters["demand_faults"] = static_cast<double>(demand_faults);
  state.counters["prefetch_hits"] = static_cast<double>(staged_hits);
}
BENCHMARK(BM_ColdScanPrefetch)->Arg(0)->Arg(1);

/// Tree read path: hot-node fetches against the decoded-node cache
/// (buffered) vs per-read parsing (unbuffered).
void BM_FetchNodeHot(benchmark::State& state) {
  static rtree::RStarTree* tree = [] {
    std::vector<rtree::DataObject> objs;
    Rng rng(0xCAFE);
    objs.reserve(20000);
    for (size_t i = 0; i < 20000; ++i) {
      objs.push_back(rtree::DataObject::Point(
          {rng.Uniform(0, 10000), rng.Uniform(0, 10000)}, i));
    }
    return new rtree::RStarTree(
        std::move(rtree::StrBulkLoad(std::move(objs)).value()));
  }();
  const bool buffered = state.range(0) != 0;
  tree->pager().SetBufferCapacity(buffered ? tree->PageCount() : 0);
  for (auto _ : state) {
    StatusOr<rtree::ConstNodeRef> ref = tree->FetchNode(tree->root());
    benchmark::DoNotOptimize(ref.value()->entries.data());
  }
}
BENCHMARK(BM_FetchNodeHot)->Arg(0)->Arg(1);

}  // namespace
}  // namespace bench
}  // namespace conn

BENCHMARK_MAIN();
