// Rescue mission: the paper's Section 1 motivating application.
//
// After a disaster, robots mapped a rubble field (obstacles) and located
// survivors (data points).  Emergency crews plan excavation along known
// safe corridors (a polyline trajectory).  For every position along the
// route we want the k nearest survivors by *actual travel distance* around
// the rubble — a trajectory COkNN query.
//
// Demonstrates: clustered data generation, trajectory CONN (the Section 6
// extension), COkNN with k = 3, and per-interval result inspection.

#include <cstdio>

#include "core/coknn.h"
#include "core/trajectory.h"
#include "datagen/datasets.h"
#include "rtree/str_bulk_load.h"

using conn::geom::Segment;
using conn::geom::Vec2;

int main() {
  // --- synthesize the disaster site -------------------------------------
  // Rubble: dense street-pattern debris. Survivors: clustered near former
  // buildings.
  const auto rubble = conn::datagen::StreetRects(3000, /*seed=*/2026);
  auto survivors = conn::datagen::GeneratePoints(
      conn::datagen::PointDistribution::kClustered, 800, /*seed=*/613);
  conn::datagen::DisplacePointsOutsideObstacles(&survivors, rubble, 4);

  conn::rtree::RStarTree tp =
      std::move(
          conn::rtree::StrBulkLoad(conn::datagen::ToPointObjects(survivors)))
          .value();
  conn::rtree::RStarTree to =
      std::move(
          conn::rtree::StrBulkLoad(conn::datagen::ToObstacleObjects(rubble)))
          .value();
  std::printf(
      "site: %zu survivors, %zu rubble obstacles, trees of %zu+%zu pages\n\n",
      survivors.size(), rubble.size(), tp.PageCount(), to.PageCount());

  // --- the excavation corridor (polyline) -------------------------------
  const std::vector<Vec2> corridor = {
      {500, 500}, {2500, 1800}, {4200, 1500}, {6000, 3000}};

  // Trajectory CONN: the single nearest survivor along every corridor leg.
  const conn::core::TrajectoryResult route =
      conn::core::TrajectoryConnQuery(tp, to, corridor, {});
  std::printf("nearest survivor along the corridor (%zu legs, %.0f m total):\n",
              route.legs.size(), route.TotalLength());
  for (size_t leg = 0; leg < route.legs.size(); ++leg) {
    for (const auto& [pid, range] : route.legs[leg].result.MergedByPoint()) {
      const double mid = range.Mid();
      std::printf(
          "  leg %zu  t in [%7.1f, %7.1f]  -> survivor #%-4lld (dist %.1f m at "
          "interval middle)\n",
          leg, range.lo, range.hi, static_cast<long long>(pid),
          route.legs[leg].result.OdistAt(mid));
    }
  }

  // --- COkNN on the most critical leg: 3 nearest survivors everywhere ---
  const Segment critical(corridor[1], corridor[2]);
  const conn::core::CoknnResult k3 =
      conn::core::CoknnQuery(tp, to, critical, /*k=*/3);
  std::printf("\n3 nearest survivors along the critical leg (%zu intervals):\n",
              k3.tuples.size());
  size_t shown = 0;
  for (const auto& tup : k3.tuples) {
    if (++shown > 8) {
      std::printf("  ... (%zu more intervals)\n", k3.tuples.size() - 8);
      break;
    }
    std::printf("  t in [%7.1f, %7.1f] -> {", tup.range.lo, tup.range.hi);
    for (size_t i = 0; i < tup.candidates.size(); ++i) {
      std::printf("%s#%lld", i ? ", " : "",
                  static_cast<long long>(tup.candidates[i].pid));
    }
    std::printf("}\n");
  }

  std::printf("\naccumulated stats over all legs: %s\n",
              route.total_stats.ToString().c_str());
  std::printf("critical-leg COkNN stats:        %s\n",
              k3.stats.ToString().c_str());
  return 0;
}
