// ASCII lab: a visual walkthrough of one CONN query.
//
// Renders a small scene (points, obstacles, query segment) as ASCII art,
// then prints the result list with its control points and split points,
// and a distance profile along the segment.  Handy for building intuition
// about control points (Definition 8) and split points (Definition 7).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/conn.h"
#include "rtree/str_bulk_load.h"

using conn::geom::Rect;
using conn::geom::Segment;
using conn::geom::Vec2;

namespace {

constexpr int kCols = 78;
constexpr int kRows = 26;
constexpr double kWorld = 100.0;

int ColOf(double x) {
  return std::min(kCols - 1, std::max(0, static_cast<int>(x / kWorld * kCols)));
}
int RowOf(double y) {
  const int from_top = kRows - 1 - static_cast<int>(y / kWorld * kRows);
  return std::min(kRows - 1, std::max(0, from_top));
}

}  // namespace

int main() {
  const std::vector<Vec2> points = {{12, 70}, {50, 85}, {88, 62}, {45, 15}};
  const std::vector<Rect> obstacles = {
      Rect({20, 40}, {42, 55}),
      Rect({55, 35}, {75, 50}),
      Rect({40, 62}, {60, 70}),
  };
  const Segment q({5, 25}, {95, 30});

  std::vector<conn::rtree::DataObject> pobj, oobj;
  for (size_t i = 0; i < points.size(); ++i) {
    pobj.push_back(conn::rtree::DataObject::Point(points[i], i));
  }
  for (size_t i = 0; i < obstacles.size(); ++i) {
    oobj.push_back(conn::rtree::DataObject::Obstacle(obstacles[i], i));
  }
  auto tp = std::move(conn::rtree::StrBulkLoad(pobj)).value();
  auto to = std::move(conn::rtree::StrBulkLoad(oobj)).value();

  const conn::core::ConnResult r = conn::core::ConnQuery(tp, to, q);

  // --- render the scene --------------------------------------------------
  std::vector<std::string> canvas(kRows, std::string(kCols, ' '));
  for (const Rect& o : obstacles) {
    for (int row = RowOf(o.hi.y); row <= RowOf(o.lo.y); ++row) {
      for (int col = ColOf(o.lo.x); col <= ColOf(o.hi.x); ++col) {
        canvas[row][col] = '#';
      }
    }
  }
  const int steps = 200;
  for (int i = 0; i <= steps; ++i) {
    const double t = q.Length() * i / steps;
    const Vec2 p = q.At(t);
    char glyph = '-';
    const int64_t pid = r.OnnAt(t);
    if (pid >= 0) glyph = static_cast<char>('0' + pid);
    canvas[RowOf(p.y)][ColOf(p.x)] = glyph;
  }
  for (size_t i = 0; i < points.size(); ++i) {
    canvas[RowOf(points[i].y)][ColOf(points[i].x)] = static_cast<char>('A' + i);
  }
  for (const conn::core::ConnTuple& tup : r.tuples) {
    if (tup.point_id < 0) continue;
    canvas[RowOf(tup.control_point.y)][ColOf(tup.control_point.x)] = '*';
  }

  std::printf("scene: A-D data points, # obstacles, * control points;\n");
  std::printf("query segment drawn as the id of its ONN at each position\n\n");
  for (const std::string& line : canvas) std::printf("|%s|\n", line.c_str());

  // --- the result list ----------------------------------------------------
  std::printf("\nresult list <p, cp, R> (Definition 6 + control points):\n");
  for (const conn::core::ConnTuple& tup : r.tuples) {
    std::printf(
        "  point %c  cp=(%5.1f,%5.1f)  offset=%6.2f  R=[%6.2f, %6.2f]\n",
        tup.point_id >= 0 ? static_cast<char>('A' + tup.point_id) : '-',
        tup.control_point.x, tup.control_point.y, tup.offset, tup.range.lo,
        tup.range.hi);
  }
  std::printf("split points at t =");
  for (double s : r.SplitParams()) std::printf(" %.2f", s);

  // --- distance profile ----------------------------------------------------
  std::printf("\n\nobstructed distance to the ONN along q:\n");
  const int buckets = 60;
  double max_d = 0.0;
  std::vector<double> prof(buckets + 1);
  for (int i = 0; i <= buckets; ++i) {
    prof[i] = r.OdistAt(q.Length() * i / buckets);
    if (std::isfinite(prof[i])) max_d = std::max(max_d, prof[i]);
  }
  for (int level = 8; level >= 1; --level) {
    std::string line(buckets + 1, ' ');
    for (int i = 0; i <= buckets; ++i) {
      if (std::isfinite(prof[i]) && prof[i] / max_d * 8 >= level - 0.5) {
        line[i] = '|';
      }
    }
    std::printf("  %s\n", line.c_str());
  }
  std::printf("  S%sE\n", std::string(buckets - 1, '-').c_str());
  return 0;
}
