// conn_cli: command-line front end for the library.
//
// Generates a synthetic dataset pair (Section 5.1 style) and answers
// ad-hoc queries against it.  A practical smoke-test harness for anyone
// adopting the library:
//
//   conn_cli conn   --points 3000 --obstacles 6000 --q 1000,1000,1450,1200
//   conn_cli coknn  --k 3 --q 500,500,950,700
//   conn_cli onn    --at 5000,5000 --k 5
//   conn_cli range  --at 5000,5000 --radius 800
//   conn_cli bench  --queries 5 --ql 4.5 --k 5
//
// All flags have defaults; run with --help for the list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/coknn.h"
#include "core/conn.h"
#include "core/obstructed_range.h"
#include "core/onn.h"
#include "datagen/datasets.h"
#include "datagen/workload.h"
#include "rtree/str_bulk_load.h"

namespace {

struct Flags {
  std::string command = "conn";
  size_t points = 3000;
  size_t obstacles = 6000;
  uint64_t seed = 42;
  std::string dist = "clustered";  // uniform | zipf | clustered
  size_t k = 5;
  double radius = 500.0;
  double ql = 4.5;
  size_t queries = 3;
  conn::geom::Vec2 at{5000, 5000};
  conn::geom::Segment q{{1000, 1000}, {1450, 1200}};
};

void PrintHelp() {
  std::puts(
      "usage: conn_cli <conn|coknn|onn|range|bench> [flags]\n"
      "  --points N       data set cardinality            (default 3000)\n"
      "  --obstacles N    obstacle set cardinality        (default 6000)\n"
      "  --dist D         uniform | zipf | clustered      (default clustered)\n"
      "  --seed S         generator seed                  (default 42)\n"
      "  --k K            neighbors per position          (default 5)\n"
      "  --radius R       range query radius              (default 500)\n"
      "  --q x1,y1,x2,y2  query segment                   (conn/coknn)\n"
      "  --at x,y         query point                     (onn/range)\n"
      "  --ql P           query length, % of space side    (bench)\n"
      "  --queries N      workload size                   (bench)");
}

bool ParseVec(const char* s, conn::geom::Vec2* out) {
  return std::sscanf(s, "%lf,%lf", &out->x, &out->y) == 2;
}

bool ParseFlags(int argc, char** argv, Flags* f) {
  if (argc < 2) return false;
  f->command = argv[1];
  for (int i = 2; i < argc; i += 2) {
    const std::string key = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s requires a value\n", key.c_str());
      return false;
    }
    const char* val = argv[i + 1];
    if (key == "--points") f->points = std::strtoull(val, nullptr, 10);
    else if (key == "--obstacles")
      f->obstacles = std::strtoull(val, nullptr, 10);
    else if (key == "--seed") f->seed = std::strtoull(val, nullptr, 10);
    else if (key == "--dist") f->dist = val;
    else if (key == "--k") f->k = std::strtoull(val, nullptr, 10);
    else if (key == "--radius") f->radius = std::atof(val);
    else if (key == "--ql") f->ql = std::atof(val);
    else if (key == "--queries") f->queries = std::strtoull(val, nullptr, 10);
    else if (key == "--at") {
      if (!ParseVec(val, &f->at)) return false;
    } else if (key == "--q") {
      double x1, y1, x2, y2;
      if (std::sscanf(val, "%lf,%lf,%lf,%lf", &x1, &y1, &x2, &y2) != 4) {
        return false;
      }
      f->q = conn::geom::Segment({x1, y1}, {x2, y2});
    } else {
      std::fprintf(stderr, "unknown flag %s\n", key.c_str());
      return false;
    }
  }
  return true;
}

conn::datagen::PointDistribution DistOf(const std::string& name) {
  if (name == "uniform") return conn::datagen::PointDistribution::kUniform;
  if (name == "zipf") return conn::datagen::PointDistribution::kZipf;
  return conn::datagen::PointDistribution::kClustered;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      return 0;
    }
  }
  Flags f;
  if (!ParseFlags(argc, argv, &f)) {
    PrintHelp();
    return 1;
  }
  if (f.command != "conn" && f.command != "coknn" && f.command != "onn" &&
      f.command != "range" && f.command != "bench") {
    std::fprintf(stderr, "unknown command %s\n", f.command.c_str());
    PrintHelp();
    return 1;
  }

  std::printf(
      "building dataset: |P|=%zu (%s), |O|=%zu street rects, seed %llu\n",
      f.points, f.dist.c_str(), f.obstacles,
      static_cast<unsigned long long>(f.seed));
  const auto pair = conn::datagen::MakeDatasetPair(DistOf(f.dist), f.points,
                                                   f.obstacles, f.seed);
  auto tp = std::move(conn::rtree::StrBulkLoad(
                          conn::datagen::ToPointObjects(pair.points)))
                .value();
  auto to = std::move(conn::rtree::StrBulkLoad(
                          conn::datagen::ToObstacleObjects(pair.obstacles)))
                .value();
  std::printf("trees: %zu + %zu pages (4 KB each)\n\n", tp.PageCount(),
              to.PageCount());

  if (f.command == "conn") {
    const auto r = conn::core::ConnQuery(tp, to, f.q);
    std::printf("CONN over (%.0f,%.0f)-(%.0f,%.0f):\n", f.q.a.x, f.q.a.y,
                f.q.b.x, f.q.b.y);
    for (const auto& [pid, range] : r.MergedByPoint()) {
      std::printf("  point %-6lld on [%8.2f, %8.2f]  (odist %.2f at middle)\n",
                  static_cast<long long>(pid), range.lo, range.hi,
                  r.OdistAt(range.Mid()));
    }
    std::printf("%s\n", r.stats.ToString().c_str());
  } else if (f.command == "coknn") {
    const auto r = conn::core::CoknnQuery(tp, to, f.q, f.k);
    std::printf("CO%zuNN: %zu intervals\n", f.k, r.tuples.size());
    for (const auto& t : r.tuples) {
      std::printf("  [%8.2f, %8.2f] -> {", t.range.lo, t.range.hi);
      for (size_t i = 0; i < t.candidates.size(); ++i) {
        std::printf("%s%lld", i ? "," : "",
                    static_cast<long long>(t.candidates[i].pid));
      }
      std::printf("}\n");
    }
    std::printf("%s\n", r.stats.ToString().c_str());
  } else if (f.command == "onn") {
    const auto r = conn::core::OnnQuery(tp, to, f.at, f.k);
    std::printf("ONN(%zu) at (%.0f, %.0f):\n", f.k, f.at.x, f.at.y);
    for (const auto& n : r.neighbors) {
      std::printf("  point %-6lld odist %.2f\n",
                  static_cast<long long>(n.pid), n.odist);
    }
    std::printf("%s\n", r.stats.ToString().c_str());
  } else if (f.command == "range") {
    const auto r = conn::core::ObstructedRangeQuery(tp, to, f.at, f.radius);
    std::printf("range(%.0f) at (%.0f, %.0f): %zu members\n", f.radius,
                f.at.x, f.at.y, r.members.size());
    for (size_t i = 0; i < std::min<size_t>(r.members.size(), 20); ++i) {
      std::printf("  point %-6lld odist %.2f\n",
                  static_cast<long long>(r.members[i].pid),
                  r.members[i].odist);
    }
    std::printf("%s\n", r.stats.ToString().c_str());
  } else if (f.command == "bench") {
    conn::datagen::WorkloadOptions wopts;
    wopts.query_length = conn::datagen::QueryLengthFromPercent(f.ql);
    const auto workload = conn::datagen::MakeWorkload(
        f.queries, conn::datagen::Workspace(), wopts, {}, f.seed * 7 + 1);
    conn::QueryStats total;
    for (const auto& q : workload) {
      total += conn::core::CoknnQuery(tp, to, q, f.k).stats;
    }
    const conn::QueryStats avg = total.AveragedOver(workload.size());
    std::printf("CO%zuNN x %zu queries (ql=%.1f%%): avg %s\n", f.k,
                workload.size(), f.ql, avg.ToString().c_str());
  } else {
    PrintHelp();
    return 1;
  }
  return 0;
}
