// Fleet dispatch: many simultaneous route queries over one city, executed
// as a batch.
//
// A delivery operator runs three depots in a synthetic city (street-MBR
// obstacles, service points as the data set).  Every vehicle leaving a
// depot asks a COkNN query along its planned route segment: "which k
// service points are obstructed-nearest at every position of my route?".
// All routes of a dispatch wave are answered together by exec::BatchRunner,
// which tiles them into spatially compact shards and reuses one obstacle
// workspace per shard — the obstacles around a depot are fetched once per
// wave instead of once per vehicle.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/fleet_dispatch

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "datagen/datasets.h"
#include "exec/batch.h"
#include "rtree/str_bulk_load.h"

using conn::Rng;
using conn::exec::BatchOptions;
using conn::exec::BatchQuery;
using conn::exec::BatchResult;
using conn::exec::BatchRunner;
using conn::geom::Segment;
using conn::geom::Vec2;

int main() {
  // --- the city: street-rect obstacles + service points ---
  const size_t kObstacles = 900;
  const size_t kPoints = 450;
  const conn::datagen::DatasetPair city = conn::datagen::MakeDatasetPair(
      conn::datagen::PointDistribution::kUniform, kPoints, kObstacles,
      /*seed=*/2026);

  conn::rtree::RStarTree tp =
      conn::rtree::StrBulkLoad(conn::datagen::ToPointObjects(city.points))
          .value();
  conn::rtree::RStarTree to =
      conn::rtree::StrBulkLoad(conn::datagen::ToObstacleObjects(city.obstacles))
          .value();

  // --- the dispatch wave: 3 depots, 8 vehicles each ---
  const std::vector<Vec2> depots = {
      {2500, 2500}, {7200, 3100}, {4800, 7600}};
  const size_t kVehiclesPerDepot = 8;
  const double kRouteLength = 450.0;
  const size_t k = 3;

  Rng rng(99);
  std::vector<BatchQuery> wave;
  for (const Vec2& depot : depots) {
    for (size_t v = 0; v < kVehiclesPerDepot; ++v) {
      const Vec2 start{depot.x + rng.Uniform(-250.0, 250.0),
                       depot.y + rng.Uniform(-250.0, 250.0)};
      const double theta = rng.Uniform(0.0, 6.283185307179586);
      const Vec2 end{start.x + kRouteLength * std::cos(theta),
                     start.y + kRouteLength * std::sin(theta)};
      wave.push_back(BatchQuery::Coknn(Segment(start, end), k));
    }
  }

  // --- run the wave ---
  BatchOptions opts;
  opts.target_shard_size = kVehiclesPerDepot;
  const BatchRunner runner(tp, to, opts);
  const BatchResult result = runner.Run(wave);

  std::printf("fleet dispatch: %zu routes, %zu shards, %zu worker thread(s)\n",
              result.stats.query_count, result.stats.shard_count,
              result.stats.threads_used);
  std::printf(
      "obstacle retrieval: %llu inserted, %llu reused from shard siblings "
      "(%.0f%% saved)\n",
      static_cast<unsigned long long>(result.stats.obstacles_inserted),
      static_cast<unsigned long long>(result.stats.obstacle_reuse_hits),
      100.0 * result.stats.obstacle_reuse_hits /
          std::max<uint64_t>(1, result.stats.obstacle_reuse_hits +
                                    result.stats.obstacles_inserted));
  std::printf("throughput: %.1f queries/sec (%.1f ms total)\n\n",
              result.stats.QueriesPerSecond(),
              1000.0 * result.stats.wall_seconds);

  // --- per-vehicle digest: the k nearest services at departure and at the
  //     route's midpoint ---
  for (size_t i = 0; i < wave.size(); ++i) {
    const conn::core::CoknnResult& r = *result.outcomes[i].coknn;
    const conn::geom::SegmentFrame frame(r.query);
    const double mid = r.query.Length() * 0.5;
    std::printf("vehicle %2zu  depot %zu  knn@start {", i,
                i / kVehiclesPerDepot);
    for (int64_t pid : r.KnnAt(0.0, frame)) {
      std::printf(" %lld", (long long)pid);
    }
    std::printf(" }  knn@mid {");
    for (int64_t pid : r.KnnAt(mid, frame)) {
      std::printf(" %lld", (long long)pid);
    }
    std::printf(" }  odist@mid %.1f\n", r.OdistAt(mid, 0, frame));
  }

  // --- spot-check one route against the single-query engine ---
  const conn::core::CoknnResult solo =
      conn::core::CoknnQuery(tp, to, wave[0].segment, k);
  const conn::core::CoknnResult& batched = *result.outcomes[0].coknn;
  const bool identical =
      solo.tuples.size() == batched.tuples.size() &&
      std::equal(solo.tuples.begin(), solo.tuples.end(),
                 batched.tuples.begin(),
                 [](const conn::core::CoknnTuple& a,
                    const conn::core::CoknnTuple& b) {
                   return a.range.lo == b.range.lo &&
                          a.range.hi == b.range.hi &&
                          a.candidates.size() == b.candidates.size();
                 });
  std::printf("\nbatched result identical to single-query engine: %s\n",
              identical ? "yes" : "NO (bug!)");
  return identical ? 0 : 1;
}
