// Highway services: quantifying how wrong Euclidean CNN is in a city.
//
// A driver follows a highway through a dense urban grid (LA-style street
// MBR obstacles) and wants the nearest service location at every moment.
// We run both the classical Euclidean CNN (Tao et al.) and the paper's
// CONN over the same workload and measure (a) on what fraction of the
// route the Euclidean answer names the wrong facility, and (b) how much
// farther the Euclidean "nearest" actually is once obstacles are respected.
//
// Demonstrates: dataset pairing, workload generation, CNN vs CONN, result
// sampling, and aggregate statistics.

#include <cmath>
#include <cstdio>

#include "core/cnn.h"
#include "core/conn.h"
#include "datagen/datasets.h"
#include "datagen/workload.h"
#include "rtree/str_bulk_load.h"

int main() {
  // --- city: dense street obstacles; services: uniform over town --------
  const auto pair = conn::datagen::MakeDatasetPair(
      conn::datagen::PointDistribution::kUniform, /*points=*/1500,
      /*obstacles=*/6000, /*seed=*/99);
  conn::rtree::RStarTree tp =
      std::move(conn::rtree::StrBulkLoad(
                    conn::datagen::ToPointObjects(pair.points)))
          .value();
  conn::rtree::RStarTree to =
      std::move(conn::rtree::StrBulkLoad(
                    conn::datagen::ToObstacleObjects(pair.obstacles)))
          .value();

  // --- a workload of highway segments -----------------------------------
  conn::datagen::WorkloadOptions wopts;
  wopts.query_length = conn::datagen::QueryLengthFromPercent(4.5);
  wopts.avoid_obstacle_crossings = true;  // drivers stay on open road
  const auto workload = conn::datagen::MakeWorkload(
      8, conn::datagen::Workspace(), wopts, pair.obstacles, 31337);

  double wrong_len_total = 0.0, route_len_total = 0.0;
  double detour_sum = 0.0;
  size_t detour_samples = 0;
  double worst_detour = 0.0;

  for (const auto& q : workload) {
    const conn::core::ConnResult euclid = conn::core::CnnQuery(tp, q);
    const conn::core::ConnResult obstructed = conn::core::ConnQuery(tp, to, q);

    const int kSamples = 400;
    int wrong = 0, valid = 0;
    for (int i = 0; i <= kSamples; ++i) {
      const double t = q.Length() * i / kSamples;
      if (obstructed.unreachable.Contains(t, 1e-3)) continue;
      const int64_t e = euclid.OnnAt(t);
      const int64_t o = obstructed.OnnAt(t);
      if (o < 0) continue;
      ++valid;
      if (e != o) ++wrong;
      // Detour factor of the true ONN vs straight-line distance.
      const double od = obstructed.OdistAt(t);
      const double ed = euclid.OdistAt(t);
      if (std::isfinite(od) && ed > 1e-9) {
        detour_sum += od / ed;
        ++detour_samples;
        worst_detour = std::max(worst_detour, od / ed);
      }
    }
    if (valid > 0) {
      wrong_len_total += q.Length() * wrong / valid;
      route_len_total += q.Length();
    }
  }

  std::printf("workload: %zu highway segments of %.0f m over %zu services, "
              "%zu obstacles\n",
              workload.size(), wopts.query_length, pair.points.size(),
              pair.obstacles.size());
  std::printf("Euclidean CNN names the WRONG facility on %.1f%% of the route\n",
              100.0 * wrong_len_total / route_len_total);
  std::printf("true travel distance vs straight line: avg %.3fx, worst %.2fx\n",
              detour_sum / detour_samples, worst_detour);
  return 0;
}
