// Quickstart: build the two R*-trees, run a CONN query, read the answer.
//
// The scene recreates Figure 1(b) of the paper in spirit: gas stations
// along a highway segment, with rectangular obstacles that make the
// Euclidean nearest station differ from the obstructed nearest one.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/cnn.h"
#include "core/conn.h"
#include "rtree/str_bulk_load.h"

using conn::core::ConnResult;
using conn::geom::Rect;
using conn::geom::Segment;
using conn::geom::Vec2;

int main() {
  // --- the data set P: six gas stations (a..g of Figure 1) ---
  const std::vector<Vec2> stations = {
      {150, 180},   // 0: a  (Euclidean NN of the start S, but walled off
                    //        behind obstacle o3 — the Figure 1(b) effect)
      {420, 160},   // 1: b
      {870, 140},   // 2: c
      {300, -40},   // 3: d
      {620, -180},  // 4: f
      {640, 150},   // 5: g
  };
  const char* names[] = {"a", "b", "c", "d", "f", "g"};

  // --- the obstacle set O: four rectangular obstacles ---
  const std::vector<Rect> obstacles = {
      Rect({80, 40}, {360, 90}),    // o3: between the highway and station d
      Rect({380, 60}, {520, 110}),  // o1
      Rect({540, 50}, {700, 100}),  // o2
      Rect({700, 180}, {820, 260}), // o4
  };

  // --- index both sets (STR bulk load; insertion also works) ---
  std::vector<conn::rtree::DataObject> point_objects, obstacle_objects;
  for (size_t i = 0; i < stations.size(); ++i) {
    point_objects.push_back(conn::rtree::DataObject::Point(stations[i], i));
  }
  for (size_t i = 0; i < obstacles.size(); ++i) {
    obstacle_objects.push_back(
        conn::rtree::DataObject::Obstacle(obstacles[i], i));
  }
  conn::rtree::RStarTree tp =
      std::move(conn::rtree::StrBulkLoad(point_objects)).value();
  conn::rtree::RStarTree to =
      std::move(conn::rtree::StrBulkLoad(obstacle_objects)).value();

  // --- the query: a highway segment q = [S, E] ---
  const Segment q({100, 0}, {900, 0});

  // --- CONN: obstructed nearest neighbor of every point along q ---
  const ConnResult result = conn::core::ConnQuery(tp, to, q);

  std::printf("CONN result over q = [S(100,0), E(900,0)]:\n");
  for (const auto& [pid, range] : result.MergedByPoint()) {
    std::printf("  station %-2s is the ONN on  t in [%7.2f, %7.2f]\n",
                pid >= 0 ? names[pid] : "--", range.lo, range.hi);
  }
  std::printf("split points:");
  for (double s : result.SplitParams()) std::printf(" %.2f", s);
  std::printf("\n\n");

  // --- contrast with Euclidean CNN (Figure 1(a) semantics) ---
  const ConnResult euclid = conn::core::CnnQuery(tp, q);
  std::printf("Euclidean CNN over the same q (ignores obstacles):\n");
  for (const auto& [pid, range] : euclid.MergedByPoint()) {
    std::printf("  station %-2s is the  NN on  t in [%7.2f, %7.2f]\n",
                pid >= 0 ? names[pid] : "--", range.lo, range.hi);
  }

  // --- the headline difference: the answer at the start point S ---
  std::printf("\nat S: Euclidean NN = %s, obstructed NN = %s  (odist %.2f)\n",
              names[euclid.OnnAt(0.0)], names[result.OnnAt(0.0)],
              result.OdistAt(0.0));

  std::printf("\nquery stats: %s\n", result.stats.ToString().c_str());
  return 0;
}
