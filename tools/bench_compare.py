#!/usr/bin/env python3
"""Compare fresh Google-Benchmark JSON against the committed baselines.

Usage:
    bench_compare.py --baselines baselines --fresh build/release \
        [--qps-slack 0.5]

For every `BENCH_<harness>.json` present in both directories, benchmarks
are matched by name and their counters split in two classes:

  * Deterministic counters (faults, NPE, NOE, rescored, ...) come from
    seeded datasets and seeded workloads, so they are exactly reproducible
    on any machine: any difference is an algorithmic change, and this
    script exits non-zero — the CI bench job treats that as a hard gate.
    A baseline counter missing from the fresh run also fails (a harness
    that silently stopped reporting a counter must not pass).

  * Timing counters (qps) are hardware-dependent: a fresh qps below
    (1 - slack) of the baseline prints an advisory warning, never a
    failure — CI machines and the baseline box share no clock.

Benchmarks or files present on one side only are reported and skipped:
the gate never blocks adding a new harness or a new benchmark, only
changing what an existing one computes.
"""

import argparse
import json
import pathlib
import sys

# Counter keys whose values must match the baseline bit-for-bit.  Keep in
# sync with the harness counters documented in baselines/README.md; every
# entry here is derived from seeded data, never from the clock.
EXACT_COUNTERS = [
    "faults",
    "hits",
    "pages",
    "NPE",
    "NOE",
    "SVG",
    "vis_tests",
    "seed_tests",
    "settled",
    "warm_restarts",
    "reuse_hits",
    "shards",
    "tick_warm",
    "tick_frontier",
    "store_hits",
    "repairs",
    "carried",
    "rescored",
    "frontier_shares",
    "adopted",
]


def index_benchmarks(path):
    """name -> benchmark entry, skipping aggregate (mean/median/...) rows."""
    with open(path) as f:
        doc = json.load(f)
    return {
        b["name"]: b
        for b in doc.get("benchmarks", [])
        if b.get("run_type") != "aggregate" and not b.get("error_occurred")
    }


def compare_file(base_path, fresh_path, qps_slack):
    """Returns (failures, warnings) for one baseline/fresh file pair."""
    failures = []
    warnings = []
    base = index_benchmarks(base_path)
    fresh = index_benchmarks(fresh_path)

    for name in sorted(base):
        if name not in fresh:
            warnings.append(f"{base_path.name}: '{name}' missing from the "
                            "fresh run (skipped)")
            continue
        b, f = base[name], fresh[name]

        for counter in EXACT_COUNTERS:
            if counter not in b:
                continue  # the baseline harness never reported it
            if counter not in f:
                failures.append(f"{base_path.name}: {name}: counter "
                                f"'{counter}' vanished from the fresh run")
            elif f[counter] != b[counter]:
                failures.append(f"{base_path.name}: {name}: {counter} = "
                                f"{f[counter]:g}, baseline {b[counter]:g}")

        if "qps" in b and "qps" in f and b["qps"] > 0:
            floor = b["qps"] * (1.0 - qps_slack)
            if f["qps"] < floor:
                warnings.append(
                    f"{base_path.name}: {name}: qps {f['qps']:.1f} below "
                    f"advisory floor {floor:.1f} (baseline {b['qps']:.1f}; "
                    "timing is hardware-dependent, not gating)")

        if b.get("label", "") != f.get("label", ""):
            warnings.append(f"{base_path.name}: {name}: label "
                            f"'{f.get('label', '')}' != baseline "
                            f"'{b.get('label', '')}'")

    for name in sorted(set(fresh) - set(base)):
        warnings.append(f"{base_path.name}: fresh-only benchmark '{name}' "
                        "(no baseline; skipped)")
    return failures, warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", type=pathlib.Path, required=True,
                        help="directory holding committed BENCH_*.json")
    parser.add_argument("--fresh", type=pathlib.Path, required=True,
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--qps-slack", type=float, default=0.5,
                        help="advisory qps tolerance as a fraction of the "
                             "baseline (default 0.5)")
    args = parser.parse_args()

    failures = []
    warnings = []
    compared = 0
    for base_path in sorted(args.baselines.glob("BENCH_*.json")):
        fresh_path = args.fresh / base_path.name
        if not fresh_path.exists():
            warnings.append(f"{base_path.name}: no fresh file under "
                            f"{args.fresh} (skipped)")
            continue
        compared += 1
        file_failures, file_warnings = compare_file(base_path, fresh_path,
                                                    args.qps_slack)
        failures.extend(file_failures)
        warnings.extend(file_warnings)

    for line in warnings:
        print(f"WARNING: {line}")
    for line in failures:
        print(f"FAIL: {line}")
    if compared == 0:
        print("FAIL: no baseline file had a fresh counterpart")
        return 1
    print(f"bench_compare: {compared} file(s) compared, "
          f"{len(failures)} failure(s), {len(warnings)} warning(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
