// Known-bad fixture for lint_invariants.py's `raw-lock` rule (fallback
// tier, superseded by conn-raw-sync-primitive).  Never compiled.

#include <mutex>

namespace conn {

std::mutex g_lock;

int Locked(int v) {
  std::lock_guard<std::mutex> hold(g_lock);
  return v;
}

}  // namespace conn
