// Known-bad fixture for lint_invariants.py's `page-escape` rule (fallback
// tier, superseded by conn-pinnedpage-escape): binds a page() borrow to a
// named Page reference outside src/storage/.  Never compiled.

namespace conn {

void Leaky(storage::PinnedPage& pp) {
  const Page& view = pp.page();
  (void)view;
}

}  // namespace conn
