// Known-bad fixture for lint_invariants.py's `assert` rule (core tier):
// both the include and the call must be flagged.  Never compiled — the
// unit test only greps it.

#include <cassert>

namespace conn {

int Clamp(int v) {
  assert(v >= 0);
  return v;
}

}  // namespace conn
