// Clean fixture: sanctioned idioms only — no rule in any tier may flag
// this file.  Never compiled.

namespace conn {

int Checked(int v) {
  CONN_CHECK(v >= 0);
  Mutex mu;
  MutexLock hold(mu);
  return v;
}

}  // namespace conn
