// Known-bad fixture for lint_invariants.py's `epoch-reset` rule (fallback
// tier, superseded by conn-arena-epoch-reset): names and bulk-resets a
// stamp array outside src/vis/dijkstra.{h,cc}.  Never compiled.

namespace conn {

void Wipe(vis::ScanArena* arena) {
  arena->dist_stamp_.clear();
}

}  // namespace conn
