#!/usr/bin/env python3
"""Repo-specific invariant lint — the rules clang-tidy cannot express.

Run from anywhere:  python3 tools/lint_invariants.py  (exits non-zero and
prints file:line findings when an invariant is violated; CI's `lint` job
runs it on every push).

Enforced invariants:

  raw-lock      Raw standard-library lock primitives (std::mutex,
                std::lock_guard, std::unique_lock, std::scoped_lock,
                std::shared_mutex, std::condition_variable[_any]) are
                allowed only inside src/common/mutex.h.  Everything else
                must use the capability-annotated conn::Mutex /
                conn::MutexLock / conn::CondVar wrappers, or Clang's
                -Wthread-safety analysis cannot see the lock at all.
                Applies to src/, tests/, bench/, examples/.

  assert        src/ uses CONN_CHECK / CONN_CHECK_MSG / CONN_DCHECK, never
                <cassert> assert(): assert vanishes under NDEBUG, so the
                release build (the config every benchmark and the paper's
                I/O accounting run under) would silently skip the
                invariant.  Applies to src/ only (tests use GTest's
                ASSERT_* family, which is unrelated).

  page-escape   A Page* / Page& may not be bound to a named variable from
                a PinnedPage::page() call outside src/storage/: the borrow
                is only valid while the pin is alive, and a named alias is
                how the pointer outlives the RAII scope.  Engine code
                passes pp.page() straight into a consumer expression
                (e.g. AssignFromPage(pp.page())) instead.  Tests under
                tests/ are exempt — pin-stability tests take addresses on
                purpose, while the pin is provably held.

  epoch-reset   ScanArena's epoch-stamp arrays (dist_stamp_,
                settled_stamp_, seeded_stamp_, target_stamp_) are touched
                only by the arena's own API surface (src/vis/dijkstra.h
                and .cc, where DijkstraScan is a friend), and are never
                bulk-reset via .assign()/.clear()/std::fill anywhere:
                "clearing" stamps is an O(1) epoch bump by design, and an
                O(V) wipe would silently reintroduce the per-restart cost
                PR 3 removed.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

CC_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

RAW_LOCK_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b"
)
ASSERT_RE = re.compile(r"(^|[^\w.])assert\s*\(|#\s*include\s*<(cassert|assert\.h)>")
# `Page* p = ...page()` / `const Page& r = ...page()` / `auto* p = &x.page()`
PAGE_BIND_RE = re.compile(
    r"(const\s+)?Page\s*[*&]\s*\w+\s*=|auto\s*[*&]?\s*\w+\s*=\s*&[\w.\->()]*page\(\)"
)
STAMP_MEMBER_RE = re.compile(
    r"\b(dist_stamp_|settled_stamp_|seeded_stamp_|target_stamp_)\b"
)
STAMP_RESET_RE = re.compile(
    r"\w*stamp_\w*\.(assign|clear)\s*\(|std::fill\s*\([^)]*stamp_"
)

STAMP_HOME = {"src/vis/dijkstra.h", "src/vis/dijkstra.cc"}


def strip_comments(line: str) -> str:
    """Drops // comments (enough for these token-level rules)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def iter_sources(*roots: str):
    for root in roots:
        base = REPO / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CC_SUFFIXES:
                yield path


def main() -> int:
    findings: list[str] = []

    seen: set[str] = set()

    def flag(path: Path, lineno: int, rule: str, text: str) -> None:
        rel = path.relative_to(REPO)
        entry = f"{rel}:{lineno}: [{rule}] {text.strip()}"
        if entry not in seen:
            seen.add(entry)
            findings.append(entry)

    for path in iter_sources("src", "tests", "bench", "examples"):
        rel = str(path.relative_to(REPO))
        in_src = rel.startswith("src/")
        is_mutex_home = rel == "src/common/mutex.h"
        is_compile_fail = rel.startswith("tests/compile_fail/")
        page_rule_applies = in_src and not rel.startswith("src/storage/")
        stamp_is_home = rel in STAMP_HOME

        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            line = strip_comments(raw)
            if not line.strip():
                continue

            if not is_mutex_home and RAW_LOCK_RE.search(line):
                flag(path, lineno, "raw-lock", raw)

            if in_src and ASSERT_RE.search(line):
                flag(path, lineno, "assert", raw)

            if page_rule_applies and "page()" in line and PAGE_BIND_RE.search(line):
                flag(path, lineno, "page-escape", raw)

            if not stamp_is_home and not is_compile_fail:
                if STAMP_MEMBER_RE.search(line):
                    flag(path, lineno, "epoch-reset", raw)
            if STAMP_RESET_RE.search(line):
                flag(path, lineno, "epoch-reset", raw)

    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)\n")
        for f in findings:
            print(f)
        print(
            "\nSee tools/lint_invariants.py's docstring for what each rule"
            " enforces and why."
        )
        return 1
    print("lint_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
