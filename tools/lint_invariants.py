#!/usr/bin/env python3
"""Repo-specific invariant lint — the grep tier.

Since PR 7 the semantic versions of most of these rules live in the
clang-tidy plugin under tools/conn-tidy/, which tracks aliases through the
AST instead of pattern-matching lines and is what CI's `lint` job enforces
as a hard error.  This script remains for two reasons:

  * the `core` tier holds the rules the plugin cannot express (macro
    hygiene is invisible to AST matchers once the preprocessor has run);
  * the `fallback` tier keeps the superseded textual rules runnable on
    toolchains without Clang (`--fallback`), where a grep is still better
    than nothing.  Expect false positives the plugin would not produce.

Run from anywhere:  python3 tools/lint_invariants.py  (exits non-zero and
prints file:line findings when an invariant is violated).  `--list-rules`
prints every rule with its tier and, for fallback rules, the conn-tidy
check that supersedes it.  `--root` points the scan at another tree — the
unit test aims it at known-bad fixtures under tools/lint_fixtures/.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

CC_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}


@dataclass(frozen=True)
class Rule:
    name: str
    tier: str  # "core" (always runs) or "fallback" (--fallback only)
    superseded_by: str | None
    summary: str


RULES = [
    Rule(
        name="assert",
        tier="core",
        superseded_by=None,
        summary=(
            "src/ uses CONN_CHECK / CONN_CHECK_MSG / CONN_DCHECK, never "
            "<cassert> assert(): assert vanishes under NDEBUG, so the "
            "release build (the config every benchmark and the paper's "
            "I/O accounting run under) would silently skip the invariant. "
            "A macro-level rule — conn-tidy sees only the post-preprocess "
            "AST, so this stays a grep."
        ),
    ),
    Rule(
        name="raw-lock",
        tier="fallback",
        superseded_by="conn-raw-sync-primitive",
        summary=(
            "Raw std:: lock primitives only inside src/common/mutex.h; "
            "everywhere else uses the capability-annotated conn::Mutex / "
            "conn::MutexLock / conn::CondVar wrappers."
        ),
    ),
    Rule(
        name="page-escape",
        tier="fallback",
        superseded_by="conn-pinnedpage-escape",
        summary=(
            "A Page*/Page& must not be bound to a named variable from a "
            "PinnedPage::page() call outside src/storage/ — the borrow "
            "dies with the pin.  The conn-tidy check additionally tracks "
            "aliases and the actual escape (return/field/lambda)."
        ),
    ),
    Rule(
        name="epoch-reset",
        tier="fallback",
        superseded_by="conn-arena-epoch-reset",
        summary=(
            "ScanArena's epoch-stamp arrays are touched only by "
            "src/vis/dijkstra.{h,cc} and never bulk-reset: clearing "
            "stamps is an O(1) epoch bump, not an O(V) wipe."
        ),
    ),
]

RAW_LOCK_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b"
)
ASSERT_RE = re.compile(
    r"(^|[^\w.])assert\s*\(|#\s*include\s*<(cassert|assert\.h)>"
)
# `Page* p = ...page()` / `const Page& r = ...page()` / `auto* p = &x.page()`
PAGE_BIND_RE = re.compile(
    r"(const\s+)?Page\s*[*&]\s*\w+\s*=|"
    r"auto\s*[*&]?\s*\w+\s*=\s*&[\w.\->()]*page\(\)"
)
STAMP_MEMBER_RE = re.compile(
    r"\b(dist_stamp_|settled_stamp_|seeded_stamp_|target_stamp_)\b"
)
STAMP_RESET_RE = re.compile(
    r"\w*stamp_\w*\.(assign|clear)\s*\(|std::fill\s*\([^)]*stamp_"
)

STAMP_HOME = {"src/vis/dijkstra.h", "src/vis/dijkstra.cc"}


def strip_comments(line: str) -> str:
    """Drops // comments (enough for these token-level rules)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def iter_sources(repo: Path, *roots: str):
    for root in roots:
        base = repo / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CC_SUFFIXES:
                yield path


def scan(repo: Path, include_fallback: bool) -> list[str]:
    findings: list[str] = []
    seen: set[str] = set()

    def flag(path: Path, lineno: int, rule: str, text: str) -> None:
        rel = path.relative_to(repo)
        entry = f"{rel}:{lineno}: [{rule}] {text.strip()}"
        if entry not in seen:
            seen.add(entry)
            findings.append(entry)

    for path in iter_sources(repo, "src", "tests", "bench", "examples"):
        rel = str(path.relative_to(repo))
        in_src = rel.startswith("src/")
        is_mutex_home = rel == "src/common/mutex.h"
        # Negative-compilation fixtures violate the rules on purpose.
        is_compile_fail = rel.startswith("tests/compile_fail/")
        page_rule_applies = in_src and not rel.startswith("src/storage/")
        stamp_is_home = rel in STAMP_HOME

        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            line = strip_comments(raw)
            if not line.strip():
                continue

            if in_src and ASSERT_RE.search(line):
                flag(path, lineno, "assert", raw)

            if not include_fallback:
                continue

            if (
                not is_mutex_home
                and not is_compile_fail
                and RAW_LOCK_RE.search(line)
            ):
                flag(path, lineno, "raw-lock", raw)

            if (
                page_rule_applies
                and "page()" in line
                and PAGE_BIND_RE.search(line)
            ):
                flag(path, lineno, "page-escape", raw)

            if not stamp_is_home and not is_compile_fail:
                if STAMP_MEMBER_RE.search(line):
                    flag(path, lineno, "epoch-reset", raw)
                if STAMP_RESET_RE.search(line):
                    flag(path, lineno, "epoch-reset", raw)

    return findings


def list_rules() -> None:
    for rule in RULES:
        print(f"{rule.name}  [{rule.tier}]")
        if rule.superseded_by is not None:
            print(f"  superseded by: {rule.superseded_by} (tools/conn-tidy)")
        print(f"  {rule.summary}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Repo invariant lint (grep tier; see module docstring)."
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its tier and superseding conn-tidy "
        "check, then exit",
    )
    parser.add_argument(
        "--fallback",
        action="store_true",
        help="also run the fallback rules superseded by conn-tidy (for "
        "toolchains without Clang)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO,
        help="tree to scan (default: this repo; the unit test points it "
        "at tools/lint_fixtures/)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        list_rules()
        return 0

    findings = scan(args.root.resolve(), include_fallback=args.fallback)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)\n")
        for finding in findings:
            print(finding)
        print(
            "\nRun with --list-rules for what each rule enforces and which"
            " conn-tidy check supersedes it."
        )
        return 1
    tier = "core+fallback" if args.fallback else "core"
    print(f"lint_invariants: OK ({tier} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
