#!/usr/bin/env python3
"""Unit test for tools/lint_invariants.py, run via ctest.

Points the linter at the known-bad tree under tools/lint_fixtures/ and
asserts (a) the core tier flags exactly the assert fixture, (b) the
fallback tier flags each superseded rule's fixture, (c) the clean fixture
is never flagged, and (d) --list-rules names every rule and its
superseding conn-tidy check.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
LINT = TOOLS / "lint_invariants.py"
FIXTURES = TOOLS / "lint_fixtures"

FALLBACK_EXPECTATIONS = {
    "raw-lock": "bad_raw_lock.cc",
    "page-escape": "bad_page_escape.cc",
    "epoch-reset": "bad_epoch_reset.cc",
}


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def main() -> int:
    failures: list[str] = []

    def expect(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)

    # Core tier: only the assert rule runs, and it fires on both the
    # include and the call in bad_assert.cc.
    core = run_lint("--root", str(FIXTURES))
    expect(core.returncode == 1, "core: expected exit 1 on bad fixtures")
    expect(
        core.stdout.count("[assert]") == 2,
        f"core: expected 2 assert findings, got:\n{core.stdout}",
    )
    for rule in FALLBACK_EXPECTATIONS:
        expect(
            f"[{rule}]" not in core.stdout,
            f"core: fallback rule {rule} must not run by default",
        )

    # Fallback tier: every superseded rule fires on its fixture.
    fallback = run_lint("--root", str(FIXTURES), "--fallback")
    expect(fallback.returncode == 1, "fallback: expected exit 1")
    for rule, fixture in FALLBACK_EXPECTATIONS.items():
        expect(
            any(
                fixture in line and f"[{rule}]" in line
                for line in fallback.stdout.splitlines()
            ),
            f"fallback: expected a [{rule}] finding in {fixture}, got:\n"
            f"{fallback.stdout}",
        )
    expect(
        "clean_ok.cc" not in fallback.stdout,
        "the clean fixture must never be flagged",
    )

    # --list-rules: every rule, its tier, and the superseding check.
    listing = run_lint("--list-rules")
    expect(listing.returncode == 0, "--list-rules: expected exit 0")
    for token in (
        "assert",
        "[core]",
        "raw-lock",
        "page-escape",
        "epoch-reset",
        "[fallback]",
        "conn-raw-sync-primitive",
        "conn-pinnedpage-escape",
        "conn-arena-epoch-reset",
    ):
        expect(
            token in listing.stdout,
            f"--list-rules output missing {token!r}:\n{listing.stdout}",
        )

    if failures:
        print(f"lint_invariants_test: {len(failures)} failure(s)")
        for failure in failures:
            print(f"  FAIL: {failure}")
        return 1
    print("lint_invariants_test: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
