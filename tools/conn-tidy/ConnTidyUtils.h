// Small shared helpers for the conn-tidy checks.  Deliberately header-only
// and dependent only on llvm ADT: the plugin links nothing and resolves
// every clang/LLVM symbol from the clang-tidy executable that loads it, so
// the module must not reference clang-tidy utility-library symbols the
// host binary may have dead-stripped.

#ifndef CONN_TOOLS_CONN_TIDY_CONN_TIDY_UTILS_H_
#define CONN_TOOLS_CONN_TIDY_CONN_TIDY_UTILS_H_

#include <string>
#include <vector>

#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace conn {

/// Splits a ';'-separated check option into its non-empty, trimmed
/// entries (a local stand-in for utils::options::parseStringList).
inline std::vector<std::string> SplitList(llvm::StringRef raw) {
  std::vector<std::string> out;
  while (!raw.empty()) {
    auto split = raw.split(';');
    llvm::StringRef item = split.first.trim();
    if (!item.empty()) out.push_back(item.str());
    raw = split.second;
  }
  return out;
}

/// True when \p path ends with one of \p suffixes, respecting a path
/// separator on the left so "common/mutex.h" never matches
/// "uncommon/mutex.h".
inline bool PathEndsWithAny(llvm::StringRef path,
                            const std::vector<std::string>& suffixes) {
  for (const std::string& suffix : suffixes) {
    if (!path.ends_with(suffix)) continue;
    if (path.size() == suffix.size()) return true;
    const char prev = path[path.size() - suffix.size() - 1];
    if (prev == '/' || prev == '\\') return true;
  }
  return false;
}

}  // namespace conn
}  // namespace tidy
}  // namespace clang

#endif  // CONN_TOOLS_CONN_TIDY_CONN_TIDY_UTILS_H_
