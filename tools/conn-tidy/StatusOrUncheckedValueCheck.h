// conn-statusor-unchecked-value: flags access to a conn::StatusOr payload
// (.value(), or operator*/operator-> should they ever be added) with no
// ok() check on the same object earlier in the same function.
//
// StatusOr::value() CHECK-fails on an error state, so an unchecked access
// turns an I/O error into a process abort.  The sanctioned patterns both
// leave an ok() call the check can see:
//     CONN_CHECK(got.ok());             // hard invariant: abort is intended
//     if (!got.ok()) return got.status();  // propagated error
//
// The analysis is an approximation of dominance: any ok() call on the same
// variable (or member) at an earlier source location in the same function
// body satisfies the check.  That accepts a check in a sibling branch —
// fine for a lint whose job is catching never-checked accesses — and flags
// checks that only appear later, or on a different object.

#ifndef CONN_TOOLS_CONN_TIDY_STATUSOR_UNCHECKED_VALUE_CHECK_H_
#define CONN_TOOLS_CONN_TIDY_STATUSOR_UNCHECKED_VALUE_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace conn {

class StatusOrUncheckedValueCheck : public ClangTidyCheck {
 public:
  StatusOrUncheckedValueCheck(StringRef name, ClangTidyContext* context)
      : ClangTidyCheck(name, context) {}
  void registerMatchers(ast_matchers::MatchFinder* finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& result) override;
};

}  // namespace conn
}  // namespace tidy
}  // namespace clang

#endif  // CONN_TOOLS_CONN_TIDY_STATUSOR_UNCHECKED_VALUE_CHECK_H_
