// Registers the conn project-invariant checks as a clang-tidy plugin
// module.  Load with `clang-tidy --load=libconn_tidy_checks.so
// --checks=-*,conn-*`; see tools/conn-tidy/CMakeLists.txt and the
// "Static analysis" section of the top-level README.

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "ArenaEpochResetCheck.h"
#include "FloatEqInGeomCheck.h"
#include "PinnedPageEscapeCheck.h"
#include "RawSyncPrimitiveCheck.h"
#include "StatusOrUncheckedValueCheck.h"

namespace clang {
namespace tidy {
namespace conn {

class ConnTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories& factories) override {
    factories.registerCheck<ArenaEpochResetCheck>("conn-arena-epoch-reset");
    factories.registerCheck<FloatEqInGeomCheck>("conn-float-eq-in-geom");
    factories.registerCheck<PinnedPageEscapeCheck>("conn-pinnedpage-escape");
    factories.registerCheck<RawSyncPrimitiveCheck>("conn-raw-sync-primitive");
    factories.registerCheck<StatusOrUncheckedValueCheck>(
        "conn-statusor-unchecked-value");
  }
};

}  // namespace conn

// Magic static: constructing the Add object registers the module with the
// host clang-tidy's registry when the plugin is dlopen'd.
static ClangTidyModuleRegistry::Add<conn::ConnTidyModule> kRegisterConnModule(
    "conn-module", "Project-invariant checks for the conn engine.");

}  // namespace tidy
}  // namespace clang
