#include "PinnedPageEscapeCheck.h"

#include <functional>

#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/SmallPtrSet.h"
#include "llvm/ADT/SmallVector.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace conn {

namespace {

using AliasSet = llvm::SmallPtrSet<const ValueDecl*, 8>;

bool IsPageBorrowCall(const Expr* e) {
  const auto* call = llvm::dyn_cast<CXXMemberCallExpr>(e);
  if (call == nullptr) return false;
  const CXXMethodDecl* method = call->getMethodDecl();
  return method != nullptr && method->getDeclName().isIdentifier() &&
         method->getName() == "page" && method->getParent() != nullptr &&
         method->getParent()->getQualifiedNameAsString() ==
             "conn::storage::PinnedPage";
}

// True when \p e is (a projection of) a page() borrow or of a var already
// in the alias set.  Walks only value-preserving shapes — address-of,
// dereference, member/array projection, the arms of ?: — so a call that
// merely consumes the borrow (`Copy(pin.page())`) does not count.
bool DerivesFromBorrow(const Expr* e, const AliasSet& aliases) {
  if (e == nullptr) return false;
  e = e->IgnoreParenCasts();
  if (const auto* cleanups = llvm::dyn_cast<ExprWithCleanups>(e))
    return DerivesFromBorrow(cleanups->getSubExpr(), aliases);
  if (const auto* temp = llvm::dyn_cast<MaterializeTemporaryExpr>(e))
    return DerivesFromBorrow(temp->getSubExpr(), aliases);
  if (IsPageBorrowCall(e)) return true;
  if (const auto* ref = llvm::dyn_cast<DeclRefExpr>(e))
    return aliases.count(ref->getDecl()) != 0;
  if (const auto* unary = llvm::dyn_cast<UnaryOperator>(e)) {
    if (unary->getOpcode() == UO_AddrOf || unary->getOpcode() == UO_Deref)
      return DerivesFromBorrow(unary->getSubExpr(), aliases);
    return false;
  }
  if (const auto* member = llvm::dyn_cast<MemberExpr>(e))
    return DerivesFromBorrow(member->getBase(), aliases);
  if (const auto* subscript = llvm::dyn_cast<ArraySubscriptExpr>(e))
    return DerivesFromBorrow(subscript->getBase(), aliases);
  if (const auto* cond = llvm::dyn_cast<ConditionalOperator>(e))
    return DerivesFromBorrow(cond->getTrueExpr(), aliases) ||
           DerivesFromBorrow(cond->getFalseExpr(), aliases);
  return false;
}

// Collects pointer/reference locals declared in \p stmt.  Does not descend
// into lambda bodies: a lambda's operator() is matched and analyzed as its
// own function.
void CollectPtrRefLocals(const Stmt* stmt,
                         llvm::SmallVectorImpl<const VarDecl*>* out) {
  if (stmt == nullptr || llvm::isa<LambdaExpr>(stmt)) return;
  if (const auto* decl_stmt = llvm::dyn_cast<DeclStmt>(stmt)) {
    for (const Decl* d : decl_stmt->decls()) {
      const auto* var = llvm::dyn_cast<VarDecl>(d);
      if (var != nullptr && (var->getType()->isPointerType() ||
                             var->getType()->isReferenceType())) {
        out->push_back(var);
      }
    }
  }
  for (const Stmt* child : stmt->children()) CollectPtrRefLocals(child, out);
}

// Finds every LambdaExpr inside \p e (a returned std::function wraps the
// lambda in construct/convert nodes, so a plain dyn_cast is not enough).
void CollectLambdas(const Stmt* e,
                    llvm::SmallVectorImpl<const LambdaExpr*>* out) {
  if (e == nullptr) return;
  if (const auto* lambda = llvm::dyn_cast<LambdaExpr>(e)) {
    out->push_back(lambda);
    return;  // nested lambdas are analyzed through their own operator()
  }
  for (const Stmt* child : e->children()) CollectLambdas(child, out);
}

bool LambdaCapturesAlias(const LambdaExpr* lambda, const AliasSet& aliases) {
  for (const LambdaCapture& capture : lambda->captures()) {
    if (!capture.capturesVariable()) continue;
    const auto* var = capture.getCapturedVar();
    if (var == nullptr || aliases.count(var) == 0) continue;
    if (capture.getCaptureKind() == LCK_ByRef) return true;
    if (capture.getCaptureKind() == LCK_ByCopy &&
        var->getType()->isPointerType()) {
      return true;
    }
  }
  return false;
}

}  // namespace

void PinnedPageEscapeCheck::registerMatchers(MatchFinder* finder) {
  const auto page_call = cxxMemberCallExpr(callee(cxxMethodDecl(
      hasName("page"),
      ofClass(cxxRecordDecl(hasName("::conn::storage::PinnedPage"))))));
  // One match per function that touches page() anywhere; the per-function
  // alias analysis runs in check().
  finder->addMatcher(functionDecl(isDefinition(), hasDescendant(page_call),
                                  unless(isExpansionInSystemHeader()))
                         .bind("fn"),
                     this);
}

void PinnedPageEscapeCheck::check(const MatchFinder::MatchResult& result) {
  const auto* fn = result.Nodes.getNodeAs<FunctionDecl>("fn");
  const Stmt* body = fn != nullptr ? fn->getBody() : nullptr;
  if (body == nullptr) return;
  const SourceManager& sm = *result.SourceManager;

  // Fixpoint over pointer/reference locals: seed with initializers that
  // derive from page() directly, then absorb aliases of aliases.
  llvm::SmallVector<const VarDecl*, 16> candidates;
  CollectPtrRefLocals(body, &candidates);
  AliasSet aliases;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const VarDecl* var : candidates) {
      if (aliases.count(var) != 0 || var->getInit() == nullptr) continue;
      if (DerivesFromBorrow(var->getInit(), aliases)) {
        aliases.insert(var);
        changed = true;
      }
    }
  }

  const bool returns_indirection = fn->getReturnType()->isPointerType() ||
                                   fn->getReturnType()->isReferenceType();

  auto report = [&](const Stmt* at, const char* what) {
    const SourceLocation loc = sm.getFileLoc(at->getBeginLoc());
    if (loc.isInvalid() || !reported_.insert(loc).second) return;
    diag(loc,
         "raw view of PinnedPage::page() bytes %0 the pin's scope; the "
         "frame may be evicted once the pin drops — copy the bytes or "
         "keep the PinnedPage alive alongside the view")
        << what;
  };

  // Walk the body for escapes.  Lambda bodies are skipped (each lambda's
  // operator() is analyzed as its own function); the lambda *expression*
  // itself is inspected at return statements below.
  std::function<void(const Stmt*)> walk = [&](const Stmt* stmt) {
    if (stmt == nullptr || llvm::isa<LambdaExpr>(stmt)) return;
    if (const auto* ret = llvm::dyn_cast<ReturnStmt>(stmt)) {
      const Expr* value = ret->getRetValue();
      if (value != nullptr) {
        if (returns_indirection && DerivesFromBorrow(value, aliases))
          report(ret, "is returned, outliving");
        llvm::SmallVector<const LambdaExpr*, 2> lambdas;
        CollectLambdas(value, &lambdas);
        for (const LambdaExpr* lambda : lambdas)
          if (LambdaCapturesAlias(lambda, aliases))
            report(ret, "is captured by a returned lambda, outliving");
      }
    } else if (const auto* bin = llvm::dyn_cast<BinaryOperator>(stmt)) {
      if (bin->isAssignmentOp()) {
        const Expr* lhs = bin->getLHS()->IgnoreParenImpCasts();
        bool stores_outside_scope = false;
        if (const auto* member = llvm::dyn_cast<MemberExpr>(lhs)) {
          stores_outside_scope =
              llvm::isa<FieldDecl>(member->getMemberDecl());
        } else if (const auto* ref = llvm::dyn_cast<DeclRefExpr>(lhs)) {
          const auto* var = llvm::dyn_cast<VarDecl>(ref->getDecl());
          stores_outside_scope = var != nullptr && var->hasGlobalStorage();
        }
        if (stores_outside_scope && lhs->getType()->isPointerType() &&
            DerivesFromBorrow(bin->getRHS(), aliases)) {
          report(bin, "is stored to a field or global, outliving");
        }
      }
    }
    for (const Stmt* child : stmt->children()) walk(child);
  };
  walk(body);
}

}  // namespace conn
}  // namespace tidy
}  // namespace clang
