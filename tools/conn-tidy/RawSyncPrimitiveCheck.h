// conn-raw-sync-primitive: flags any use of the raw standard
// synchronization primitives (std::mutex, std::condition_variable,
// std::lock_guard, ...) outside common/mutex.h.  The repo's locking rule
// (PR 5) is that all latches go through the capability-annotated wrappers
// conn::Mutex / conn::MutexLock / conn::CondVar so Clang's -Wthread-safety
// analysis can see every acquisition; a bare std::mutex is invisible to it.
//
// Options:
//   AllowedFiles  ';'-separated path suffixes where the raw types are
//                 legitimate (default "common/mutex.h", the wrapper's own
//                 implementation).

#ifndef CONN_TOOLS_CONN_TIDY_RAW_SYNC_PRIMITIVE_CHECK_H_
#define CONN_TOOLS_CONN_TIDY_RAW_SYNC_PRIMITIVE_CHECK_H_

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"
#include "clang/Basic/SourceLocation.h"
#include "llvm/ADT/DenseSet.h"

namespace clang {
namespace tidy {
namespace conn {

class RawSyncPrimitiveCheck : public ClangTidyCheck {
 public:
  RawSyncPrimitiveCheck(StringRef name, ClangTidyContext* context);
  void registerMatchers(ast_matchers::MatchFinder* finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& result) override;
  void storeOptions(ClangTidyOptions::OptionMap& opts) override;

 private:
  const std::string raw_allowed_files_;
  const std::vector<std::string> allowed_files_;
  llvm::DenseSet<SourceLocation> reported_;
};

}  // namespace conn
}  // namespace tidy
}  // namespace clang

#endif  // CONN_TOOLS_CONN_TIDY_RAW_SYNC_PRIMITIVE_CHECK_H_
