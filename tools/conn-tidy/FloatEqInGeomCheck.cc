#include "FloatEqInGeomCheck.h"

#include "ConnTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace conn {

namespace {

// Literal zero on either side is a sanctioned exact compare: the value was
// assigned, not computed, so no rounding error can have accumulated.
bool IsZeroLiteral(const Expr* e) {
  e = e->IgnoreParenImpCasts();
  if (const auto* fl = llvm::dyn_cast<FloatingLiteral>(e))
    return fl->getValue().isZero();
  if (const auto* il = llvm::dyn_cast<IntegerLiteral>(e))
    return il->getValue().isZero();
  return false;
}

}  // namespace

FloatEqInGeomCheck::FloatEqInGeomCheck(StringRef name,
                                       ClangTidyContext* context)
    : ClangTidyCheck(name, context),
      raw_path_filter_(Options.get("PathFilter", "src/(geom|vis)/")),
      raw_allowed_functions_(Options.get("AllowedFunctions", "")),
      allowed_functions_(SplitList(raw_allowed_functions_)),
      path_filter_(raw_path_filter_) {}

void FloatEqInGeomCheck::storeOptions(ClangTidyOptions::OptionMap& opts) {
  Options.store(opts, "PathFilter", raw_path_filter_);
  Options.store(opts, "AllowedFunctions", raw_allowed_functions_);
}

void FloatEqInGeomCheck::registerMatchers(MatchFinder* finder) {
  finder->addMatcher(
      binaryOperator(hasAnyOperatorName("==", "!="),
                     hasEitherOperand(hasType(realFloatingPointType())),
                     unless(isExpansionInSystemHeader()),
                     optionally(forFunction(functionDecl().bind("fn"))))
          .bind("cmp"),
      this);
}

void FloatEqInGeomCheck::check(const MatchFinder::MatchResult& result) {
  const auto* cmp = result.Nodes.getNodeAs<BinaryOperator>("cmp");
  if (cmp == nullptr) return;
  const SourceManager& sm = *result.SourceManager;
  const SourceLocation loc = sm.getFileLoc(cmp->getOperatorLoc());
  if (loc.isInvalid()) return;
  if (!path_filter_.match(sm.getFilename(loc))) return;
  if (const auto* fn = result.Nodes.getNodeAs<FunctionDecl>("fn")) {
    // `= default`ed comparisons (vec.h) are memberwise-exact on purpose.
    if (fn->isDefaulted()) return;
    const std::string qualified = fn->getQualifiedNameAsString();
    for (const std::string& allowed : allowed_functions_)
      if (qualified == allowed) return;
  }
  if (IsZeroLiteral(cmp->getLHS()) || IsZeroLiteral(cmp->getRHS())) return;
  if (!reported_.insert(loc).second) return;
  diag(loc,
       "exact floating-point %0 in geometry code; compare through the eps "
       "helpers in geom/predicates.h, or against a literal zero for "
       "degenerate-input guards")
      << cmp->getOpcodeStr();
}

}  // namespace conn
}  // namespace tidy
}  // namespace clang
