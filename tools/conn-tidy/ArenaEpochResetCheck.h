// conn-arena-epoch-reset: flags direct writes to vis::ScanArena's
// epoch-stamp arrays (dist_stamp_, settled_stamp_, seeded_stamp_,
// target_stamp_) outside the arena and its one friend, DijkstraScan.
//
// Scan state is "cleared" by bumping the arena epoch — O(1) — never by
// wiping the per-vertex arrays, which would reintroduce the O(V)
// per-restart cost the arena exists to remove (PR 3).  Access control
// already stops strangers at compile time (the arrays are private; see
// tests/compile_fail/epoch_stamp_write.cc); this check additionally covers
// code that CAN name the members — new friends, members added to the vis
// layer, or fixture code that unseals the class.
//
// Options:
//   AllowedClasses  ';'-separated qualified class names whose member
//                   functions may write the stamps (default
//                   "conn::vis::ScanArena;conn::vis::DijkstraScan").

#ifndef CONN_TOOLS_CONN_TIDY_ARENA_EPOCH_RESET_CHECK_H_
#define CONN_TOOLS_CONN_TIDY_ARENA_EPOCH_RESET_CHECK_H_

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace conn {

class ArenaEpochResetCheck : public ClangTidyCheck {
 public:
  ArenaEpochResetCheck(StringRef name, ClangTidyContext* context);
  void registerMatchers(ast_matchers::MatchFinder* finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& result) override;
  void storeOptions(ClangTidyOptions::OptionMap& opts) override;

 private:
  const std::string raw_allowed_classes_;
  const std::vector<std::string> allowed_classes_;
};

}  // namespace conn
}  // namespace tidy
}  // namespace clang

#endif  // CONN_TOOLS_CONN_TIDY_ARENA_EPOCH_RESET_CHECK_H_
