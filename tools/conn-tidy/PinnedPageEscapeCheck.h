// conn-pinnedpage-escape: flags raw pointers/references derived from
// PinnedPage::page() that escape the pin's scope.
//
// page() returns a borrow of buffer-pool frame memory that is valid only
// while the PinnedPage is alive (PR 4's zero-copy read path).  Storing
// that borrow in a field, returning it, or capturing it in a lambda that
// outlives the function leaves a dangling view once the pin unpins and the
// frame is evicted or reused.  Unlike the old grep lint this check tracks
// local aliases: `const Page& v = pin.page(); const Page* p = &v;
// return p;` is reported at the `return`.
//
// Per function, the analysis (a) seeds an alias set with every pointer/
// reference local whose initializer derives from a page() call, iterating
// to a fixpoint so aliases of aliases are caught, then (b) reports
//   * a return of a derived pointer/reference when the function's return
//     type is a pointer or reference,
//   * an assignment of a derived pointer into a field or a global, and
//   * a returned lambda that captures an alias by reference (or a pointer
//     alias by copy).
// Uses of the borrow that end inside the pin's scope — including passing
// it down by argument, the dominant idiom (`AssignFromPage(pp.page())`) —
// are not reported.

#ifndef CONN_TOOLS_CONN_TIDY_PINNED_PAGE_ESCAPE_CHECK_H_
#define CONN_TOOLS_CONN_TIDY_PINNED_PAGE_ESCAPE_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"
#include "clang/Basic/SourceLocation.h"
#include "llvm/ADT/DenseSet.h"

namespace clang {
namespace tidy {
namespace conn {

class PinnedPageEscapeCheck : public ClangTidyCheck {
 public:
  PinnedPageEscapeCheck(StringRef name, ClangTidyContext* context)
      : ClangTidyCheck(name, context) {}
  void registerMatchers(ast_matchers::MatchFinder* finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& result) override;

 private:
  llvm::DenseSet<SourceLocation> reported_;
};

}  // namespace conn
}  // namespace tidy
}  // namespace clang

#endif  // CONN_TOOLS_CONN_TIDY_PINNED_PAGE_ESCAPE_CHECK_H_
