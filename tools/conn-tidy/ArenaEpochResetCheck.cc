#include "ArenaEpochResetCheck.h"

#include "ConnTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace conn {

ArenaEpochResetCheck::ArenaEpochResetCheck(StringRef name,
                                           ClangTidyContext* context)
    : ClangTidyCheck(name, context),
      raw_allowed_classes_(Options.get(
          "AllowedClasses", "conn::vis::ScanArena;conn::vis::DijkstraScan")),
      allowed_classes_(SplitList(raw_allowed_classes_)) {}

void ArenaEpochResetCheck::storeOptions(ClangTidyOptions::OptionMap& opts) {
  Options.store(opts, "AllowedClasses", raw_allowed_classes_);
}

void ArenaEpochResetCheck::registerMatchers(MatchFinder* finder) {
  const auto stamp_member = memberExpr(
      member(fieldDecl(matchesName("stamp_$"),
                       hasDeclContext(cxxRecordDecl(
                           hasName("::conn::vis::ScanArena"))))))
                                .bind("stamp");
  // An element of a stamp array, via vector::operator[] or a plain
  // subscript, or the array object itself.
  const auto stamp_lvalue = anyOf(
      stamp_member,
      cxxOperatorCallExpr(hasOverloadedOperatorName("[]"),
                          hasArgument(0, ignoringParenImpCasts(stamp_member))),
      arraySubscriptExpr(hasBase(ignoringParenImpCasts(stamp_member))));
  // dist_stamp_[v] = epoch_, settled_stamp_ = {...}, and friends.
  finder->addMatcher(
      binaryOperator(isAssignmentOp(),
                     hasLHS(ignoringParenImpCasts(expr(stamp_lvalue))),
                     forFunction(functionDecl().bind("fn")))
          .bind("write"),
      this);
  // Bulk mutations: dist_stamp_.clear(), .assign(n, 0), .resize(0), ...
  finder->addMatcher(
      cxxMemberCallExpr(on(ignoringParenImpCasts(stamp_member)),
                        callee(cxxMethodDecl(hasAnyName(
                            "clear", "resize", "assign", "swap", "push_back",
                            "emplace_back", "pop_back", "erase", "insert",
                            "shrink_to_fit"))),
                        forFunction(functionDecl().bind("fn")))
          .bind("write"),
      this);
}

void ArenaEpochResetCheck::check(const MatchFinder::MatchResult& result) {
  const auto* fn = result.Nodes.getNodeAs<FunctionDecl>("fn");
  if (const auto* method = llvm::dyn_cast_or_null<CXXMethodDecl>(fn)) {
    const std::string owner =
        method->getParent()->getQualifiedNameAsString();
    for (const std::string& allowed : allowed_classes_)
      if (owner == allowed) return;
  }
  const auto* write = result.Nodes.getNodeAs<Stmt>("write");
  const auto* stamp = result.Nodes.getNodeAs<MemberExpr>("stamp");
  if (write == nullptr || stamp == nullptr) return;
  const SourceLocation loc =
      result.SourceManager->getFileLoc(write->getBeginLoc());
  diag(loc,
       "epoch-stamp array %0 written outside the ScanArena API; scan state "
       "is reset by bumping the epoch (a fresh DijkstraScan or "
       "Revalidate()), never by writing the arrays directly")
      << stamp->getMemberDecl()->getName();
}

}  // namespace conn
}  // namespace tidy
}  // namespace clang
