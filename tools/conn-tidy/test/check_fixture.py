#!/usr/bin/env python3
"""Minimal lit: runs ONE conn-tidy check over ONE fixture file and compares
the warning lines against `// conn-tidy: expect` markers in the fixture.

A fixture passes when the set of source lines clang-tidy warned on (for the
selected check only — compiler warnings and other checks are ignored)
equals the set of marked lines.  Negative fixtures simply carry no markers.
Compile errors fail the run unless --allow-errors is given (for fixtures
that deliberately trip access control as well as the check).
"""

import argparse
import os
import re
import subprocess
import sys

DIAG_RE = re.compile(
    r"^(?P<file>[^:\n]+):(?P<line>\d+):\d+: warning: .*\[(?P<check>[\w.,-]+)\]",
    re.MULTILINE,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", required=True)
    parser.add_argument("--plugin", required=True)
    parser.add_argument("--check", required=True)
    parser.add_argument("--source", required=True)
    parser.add_argument("--include", action="append", default=[])
    parser.add_argument("--config", default=None)
    parser.add_argument("--allow-errors", action="store_true")
    args = parser.parse_args()

    expected = set()
    with open(args.source, encoding="utf-8") as fixture:
        for lineno, text in enumerate(fixture, start=1):
            if "conn-tidy: expect" in text:
                expected.add(lineno)

    cmd = [
        args.clang_tidy,
        f"--load={args.plugin}",
        f"--checks=-*,{args.check}",
    ]
    if args.config is not None:
        cmd.append(f"--config={args.config}")
    cmd += [args.source, "--", "-std=c++20"]
    cmd += [f"-I{inc}" for inc in args.include]

    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    output = proc.stdout

    basename = os.path.basename(args.source)
    actual = set()
    for match in DIAG_RE.finditer(output):
        if args.check not in match.group("check").split(","):
            continue
        if os.path.basename(match.group("file")) != basename:
            continue
        actual.add(int(match.group("line")))

    problems = []
    errors = [line for line in output.splitlines() if ": error:" in line]
    if errors and not args.allow_errors:
        problems.append("compile errors:\n  " + "\n  ".join(errors))
    if actual != expected:
        problems.append(
            f"warning lines {sorted(actual)} != expected {sorted(expected)}"
        )

    if problems:
        print(f"FAIL {basename} [{args.check}]")
        for problem in problems:
            print(f"  {problem}")
        print("--- clang-tidy output ---")
        print(output)
        return 1
    print(f"PASS {basename} [{args.check}]: {len(expected)} expected "
          "warning line(s) matched")
    return 0


if __name__ == "__main__":
    sys.exit(main())
