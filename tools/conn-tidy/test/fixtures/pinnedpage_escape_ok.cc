// conn-pinnedpage-escape must stay silent: every page() view below dies
// inside the pin's scope.  Passing the borrow down by argument
// (AssignFromPage-style), reading through a local alias, and copying the
// bytes out are the sanctioned idioms.

#include <cstdint>

#include "common/check.h"
#include "storage/pager.h"

namespace conn {
namespace storage {
namespace {

uint8_t Consume(const Page& page) { return page.bytes[0]; }

uint8_t ReadWithinPin(Pager& pager) {
  StatusOr<PinnedPage> got = pager.Fetch(0);
  CONN_CHECK(got.ok());
  const Page& view = got.value().page();
  const Page* alias = &view;       // alias is fine while the pin lives
  return Consume(*alias);
}

Page CopyOut(Pager& pager) {
  StatusOr<PinnedPage> got = pager.Fetch(0);
  CONN_CHECK(got.ok());
  return got.value().page();       // by-value copy, not a borrow
}

uint8_t ReadViaCompletionPath(Pager& pager) {
  // Pins handed over by the async pipeline follow the same rule: the
  // borrow dies inside the pin's scope, Wait() or not.
  PageRequest req = pager.FetchAsync(0);
  StatusOr<PinnedPage> got = req.Wait();
  CONN_CHECK(got.ok());
  const Page& view = got.value().page();
  return Consume(view);
}

}  // namespace
}  // namespace storage
}  // namespace conn
